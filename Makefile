GO ?= go

.PHONY: build test race lint vet verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint:
	$(GO) run ./cmd/abivmlint ./...

vet:
	$(GO) vet ./...

# verify is the merge gate: everything CI runs, in one command.
verify:
	sh scripts/check.sh
