GO ?= go

.PHONY: build test race lint vet verify bench bench-quick

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint:
	$(GO) run ./cmd/abivmlint ./...

vet:
	$(GO) vet ./...

# verify is the merge gate: everything CI runs, in one command.
verify:
	sh scripts/check.sh

# bench records a full benchmark run into BENCH_<date>.json; set
# LABEL=name to tag it (e.g. LABEL=optimized).
bench:
	sh scripts/bench.sh -label "$(or $(LABEL),local)"

# bench-quick is the CI smoke: one iteration of the headline benches.
bench-quick:
	sh scripts/bench.sh -quick -label quick
