GO ?= go
# Every test invocation carries a timeout so a hung test (deadlocked
# retry loop, stuck worker pool) fails the run instead of wedging it.
TEST_TIMEOUT ?= 10m

.PHONY: build test race lint lint-json lint-self vet verify chaos bench bench-quick bench-gate serve-smoke compile-smoke docs-check

build:
	$(GO) build ./...

test:
	$(GO) test -timeout $(TEST_TIMEOUT) ./...

race:
	$(GO) test -race -timeout $(TEST_TIMEOUT) ./...

lint:
	$(GO) run ./cmd/abivmlint ./...

# lint-json writes the machine-readable findings report (live findings,
# suppressions with their reasons, per-analyzer counts) to
# abivmlint.json; the exit status still fails on any live finding, so
# the report is written either way but the target only passes clean.
lint-json:
	$(GO) run ./cmd/abivmlint -json ./... > abivmlint.json

# lint-self points the analyzers at their own implementation and the
# CLIs — the linter must hold itself to the rules it enforces.
lint-self:
	$(GO) run ./cmd/abivmlint ./internal/lint/... ./cmd/...

vet:
	$(GO) vet ./...

# verify is the merge gate: everything CI runs, in one command.
verify:
	sh scripts/check.sh

# chaos runs the full seeded fault-injection sweep (50 schedules) plus
# the race-enabled chaos tests.
chaos:
	$(GO) run ./cmd/abivm chaos -seed 1 -runs 50
	$(GO) test -race -timeout $(TEST_TIMEOUT) -run 'TestChaos' ./internal/fault/

# bench records a full benchmark run into BENCH_<date>.json; set
# LABEL=name to tag it (e.g. LABEL=optimized).
bench:
	sh scripts/bench.sh -label "$(or $(LABEL),local)"

# bench-quick is the CI smoke: one iteration of the headline benches.
bench-quick:
	sh scripts/bench.sh -quick -label quick

# bench-gate re-runs the durability benchmarks at a pinned iteration
# count and fails on a >15% ns/op or allocs/op regression against the
# committed gate-baseline label in the newest BENCH_<date>.json.
bench-gate:
	sh scripts/bench_gate.sh

# serve-smoke boots `abivm serve` and asserts the ops endpoints answer
# with the required metric series.
serve-smoke:
	sh scripts/serve_smoke.sh

# docs-check fails when ARCHITECTURE.md/README.md drift from the
# package tree (stale references or unmapped packages).
docs-check:
	sh scripts/docs_check.sh

# compile-smoke runs the SQL→IVM compiler end-to-end over the example
# catalog, then serves the compiled views for a short run.
compile-smoke:
	$(GO) run ./cmd/abivm compile -catalog examples/views.sql
	$(GO) run ./cmd/abivm serve -catalog examples/views.sql -addr 127.0.0.1:0 -steps 100 -interval 1ms
