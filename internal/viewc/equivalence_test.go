package viewc

import (
	"fmt"
	"strings"
	"testing"

	"abivm/internal/pubsub"
)

// TestCompiledMatchesHandWired is the acceptance property for the serve
// -catalog path: a broker fed compiled subscriptions (SubscribeCompiled)
// produces step results byte-identical to a broker whose subscriptions
// were hand-wired from the same parts via plain Subscribe, over the same
// deterministic event stream. The two brokers share nothing — separate
// databases, separately compiled views — so the equality also re-proves
// compile determinism end to end.
func TestCompiledMatchesHandWired(t *testing.T) {
	const seed, steps = 11, 40
	spec := pubsub.DefaultWorkloadSpec()

	run := func(wire func(b *pubsub.Broker, views []*CompiledView) error) string {
		db, err := pubsub.DemoDB(spec)
		if err != nil {
			t.Fatal(err)
		}
		views, err := CompileCatalog(db, demoCatalog, Options{Seed: seed, Condition: pubsub.Every(5)})
		if err != nil {
			t.Fatal(err)
		}
		w, err := pubsub.NewDemoWorkloadOn(db, seed, spec, nil, nil, func(b *pubsub.Broker) error {
			return wire(b, views)
		})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for i := 0; i < steps; i++ {
			ns, err := w.Step()
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range ns {
				fmt.Fprintf(&sb, "step=%d sub=%s cost=%.6f degraded=%v behind=%d rows=%v\n",
					n.Step, n.Subscription, n.RefreshCost, n.Degraded, n.StepsBehind, n.Rows)
			}
		}
		return sb.String()
	}

	compiled := run(func(b *pubsub.Broker, views []*CompiledView) error {
		for _, cv := range views {
			if err := b.SubscribeCompiled(cv); err != nil {
				return err
			}
		}
		return nil
	})
	handWired := run(func(b *pubsub.Broker, views []*CompiledView) error {
		for _, cv := range views {
			// Spread the compiled parts into a plain Subscription by hand —
			// the pre-compiler wiring style.
			if err := b.Subscribe(pubsub.Subscription{
				Name:      cv.Name,
				Query:     cv.Query,
				Condition: pubsub.Every(5),
				Model:     cv.Model,
				QoS:       cv.QoS,
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if compiled == "" {
		t.Fatal("no notifications fired")
	}
	if compiled != handWired {
		t.Fatalf("transcripts differ:\n--- compiled ---\n%s--- hand-wired ---\n%s", compiled, handWired)
	}
}

// TestCompiledOnShardedBroker: SubscribeCompiled works on the sharded
// runtime too.
func TestCompiledOnShardedBroker(t *testing.T) {
	spec := pubsub.ScaledWorkloadSpec(4)
	db, err := pubsub.DemoDB(spec)
	if err != nil {
		t.Fatal(err)
	}
	views, err := CompileCatalog(db, demoCatalog, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sb := pubsub.NewShardedBroker(db, pubsub.ShardOptions{Shards: 2})
	defer sb.Close()
	for _, cv := range views {
		if err := sb.SubscribeCompiled(cv); err != nil {
			t.Fatalf("%s: %v", cv.Name, err)
		}
	}
	if got := len(sb.Subscriptions()); got != len(views) {
		t.Fatalf("registered %d subscriptions, want %d", got, len(views))
	}
}
