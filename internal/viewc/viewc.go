// Package viewc is the SQL→IVM compiler front end: it turns a view
// definition (one SELECT, or a views.sql catalog of CREATE MATERIALIZED
// VIEW statements) into a fully provisioned subscription. Compilation
// runs the whole provisioning pipeline the paper assumes exists around
// its planner: parse and bind the query, derive the per-base-table delta
// plan (ivm.PlanSelect), calibrate one batch-cost function f_i(k) per
// FROM alias by driving seeded update batches through a sandboxed clone
// of the base tables (costmodel.Sandbox — the compile-target database is
// never written), fit the requested functional form, validate it against
// the CostFunc contract (costfn.CheckInvariants), and package the result
// as a pubsub.Subscription plus a human-readable EXPLAIN IVM report.
package viewc

import (
	"errors"
	"fmt"
	"strings"

	"abivm/internal/core"
	"abivm/internal/costfn"
	"abivm/internal/costmodel"
	"abivm/internal/dataflow"
	"abivm/internal/ivm"
	"abivm/internal/pubsub"
	"abivm/internal/sql"
	"abivm/internal/storage"
)

// DefaultQoS is the response-time constraint used when Options.QoS is
// unset — the demo workload's bound.
const DefaultQoS = 40.0

// DefaultKs is the default calibration grid of batch sizes.
var DefaultKs = []int{1, 2, 4, 8, 16, 32}

// Options configures compilation. The zero value is usable: linear fit,
// seed 0, DefaultKs, default weights, notify every step, DefaultQoS.
type Options struct {
	// Name is the subscription name; "view" when empty. CompileCatalog
	// overrides it per statement.
	Name string
	// QoS is the response-time constraint C; DefaultQoS when 0.
	QoS float64
	// Fit selects the fitted functional form: "linear" (default) or
	// "piecewise".
	Fit string
	// Seed drives the calibration workload generators; the same seed,
	// database, and query always produce byte-identical models.
	Seed int64
	// Ks is the strictly increasing calibration grid; DefaultKs when nil.
	Ks []int
	// Weights converts engine work-unit counters to pseudo-ms cost; the
	// zero value selects storage.DefaultWeights.
	Weights storage.Weights
	// Condition is the notification condition; Every(1) when nil.
	Condition pubsub.Condition
	// Dataflow targets the shared delta-dataflow runtime: the EXPLAIN
	// report gains the canonical operator signatures the view would
	// intern into the shared graph (internal/dataflow), so an operator
	// can read off exactly which sub-plans two views will share before
	// subscribing them. The packaged subscription is unchanged — the
	// broker's SetSharedDataflow decides which runtime executes it.
	Dataflow bool
}

func (o Options) withDefaults() Options {
	if o.Name == "" {
		o.Name = "view"
	}
	if o.QoS == 0 {
		o.QoS = DefaultQoS
	}
	if o.Fit == "" {
		o.Fit = "linear"
	}
	if o.Ks == nil {
		o.Ks = DefaultKs
	}
	if o.Weights == (storage.Weights{}) {
		o.Weights = storage.DefaultWeights()
	}
	if o.Condition == nil {
		o.Condition = pubsub.Every(1)
	}
	return o
}

// Calibration is the measured and fitted cost curve of one FROM alias.
type Calibration struct {
	Alias string
	Table string
	// Measurement holds the sampled (k, cost) curve.
	Measurement *costmodel.Measurement
	// Func is the fitted cost function backing the model for this alias.
	Func core.CostFunc
	// Residuals is measured minus fitted cost at each sampled k.
	Residuals []float64
	// MaxAbsResidual is the largest |residual| — the fit quality headline.
	MaxAbsResidual float64
}

// FuncString renders the fitted cost function for reports and JSON
// output.
func (c Calibration) FuncString() string { return describeFunc(c.Func) }

// CompiledView is a fully provisioned view: delta plan, calibrated cost
// model, and QoS parameters, ready to subscribe (it implements
// pubsub.CompiledSubscription).
type CompiledView struct {
	Name  string
	QoS   float64
	Query string // canonical view SQL
	Plan  *ivm.DeltaPlan
	Fit   string
	Seed  int64
	Calibrations []Calibration
	Model *core.CostModel
	// Dataflow mirrors Options.Dataflow; when set, Explain appends the
	// shared-runtime operator signatures.
	Dataflow bool

	cond pubsub.Condition
	db   *storage.DB // compile-target database, for Explain
}

// Subscription packages the compiled view as a broker subscription.
func (cv *CompiledView) Subscription() pubsub.Subscription {
	return pubsub.Subscription{
		Name:      cv.Name,
		Query:     cv.Query,
		Condition: cv.cond,
		Model:     cv.Model,
		QoS:       cv.QoS,
	}
}

// Compile compiles one view definition against db. db provides the base
// tables the view reads; calibration happens in a sandboxed clone, so db
// is only ever read. Unmaintainable constructs surface as diagnostics of
// the form `view "name": position N: <feature> is not maintainable`.
func Compile(db *storage.DB, query string, opts Options) (*CompiledView, error) {
	sel, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	return compileSelect(db, sel, opts)
}

// CompileCatalog parses a views.sql catalog and compiles every view in
// it. All diagnostics are collected (joined), not just the first, so one
// compiler run reports every broken view in the catalog.
func CompileCatalog(db *storage.DB, src string, opts Options) ([]*CompiledView, error) {
	cat, err := sql.ParseCatalog(src)
	if err != nil {
		return nil, err
	}
	var out []*CompiledView
	var diags []error
	for _, def := range cat {
		o := opts
		o.Name = def.Name
		o.QoS = def.QoS
		cv, err := compileSelect(db, def.Query, o)
		if err != nil {
			diags = append(diags, err)
			continue
		}
		out = append(out, cv)
	}
	if len(diags) > 0 {
		return out, errors.Join(diags...)
	}
	return out, nil
}

func compileSelect(db *storage.DB, sel *sql.Select, opts Options) (*CompiledView, error) {
	opts = opts.withDefaults()
	plan, err := ivm.PlanSelect(sel)
	if err != nil {
		return nil, diagnose(opts.Name, err)
	}
	query := sel.String()
	sb, err := costmodel.NewSandbox(db, query, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("view %q: calibration sandbox: %w", opts.Name, err)
	}
	maxK := 2 * opts.Ks[len(opts.Ks)-1]
	cv := &CompiledView{
		Name: opts.Name, QoS: opts.QoS, Query: query, Plan: plan,
		Fit: opts.Fit, Seed: opts.Seed, cond: opts.Condition, db: db,
		Dataflow: opts.Dataflow,
	}
	if opts.Dataflow {
		// Surface unmappable constructs at compile time, not at
		// subscribe time: the signature build exercises the same spec
		// pass Graph.Subscribe runs.
		if _, err := cv.OperatorSignatures(); err != nil {
			return nil, fmt.Errorf("view %q: dataflow operators: %w", opts.Name, err)
		}
	}
	funcs := make([]core.CostFunc, 0, len(plan.Sources))
	for _, src := range plan.Sources {
		ms, err := sb.Measure(src.Alias, opts.Ks, opts.Weights)
		if err != nil {
			return nil, fmt.Errorf("view %q: calibrating %s: %w", opts.Name, src.Alias, err)
		}
		f, err := fitOne(ms, opts.Fit)
		if err != nil {
			return nil, fmt.Errorf("view %q: fitting %s: %w", opts.Name, src.Alias, err)
		}
		if err := costfn.CheckInvariants(f, maxK); err != nil {
			return nil, fmt.Errorf("view %q: fitted cost function for %s violates the CostFunc contract: %w", opts.Name, src.Alias, err)
		}
		cal := Calibration{Alias: src.Alias, Table: src.Table, Measurement: ms, Func: f}
		for i, k := range ms.K {
			r := ms.Cost[i] - f.Cost(k)
			cal.Residuals = append(cal.Residuals, r)
			if r < 0 {
				r = -r
			}
			if r > cal.MaxAbsResidual {
				cal.MaxAbsResidual = r
			}
		}
		cv.Calibrations = append(cv.Calibrations, cal)
		funcs = append(funcs, f)
	}
	cv.Model = core.NewCostModel(funcs...)
	return cv, nil
}

func fitOne(ms *costmodel.Measurement, fit string) (core.CostFunc, error) {
	switch fit {
	case "linear":
		return ms.FitLinear()
	case "piecewise":
		return ms.Piecewise()
	}
	return nil, fmt.Errorf("unknown fit %q (want linear or piecewise)", fit)
}

// diagnose rewrites an unsupported-feature error into the compiler's
// view-qualified diagnostic form; other errors are wrapped verbatim.
func diagnose(name string, err error) error {
	var ue *sql.UnsupportedError
	if errors.As(err, &ue) {
		if ue.Pos > 0 {
			return fmt.Errorf("view %q: position %d: %s is not maintainable", name, ue.Pos, ue.Feature)
		}
		return fmt.Errorf("view %q: %s is not maintainable", name, ue.Feature)
	}
	return fmt.Errorf("view %q: %w", name, err)
}

// describeFunc renders a fitted cost function for the report.
func describeFunc(f core.CostFunc) string {
	switch x := f.(type) {
	case costfn.Linear:
		return fmt.Sprintf("cost(k) = %.4g*k + %.4g", x.A, x.B)
	case *costfn.PiecewiseLinear:
		var parts []string
		for _, kn := range x.Knots() {
			parts = append(parts, fmt.Sprintf("(%d,%.4g)", kn.K, kn.Cost))
		}
		return "piecewise-linear knots " + strings.Join(parts, " ")
	}
	return fmt.Sprintf("%v", f)
}

// Explain renders the EXPLAIN IVM report: the delta plan (with the
// physical per-source change-cursor plans over the compile-target
// database), the fitted coefficients, and the calibration residuals. The
// output is deterministic in (database, query, options).
func (cv *CompiledView) Explain() (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "EXPLAIN IVM view %q (QoS %g, fit %s, seed %d)\n", cv.Name, cv.QoS, cv.Fit, cv.Seed)
	planOut, err := cv.Plan.Explain(cv.db.Table)
	if err != nil {
		return "", err
	}
	sb.WriteString(planOut)
	sb.WriteString("calibration:\n")
	for _, cal := range cv.Calibrations {
		fmt.Fprintf(&sb, "  %s (table %s): %s\n", cal.Alias, cal.Table, describeFunc(cal.Func))
		for i, k := range cal.Measurement.K {
			fmt.Fprintf(&sb, "    k=%-4d measured %9.4f  fitted %9.4f  residual %+8.4f\n",
				k, cal.Measurement.Cost[i], cal.Func.Cost(k), cal.Residuals[i])
		}
		fmt.Fprintf(&sb, "    max |residual| = %.4f\n", cal.MaxAbsResidual)
	}
	if cv.Dataflow {
		sigs, err := cv.OperatorSignatures()
		if err != nil {
			return "", err
		}
		sb.WriteString("dataflow operators (canonical signatures, leaves first):\n")
		for _, sig := range sigs {
			fmt.Fprintf(&sb, "  %s\n", sig)
		}
	}
	return sb.String(), nil
}

// OperatorSignatures returns the canonical signatures of the operators
// this view compiles into under the shared delta-dataflow runtime, in
// post-order (leaves first). Two views share exactly the operators
// whose signatures coincide, so diffing two views' signature lists
// predicts the shared graph's shape.
func (cv *CompiledView) OperatorSignatures() ([]string, error) {
	return dataflow.Signatures(cv.Plan, func(table string) (*storage.Schema, error) {
		tbl, err := cv.db.Table(table)
		if err != nil {
			return nil, err
		}
		return tbl.Schema(), nil
	})
}
