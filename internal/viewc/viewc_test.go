package viewc

import (
	"fmt"
	"strings"
	"testing"

	"abivm/internal/pubsub"
	"abivm/internal/storage"
)

// demoCatalog covers the three compiler-acceptance shapes over the demo
// stations/sales schema: filter-only, two-table join, join + group-by.
const demoCatalog = `
CREATE MATERIALIZED VIEW big_sales QOS 25 AS
SELECT s.salekey, s.amount FROM sales AS s WHERE s.amount > 10;

CREATE MATERIALIZED VIEW east_sales QOS 30 AS
SELECT s.salekey, st.region FROM sales AS s, stations AS st
WHERE s.station = st.stationkey AND st.region = 'EAST';

CREATE MATERIALIZED VIEW region_totals QOS 40 AS
SELECT st.region, SUM(s.amount), COUNT(*) FROM sales AS s, stations AS st
WHERE s.station = st.stationkey GROUP BY st.region;
`

func demoDB(t *testing.T) *storage.DB {
	t.Helper()
	db, err := pubsub.DemoDB(pubsub.DefaultWorkloadSpec())
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCompileCatalogEndToEnd(t *testing.T) {
	db := demoDB(t)
	views, err := CompileCatalog(db, demoCatalog, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 3 {
		t.Fatalf("compiled %d views, want 3", len(views))
	}
	wantAliases := map[string]int{"big_sales": 1, "east_sales": 2, "region_totals": 2}
	for _, cv := range views {
		if got := len(cv.Calibrations); got != wantAliases[cv.Name] {
			t.Errorf("%s: %d calibrated aliases, want %d", cv.Name, got, wantAliases[cv.Name])
		}
		if cv.Model.N() != len(cv.Calibrations) {
			t.Errorf("%s: model N %d != calibrations %d", cv.Name, cv.Model.N(), len(cv.Calibrations))
		}
		// The compiled subscription must be accepted by a broker as-is.
		b := pubsub.NewBroker(demoDB(t))
		if err := b.SubscribeCompiled(cv); err != nil {
			t.Errorf("%s: SubscribeCompiled: %v", cv.Name, err)
		}
	}
	if views[2].QoS != 40 || !views[2].Plan.Aggregate {
		t.Errorf("region_totals: QoS %g aggregate %v", views[2].QoS, views[2].Plan.Aggregate)
	}
}

// TestExplainGolden pins the structural content of the EXPLAIN IVM
// report for the three acceptance shapes.
func TestExplainGolden(t *testing.T) {
	db := demoDB(t)
	views, err := CompileCatalog(db, demoCatalog, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	wants := map[string][]string{
		"big_sales": {
			`EXPLAIN IVM view "big_sales" (QoS 25, fit linear, seed 7)`,
			"view:  SELECT s.salekey, s.amount FROM sales AS s WHERE s.amount > 10",
			"state: bag of view rows with multiplicities",
			"Δs (table sales):",
			"s (table sales): cost(k) = ",
			"max |residual| = ",
		},
		"east_sales": {
			`EXPLAIN IVM view "east_sales" (QoS 30, fit linear, seed 7)`,
			"Δs (table sales):",
			"Δst (table stations):",
			"st (table stations): cost(k) = ",
		},
		"region_totals": {
			`EXPLAIN IVM view "region_totals" (QoS 40, fit linear, seed 7)`,
			"delta: SELECT st.region, s.amount, 1 FROM sales AS s, stations AS st",
			"state: groups (group cols 1, aggregates SUM(s.amount) COUNT(*))",
			"Δs (table sales):",
			"Δst (table stations):",
		},
	}
	for _, cv := range views {
		out, err := cv.Explain()
		if err != nil {
			t.Fatalf("%s: %v", cv.Name, err)
		}
		for _, want := range wants[cv.Name] {
			if !strings.Contains(out, want) {
				t.Errorf("%s: report missing %q:\n%s", cv.Name, want, out)
			}
		}
	}
}

// TestCompileDeterminism: two compiles with the same seed produce
// byte-identical reports (and therefore identical fitted models).
func TestCompileDeterminism(t *testing.T) {
	render := func() string {
		views, err := CompileCatalog(demoDB(t), demoCatalog, Options{Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, cv := range views {
			out, err := cv.Explain()
			if err != nil {
				t.Fatal(err)
			}
			sb.WriteString(out)
		}
		return sb.String()
	}
	if a, b := render(), render(); a != b {
		t.Fatal("same seed produced different compiled output")
	}
}

func TestCompilePiecewiseFit(t *testing.T) {
	cv, err := Compile(demoDB(t), "SELECT s.salekey FROM sales AS s", Options{Name: "pw", Fit: "piecewise", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	out, err := cv.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "piecewise-linear knots (0,0)") {
		t.Errorf("piecewise report missing knots: %s", out)
	}
	// The fit reproduces the samples up to monotone clamping, which only
	// raises the curve: residuals (measured - fitted) are never positive.
	for _, cal := range cv.Calibrations {
		for i, r := range cal.Residuals {
			if r > 1e-9 {
				t.Errorf("%s: k=%d: fitted below measured by %g", cal.Alias, cal.Measurement.K[i], r)
			}
		}
	}
}

// TestCompileDiagnostics pins the `view "x": position N: ...` format and
// the collect-all behavior of CompileCatalog.
func TestCompileDiagnostics(t *testing.T) {
	db := demoDB(t)
	_, err := Compile(db, "SELECT s.salekey FROM sales AS s ORDER BY s.salekey", Options{Name: "bad"})
	if err == nil {
		t.Fatal("ORDER BY view compiled")
	}
	want := fmt.Sprintf("view %q: position %d: ORDER BY is not maintainable", "bad", strings.Index("SELECT s.salekey FROM sales AS s ORDER BY s.salekey", "ORDER")+1)
	if err.Error() != want {
		t.Errorf("diagnostic = %q, want %q", err.Error(), want)
	}

	catalog := `
CREATE MATERIALIZED VIEW ok QOS 10 AS SELECT s.salekey FROM sales AS s;
CREATE MATERIALIZED VIEW lim QOS 10 AS SELECT s.salekey FROM sales AS s LIMIT 3;
CREATE MATERIALIZED VIEW ord QOS 10 AS SELECT s.salekey FROM sales AS s ORDER BY s.salekey;
`
	views, err := CompileCatalog(db, catalog, Options{})
	if err == nil {
		t.Fatal("broken catalog compiled clean")
	}
	if len(views) != 1 || views[0].Name != "ok" {
		t.Errorf("healthy views = %v", views)
	}
	for _, want := range []string{`view "lim": position `, "LIMIT is not maintainable", `view "ord": position `, "ORDER BY is not maintainable"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined diagnostics missing %q: %v", want, err)
		}
	}
}

// TestCompileDataflowSignatures: the -dataflow compile surfaces the
// canonical operator signatures, and two views over the same join spine
// agree on every signature except their private projection top — the
// compile-time prediction of what the shared runtime will intern.
func TestCompileDataflowSignatures(t *testing.T) {
	db := demoDB(t)
	qa := "SELECT st.region, SUM(s.amount) FROM sales AS s, stations AS st WHERE s.station = st.stationkey GROUP BY st.region"
	qb := "SELECT s.station, COUNT(*) FROM sales AS s, stations AS st WHERE s.station = st.stationkey GROUP BY s.station"
	a, err := Compile(db, qa, Options{Name: "a", Dataflow: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bv, err := Compile(db, qb, Options{Name: "b", Dataflow: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out, err := a.Explain()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"dataflow operators", "scan(sales)", "scan(stations)", "join("} {
		if !strings.Contains(out, want) {
			t.Errorf("dataflow report missing %q:\n%s", want, out)
		}
	}
	sa, err := a.OperatorSignatures()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := bv.OperatorSignatures()
	if err != nil {
		t.Fatal(err)
	}
	if len(sa) != 4 || len(sb) != 4 {
		t.Fatalf("signature counts %d/%d, want 4/4", len(sa), len(sb))
	}
	// Post-order: everything below the top coincides, the tops differ.
	for i := 0; i < 3; i++ {
		if sa[i] != sb[i] {
			t.Errorf("spine signature %d differs: %q vs %q", i, sa[i], sb[i])
		}
	}
	if sa[3] == sb[3] {
		t.Errorf("projection tops identical: %q", sa[3])
	}
	// Without the option the section stays out of the report.
	plain, err := Compile(db, qa, Options{Name: "p", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pout, err := plain.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(pout, "dataflow operators") {
		t.Error("plain compile emitted the dataflow section")
	}
}

func TestCompileUnknownTable(t *testing.T) {
	if _, err := Compile(demoDB(t), "SELECT x.a FROM nope AS x", Options{Name: "ghost"}); err == nil || !strings.Contains(err.Error(), `view "ghost"`) {
		t.Errorf("unknown table: err = %v", err)
	}
}

// TestCompileDoesNotMutateTargetDB: compilation calibrates in a sandbox;
// the compile-target database stays untouched.
func TestCompileDoesNotMutateTargetDB(t *testing.T) {
	db := demoDB(t)
	sizeOf := func() map[string]int {
		out := map[string]int{}
		for _, n := range db.TableNames() {
			out[n] = db.MustTable(n).Len()
		}
		return out
	}
	before := sizeOf()
	salesBefore := fmt.Sprintf("%v", collect(db, "sales"))
	if _, err := CompileCatalog(db, demoCatalog, Options{Seed: 9}); err != nil {
		t.Fatal(err)
	}
	after := sizeOf()
	for n, want := range before {
		if after[n] != want {
			t.Errorf("table %s: %d rows after compile, want %d", n, after[n], want)
		}
	}
	if got := fmt.Sprintf("%v", collect(db, "sales")); got != salesBefore {
		t.Error("compilation mutated sales rows")
	}
}

func collect(db *storage.DB, table string) []storage.Row {
	var out []storage.Row
	db.MustTable(table).Scan(func(r storage.Row) bool { out = append(out, r); return true })
	return out
}
