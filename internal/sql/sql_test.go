package sql

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Select {
	t.Helper()
	sel, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return sel
}

func TestParsePaperView(t *testing.T) {
	sel := mustParse(t, `
		SELECT MIN(PS.supplycost)
		FROM PartSupp AS PS, Supplier AS S,
		     Nation AS N, Region AS R
		WHERE S.suppkey = PS.suppkey
		AND S.nationkey = N.nationkey
		AND N.regionkey = R.regionkey
		AND R.name = 'MIDDLE EAST';`)
	if len(sel.Items) != 1 {
		t.Fatalf("items = %d", len(sel.Items))
	}
	agg, ok := sel.Items[0].Expr.(*AggExpr)
	if !ok || agg.Func != AggMin {
		t.Fatalf("item = %#v", sel.Items[0].Expr)
	}
	arg, ok := agg.Arg.(*ColumnRef)
	if !ok || arg.Table != "PS" || arg.Column != "supplycost" {
		t.Fatalf("agg arg = %#v", agg.Arg)
	}
	if len(sel.From) != 4 {
		t.Fatalf("from = %d", len(sel.From))
	}
	if sel.From[0].Table != "PartSupp" || sel.From[0].Alias != "PS" {
		t.Fatalf("from[0] = %+v", sel.From[0])
	}
	if len(sel.Where) != 4 {
		t.Fatalf("where conjuncts = %d", len(sel.Where))
	}
	last, ok := sel.Where[3].(*BinaryExpr)
	if !ok || last.Op != "=" {
		t.Fatalf("where[3] = %#v", sel.Where[3])
	}
	lit, ok := last.Right.(*StringLit)
	if !ok || lit.V != "MIDDLE EAST" {
		t.Fatalf("literal = %#v", last.Right)
	}
	if !sel.HasAggregates() {
		t.Fatal("HasAggregates = false")
	}
}

func TestParseSimpleJoin(t *testing.T) {
	sel := mustParse(t, "SELECT r.a, s.b FROM r, s WHERE r.k = s.k")
	if len(sel.Items) != 2 || len(sel.From) != 2 || len(sel.Where) != 1 {
		t.Fatalf("shape: %+v", sel)
	}
	if sel.From[0].Alias != "r" {
		t.Fatalf("implicit alias = %q", sel.From[0].Alias)
	}
}

func TestParseAliases(t *testing.T) {
	sel := mustParse(t, "SELECT a AS x, b y FROM t AS u, v w")
	if sel.Items[0].Alias != "x" || sel.Items[1].Alias != "y" {
		t.Fatalf("aliases: %+v", sel.Items)
	}
	if sel.From[0].Alias != "u" || sel.From[1].Alias != "w" {
		t.Fatalf("table aliases: %+v", sel.From)
	}
}

func TestParseGroupBy(t *testing.T) {
	sel := mustParse(t, "SELECT n.name, COUNT(*), SUM(s.bal) FROM s, n WHERE s.nk = n.nk GROUP BY n.name")
	if len(sel.GroupBy) != 1 || sel.GroupBy[0].Column != "name" {
		t.Fatalf("group by: %+v", sel.GroupBy)
	}
	if _, ok := sel.Items[1].Expr.(*AggExpr); !ok {
		t.Fatal("COUNT(*) not parsed as aggregate")
	}
}

func TestParseLiteralsAndArithmetic(t *testing.T) {
	sel := mustParse(t, "SELECT a*2 + b/4 - 1, -3, 2.5, 'it''s' FROM t WHERE a >= 1.5 AND b <> 7")
	if len(sel.Items) != 4 {
		t.Fatalf("items: %d", len(sel.Items))
	}
	if lit, ok := sel.Items[1].Expr.(*IntLit); !ok || lit.V != -3 {
		t.Fatalf("negative literal: %#v", sel.Items[1].Expr)
	}
	if lit, ok := sel.Items[2].Expr.(*FloatLit); !ok || lit.V != 2.5 {
		t.Fatalf("float literal: %#v", sel.Items[2].Expr)
	}
	if lit, ok := sel.Items[3].Expr.(*StringLit); !ok || lit.V != "it's" {
		t.Fatalf("escaped string: %#v", sel.Items[3].Expr)
	}
	cmp := sel.Where[1].(*BinaryExpr)
	if cmp.Op != "<>" {
		t.Fatalf("op: %q", cmp.Op)
	}
}

func TestParsePrecedence(t *testing.T) {
	sel := mustParse(t, "SELECT a + b * c FROM t")
	top := sel.Items[0].Expr.(*BinaryExpr)
	if top.Op != "+" {
		t.Fatalf("top op %q", top.Op)
	}
	right := top.Right.(*BinaryExpr)
	if right.Op != "*" {
		t.Fatalf("* should bind tighter, got %q", right.Op)
	}
	// Parentheses override.
	sel = mustParse(t, "SELECT (a + b) * c FROM t")
	top = sel.Items[0].Expr.(*BinaryExpr)
	if top.Op != "*" {
		t.Fatalf("top op %q with parens", top.Op)
	}
}

func TestParseBangEqualsNormalized(t *testing.T) {
	sel := mustParse(t, "SELECT a FROM t WHERE a != 3")
	if sel.Where[0].(*BinaryExpr).Op != "<>" {
		t.Fatal("!= not normalized to <>")
	}
}

func TestStringRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT MIN(PS.supplycost) FROM PartSupp AS PS, Supplier AS S WHERE S.suppkey = PS.suppkey",
		"SELECT n.name, COUNT(*) FROM s, n WHERE s.nk = n.nk GROUP BY n.name",
		"SELECT a AS x FROM t WHERE a >= 1.5",
	}
	for _, q := range queries {
		first := mustParse(t, q)
		second := mustParse(t, first.String())
		if first.String() != second.String() {
			t.Fatalf("not a fixed point:\n%s\n%s", first.String(), second.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{"", "expected SELECT"},
		{"SELECT", "unexpected token"},
		{"SELECT a", "expected FROM"},
		{"SELECT a FROM", "expected table name"},
		{"SELECT a FROM t WHERE", "unexpected token"},
		{"SELECT a FROM t WHERE a", "expected comparison"},
		{"SELECT a FROM t extra junk", "unexpected trailing"},
		{"SELECT a FROM t WHERE a = 'oops", "unterminated string"},
		{"SELECT MIN(*) FROM t", "only COUNT(*)"},
		{"SELECT a FROM t GROUP BY 1", "column references only"},
		{"SELECT a FROM t WHERE a = ?", "unexpected character"},
		{"SELECT a. FROM t", "expected column"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q) error %q, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("SELECT a FRM t")
	if err == nil {
		t.Fatal("expected error")
	}
	var perr *Error
	ok := false
	if e, is := err.(*Error); is {
		perr, ok = e, true
	}
	if !ok || perr.Pos <= 0 {
		t.Fatalf("error lacks position: %#v", err)
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	sel := mustParse(t, "select min(a) from t where b = 1 group by c")
	if !sel.HasAggregates() || len(sel.GroupBy) != 1 {
		t.Fatalf("lower-case parse failed: %+v", sel)
	}
}
