package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// ViewDef is one catalog statement:
//
//	CREATE MATERIALIZED VIEW <name> QOS <c> AS SELECT ... ;
//
// Name is the subscription name the compiled view registers under, QoS
// its response-time constraint C (the paper's bound on refresh cost),
// and Query the view definition. Pos is the 1-based byte offset of the
// CREATE keyword in the catalog source.
type ViewDef struct {
	Name  string
	QoS   float64
	Query *Select
	Pos   int
}

// String renders the statement in canonical catalog form (no trailing
// semicolon; Catalog.String adds statement separators).
func (v ViewDef) String() string {
	qos := strconv.FormatFloat(v.QoS, 'g', -1, 64)
	return fmt.Sprintf("CREATE MATERIALIZED VIEW %s QOS %s AS %s", v.Name, qos, v.Query.String())
}

// Catalog is an ordered list of view definitions — the parsed form of a
// views.sql file.
type Catalog []ViewDef

// String renders the catalog as a views.sql file: one statement per
// line, each terminated by a semicolon.
func (c Catalog) String() string {
	var sb strings.Builder
	for _, v := range c {
		sb.WriteString(v.String())
		sb.WriteString(";\n")
	}
	return sb.String()
}

// ParseCatalog parses a views.sql catalog: a sequence of CREATE
// MATERIALIZED VIEW statements separated by semicolons, with `--` line
// comments allowed anywhere. View names must be unique. An empty
// catalog (comments only) parses to an empty list.
func ParseCatalog(src string) (Catalog, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out Catalog
	seen := map[string]int{}
	for p.peek().kind != tokEOF {
		v, err := p.parseViewDef()
		if err != nil {
			return nil, err
		}
		if prev, dup := seen[v.Name]; dup {
			return nil, errAt(v.Pos, "duplicate view name %q (first defined at position %d)", v.Name, prev)
		}
		seen[v.Name] = v.Pos
		out = append(out, v)
		// Statement separator: at least one semicolon; the final one is
		// optional before EOF.
		if !p.acceptSymbol(";") {
			if p.peek().kind == tokEOF {
				break
			}
			return nil, errAt(p.peek().pos, "expected \";\" between catalog statements, found %q", p.peek().text)
		}
		for p.acceptSymbol(";") {
		}
	}
	return out, nil
}

// parseViewDef parses one CREATE MATERIALIZED VIEW statement.
func (p *parser) parseViewDef() (ViewDef, error) {
	v := ViewDef{Pos: p.peek().pos}
	for _, kw := range []string{"CREATE", "MATERIALIZED", "VIEW"} {
		if err := p.expectKeyword(kw); err != nil {
			return ViewDef{}, err
		}
	}
	t := p.peek()
	if t.kind != tokIdent {
		return ViewDef{}, errAt(t.pos, "expected view name, found %q", t.text)
	}
	v.Name = t.text
	p.advance()
	if err := p.expectKeyword("QOS"); err != nil {
		return ViewDef{}, err
	}
	q := p.peek()
	if q.kind != tokNumber {
		return ViewDef{}, errAt(q.pos, "QOS requires a numeric bound, found %q", q.text)
	}
	qos, err := strconv.ParseFloat(q.text, 64)
	if err != nil || qos <= 0 {
		return ViewDef{}, errAt(q.pos, "QOS bound must be a positive number, got %q", q.text)
	}
	v.QoS = qos
	p.advance()
	if err := p.expectKeyword("AS"); err != nil {
		return ViewDef{}, err
	}
	sel, err := p.parseSelect()
	if err != nil {
		return ViewDef{}, err
	}
	v.Query = sel
	return v, nil
}
