package sql

import (
	"strings"
	"testing"
)

func TestParseOrderByAndLimit(t *testing.T) {
	sel := mustParse(t, "SELECT a, b FROM t ORDER BY a DESC, b ASC LIMIT 10")
	if len(sel.OrderBy) != 2 {
		t.Fatalf("order by = %+v", sel.OrderBy)
	}
	if !sel.OrderBy[0].Desc || sel.OrderBy[0].Expr.Column != "a" {
		t.Fatalf("first key = %+v", sel.OrderBy[0])
	}
	if sel.OrderBy[1].Desc || sel.OrderBy[1].Expr.Column != "b" {
		t.Fatalf("second key = %+v", sel.OrderBy[1])
	}
	if sel.Limit == nil || *sel.Limit != 10 {
		t.Fatalf("limit = %v", sel.Limit)
	}
}

func TestParseOrderByDefaultsAscending(t *testing.T) {
	sel := mustParse(t, "SELECT a FROM t ORDER BY a")
	if sel.OrderBy[0].Desc {
		t.Fatal("default direction should be ascending")
	}
	if sel.Limit != nil {
		t.Fatalf("limit = %v without LIMIT clause", sel.Limit)
	}
}

func TestParseOrderByAfterGroupBy(t *testing.T) {
	sel := mustParse(t, "SELECT a, COUNT(*) AS c FROM t GROUP BY a ORDER BY c DESC LIMIT 5")
	if len(sel.GroupBy) != 1 || len(sel.OrderBy) != 1 || sel.Limit == nil {
		t.Fatalf("parsed shape: %+v", sel)
	}
}

func TestOrderLimitStringRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT a FROM t ORDER BY a DESC LIMIT 3",
		"SELECT a, b FROM t ORDER BY a, b DESC",
		"SELECT a FROM t LIMIT 0",
	}
	for _, q := range queries {
		first := mustParse(t, q)
		second := mustParse(t, first.String())
		if first.String() != second.String() {
			t.Fatalf("not a fixed point: %s -> %s", first.String(), second.String())
		}
	}
}

func TestParseOrderLimitErrors(t *testing.T) {
	cases := []struct{ src, sub string }{
		{"SELECT a FROM t ORDER a", "expected BY"},
		{"SELECT a FROM t ORDER BY 1", "column references only"},
		{"SELECT a FROM t LIMIT x", "LIMIT requires an integer"},
		{"SELECT a FROM t LIMIT 1.5", "LIMIT requires an integer"},
		{"SELECT a FROM t LIMIT -1", "LIMIT requires an integer"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil || !strings.Contains(err.Error(), c.sub) {
			t.Errorf("Parse(%q) err = %v, want %q", c.src, err, c.sub)
		}
	}
}
