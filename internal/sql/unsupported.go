package sql

import "fmt"

// UnsupportedError reports a query feature that parses fine but cannot
// be incrementally maintained (ORDER BY, LIMIT, self-joins, unknown
// aggregates, select items outside GROUP BY, ...). It carries the
// 1-based byte position of the offending construct so front ends can
// point at the source text instead of echoing a bare string; Pos is 0
// when the construct was built programmatically and has no source
// position.
type UnsupportedError struct {
	Pos     int    // 1-based byte offset into the query text; 0 = unknown
	Feature string // human-readable name of the rejected construct
}

// Error renders "position N: <feature> is not maintainable".
func (e *UnsupportedError) Error() string {
	if e.Pos > 0 {
		return fmt.Sprintf("sql: position %d: %s is not maintainable", e.Pos, e.Feature)
	}
	return fmt.Sprintf("sql: %s is not maintainable", e.Feature)
}

// Unsupported builds an UnsupportedError for the feature at pos.
func Unsupported(pos int, format string, args ...any) error {
	return &UnsupportedError{Pos: pos, Feature: fmt.Sprintf(format, args...)}
}
