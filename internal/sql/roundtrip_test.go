package sql

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestRandomASTRoundTrip generates random well-formed SELECT ASTs,
// renders them with String, re-parses, and requires the canonical forms
// to match — a grammar/printer consistency property over a much larger
// space than the hand-written cases.
func TestRandomASTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 500; trial++ {
		sel := randomSelect(rng)
		src := sel.String()
		parsed, err := Parse(src)
		if err != nil {
			t.Fatalf("trial %d: rendered query does not parse: %v\n%s", trial, err, src)
		}
		if parsed.String() != src {
			t.Fatalf("trial %d: round trip changed the query:\n%s\n%s", trial, src, parsed.String())
		}
	}
}

// TestRandomASTStructuralEquality re-parses rendered queries and compares
// the ASTs structurally (not just textually).
func TestRandomASTStructuralEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 200; trial++ {
		sel := randomSelect(rng)
		parsed, err := Parse(sel.String())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(normalize(sel), normalize(parsed)) {
			t.Fatalf("trial %d: structural mismatch:\n%#v\n%#v", trial, sel, parsed)
		}
	}
}

// normalize strips features the printer canonicalizes away so DeepEqual
// compares semantics: source positions (absent from programmatic ASTs,
// present after parsing) are zeroed throughout.
func normalize(s *Select) *Select {
	out := *s
	out.OrderByPos, out.LimitPos = 0, 0
	out.Items = make([]SelectItem, len(s.Items))
	for i, it := range s.Items {
		out.Items[i] = SelectItem{Expr: stripPos(it.Expr), Alias: it.Alias}
	}
	out.Where = make([]Expr, len(s.Where))
	for i, w := range s.Where {
		out.Where[i] = stripPos(w)
	}
	out.GroupBy = make([]*ColumnRef, len(s.GroupBy))
	for i, g := range s.GroupBy {
		out.GroupBy[i] = stripPos(g).(*ColumnRef)
	}
	out.OrderBy = make([]OrderItem, len(s.OrderBy))
	for i, o := range s.OrderBy {
		out.OrderBy[i] = OrderItem{Expr: stripPos(o.Expr).(*ColumnRef), Desc: o.Desc}
	}
	return &out
}

// stripPos deep-copies an expression with every source position zeroed.
func stripPos(e Expr) Expr {
	switch x := e.(type) {
	case *ColumnRef:
		return &ColumnRef{Table: x.Table, Column: x.Column}
	case *AggExpr:
		out := &AggExpr{Func: x.Func}
		if x.Arg != nil {
			out.Arg = stripPos(x.Arg)
		}
		return out
	case *BinaryExpr:
		return &BinaryExpr{Op: x.Op, Left: stripPos(x.Left), Right: stripPos(x.Right)}
	}
	return e
}

// --- random AST generation -------------------------------------------

var identPool = []string{"a", "b", "c", "price", "qty", "nationkey", "suppkey"}
var tablePool = []string{"t1", "t2", "t3", "orders", "parts"}

func randomSelect(rng *rand.Rand) *Select {
	sel := &Select{}
	nFrom := 1 + rng.Intn(3)
	usedTables := map[string]bool{}
	var aliases []string
	for len(sel.From) < nFrom {
		tbl := tablePool[rng.Intn(len(tablePool))]
		if usedTables[tbl] {
			continue
		}
		usedTables[tbl] = true
		alias := tbl
		if rng.Intn(2) == 0 {
			alias = "x" + tbl
		}
		sel.From = append(sel.From, TableRef{Table: tbl, Alias: alias})
		aliases = append(aliases, alias)
	}
	agg := rng.Intn(2) == 0
	nItems := 1 + rng.Intn(3)
	for i := 0; i < nItems; i++ {
		var e Expr
		if agg {
			e = randomAgg(rng, aliases)
		} else {
			e = randomScalar(rng, aliases, 2)
		}
		item := SelectItem{Expr: e}
		if rng.Intn(3) == 0 {
			item.Alias = "out" + identPool[rng.Intn(len(identPool))]
		}
		sel.Items = append(sel.Items, item)
	}
	nWhere := rng.Intn(3)
	for i := 0; i < nWhere; i++ {
		ops := []string{"=", "<>", "<", "<=", ">", ">="}
		sel.Where = append(sel.Where, &BinaryExpr{
			Op:    ops[rng.Intn(len(ops))],
			Left:  randomScalar(rng, aliases, 1),
			Right: randomScalar(rng, aliases, 1),
		})
	}
	if agg && rng.Intn(2) == 0 {
		sel.GroupBy = append(sel.GroupBy, randomColumn(rng, aliases))
	}
	if rng.Intn(3) == 0 {
		n := 1 + rng.Intn(2)
		for i := 0; i < n; i++ {
			sel.OrderBy = append(sel.OrderBy, OrderItem{
				Expr: randomColumn(rng, aliases),
				Desc: rng.Intn(2) == 0,
			})
		}
	}
	if rng.Intn(3) == 0 {
		lim := int64(rng.Intn(100))
		sel.Limit = &lim
	}
	return sel
}

func randomColumn(rng *rand.Rand, aliases []string) *ColumnRef {
	ref := &ColumnRef{Column: identPool[rng.Intn(len(identPool))]}
	if rng.Intn(2) == 0 {
		ref.Table = aliases[rng.Intn(len(aliases))]
	}
	return ref
}

func randomScalar(rng *rand.Rand, aliases []string, depth int) Expr {
	if depth == 0 || rng.Intn(3) > 0 {
		switch rng.Intn(4) {
		case 0:
			return randomColumn(rng, aliases)
		case 1:
			return &IntLit{V: int64(rng.Intn(1000)) - 500}
		case 2:
			// A forced .5 fraction keeps the literal a float through the
			// print/parse round trip (integral floats reparse as ints).
			return &FloatLit{V: float64(rng.Intn(9000)) + 0.5}
		default:
			return &StringLit{V: "str'" + identPool[rng.Intn(len(identPool))]}
		}
	}
	ops := []string{"+", "-", "*", "/"}
	return &BinaryExpr{
		Op:    ops[rng.Intn(len(ops))],
		Left:  randomScalar(rng, aliases, depth-1),
		Right: randomScalar(rng, aliases, depth-1),
	}
}

func randomAgg(rng *rand.Rand, aliases []string) Expr {
	funcs := []AggFunc{AggMin, AggMax, AggSum, AggCount, AggAvg}
	f := funcs[rng.Intn(len(funcs))]
	if f == AggCount && rng.Intn(2) == 0 {
		return &AggExpr{Func: AggCount}
	}
	return &AggExpr{Func: f, Arg: randomScalar(rng, aliases, 1)}
}
