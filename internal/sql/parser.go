package sql

import "strconv"

// Parse parses a single SELECT statement (with optional trailing
// semicolon) into its AST.
func Parse(src string) (*Select, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	// Optional trailing semicolon, then EOF.
	if p.peek().kind == tokSymbol && p.peek().text == ";" {
		p.advance()
	}
	if p.peek().kind != tokEOF {
		return nil, errAt(p.peek().pos, "unexpected trailing input %q", p.peek().text)
	}
	return sel, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) advance() token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func (p *parser) expectKeyword(kw string) error {
	t := p.peek()
	if t.kind != tokKeyword || t.text != kw {
		return errAt(t.pos, "expected %s, found %q", kw, t.text)
	}
	p.advance()
	return nil
}

func (p *parser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.kind == tokKeyword && t.text == kw {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	t := p.peek()
	if t.kind != tokSymbol || t.text != sym {
		return errAt(t.pos, "expected %q, found %q", sym, t.text)
	}
	p.advance()
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == sym {
		p.advance()
		return true
	}
	return false
}

func (p *parser) parseSelect() (*Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		sel.From = append(sel.From, tr)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		for {
			e, err := p.parseComparison()
			if err != nil {
				return nil, err
			}
			sel.Where = append(sel.Where, e)
			if !p.acceptKeyword("AND") {
				break
			}
		}
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			t := p.peek()
			e, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			cr, ok := e.(*ColumnRef)
			if !ok {
				return nil, errAt(t.pos, "GROUP BY supports column references only")
			}
			sel.GroupBy = append(sel.GroupBy, cr)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if t := p.peek(); t.kind == tokKeyword && t.text == "ORDER" {
		sel.OrderByPos = t.pos
		p.advance()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			t := p.peek()
			e, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			cr, ok := e.(*ColumnRef)
			if !ok {
				return nil, errAt(t.pos, "ORDER BY supports column references only")
			}
			item := OrderItem{Expr: cr}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if lt := p.peek(); lt.kind == tokKeyword && lt.text == "LIMIT" {
		sel.LimitPos = lt.pos
		p.advance()
		t := p.peek()
		if t.kind != tokNumber || hasDot(t.text) {
			return nil, errAt(t.pos, "LIMIT requires an integer literal")
		}
		p.advance()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil || n < 0 {
			return nil, errAt(t.pos, "bad LIMIT %q", t.text)
		}
		sel.Limit = &n
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	e, err := p.parseAdditive()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		t := p.peek()
		if t.kind != tokIdent {
			return SelectItem{}, errAt(t.pos, "expected alias after AS, found %q", t.text)
		}
		item.Alias = t.text
		p.advance()
	} else if t := p.peek(); t.kind == tokIdent {
		// Bare alias: SELECT expr alias.
		item.Alias = t.text
		p.advance()
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return TableRef{}, errAt(t.pos, "expected table name, found %q", t.text)
	}
	p.advance()
	tr := TableRef{Table: t.text, Alias: t.text}
	if p.acceptKeyword("AS") {
		a := p.peek()
		if a.kind != tokIdent {
			return TableRef{}, errAt(a.pos, "expected alias after AS, found %q", a.text)
		}
		tr.Alias = a.text
		p.advance()
	} else if a := p.peek(); a.kind == tokIdent {
		tr.Alias = a.text
		p.advance()
	}
	return tr, nil
}

// parseComparison parses expr cmp expr.
func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind != tokSymbol {
		return nil, errAt(t.pos, "expected comparison operator, found %q", t.text)
	}
	switch t.text {
	case "=", "<>", "<", "<=", ">", ">=":
	default:
		return nil, errAt(t.pos, "expected comparison operator, found %q", t.text)
	}
	p.advance()
	right, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &BinaryExpr{Op: t.text, Left: left, Right: right}, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokSymbol || (t.text != "+" && t.text != "-") {
			return left, nil
		}
		p.advance()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: t.text, Left: left, Right: right}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokSymbol || (t.text != "*" && t.text != "/") {
			return left, nil
		}
		p.advance()
		right, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: t.text, Left: left, Right: right}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.advance()
		if hasDot(t.text) {
			v, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, errAt(t.pos, "bad number %q", t.text)
			}
			return &FloatLit{V: v}, nil
		}
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, errAt(t.pos, "bad number %q", t.text)
		}
		return &IntLit{V: v}, nil
	case tokString:
		p.advance()
		return &StringLit{V: t.text}, nil
	case tokKeyword:
		switch AggFunc(t.text) {
		case AggMin, AggMax, AggSum, AggCount, AggAvg:
			return p.parseAgg(AggFunc(t.text))
		}
		return nil, errAt(t.pos, "unexpected keyword %q", t.text)
	case tokIdent:
		p.advance()
		ref := &ColumnRef{Column: t.text, Pos: t.pos}
		if p.acceptSymbol(".") {
			c := p.peek()
			if c.kind != tokIdent {
				return nil, errAt(c.pos, "expected column after %q.", t.text)
			}
			p.advance()
			ref.Table = t.text
			ref.Column = c.text
		}
		return ref, nil
	case tokSymbol:
		if t.text == "(" {
			p.advance()
			e, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.text == "-" {
			p.advance()
			inner, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			// Fold negation into literals; otherwise 0 - expr.
			switch lit := inner.(type) {
			case *IntLit:
				return &IntLit{V: -lit.V}, nil
			case *FloatLit:
				return &FloatLit{V: -lit.V}, nil
			}
			return &BinaryExpr{Op: "-", Left: &IntLit{V: 0}, Right: inner}, nil
		}
	}
	return nil, errAt(t.pos, "unexpected token %q", t.text)
}

func (p *parser) parseAgg(fn AggFunc) (Expr, error) {
	pos := p.peek().pos
	p.advance() // consume the function keyword
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	if p.acceptSymbol("*") {
		if fn != AggCount {
			return nil, errAt(p.peek().pos, "%s(*) is not supported; only COUNT(*)", fn)
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &AggExpr{Func: AggCount, Pos: pos}, nil
	}
	arg, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &AggExpr{Func: fn, Arg: arg, Pos: pos}, nil
}

func hasDot(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return true
		}
	}
	return false
}
