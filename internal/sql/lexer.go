// Package sql implements the front end for the SQL subset the paper's
// views use: single-block SELECT queries with comma joins, conjunctive
// WHERE clauses of comparisons, aggregate functions (MIN, MAX, SUM,
// COUNT, AVG), and GROUP BY. The plan package turns the AST produced here
// into executable operator trees.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

// token is one lexeme with its source position (1-based byte offset).
type token struct {
	kind tokenKind
	text string // keywords are upper-cased; idents keep original case
	pos  int
}

// keywords recognized by the lexer (upper-case canonical form).
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "AS": true,
	"GROUP": true, "BY": true, "MIN": true, "MAX": true, "SUM": true,
	"COUNT": true, "AVG": true, "ORDER": true, "ASC": true, "DESC": true,
	"LIMIT": true,
	// Catalog statements (views.sql files).
	"CREATE": true, "MATERIALIZED": true, "VIEW": true, "QOS": true,
}

// lexer tokenizes a SQL string.
type lexer struct {
	src string
	pos int
}

// Error is a parse or lex error with position information.
type Error struct {
	Pos int
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("sql: position %d: %s", e.Pos, e.Msg) }

func errAt(pos int, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		if unicode.IsSpace(rune(l.src[l.pos])) {
			l.pos++
			continue
		}
		// "--" starts a line comment (catalog files use them as headers).
		if l.src[l.pos] == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		break
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos + 1}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		upper := strings.ToUpper(text)
		if keywords[upper] {
			return token{kind: tokKeyword, text: upper, pos: start + 1}, nil
		}
		return token{kind: tokIdent, text: text, pos: start + 1}, nil
	case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
		seenDot := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == '.' {
				if seenDot {
					break
				}
				seenDot = true
				l.pos++
				continue
			}
			if !isDigit(ch) {
				break
			}
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start + 1}, nil
	case c == '\'':
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, errAt(start+1, "unterminated string literal")
			}
			ch := l.src[l.pos]
			if ch == '\'' {
				// '' escapes a quote.
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					sb.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			sb.WriteByte(ch)
			l.pos++
		}
		return token{kind: tokString, text: sb.String(), pos: start + 1}, nil
	default:
		// Multi-character operators first.
		for _, op := range []string{"<=", ">=", "<>", "!="} {
			if strings.HasPrefix(l.src[l.pos:], op) {
				l.pos += len(op)
				text := op
				if op == "!=" {
					text = "<>"
				}
				return token{kind: tokSymbol, text: text, pos: start + 1}, nil
			}
		}
		switch c {
		case ',', '(', ')', '=', '<', '>', '*', '+', '-', '/', ';', '.':
			l.pos++
			return token{kind: tokSymbol, text: string(c), pos: start + 1}, nil
		}
		return token{}, errAt(start+1, "unexpected character %q", c)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, error) {
	l := &lexer{src: src}
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
