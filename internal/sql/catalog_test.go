package sql

import (
	"reflect"
	"strings"
	"testing"
)

const testCatalog = `
-- demo views over the stations/sales schema
CREATE MATERIALIZED VIEW big_sales QOS 25 AS
SELECT s.salekey, s.amount FROM sales AS s WHERE s.amount > 10;

CREATE MATERIALIZED VIEW east_sales QOS 30.5 AS
SELECT s.salekey, st.region FROM sales AS s, stations AS st
WHERE s.station = st.stationkey AND st.region = 'EAST';

CREATE MATERIALIZED VIEW region_totals QOS 40 AS
SELECT st.region, SUM(s.amount), COUNT(*) FROM sales AS s, stations AS st
WHERE s.station = st.stationkey GROUP BY st.region
`

func TestParseCatalog(t *testing.T) {
	cat, err := ParseCatalog(testCatalog)
	if err != nil {
		t.Fatal(err)
	}
	if len(cat) != 3 {
		t.Fatalf("got %d views, want 3", len(cat))
	}
	wantNames := []string{"big_sales", "east_sales", "region_totals"}
	wantQoS := []float64{25, 30.5, 40}
	for i, v := range cat {
		if v.Name != wantNames[i] {
			t.Errorf("view %d name = %q, want %q", i, v.Name, wantNames[i])
		}
		if v.QoS != wantQoS[i] {
			t.Errorf("view %d QoS = %g, want %g", i, v.QoS, wantQoS[i])
		}
		if v.Pos <= 0 {
			t.Errorf("view %d has no source position", i)
		}
	}
	if got := len(cat[2].Query.GroupBy); got != 1 {
		t.Errorf("region_totals GROUP BY arity = %d, want 1", got)
	}
}

// TestCatalogRoundTrip proves parse → String → parse is the identity on
// the canonical form: the re-parsed catalog matches both textually and
// structurally.
func TestCatalogRoundTrip(t *testing.T) {
	cat, err := ParseCatalog(testCatalog)
	if err != nil {
		t.Fatal(err)
	}
	rendered := cat.String()
	again, err := ParseCatalog(rendered)
	if err != nil {
		t.Fatalf("canonical catalog does not re-parse: %v\n%s", err, rendered)
	}
	if got := again.String(); got != rendered {
		t.Fatalf("round trip changed the catalog:\n%s\n%s", rendered, got)
	}
	if len(again) != len(cat) {
		t.Fatalf("round trip changed view count: %d vs %d", len(again), len(cat))
	}
	for i := range cat {
		a, b := cat[i], again[i]
		if a.Name != b.Name || a.QoS != b.QoS {
			t.Errorf("view %d header changed: %q/%g vs %q/%g", i, a.Name, a.QoS, b.Name, b.QoS)
		}
		if !reflect.DeepEqual(normalize(a.Query), normalize(b.Query)) {
			t.Errorf("view %d query changed structurally:\n%#v\n%#v", i, a.Query, b.Query)
		}
	}
}

func TestParseCatalogErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"CREATE VIEW x QOS 1 AS SELECT a FROM t", "expected MATERIALIZED"},
		{"CREATE MATERIALIZED VIEW 5 QOS 1 AS SELECT a FROM t", "expected view name"},
		{"CREATE MATERIALIZED VIEW x AS SELECT a FROM t", "expected QOS"},
		{"CREATE MATERIALIZED VIEW x QOS abc AS SELECT a FROM t", "QOS requires a numeric bound"},
		{"CREATE MATERIALIZED VIEW x QOS 0 AS SELECT a FROM t", "must be a positive number"},
		{"CREATE MATERIALIZED VIEW x QOS -3 AS SELECT a FROM t", "QOS requires a numeric bound"},
		{"CREATE MATERIALIZED VIEW x QOS 1 SELECT a FROM t", "expected AS"},
		{
			"CREATE MATERIALIZED VIEW x QOS 1 AS SELECT a FROM t; CREATE MATERIALIZED VIEW x QOS 2 AS SELECT b FROM u",
			"duplicate view name",
		},
		{
			"CREATE MATERIALIZED VIEW x QOS 1 AS SELECT a FROM t CREATE MATERIALIZED VIEW y QOS 2 AS SELECT b FROM u",
			"expected \";\"",
		},
	}
	for _, tc := range cases {
		_, err := ParseCatalog(tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseCatalog(%q) error = %v, want substring %q", tc.src, err, tc.want)
		}
	}
}

// TestLineComments proves `--` comments are stripped by the lexer in
// both plain queries and catalogs.
func TestLineComments(t *testing.T) {
	sel, err := Parse("SELECT a -- trailing comment\nFROM t -- another\n")
	if err != nil {
		t.Fatal(err)
	}
	if got := sel.String(); got != "SELECT a FROM t" {
		t.Errorf("comment parse = %q", got)
	}
	if _, err := ParseCatalog("-- only comments\n-- nothing else\n"); err != nil {
		t.Errorf("comment-only catalog: %v", err)
	}
}

// TestUnsupportedError pins the diagnostic rendering with and without a
// source position.
func TestUnsupportedError(t *testing.T) {
	e := &UnsupportedError{Pos: 42, Feature: "ORDER BY"}
	if got := e.Error(); got != "sql: position 42: ORDER BY is not maintainable" {
		t.Errorf("Error() = %q", got)
	}
	e2 := &UnsupportedError{Feature: "self-join"}
	if got := e2.Error(); got != "sql: self-join is not maintainable" {
		t.Errorf("Error() = %q", got)
	}
}

// TestParserPositions proves the parser records clause and reference
// positions for diagnostics.
func TestParserPositions(t *testing.T) {
	src := "SELECT a FROM t ORDER BY a LIMIT 3"
	sel, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if want := strings.Index(src, "ORDER") + 1; sel.OrderByPos != want {
		t.Errorf("OrderByPos = %d, want %d", sel.OrderByPos, want)
	}
	if want := strings.Index(src, "LIMIT") + 1; sel.LimitPos != want {
		t.Errorf("LimitPos = %d, want %d", sel.LimitPos, want)
	}
	ref, ok := sel.Items[0].Expr.(*ColumnRef)
	if !ok || ref.Pos != len("SELECT ")+1 {
		t.Errorf("select item position = %+v", sel.Items[0].Expr)
	}
	agg, err := Parse("SELECT SUM(a) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	ax := agg.Items[0].Expr.(*AggExpr)
	if ax.Pos != len("SELECT ")+1 {
		t.Errorf("AggExpr.Pos = %d", ax.Pos)
	}
}
