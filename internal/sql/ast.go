package sql

import (
	"fmt"
	"strings"
)

// Expr is a scalar expression node.
type Expr interface {
	exprNode()
	String() string
}

// ColumnRef references a column, optionally qualified by a table alias.
type ColumnRef struct {
	Table  string // alias or table name; "" if unqualified
	Column string
	// Pos is the 1-based byte offset of the reference in the source text;
	// 0 for programmatically built nodes. It feeds UnsupportedError
	// diagnostics and never participates in String or equality semantics.
	Pos int
}

func (*ColumnRef) exprNode() {}

// String renders the reference as it was written.
func (c *ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// IntLit is an integer literal.
type IntLit struct{ V int64 }

func (*IntLit) exprNode() {}

// String renders the literal.
func (l *IntLit) String() string { return fmt.Sprintf("%d", l.V) }

// FloatLit is a floating-point literal.
type FloatLit struct{ V float64 }

func (*FloatLit) exprNode() {}

// String renders the literal.
func (l *FloatLit) String() string { return fmt.Sprintf("%g", l.V) }

// StringLit is a string literal.
type StringLit struct{ V string }

func (*StringLit) exprNode() {}

// String renders the literal in SQL quoting.
func (l *StringLit) String() string { return "'" + strings.ReplaceAll(l.V, "'", "''") + "'" }

// BinaryExpr is an arithmetic or comparison expression.
type BinaryExpr struct {
	Op          string // one of + - * / = <> < <= > >=
	Left, Right Expr
}

func (*BinaryExpr) exprNode() {}

// String renders the expression; arithmetic is parenthesized explicitly,
// comparisons print bare (they only occur as top-level WHERE conjuncts,
// where the parser does not accept parentheses).
func (b *BinaryExpr) String() string {
	switch b.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		return b.Left.String() + " " + b.Op + " " + b.Right.String()
	}
	return "(" + b.Left.String() + " " + b.Op + " " + b.Right.String() + ")"
}

// AggFunc names an aggregate function.
type AggFunc string

// Supported aggregate functions.
const (
	AggMin   AggFunc = "MIN"
	AggMax   AggFunc = "MAX"
	AggSum   AggFunc = "SUM"
	AggCount AggFunc = "COUNT"
	AggAvg   AggFunc = "AVG"
)

// AggExpr is an aggregate function application. Arg is nil for COUNT(*).
type AggExpr struct {
	Func AggFunc
	Arg  Expr
	// Pos is the 1-based byte offset of the function keyword; 0 for
	// programmatically built nodes.
	Pos int
}

func (*AggExpr) exprNode() {}

// String renders the aggregate call.
func (a *AggExpr) String() string {
	if a.Arg == nil {
		return string(a.Func) + "(*)"
	}
	return string(a.Func) + "(" + a.Arg.String() + ")"
}

// SelectItem is one output column of a SELECT list.
type SelectItem struct {
	Expr  Expr
	Alias string // "" if none
}

// TableRef is one entry of the FROM clause.
type TableRef struct {
	Table string
	Alias string // equals Table when no alias given
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr *ColumnRef
	Desc bool
}

// Select is a parsed single-block query.
type Select struct {
	Items   []SelectItem
	From    []TableRef
	Where   []Expr // conjuncts; each is a comparison BinaryExpr
	GroupBy []*ColumnRef
	OrderBy []OrderItem
	// Limit caps the result size; nil means no limit. (A pointer keeps
	// the zero Select meaning "no limit", which programmatic AST
	// construction relies on.)
	Limit *int64
	// OrderByPos and LimitPos are the 1-based byte offsets of the ORDER
	// and LIMIT keywords; 0 when the clause is absent or programmatic.
	// They let the IVM front end point its "not maintainable"
	// diagnostics at the offending clause.
	OrderByPos int
	LimitPos   int
}

// String reassembles a canonical form of the query.
func (s *Select) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(it.Expr.String())
		if it.Alias != "" {
			sb.WriteString(" AS " + it.Alias)
		}
	}
	sb.WriteString(" FROM ")
	for i, tr := range s.From {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(tr.Table)
		if tr.Alias != tr.Table {
			sb.WriteString(" AS " + tr.Alias)
		}
	}
	if len(s.Where) > 0 {
		sb.WriteString(" WHERE ")
		for i, w := range s.Where {
			if i > 0 {
				sb.WriteString(" AND ")
			}
			sb.WriteString(w.String())
		}
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.String())
		}
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.Expr.String())
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if s.Limit != nil {
		fmt.Fprintf(&sb, " LIMIT %d", *s.Limit)
	}
	return sb.String()
}

// HasAggregates reports whether any select item contains an aggregate.
func (s *Select) HasAggregates() bool {
	for _, it := range s.Items {
		if exprHasAgg(it.Expr) {
			return true
		}
	}
	return false
}

func exprHasAgg(e Expr) bool {
	switch x := e.(type) {
	case *AggExpr:
		return true
	case *BinaryExpr:
		return exprHasAgg(x.Left) || exprHasAgg(x.Right)
	}
	return false
}
