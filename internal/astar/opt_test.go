package astar

// Tests pinning the behaviour of the allocation-lean search rewrite:
// packed node keys, the cached per-node heuristic, and the pooled
// state/action vectors must be invisible — same optimal costs, same
// deterministic search counters as the original string-keyed code.

import (
	"container/heap"
	"fmt"
	"math/rand"
	"testing"

	"abivm/internal/core"
	"abivm/internal/costfn"
)

// refItem / refQueue implement the reference search's priority queue.
type refItem struct {
	key string
	g   float64
}

type refQueue []refItem

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	if q[i].g != q[j].g {
		return q[i].g < q[j].g
	}
	return q[i].key < q[j].key
}
func (q refQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *refQueue) Push(x any)   { *q = append(*q, x.(refItem)) }
func (q *refQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// referenceDijkstra is the pre-optimization search kept as an executable
// specification: string node keys built with fmt.Sprintf, a fresh Vector
// clone per accumulated state and per edge, no heuristic, lazy-deletion
// Dijkstra. It is deliberately naive — the optimized Search must agree
// with it on optimal plan cost.
func referenceDijkstra(in *core.Instance) float64 {
	type node struct {
		t     int
		state core.Vector
	}
	key := func(n node) string { return fmt.Sprintf("%d|%s", n.t, n.state.Key()) }
	accumulated := func(state core.Vector, t1, t2 int) core.Vector {
		out := state.Clone()
		for t := t1 + 1; t <= t2; t++ {
			out.AddInPlace(in.Arrivals[t])
		}
		return out
	}
	tEnd := in.T()
	nextFull := func(state core.Vector, t1 int) int {
		for t2 := t1 + 1; t2 <= tEnd; t2++ {
			if in.Model.Full(accumulated(state, t1, t2), in.C) {
				return t2
			}
		}
		return tEnd + 1
	}
	src := node{t: -1, state: core.NewVector(in.N())}
	dest := key(node{t: tEnd, state: core.NewVector(in.N())})
	dist := map[string]float64{key(src): 0}
	nodes := map[string]node{key(src): src}
	q := refQueue{{key: key(src), g: 0}}
	for len(q) > 0 {
		it := heap.Pop(&q).(refItem)
		if it.g > dist[it.key] {
			continue // stale lazy-deletion entry
		}
		if it.key == dest {
			return it.g
		}
		n := nodes[it.key]
		relax := func(succ node, w float64) {
			k := key(succ)
			g := it.g + w
			if d, ok := dist[k]; !ok || g < d {
				dist[k] = g
				nodes[k] = succ
				heap.Push(&q, refItem{key: k, g: g})
			}
		}
		t2 := nextFull(n.state, n.t)
		if t2 >= tEnd {
			pre := accumulated(n.state, n.t, tEnd)
			relax(node{t: tEnd, state: core.NewVector(in.N())}, in.Model.Total(pre))
			continue
		}
		pre := accumulated(n.state, n.t, t2)
		for _, act := range core.GreedyActionSet(pre, in.Model, in.C, true) {
			relax(node{t: t2, state: pre.Sub(act)}, in.Model.Total(act))
		}
	}
	panic("referenceDijkstra: destination unreachable")
}

// randFunc draws a cost function from the named family, mirroring the
// families of the concave study.
func randFunc(t *testing.T, rng *rand.Rand, family string) core.CostFunc {
	t.Helper()
	var f core.CostFunc
	var err error
	switch family {
	case "linear":
		f, err = costfn.NewLinear(0.5+rng.Float64()*2, rng.Float64()*4)
	case "step":
		f, err = costfn.NewStep(1+rng.Intn(4), 0.5+rng.Float64()*2)
	case "concave":
		if rng.Intn(2) == 0 {
			f, err = costfn.NewPower(0.5+rng.Float64()*2, 0.3+rng.Float64()*0.6, rng.Float64()*2)
		} else {
			f, err = costfn.NewLog(0.5+rng.Float64()*3, rng.Float64()*2)
		}
	default:
		t.Fatalf("unknown family %q", family)
	}
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestSearchMatchesReferenceAndDijkstra is the property test for the
// rewrite: on random linear/step/concave instances the optimized A*
// must report the same optimal cost as (a) its own Dijkstra mode
// (DisableHeuristic — proves the heuristic changes no outcomes) and
// (b) the string-keyed pre-optimization reference search above.
func TestSearchMatchesReferenceAndDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, family := range []string{"linear", "step", "concave"} {
		for trial := 0; trial < 20; trial++ {
			f1 := randFunc(t, rng, family)
			f2 := randFunc(t, rng, family)
			arr := randArrivals(rng, 3+rng.Intn(8), 2, 2)
			in := mkInstance(t, arr, []core.CostFunc{f1, f2}, 2+rng.Float64()*8)
			res, err := Search(in, Options{})
			if err != nil {
				t.Fatal(err)
			}
			dij, err := Search(in, Options{DisableHeuristic: true})
			if err != nil {
				t.Fatal(err)
			}
			if absDiff(res.Cost, dij.Cost) > 1e-9 {
				t.Fatalf("%s trial %d: A* cost %g != Dijkstra cost %g", family, trial, res.Cost, dij.Cost)
			}
			ref := referenceDijkstra(in)
			if absDiff(res.Cost, ref) > 1e-9 {
				t.Fatalf("%s trial %d: A* cost %g != reference cost %g", family, trial, res.Cost, ref)
			}
		}
	}
}

// TestHeuristicCachePure pins the correctness argument for caching h on
// the queue item: h is a pure function of (t, state), so the value
// computed when a node is generated stays valid across every later
// decrease-key. If someone reintroduces path-dependent state into h,
// the repeated-evaluation check fails immediately.
func TestHeuristicCachePure(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lin1, _ := costfn.NewLinear(1, 2)
	st, _ := costfn.NewStep(3, 1.5)
	arr := randArrivals(rng, 25, 2, 3)
	in := mkInstance(t, arr, []core.CostFunc{lin1, st}, 10)
	s := newSearcher(in, Options{})
	for trial := 0; trial < 200; trial++ {
		tm := -1 + rng.Intn(in.T()+2)
		state := core.Vector{rng.Intn(20), rng.Intn(20)}
		first := s.h(tm, state)
		for k := 0; k < 3; k++ {
			if again := s.h(tm, state); again != first {
				t.Fatalf("h(%d, %v) not pure: %g then %g", tm, state, first, again)
			}
		}
		// A fresh searcher over the same instance must agree too: h may
		// depend only on immutable instance data, never on search state.
		if fresh := newSearcher(in, Options{}).h(tm, state); fresh != first {
			t.Fatalf("h(%d, %v) depends on searcher state: %g vs fresh %g", tm, state, fresh, first)
		}
	}
}

// TestSearchCountersDeterministic asserts Expanded/Generated are
// identical across repeated runs (the regression check requested with
// the h-cache fix: recomputing h on decrease-key was wasted work, and
// caching it must not change what gets expanded or generated).
func TestSearchCountersDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	lin, _ := costfn.NewLinear(0.7, 1.3)
	st, _ := costfn.NewStep(2, 1)
	for trial := 0; trial < 10; trial++ {
		arr := randArrivals(rng, 10+rng.Intn(15), 2, 2)
		in := mkInstance(t, arr, []core.CostFunc{lin, st}, float64(5+rng.Intn(8)))
		first, err := Search(in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for rerun := 0; rerun < 3; rerun++ {
			again, err := Search(in, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if again.Expanded != first.Expanded || again.Generated != first.Generated {
				t.Fatalf("trial %d: counters drifted: (%d,%d) vs (%d,%d)",
					trial, first.Expanded, first.Generated, again.Expanded, again.Generated)
			}
			if absDiff(again.Cost, first.Cost) > 1e-12 {
				t.Fatalf("trial %d: cost drifted: %g vs %g", trial, first.Cost, again.Cost)
			}
		}
	}
}

// TestSearchCountersGolden pins the exact search effort on one fixed
// instance. The values encode the current expansion order (packed-key
// tie-breaks, cached heuristic); an unintended behavioural change to
// the search — not just a perf tweak — shows up here first. Regenerate
// by running the test and copying the reported counts if the search
// order is changed on purpose.
func TestSearchCountersGolden(t *testing.T) {
	lin, _ := costfn.NewLinear(1, 2)
	st, _ := costfn.NewStep(3, 1.5)
	arr := make(core.Arrivals, 16)
	for i := range arr {
		arr[i] = core.Vector{(i*7 + 3) % 4, (i*5 + 1) % 3} // fixed quasi-random pattern
	}
	in := mkInstance(t, arr, []core.CostFunc{lin, st}, 12)
	res, err := Search(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const wantExpanded, wantGenerated, wantCost = 8, 11, 39.0
	if res.Expanded != wantExpanded || res.Generated != wantGenerated {
		t.Errorf("search effort changed: expanded=%d generated=%d, want %d/%d",
			res.Expanded, res.Generated, wantExpanded, wantGenerated)
	}
	if absDiff(res.Cost, wantCost) > 1e-9 {
		t.Errorf("optimal cost changed: %g, want %g", res.Cost, wantCost)
	}
}
