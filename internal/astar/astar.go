// Package astar searches the space of LGM maintenance plans for an
// optimal one, per Section 4.1 of the paper. The space is a DAG whose
// nodes are (time, post-action state) pairs: each node's outgoing edges
// jump to the first future step at which the accumulated state becomes
// full and apply one greedy minimal valid action there. Every
// source-to-destination path is an LGM plan and vice versa, so a shortest
// path (by total edge weight f(q)) is an optimal LGM plan.
//
// The search is informed by a consistent per-table lower bound. Let
// R_i = s[i] + K_i be the table-i modifications still to process (K_i are
// the arrivals strictly after t), and let b_i = m_i + max{b : f_i(b) <= C}
// bound the largest batch any path in the LGM graph can drain from table i
// in one action (the state one step before any forced action is non-full,
// so its table-i component costs at most C, and at most m_i more arrive).
// The heuristic is
//
//	h(t, s) = Σ_i M_i(R_i),   M_i(R) = min { Σ_j f_i(k_j) : Σ_j k_j = R, k_j <= b_i }
//
// computed by dynamic programming. M_i is admissible (every path drains
// table i in batches of at most b_i) and consistent (M_i(R) <= f_i(q) +
// M_i(R-q) for q <= b_i by definition, and M_i is monotone), so the first
// expansion of every node is optimal and closed nodes are never reopened.
//
// The paper proposes h(t,s) = Σ_i floor(R_i/b_i)·f_i(b_i) (Section 4.1)
// and asserts its consistency (Lemma 7). That formula is not admissible
// for subadditive non-concave costs — with f(k) = ceil(k/5)·2 and b = 28,
// processing R = 84 costs 34 in batches (25+25+25+9) while the formula
// claims 3·f(28) = 36 — and it is not consistent even for linear costs, so
// a closed-list A* could return suboptimal plans. M_i dominates the
// paper's bound wherever the latter is valid (e.g. linear costs), so this
// is a strict strengthening, not a behavioural change.
package astar

import (
	"container/heap"
	"errors"
	"fmt"

	"abivm/internal/core"
)

// Options tunes the search.
type Options struct {
	// DisableHeuristic runs plain Dijkstra (h == 0); used by the heuristic
	// ablation bench to quantify how much work the heuristic saves.
	DisableHeuristic bool
	// MaxExpansions aborts the search after this many node expansions;
	// 0 means unlimited.
	MaxExpansions int
	// AllowNonMinimal expands every greedy valid action instead of only
	// minimal ones, searching the larger space of lazy-greedy plans
	// (LGM minus the M). Lazy-greedy plans are a superset of LGM plans,
	// so the result can only be cheaper — the minimality ablation bench
	// quantifies how much plan quality Definition 3 trades for its much
	// smaller search space.
	AllowNonMinimal bool
}

// Result carries the optimal LGM plan and search statistics.
type Result struct {
	Plan      core.Plan
	Cost      float64
	Expanded  int // nodes dequeued and expanded
	Generated int // successor edges generated
}

// ErrBudgetExceeded is returned when MaxExpansions is hit before the
// destination is reached.
var ErrBudgetExceeded = errors.New("astar: expansion budget exceeded")

// node identifies a search state: the post-action state right after an
// action taken at time t. The source has t == -1 and a zero state; the
// destination has t == T and a zero state.
type node struct {
	t     int
	state core.Vector
}

func (n node) key() string { return fmt.Sprintf("%d|%s", n.t, n.state.Key()) }

// pqItem is a priority-queue entry.
type pqItem struct {
	n     node
	g     float64 // best known path cost from source
	d     float64 // g + h
	index int
}

type priorityQueue []*pqItem

func (pq priorityQueue) Len() int { return len(pq) }
func (pq priorityQueue) Less(i, j int) bool {
	if pq[i].d < pq[j].d {
		return true
	}
	if pq[i].d > pq[j].d {
		return false
	}
	// Tie-break on later time to reach the destination sooner; then on key
	// for determinism.
	if pq[i].n.t != pq[j].n.t {
		return pq[i].n.t > pq[j].n.t
	}
	return pq[i].n.state.Key() < pq[j].n.state.Key()
}
func (pq priorityQueue) Swap(i, j int) {
	pq[i], pq[j] = pq[j], pq[i]
	pq[i].index = i
	pq[j].index = j
}
func (pq *priorityQueue) Push(x any) {
	it := x.(*pqItem)
	it.index = len(*pq)
	*pq = append(*pq, it)
}
func (pq *priorityQueue) Pop() any {
	old := *pq
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*pq = old[:n-1]
	return it
}

// Heuristic DP sizing: lbLenCap bounds the per-table DP table length and
// lbWorkCap the total DP work (table length × batch bound); beyond either
// cap the table falls back to the plain subadditive bound f_i(R), which is
// also consistent, just weaker.
const (
	lbLenCap  = 1 << 16
	lbWorkCap = 64_000_000
)

// tableLB is the per-table heuristic lower bound M_i, tabulated for
// R in [0, limit]; queries beyond limit clamp to M_i(limit), which keeps
// the bound admissible and consistent.
type tableLB struct {
	limit int
	m     []float64
}

func (lb *tableLB) at(r int) float64 {
	if r <= 0 || lb.limit == 0 {
		return 0
	}
	if r > lb.limit {
		r = lb.limit
	}
	return lb.m[r]
}

// newTableLB tabulates M_i(R) = min-cost partition of R into batches of at
// most maxBatch, for R up to limit. When the DP would be too expensive it
// falls back to M_i(R) = f_i(R), the subadditive single-batch bound.
func newTableLB(f core.CostFunc, maxBatch, limit int) *tableLB {
	if limit > lbLenCap {
		limit = lbLenCap
	}
	lb := &tableLB{limit: limit, m: make([]float64, limit+1)}
	if limit == 0 {
		return lb
	}
	inner := maxBatch
	if inner > limit {
		inner = limit
	}
	if inner <= 0 {
		inner = 1
	}
	if int64(limit)*int64(inner) > lbWorkCap {
		for r := 1; r <= limit; r++ {
			lb.m[r] = f.Cost(r)
		}
		return lb
	}
	costs := make([]float64, inner+1)
	for q := 1; q <= inner; q++ {
		costs[q] = f.Cost(q)
	}
	for r := 1; r <= limit; r++ {
		best := -1.0
		qMax := inner
		if qMax > r {
			qMax = r
		}
		for q := 1; q <= qMax; q++ {
			c := costs[q] + lb.m[r-q]
			if best < 0 || c < best {
				best = c
			}
		}
		lb.m[r] = best
	}
	return lb
}

// searcher holds the per-search immutable context.
type searcher struct {
	in     *core.Instance
	opts   Options
	prefix []core.Vector // prefix[t] = Σ_{u<=t} d_u
	suffix []core.Vector // suffix[t][i] = table-i arrivals strictly after t
	lbs    []*tableLB    // per-table heuristic lower bounds
}

// Search finds an optimal LGM plan for the instance. It assumes perfect
// knowledge of the arrival sequence and the refresh time T (the oracle
// setting of the paper); the policy package adapts its output to unknown
// refresh times.
func Search(in *core.Instance, opts Options) (*Result, error) {
	s := newSearcher(in, opts)
	return s.run()
}

func newSearcher(in *core.Instance, opts Options) *searcher {
	n := in.N()
	tEnd := in.T()
	prefix := make([]core.Vector, tEnd+1)
	running := core.NewVector(n)
	for t := 0; t <= tEnd; t++ {
		running.AddInPlace(in.Arrivals[t])
		prefix[t] = running.Clone()
	}
	s := &searcher{
		in:     in,
		opts:   opts,
		prefix: prefix,
		suffix: in.Arrivals.SuffixTotals(),
		lbs:    make([]*tableLB, n),
	}
	maxStep := in.Arrivals.MaxPerStep()
	totals := in.Arrivals.TotalPerTable()
	for i := 0; i < n; i++ {
		if opts.DisableHeuristic {
			s.lbs[i] = &tableLB{}
			continue
		}
		b := maxStep[i] + in.Model.MaxBatch(i, in.C)
		s.lbs[i] = newTableLB(in.Model.Func(i), b, totals[i])
	}
	return s
}

// accumulated returns the state at time t2 given post-action state s at
// time t1 < t2 with no actions in between: s + Σ_{t1 < u <= t2} d_u.
func (s *searcher) accumulated(state core.Vector, t1, t2 int) core.Vector {
	out := state.Clone()
	out.AddInPlace(s.prefix[t2])
	if t1 >= 0 {
		out.SubInPlace(s.prefix[t1])
	}
	return out
}

// nextFull returns the first time t2 in (t1, T] at which the accumulated
// pre-action state becomes full, or T+1 if it never does. Because arrivals
// are non-negative and the cost functions are monotone, fullness is
// monotone in t2, so a binary search applies.
func (s *searcher) nextFull(state core.Vector, t1 int) int {
	tEnd := s.in.T()
	lo, hi := t1+1, tEnd
	if lo > hi {
		return tEnd + 1
	}
	if !s.in.Model.Full(s.accumulated(state, t1, hi), s.in.C) {
		return tEnd + 1
	}
	// Invariant: state at hi is full; state before lo is unknown/not full.
	for lo < hi {
		mid := lo + (hi-lo)/2
		if s.in.Model.Full(s.accumulated(state, t1, mid), s.in.C) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// h evaluates the heuristic at a node.
func (s *searcher) h(n node) float64 {
	if s.opts.DisableHeuristic {
		return 0
	}
	var k core.Vector
	if n.t < 0 {
		k = s.in.Arrivals.TotalPerTable()
	} else {
		k = s.suffix[n.t]
	}
	total := 0.0
	for i := range n.state {
		total += s.lbs[i].at(n.state[i] + k[i])
	}
	return total
}

// edge is one generated successor.
type edge struct {
	to     node
	action core.Vector // action applied at to.t
	weight float64
}

// expand generates the successors of n.
func (s *searcher) expand(n node) []edge {
	tEnd := s.in.T()
	t2 := s.nextFull(n.state, n.t)
	if t2 > tEnd {
		// Never full again: the only remaining move is the refresh at T.
		pre := s.accumulated(n.state, n.t, tEnd)
		return []edge{{
			to:     node{t: tEnd, state: core.NewVector(s.in.N())},
			action: pre,
			weight: s.in.Model.Total(pre),
		}}
	}
	pre := s.accumulated(n.state, n.t, t2)
	if t2 == tEnd {
		// Refresh coincides with the forced action: drain everything.
		return []edge{{
			to:     node{t: tEnd, state: core.NewVector(s.in.N())},
			action: pre,
			weight: s.in.Model.Total(pre),
		}}
	}
	actions := core.GreedyActionSet(pre, s.in.Model, s.in.C, !s.opts.AllowNonMinimal)
	out := make([]edge, 0, len(actions))
	for _, q := range actions {
		out = append(out, edge{
			to:     node{t: t2, state: pre.Sub(q)},
			action: q,
			weight: s.in.Model.Total(q),
		})
	}
	return out
}

// parentLink records how a node was best reached, for plan reconstruction.
type parentLink struct {
	from   string
	action core.Vector
	t      int // time the action was applied (== child node's t)
}

func (s *searcher) run() (*Result, error) {
	tEnd := s.in.T()
	source := node{t: -1, state: core.NewVector(s.in.N())}
	destKey := node{t: tEnd, state: core.NewVector(s.in.N())}.key()

	open := &priorityQueue{}
	heap.Init(open)
	items := map[string]*pqItem{}
	parents := map[string]parentLink{}
	closed := map[string]node{}

	push := func(n node, g float64) {
		k := n.key()
		if it, ok := items[k]; ok {
			if g < it.g {
				it.g = g
				it.d = g + s.h(n)
				heap.Fix(open, it.index)
			}
			return
		}
		it := &pqItem{n: n, g: g, d: g + s.h(n)}
		items[k] = it
		heap.Push(open, it)
	}

	push(source, 0)
	res := &Result{}
	for open.Len() > 0 {
		it := heap.Pop(open).(*pqItem)
		k := it.n.key()
		delete(items, k)
		if _, done := closed[k]; done {
			continue
		}
		closed[k] = it.n
		res.Expanded++
		if s.opts.MaxExpansions > 0 && res.Expanded > s.opts.MaxExpansions {
			return nil, ErrBudgetExceeded
		}
		if k == destKey {
			res.Cost = it.g
			res.Plan = s.reconstruct(parents, k)
			return res, nil
		}
		for _, e := range s.expand(it.n) {
			ck := e.to.key()
			if _, done := closed[ck]; done {
				continue
			}
			res.Generated++
			g := it.g + e.weight
			if existing, ok := items[ck]; !ok || g < existing.g {
				parents[ck] = parentLink{from: k, action: e.action, t: e.to.t}
			}
			push(e.to, g)
		}
	}
	return nil, errors.New("astar: destination unreachable (internal invariant violated)")
}

// reconstruct rebuilds the plan from parent links.
func (s *searcher) reconstruct(parents map[string]parentLink, destKey string) core.Plan {
	tEnd := s.in.T()
	n := s.in.N()
	plan := make(core.Plan, tEnd+1)
	for t := range plan {
		plan[t] = core.NewVector(n)
	}
	k := destKey
	for {
		link, ok := parents[k]
		if !ok {
			break
		}
		plan[link.t] = link.action.Clone()
		k = link.from
	}
	return plan
}
