// Package astar searches the space of LGM maintenance plans for an
// optimal one, per Section 4.1 of the paper. The space is a DAG whose
// nodes are (time, post-action state) pairs: each node's outgoing edges
// jump to the first future step at which the accumulated state becomes
// full and apply one greedy minimal valid action there. Every
// source-to-destination path is an LGM plan and vice versa, so a shortest
// path (by total edge weight f(q)) is an optimal LGM plan.
//
// The search is informed by a consistent per-table lower bound. Let
// R_i = s[i] + K_i be the table-i modifications still to process (K_i are
// the arrivals strictly after t), and let b_i = m_i + max{b : f_i(b) <= C}
// bound the largest batch any path in the LGM graph can drain from table i
// in one action (the state one step before any forced action is non-full,
// so its table-i component costs at most C, and at most m_i more arrive).
// The heuristic is
//
//	h(t, s) = Σ_i M_i(R_i),   M_i(R) = min { Σ_j f_i(k_j) : Σ_j k_j = R, k_j <= b_i }
//
// computed by dynamic programming. M_i is admissible (every path drains
// table i in batches of at most b_i) and consistent (M_i(R) <= f_i(q) +
// M_i(R-q) for q <= b_i by definition, and M_i is monotone), so the first
// expansion of every node is optimal and closed nodes are never reopened.
//
// The paper proposes h(t,s) = Σ_i floor(R_i/b_i)·f_i(b_i) (Section 4.1)
// and asserts its consistency (Lemma 7). That formula is not admissible
// for subadditive non-concave costs — with f(k) = ceil(k/5)·2 and b = 28,
// processing R = 84 costs 34 in batches (25+25+25+9) while the formula
// claims 3·f(28) = 36 — and it is not consistent even for linear costs, so
// a closed-list A* could return suboptimal plans. M_i dominates the
// paper's bound wherever the latter is valid (e.g. linear costs), so this
// is a strict strengthening, not a behavioural change.
//
// The implementation keeps the search allocation-lean: nodes are keyed by
// a fixed-size comparable (t, state) packing instead of formatted strings,
// the heuristic value is computed once per node and cached on its queue
// entry, and the state/action vectors that flow through expansion are
// drawn from a per-search free list once the search provably owns them.
package astar

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"abivm/internal/core"
)

// Options tunes the search.
type Options struct {
	// DisableHeuristic runs plain Dijkstra (h == 0); used by the heuristic
	// ablation bench to quantify how much work the heuristic saves.
	DisableHeuristic bool
	// MaxExpansions aborts the search after this many node expansions;
	// 0 means unlimited.
	MaxExpansions int
	// AllowNonMinimal expands every greedy valid action instead of only
	// minimal ones, searching the larger space of lazy-greedy plans
	// (LGM minus the M). Lazy-greedy plans are a superset of LGM plans,
	// so the result can only be cheaper — the minimality ablation bench
	// quantifies how much plan quality Definition 3 trades for its much
	// smaller search space.
	AllowNonMinimal bool
	// Metrics, when non-nil, accumulates search statistics (node counts,
	// open-heap peak, heuristic tightness) into an obs registry.
	Metrics *Metrics
}

// Result carries the optimal LGM plan and search statistics.
type Result struct {
	Plan      core.Plan
	Cost      float64
	Expanded  int // nodes dequeued and expanded
	Generated int // successor edges generated
	HeapPeak  int // largest open-list length reached
}

// ErrBudgetExceeded is returned when MaxExpansions is hit before the
// destination is reached.
var ErrBudgetExceeded = errors.New("astar: expansion budget exceeded")

// maxKeyTables bounds the instance arity the packed node key supports.
// It mirrors core's greedy-action enumeration cap (the paper has n <= 5;
// expansion would refuse larger instances anyway), so packing states
// into a fixed-size array loses no generality.
const maxKeyTables = 20

// nodeKey identifies a search state — the post-action state right after
// an action taken at time t — as a comparable value usable directly as a
// map key. The source has t == -1 and a zero state; the destination has
// t == T and a zero state. Components beyond the instance arity stay
// zero and never influence equality.
type nodeKey struct {
	t int32
	s [maxKeyTables]int32
}

// stateLess orders keys by state components, lexicographically; used
// only as the final determinism tie-break in the priority queue.
func (k nodeKey) stateLess(o nodeKey) bool {
	for i := range k.s {
		if k.s[i] != o.s[i] {
			return k.s[i] < o.s[i]
		}
	}
	return false
}

// pqItem is a priority-queue entry for one open node.
type pqItem struct {
	t     int
	state core.Vector
	key   nodeKey
	g     float64 // best known path cost from source
	// h is the heuristic value of the node, computed once when the node
	// is first generated. h depends only on (t, state) — never on the
	// path — so a decrease-key must reuse it rather than re-evaluate;
	// recomputing was pure waste on the old hot path, and caching is
	// behaviour-neutral (see TestHeuristicCachePure).
	h     float64
	d     float64 // g + h
	index int
}

type priorityQueue []*pqItem

func (pq priorityQueue) Len() int { return len(pq) }
func (pq priorityQueue) Less(i, j int) bool {
	//lint:ignore floateq heap ordering must be a strict weak order; epsilon comparisons are not transitive
	if pq[i].d != pq[j].d {
		return pq[i].d < pq[j].d
	}
	// Tie-break on later time to reach the destination sooner; then on
	// the packed state for determinism.
	if pq[i].t != pq[j].t {
		return pq[i].t > pq[j].t
	}
	return pq[i].key.stateLess(pq[j].key)
}
func (pq priorityQueue) Swap(i, j int) {
	pq[i], pq[j] = pq[j], pq[i]
	pq[i].index = i
	pq[j].index = j
}
func (pq *priorityQueue) Push(x any) {
	it := x.(*pqItem)
	it.index = len(*pq)
	*pq = append(*pq, it)
}
func (pq *priorityQueue) Pop() any {
	old := *pq
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*pq = old[:n-1]
	return it
}

// Heuristic DP sizing: lbLenCap bounds the per-table DP table length and
// lbWorkCap the total DP work (table length × batch bound); beyond either
// cap the table falls back to the plain subadditive bound f_i(R), which is
// also consistent, just weaker.
const (
	lbLenCap  = 1 << 16
	lbWorkCap = 64_000_000
)

// tableLB is the per-table heuristic lower bound M_i, tabulated for
// R in [0, limit]; queries beyond limit clamp to M_i(limit), which keeps
// the bound admissible and consistent.
type tableLB struct {
	limit int
	m     []float64
}

func (lb *tableLB) at(r int) float64 {
	if r <= 0 || lb.limit == 0 {
		return 0
	}
	if r > lb.limit {
		r = lb.limit
	}
	return lb.m[r]
}

// newTableLB tabulates M_i(R) = min-cost partition of R into batches of at
// most maxBatch, for R up to limit. When the DP would be too expensive it
// falls back to M_i(R) = f_i(R), the subadditive single-batch bound.
func newTableLB(f core.CostFunc, maxBatch, limit int) *tableLB {
	if limit > lbLenCap {
		limit = lbLenCap
	}
	lb := &tableLB{limit: limit, m: make([]float64, limit+1)}
	if limit == 0 {
		return lb
	}
	inner := maxBatch
	if inner > limit {
		inner = limit
	}
	if inner <= 0 {
		inner = 1
	}
	if int64(limit)*int64(inner) > lbWorkCap {
		for r := 1; r <= limit; r++ {
			lb.m[r] = f.Cost(r)
		}
		return lb
	}
	costs := make([]float64, inner+1)
	for q := 1; q <= inner; q++ {
		costs[q] = f.Cost(q)
	}
	for r := 1; r <= limit; r++ {
		best := -1.0
		qMax := inner
		if qMax > r {
			qMax = r
		}
		for q := 1; q <= qMax; q++ {
			c := costs[q] + lb.m[r-q]
			if best < 0 || c < best {
				best = c
			}
		}
		lb.m[r] = best
	}
	return lb
}

// searcher holds the per-search context: the immutable instance data,
// the open/closed bookkeeping, and the reusable scratch buffers. A
// searcher serves exactly one Search call and is not goroutine-safe.
type searcher struct {
	in     *core.Instance
	opts   Options
	prefix []core.Vector // prefix[t] = Σ_{u<=t} d_u, views into one backing array
	suffix []core.Vector // suffix[t][i] = table-i arrivals strictly after t
	totals core.Vector   // total arrivals per table (the t == -1 suffix)
	lbs    []*tableLB    // per-table heuristic lower bounds

	open    priorityQueue
	items   map[nodeKey]*pqItem
	parents map[nodeKey]parentLink
	closed  map[nodeKey]struct{}

	// Scratch buffers: accScratch backs the fullness probes of nextFull,
	// preScratch the accumulated pre-action state of the node being
	// expanded, actionsBuf the greedy action list, actScratch the
	// enumeration buffers inside core.
	accScratch core.Vector
	preScratch core.Vector
	actionsBuf []core.Vector
	actScratch core.ActionScratch

	// vecFree and itemFree recycle state/action vectors and queue items
	// the search has exclusive ownership of (see putVec).
	vecFree  []core.Vector
	itemFree []*pqItem
}

// parentLink records how a node was best reached, for plan reconstruction.
type parentLink struct {
	from   nodeKey
	action core.Vector
	t      int // time the action was applied (== child node's t)
}

// Search finds an optimal LGM plan for the instance. It assumes perfect
// knowledge of the arrival sequence and the refresh time T (the oracle
// setting of the paper); the policy package adapts its output to unknown
// refresh times. It panics if the instance has more than 20 tables or
// per-table arrival totals beyond the packed-key range (the paper's n is
// at most 5 and states are bounded by total arrivals).
func Search(in *core.Instance, opts Options) (*Result, error) {
	s := newSearcher(in, opts)
	return s.run()
}

func newSearcher(in *core.Instance, opts Options) *searcher {
	n := in.N()
	if n > maxKeyTables {
		panic(fmt.Sprintf("astar: %d tables exceeds the packed-key cap %d", n, maxKeyTables))
	}
	tEnd := in.T()
	// prefix sums share one backing array: T+1 header views, 1 allocation.
	prefix := make([]core.Vector, tEnd+1)
	backing := make(core.Vector, (tEnd+1)*n)
	running := core.NewVector(n)
	for t := 0; t <= tEnd; t++ {
		running.AddInPlace(in.Arrivals[t])
		prefix[t] = backing[t*n : (t+1)*n]
		copy(prefix[t], running)
	}
	s := &searcher{
		in:         in,
		opts:       opts,
		prefix:     prefix,
		suffix:     in.Arrivals.SuffixTotals(),
		totals:     in.Arrivals.TotalPerTable(),
		lbs:        make([]*tableLB, n),
		items:      map[nodeKey]*pqItem{},
		parents:    map[nodeKey]parentLink{},
		closed:     map[nodeKey]struct{}{},
		accScratch: core.NewVector(n),
		preScratch: core.NewVector(n),
	}
	maxStep := in.Arrivals.MaxPerStep()
	for i := 0; i < n; i++ {
		if s.totals[i] > math.MaxInt32 {
			panic(fmt.Sprintf("astar: table %d total arrivals %d exceed the packed-key range", i, s.totals[i]))
		}
		if opts.DisableHeuristic {
			s.lbs[i] = &tableLB{}
			continue
		}
		b := maxStep[i] + in.Model.MaxBatch(i, in.C)
		s.lbs[i] = newTableLB(in.Model.Func(i), b, s.totals[i])
	}
	return s
}

// accumulateInto writes into dst the state at time t2 given post-action
// state `state` at time t1 < t2 with no actions in between:
// state + Σ_{t1 < u <= t2} d_u. dst and state may not alias.
func (s *searcher) accumulateInto(dst, state core.Vector, t1, t2 int) {
	p2 := s.prefix[t2]
	if t1 >= 0 {
		p1 := s.prefix[t1]
		for i := range dst {
			dst[i] = state[i] + p2[i] - p1[i]
		}
		return
	}
	for i := range dst {
		dst[i] = state[i] + p2[i]
	}
}

// nextFull returns the first time t2 in (t1, T] at which the accumulated
// pre-action state becomes full, or T+1 if it never does. Because arrivals
// are non-negative and the cost functions are monotone, fullness is
// monotone in t2, so a binary search applies.
func (s *searcher) nextFull(state core.Vector, t1 int) int {
	tEnd := s.in.T()
	lo, hi := t1+1, tEnd
	if lo > hi {
		return tEnd + 1
	}
	s.accumulateInto(s.accScratch, state, t1, hi)
	if !s.in.Model.Full(s.accScratch, s.in.C) {
		return tEnd + 1
	}
	// Invariant: state at hi is full; state before lo is unknown/not full.
	for lo < hi {
		mid := lo + (hi-lo)/2
		s.accumulateInto(s.accScratch, state, t1, mid)
		if s.in.Model.Full(s.accScratch, s.in.C) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// h evaluates the heuristic for a node. It is a pure function of
// (t, state): callers cache its value per node (see pqItem.h).
func (s *searcher) h(t int, state core.Vector) float64 {
	if s.opts.DisableHeuristic {
		return 0
	}
	var k core.Vector
	if t < 0 {
		k = s.totals
	} else {
		k = s.suffix[t]
	}
	total := 0.0
	for i := range state {
		total += s.lbs[i].at(state[i] + k[i])
	}
	return total
}

// getVec returns a zeroed vector of instance arity, reusing the free
// list when possible.
func (s *searcher) getVec() core.Vector {
	if k := len(s.vecFree); k > 0 {
		v := s.vecFree[k-1]
		s.vecFree = s.vecFree[:k-1]
		for i := range v {
			v[i] = 0
		}
		return v
	}
	return core.NewVector(s.in.N())
}

// putVec hands v back to the free list. The caller vouches that the
// search owns v exclusively: nothing reads it after this call, so a
// later getVec may repurpose the backing array.
func (s *searcher) putVec(v core.Vector) {
	if v == nil {
		return
	}
	//lint:ignore vecalias ownership transfers to the free list by the putVec contract
	s.vecFree = append(s.vecFree, v)
}

// getItem returns a queue entry, reusing popped-and-expanded ones.
func (s *searcher) getItem() *pqItem {
	if k := len(s.itemFree); k > 0 {
		it := s.itemFree[k-1]
		s.itemFree = s.itemFree[:k-1]
		return it
	}
	return &pqItem{}
}

// recycleItem reclaims an expanded queue entry and its state vector.
func (s *searcher) recycleItem(it *pqItem) {
	s.putVec(it.state)
	it.state = nil
	s.itemFree = append(s.itemFree, it)
}

func (s *searcher) run() (*Result, error) {
	tEnd := s.in.T()
	destKey := nodeKey{t: int32(tEnd)}

	// Source: t == -1, zero state.
	src := s.getItem()
	*src = pqItem{t: -1, state: s.getVec(), key: nodeKey{t: -1}}
	src.h = s.h(src.t, src.state)
	src.d = src.h
	rootH := src.h
	s.items[src.key] = src
	heap.Push(&s.open, src)

	res := &Result{HeapPeak: 1}
	for s.open.Len() > 0 {
		it := heap.Pop(&s.open).(*pqItem)
		delete(s.items, it.key)
		// Decrease-key goes through heap.Fix on the live entry, so a
		// popped item is never stale; the closed check is a defensive
		// invariant only.
		if _, done := s.closed[it.key]; done {
			s.recycleItem(it)
			continue
		}
		s.closed[it.key] = struct{}{}
		res.Expanded++
		if s.opts.MaxExpansions > 0 && res.Expanded > s.opts.MaxExpansions {
			return nil, ErrBudgetExceeded
		}
		if it.key == destKey {
			res.Cost = it.g
			res.Plan = s.reconstruct(destKey)
			s.opts.Metrics.observeSearch(res, rootH, res.HeapPeak)
			return res, nil
		}
		s.expand(it, res)
		if n := len(s.open); n > res.HeapPeak {
			res.HeapPeak = n
		}
		s.recycleItem(it)
	}
	return nil, errors.New("astar: destination unreachable (internal invariant violated)")
}

// expand generates the successors of the node held by it and relaxes
// each resulting edge.
func (s *searcher) expand(it *pqItem, res *Result) {
	tEnd := s.in.T()
	t2 := s.nextFull(it.state, it.t)
	if t2 >= tEnd {
		// Either the state never fills again (the only remaining move is
		// the refresh at T) or fullness first strikes exactly at T (the
		// refresh drains everything): one edge to the destination whose
		// action is the whole accumulated backlog.
		s.accumulateInto(s.preScratch, it.state, it.t, tEnd)
		action := s.getVec()
		copy(action, s.preScratch)
		s.relax(it, tEnd, nil, action, s.in.Model.Total(action), res)
		return
	}
	s.accumulateInto(s.preScratch, it.state, it.t, t2)
	s.actionsBuf = s.actScratch.AppendGreedyActions(s.actionsBuf[:0], s.preScratch, s.in.Model, s.in.C, !s.opts.AllowNonMinimal)
	for _, q := range s.actionsBuf {
		s.relax(it, t2, s.preScratch, q, s.in.Model.Total(q), res)
	}
}

// relax processes one generated edge parent -> (t, pre-q) with the given
// action and weight. pre == nil means the successor is the zero state
// (refresh edges). The search takes ownership of action: it is either
// retained as the node's best parent link or returned to the free list.
func (s *searcher) relax(parent *pqItem, t int, pre, action core.Vector, weight float64, res *Result) {
	key := nodeKey{t: int32(t)}
	if pre != nil {
		for i := range pre {
			key.s[i] = int32(pre[i] - action[i])
		}
	}
	if _, done := s.closed[key]; done {
		s.putVec(action)
		return
	}
	res.Generated++
	g := parent.g + weight
	if existing, ok := s.items[key]; ok {
		if g >= existing.g {
			s.putVec(action)
			return
		}
		// Decrease-key: the cached existing.h stays valid (h depends only
		// on the node), only g and the parent link change.
		existing.g = g
		existing.d = g + existing.h
		heap.Fix(&s.open, existing.index)
		old := s.parents[key]
		//lint:ignore vecalias the search owns action and the parent map is its sole holder
		s.parents[key] = parentLink{from: parent.key, action: action, t: t}
		s.putVec(old.action)
		return
	}
	state := s.getVec()
	if pre != nil {
		for i := range pre {
			state[i] = pre[i] - action[i]
		}
	}
	item := s.getItem()
	*item = pqItem{t: t, state: state, key: key, g: g}
	item.h = s.h(t, state)
	item.d = g + item.h
	s.items[key] = item
	//lint:ignore vecalias the search owns action and the parent map is its sole holder
	s.parents[key] = parentLink{from: parent.key, action: action, t: t}
	heap.Push(&s.open, item)
}

// reconstruct rebuilds the plan from parent links.
func (s *searcher) reconstruct(destKey nodeKey) core.Plan {
	tEnd := s.in.T()
	n := s.in.N()
	plan := make(core.Plan, tEnd+1)
	for t := range plan {
		plan[t] = core.NewVector(n)
	}
	k := destKey
	for {
		link, ok := s.parents[k]
		if !ok {
			break
		}
		plan[link.t] = link.action.Clone()
		k = link.from
	}
	return plan
}
