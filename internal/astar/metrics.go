package astar

import "abivm/internal/obs"

// Metrics is the planner's instrumentation bundle. Attach it through
// Options.Metrics; a nil bundle (the default) keeps the search free of
// any measurement work. Counters aggregate across searches — the
// per-search numbers stay available on Result — while HeapPeak tracks
// the worst open-list size seen by any search sharing the bundle.
type Metrics struct {
	// Searches counts completed Search calls (budget-exceeded and failed
	// searches are not counted; their partial work still lands in
	// Expanded/Generated via Result only).
	Searches *obs.Counter
	// Expanded and Generated accumulate the per-search statistics of the
	// same names on Result.
	Expanded  *obs.Counter
	Generated *obs.Counter
	// HeapPeak is the high-water open-list length across searches — the
	// search's dominant memory driver.
	HeapPeak *obs.Gauge
	// HeuristicRatio observes h(source)/C* per search: how tight the
	// root heuristic estimate was against the actual optimal cost. A
	// ratio near 1 means M_i is doing almost all the pruning work.
	HeuristicRatio *obs.Histogram
}

// NewMetrics registers the planner instruments on r and returns the
// bundle (nil registry yields nil, the detached bundle).
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		Searches:       r.Counter("astar_searches_total"),
		Expanded:       r.Counter("astar_nodes_expanded_total"),
		Generated:      r.Counter("astar_edges_generated_total"),
		HeapPeak:       r.Gauge("astar_open_heap_peak"),
		HeuristicRatio: r.Histogram("astar_heuristic_cost_ratio", obs.RatioBuckets()),
	}
}

// observeSearch records one successful search.
func (ms *Metrics) observeSearch(res *Result, rootH float64, heapPeak int) {
	if ms == nil {
		return
	}
	ms.Searches.Inc()
	ms.Expanded.Add(int64(res.Expanded))
	ms.Generated.Add(int64(res.Generated))
	ms.HeapPeak.SetMax(float64(heapPeak))
	if res.Cost > 0 {
		ms.HeuristicRatio.Observe(rootH / res.Cost)
	}
}
