package astar

import (
	"errors"
	"math/rand"
	"testing"

	"abivm/internal/bruteforce"
	"abivm/internal/core"
	"abivm/internal/costfn"
)

func mkInstance(t *testing.T, arr core.Arrivals, funcs []core.CostFunc, c float64) *core.Instance {
	t.Helper()
	in, err := core.NewInstance(arr, core.NewCostModel(funcs...), c)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func randArrivals(rng *rand.Rand, steps, n, maxArrive int) core.Arrivals {
	arr := make(core.Arrivals, steps)
	for t := range arr {
		d := core.NewVector(n)
		for i := range d {
			d[i] = rng.Intn(maxArrive + 1)
		}
		arr[t] = d
	}
	return arr
}

func TestSearchProducesValidLGMPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	lin1, _ := costfn.NewLinear(1, 2)
	lin2, _ := costfn.NewLinear(0.5, 4)
	for trial := 0; trial < 60; trial++ {
		arr := randArrivals(rng, 3+rng.Intn(25), 2, 3)
		in := mkInstance(t, arr, []core.CostFunc{lin1, lin2}, float64(8+rng.Intn(12)))
		res, err := Search(in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := in.Validate(res.Plan); err != nil {
			t.Fatalf("trial %d: A* plan invalid: %v", trial, err)
		}
		if !in.IsLazy(res.Plan) || !in.IsGreedy(res.Plan) || !in.IsMinimal(res.Plan) {
			t.Fatalf("trial %d: A* plan not LGM", trial)
		}
		if got := in.Cost(res.Plan); absDiff(got, res.Cost) > 1e-9 {
			t.Fatalf("trial %d: reported cost %g != recomputed %g", trial, res.Cost, got)
		}
	}
}

func TestSearchBeatsOrMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	lin1, _ := costfn.NewLinear(0.1, 1) // cheap per-mod, setup-dominated
	lin2, _ := costfn.NewLinear(2, 0.5) // expensive per-mod
	for trial := 0; trial < 40; trial++ {
		arr := randArrivals(rng, 5+rng.Intn(30), 2, 2)
		in := mkInstance(t, arr, []core.CostFunc{lin1, lin2}, float64(6+rng.Intn(8)))
		res, err := Search(in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		naive := in.Cost(in.NaivePlan())
		if res.Cost > naive+1e-9 {
			t.Fatalf("trial %d: A* cost %g worse than naive %g", trial, res.Cost, naive)
		}
	}
}

func TestSearchOptimalUnderLinearCosts(t *testing.T) {
	// Theorem 2: with linear cost functions the best LGM plan is globally
	// optimal, so A* must match the brute-force optimum exactly.
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 25; trial++ {
		a1 := 0.5 + rng.Float64()*2
		b1 := rng.Float64() * 3
		a2 := 0.5 + rng.Float64()*2
		b2 := rng.Float64() * 3
		lin1, _ := costfn.NewLinear(a1, b1)
		lin2, _ := costfn.NewLinear(a2, b2)
		arr := randArrivals(rng, 3+rng.Intn(5), 2, 2)
		in := mkInstance(t, arr, []core.CostFunc{lin1, lin2}, 4+rng.Float64()*6)
		opt, _, err := bruteforce.Optimal(in)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Search(in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if absDiff(res.Cost, opt) > 1e-6 {
			t.Fatalf("trial %d: A* LGM cost %g != OPT %g (linear costs)", trial, res.Cost, opt)
		}
	}
}

func TestSearchTwoApproxUnderStepCosts(t *testing.T) {
	// Theorem 1: for arbitrary monotone subadditive costs the best LGM
	// plan is within 2x of the global optimum.
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		step, _ := costfn.NewStep(1+rng.Intn(4), 1+rng.Float64()*2)
		lin, _ := costfn.NewLinear(0.5+rng.Float64(), rng.Float64()*2)
		arr := randArrivals(rng, 3+rng.Intn(5), 2, 2)
		in := mkInstance(t, arr, []core.CostFunc{step, lin}, 3+rng.Float64()*5)
		opt, _, err := bruteforce.Optimal(in)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Search(in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if opt > 0 && res.Cost > 2*opt+1e-9 {
			t.Fatalf("trial %d: A* LGM cost %g > 2*OPT %g", trial, res.Cost, opt)
		}
	}
}

func TestHeuristicAgreesWithDijkstra(t *testing.T) {
	// Consistency check: the informed search must return exactly the same
	// optimal cost as uninformed Dijkstra.
	rng := rand.New(rand.NewSource(12))
	lin1, _ := costfn.NewLinear(1, 3)
	step, _ := costfn.NewStep(5, 2)
	for trial := 0; trial < 30; trial++ {
		arr := randArrivals(rng, 5+rng.Intn(25), 2, 3)
		in := mkInstance(t, arr, []core.CostFunc{lin1, step}, float64(6+rng.Intn(10)))
		astar, err := Search(in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		dij, err := Search(in, Options{DisableHeuristic: true})
		if err != nil {
			t.Fatal(err)
		}
		if absDiff(astar.Cost, dij.Cost) > 1e-9 {
			t.Fatalf("trial %d: A* cost %g != Dijkstra cost %g", trial, astar.Cost, dij.Cost)
		}
		if astar.Expanded > dij.Expanded {
			t.Logf("trial %d: heuristic expanded more nodes (%d > %d) — allowed but unusual",
				trial, astar.Expanded, dij.Expanded)
		}
	}
}

func TestSearchNeverFullSequence(t *testing.T) {
	// The state never fills: the only action is the refresh at T.
	lin, _ := costfn.NewLinear(1, 0)
	arr := core.Arrivals{{1}, {1}, {1}}
	in := mkInstance(t, arr, []core.CostFunc{lin}, 100)
	res, err := Search(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 3 {
		t.Fatalf("cost = %g, want 3 (single refresh of 3 mods)", res.Cost)
	}
	if !res.Plan[2].Equal(core.Vector{3}) {
		t.Fatalf("refresh action = %v, want [3]", res.Plan[2])
	}
}

func TestSearchFullAtRefreshStep(t *testing.T) {
	// The state first fills exactly at T: the refresh drains everything
	// in one action.
	lin, _ := costfn.NewLinear(1, 0)
	arr := core.Arrivals{{1}, {1}, {4}}
	in := mkInstance(t, arr, []core.CostFunc{lin}, 5)
	res, err := Search(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 6 {
		t.Fatalf("cost = %g, want 6", res.Cost)
	}
}

func TestSearchAsymmetricExample(t *testing.T) {
	// The paper's motivating asymmetry: table S has near-linear cost with
	// no setup benefit (batching useless), table R has a large setup cost
	// (batching valuable). The optimal LGM plan should flush S-heavy
	// actions and defer R as long as possible, beating NAIVE clearly.
	rCost, _ := costfn.NewLinear(0.05, 5) // indexed: tiny slope, big setup amortized by batching
	sCost, _ := costfn.NewLinear(1.0, 0.1)
	arr := make(core.Arrivals, 60)
	for t := range arr {
		arr[t] = core.Vector{1, 1}
	}
	in := mkInstance(t, arr, []core.CostFunc{rCost, sCost}, 12)
	res, err := Search(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	naive := in.Cost(in.NaivePlan())
	if res.Cost >= naive {
		t.Fatalf("asymmetric instance: A* %g not better than NAIVE %g", res.Cost, naive)
	}
}

func TestSearchExpansionBudget(t *testing.T) {
	lin1, _ := costfn.NewLinear(1, 2)
	lin2, _ := costfn.NewLinear(1, 2)
	arr := make(core.Arrivals, 200)
	for t := range arr {
		arr[t] = core.Vector{1, 1}
	}
	in := mkInstance(t, arr, []core.CostFunc{lin1, lin2}, 10)
	_, err := Search(in, Options{MaxExpansions: 1})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

func TestSearchDeterministic(t *testing.T) {
	lin1, _ := costfn.NewLinear(1, 2)
	lin2, _ := costfn.NewLinear(0.3, 4)
	arr := make(core.Arrivals, 80)
	rng := rand.New(rand.NewSource(99))
	for t := range arr {
		arr[t] = core.Vector{rng.Intn(3), rng.Intn(3)}
	}
	in := mkInstance(t, arr, []core.CostFunc{lin1, lin2}, 15)
	first, err := Search(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := Search(in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if again.Cost != first.Cost || again.Expanded != first.Expanded {
			t.Fatalf("non-deterministic search: run %d gave (%g, %d), first gave (%g, %d)",
				i, again.Cost, again.Expanded, first.Cost, first.Expanded)
		}
		for ti := range first.Plan {
			if !again.Plan[ti].Equal(first.Plan[ti]) {
				t.Fatalf("non-deterministic plan at t=%d", ti)
			}
		}
	}
}

func TestSearchThreeTablesOptimalUnderLinearCosts(t *testing.T) {
	// Theorem 2 with n=3: the subset enumeration and minimality logic are
	// exercised beyond the two-table case.
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 15; trial++ {
		var funcs []core.CostFunc
		for j := 0; j < 3; j++ {
			lin, _ := costfn.NewLinear(0.5+rng.Float64()*2, rng.Float64()*3)
			funcs = append(funcs, lin)
		}
		arr := randArrivals(rng, 3+rng.Intn(3), 3, 2)
		in := mkInstance(t, arr, funcs, 5+rng.Float64()*6)
		opt, _, err := bruteforce.Optimal(in)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Search(in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if absDiff(res.Cost, opt) > 1e-6 {
			t.Fatalf("trial %d: A* %g != OPT %g", trial, res.Cost, opt)
		}
		if !in.IsLGM(res.Plan) {
			t.Fatalf("trial %d: plan not LGM", trial)
		}
	}
}

func TestSearchWithCappedCosts(t *testing.T) {
	// A cost that saturates at a cap (full-recompute fallback) exercises
	// the MaxBatch horizon path in the heuristic: once the cap is below
	// C, a table's backlog never forces an action on its own.
	lin, _ := costfn.NewLinear(1, 0)
	capped, err := costfn.NewCapped(lin, 6)
	if err != nil {
		t.Fatal(err)
	}
	steep, _ := costfn.NewLinear(2, 0)
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 15; trial++ {
		arr := randArrivals(rng, 3+rng.Intn(10), 2, 3)
		in := mkInstance(t, arr, []core.CostFunc{capped, steep}, 8+rng.Float64()*4)
		res, err := Search(in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := in.Validate(res.Plan); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		dij, err := Search(in, Options{DisableHeuristic: true})
		if err != nil {
			t.Fatal(err)
		}
		if absDiff(res.Cost, dij.Cost) > 1e-9 {
			t.Fatalf("trial %d: A* %g != Dijkstra %g under capped costs", trial, res.Cost, dij.Cost)
		}
	}
}

func TestSearchAllowNonMinimalNeverWorse(t *testing.T) {
	// Lazy-greedy plans are a superset of LGM plans, so dropping the
	// minimality restriction can only help (or tie).
	rng := rand.New(rand.NewSource(23))
	step, _ := costfn.NewStep(3, 2)
	lin, _ := costfn.NewLinear(1, 1)
	for trial := 0; trial < 15; trial++ {
		arr := randArrivals(rng, 3+rng.Intn(8), 2, 3)
		in := mkInstance(t, arr, []core.CostFunc{step, lin}, 5+rng.Float64()*6)
		minimal, err := Search(in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		wide, err := Search(in, Options{AllowNonMinimal: true})
		if err != nil {
			t.Fatal(err)
		}
		if wide.Cost > minimal.Cost+1e-9 {
			t.Fatalf("trial %d: non-minimal search cost %g worse than minimal %g", trial, wide.Cost, minimal.Cost)
		}
		if err := in.Validate(wide.Plan); err != nil {
			t.Fatalf("trial %d: non-minimal plan invalid: %v", trial, err)
		}
	}
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
