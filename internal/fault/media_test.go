package fault_test

import (
	"fmt"
	iofs "io/fs"
	"reflect"
	"sort"
	"strings"
	"testing"

	"abivm/internal/fault"
)

// mapFS is a minimal MediaFS for exercising the injector without
// pulling in the durable layer.
type mapFS map[string][]byte

func (m mapFS) ReadFile(name string) ([]byte, error) {
	data, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("mapfs read %q: %w", name, iofs.ErrNotExist)
	}
	return append([]byte(nil), data...), nil
}

func (m mapFS) WriteFile(name string, data []byte) error {
	m[name] = append([]byte(nil), data...)
	return nil
}

func (m mapFS) AppendFile(name string, data []byte) error {
	m[name] = append(m[name], data...)
	return nil
}

func (m mapFS) Rename(oldName, newName string) error {
	data, ok := m[oldName]
	if !ok {
		return fmt.Errorf("mapfs rename %q: %w", oldName, iofs.ErrNotExist)
	}
	delete(m, oldName)
	m[newName] = data
	return nil
}

func (m mapFS) Remove(name string) error {
	delete(m, name)
	return nil
}

func (m mapFS) List() ([]string, error) {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// driveMedia runs a fixed operation script against a seeded injector
// and returns the surviving file state.
func driveMedia(t *testing.T, seed int64, rates fault.MediaRates) (mapFS, map[fault.MediaFault]int) {
	t.Helper()
	inner := mapFS{}
	media := fault.NewMedia(inner, seed, rates)
	for i := 0; i < 40; i++ {
		if err := media.AppendFile("wal", []byte(fmt.Sprintf("record-%02d|", i))); err != nil {
			t.Fatal(err)
		}
		if i%5 == 4 {
			if err := media.WriteFile("seg.tmp", []byte(strings.Repeat("s", 64))); err != nil {
				t.Fatal(err)
			}
			if err := media.Rename("seg.tmp", fmt.Sprintf("seg-%02d", i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return inner, media.Fired()
}

func TestMediaDeterministicPerSeed(t *testing.T) {
	rates := fault.DefaultMediaRates()
	// High enough volume that several kinds fire; same seed must damage
	// the same bytes.
	aFS, aFired := driveMedia(t, 42, rates)
	bFS, bFired := driveMedia(t, 42, rates)
	if !reflect.DeepEqual(map[string][]byte(aFS), map[string][]byte(bFS)) {
		t.Error("same seed produced different file damage")
	}
	if !reflect.DeepEqual(aFired, bFired) {
		t.Errorf("same seed fired %v vs %v", aFired, bFired)
	}
	cFS, _ := driveMedia(t, 43, rates)
	if reflect.DeepEqual(map[string][]byte(aFS), map[string][]byte(cFS)) {
		t.Error("different seeds produced identical damage (suspicious)")
	}
}

func TestMediaEveryKindFiresAcrossSeeds(t *testing.T) {
	total := map[fault.MediaFault]int{}
	for seed := int64(0); seed < 30; seed++ {
		_, fired := driveMedia(t, seed, fault.DefaultMediaRates())
		for k, n := range fired {
			total[k] += n
		}
	}
	for _, kind := range []fault.MediaFault{fault.MediaTornAppend, fault.MediaBitFlip,
		fault.MediaTruncate, fault.MediaDropFile, fault.MediaSkipRename} {
		if total[kind] == 0 {
			t.Errorf("fault kind %s never fired across 30 seeds", kind)
		}
	}
}

func TestMediaRunCap(t *testing.T) {
	inner := mapFS{}
	media := fault.NewMedia(inner, 1, fault.MediaRates{TornAppend: 1})
	// With certainty-rate faults the consecutive-run cap admits exactly
	// MediaMaxRun fires before forcing a clean operation: F F S F F S.
	for i := 0; i < 6; i++ {
		if err := media.AppendFile("wal", []byte("0123456789")); err != nil {
			t.Fatal(err)
		}
	}
	if got := media.Fired()[fault.MediaTornAppend]; got != 4 {
		t.Errorf("6 certain appends fired %d faults, want 4 (run cap %d)", got, fault.MediaMaxRun)
	}
	if got := len(inner["wal"]); got >= 60 {
		t.Errorf("torn appends lost no bytes: %d", got)
	}
	if media.Total() != 4 {
		t.Errorf("Total() = %d, want 4", media.Total())
	}
}

func TestMediaRenameOfDroppedFileSucceeds(t *testing.T) {
	inner := mapFS{}
	media := fault.NewMedia(inner, 1, fault.MediaRates{})
	// A writer whose temp file was silently dropped must still see the
	// rename succeed — the lie only surfaces at recovery.
	if err := media.Rename("never-written.tmp", "target"); err != nil {
		t.Fatalf("rename of dropped file surfaced: %v", err)
	}
	if _, ok := inner["target"]; ok {
		t.Fatal("rename of dropped file materialized a target")
	}
}

func TestMediaReadSidePassthrough(t *testing.T) {
	inner := mapFS{"f": []byte("payload")}
	media := fault.NewMedia(inner, 7, fault.DefaultMediaRates())
	for i := 0; i < 50; i++ {
		got, err := media.ReadFile("f")
		if err != nil || string(got) != "payload" {
			t.Fatalf("read %d damaged: %q, %v", i, got, err)
		}
		names, err := media.List()
		if err != nil || len(names) != 1 {
			t.Fatalf("list %d damaged: %v, %v", i, names, err)
		}
	}
	if media.Total() != 0 {
		t.Errorf("read-side operations injected %d faults", media.Total())
	}
}
