// Chaos harness: randomized seeded fault schedules against the pub/sub
// maintenance runtime. The core property — the acceptance bar of the
// fault-tolerance subsystem — is that for every seed, the faulted-and-
// recovered run produces byte-identical notifications and final view
// contents to the fault-free run, and every non-degraded notification
// still satisfies its subscription's QoS bound C (the per-notification
// bound is asserted inside pubsub.RunChaos).
//
// The test lives in package fault_test so the leaf fault package can be
// imported by every runtime layer while its chaos suite exercises the
// full stack.
package fault_test

import (
	"fmt"
	"testing"

	"abivm/internal/fault"
	"abivm/internal/pubsub"
)

// chaosSeeds returns the number of seeded schedules to run: the full 50+
// of the acceptance criterion normally, a small set in -short mode (the
// CI chaos smoke job).
func chaosSeeds(t *testing.T) int64 {
	t.Helper()
	if testing.Short() {
		return 8
	}
	return 50
}

func TestChaosDeterminism(t *testing.T) {
	seeds := chaosSeeds(t)
	type tally struct {
		faults   int
		degraded int
		fired    map[fault.Site]int
	}
	results := make([]tally, seeds)
	for seed := int64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rep, err := pubsub.RunChaos(pubsub.ChaosConfig{Seed: seed})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if !rep.Identical {
				t.Errorf("seed %d: faulted run diverged from baseline:\n%s", seed, rep.Diff)
			}
			if rep.Degraded != 0 {
				// The Seeded injector's burst cap is below the broker's
				// retry budget, so degradation here means retry/rollback
				// accounting is broken.
				t.Errorf("seed %d: %d degraded notifications under capped transient faults", seed, rep.Degraded)
			}
			if rep.Notifications == 0 {
				t.Errorf("seed %d: no notifications — vacuous comparison", seed)
			}
			results[seed-1] = tally{faults: rep.TotalFaults, degraded: rep.Degraded, fired: rep.Faults}
		})
	}
	t.Cleanup(func() {
		total := 0
		perSite := map[fault.Site]int{}
		for _, r := range results {
			total += r.faults
			for s, n := range r.fired {
				perSite[s] += n
			}
		}
		// Non-vacuity: the schedules must actually exercise every site,
		// crashes included.
		if total == 0 {
			t.Error("no faults injected across all seeds — chaos suite is vacuous")
		}
		for _, site := range []fault.Site{
			fault.SiteDrainPlan, fault.SiteDrainApply, fault.SiteWALCommit,
			fault.SiteCheckpoint, fault.SiteCrash,
		} {
			if perSite[site] == 0 && !testing.Short() {
				t.Errorf("site %s never fired across %d seeds", site, len(results))
			}
		}
		t.Logf("chaos: %d seeds, %d faults injected %v", len(results), total, perSite)
	})
}

// TestChaosIsReproducible re-runs one seed and checks the report itself
// is stable — the injector schedule, not just the outcome.
func TestChaosIsReproducible(t *testing.T) {
	a, err := pubsub.RunChaos(pubsub.ChaosConfig{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	b, err := pubsub.RunChaos(pubsub.ChaosConfig{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalFaults != b.TotalFaults || a.Notifications != b.Notifications {
		t.Errorf("same seed produced different runs: %+v vs %+v", a, b)
	}
	for site, n := range a.Faults {
		if b.Faults[site] != n {
			t.Errorf("site %s fired %d then %d times for the same seed", site, n, b.Faults[site])
		}
	}
}
