package fault_test

import (
	"errors"
	"fmt"
	"testing"

	"abivm/internal/fault"
)

func TestSeededIsDeterministic(t *testing.T) {
	sites := []fault.Site{
		fault.SiteDrainPlan, fault.SiteDrainApply, fault.SiteWALCommit,
		fault.SiteCheckpoint, fault.SiteCrash,
	}
	trace := func(seed int64) string {
		inj := fault.NewSeeded(seed, fault.DefaultRates())
		out := ""
		for i := 0; i < 500; i++ {
			err := inj.Hit(sites[i%len(sites)])
			if err != nil {
				out += fmt.Sprintf("%d:%v;", i, err)
			}
		}
		return out
	}
	a, b := trace(42), trace(42)
	if a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	if a == trace(43) {
		t.Fatal("different seeds produced an identical 500-call fault trace")
	}
	if a == "" {
		t.Fatal("default rates injected nothing in 500 calls")
	}
}

func TestSeededCapsConsecutiveFailures(t *testing.T) {
	// Rate 1.0 would fail every call; the MaxRun cap must force a success
	// after each run of MaxRun failures.
	inj := fault.NewSeeded(1, fault.Rates{DrainPlan: 1.0})
	consec := 0
	for i := 0; i < 100; i++ {
		if err := inj.Hit(fault.SiteDrainPlan); err != nil {
			consec++
			if consec > fault.MaxRun {
				t.Fatalf("call %d: %d consecutive failures > MaxRun %d", i, consec, fault.MaxRun)
			}
		} else {
			consec = 0
		}
	}
	if inj.Total() == 0 {
		t.Fatal("rate-1.0 injector fired nothing")
	}
}

func TestTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{&fault.Error{Site: fault.SiteDrainPlan, Kind: fault.KindTransient}, true},
		{&fault.Error{Site: fault.SiteDrainApply, Kind: fault.KindPartial}, true},
		{&fault.Error{Site: fault.SiteCrash, Kind: fault.KindCrash}, false},
		{fmt.Errorf("wrap: %w", &fault.Error{Kind: fault.KindTransient}), true},
		{errors.New("a real failure"), false},
		{nil, false},
	}
	for _, c := range cases {
		if got := fault.Transient(c.err); got != c.want {
			t.Errorf("Transient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestAlwaysAtFiresOnlyAtItsSite(t *testing.T) {
	inj := fault.AlwaysAt(fault.SiteDrainApply)
	if err := inj.Hit(fault.SiteDrainPlan); err != nil {
		t.Fatalf("unexpected fault at other site: %v", err)
	}
	err := inj.Hit(fault.SiteDrainApply)
	if err == nil {
		t.Fatal("AlwaysAt did not fire at its site")
	}
	var fe *fault.Error
	if !errors.As(err, &fe) || fe.Kind != fault.KindPartial {
		t.Fatalf("AlwaysAt(drain.apply) kind = %v, want partial", err)
	}
	if !fault.Transient(err) {
		t.Fatal("partial applies must be retryable after rollback")
	}
}

func TestNopInjectsNothing(t *testing.T) {
	var inj fault.Nop
	for i := 0; i < 10; i++ {
		if err := inj.Hit(fault.SiteCrash); err != nil {
			t.Fatalf("Nop injected %v", err)
		}
	}
}
