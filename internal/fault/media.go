package fault

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"sync"
)

// Byte-level media faults: where Injector models failures of runtime
// *operations* (drains, checkpoints, crashes), Media models failures of
// the *storage medium* underneath the durable layer — the byte-level
// damage a real disk inflicts between a write syscall returning and the
// data being read back after a crash. Media wraps any file layer
// implementing MediaFS and decides, deterministically per seed, whether
// each write-side operation lands intact, lands damaged, or silently
// does not land at all. The read side is passed through untouched: every
// corruption a reader can observe is representable as a write that lied,
// which keeps the injected state exactly reproducible from the seed.

// MediaFS is the file-layer surface Media wraps: a flat namespace of
// files addressed by slash-separated relative names. It is defined here,
// in the dependency-free fault package, so the durable layer can accept
// a *Media without an import cycle; durable's own FS interface is
// structurally identical and any implementation satisfies both.
type MediaFS interface {
	// ReadFile returns the full content of a file.
	ReadFile(name string) ([]byte, error)
	// WriteFile atomically creates or replaces a file with data.
	WriteFile(name string, data []byte) error
	// AppendFile appends data to a file, creating it when absent.
	AppendFile(name string, data []byte) error
	// Rename atomically renames a file within the namespace.
	Rename(oldName, newName string) error
	// Remove deletes a file.
	Remove(name string) error
	// List returns every file name in the namespace, sorted.
	List() ([]string, error)
}

// MediaFault names one byte-level damage kind Media can inflict.
type MediaFault string

// Media fault kinds. Each models a distinct way real storage betrays a
// writer; together they cover every corruption class the durable layer's
// recovery ladder must survive.
const (
	// MediaTornAppend cuts an append short: only a prefix of the appended
	// bytes lands — the torn tail write of a crash mid-append.
	MediaTornAppend MediaFault = "torn_append"
	// MediaBitFlip inverts one random bit of the written data — bit rot,
	// or a corrupt sector that still has the right length.
	MediaBitFlip MediaFault = "bit_flip"
	// MediaTruncate cuts a full-file write short, leaving a truncated
	// segment behind.
	MediaTruncate MediaFault = "truncate"
	// MediaDropFile silently skips a full-file write: the file is missing
	// (or stale) afterwards although the writer saw success.
	MediaDropFile MediaFault = "drop_file"
	// MediaSkipRename silently skips a rename — the crash between writing
	// a temp file and renaming it over its target.
	MediaSkipRename MediaFault = "skip_rename"
)

// MediaRates holds per-kind fire probabilities in [0, 1] per operation.
type MediaRates struct {
	TornAppend float64
	BitFlip    float64
	Truncate   float64
	DropFile   float64
	SkipRename float64
}

// DefaultMediaRates is the chaos harness's standard media-fault mix:
// rare enough that most runs recover exactly, frequent enough that a
// 50-seed sweep exercises every damage kind and the full-refresh
// fallback.
func DefaultMediaRates() MediaRates {
	return MediaRates{TornAppend: 0.03, BitFlip: 0.03, Truncate: 0.02, DropFile: 0.02, SkipRename: 0.03}
}

// MediaMaxRun caps consecutive injected media faults per kind, mirroring
// MaxRun for operation faults: unbounded runs could destroy every
// recovery artifact at once, leaving nothing for the fallback ladder to
// demonstrate.
const MediaMaxRun = 2

// Media is a deterministic byte-level fault injector over a file layer:
// for a fixed seed and operation sequence it damages the exact same
// writes in the exact same ways. It is safe for concurrent use, though
// determinism then depends on the callers' sequencing — give each
// independently-scheduled store its own Media.
type Media struct {
	mu    sync.Mutex
	inner MediaFS
	rng   *rand.Rand
	rates MediaRates
	run   map[MediaFault]int
	fired map[MediaFault]int
	total int
}

// NewMedia wraps inner with a seeded media-fault injector.
func NewMedia(inner MediaFS, seed int64, rates MediaRates) *Media {
	return &Media{
		inner: inner,
		rng:   rand.New(rand.NewSource(seed)),
		rates: rates,
		run:   make(map[MediaFault]int),
		fired: make(map[MediaFault]int),
	}
}

// hit decides whether one fault kind fires on this operation, honoring
// the consecutive-run cap. Caller holds m.mu; every call draws exactly
// one variate, so the decision sequence is a pure function of the seed
// and the operation order.
func (m *Media) hit(kind MediaFault, rate float64) bool {
	fire := m.rng.Float64() < rate
	if !fire {
		m.run[kind] = 0
		return false
	}
	if m.run[kind] >= MediaMaxRun {
		m.run[kind] = 0
		return false
	}
	m.run[kind]++
	m.fired[kind]++
	m.total++
	return true
}

// cut returns a strict prefix of data: at least zero bytes, at most
// len(data)-1, so a torn write always loses something. Caller holds m.mu.
func (m *Media) cut(data []byte) []byte {
	return data[:m.rng.Intn(len(data))]
}

// flip returns a copy of data with one random bit inverted. Caller holds
// m.mu.
func (m *Media) flip(data []byte) []byte {
	out := make([]byte, len(data))
	copy(out, data)
	i := m.rng.Intn(len(out))
	out[i] ^= 1 << uint(m.rng.Intn(8))
	return out
}

// ReadFile implements MediaFS, passing reads through untouched.
//
//lint:ignore mutexheld inner is set at construction and never reassigned
func (m *Media) ReadFile(name string) ([]byte, error) { return m.inner.ReadFile(name) }

// WriteFile implements MediaFS. A full-file write may be silently
// dropped (MediaDropFile), truncated (MediaTruncate), or land with one
// bit flipped (MediaBitFlip); the caller always sees success — lying is
// the point.
func (m *Media) WriteFile(name string, data []byte) error {
	m.mu.Lock()
	if len(data) > 0 && m.hit(MediaDropFile, m.rates.DropFile) {
		m.mu.Unlock()
		return nil
	}
	if len(data) > 0 && m.hit(MediaTruncate, m.rates.Truncate) {
		data = m.cut(data)
	} else if len(data) > 0 && m.hit(MediaBitFlip, m.rates.BitFlip) {
		data = m.flip(data)
	}
	m.mu.Unlock()
	return m.inner.WriteFile(name, data)
}

// AppendFile implements MediaFS. An append may land torn
// (MediaTornAppend) or with one bit flipped (MediaBitFlip).
func (m *Media) AppendFile(name string, data []byte) error {
	m.mu.Lock()
	if len(data) > 0 && m.hit(MediaTornAppend, m.rates.TornAppend) {
		data = m.cut(data)
	} else if len(data) > 0 && m.hit(MediaBitFlip, m.rates.BitFlip) {
		data = m.flip(data)
	}
	m.mu.Unlock()
	return m.inner.AppendFile(name, data)
}

// Rename implements MediaFS. A rename may be silently skipped
// (MediaSkipRename) — the temp file stays, the target keeps its old
// content (or stays absent). Renaming a file an earlier MediaDropFile
// made vanish also reports success: to the writer the whole
// write-then-rename sequence appeared to work, and the lie only
// surfaces at recovery, exactly like a real crash after a lost write.
func (m *Media) Rename(oldName, newName string) error {
	m.mu.Lock()
	skip := m.hit(MediaSkipRename, m.rates.SkipRename)
	m.mu.Unlock()
	if skip {
		return nil
	}
	if err := m.inner.Rename(oldName, newName); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return err
	}
	return nil
}

// Remove implements MediaFS, passing deletes through untouched.
//
//lint:ignore mutexheld inner is set at construction and never reassigned
func (m *Media) Remove(name string) error { return m.inner.Remove(name) }

// List implements MediaFS, passing listings through untouched.
//
//lint:ignore mutexheld inner is set at construction and never reassigned
func (m *Media) List() ([]string, error) { return m.inner.List() }

// Fired returns a copy of the per-kind injected-fault counts.
func (m *Media) Fired() map[MediaFault]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[MediaFault]int, len(m.fired))
	for k, v := range m.fired {
		out[k] = v
	}
	return out
}

// Total returns the number of media faults injected so far.
func (m *Media) Total() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}

// String summarizes the injector for diagnostics.
func (m *Media) String() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return fmt.Sprintf("media{faults=%d}", m.total)
}
