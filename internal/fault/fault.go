// Package fault provides deterministic, seeded fault injection for the
// maintenance runtime. The broker and maintainer call Injector.Hit at
// named sites on their hot paths; an injector decides — reproducibly,
// from a seed — whether that operation fails this time. The package has
// no dependencies on the rest of the module, so any layer can accept an
// Injector without import cycles.
//
// Fault kinds mirror the failures a long-lived maintenance service must
// survive (cf. DESIGN.md "Fault model & recovery"):
//
//   - transient drain failures (KindTransient) — a batch drain aborts
//     before mutating anything; a bounded retry clears it. Slow applies
//     that blow the step budget are modeled the same way: in a
//     step-bounded runtime, "too slow" and "failed this attempt" are
//     indistinguishable to the scheduler.
//   - partial applies (KindPartial) — a drain fails mid-mutation; the
//     maintainer must roll back to the pre-action state before retrying.
//   - crashes (KindCrash) — the maintainer loses all in-memory delta
//     state and must recover from its checkpoint plus the write-ahead
//     log.
//
// The Seeded injector bounds consecutive failures per site (MaxRun), so
// a retry budget larger than the sum of per-site bounds is guaranteed to
// clear every transient fault — the foundation of the chaos harness's
// byte-identical determinism property.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// Site names a fault-injection point in the maintenance runtime.
type Site string

// Injection sites threaded through the maintainer and broker.
const (
	// SiteDrainPlan fires at the start of a batch drain, before any state
	// is mutated — a transient failure with nothing to undo.
	SiteDrainPlan Site = "drain.plan"
	// SiteDrainApply fires mid-drain, after replica deletions have been
	// applied but before insertions — the rollback-exercising site.
	SiteDrainApply Site = "drain.apply"
	// SiteWALCommit fires just before the drain-commit record is written
	// to the write-ahead log; the drain must roll back when it fails.
	SiteWALCommit Site = "wal.commit"
	// SiteCheckpoint fires when the broker attempts a periodic
	// checkpoint; a failure skips the checkpoint (recovery just replays a
	// longer WAL suffix).
	SiteCheckpoint Site = "checkpoint"
	// SiteCrash is polled by the broker once per subscription per step; a
	// hit simulates a maintainer crash followed by recovery.
	SiteCrash Site = "crash"
)

// Kind classifies an injected fault.
type Kind uint8

// Fault kinds.
const (
	// KindTransient is a retryable failure that mutated nothing.
	KindTransient Kind = iota
	// KindPartial is a retryable failure raised after partial mutation;
	// the operation must roll back before the retry.
	KindPartial
	// KindCrash is a simulated process crash losing in-memory state.
	KindCrash
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindTransient:
		return "transient"
	case KindPartial:
		return "partial"
	case KindCrash:
		return "crash"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Error is an injected failure. Seq is the injector-global sequence
// number of the fault, making every occurrence traceable in logs.
type Error struct {
	Site Site
	Kind Kind
	Seq  int
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected %s failure #%d at %s", e.Kind, e.Seq, e.Site)
}

// Transient reports whether err is an injected fault that a bounded
// retry (after rollback, for partial applies) may clear. Crashes and
// real (non-injected) errors are not transient.
func Transient(err error) bool {
	var fe *Error
	if !errors.As(err, &fe) {
		return false
	}
	return fe.Kind == KindTransient || fe.Kind == KindPartial
}

// Injector decides whether the operation at a site fails. Implementations
// must be deterministic for a fixed construction and call sequence.
type Injector interface {
	// Hit returns a non-nil error to inject a failure at this call, nil
	// to let the operation proceed.
	Hit(site Site) error
}

// Nop injects nothing; it is the fault-free baseline injector.
type Nop struct{}

// Hit implements Injector.
func (Nop) Hit(Site) error { return nil }

// AlwaysAt returns an injector that fails every call at one site (with
// the kind natural for that site) and nothing elsewhere — a persistent
// fault, for exercising retry exhaustion and degraded mode.
func AlwaysAt(site Site) Injector { return &stuck{site: site} }

type stuck struct {
	site Site
	seq  int
}

func (s *stuck) Hit(site Site) error {
	if site != s.site {
		return nil
	}
	s.seq++
	return &Error{Site: site, Kind: kindOf(site), Seq: s.seq}
}

// kindOf maps a site to the fault kind it naturally raises.
func kindOf(site Site) Kind {
	switch site {
	case SiteDrainApply:
		return KindPartial
	case SiteCrash:
		return KindCrash
	}
	return KindTransient
}

// Rates holds per-site fire probabilities for the Seeded injector, in
// [0, 1] per Hit call.
type Rates struct {
	DrainPlan  float64
	DrainApply float64
	WALCommit  float64
	Checkpoint float64
	Crash      float64
}

// DefaultRates is the chaos harness's standard fault mix: frequent
// transient drain failures, occasional partial applies and crashes.
func DefaultRates() Rates {
	return Rates{DrainPlan: 0.08, DrainApply: 0.05, WALCommit: 0.03, Checkpoint: 0.10, Crash: 0.03}
}

func (r Rates) of(site Site) float64 {
	switch site {
	case SiteDrainPlan:
		return r.DrainPlan
	case SiteDrainApply:
		return r.DrainApply
	case SiteWALCommit:
		return r.WALCommit
	case SiteCheckpoint:
		return r.Checkpoint
	case SiteCrash:
		return r.Crash
	}
	return 0
}

// MaxRun is the per-site cap on consecutive injected failures. After
// MaxRun failures in a row at one site, the next Hit there is forced to
// succeed. A retry budget of at least 1 + MaxRun*(number of in-drain
// sites) therefore always clears transient faults; the broker's default
// budget is derived from this bound.
const MaxRun = 2

// Seeded is a deterministic probabilistic injector: for a fixed seed and
// call sequence it fires the exact same faults. It is safe for
// concurrent use, though determinism then depends on the callers'
// sequencing.
type Seeded struct {
	mu       sync.Mutex
	rng      *rand.Rand
	rates    Rates
	seq      int
	run      map[Site]int // current consecutive-failure run length
	fired    map[Site]int
	observer func(Site, Kind)
}

// NewSeeded returns an injector drawing from rates with the given seed.
func NewSeeded(seed int64, rates Rates) *Seeded {
	return &Seeded{
		rng:   rand.New(rand.NewSource(seed)),
		rates: rates,
		run:   make(map[Site]int),
		fired: make(map[Site]int),
	}
}

// Hit implements Injector.
func (s *Seeded) Hit(site Site) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.run[site] >= MaxRun {
		// Cap consecutive failures so bounded retries always clear them.
		s.run[site] = 0
		return nil
	}
	if s.rng.Float64() >= s.rates.of(site) {
		s.run[site] = 0
		return nil
	}
	s.run[site]++
	s.seq++
	s.fired[site]++
	if s.observer != nil {
		s.observer(site, kindOf(site))
	}
	return &Error{Site: site, Kind: kindOf(site), Seq: s.seq}
}

// SetObserver installs a callback invoked (under the injector's lock)
// for every injected fault. This is the package's instrumentation seam:
// fault stays dependency-free while metrics layers count injections per
// site. The callback must not call back into the injector. A nil
// callback detaches.
func (s *Seeded) SetObserver(fn func(Site, Kind)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observer = fn
}

// Fired returns a copy of the per-site injected-fault counts.
func (s *Seeded) Fired() map[Site]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[Site]int, len(s.fired))
	for k, v := range s.fired {
		out[k] = v
	}
	return out
}

// Total returns the number of faults injected so far.
func (s *Seeded) Total() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}
