package plan

import (
	"strings"
	"testing"

	"abivm/internal/sql"
	"abivm/internal/storage"
)

func TestExplainPaperView(t *testing.T) {
	db := testDB(t)
	sel, err := sql.Parse(`
		SELECT MIN(PS.supplycost)
		FROM partsupp AS PS, supplier AS S, nation AS N, region AS R
		WHERE S.suppkey = PS.suppkey
		AND S.nationkey = N.nationkey
		AND N.regionkey = R.regionkey
		AND R.name = 'MIDDLE EAST'`)
	if err != nil {
		t.Fatal(err)
	}
	op, err := Compile(sel, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := Explain(op)
	for _, want := range []string{"Project", "HashAgg", "aggs=[MIN]", "SeqScan"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
	// The supplier and nation joins go through their indexes.
	if !strings.Contains(out, "IndexLoopJoin") {
		t.Errorf("no index join in plan:\n%s", out)
	}
}

func TestExplainHashJoinAndFilter(t *testing.T) {
	db := testDB(t)
	sel, err := sql.Parse(`SELECT r.name FROM region AS r, nation AS n
		WHERE r.regionkey = n.regionkey AND n.nationkey > 1`)
	if err != nil {
		t.Fatal(err)
	}
	op, err := Compile(sel, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := Explain(op)
	if !strings.Contains(out, "Filter") {
		t.Errorf("missing Filter:\n%s", out)
	}
}

func TestRangeScanChosenForOrderedIndex(t *testing.T) {
	db := testDB(t)
	ps := db.MustTable("partsupp")
	if err := ps.CreateIndex("ps_cost_ord", storage.OrderedIndex, "supplycost"); err != nil {
		t.Fatal(err)
	}
	sel, err := sql.Parse("SELECT partkey FROM partsupp WHERE supplycost >= 105 AND supplycost < 109")
	if err != nil {
		t.Fatal(err)
	}
	op, err := Compile(sel, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := Explain(op)
	if !strings.Contains(out, "IndexRangeScan") {
		t.Fatalf("planner did not pick the range scan:\n%s", out)
	}
	if !strings.Contains(out, "key >= 105") || !strings.Contains(out, "key < 109") {
		t.Fatalf("bounds missing from explain:\n%s", out)
	}
	rows := run(t, db, "SELECT partkey FROM partsupp WHERE supplycost >= 105 AND supplycost < 109", nil)
	// Costs are 100+i for partkeys 0..11: matching costs 105..108 ->
	// partkeys 5..8.
	if len(rows) != 4 {
		t.Fatalf("range query returned %d rows: %v", len(rows), rows)
	}
	seen := map[int64]bool{}
	for _, r := range rows {
		seen[r[0].Int()] = true
	}
	for k := int64(5); k <= 8; k++ {
		if !seen[k] {
			t.Fatalf("missing partkey %d in %v", k, rows)
		}
	}
}

func TestRangeScanEqualityBound(t *testing.T) {
	db := testDB(t)
	ps := db.MustTable("partsupp")
	if err := ps.CreateIndex("ps_cost_ord", storage.OrderedIndex, "supplycost"); err != nil {
		t.Fatal(err)
	}
	rows := run(t, db, "SELECT partkey FROM partsupp WHERE supplycost = 107", nil)
	if len(rows) != 1 || rows[0][0].Int() != 7 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestRangeScanMatchesSeqScanResults(t *testing.T) {
	// Property: with and without the ordered index, every range query
	// returns the same multiset of rows.
	queries := []string{
		"SELECT partkey FROM partsupp WHERE supplycost > 103",
		"SELECT partkey FROM partsupp WHERE supplycost <= 101",
		"SELECT partkey FROM partsupp WHERE supplycost > 102 AND supplycost <= 110",
		"SELECT partkey FROM partsupp WHERE 105 <= supplycost", // literal on the left
	}
	plain := testDB(t)
	indexed := testDB(t)
	if err := indexed.MustTable("partsupp").CreateIndex("ps_cost_ord", storage.OrderedIndex, "supplycost"); err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		a := run(t, plain, q, nil)
		b := run(t, indexed, q, nil)
		if keyOfRows(a) != keyOfRows(b) {
			t.Errorf("%s: seq %v != range %v", q, a, b)
		}
	}
}

func keyOfRows(rows []storage.Row) string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = storage.EncodeKey(r...)
	}
	// Order-insensitive comparison.
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	return strings.Join(keys, "|")
}

func TestRangeScanNotUsedForStringMismatch(t *testing.T) {
	// A numeric bound on a string column must not pick the index.
	db := testDB(t)
	region := db.MustTable("region")
	if err := region.CreateIndex("region_name_ord", storage.OrderedIndex, "name"); err != nil {
		t.Fatal(err)
	}
	sel, err := sql.Parse("SELECT regionkey FROM region WHERE name = 'MIDDLE EAST'")
	if err != nil {
		t.Fatal(err)
	}
	op, err := Compile(sel, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	// String equality CAN use the ordered index.
	if !strings.Contains(Explain(op), "IndexRangeScan") {
		t.Errorf("string equality should use the ordered index:\n%s", Explain(op))
	}
	rows := run(t, db, "SELECT regionkey FROM region WHERE name = 'MIDDLE EAST'", nil)
	if len(rows) != 1 || rows[0][0].Int() != 0 {
		t.Fatalf("rows = %v", rows)
	}
}
