// Package plan compiles parsed SELECT queries into executable operator
// trees: it binds column references against operator schemas, classifies
// WHERE conjuncts into join and filter predicates, orders joins left-deep
// preferring index-nested-loop joins where a matching index exists, and
// places hash aggregation on top. The IVM engine reuses the same planner
// with one base table replaced by a delta-batch source, which is exactly
// how the paper's maintenance queries are shaped.
package plan

import (
	"fmt"

	"abivm/internal/exec"
	"abivm/internal/sql"
	"abivm/internal/storage"
)

// bindScalar compiles a scalar expression against an input schema.
// Aggregates are rejected; the aggregate path handles them separately.
func bindScalar(e sql.Expr, cols []exec.Col) (exec.Scalar, storage.Type, error) {
	switch x := e.(type) {
	case *sql.ColumnRef:
		idx := exec.FindCol(cols, x.Table, x.Column)
		switch idx {
		case -1:
			return nil, 0, fmt.Errorf("plan: unknown column %s", x)
		case -2:
			return nil, 0, fmt.Errorf("plan: ambiguous column %s", x)
		}
		typ := cols[idx].Type
		return func(r storage.Row) storage.Value { return r[idx] }, typ, nil
	case *sql.IntLit:
		v := storage.I(x.V)
		return func(storage.Row) storage.Value { return v }, storage.TInt, nil
	case *sql.FloatLit:
		v := storage.F(x.V)
		return func(storage.Row) storage.Value { return v }, storage.TFloat, nil
	case *sql.StringLit:
		v := storage.S(x.V)
		return func(storage.Row) storage.Value { return v }, storage.TString, nil
	case *sql.BinaryExpr:
		switch x.Op {
		case "+", "-", "*", "/":
			return bindArith(x, cols)
		}
		return nil, 0, fmt.Errorf("plan: comparison %q used as a scalar", x.Op)
	case *sql.AggExpr:
		return nil, 0, fmt.Errorf("plan: aggregate %s outside an aggregation context", x)
	}
	return nil, 0, fmt.Errorf("plan: unsupported expression %T", e)
}

func bindArith(x *sql.BinaryExpr, cols []exec.Col) (exec.Scalar, storage.Type, error) {
	left, lt, err := bindScalar(x.Left, cols)
	if err != nil {
		return nil, 0, err
	}
	right, rt, err := bindScalar(x.Right, cols)
	if err != nil {
		return nil, 0, err
	}
	if lt == storage.TString || rt == storage.TString {
		return nil, 0, fmt.Errorf("plan: arithmetic on string operands in %s", x)
	}
	intResult := lt == storage.TInt && rt == storage.TInt && x.Op != "/"
	op := x.Op
	if intResult {
		return func(r storage.Row) storage.Value {
			a, b := left(r).Int(), right(r).Int()
			switch op {
			case "+":
				return storage.I(a + b)
			case "-":
				return storage.I(a - b)
			default: // "*"
				return storage.I(a * b)
			}
		}, storage.TInt, nil
	}
	return func(r storage.Row) storage.Value {
		a, b := left(r).Float(), right(r).Float()
		switch op {
		case "+":
			return storage.F(a + b)
		case "-":
			return storage.F(a - b)
		case "*":
			return storage.F(a * b)
		default: // "/"
			return storage.F(a / b)
		}
	}, storage.TFloat, nil
}

// bindPredicate compiles a comparison conjunct into a Predicate.
func bindPredicate(e sql.Expr, cols []exec.Col) (exec.Predicate, error) {
	b, ok := e.(*sql.BinaryExpr)
	if !ok {
		return nil, fmt.Errorf("plan: WHERE conjunct %s is not a comparison", e)
	}
	switch b.Op {
	case "=", "<>", "<", "<=", ">", ">=":
	default:
		return nil, fmt.Errorf("plan: WHERE conjunct %s is not a comparison", e)
	}
	left, _, err := bindScalar(b.Left, cols)
	if err != nil {
		return nil, err
	}
	right, _, err := bindScalar(b.Right, cols)
	if err != nil {
		return nil, err
	}
	op := b.Op
	return func(r storage.Row) bool {
		c := storage.Compare(left(r), right(r))
		switch op {
		case "=":
			return c == 0
		case "<>":
			return c != 0
		case "<":
			return c < 0
		case "<=":
			return c <= 0
		case ">":
			return c > 0
		default: // ">="
			return c >= 0
		}
	}, nil
}

// exprTables collects the table aliases referenced by an expression.
// Unqualified references resolve through the alias→columns map; ambiguous
// or unknown references surface as errors at bind time instead.
func exprTables(e sql.Expr, out map[string]bool, resolve func(col string) string) {
	switch x := e.(type) {
	case *sql.ColumnRef:
		if x.Table != "" {
			out[x.Table] = true
		} else if owner := resolve(x.Column); owner != "" {
			out[owner] = true
		}
	case *sql.BinaryExpr:
		exprTables(x.Left, out, resolve)
		exprTables(x.Right, out, resolve)
	case *sql.AggExpr:
		if x.Arg != nil {
			exprTables(x.Arg, out, resolve)
		}
	}
}
