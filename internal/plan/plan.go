package plan

import (
	"fmt"
	"sort"

	"abivm/internal/exec"
	"abivm/internal/sql"
	"abivm/internal/storage"
)

// Options tunes compilation.
type Options struct {
	// Sources replaces the named FROM aliases with arbitrary operators
	// (e.g. a delta batch). At most one alias may be replaced; it becomes
	// the driving (leftmost) input of the join so the remaining base
	// tables can be probed through their indexes — the shape of the
	// paper's incremental maintenance queries.
	Sources map[string]exec.Op
	// Resolve maps a FROM table name to a stored table. When nil, tables
	// resolve through the db passed to Compile. The IVM engine uses this
	// to point the planner at its view-consistent replicas.
	Resolve func(name string) (*storage.Table, error)
	// Stats receives operator work-unit charges; defaults to db.Stats().
	Stats *storage.Stats
}

// Compile turns a parsed SELECT into an executable operator tree.
func Compile(sel *sql.Select, db *storage.DB, opts *Options) (exec.Op, error) {
	if opts == nil {
		opts = &Options{}
	}
	resolve := opts.Resolve
	if resolve == nil {
		if db == nil {
			return nil, fmt.Errorf("plan: need a database or a Resolve option")
		}
		resolve = db.Table
	}
	stats := opts.Stats
	if stats == nil && db != nil {
		stats = db.Stats()
	}
	c := &compiler{sel: sel, resolve: resolve, stats: stats, sources: opts.Sources}
	return c.compile()
}

// fromEntry is one bound FROM-clause table.
type fromEntry struct {
	alias  string
	table  *storage.Table // nil when overridden by a source
	source exec.Op        // non-nil when overridden
	cols   []exec.Col
}

// joinEdge is one equi-join conjunct between two aliases.
type joinEdge struct {
	a, b       string // aliases
	colA, colB string // join column names on each side
	expr       sql.Expr
}

type compiler struct {
	sel     *sql.Select
	resolve func(string) (*storage.Table, error)
	stats   *storage.Stats
	sources map[string]exec.Op

	entries map[string]*fromEntry
	order   []string // FROM order, for determinism
	colOwn  map[string]string
	edges   []joinEdge
	local   map[string][]sql.Expr // single-table conjuncts per alias
	residue []sql.Expr
}

func (c *compiler) compile() (exec.Op, error) {
	if err := c.bindFrom(); err != nil {
		return nil, err
	}
	if err := c.classifyWhere(); err != nil {
		return nil, err
	}
	op, joined, err := c.buildJoins()
	if err != nil {
		return nil, err
	}
	// Residual predicates (cross-table non-equi conjuncts).
	for _, e := range c.residue {
		pred, err := bindPredicate(e, op.Columns())
		if err != nil {
			return nil, err
		}
		op = exec.NewFilter(op, pred)
	}
	_ = joined
	if c.sel.HasAggregates() || len(c.sel.GroupBy) > 0 {
		op, err = c.buildAggregate(op)
	} else {
		op, err = c.buildProjection(op)
	}
	if err != nil {
		return nil, err
	}
	return c.applyOrderLimit(op)
}

// applyOrderLimit places Sort and Limit above the projection. ORDER BY
// keys resolve against the output columns (select aliases or projected
// column names), matching SQL's output-ordering semantics.
func (c *compiler) applyOrderLimit(op exec.Op) (exec.Op, error) {
	if len(c.sel.OrderBy) > 0 {
		outCols := op.Columns()
		keys := make([]exec.SortKey, len(c.sel.OrderBy))
		for i, o := range c.sel.OrderBy {
			idx := exec.FindCol(outCols, o.Expr.Table, o.Expr.Column)
			switch idx {
			case -1:
				return nil, fmt.Errorf("plan: ORDER BY column %s is not in the select output", o.Expr)
			case -2:
				return nil, fmt.Errorf("plan: ambiguous ORDER BY column %s", o.Expr)
			}
			keys[i] = exec.SortKey{Col: idx, Desc: o.Desc}
		}
		sorted, err := exec.NewSort(op, keys, c.stats)
		if err != nil {
			return nil, err
		}
		op = sorted
	}
	if c.sel.Limit != nil {
		limited, err := exec.NewLimit(op, *c.sel.Limit)
		if err != nil {
			return nil, err
		}
		op = limited
	}
	return op, nil
}

func (c *compiler) bindFrom() error {
	if len(c.sel.From) == 0 {
		return fmt.Errorf("plan: empty FROM clause")
	}
	c.entries = make(map[string]*fromEntry, len(c.sel.From))
	c.colOwn = make(map[string]string)
	overrides := 0
	for _, tr := range c.sel.From {
		if _, dup := c.entries[tr.Alias]; dup {
			return fmt.Errorf("plan: duplicate table alias %q", tr.Alias)
		}
		fe := &fromEntry{alias: tr.Alias}
		if src, ok := c.sources[tr.Alias]; ok {
			fe.source = src
			fe.cols = src.Columns()
			overrides++
		} else {
			tbl, err := c.resolve(tr.Table)
			if err != nil {
				return err
			}
			fe.table = tbl
			schema := tbl.Schema()
			fe.cols = make([]exec.Col, len(schema.Columns))
			for i, col := range schema.Columns {
				fe.cols[i] = exec.Col{Table: tr.Alias, Name: col.Name, Type: col.Type}
			}
		}
		c.entries[tr.Alias] = fe
		c.order = append(c.order, tr.Alias)
		for _, col := range fe.cols {
			if owner, seen := c.colOwn[col.Name]; seen && owner != tr.Alias {
				c.colOwn[col.Name] = "" // ambiguous
			} else if !seen {
				c.colOwn[col.Name] = tr.Alias
			}
		}
	}
	if overrides > 1 {
		return fmt.Errorf("plan: at most one FROM alias may be replaced by a source, got %d", overrides)
	}
	// Every named source must correspond to a FROM alias; validate in
	// sorted order so multiple unknown aliases always fail on the same
	// one.
	sourceAliases := make([]string, 0, len(c.sources))
	for alias := range c.sources {
		sourceAliases = append(sourceAliases, alias)
	}
	sort.Strings(sourceAliases)
	for _, alias := range sourceAliases {
		if _, ok := c.entries[alias]; !ok {
			return fmt.Errorf("plan: source for unknown alias %q", alias)
		}
	}
	return nil
}

// ownerOf resolves the owning alias of a column reference, "" if unknown
// or ambiguous.
func (c *compiler) ownerOf(ref *sql.ColumnRef) string {
	if ref.Table != "" {
		return ref.Table
	}
	return c.colOwn[ref.Column]
}

func (c *compiler) classifyWhere() error {
	c.local = make(map[string][]sql.Expr)
	for _, e := range c.sel.Where {
		b, ok := e.(*sql.BinaryExpr)
		if !ok {
			return fmt.Errorf("plan: WHERE conjunct %s is not a comparison", e)
		}
		// Equi-join edge: col = col across different aliases.
		if b.Op == "=" {
			lr, lok := b.Left.(*sql.ColumnRef)
			rr, rok := b.Right.(*sql.ColumnRef)
			if lok && rok {
				la, ra := c.ownerOf(lr), c.ownerOf(rr)
				if la == "" || ra == "" {
					return fmt.Errorf("plan: cannot resolve tables of join predicate %s", e)
				}
				if la != ra {
					c.edges = append(c.edges, joinEdge{a: la, b: ra, colA: lr.Column, colB: rr.Column, expr: e})
					continue
				}
			}
		}
		// Single-table or residual predicate.
		tables := map[string]bool{}
		exprTables(e, tables, func(col string) string { return c.colOwn[col] })
		if len(tables) == 1 {
			for alias := range tables {
				if _, known := c.entries[alias]; !known {
					//lint:ignore maporder tables has exactly one entry here
					return fmt.Errorf("plan: predicate %s references unknown table %q", e, alias)
				}
				c.local[alias] = append(c.local[alias], e)
			}
			continue
		}
		c.residue = append(c.residue, e)
	}
	return nil
}

// pickDriver chooses the leftmost input: an overridden source wins;
// otherwise the alias with an equality literal filter; ties and the rest
// break toward the smallest table, then FROM order.
func (c *compiler) pickDriver() string {
	for _, alias := range c.order {
		if c.entries[alias].source != nil {
			return alias
		}
	}
	hasEqFilter := func(alias string) bool {
		for _, e := range c.local[alias] {
			if b, ok := e.(*sql.BinaryExpr); ok && b.Op == "=" {
				return true
			}
		}
		return false
	}
	best := ""
	bestScore := -1
	bestSize := 0
	for _, alias := range c.order {
		score := 0
		if hasEqFilter(alias) {
			score = 1
		}
		size := 0
		if t := c.entries[alias].table; t != nil {
			size = t.Len()
		}
		if best == "" || score > bestScore || (score == bestScore && size < bestSize) {
			best, bestScore, bestSize = alias, score, size
		}
	}
	return best
}

// scanWithFilters builds the access path for one alias and applies its
// single-table predicates.
func (c *compiler) scanWithFilters(alias string) (exec.Op, error) {
	fe := c.entries[alias]
	var op exec.Op
	if fe.source != nil {
		op = fe.source
	} else {
		op = c.accessPath(alias, fe.table)
	}
	for _, e := range c.local[alias] {
		pred, err := bindPredicate(e, op.Columns())
		if err != nil {
			return nil, err
		}
		op = exec.NewFilter(op, pred)
	}
	return op, nil
}

// accessPath picks the base access path for a table: an ordered-index
// range scan when a local comparison predicate bounds an indexed column,
// otherwise a sequential scan. The predicate itself is still applied as
// a filter by the caller, so the range only narrows the access path.
func (c *compiler) accessPath(alias string, t *storage.Table) exec.Op {
	type rangeInfo struct {
		ix     *storage.Index
		lo, hi *storage.Bound
		hits   int
	}
	best := map[int]*rangeInfo{} // column position -> accumulated bounds
	for _, e := range c.local[alias] {
		b, ok := e.(*sql.BinaryExpr)
		if !ok {
			continue
		}
		col, lit, op := normalizeComparison(b)
		if col == nil {
			continue
		}
		pos := c.colPosition(alias, col)
		if pos < 0 {
			continue
		}
		ix := orderedIndexOn(t, pos)
		if ix == nil {
			continue
		}
		val, ok := literalValue(lit)
		if !ok || !typesComparable(t.Schema().Columns[pos].Type, val.T) {
			continue
		}
		info := best[pos]
		if info == nil {
			info = &rangeInfo{ix: ix}
			best[pos] = info
		}
		info.hits++
		switch op {
		case "=":
			info.lo = tightenLo(info.lo, &storage.Bound{Value: val})
			info.hi = tightenHi(info.hi, &storage.Bound{Value: val})
		case ">", ">=":
			info.lo = tightenLo(info.lo, &storage.Bound{Value: val, Exclusive: op == ">"})
		case "<", "<=":
			info.hi = tightenHi(info.hi, &storage.Bound{Value: val, Exclusive: op == "<"})
		}
	}
	// Pick the most-hit column deterministically: ties must not be
	// broken by map iteration order, or the chosen index (and with it
	// the plan's work-unit profile) would vary between runs.
	positions := make([]int, 0, len(best))
	for pos := range best {
		positions = append(positions, pos)
	}
	sort.Ints(positions)
	var chosen *rangeInfo
	for _, pos := range positions {
		if info := best[pos]; chosen == nil || info.hits > chosen.hits {
			chosen = info
		}
	}
	if chosen != nil {
		if scan, err := exec.NewIndexRangeScan(t, alias, chosen.ix, chosen.lo, chosen.hi); err == nil {
			return scan
		}
	}
	return exec.NewSeqScan(t, alias)
}

// normalizeComparison extracts (column, literal, operator-with-column-
// on-the-left) from a comparison, or nils when the shape does not match.
func normalizeComparison(b *sql.BinaryExpr) (*sql.ColumnRef, sql.Expr, string) {
	flip := map[string]string{"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}
	if _, ok := flip[b.Op]; !ok {
		return nil, nil, ""
	}
	if col, ok := b.Left.(*sql.ColumnRef); ok && isLiteral(b.Right) {
		return col, b.Right, b.Op
	}
	if col, ok := b.Right.(*sql.ColumnRef); ok && isLiteral(b.Left) {
		return col, b.Left, flip[b.Op]
	}
	return nil, nil, ""
}

func isLiteral(e sql.Expr) bool {
	switch e.(type) {
	case *sql.IntLit, *sql.FloatLit, *sql.StringLit:
		return true
	}
	return false
}

func literalValue(e sql.Expr) (storage.Value, bool) {
	switch x := e.(type) {
	case *sql.IntLit:
		return storage.I(x.V), true
	case *sql.FloatLit:
		return storage.F(x.V), true
	case *sql.StringLit:
		return storage.S(x.V), true
	}
	return storage.Value{}, false
}

// typesComparable reports whether a column of type ct can be range-compared
// with a literal of type lt.
func typesComparable(ct, lt storage.Type) bool {
	if ct == storage.TString || lt == storage.TString {
		return ct == lt
	}
	return true // numerics are mutually comparable
}

// colPosition resolves a column reference to its position in the table's
// schema, verifying the alias matches.
func (c *compiler) colPosition(alias string, ref *sql.ColumnRef) int {
	if ref.Table != "" && ref.Table != alias {
		return -1
	}
	fe := c.entries[alias]
	if fe.table == nil {
		return -1
	}
	return fe.table.Schema().ColIndex(ref.Column)
}

// orderedIndexOn finds an ordered index over exactly the given column.
func orderedIndexOn(t *storage.Table, pos int) *storage.Index {
	for _, ix := range t.Indexes() {
		if ix.Kind == storage.OrderedIndex && len(ix.Cols) == 1 && ix.Cols[0] == pos {
			return ix
		}
	}
	return nil
}

// tightenLo keeps the stronger (larger) of two lower bounds.
func tightenLo(cur, next *storage.Bound) *storage.Bound {
	if cur == nil {
		return next
	}
	c := storage.Compare(next.Value, cur.Value)
	if c > 0 || (c == 0 && next.Exclusive) {
		return next
	}
	return cur
}

// tightenHi keeps the stronger (smaller) of two upper bounds.
func tightenHi(cur, next *storage.Bound) *storage.Bound {
	if cur == nil {
		return next
	}
	c := storage.Compare(next.Value, cur.Value)
	if c < 0 || (c == 0 && next.Exclusive) {
		return next
	}
	return cur
}

// buildJoins assembles the left-deep join tree.
func (c *compiler) buildJoins() (exec.Op, map[string]bool, error) {
	driver := c.pickDriver()
	op, err := c.scanWithFilters(driver)
	if err != nil {
		return nil, nil, err
	}
	joined := map[string]bool{driver: true}
	remaining := len(c.order) - 1
	for remaining > 0 {
		next, keysJoined, keysNew, err := c.nextJoin(joined)
		if err != nil {
			return nil, nil, err
		}
		op, err = c.joinInto(op, next, keysJoined, keysNew)
		if err != nil {
			return nil, nil, err
		}
		joined[next] = true
		remaining--
	}
	return op, joined, nil
}

// nextJoin selects the next alias connected to the joined set and the
// join column pairs (on the joined side and the new side). Aliases with
// an index covering their join columns are preferred.
func (c *compiler) nextJoin(joined map[string]bool) (string, []string, []string, error) {
	type candidate struct {
		alias               string
		joinedCols, newCols []string
		indexed             bool
		order               int
	}
	var cands []candidate
	for pos, alias := range c.order {
		if joined[alias] {
			continue
		}
		var jc, nc []string
		for _, e := range c.edges {
			switch {
			case e.a == alias && joined[e.b]:
				nc = append(nc, e.colA)
				jc = append(jc, e.colB+"\x00"+e.b)
			case e.b == alias && joined[e.a]:
				nc = append(nc, e.colB)
				jc = append(jc, e.colA+"\x00"+e.a)
			}
		}
		if len(nc) == 0 {
			continue
		}
		indexed := false
		if t := c.entries[alias].table; t != nil && t.IndexOn(nc...) != nil {
			indexed = true
		}
		cands = append(cands, candidate{alias: alias, joinedCols: jc, newCols: nc, indexed: indexed, order: pos})
	}
	if len(cands) == 0 {
		return "", nil, nil, fmt.Errorf("plan: query requires a cross product (no join predicate connects the remaining tables)")
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].indexed != cands[j].indexed {
			return cands[i].indexed
		}
		return cands[i].order < cands[j].order
	})
	best := cands[0]
	return best.alias, best.joinedCols, best.newCols, nil
}

// joinInto joins alias `next` into the current tree. keysJoined entries
// are "column\x00alias" pairs identifying the joined-side key columns.
func (c *compiler) joinInto(cur exec.Op, next string, keysJoined, keysNew []string) (exec.Op, error) {
	curCols := cur.Columns()
	leftKeys := make([]int, len(keysJoined))
	for i, kc := range keysJoined {
		col, alias := splitKey(kc)
		idx := exec.FindCol(curCols, alias, col)
		if idx < 0 {
			return nil, fmt.Errorf("plan: join key %s.%s not found in current output", alias, col)
		}
		leftKeys[i] = idx
	}
	fe := c.entries[next]
	// Index-nested-loop path: base table with a covering index and no
	// source override.
	if fe.table != nil {
		if ix := fe.table.IndexOn(keysNew...); ix != nil {
			op, err := exec.NewIndexLoopJoin(cur, fe.table, next, ix, leftKeys)
			if err != nil {
				return nil, err
			}
			return c.applyLocalFilters(op, next)
		}
	}
	// Hash-join path: build on the new table's filtered scan.
	build, err := c.scanWithFilters(next)
	if err != nil {
		return nil, err
	}
	rightKeys := make([]int, len(keysNew))
	for i, col := range keysNew {
		idx := exec.FindCol(build.Columns(), next, col)
		if idx == -1 {
			// Overridden sources may expose unqualified columns.
			idx = exec.FindCol(build.Columns(), "", col)
		}
		if idx < 0 {
			return nil, fmt.Errorf("plan: join key %s.%s not found", next, col)
		}
		rightKeys[i] = idx
	}
	return exec.NewHashJoin(cur, build, leftKeys, rightKeys, c.stats)
}

// applyLocalFilters applies the single-table predicates of alias on top
// of op (used after index joins, where pushdown below the join is not
// possible).
func (c *compiler) applyLocalFilters(op exec.Op, alias string) (exec.Op, error) {
	for _, e := range c.local[alias] {
		pred, err := bindPredicate(e, op.Columns())
		if err != nil {
			return nil, err
		}
		op = exec.NewFilter(op, pred)
	}
	return op, nil
}

func splitKey(s string) (col, alias string) {
	for i := 0; i < len(s); i++ {
		if s[i] == 0 {
			return s[:i], s[i+1:]
		}
	}
	return s, ""
}

// buildProjection emits the SELECT list for non-aggregate queries.
func (c *compiler) buildProjection(op exec.Op) (exec.Op, error) {
	cols := make([]exec.Col, len(c.sel.Items))
	exprs := make([]exec.Scalar, len(c.sel.Items))
	for i, item := range c.sel.Items {
		scalar, typ, err := bindScalar(item.Expr, op.Columns())
		if err != nil {
			return nil, err
		}
		col := exec.Col{Name: item.Alias, Type: typ}
		if col.Name == "" {
			// Plain column references keep their qualified identity so
			// ORDER BY (and callers) can resolve them; computed items are
			// named by their source text.
			if ref, ok := item.Expr.(*sql.ColumnRef); ok {
				col.Table = ref.Table
				col.Name = ref.Column
			} else {
				col.Name = item.Expr.String()
			}
		}
		cols[i] = col
		exprs[i] = scalar
	}
	return exec.NewProject(op, cols, exprs, c.stats)
}

// buildAggregate places HashAgg over the join output and projects the
// SELECT list in its written order.
func (c *compiler) buildAggregate(op exec.Op) (exec.Op, error) {
	inCols := op.Columns()
	// Resolve GROUP BY columns.
	groupBy := make([]int, len(c.sel.GroupBy))
	for i, g := range c.sel.GroupBy {
		idx := exec.FindCol(inCols, g.Table, g.Column)
		switch idx {
		case -1:
			return nil, fmt.Errorf("plan: unknown GROUP BY column %s", g)
		case -2:
			return nil, fmt.Errorf("plan: ambiguous GROUP BY column %s", g)
		}
		groupBy[i] = idx
	}
	// Gather aggregates from the select list; map each select item to an
	// output position.
	var specs []exec.AggSpec
	type itemRef struct {
		aggIdx   int // >= 0: aggregate output
		groupIdx int // >= 0: group-by column
	}
	refs := make([]itemRef, len(c.sel.Items))
	for i, item := range c.sel.Items {
		switch x := item.Expr.(type) {
		case *sql.AggExpr:
			spec, err := c.bindAgg(x, inCols, item.Alias)
			if err != nil {
				return nil, err
			}
			refs[i] = itemRef{aggIdx: len(specs), groupIdx: -1}
			specs = append(specs, spec)
		case *sql.ColumnRef:
			idx := exec.FindCol(inCols, x.Table, x.Column)
			if idx < 0 {
				return nil, fmt.Errorf("plan: unknown column %s", x)
			}
			pos := -1
			for gi, g := range groupBy {
				if g == idx {
					pos = gi
					break
				}
			}
			if pos < 0 {
				return nil, fmt.Errorf("plan: column %s is neither aggregated nor in GROUP BY", x)
			}
			refs[i] = itemRef{aggIdx: -1, groupIdx: pos}
		default:
			return nil, fmt.Errorf("plan: select item %s mixes aggregates and scalars unsupported", item.Expr)
		}
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("plan: GROUP BY without aggregates is unsupported")
	}
	agg, err := exec.NewHashAgg(op, groupBy, specs, c.stats)
	if err != nil {
		return nil, err
	}
	// Final projection reorders agg output to the written SELECT order.
	aggCols := agg.Columns()
	outCols := make([]exec.Col, len(refs))
	exprs := make([]exec.Scalar, len(refs))
	for i, ref := range refs {
		var src int
		if ref.aggIdx >= 0 {
			src = len(groupBy) + ref.aggIdx
		} else {
			src = ref.groupIdx
		}
		col := aggCols[src]
		if alias := c.sel.Items[i].Alias; alias != "" {
			col.Name = alias
			col.Table = ""
		}
		outCols[i] = col
		srcIdx := src
		exprs[i] = func(r storage.Row) storage.Value { return r[srcIdx] }
	}
	return exec.NewProject(agg, outCols, exprs, c.stats)
}

func (c *compiler) bindAgg(x *sql.AggExpr, inCols []exec.Col, alias string) (exec.AggSpec, error) {
	kind, err := aggKind(x.Func)
	if err != nil {
		return exec.AggSpec{}, err
	}
	name := alias
	if name == "" {
		name = x.String()
	}
	if x.Arg == nil {
		if kind != exec.AggCount {
			return exec.AggSpec{}, fmt.Errorf("plan: %s requires an argument", x.Func)
		}
		return exec.AggSpec{Kind: exec.AggCount, Name: name}, nil
	}
	scalar, typ, err := bindScalar(x.Arg, inCols)
	if err != nil {
		return exec.AggSpec{}, err
	}
	if typ == storage.TString && kind != exec.AggMin && kind != exec.AggMax && kind != exec.AggCount {
		return exec.AggSpec{}, fmt.Errorf("plan: %s over a string argument", x.Func)
	}
	return exec.AggSpec{Kind: kind, Arg: scalar, Name: name}, nil
}

func aggKind(f sql.AggFunc) (exec.AggKind, error) {
	switch f {
	case sql.AggMin:
		return exec.AggMin, nil
	case sql.AggMax:
		return exec.AggMax, nil
	case sql.AggSum:
		return exec.AggSum, nil
	case sql.AggCount:
		return exec.AggCount, nil
	case sql.AggAvg:
		return exec.AggAvg, nil
	}
	return 0, fmt.Errorf("plan: unknown aggregate %q", f)
}
