package plan

import (
	"strings"
	"testing"

	"abivm/internal/sql"
	"abivm/internal/storage"
)

func TestOrderByAscending(t *testing.T) {
	db := testDB(t)
	rows := run(t, db, "SELECT partkey, supplycost FROM partsupp ORDER BY supplycost", nil)
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if storage.Compare(rows[i-1][1], rows[i][1]) > 0 {
			t.Fatalf("not ascending at %d: %v", i, rows)
		}
	}
}

func TestOrderByDescendingWithLimit(t *testing.T) {
	db := testDB(t)
	rows := run(t, db, "SELECT partkey, supplycost FROM partsupp ORDER BY supplycost DESC LIMIT 3", nil)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Costs are 100+i for partkey i in 0..11 -> top three are 111,110,109.
	want := []float64{111, 110, 109}
	for i, w := range want {
		if rows[i][1].Float() != w {
			t.Fatalf("row %d = %v, want cost %g", i, rows[i], w)
		}
	}
}

func TestOrderByAlias(t *testing.T) {
	db := testDB(t)
	rows := run(t, db, "SELECT supplycost * 2 AS double FROM partsupp ORDER BY double DESC LIMIT 1", nil)
	if len(rows) != 1 || rows[0][0].Float() != 222 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestOrderByOnAggregateOutput(t *testing.T) {
	db := testDB(t)
	rows := run(t, db, `SELECT n.regionkey, COUNT(*) AS cnt
		FROM partsupp AS ps, supplier AS s, nation AS n
		WHERE s.suppkey = ps.suppkey AND s.nationkey = n.nationkey
		GROUP BY n.regionkey ORDER BY cnt DESC`, nil)
	if len(rows) != 2 {
		t.Fatalf("groups = %d", len(rows))
	}
	if rows[0][1].Int() < rows[1][1].Int() {
		t.Fatalf("not descending by count: %v", rows)
	}
}

func TestOrderByMultipleKeys(t *testing.T) {
	db := testDB(t)
	rows := run(t, db, "SELECT suppkey, partkey FROM partsupp ORDER BY suppkey, partkey DESC", nil)
	for i := 1; i < len(rows); i++ {
		a, b := rows[i-1], rows[i]
		if a[0].Int() > b[0].Int() {
			t.Fatalf("primary key not ascending at %d", i)
		}
		if a[0].Int() == b[0].Int() && a[1].Int() < b[1].Int() {
			t.Fatalf("secondary key not descending at %d", i)
		}
	}
}

func TestLimitZeroAndOversized(t *testing.T) {
	db := testDB(t)
	if rows := run(t, db, "SELECT partkey FROM partsupp LIMIT 0", nil); len(rows) != 0 {
		t.Fatalf("LIMIT 0 returned %d rows", len(rows))
	}
	if rows := run(t, db, "SELECT partkey FROM partsupp LIMIT 9999", nil); len(rows) != 12 {
		t.Fatalf("oversized limit returned %d rows", len(rows))
	}
}

func TestLimitWithoutOrder(t *testing.T) {
	db := testDB(t)
	rows := run(t, db, "SELECT partkey FROM partsupp LIMIT 5", nil)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestOrderLimitExplain(t *testing.T) {
	db := testDB(t)
	sel, err := sql.Parse("SELECT partkey FROM partsupp ORDER BY partkey DESC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	op, err := Compile(sel, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := Explain(op)
	for _, want := range []string{"Limit 2", "Sort by partkey DESC", "SeqScan"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
}

func TestOrderByErrors(t *testing.T) {
	db := testDB(t)
	cases := []struct{ query, sub string }{
		{"SELECT partkey FROM partsupp ORDER BY supplycost", "not in the select output"},
		{"SELECT partkey FROM partsupp ORDER BY nope", "not in the select output"},
	}
	for _, c := range cases {
		sel, err := sql.Parse(c.query)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Compile(sel, db, nil); err == nil || !strings.Contains(err.Error(), c.sub) {
			t.Errorf("Compile(%q) err = %v, want %q", c.query, err, c.sub)
		}
	}
}
