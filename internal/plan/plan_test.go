package plan

import (
	"math"
	"strings"
	"testing"

	"abivm/internal/exec"
	"abivm/internal/sql"
	"abivm/internal/storage"
)

// testDB builds a miniature TPC-R-shaped database:
// region(2) <- nation(4) <- supplier(6) <- partsupp(12).
func testDB(t *testing.T) *storage.DB {
	t.Helper()
	db := storage.NewDB()

	mk := func(name string, cols []storage.Column, key string) *storage.Table {
		schema, err := storage.NewSchema(name, cols, key)
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := db.CreateTable(schema)
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}

	region := mk("region", []storage.Column{
		{Name: "regionkey", Type: storage.TInt},
		{Name: "name", Type: storage.TString},
	}, "regionkey")
	for i, n := range []string{"MIDDLE EAST", "EUROPE"} {
		if err := region.Insert(storage.Row{storage.I(int64(i)), storage.S(n)}); err != nil {
			t.Fatal(err)
		}
	}

	nation := mk("nation", []storage.Column{
		{Name: "nationkey", Type: storage.TInt},
		{Name: "nname", Type: storage.TString},
		{Name: "regionkey", Type: storage.TInt},
	}, "nationkey")
	for i := 0; i < 4; i++ {
		if err := nation.Insert(storage.Row{storage.I(int64(i)), storage.S("N"), storage.I(int64(i % 2))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := nation.CreateIndex("nation_pk", storage.HashIndex, "nationkey"); err != nil {
		t.Fatal(err)
	}

	supplier := mk("supplier", []storage.Column{
		{Name: "suppkey", Type: storage.TInt},
		{Name: "sname", Type: storage.TString},
		{Name: "nationkey", Type: storage.TInt},
	}, "suppkey")
	for i := 0; i < 6; i++ {
		if err := supplier.Insert(storage.Row{storage.I(int64(i)), storage.S("S"), storage.I(int64(i % 4))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := supplier.CreateIndex("supplier_pk", storage.HashIndex, "suppkey"); err != nil {
		t.Fatal(err)
	}

	partsupp := mk("partsupp", []storage.Column{
		{Name: "partkey", Type: storage.TInt},
		{Name: "suppkey", Type: storage.TInt},
		{Name: "supplycost", Type: storage.TFloat},
	}, "partkey")
	for i := 0; i < 12; i++ {
		cost := float64(100 + i)
		if err := partsupp.Insert(storage.Row{storage.I(int64(i)), storage.I(int64(i % 6)), storage.F(cost)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := partsupp.CreateIndex("ps_supp", storage.HashIndex, "suppkey"); err != nil {
		t.Fatal(err)
	}
	return db
}

func run(t *testing.T, db *storage.DB, query string, opts *Options) []storage.Row {
	t.Helper()
	sel, err := sql.Parse(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	op, err := Compile(sel, db, opts)
	if err != nil {
		t.Fatalf("compile %q: %v", query, err)
	}
	rows, err := exec.Collect(op)
	if err != nil {
		t.Fatalf("run %q: %v", query, err)
	}
	return rows
}

func TestSimpleScanProjection(t *testing.T) {
	db := testDB(t)
	rows := run(t, db, "SELECT regionkey, name FROM region", nil)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestFilterPushdown(t *testing.T) {
	db := testDB(t)
	rows := run(t, db, "SELECT name FROM region WHERE name = 'MIDDLE EAST'", nil)
	if len(rows) != 1 || rows[0][0].Str() != "MIDDLE EAST" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestArithmeticProjection(t *testing.T) {
	db := testDB(t)
	rows := run(t, db, "SELECT supplycost * 2 + 1 AS x FROM partsupp WHERE partkey = 0", nil)
	if len(rows) != 1 || rows[0][0].Float() != 201 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestTwoWayJoin(t *testing.T) {
	db := testDB(t)
	rows := run(t, db, `SELECT s.suppkey, n.nname FROM supplier AS s, nation AS n
		WHERE s.nationkey = n.nationkey`, nil)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestPaperViewEndToEnd(t *testing.T) {
	db := testDB(t)
	rows := run(t, db, `
		SELECT MIN(PS.supplycost)
		FROM partsupp AS PS, supplier AS S, nation AS N, region AS R
		WHERE S.suppkey = PS.suppkey
		AND S.nationkey = N.nationkey
		AND N.regionkey = R.regionkey
		AND R.name = 'MIDDLE EAST'`, nil)
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Region 0 (MIDDLE EAST) <- nations {0, 2} <- suppliers {0,2,4} (i%4 in
	// {0,2}) <- partsupp rows with suppkey in {0,2,4}: i%6 in {0,2,4} ->
	// i in {0,2,4,6,8,10}, costs 100+i -> min 100.
	if got := rows[0][0].Float(); got != 100 {
		t.Fatalf("MIN = %g, want 100", got)
	}
}

func TestGroupByQuery(t *testing.T) {
	db := testDB(t)
	rows := run(t, db, `SELECT n.regionkey, COUNT(*) AS cnt, MIN(ps.supplycost) AS mn
		FROM partsupp AS ps, supplier AS s, nation AS n
		WHERE s.suppkey = ps.suppkey AND s.nationkey = n.nationkey
		GROUP BY n.regionkey`, nil)
	if len(rows) != 2 {
		t.Fatalf("groups = %d: %v", len(rows), rows)
	}
	// Groups sorted by key: regionkey 0 then 1.
	if rows[0][0].Int() != 0 || rows[1][0].Int() != 1 {
		t.Fatalf("group order: %v", rows)
	}
	if rows[0][1].Int()+rows[1][1].Int() != 12 {
		t.Fatalf("counts don't cover all partsupp rows: %v", rows)
	}
	if rows[0][2].Float() != 100 {
		t.Fatalf("min of group 0 = %v", rows[0][2])
	}
}

func TestAggregateOverEmptyJoin(t *testing.T) {
	db := testDB(t)
	rows := run(t, db, `SELECT COUNT(*), SUM(ps.supplycost) FROM partsupp AS ps, supplier AS s
		WHERE s.suppkey = ps.suppkey AND s.sname = 'NOPE'`, nil)
	if len(rows) != 1 || rows[0][0].Int() != 0 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestSourceOverrideDrivesJoin(t *testing.T) {
	// Replace partsupp with a two-row delta batch: the delta drives the
	// join and probes the other tables.
	db := testDB(t)
	deltaCols := []exec.Col{
		{Table: "PS", Name: "partkey", Type: storage.TInt},
		{Table: "PS", Name: "suppkey", Type: storage.TInt},
		{Table: "PS", Name: "supplycost", Type: storage.TFloat},
	}
	delta := exec.NewRowsSource(deltaCols, []storage.Row{
		{storage.I(100), storage.I(0), storage.F(55)}, // supplier 0 -> nation 0 -> region 0 (ME)
		{storage.I(101), storage.I(1), storage.F(44)}, // supplier 1 -> nation 1 -> region 1
	}, db.Stats())
	rows := run(t, db, `
		SELECT MIN(PS.supplycost)
		FROM partsupp AS PS, supplier AS S, nation AS N, region AS R
		WHERE S.suppkey = PS.suppkey
		AND S.nationkey = N.nationkey
		AND N.regionkey = R.regionkey
		AND R.name = 'MIDDLE EAST'`, &Options{Sources: map[string]exec.Op{"PS": delta}})
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if got := rows[0][0].Float(); got != 55 {
		t.Fatalf("delta MIN = %g, want 55 (only the ME row qualifies)", got)
	}
}

func TestCompileErrors(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		query string
		sub   string
	}{
		{"SELECT x FROM region", "unknown column"},
		{"SELECT r.name FROM region AS r, region AS r", "duplicate table alias"},
		{"SELECT name FROM missing", "no table"},
		{"SELECT r.name, s.sname FROM region AS r, supplier AS s", "cross product"},
		{"SELECT suppkey FROM supplier, partsupp WHERE supplier.suppkey = partsupp.suppkey", "ambiguous"},
		{"SELECT MIN(supplycost), partkey FROM partsupp", "neither aggregated nor in GROUP BY"},
		{"SELECT name + 1 FROM region", "arithmetic on string"},
		{"SELECT SUM(name) FROM region", "over a string argument"},
	}
	for _, c := range cases {
		sel, err := sql.Parse(c.query)
		if err != nil {
			t.Fatalf("parse %q: %v", c.query, err)
		}
		if _, err := Compile(sel, db, nil); err == nil || !strings.Contains(err.Error(), c.sub) {
			t.Errorf("Compile(%q) err = %v, want substring %q", c.query, err, c.sub)
		}
	}
}

func TestIndexJoinPreferredOverHashJoin(t *testing.T) {
	// Joining partsupp into (supplier ⋈ nation ...) uses ps_supp index;
	// the probe counters prove the index path was chosen.
	db := testDB(t)
	ps := db.MustTable("partsupp")
	before := ps.Stats().IndexProbes
	_ = run(t, db, `SELECT COUNT(*) FROM supplier AS s, partsupp AS ps
		WHERE s.suppkey = ps.suppkey AND s.sname = 'S'`, nil)
	if ps.Stats().IndexProbes == before {
		t.Fatal("no index probes: planner ignored the covering index")
	}
}

func TestCompileWithResolver(t *testing.T) {
	db := testDB(t)
	resolved := 0
	opts := &Options{
		Resolve: func(name string) (*storage.Table, error) {
			resolved++
			return db.Table(name)
		},
		Stats: db.Stats(),
	}
	rows := run(t, db, "SELECT COUNT(*) FROM supplier", opts)
	if rows[0][0].Int() != 6 {
		t.Fatalf("count = %v", rows[0][0])
	}
	if resolved != 1 {
		t.Fatalf("resolver called %d times", resolved)
	}
}

func TestAvgAggregate(t *testing.T) {
	db := testDB(t)
	rows := run(t, db, "SELECT AVG(supplycost) FROM partsupp", nil)
	want := 0.0
	for i := 0; i < 12; i++ {
		want += float64(100 + i)
	}
	want /= 12
	if got := rows[0][0].Float(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("AVG = %g, want %g", got, want)
	}
}
