package plan

import (
	"fmt"
	"strings"

	"abivm/internal/exec"
)

// Explain renders an operator tree as an indented physical plan, in the
// spirit of SQL EXPLAIN output:
//
//	Project [MIN(PS.supplycost)]
//	└─ HashAgg group=[] aggs=[MIN]
//	   └─ Filter
//	      └─ IndexLoopJoin inner=region
//	         └─ IndexLoopJoin inner=nation
//	            └─ IndexLoopJoin inner=supplier
//	               └─ SeqScan partsupp AS PS
//
// It is intentionally structural: costs are the business of the
// costmodel package, not the explainer.
func Explain(op exec.Op) string {
	var sb strings.Builder
	explain(&sb, op, "", "", "")
	return sb.String()
}

// explain renders one node. head is the branch glyph for this line; tail
// is the indentation its children inherit.
func explain(sb *strings.Builder, op exec.Op, indent, head, tail string) {
	line := func(format string, args ...any) {
		fmt.Fprintf(sb, "%s%s"+format+"\n", append([]any{indent, head}, args...)...)
	}
	child := indent + tail
	one := func(c exec.Op) { explain(sb, c, child, "└─ ", "   ") }
	two := func(a, b exec.Op) {
		explain(sb, a, child, "├─ ", "│  ")
		explain(sb, b, child, "└─ ", "   ")
	}
	switch x := op.(type) {
	case *exec.Limit:
		line("Limit %d", x.N())
		one(x.Input())
	case *exec.Sort:
		line("Sort %s", x.Describe())
		one(x.Input())
	case *exec.Project:
		line("Project %s", colList(x.Columns()))
		one(x.Input())
	case *exec.Filter:
		line("Filter")
		one(x.Input())
	case *exec.HashAgg:
		line("HashAgg %s", x.Describe())
		one(x.Input())
	case *exec.HashJoin:
		line("HashJoin %s", x.Describe())
		two(x.Left(), x.Right())
	case *exec.IndexLoopJoin:
		line("IndexLoopJoin %s", x.Describe())
		one(x.Left())
	case *exec.SeqScan:
		line("SeqScan %s", x.Describe())
	case *exec.IndexRangeScan:
		line("IndexRangeScan %s", x.Describe())
	case *exec.RowsSource:
		line("RowsSource (%d cols)", len(x.Columns()))
	default:
		line("%T", op)
	}
}

func colList(cols []exec.Col) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = c.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}
