package plan

import (
	"abivm/internal/exec"
	"abivm/internal/sql"
	"abivm/internal/storage"
)

// BindScalar compiles a scalar expression against an input schema — the
// exported form of the binder the planner uses internally, so other
// incremental runtimes (internal/dataflow) evaluate expressions with
// exactly the planner's semantics instead of reimplementing them.
// Aggregates are rejected.
func BindScalar(e sql.Expr, cols []exec.Col) (exec.Scalar, storage.Type, error) {
	return bindScalar(e, cols)
}

// BindPredicate compiles a WHERE conjunct (a comparison) against an
// input schema — the exported form of the planner's predicate binder.
func BindPredicate(e sql.Expr, cols []exec.Col) (exec.Predicate, error) {
	return bindPredicate(e, cols)
}
