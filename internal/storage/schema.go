package storage

import "fmt"

// Column describes one attribute of a table.
type Column struct {
	Name string
	Type Type
}

// Schema describes a table: its name, columns, and primary key.
type Schema struct {
	Name    string
	Columns []Column
	// Key lists the positions of the primary-key columns, in key order.
	Key []int

	byName map[string]int
}

// NewSchema builds and validates a schema. keyCols name the primary-key
// columns.
func NewSchema(name string, cols []Column, keyCols ...string) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("storage: empty table name")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("storage: table %s has no columns", name)
	}
	s := &Schema{Name: name, Columns: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("storage: table %s column %d unnamed", name, i)
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("storage: table %s has duplicate column %q", name, c.Name)
		}
		s.byName[c.Name] = i
	}
	if len(keyCols) == 0 {
		return nil, fmt.Errorf("storage: table %s has no primary key", name)
	}
	for _, kc := range keyCols {
		idx, ok := s.byName[kc]
		if !ok {
			return nil, fmt.Errorf("storage: table %s key column %q not found", name, kc)
		}
		s.Key = append(s.Key, idx)
	}
	return s, nil
}

// ColIndex returns the position of the named column, or -1.
func (s *Schema) ColIndex(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// CheckRow verifies arity and column types of a row against the schema.
func (s *Schema) CheckRow(r Row) error {
	if len(r) != len(s.Columns) {
		return fmt.Errorf("storage: table %s: row arity %d, want %d", s.Name, len(r), len(s.Columns))
	}
	for i, v := range r {
		want := s.Columns[i].Type
		if v.T == want {
			continue
		}
		// Ints are accepted where floats are declared (implicit widening
		// matches SQL numeric literals).
		if want == TFloat && v.T == TInt {
			continue
		}
		return fmt.Errorf("storage: table %s column %s: value type %s, want %s",
			s.Name, s.Columns[i].Name, v.T, want)
	}
	return nil
}

// KeyOf extracts the primary-key string of a row.
func (s *Schema) KeyOf(r Row) string {
	vals := make([]Value, len(s.Key))
	for i, c := range s.Key {
		vals[i] = r[c]
	}
	return EncodeKey(vals...)
}
