package storage

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestValueAccessors(t *testing.T) {
	if I(42).Int() != 42 {
		t.Error("Int round trip")
	}
	if F(2.5).Float() != 2.5 {
		t.Error("Float round trip")
	}
	if S("x").Str() != "x" {
		t.Error("Str round trip")
	}
	// Int widens to float.
	if I(3).Float() != 3.0 {
		t.Error("Int widening")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	cases := []func(){
		func() { S("x").Int() },
		func() { S("x").Float() },
		func() { I(1).Str() },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{I(1), I(2), -1},
		{I(2), I(2), 0},
		{I(3), I(2), 1},
		{F(1.5), F(2.5), -1},
		{I(2), F(2.0), 0},
		{F(1.9), I(2), -1},
		{S("a"), S("b"), -1},
		{S("b"), S("b"), 0},
	}
	for _, c := range cases {
		got := Compare(c.a, c.b)
		norm := 0
		if got < 0 {
			norm = -1
		} else if got > 0 {
			norm = 1
		}
		if norm != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareIncomparablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("string vs int comparison did not panic")
		}
	}()
	Compare(S("a"), I(1))
}

func TestValueString(t *testing.T) {
	if I(-5).String() != "-5" {
		t.Error("int formatting")
	}
	if F(1.25).String() != "1.25" {
		t.Error("float formatting")
	}
	if S("hi").String() != "hi" {
		t.Error("string formatting")
	}
}

func TestEncodeKeyInjective(t *testing.T) {
	f := func(a, b int64) bool {
		if a == b {
			return true
		}
		return EncodeKey(I(a)) != EncodeKey(I(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Mixed-type composite keys never collide across types.
	if EncodeKey(I(1)) == EncodeKey(F(1)) {
		t.Error("int/float encodings collide")
	}
	if EncodeKey(S("1")) == EncodeKey(I(1)) {
		t.Error("string/int encodings collide")
	}
	// Composite keys are not ambiguous under concatenation.
	if EncodeKey(S("ab"), S("c")) == EncodeKey(S("a"), S("bc")) {
		t.Error("composite string keys ambiguous")
	}
}

func TestEncodeKeyOrderPreservingInts(t *testing.T) {
	vals := []int64{-1 << 40, -77, -1, 0, 1, 99, 1 << 40}
	keys := make([]string, len(vals))
	for i, v := range vals {
		keys[i] = EncodeKey(I(v))
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("int key encoding not order-preserving: %q", keys)
	}
}

func TestEncodeKeyOrderPreservingFloats(t *testing.T) {
	vals := []float64{-1e10, -2.5, -0.1, 0, 0.1, 2.5, 1e10}
	keys := make([]string, len(vals))
	for i, v := range vals {
		keys[i] = EncodeKey(F(v))
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("float key encoding not order-preserving: %q", keys)
	}
}

func TestRowCloneAndProject(t *testing.T) {
	r := Row{I(1), S("x"), F(2.5)}
	c := r.Clone()
	c[0] = I(9)
	if r[0].Int() != 1 {
		t.Error("Clone aliases")
	}
	p := r.Project([]int{2, 0})
	if len(p) != 2 || p[0].Float() != 2.5 || p[1].Int() != 1 {
		t.Errorf("Project = %v", p)
	}
	if got := r.String(); got != "(1, x, 2.5)" {
		t.Errorf("Row.String = %q", got)
	}
}
