package storage

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"
)

func TestValueGobRoundTrip(t *testing.T) {
	vals := []Value{
		I(0), I(-1), I(42), I(math.MaxInt64), I(math.MinInt64),
		F(0), F(-1.5), F(0.1), F(math.Pi), F(math.SmallestNonzeroFloat64),
		F(math.MaxFloat64), F(math.Inf(1)), F(math.Inf(-1)),
		S(""), S("hello"), S("with \x00 byte and unicode ✓"),
	}
	for _, v := range vals {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(v); err != nil {
			t.Fatalf("encode %v: %v", v, err)
		}
		var got Value
		if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if got.T != v.T || Compare(got, v) != 0 {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestValueGobNaN(t *testing.T) {
	// NaN != NaN, so check the bit pattern survives instead of Compare.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(F(math.NaN())); err != nil {
		t.Fatal(err)
	}
	var got Value
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.T != TFloat || !math.IsNaN(got.Float()) {
		t.Errorf("NaN round trip produced %v", got)
	}
}

func TestRowGobRoundTrip(t *testing.T) {
	row := Row{I(7), F(2.25), S("x")}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(row); err != nil {
		t.Fatal(err)
	}
	var got Row
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(row) {
		t.Fatalf("row length %d, want %d", len(got), len(row))
	}
	for i := range row {
		if !Equal(got[i], row[i]) {
			t.Errorf("col %d: %v != %v", i, got[i], row[i])
		}
	}
}

func TestValueGobDecodeErrors(t *testing.T) {
	var v Value
	if err := v.GobDecode(nil); err == nil {
		t.Error("empty payload accepted")
	}
	if err := v.GobDecode([]byte("z123")); err == nil {
		t.Error("unknown tag accepted")
	}
	if err := v.GobDecode([]byte("inot-a-number")); err == nil {
		t.Error("bad int payload accepted")
	}
	if err := v.GobDecode([]byte("fnot-a-number")); err == nil {
		t.Error("bad float payload accepted")
	}
}
