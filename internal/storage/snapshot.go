package storage

import (
	"fmt"
	"io"
	"sort"

	"encoding/gob"
)

// Snapshot support: a DB can be serialized to a stream and restored
// later, preserving schemas, rows, and secondary index definitions
// (indexes are rebuilt on load, not stored). Work-unit counters are not
// part of a snapshot. The format is encoding/gob over explicit DTOs, so
// internal representation changes never break old snapshots silently —
// the DTO types below are the compatibility surface.

// snapshotVersion guards against reading snapshots from incompatible
// layouts.
const snapshotVersion = 1

type valueDTO struct {
	T Type
	I int64
	F float64
	S string
}

type indexDTO struct {
	Name string
	Kind IndexKind
	Cols []string
}

type tableDTO struct {
	Name    string
	Columns []Column
	KeyCols []string
	Rows    [][]valueDTO
	Indexes []indexDTO
}

type dbDTO struct {
	Version int
	Tables  []tableDTO
}

func toDTO(v Value) valueDTO { return valueDTO{T: v.T, I: v.i, F: v.f, S: v.s} }

func fromDTO(d valueDTO) Value { return Value{T: d.T, i: d.I, f: d.F, s: d.S} }

// WriteSnapshot serializes the database to w.
func (db *DB) WriteSnapshot(w io.Writer) error {
	dto := dbDTO{Version: snapshotVersion}
	for _, name := range db.TableNames() {
		t := db.tables[name]
		schema := t.Schema()
		td := tableDTO{Name: name, Columns: schema.Columns}
		for _, k := range schema.Key {
			td.KeyCols = append(td.KeyCols, schema.Columns[k].Name)
		}
		t.Scan(func(r Row) bool {
			row := make([]valueDTO, len(r))
			for i, v := range r {
				row[i] = toDTO(v)
			}
			td.Rows = append(td.Rows, row)
			return true
		})
		for _, ix := range t.Indexes() {
			cols := make([]string, len(ix.Cols))
			for i, c := range ix.Cols {
				cols[i] = schema.Columns[c].Name
			}
			td.Indexes = append(td.Indexes, indexDTO{Name: ix.Name, Kind: ix.Kind, Cols: cols})
		}
		dto.Tables = append(dto.Tables, td)
	}
	return gob.NewEncoder(w).Encode(dto)
}

// ReadSnapshot restores a database from a snapshot stream.
func ReadSnapshot(r io.Reader) (*DB, error) {
	var dto dbDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("storage: decoding snapshot: %w", err)
	}
	if dto.Version != snapshotVersion {
		return nil, fmt.Errorf("storage: snapshot version %d, want %d", dto.Version, snapshotVersion)
	}
	db := NewDB()
	for _, td := range dto.Tables {
		schema, err := NewSchema(td.Name, td.Columns, td.KeyCols...)
		if err != nil {
			return nil, fmt.Errorf("storage: snapshot table %s: %w", td.Name, err)
		}
		tbl, err := db.CreateTable(schema)
		if err != nil {
			return nil, err
		}
		for _, row := range td.Rows {
			vals := make(Row, len(row))
			for i, d := range row {
				vals[i] = fromDTO(d)
			}
			if err := tbl.Insert(vals); err != nil {
				return nil, fmt.Errorf("storage: snapshot row in %s: %w", td.Name, err)
			}
		}
		for _, ix := range td.Indexes {
			if err := tbl.CreateIndex(ix.Name, ix.Kind, ix.Cols...); err != nil {
				return nil, fmt.Errorf("storage: snapshot index %s: %w", ix.Name, err)
			}
		}
	}
	// Restoring charged insert/index counters; a fresh DB starts clean.
	db.stats = Stats{}
	return db, nil
}

// Snapshot deltas: the differential counterpart of WriteSnapshot /
// ReadSnapshot. A delta captures only the rows behind a caller-provided
// dirty-key set, so a database that changes a handful of rows between
// checkpoints serializes a handful of rows instead of every table. The
// DTOs below are the delta format's compatibility surface, mirroring the
// full-snapshot DTOs.

// snapshotDeltaVersion guards against reading snapshot deltas from
// incompatible layouts.
const snapshotDeltaVersion = 1

// KeySet is one table's dirty keys: encoded primary key -> the key
// values. Over-marking is harmless — a dirty key whose row is unchanged
// round-trips as an identical upsert.
type KeySet map[string][]Value

type tableDeltaDTO struct {
	Name string
	// Upserts carries the full current row of every dirty key present in
	// the table; Deletes carries the key values of dirty keys absent from
	// it.
	Upserts [][]valueDTO
	Deletes [][]valueDTO
}

type dbDeltaDTO struct {
	Version int
	Tables  []tableDeltaDTO
}

// WriteSnapshotDelta serializes the state of the dirty keys to w: a
// dirty key present in its table becomes an upsert carrying the full
// current row, an absent one becomes a delete. Applying the delta to any
// database that agrees with this one on every non-dirty key (via
// ApplySnapshotDelta) reproduces this database's logical content.
// Tables and keys are visited in sorted order, so identical (db, dirty)
// pairs produce identical bytes. Index definitions are not part of a
// delta — they belong to the base snapshot.
func (db *DB) WriteSnapshotDelta(w io.Writer, dirty map[string]KeySet) error {
	dto := dbDeltaDTO{Version: snapshotDeltaVersion}
	names := make([]string, 0, len(dirty))
	for name, ks := range dirty {
		if len(ks) > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		t, ok := db.tables[name]
		if !ok {
			return fmt.Errorf("storage: snapshot delta for unknown table %q", name)
		}
		ks := dirty[name]
		keys := make([]string, 0, len(ks))
		for k := range ks {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		td := tableDeltaDTO{Name: name}
		for _, k := range keys {
			// Resolve through the primary-key index directly: a checkpoint
			// must not charge probe work to the shared maintenance counters.
			if slot, found := t.pk[k]; found {
				row := t.rows[slot]
				enc := make([]valueDTO, len(row))
				for i, v := range row {
					enc[i] = toDTO(v)
				}
				td.Upserts = append(td.Upserts, enc)
			} else {
				keyVals := ks[k]
				enc := make([]valueDTO, len(keyVals))
				for i, v := range keyVals {
					enc[i] = toDTO(v)
				}
				td.Deletes = append(td.Deletes, enc)
			}
		}
		dto.Tables = append(dto.Tables, td)
	}
	return gob.NewEncoder(w).Encode(dto)
}

// ApplySnapshotDelta applies a delta stream to db in place: upserts
// update the existing row or insert a new one, deletes remove the row
// when present (deleting an already-absent key is a no-op — the writer
// may have over-marked a key that never reached this base). Every table
// named by the delta must exist in db.
func ApplySnapshotDelta(db *DB, r io.Reader) error {
	var dto dbDeltaDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return fmt.Errorf("storage: decoding snapshot delta: %w", err)
	}
	if dto.Version != snapshotDeltaVersion {
		return fmt.Errorf("storage: snapshot delta version %d, want %d", dto.Version, snapshotDeltaVersion)
	}
	for _, td := range dto.Tables {
		tbl, err := db.Table(td.Name)
		if err != nil {
			return fmt.Errorf("storage: snapshot delta: %w", err)
		}
		key := tbl.Schema().Key
		for _, enc := range td.Upserts {
			row := make(Row, len(enc))
			for i, d := range enc {
				row[i] = fromDTO(d)
			}
			keyVals := row.Project(key)
			if _, found := tbl.Get(keyVals...); found {
				if _, err := tbl.Update(keyVals, row); err != nil {
					return fmt.Errorf("storage: snapshot delta upsert in %s: %w", td.Name, err)
				}
			} else if err := tbl.Insert(row); err != nil {
				return fmt.Errorf("storage: snapshot delta upsert in %s: %w", td.Name, err)
			}
		}
		for _, enc := range td.Deletes {
			keyVals := make([]Value, len(enc))
			for i, d := range enc {
				keyVals[i] = fromDTO(d)
			}
			if _, found := tbl.Get(keyVals...); found {
				if _, err := tbl.Delete(keyVals...); err != nil {
					return fmt.Errorf("storage: snapshot delta delete in %s: %w", td.Name, err)
				}
			}
		}
	}
	return nil
}
