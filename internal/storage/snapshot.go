package storage

import (
	"fmt"
	"io"

	"encoding/gob"
)

// Snapshot support: a DB can be serialized to a stream and restored
// later, preserving schemas, rows, and secondary index definitions
// (indexes are rebuilt on load, not stored). Work-unit counters are not
// part of a snapshot. The format is encoding/gob over explicit DTOs, so
// internal representation changes never break old snapshots silently —
// the DTO types below are the compatibility surface.

// snapshotVersion guards against reading snapshots from incompatible
// layouts.
const snapshotVersion = 1

type valueDTO struct {
	T Type
	I int64
	F float64
	S string
}

type indexDTO struct {
	Name string
	Kind IndexKind
	Cols []string
}

type tableDTO struct {
	Name    string
	Columns []Column
	KeyCols []string
	Rows    [][]valueDTO
	Indexes []indexDTO
}

type dbDTO struct {
	Version int
	Tables  []tableDTO
}

func toDTO(v Value) valueDTO { return valueDTO{T: v.T, I: v.i, F: v.f, S: v.s} }

func fromDTO(d valueDTO) Value { return Value{T: d.T, i: d.I, f: d.F, s: d.S} }

// WriteSnapshot serializes the database to w.
func (db *DB) WriteSnapshot(w io.Writer) error {
	dto := dbDTO{Version: snapshotVersion}
	for _, name := range db.TableNames() {
		t := db.tables[name]
		schema := t.Schema()
		td := tableDTO{Name: name, Columns: schema.Columns}
		for _, k := range schema.Key {
			td.KeyCols = append(td.KeyCols, schema.Columns[k].Name)
		}
		t.Scan(func(r Row) bool {
			row := make([]valueDTO, len(r))
			for i, v := range r {
				row[i] = toDTO(v)
			}
			td.Rows = append(td.Rows, row)
			return true
		})
		for _, ix := range t.Indexes() {
			cols := make([]string, len(ix.Cols))
			for i, c := range ix.Cols {
				cols[i] = schema.Columns[c].Name
			}
			td.Indexes = append(td.Indexes, indexDTO{Name: ix.Name, Kind: ix.Kind, Cols: cols})
		}
		dto.Tables = append(dto.Tables, td)
	}
	return gob.NewEncoder(w).Encode(dto)
}

// ReadSnapshot restores a database from a snapshot stream.
func ReadSnapshot(r io.Reader) (*DB, error) {
	var dto dbDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("storage: decoding snapshot: %w", err)
	}
	if dto.Version != snapshotVersion {
		return nil, fmt.Errorf("storage: snapshot version %d, want %d", dto.Version, snapshotVersion)
	}
	db := NewDB()
	for _, td := range dto.Tables {
		schema, err := NewSchema(td.Name, td.Columns, td.KeyCols...)
		if err != nil {
			return nil, fmt.Errorf("storage: snapshot table %s: %w", td.Name, err)
		}
		tbl, err := db.CreateTable(schema)
		if err != nil {
			return nil, err
		}
		for _, row := range td.Rows {
			vals := make(Row, len(row))
			for i, d := range row {
				vals[i] = fromDTO(d)
			}
			if err := tbl.Insert(vals); err != nil {
				return nil, fmt.Errorf("storage: snapshot row in %s: %w", td.Name, err)
			}
		}
		for _, ix := range td.Indexes {
			if err := tbl.CreateIndex(ix.Name, ix.Kind, ix.Cols...); err != nil {
				return nil, fmt.Errorf("storage: snapshot index %s: %w", ix.Name, err)
			}
		}
	}
	// Restoring charged insert/index counters; a fresh DB starts clean.
	db.stats = Stats{}
	return db, nil
}
