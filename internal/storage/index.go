package storage

import (
	"fmt"
	"sort"

	"abivm/internal/btree"
)

// IndexKind selects the physical structure of a secondary index.
type IndexKind uint8

// Index kinds.
const (
	// HashIndex supports equality lookups in O(1).
	HashIndex IndexKind = iota
	// OrderedIndex supports equality and range lookups via a B-tree over
	// the (single) indexed column.
	OrderedIndex
)

// Index is a secondary index over one or more columns of a table. Hash
// indexes map an encoded composite key to the set of row slots holding
// it; ordered indexes keep a B-tree from the indexed value to the slot
// set (single-column only).
type Index struct {
	Name string
	Kind IndexKind
	Cols []int // column positions, in index order

	hash map[string][]int
	tree *btree.Map[Value, map[int]struct{}]
}

func newIndex(name string, kind IndexKind, cols []int) (*Index, error) {
	idx := &Index{Name: name, Kind: kind, Cols: cols}
	switch kind {
	case HashIndex:
		idx.hash = make(map[string][]int)
	case OrderedIndex:
		if len(cols) != 1 {
			return nil, fmt.Errorf("storage: ordered index %s must cover exactly one column", name)
		}
		idx.tree = btree.New[Value, map[int]struct{}](Compare)
	default:
		return nil, fmt.Errorf("storage: unknown index kind %d", kind)
	}
	return idx, nil
}

// keyOf extracts the index key values from a row.
func (ix *Index) keyOf(r Row) []Value {
	vals := make([]Value, len(ix.Cols))
	for i, c := range ix.Cols {
		vals[i] = r[c]
	}
	return vals
}

func (ix *Index) insert(r Row, slot int) {
	switch ix.Kind {
	case HashIndex:
		k := EncodeKey(ix.keyOf(r)...)
		ix.hash[k] = append(ix.hash[k], slot)
	case OrderedIndex:
		v := r[ix.Cols[0]]
		set, ok := ix.tree.Get(v)
		if !ok {
			set = make(map[int]struct{})
			ix.tree.Set(v, set)
		}
		set[slot] = struct{}{}
	}
}

func (ix *Index) remove(r Row, slot int) {
	switch ix.Kind {
	case HashIndex:
		k := EncodeKey(ix.keyOf(r)...)
		slots := ix.hash[k]
		for i, s := range slots {
			if s == slot {
				slots[i] = slots[len(slots)-1]
				slots = slots[:len(slots)-1]
				break
			}
		}
		if len(slots) == 0 {
			delete(ix.hash, k)
		} else {
			ix.hash[k] = slots
		}
	case OrderedIndex:
		v := r[ix.Cols[0]]
		if set, ok := ix.tree.Get(v); ok {
			delete(set, slot)
			if len(set) == 0 {
				ix.tree.Delete(v)
			}
		}
	}
}

// Bound is one end of an index range; a nil *Bound means unbounded.
type Bound struct {
	Value     Value
	Exclusive bool
}

// ascendRange visits (value, slot set) pairs of an ordered index within
// [lo, hi] (each bound optional, exclusivity per bound) in ascending
// order until fn returns false. It panics on hash indexes.
func (ix *Index) ascendRange(lo, hi *Bound, fn func(v Value, slots map[int]struct{}) bool) {
	if ix.Kind != OrderedIndex {
		panic("storage: range scan on a non-ordered index")
	}
	visit := func(v Value, slots map[int]struct{}) bool {
		if lo != nil && lo.Exclusive && Compare(v, lo.Value) == 0 {
			return true
		}
		if hi != nil {
			c := Compare(v, hi.Value)
			if c > 0 || (c == 0 && hi.Exclusive) {
				return false
			}
		}
		return fn(v, slots)
	}
	if lo == nil {
		ix.tree.Ascend(visit)
		return
	}
	ix.tree.AscendFrom(lo.Value, visit)
}

// lookupEq returns the row slots whose index key equals vals.
func (ix *Index) lookupEq(vals []Value) []int {
	switch ix.Kind {
	case HashIndex:
		return ix.hash[EncodeKey(vals...)]
	case OrderedIndex:
		set, ok := ix.tree.Get(vals[0])
		if !ok {
			return nil
		}
		// The slot set is a map; return slots in a stable order so
		// lookup results are replay-deterministic (the hash path already
		// is: it returns slots in insertion order).
		out := make([]int, 0, len(set))
		for s := range set {
			out = append(out, s)
		}
		sort.Ints(out)
		return out
	}
	return nil
}
