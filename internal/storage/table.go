package storage

import (
	"errors"
	"fmt"
	"sort"
)

// Common table errors.
var (
	ErrDuplicateKey = errors.New("storage: duplicate primary key")
	ErrNotFound     = errors.New("storage: row not found")
)

// Table is a heap of rows with a primary-key hash index and optional
// secondary indexes. Row slots are stable for the lifetime of a row;
// deleted slots are tombstoned and reused by later inserts.
type Table struct {
	schema  *Schema
	stats   *Stats
	rows    []Row // nil entries are tombstones
	free    []int // reusable tombstoned slots
	pk      map[string]int
	indexes map[string]*Index
	live    int
}

// NewTable creates an empty table; stats may be shared across tables.
func NewTable(schema *Schema, stats *Stats) *Table {
	if stats == nil {
		stats = &Stats{}
	}
	return &Table{
		schema:  schema,
		stats:   stats,
		pk:      make(map[string]int),
		indexes: make(map[string]*Index),
	}
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// Stats returns the shared work-unit counters.
func (t *Table) Stats() *Stats { return t.stats }

// Len returns the number of live rows.
func (t *Table) Len() int { return t.live }

// CreateIndex adds a secondary index over the named columns and
// backfills it from existing rows.
func (t *Table) CreateIndex(name string, kind IndexKind, cols ...string) error {
	if _, dup := t.indexes[name]; dup {
		return fmt.Errorf("storage: table %s already has index %q", t.schema.Name, name)
	}
	positions := make([]int, len(cols))
	for i, c := range cols {
		p := t.schema.ColIndex(c)
		if p < 0 {
			return fmt.Errorf("storage: table %s has no column %q", t.schema.Name, c)
		}
		positions[i] = p
	}
	idx, err := newIndex(name, kind, positions)
	if err != nil {
		return err
	}
	for slot, r := range t.rows {
		if r != nil {
			idx.insert(r, slot)
			t.stats.IndexWrites++
		}
	}
	t.indexes[name] = idx
	return nil
}

// Indexes lists the table's secondary indexes sorted by name; the IVM
// engine uses it to clone index definitions onto replica tables.
func (t *Table) Indexes() []*Index {
	names := make([]string, 0, len(t.indexes))
	for name := range t.indexes {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*Index, len(names))
	for i, name := range names {
		out[i] = t.indexes[name]
	}
	return out
}

// IndexOn returns an index covering exactly the given columns (in order),
// or nil. The planner uses it to pick index-nested-loop joins.
func (t *Table) IndexOn(cols ...string) *Index {
	positions := make([]int, len(cols))
	for i, c := range cols {
		p := t.schema.ColIndex(c)
		if p < 0 {
			return nil
		}
		positions[i] = p
	}
	// Deterministic choice: smallest index name wins among matches.
	names := make([]string, 0, len(t.indexes))
	for name := range t.indexes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ix := t.indexes[name]
		if len(ix.Cols) != len(positions) {
			continue
		}
		match := true
		for i := range positions {
			if ix.Cols[i] != positions[i] {
				match = false
				break
			}
		}
		if match {
			return ix
		}
	}
	return nil
}

// Insert adds a row; the primary key must be new.
func (t *Table) Insert(r Row) error {
	if err := t.schema.CheckRow(r); err != nil {
		return err
	}
	key := t.schema.KeyOf(r)
	if _, dup := t.pk[key]; dup {
		return fmt.Errorf("%w: table %s key %v", ErrDuplicateKey, t.schema.Name, r.Project(t.schema.Key))
	}
	r = r.Clone()
	var slot int
	if n := len(t.free); n > 0 {
		slot = t.free[n-1]
		t.free = t.free[:n-1]
		t.rows[slot] = r
	} else {
		slot = len(t.rows)
		t.rows = append(t.rows, r)
	}
	t.pk[key] = slot
	for _, ix := range t.indexes {
		ix.insert(r, slot)
		t.stats.IndexWrites++
	}
	t.live++
	t.stats.RowsInserted++
	return nil
}

// Get returns the row with the given primary-key values.
func (t *Table) Get(keyVals ...Value) (Row, bool) {
	t.stats.IndexProbes++
	slot, ok := t.pk[EncodeKey(keyVals...)]
	if !ok {
		return nil, false
	}
	t.stats.IndexEntries++
	return t.rows[slot], true
}

// Delete removes the row with the given primary key and returns it.
func (t *Table) Delete(keyVals ...Value) (Row, error) {
	key := EncodeKey(keyVals...)
	t.stats.IndexProbes++
	slot, ok := t.pk[key]
	if !ok {
		return nil, fmt.Errorf("%w: table %s key %v", ErrNotFound, t.schema.Name, keyVals)
	}
	r := t.rows[slot]
	for _, ix := range t.indexes {
		ix.remove(r, slot)
		t.stats.IndexWrites++
	}
	delete(t.pk, key)
	t.rows[slot] = nil
	t.free = append(t.free, slot)
	t.live--
	t.stats.RowsDeleted++
	return r, nil
}

// Update replaces the row identified by its primary-key values with
// newRow (which may change the key) and returns the old row.
func (t *Table) Update(keyVals []Value, newRow Row) (Row, error) {
	if err := t.schema.CheckRow(newRow); err != nil {
		return nil, err
	}
	oldKey := EncodeKey(keyVals...)
	t.stats.IndexProbes++
	slot, ok := t.pk[oldKey]
	if !ok {
		return nil, fmt.Errorf("%w: table %s key %v", ErrNotFound, t.schema.Name, keyVals)
	}
	old := t.rows[slot]
	newKey := t.schema.KeyOf(newRow)
	if newKey != oldKey {
		if _, dup := t.pk[newKey]; dup {
			return nil, fmt.Errorf("%w: table %s key %v", ErrDuplicateKey, t.schema.Name, newRow.Project(t.schema.Key))
		}
		delete(t.pk, oldKey)
		t.pk[newKey] = slot
	}
	newRow = newRow.Clone()
	for _, ix := range t.indexes {
		ix.remove(old, slot)
		ix.insert(newRow, slot)
		t.stats.IndexWrites += 2
	}
	t.rows[slot] = newRow
	t.stats.RowsUpdated++
	return old, nil
}

// Scan visits every live row in slot order until fn returns false. Each
// visited row counts as one scanned work unit.
func (t *Table) Scan(fn func(r Row) bool) {
	for _, r := range t.rows {
		if r == nil {
			continue
		}
		t.stats.RowsScanned++
		if !fn(r) {
			return
		}
	}
}

// LookupIndex returns the rows whose index key equals vals, via the named
// index.
func (t *Table) LookupIndex(name string, vals ...Value) ([]Row, error) {
	ix, ok := t.indexes[name]
	if !ok {
		return nil, fmt.Errorf("storage: table %s has no index %q", t.schema.Name, name)
	}
	return t.lookupVia(ix, vals), nil
}

// lookupVia resolves an equality lookup through an index, accounting work.
func (t *Table) lookupVia(ix *Index, vals []Value) []Row {
	t.stats.IndexProbes++
	slots := ix.lookupEq(vals)
	out := make([]Row, 0, len(slots))
	for _, s := range slots {
		t.stats.IndexEntries++
		out = append(out, t.rows[s])
	}
	return out
}

// LookupVia is the exported form of lookupVia for planner-chosen indexes.
func (t *Table) LookupVia(ix *Index, vals ...Value) []Row {
	return t.lookupVia(ix, vals)
}

// ScanRangeVia visits rows whose ordered-index key lies within [lo, hi]
// (either bound may be nil; exclusivity per bound) in ascending key
// order until fn returns false. Each visited row counts as one index
// entry read; the range probe counts as one index probe.
func (t *Table) ScanRangeVia(ix *Index, lo, hi *Bound, fn func(r Row) bool) {
	t.stats.IndexProbes++
	ix.ascendRange(lo, hi, func(_ Value, slots map[int]struct{}) bool {
		// Slot sets are maps; visit the rows of one index key in slot
		// order so the scan order is replay-deterministic.
		ordered := make([]int, 0, len(slots))
		for slot := range slots {
			ordered = append(ordered, slot)
		}
		sort.Ints(ordered)
		for _, slot := range ordered {
			t.stats.IndexEntries++
			if !fn(t.rows[slot]) {
				return false
			}
		}
		return true
	})
}

// RowAt returns the row in the given slot (nil for tombstones); used by
// index range scans in the exec package.
func (t *Table) RowAt(slot int) Row { return t.rows[slot] }

// Cursor iterates a table's live rows in slot order, counting scan work.
type Cursor struct {
	t    *Table
	slot int
}

// NewCursor returns a cursor positioned before the first row.
func (t *Table) NewCursor() *Cursor { return &Cursor{t: t} }

// Next returns the next live row, or false when exhausted. Each returned
// row counts as one scanned work unit.
func (c *Cursor) Next() (Row, bool) {
	for c.slot < len(c.t.rows) {
		r := c.t.rows[c.slot]
		c.slot++
		if r != nil {
			c.t.stats.RowsScanned++
			return r, true
		}
	}
	return nil, false
}

// Reset repositions the cursor before the first row.
func (c *Cursor) Reset() { c.slot = 0 }
