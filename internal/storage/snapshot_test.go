package storage

import (
	"bytes"
	"strings"
	"testing"
)

func snapshotDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	schema, err := NewSchema("items", []Column{
		{Name: "id", Type: TInt},
		{Name: "name", Type: TString},
		{Name: "price", Type: TFloat},
		{Name: "bucket", Type: TInt},
	}, "id")
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable(schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		row := Row{I(i), S("item"), F(float64(i) * 1.5), I(i % 7)}
		if err := tbl.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.CreateIndex("by_bucket", HashIndex, "bucket"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("by_price", OrderedIndex, "price"); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestSnapshotRoundTrip(t *testing.T) {
	db := snapshotDB(t)
	var buf bytes.Buffer
	if err := db.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig := db.MustTable("items")
	got := restored.MustTable("items")
	if got.Len() != orig.Len() {
		t.Fatalf("restored %d rows, want %d", got.Len(), orig.Len())
	}
	// Row-level equality through the PK.
	orig.Scan(func(r Row) bool {
		rr, ok := got.Get(r[0])
		if !ok {
			t.Fatalf("row %v missing after restore", r)
		}
		for i := range r {
			if !Equal(r[i], rr[i]) {
				t.Fatalf("row %v != %v", r, rr)
			}
		}
		return true
	})
	// Indexes were rebuilt and work.
	rows, err := got.LookupIndex("by_bucket", I(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 { // ids 3,10,...,94
		t.Fatalf("bucket lookup = %d rows", len(rows))
	}
	ord := got.IndexOn("price")
	if ord == nil || ord.Kind != OrderedIndex {
		t.Fatal("ordered index not restored")
	}
	count := 0
	got.ScanRangeVia(ord, &Bound{Value: F(10)}, &Bound{Value: F(20), Exclusive: true}, func(Row) bool {
		count++
		return true
	})
	if count != 7 { // prices 10.5, 12, 13.5, 15, 16.5, 18, 19.5
		t.Fatalf("range after restore = %d rows", count)
	}
	// Restored DB starts with clean counters.
	if restored.Stats().RowsInserted != 0 {
		t.Fatalf("restored stats not reset: %+v", restored.Stats())
	}
}

func TestSnapshotMultipleTables(t *testing.T) {
	db := snapshotDB(t)
	schema, _ := NewSchema("other", []Column{{Name: "k", Type: TInt}}, "k")
	tbl, err := db.CreateTable(schema)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(Row{I(1)}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	names := restored.TableNames()
	if len(names) != 2 || names[0] != "items" || names[1] != "other" {
		t.Fatalf("tables = %v", names)
	}
}

func TestReadSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader("not a snapshot")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSnapshotEmptyDB(t *testing.T) {
	var buf bytes.Buffer
	if err := NewDB().WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored.TableNames()) != 0 {
		t.Fatalf("tables = %v", restored.TableNames())
	}
}
