// Package storage implements the in-memory relational engine underneath
// the IVM substrate: typed values, schemas, heap tables with primary-key
// enforcement, hash and ordered secondary indexes, and work-unit
// accounting. The engine is single-writer: callers serialize access, as
// the maintenance loop of the paper does.
//
// Work units are the engine's deterministic cost currency. Every row
// examined, index probed, or tuple materialized bumps a counter in Stats;
// the costmodel package converts counters into the pseudo-millisecond
// cost functions that drive the maintenance algorithms. This mirrors the
// paper's methodology (cost functions "measured by experiments") while
// keeping every experiment machine-independent and reproducible.
package storage

import (
	"fmt"
	"math"
	"strconv"
)

// Type enumerates the value types the engine supports.
type Type uint8

// Supported value types.
const (
	TInt Type = iota
	TFloat
	TString
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TInt:
		return "INTEGER"
	case TFloat:
		return "FLOAT"
	case TString:
		return "TEXT"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Value is a typed scalar. The zero Value is the integer 0.
type Value struct {
	T Type
	i int64
	f float64
	s string
}

// I returns an integer value.
func I(v int64) Value { return Value{T: TInt, i: v} }

// F returns a float value.
func F(v float64) Value { return Value{T: TFloat, f: v} }

// S returns a string value.
func S(v string) Value { return Value{T: TString, s: v} }

// Int returns the integer payload; it panics on other types.
func (v Value) Int() int64 {
	if v.T != TInt {
		panic(fmt.Sprintf("storage: Int() on %s value", v.T))
	}
	return v.i
}

// Float returns the float payload, widening integers; it panics on
// strings.
func (v Value) Float() float64 {
	switch v.T {
	case TFloat:
		return v.f
	case TInt:
		return float64(v.i)
	}
	panic(fmt.Sprintf("storage: Float() on %s value", v.T))
}

// Str returns the string payload; it panics on other types.
func (v Value) Str() string {
	if v.T != TString {
		panic(fmt.Sprintf("storage: Str() on %s value", v.T))
	}
	return v.s
}

// numeric reports whether the value is an int or float.
func (v Value) numeric() bool { return v.T == TInt || v.T == TFloat }

// Compare orders two values: numerics compare by numeric value (ints and
// floats are mutually comparable), strings lexicographically. Comparing a
// string with a numeric panics: the planner type-checks expressions before
// execution, so a cross-type comparison is an engine bug.
func Compare(a, b Value) int {
	if a.numeric() && b.numeric() {
		if a.T == TInt && b.T == TInt {
			switch {
			case a.i < b.i:
				return -1
			case a.i > b.i:
				return 1
			}
			return 0
		}
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0
	}
	if a.T == TString && b.T == TString {
		switch {
		case a.s < b.s:
			return -1
		case a.s > b.s:
			return 1
		}
		return 0
	}
	panic(fmt.Sprintf("storage: incomparable values %s and %s", a.T, b.T))
}

// Equal reports whether two values compare equal.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// String renders the value for display.
func (v Value) String() string {
	switch v.T {
	case TInt:
		return strconv.FormatInt(v.i, 10)
	case TFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case TString:
		return v.s
	}
	return "?"
}

// appendKey appends an order-preserving, injective encoding of v to dst.
// It is used to build composite map keys for hash indexes and primary
// keys. A leading type tag keeps encodings of different types disjoint.
func appendKey(dst []byte, v Value) []byte {
	switch v.T {
	case TInt:
		dst = append(dst, 'i')
		u := uint64(v.i) ^ (1 << 63) // flip sign bit: preserves order
		for shift := 56; shift >= 0; shift -= 8 {
			dst = append(dst, byte(u>>uint(shift)))
		}
	case TFloat:
		dst = append(dst, 'f')
		bits := math.Float64bits(v.f)
		if bits&(1<<63) != 0 {
			bits = ^bits
		} else {
			bits |= 1 << 63
		}
		for shift := 56; shift >= 0; shift -= 8 {
			dst = append(dst, byte(bits>>uint(shift)))
		}
	case TString:
		dst = append(dst, 's')
		dst = append(dst, v.s...)
		dst = append(dst, 0)
	}
	return dst
}

// EncodeKey builds a composite key string from values. The encoding is
// injective, so it is safe as a map key; for single-type prefixes it is
// also order-preserving.
func EncodeKey(vals ...Value) string {
	var buf []byte
	for _, v := range vals {
		buf = appendKey(buf, v)
	}
	return string(buf)
}

// Row is one tuple. Rows are positional; the schema maps names to
// positions.
type Row []Value

// Clone returns an independent copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Project returns the sub-row at the given column positions.
func (r Row) Project(cols []int) Row {
	out := make(Row, len(cols))
	for i, c := range cols {
		out[i] = r[c]
	}
	return out
}

// String renders the row for display.
func (r Row) String() string {
	s := "("
	for i, v := range r {
		if i > 0 {
			s += ", "
		}
		s += v.String()
	}
	return s + ")"
}
