package storage

import (
	"fmt"
	"strconv"
)

// Gob support for Value: the type has unexported payload fields, so it
// implements gob.GobEncoder/GobDecoder explicitly. This makes Row (and
// any struct embedding Values, like ivm's modification records) directly
// encodable — the checkpoint format of the recovery subsystem relies on
// it. The encoding is a one-byte type tag followed by a textual payload;
// floats use hexadecimal notation, which round-trips exactly.

// GobEncode implements gob.GobEncoder.
func (v Value) GobEncode() ([]byte, error) {
	switch v.T {
	case TInt:
		return strconv.AppendInt([]byte{'i'}, v.i, 10), nil
	case TFloat:
		return strconv.AppendFloat([]byte{'f'}, v.f, 'x', -1, 64), nil
	case TString:
		return append([]byte{'s'}, v.s...), nil
	}
	return nil, fmt.Errorf("storage: gob-encoding value of unknown type %d", uint8(v.T))
}

// GobDecode implements gob.GobDecoder.
func (v *Value) GobDecode(data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("storage: gob-decoding empty value payload")
	}
	tag, payload := data[0], string(data[1:])
	switch tag {
	case 'i':
		i, err := strconv.ParseInt(payload, 10, 64)
		if err != nil {
			return fmt.Errorf("storage: gob-decoding int value: %w", err)
		}
		*v = I(i)
	case 'f':
		f, err := strconv.ParseFloat(payload, 64)
		if err != nil {
			return fmt.Errorf("storage: gob-decoding float value: %w", err)
		}
		*v = F(f)
	case 's':
		*v = S(payload)
	default:
		return fmt.Errorf("storage: gob-decoding value with unknown tag %q", tag)
	}
	return nil
}
