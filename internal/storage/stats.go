package storage

// Stats counts the engine's work units. Every operator and table method
// bumps these counters; the costmodel package converts them into
// pseudo-millisecond cost functions. Counting instead of timing makes
// every experiment deterministic and machine-independent while preserving
// the relative cost structure the paper's measurements exhibit (index
// probes are cheap, scans are proportional to table size, batch setup has
// a fixed component).
type Stats struct {
	RowsScanned   uint64 // rows examined by sequential scans
	IndexProbes   uint64 // index lookups issued
	IndexEntries  uint64 // index entries (matching rows) read
	RowsInserted  uint64
	RowsDeleted   uint64
	RowsUpdated   uint64
	IndexWrites   uint64 // secondary-index maintenance entries touched
	HashBuildRows uint64 // rows inserted into transient hash tables
	HashProbeRows uint64 // probes against transient hash tables
	RowsEmitted   uint64 // rows produced by operators
	AggUpdates    uint64 // aggregate-state updates
	BatchSetups   uint64 // per-batch fixed setup events (plan prep, hash builds)
	RowsMaterial  uint64 // rows copied into materialized state (views, replicas)
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.RowsScanned += other.RowsScanned
	s.IndexProbes += other.IndexProbes
	s.IndexEntries += other.IndexEntries
	s.RowsInserted += other.RowsInserted
	s.RowsDeleted += other.RowsDeleted
	s.RowsUpdated += other.RowsUpdated
	s.IndexWrites += other.IndexWrites
	s.HashBuildRows += other.HashBuildRows
	s.HashProbeRows += other.HashProbeRows
	s.RowsEmitted += other.RowsEmitted
	s.AggUpdates += other.AggUpdates
	s.BatchSetups += other.BatchSetups
	s.RowsMaterial += other.RowsMaterial
}

// Sub returns s - other component-wise; used to delta two snapshots.
func (s Stats) Sub(other Stats) Stats {
	return Stats{
		RowsScanned:   s.RowsScanned - other.RowsScanned,
		IndexProbes:   s.IndexProbes - other.IndexProbes,
		IndexEntries:  s.IndexEntries - other.IndexEntries,
		RowsInserted:  s.RowsInserted - other.RowsInserted,
		RowsDeleted:   s.RowsDeleted - other.RowsDeleted,
		RowsUpdated:   s.RowsUpdated - other.RowsUpdated,
		IndexWrites:   s.IndexWrites - other.IndexWrites,
		HashBuildRows: s.HashBuildRows - other.HashBuildRows,
		HashProbeRows: s.HashProbeRows - other.HashProbeRows,
		RowsEmitted:   s.RowsEmitted - other.RowsEmitted,
		AggUpdates:    s.AggUpdates - other.AggUpdates,
		BatchSetups:   s.BatchSetups - other.BatchSetups,
		RowsMaterial:  s.RowsMaterial - other.RowsMaterial,
	}
}

// Weights converts work units into pseudo-milliseconds. The defaults are
// loosely calibrated to a 2005-era commercial DBMS on the paper's 2GB
// Linux server: an index probe costs a few microseconds of CPU plus
// amortized cache misses, a scanned row is cheaper per row but scans touch
// every row, and each batch pays a fixed setup (statement preparation,
// hash-table construction).
type Weights struct {
	RowScanned  float64
	IndexProbe  float64
	IndexEntry  float64
	RowWrite    float64 // insert/delete/update on a heap row
	IndexWrite  float64
	HashBuild   float64
	HashProbe   float64
	RowEmit     float64
	AggUpdate   float64
	BatchSetup  float64
	RowMaterial float64
}

// DefaultWeights returns the standard pseudo-millisecond weights.
func DefaultWeights() Weights {
	return Weights{
		RowScanned:  0.0005,
		IndexProbe:  0.002,
		IndexEntry:  0.0008,
		RowWrite:    0.003,
		IndexWrite:  0.002,
		HashBuild:   0.001,
		HashProbe:   0.0008,
		RowEmit:     0.0005,
		AggUpdate:   0.002,
		BatchSetup:  2.5,
		RowMaterial: 0.001,
	}
}

// Cost converts a Stats delta into pseudo-milliseconds under w.
func (w Weights) Cost(s Stats) float64 {
	return w.RowScanned*float64(s.RowsScanned) +
		w.IndexProbe*float64(s.IndexProbes) +
		w.IndexEntry*float64(s.IndexEntries) +
		w.RowWrite*float64(s.RowsInserted+s.RowsDeleted+s.RowsUpdated) +
		w.IndexWrite*float64(s.IndexWrites) +
		w.HashBuild*float64(s.HashBuildRows) +
		w.HashProbe*float64(s.HashProbeRows) +
		w.RowEmit*float64(s.RowsEmitted) +
		w.AggUpdate*float64(s.AggUpdates) +
		w.BatchSetup*float64(s.BatchSetups) +
		w.RowMaterial*float64(s.RowsMaterial)
}
