package storage

import (
	"math/rand"
	"sort"
	"testing"
)

func rangeTable(t *testing.T) *Table {
	t.Helper()
	schema, err := NewSchema("t", []Column{
		{Name: "k", Type: TInt},
		{Name: "v", Type: TFloat},
	}, "k")
	if err != nil {
		t.Fatal(err)
	}
	tbl := NewTable(schema, nil)
	if err := tbl.CreateIndex("v_ord", OrderedIndex, "v"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		// Values 0, 0.5, 1.0, ... with duplicates every 10.
		if err := tbl.Insert(Row{I(int64(i)), F(float64(i%10) / 2)}); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func collectRange(tbl *Table, lo, hi *Bound) []Row {
	ix := tbl.IndexOn("v")
	var out []Row
	tbl.ScanRangeVia(ix, lo, hi, func(r Row) bool {
		out = append(out, r)
		return true
	})
	return out
}

func TestScanRangeViaBounds(t *testing.T) {
	tbl := rangeTable(t)
	cases := []struct {
		name   string
		lo, hi *Bound
		want   int // matching rows
	}{
		{"unbounded", nil, nil, 50},
		{"lo-inclusive", &Bound{Value: F(2)}, nil, 30},                            // v in {2,2.5,3,3.5,4,4.5}: 6 values x 5
		{"lo-exclusive", &Bound{Value: F(2), Exclusive: true}, nil, 25},           // drops v=2
		{"hi-inclusive", nil, &Bound{Value: F(1)}, 15},                            // v in {0,0.5,1}
		{"hi-exclusive", nil, &Bound{Value: F(1), Exclusive: true}, 10},           // v in {0,0.5}
		{"window", &Bound{Value: F(1)}, &Bound{Value: F(2), Exclusive: true}, 10}, // {1,1.5}
		{"point", &Bound{Value: F(3)}, &Bound{Value: F(3)}, 5},
		{"empty", &Bound{Value: F(100)}, nil, 0},
	}
	for _, c := range cases {
		got := collectRange(tbl, c.lo, c.hi)
		if len(got) != c.want {
			t.Errorf("%s: %d rows, want %d", c.name, len(got), c.want)
		}
	}
}

func TestScanRangeViaAscendingOrder(t *testing.T) {
	tbl := rangeTable(t)
	rows := collectRange(tbl, nil, nil)
	for i := 1; i < len(rows); i++ {
		if Compare(rows[i-1][1], rows[i][1]) > 0 {
			t.Fatalf("rows not in ascending key order at %d", i)
		}
	}
}

func TestScanRangeViaEarlyStop(t *testing.T) {
	tbl := rangeTable(t)
	ix := tbl.IndexOn("v")
	count := 0
	tbl.ScanRangeVia(ix, nil, nil, func(Row) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("visited %d rows, want 7", count)
	}
}

func TestScanRangeViaTracksMutations(t *testing.T) {
	tbl := rangeTable(t)
	// Delete all rows with v == 0 (keys 0, 10, 20, 30, 40).
	for _, k := range []int64{0, 10, 20, 30, 40} {
		if _, err := tbl.Delete(I(k)); err != nil {
			t.Fatal(err)
		}
	}
	got := collectRange(tbl, nil, &Bound{Value: F(0)})
	if len(got) != 0 {
		t.Fatalf("deleted rows still visible: %v", got)
	}
	// Updates move rows between range buckets.
	if _, err := tbl.Update([]Value{I(1)}, Row{I(1), F(9.5)}); err != nil {
		t.Fatal(err)
	}
	got = collectRange(tbl, &Bound{Value: F(9)}, nil)
	if len(got) != 1 || got[0][0].Int() != 1 {
		t.Fatalf("moved row not found: %v", got)
	}
}

func TestScanRangeViaPanicsOnHashIndex(t *testing.T) {
	tbl := rangeTable(t)
	if err := tbl.CreateIndex("k_hash", HashIndex, "k"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on hash-index range scan")
		}
	}()
	tbl.ScanRangeVia(tbl.IndexOn("k"), nil, nil, func(Row) bool { return true })
}

func TestScanRangeViaRandomizedAgainstFilter(t *testing.T) {
	// Property: for random data and random bounds, the range scan agrees
	// with a full scan + filter.
	rng := rand.New(rand.NewSource(77))
	schema, err := NewSchema("r", []Column{
		{Name: "k", Type: TInt},
		{Name: "v", Type: TInt},
	}, "k")
	if err != nil {
		t.Fatal(err)
	}
	tbl := NewTable(schema, nil)
	if err := tbl.CreateIndex("v_ord", OrderedIndex, "v"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := tbl.Insert(Row{I(int64(i)), I(int64(rng.Intn(40)))}); err != nil {
			t.Fatal(err)
		}
	}
	ix := tbl.IndexOn("v")
	for trial := 0; trial < 100; trial++ {
		var lo, hi *Bound
		if rng.Intn(4) > 0 {
			lo = &Bound{Value: I(int64(rng.Intn(45) - 2)), Exclusive: rng.Intn(2) == 0}
		}
		if rng.Intn(4) > 0 {
			hi = &Bound{Value: I(int64(rng.Intn(45) - 2)), Exclusive: rng.Intn(2) == 0}
		}
		inRange := func(v Value) bool {
			if lo != nil {
				c := Compare(v, lo.Value)
				if c < 0 || (c == 0 && lo.Exclusive) {
					return false
				}
			}
			if hi != nil {
				c := Compare(v, hi.Value)
				if c > 0 || (c == 0 && hi.Exclusive) {
					return false
				}
			}
			return true
		}
		var want []int64
		tbl.Scan(func(r Row) bool {
			if inRange(r[1]) {
				want = append(want, r[0].Int())
			}
			return true
		})
		var got []int64
		tbl.ScanRangeVia(ix, lo, hi, func(r Row) bool {
			got = append(got, r[0].Int())
			return true
		})
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d rows, want %d (lo=%v hi=%v)", trial, len(got), len(want), lo, hi)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: row sets differ", trial)
			}
		}
	}
}
