package storage

import "testing"

func TestCloneTable(t *testing.T) {
	src := NewDB()
	schema, err := NewSchema("t", []Column{{Name: "k", Type: TInt}, {Name: "v", Type: TString}}, "k")
	if err != nil {
		t.Fatal(err)
	}
	orig, err := src.CreateTable(schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := orig.Insert(Row{I(int64(i)), S("v")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := orig.CreateIndex("t_v", HashIndex, "v"); err != nil {
		t.Fatal(err)
	}

	dst := NewDB()
	clone, err := CloneTable(dst, orig)
	if err != nil {
		t.Fatal(err)
	}
	if clone.Len() != orig.Len() {
		t.Fatalf("clone has %d rows, want %d", clone.Len(), orig.Len())
	}
	if clone.IndexOn("v") == nil {
		t.Fatal("clone lost the secondary index")
	}

	// Scan order must match: the clone is a deterministic snapshot.
	var a, b []Row
	orig.Scan(func(r Row) bool { a = append(a, r); return true })
	clone.Scan(func(r Row) bool { b = append(b, r); return true })
	for i := range a {
		if EncodeKey(a[i]...) != EncodeKey(b[i]...) {
			t.Fatalf("row %d differs: %v vs %v", i, a[i], b[i])
		}
	}

	// Mutating the clone must not leak into the source.
	if _, err := clone.Delete(I(0)); err != nil {
		t.Fatal(err)
	}
	if err := clone.Insert(Row{I(99), S("new")}); err != nil {
		t.Fatal(err)
	}
	if orig.Len() != 5 {
		t.Fatalf("source mutated through clone: %d rows", orig.Len())
	}
	if _, ok := orig.Get(I(99)); ok {
		t.Fatal("insert into clone visible in source")
	}
}
