package storage

import (
	"bytes"
	"strings"
	"testing"
)

// markDirty records a key in a dirty set the way a writer would.
func markDirty(dirty map[string]KeySet, table string, keyVals ...Value) {
	ks, ok := dirty[table]
	if !ok {
		ks = KeySet{}
		dirty[table] = ks
	}
	ks[EncodeKey(keyVals...)] = keyVals
}

// sameTable fails the test unless got and want hold identical row sets.
func sameTable(t *testing.T, got, want *Table) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("table %s: %d rows, want %d", want.Schema().Name, got.Len(), want.Len())
	}
	want.Scan(func(r Row) bool {
		rr, ok := got.Get(r.Project(want.Schema().Key)...)
		if !ok {
			t.Fatalf("row %v missing after delta apply", r)
		}
		for i := range r {
			if !Equal(r[i], rr[i]) {
				t.Fatalf("row %v != %v", r, rr)
			}
		}
		return true
	})
}

func TestSnapshotDeltaRoundTrip(t *testing.T) {
	db := snapshotDB(t)

	// Base: a full snapshot restored into a second database.
	var base bytes.Buffer
	if err := db.WriteSnapshot(&base); err != nil {
		t.Fatal(err)
	}
	baseLen := base.Len()
	restored, err := ReadSnapshot(&base)
	if err != nil {
		t.Fatal(err)
	}

	// Mutate the original: an update, an insert, a delete.
	tbl := db.MustTable("items")
	dirty := map[string]KeySet{}
	if _, err := tbl.Update([]Value{I(10)}, Row{I(10), S("updated"), F(99), I(1)}); err != nil {
		t.Fatal(err)
	}
	markDirty(dirty, "items", I(10))
	if err := tbl.Insert(Row{I(500), S("new"), F(5), I(2)}); err != nil {
		t.Fatal(err)
	}
	markDirty(dirty, "items", I(500))
	if _, err := tbl.Delete(I(20)); err != nil {
		t.Fatal(err)
	}
	markDirty(dirty, "items", I(20))
	// Over-marking: a key whose row never changed, and a key that never
	// existed anywhere. Both must be harmless.
	markDirty(dirty, "items", I(30))
	markDirty(dirty, "items", I(9999))

	var delta bytes.Buffer
	if err := db.WriteSnapshotDelta(&delta, dirty); err != nil {
		t.Fatal(err)
	}
	if delta.Len() >= baseLen {
		t.Fatalf("delta (%d bytes) not smaller than base snapshot (%d bytes)", delta.Len(), baseLen)
	}
	if err := ApplySnapshotDelta(restored, bytes.NewReader(delta.Bytes())); err != nil {
		t.Fatal(err)
	}
	sameTable(t, restored.MustTable("items"), tbl)
}

func TestSnapshotDeltaDeterministicBytes(t *testing.T) {
	db := snapshotDB(t)
	tbl := db.MustTable("items")
	dirty := map[string]KeySet{}
	for _, id := range []int64{3, 1, 4, 1, 5, 9, 2, 6} {
		markDirty(dirty, "items", I(id))
	}
	if _, err := tbl.Delete(I(9)); err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := db.WriteSnapshotDelta(&a, dirty); err != nil {
		t.Fatal(err)
	}
	if err := db.WriteSnapshotDelta(&b, dirty); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical (db, dirty) pairs produced different delta bytes")
	}
}

func TestSnapshotDeltaUnknownTable(t *testing.T) {
	db := snapshotDB(t)
	dirty := map[string]KeySet{}
	markDirty(dirty, "ghost", I(1))
	var buf bytes.Buffer
	err := db.WriteSnapshotDelta(&buf, dirty)
	if err == nil || !strings.Contains(err.Error(), "unknown table") {
		t.Fatalf("err = %v, want unknown-table error", err)
	}

	// Applying a delta that names a table the target lacks must fail too.
	dirty = map[string]KeySet{}
	markDirty(dirty, "items", I(1))
	buf.Reset()
	if err := db.WriteSnapshotDelta(&buf, dirty); err != nil {
		t.Fatal(err)
	}
	if err := ApplySnapshotDelta(NewDB(), bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("applying a delta to a DB missing the table succeeded")
	}
}

func TestSnapshotDeltaVersionAndGarbage(t *testing.T) {
	db := snapshotDB(t)
	if err := ApplySnapshotDelta(db, bytes.NewReader([]byte("not a delta"))); err == nil {
		t.Fatal("decoding garbage succeeded")
	}
	// An empty dirty set still writes a valid (empty) delta.
	var buf bytes.Buffer
	if err := db.WriteSnapshotDelta(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if err := ApplySnapshotDelta(db, bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
}
