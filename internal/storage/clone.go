package storage

// CloneTable copies src into dst: same schema, every live row (in scan
// order, so the clone's slot order is deterministic given the source's
// operation history), and every secondary-index definition. It is the
// snapshot primitive behind view-consistent replicas and the compiler's
// calibration sandboxes; src is only read, never mutated.
func CloneTable(dst *DB, src *Table) (*Table, error) {
	out, err := dst.CreateTable(src.Schema())
	if err != nil {
		return nil, err
	}
	var insertErr error
	src.Scan(func(r Row) bool {
		if err := out.Insert(r.Clone()); err != nil {
			insertErr = err
			return false
		}
		return true
	})
	if insertErr != nil {
		return nil, insertErr
	}
	for _, ix := range src.Indexes() {
		cols := make([]string, len(ix.Cols))
		for i, c := range ix.Cols {
			cols[i] = src.Schema().Columns[c].Name
		}
		if err := out.CreateIndex(ix.Name, ix.Kind, cols...); err != nil {
			return nil, err
		}
	}
	return out, nil
}
