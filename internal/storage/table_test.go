package storage

import (
	"errors"
	"math/rand"
	"testing"
)

func suppSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("supplier", []Column{
		{Name: "suppkey", Type: TInt},
		{Name: "name", Type: TString},
		{Name: "nationkey", Type: TInt},
	}, "suppkey")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaValidation(t *testing.T) {
	cols := []Column{{Name: "a", Type: TInt}}
	if _, err := NewSchema("", cols, "a"); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewSchema("t", nil, "a"); err == nil {
		t.Error("no columns accepted")
	}
	if _, err := NewSchema("t", []Column{{Name: "a", Type: TInt}, {Name: "a", Type: TInt}}, "a"); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := NewSchema("t", cols); err == nil {
		t.Error("missing key accepted")
	}
	if _, err := NewSchema("t", cols, "zzz"); err == nil {
		t.Error("unknown key column accepted")
	}
}

func TestSchemaColIndexAndCheckRow(t *testing.T) {
	s := suppSchema(t)
	if s.ColIndex("nationkey") != 2 {
		t.Error("ColIndex wrong")
	}
	if s.ColIndex("missing") != -1 {
		t.Error("missing column index")
	}
	if err := s.CheckRow(Row{I(1), S("a"), I(2)}); err != nil {
		t.Errorf("valid row rejected: %v", err)
	}
	if err := s.CheckRow(Row{I(1), S("a")}); err == nil {
		t.Error("short row accepted")
	}
	if err := s.CheckRow(Row{S("x"), S("a"), I(2)}); err == nil {
		t.Error("wrong type accepted")
	}
}

func TestSchemaAcceptsIntForFloatColumn(t *testing.T) {
	s, err := NewSchema("ps", []Column{
		{Name: "k", Type: TInt},
		{Name: "cost", Type: TFloat},
	}, "k")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CheckRow(Row{I(1), I(100)}); err != nil {
		t.Errorf("int for float rejected: %v", err)
	}
}

func TestTableInsertGetDelete(t *testing.T) {
	tbl := NewTable(suppSchema(t), nil)
	if err := tbl.Insert(Row{I(1), S("acme"), I(10)}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(Row{I(1), S("dup"), I(11)}); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("duplicate key: err = %v", err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	r, ok := tbl.Get(I(1))
	if !ok || r[1].Str() != "acme" {
		t.Fatalf("Get = (%v, %t)", r, ok)
	}
	if _, ok := tbl.Get(I(2)); ok {
		t.Fatal("phantom row")
	}
	old, err := tbl.Delete(I(1))
	if err != nil || old[1].Str() != "acme" {
		t.Fatalf("Delete = (%v, %v)", old, err)
	}
	if _, err := tbl.Delete(I(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: err = %v", err)
	}
	if tbl.Len() != 0 {
		t.Fatalf("Len after delete = %d", tbl.Len())
	}
}

func TestTableInsertCopiesRow(t *testing.T) {
	tbl := NewTable(suppSchema(t), nil)
	r := Row{I(1), S("acme"), I(10)}
	if err := tbl.Insert(r); err != nil {
		t.Fatal(err)
	}
	r[1] = S("mutated")
	got, _ := tbl.Get(I(1))
	if got[1].Str() != "acme" {
		t.Fatal("Insert aliases caller row")
	}
}

func TestTableSlotReuse(t *testing.T) {
	tbl := NewTable(suppSchema(t), nil)
	for i := 0; i < 10; i++ {
		if err := tbl.Insert(Row{I(int64(i)), S("s"), I(0)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, err := tbl.Delete(I(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 10; i < 15; i++ {
		if err := tbl.Insert(Row{I(int64(i)), S("s"), I(0)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(tbl.rows); got != 10 {
		t.Fatalf("slots grew to %d despite free list", got)
	}
	count := 0
	tbl.Scan(func(Row) bool { count++; return true })
	if count != 10 {
		t.Fatalf("Scan visited %d rows", count)
	}
}

func TestTableUpdate(t *testing.T) {
	tbl := NewTable(suppSchema(t), nil)
	if err := tbl.CreateIndex("by_nation", HashIndex, "nationkey"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(Row{I(1), S("acme"), I(10)}); err != nil {
		t.Fatal(err)
	}
	// Non-key update.
	old, err := tbl.Update([]Value{I(1)}, Row{I(1), S("acme"), I(20)})
	if err != nil || old[2].Int() != 10 {
		t.Fatalf("Update = (%v, %v)", old, err)
	}
	rows, err := tbl.LookupIndex("by_nation", I(20))
	if err != nil || len(rows) != 1 {
		t.Fatalf("index not maintained: %v %v", rows, err)
	}
	if rows, _ := tbl.LookupIndex("by_nation", I(10)); len(rows) != 0 {
		t.Fatal("stale index entry for old value")
	}
	// Key-changing update.
	if _, err := tbl.Update([]Value{I(1)}, Row{I(2), S("acme"), I(20)}); err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.Get(I(1)); ok {
		t.Fatal("old key still resolves")
	}
	if _, ok := tbl.Get(I(2)); !ok {
		t.Fatal("new key missing")
	}
	// Update to an existing key fails.
	if err := tbl.Insert(Row{I(3), S("b"), I(30)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Update([]Value{I(3)}, Row{I(2), S("b"), I(30)}); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("key collision on update: err = %v", err)
	}
	// Update of a missing row fails.
	if _, err := tbl.Update([]Value{I(99)}, Row{I(99), S("x"), I(0)}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing update: err = %v", err)
	}
}

func TestHashIndexLookup(t *testing.T) {
	tbl := NewTable(suppSchema(t), nil)
	if err := tbl.CreateIndex("by_nation", HashIndex, "nationkey"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := tbl.Insert(Row{I(int64(i)), S("s"), I(int64(i % 3))}); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := tbl.LookupIndex("by_nation", I(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("lookup returned %d rows, want 10", len(rows))
	}
	for _, r := range rows {
		if r[2].Int() != 1 {
			t.Fatalf("wrong row %v", r)
		}
	}
	if _, err := tbl.LookupIndex("nope", I(1)); err == nil {
		t.Fatal("unknown index accepted")
	}
}

func TestIndexBackfillOnCreate(t *testing.T) {
	tbl := NewTable(suppSchema(t), nil)
	for i := 0; i < 10; i++ {
		if err := tbl.Insert(Row{I(int64(i)), S("s"), I(7)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.CreateIndex("late", HashIndex, "nationkey"); err != nil {
		t.Fatal(err)
	}
	rows, _ := tbl.LookupIndex("late", I(7))
	if len(rows) != 10 {
		t.Fatalf("backfill found %d rows", len(rows))
	}
	if err := tbl.CreateIndex("late", HashIndex, "nationkey"); err == nil {
		t.Fatal("duplicate index name accepted")
	}
	if err := tbl.CreateIndex("bad", HashIndex, "missing"); err == nil {
		t.Fatal("index on missing column accepted")
	}
}

func TestOrderedIndex(t *testing.T) {
	tbl := NewTable(suppSchema(t), nil)
	if err := tbl.CreateIndex("ord", OrderedIndex, "nationkey"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := tbl.Insert(Row{I(int64(i)), S("s"), I(int64(i % 4))}); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := tbl.LookupIndex("ord", I(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("ordered lookup returned %d rows", len(rows))
	}
	// Deleting removes entries.
	if _, err := tbl.Delete(I(2)); err != nil {
		t.Fatal(err)
	}
	rows, _ = tbl.LookupIndex("ord", I(2))
	if len(rows) != 4 {
		t.Fatalf("after delete: %d rows", len(rows))
	}
	// Multi-column ordered index rejected.
	if err := tbl.CreateIndex("ord2", OrderedIndex, "nationkey", "suppkey"); err == nil {
		t.Fatal("multi-column ordered index accepted")
	}
}

func TestIndexOn(t *testing.T) {
	tbl := NewTable(suppSchema(t), nil)
	if err := tbl.CreateIndex("by_nation", HashIndex, "nationkey"); err != nil {
		t.Fatal(err)
	}
	if ix := tbl.IndexOn("nationkey"); ix == nil || ix.Name != "by_nation" {
		t.Fatal("IndexOn missed the index")
	}
	if ix := tbl.IndexOn("name"); ix != nil {
		t.Fatal("IndexOn invented an index")
	}
	if ix := tbl.IndexOn("missing"); ix != nil {
		t.Fatal("IndexOn matched a missing column")
	}
}

func TestScanEarlyStop(t *testing.T) {
	tbl := NewTable(suppSchema(t), nil)
	for i := 0; i < 10; i++ {
		_ = tbl.Insert(Row{I(int64(i)), S("s"), I(0)})
	}
	count := 0
	tbl.Scan(func(Row) bool { count++; return count < 3 })
	if count != 3 {
		t.Fatalf("visited %d, want 3", count)
	}
}

func TestStatsAccounting(t *testing.T) {
	tbl := NewTable(suppSchema(t), nil)
	st := tbl.Stats()
	_ = tbl.Insert(Row{I(1), S("a"), I(10)})
	if st.RowsInserted != 1 {
		t.Fatalf("RowsInserted = %d", st.RowsInserted)
	}
	tbl.Scan(func(Row) bool { return true })
	if st.RowsScanned != 1 {
		t.Fatalf("RowsScanned = %d", st.RowsScanned)
	}
	tbl.Get(I(1))
	if st.IndexProbes == 0 {
		t.Fatal("Get did not count a probe")
	}
}

func TestStatsAddSubCost(t *testing.T) {
	a := Stats{RowsScanned: 10, IndexProbes: 4, BatchSetups: 1}
	b := Stats{RowsScanned: 3, IndexProbes: 1}
	d := a.Sub(b)
	if d.RowsScanned != 7 || d.IndexProbes != 3 || d.BatchSetups != 1 {
		t.Fatalf("Sub = %+v", d)
	}
	var acc Stats
	acc.Add(a)
	acc.Add(b)
	if acc.RowsScanned != 13 {
		t.Fatalf("Add = %+v", acc)
	}
	w := DefaultWeights()
	if w.Cost(Stats{}) != 0 {
		t.Fatal("zero stats should cost 0")
	}
	if w.Cost(a) <= 0 {
		t.Fatal("non-zero stats should cost > 0")
	}
}

func TestDBCatalog(t *testing.T) {
	db := NewDB()
	s := suppSchema(t)
	tbl, err := db.CreateTable(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(s); err == nil {
		t.Fatal("duplicate table accepted")
	}
	got, err := db.Table("supplier")
	if err != nil || got != tbl {
		t.Fatalf("Table = (%v, %v)", got, err)
	}
	if _, err := db.Table("nope"); err == nil {
		t.Fatal("missing table resolved")
	}
	if names := db.TableNames(); len(names) != 1 || names[0] != "supplier" {
		t.Fatalf("TableNames = %v", names)
	}
	// Tables share the DB's stats.
	_ = tbl.Insert(Row{I(1), S("a"), I(1)})
	if db.Stats().RowsInserted != 1 {
		t.Fatal("table does not share DB stats")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustTable on missing table did not panic")
		}
	}()
	db.MustTable("missing")
}

func TestTableRandomOpsConsistency(t *testing.T) {
	// Property: after a random op sequence, the PK map, the scan view and
	// the secondary index agree.
	rng := rand.New(rand.NewSource(55))
	tbl := NewTable(suppSchema(t), nil)
	if err := tbl.CreateIndex("by_nation", HashIndex, "nationkey"); err != nil {
		t.Fatal(err)
	}
	ref := map[int64]int64{} // suppkey -> nationkey
	for op := 0; op < 5000; op++ {
		k := int64(rng.Intn(300))
		switch rng.Intn(3) {
		case 0:
			nk := int64(rng.Intn(5))
			err := tbl.Insert(Row{I(k), S("s"), I(nk)})
			if _, exists := ref[k]; exists {
				if !errors.Is(err, ErrDuplicateKey) {
					t.Fatalf("op %d: expected duplicate error, got %v", op, err)
				}
			} else if err != nil {
				t.Fatalf("op %d: %v", op, err)
			} else {
				ref[k] = nk
			}
		case 1:
			_, err := tbl.Delete(I(k))
			if _, exists := ref[k]; exists {
				if err != nil {
					t.Fatalf("op %d: %v", op, err)
				}
				delete(ref, k)
			} else if !errors.Is(err, ErrNotFound) {
				t.Fatalf("op %d: expected not-found, got %v", op, err)
			}
		case 2:
			nk := int64(rng.Intn(5))
			_, err := tbl.Update([]Value{I(k)}, Row{I(k), S("s"), I(nk)})
			if _, exists := ref[k]; exists {
				if err != nil {
					t.Fatalf("op %d: %v", op, err)
				}
				ref[k] = nk
			} else if !errors.Is(err, ErrNotFound) {
				t.Fatalf("op %d: expected not-found, got %v", op, err)
			}
		}
	}
	if tbl.Len() != len(ref) {
		t.Fatalf("Len %d != ref %d", tbl.Len(), len(ref))
	}
	seen := 0
	tbl.Scan(func(r Row) bool {
		seen++
		nk, ok := ref[r[0].Int()]
		if !ok || nk != r[2].Int() {
			t.Fatalf("scan row %v disagrees with ref", r)
		}
		return true
	})
	if seen != len(ref) {
		t.Fatalf("scan saw %d rows, ref has %d", seen, len(ref))
	}
	// Index agrees per nation key.
	counts := map[int64]int{}
	for _, nk := range ref {
		counts[nk]++
	}
	for nk, want := range counts {
		rows, err := tbl.LookupIndex("by_nation", I(nk))
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != want {
			t.Fatalf("index count for nation %d: %d, want %d", nk, len(rows), want)
		}
	}
}
