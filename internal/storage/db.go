package storage

import (
	"fmt"
	"sort"
)

// DB is a catalog of tables sharing one work-unit counter.
type DB struct {
	stats  Stats
	tables map[string]*Table
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: make(map[string]*Table)}
}

// Stats returns the shared work-unit counters.
func (db *DB) Stats() *Stats { return &db.stats }

// CreateTable adds a new table to the catalog.
func (db *DB) CreateTable(schema *Schema) (*Table, error) {
	if _, dup := db.tables[schema.Name]; dup {
		return nil, fmt.Errorf("storage: table %q already exists", schema.Name)
	}
	t := NewTable(schema, &db.stats)
	db.tables[schema.Name] = t
	return t, nil
}

// Table returns the named table.
func (db *DB) Table(name string) (*Table, error) {
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("storage: no table %q", name)
	}
	return t, nil
}

// MustTable returns the named table or panics; for use after schema setup.
func (db *DB) MustTable(name string) *Table {
	t, err := db.Table(name)
	if err != nil {
		panic(err)
	}
	return t
}

// TableNames lists the catalog in sorted order.
func (db *DB) TableNames() []string {
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
