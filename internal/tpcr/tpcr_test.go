package tpcr

import (
	"testing"

	"abivm/internal/ivm"
	"abivm/internal/storage"
)

func genDB(t *testing.T, cfg Config) *storage.DB {
	t.Helper()
	db := storage.NewDB()
	if err := Generate(db, cfg); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestGenerateSizes(t *testing.T) {
	cfg := Config{ScaleFactor: 0.002, Seed: 1}
	db := genDB(t, cfg)
	nSupp, nPart, nPS := cfg.Sizes()
	if got := db.MustTable("supplier").Len(); got != nSupp {
		t.Errorf("supplier rows = %d, want %d", got, nSupp)
	}
	if got := db.MustTable("part").Len(); got != nPart {
		t.Errorf("part rows = %d, want %d", got, nPart)
	}
	if got := db.MustTable("partsupp").Len(); got != nPS {
		t.Errorf("partsupp rows = %d, want %d", got, nPS)
	}
	if got := db.MustTable("region").Len(); got != 5 {
		t.Errorf("region rows = %d", got)
	}
	if got := db.MustTable("nation").Len(); got != 25 {
		t.Errorf("nation rows = %d", got)
	}
	// PartSupp:Supplier ratio is 80:1 as in the paper's TPC-R setup.
	if nPS != 80*nSupp {
		t.Errorf("ratio %d:%d, want 80:1", nPS, nSupp)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{ScaleFactor: 0.001, Seed: 7}
	a := genDB(t, cfg)
	b := genDB(t, cfg)
	at := a.MustTable("partsupp")
	bt := b.MustTable("partsupp")
	mismatch := false
	cur := bt.NewCursor()
	at.Scan(func(r storage.Row) bool {
		rb, ok := cur.Next()
		if !ok || storage.EncodeKey(r...) != storage.EncodeKey(rb...) {
			mismatch = true
			return false
		}
		return true
	})
	if mismatch {
		t.Fatal("same seed produced different databases")
	}
}

func TestGenerateValidation(t *testing.T) {
	db := storage.NewDB()
	if err := Generate(db, Config{ScaleFactor: 0}); err == nil {
		t.Fatal("zero scale factor accepted")
	}
}

func TestIndexConfiguration(t *testing.T) {
	db := genDB(t, Config{ScaleFactor: 0.001, Seed: 1, SupplierSuppkeyIndex: true, PartSuppSuppkeyIndex: true})
	if db.MustTable("supplier").IndexOn("suppkey") == nil {
		t.Error("supplier suppkey index missing")
	}
	if db.MustTable("partsupp").IndexOn("suppkey") == nil {
		t.Error("partsupp suppkey index missing")
	}
	db2 := genDB(t, Config{ScaleFactor: 0.001, Seed: 1})
	if db2.MustTable("supplier").IndexOn("suppkey") != nil {
		t.Error("unexpected supplier index")
	}
	if db2.MustTable("partsupp").IndexOn("suppkey") != nil {
		t.Error("unexpected partsupp index")
	}
}

func TestNationRegionMapping(t *testing.T) {
	db := genDB(t, Config{ScaleFactor: 0.001, Seed: 1})
	// Exactly 5 nations per region, as in TPC-R.
	counts := map[int64]int{}
	db.MustTable("nation").Scan(func(r storage.Row) bool {
		counts[r[2].Int()]++
		return true
	})
	for rk := int64(0); rk < 5; rk++ {
		if counts[rk] != 5 {
			t.Errorf("region %d has %d nations, want 5", rk, counts[rk])
		}
	}
}

func TestPaperViewOverGeneratedData(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ScaleFactor = 0.002
	db := genDB(t, cfg)
	m, err := ivm.New(db, PaperView)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Result()
	if len(res) != 1 {
		t.Fatalf("result rows = %d", len(res))
	}
	if res[0][0].Float() <= 0 {
		t.Fatalf("MIN = %v, want a positive supply cost", res[0][0])
	}
}

func TestUpdateGenProducesValidMods(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ScaleFactor = 0.002
	db := genDB(t, cfg)
	m, err := ivm.New(db, PaperView)
	if err != nil {
		t.Fatal(err)
	}
	gen := NewUpdateGen(db, cfg, 99)
	for i := 0; i < 50; i++ {
		if err := m.Apply(gen.PartSuppUpdate()); err != nil {
			t.Fatalf("partsupp update %d: %v", i, err)
		}
		if err := m.Apply(gen.SupplierUpdate()); err != nil {
			t.Fatalf("supplier update %d: %v", i, err)
		}
	}
	if p := m.Pending(); p[0] != 50 || p[1] != 50 {
		t.Fatalf("pending = %v", p)
	}
	if err := m.Refresh(); err != nil {
		t.Fatal(err)
	}
	fresh, err := m.RecomputeFresh()
	if err != nil {
		t.Fatal(err)
	}
	got := m.Result()
	if len(got) != 1 || len(fresh) != 1 || !storage.Equal(got[0][0], fresh[0][0]) {
		t.Fatalf("incremental %v vs fresh %v", got, fresh)
	}
}

func TestUpdateGenDeterministic(t *testing.T) {
	cfg := Config{ScaleFactor: 0.001, Seed: 1}
	db := genDB(t, cfg)
	g1 := NewUpdateGen(db, cfg, 5)
	g2 := NewUpdateGen(db, cfg, 5)
	for i := 0; i < 20; i++ {
		a, b := g1.PartSuppUpdate(), g2.PartSuppUpdate()
		if storage.EncodeKey(a.Key...) != storage.EncodeKey(b.Key...) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRegionGroupViewMaintainedUnderUpdates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ScaleFactor = 0.002
	db := genDB(t, cfg)
	m, err := ivm.New(db, RegionGroupView)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.Result()); got != 5 {
		t.Fatalf("initial groups = %d, want 5 regions", got)
	}
	gen := NewUpdateGen(db, cfg, 42)
	for i := 0; i < 120; i++ {
		if err := m.Apply(gen.PartSuppUpdate()); err != nil {
			t.Fatal(err)
		}
		if err := m.Apply(gen.SupplierUpdate()); err != nil {
			t.Fatal(err)
		}
		if i%30 == 29 {
			if err := m.Refresh(); err != nil {
				t.Fatal(err)
			}
			fresh, err := m.RecomputeFresh()
			if err != nil {
				t.Fatal(err)
			}
			got := m.Result()
			if len(got) != len(fresh) {
				t.Fatalf("step %d: %d groups vs fresh %d", i, len(got), len(fresh))
			}
			for g := range got {
				for c := range got[g] {
					if !valuesClose(got[g][c], fresh[g][c]) {
						t.Fatalf("step %d: group %d col %d: %v vs %v", i, g, c, got[g], fresh[g])
					}
				}
			}
		}
	}
}

// valuesClose compares values exactly except for floats, which may drift
// by accumulated rounding when a SUM is maintained via additions and
// retractions rather than recomputed.
func valuesClose(a, b storage.Value) bool {
	if a.T == storage.TFloat || b.T == storage.TFloat {
		av, bv := a.Float(), b.Float()
		diff := av - bv
		if diff < 0 {
			diff = -diff
		}
		scale := 1.0
		if av > scale {
			scale = av
		}
		if -av > scale {
			scale = -av
		}
		return diff <= 1e-9*scale
	}
	return storage.Compare(a, b) == 0
}

func TestJoinViewParsesAndRuns(t *testing.T) {
	cfg := Config{ScaleFactor: 0.001, Seed: 1, PartSuppSuppkeyIndex: true}
	db := genDB(t, cfg)
	m, err := ivm.New(db, JoinView)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Result()
	_, _, nPS := cfg.Sizes()
	if len(res) != 1 || res[0][0].Int() != int64(nPS) {
		t.Fatalf("COUNT = %v, want %d", res, nPS)
	}
}
