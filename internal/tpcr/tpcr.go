// Package tpcr generates a deterministic TPC-R-style database — the
// substrate of the paper's experiments. The generator preserves what the
// experiments depend on: TPC-R's table-size ratios (at scale factor 1,
// Region 5, Nation 25, Supplier 10k, Part 200k, PartSupp 800k), key
// structure (PartSupp has the composite key (partkey, suppkey) with four
// supplier entries per part), the MIDDLE EAST region selectivity (1 of 5
// regions, 5 of 25 nations), and the paper's two update types (random
// supplycost updates on PartSupp, random nationkey updates on Supplier).
package tpcr

import (
	"fmt"
	"math/rand"

	"abivm/internal/ivm"
	"abivm/internal/storage"
)

// Region and nation names from the TPC-R specification; nation i belongs
// to region nationRegions[i].
var (
	regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nationNames = []string{
		"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT",
		"ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA",
		"IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
		"MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
		"SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
	}
	nationRegions = []int64{
		0, 1, 1, 1, 4,
		0, 3, 3, 2, 2,
		4, 4, 2, 4, 0,
		0, 0, 1, 2, 3,
		4, 2, 3, 3, 1,
	}
)

// Config parameterizes generation.
type Config struct {
	// ScaleFactor scales the variable-size tables: Supplier has
	// 10000*SF rows, Part 200000*SF, PartSupp 4 entries per part. Region
	// and Nation are fixed-size. The experiments default to SF=0.005
	// (50 suppliers, 1000 parts, 4000 partsupp rows), which preserves the
	// 80:1 PartSupp:Supplier ratio of the paper's setup.
	ScaleFactor float64
	// Seed drives all random attribute values.
	Seed int64
	// SupplierSuppkeyIndex adds a hash index on supplier.suppkey (the
	// "R indexed on the join attribute" side of Figure 1).
	SupplierSuppkeyIndex bool
	// PartSuppSuppkeyIndex adds a hash index on partsupp.suppkey. The
	// paper's TPC-R setup lacks it, which is what makes Supplier deltas
	// expensive (their join against PartSupp must scan/build over the
	// large table).
	PartSuppSuppkeyIndex bool
}

// DefaultConfig returns the experiment-scale configuration.
func DefaultConfig() Config {
	return Config{ScaleFactor: 0.005, Seed: 1, SupplierSuppkeyIndex: true}
}

// Sizes reports the generated table cardinalities for a config.
func (c Config) Sizes() (suppliers, parts, partsupps int) {
	suppliers = int(10000 * c.ScaleFactor)
	if suppliers < 1 {
		suppliers = 1
	}
	parts = int(200000 * c.ScaleFactor)
	if parts < 1 {
		parts = 1
	}
	return suppliers, parts, 4 * parts
}

// Generate populates db with the TPC-R-style tables and indexes.
func Generate(db *storage.DB, cfg Config) error {
	if cfg.ScaleFactor <= 0 {
		return fmt.Errorf("tpcr: scale factor must be positive, got %g", cfg.ScaleFactor)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nSupp, nPart, _ := cfg.Sizes()

	region, err := createTable(db, "region", []storage.Column{
		{Name: "regionkey", Type: storage.TInt},
		{Name: "rname", Type: storage.TString},
	}, "regionkey")
	if err != nil {
		return err
	}
	for i, name := range regionNames {
		if err := region.Insert(storage.Row{storage.I(int64(i)), storage.S(name)}); err != nil {
			return err
		}
	}
	if err := region.CreateIndex("region_pk", storage.HashIndex, "regionkey"); err != nil {
		return err
	}

	nation, err := createTable(db, "nation", []storage.Column{
		{Name: "nationkey", Type: storage.TInt},
		{Name: "nname", Type: storage.TString},
		{Name: "regionkey", Type: storage.TInt},
	}, "nationkey")
	if err != nil {
		return err
	}
	for i, name := range nationNames {
		if err := nation.Insert(storage.Row{storage.I(int64(i)), storage.S(name), storage.I(nationRegions[i])}); err != nil {
			return err
		}
	}
	if err := nation.CreateIndex("nation_pk", storage.HashIndex, "nationkey"); err != nil {
		return err
	}

	supplier, err := createTable(db, "supplier", []storage.Column{
		{Name: "suppkey", Type: storage.TInt},
		{Name: "sname", Type: storage.TString},
		{Name: "nationkey", Type: storage.TInt},
		{Name: "acctbal", Type: storage.TFloat},
	}, "suppkey")
	if err != nil {
		return err
	}
	for i := 0; i < nSupp; i++ {
		row := storage.Row{
			storage.I(int64(i)),
			storage.S(fmt.Sprintf("Supplier#%09d", i)),
			storage.I(int64(rng.Intn(len(nationNames)))),
			storage.F(float64(rng.Intn(1000000)) / 100),
		}
		if err := supplier.Insert(row); err != nil {
			return err
		}
	}
	if cfg.SupplierSuppkeyIndex {
		if err := supplier.CreateIndex("supplier_suppkey", storage.HashIndex, "suppkey"); err != nil {
			return err
		}
	}

	part, err := createTable(db, "part", []storage.Column{
		{Name: "partkey", Type: storage.TInt},
		{Name: "pname", Type: storage.TString},
		{Name: "retailprice", Type: storage.TFloat},
	}, "partkey")
	if err != nil {
		return err
	}
	for i := 0; i < nPart; i++ {
		row := storage.Row{
			storage.I(int64(i)),
			storage.S(fmt.Sprintf("Part#%09d", i)),
			storage.F(float64(90000+i%20000) / 100),
		}
		if err := part.Insert(row); err != nil {
			return err
		}
	}
	if err := part.CreateIndex("part_pk", storage.HashIndex, "partkey"); err != nil {
		return err
	}

	partsupp, err := createTable(db, "partsupp", []storage.Column{
		{Name: "partkey", Type: storage.TInt},
		{Name: "suppkey", Type: storage.TInt},
		{Name: "availqty", Type: storage.TInt},
		{Name: "supplycost", Type: storage.TFloat},
	}, "partkey", "suppkey")
	if err != nil {
		return err
	}
	for p := 0; p < nPart; p++ {
		for j := 0; j < 4; j++ {
			// TPC-R's supplier assignment spreads each part's four
			// entries across the supplier space.
			sk := (p + j*(nSupp/4+1)) % nSupp
			row := storage.Row{
				storage.I(int64(p)),
				storage.I(int64(sk)),
				storage.I(int64(1 + rng.Intn(9999))),
				storage.F(float64(100+rng.Intn(99900)) / 100),
			}
			if err := partsupp.Insert(row); err != nil {
				return err
			}
		}
	}
	if cfg.PartSuppSuppkeyIndex {
		if err := partsupp.CreateIndex("partsupp_suppkey", storage.HashIndex, "suppkey"); err != nil {
			return err
		}
	}
	return nil
}

func createTable(db *storage.DB, name string, cols []storage.Column, key ...string) (*storage.Table, error) {
	schema, err := storage.NewSchema(name, cols, key...)
	if err != nil {
		return nil, err
	}
	return db.CreateTable(schema)
}

// PaperView is the representative view of the paper's Section 5: the
// minimum supply cost across the MIDDLE EAST region, an aggregate over a
// four-way join. PS and S are the aliases whose deltas the experiments
// process.
const PaperView = `
	SELECT MIN(PS.supplycost)
	FROM partsupp AS PS, supplier AS S, nation AS N, region AS R
	WHERE S.suppkey = PS.suppkey
	AND S.nationkey = N.nationkey
	AND N.regionkey = R.regionkey
	AND R.rname = 'MIDDLE EAST'`

// RegionGroupView generalizes the paper's view to a grouped aggregate:
// per-region supply statistics over the same four-way join. It exercises
// group creation and disappearance under the paper's update workload and
// is used by the extension tests.
const RegionGroupView = `
	SELECT R.rname, MIN(PS.supplycost), COUNT(*), SUM(PS.supplycost)
	FROM partsupp AS PS, supplier AS S, nation AS N, region AS R
	WHERE S.suppkey = PS.suppkey
	AND S.nationkey = N.nationkey
	AND N.regionkey = R.regionkey
	GROUP BY R.rname`

// JoinView is the two-way join of the paper's Figure 1 example: R ⋈ S
// with R = PartSupp (indexed on the join attribute when
// SupplierSuppkeyIndex-style config indexes partsupp) and S = Supplier.
const JoinView = `
	SELECT COUNT(*)
	FROM partsupp AS PS, supplier AS S
	WHERE PS.suppkey = S.suppkey`

// UpdateGen produces the paper's modification workload: each modification
// randomly updates either a PartSupp row's supplycost or a Supplier row's
// nationkey. Keys are drawn uniformly from the generated key space.
type UpdateGen struct {
	cfg   Config
	rng   *rand.Rand
	nSupp int
	nPart int
	db    *storage.DB
}

// NewUpdateGen returns a generator matching the database generated with
// cfg; seed controls the update stream independently of the data seed.
func NewUpdateGen(db *storage.DB, cfg Config, seed int64) *UpdateGen {
	nSupp, nPart, _ := cfg.Sizes()
	return &UpdateGen{cfg: cfg, rng: rand.New(rand.NewSource(seed)), nSupp: nSupp, nPart: nPart, db: db}
}

// PartSuppUpdate updates a random PartSupp row's supplycost (alias "PS").
func (g *UpdateGen) PartSuppUpdate() ivm.Mod {
	p := int64(g.rng.Intn(g.nPart))
	j := g.rng.Intn(4)
	sk := (int(p) + j*(g.nSupp/4+1)) % g.nSupp
	key := []storage.Value{storage.I(p), storage.I(int64(sk))}
	old, ok := g.db.MustTable("partsupp").Get(key...)
	if !ok {
		panic(fmt.Sprintf("tpcr: generated key (%d,%d) missing from partsupp", p, sk))
	}
	newRow := old.Clone()
	newRow[3] = storage.F(float64(100+g.rng.Intn(99900)) / 100)
	return ivm.Update("PS", key, newRow)
}

// SupplierUpdate updates a random Supplier row's nationkey (alias "S").
func (g *UpdateGen) SupplierUpdate() ivm.Mod {
	sk := int64(g.rng.Intn(g.nSupp))
	key := []storage.Value{storage.I(sk)}
	old, ok := g.db.MustTable("supplier").Get(key...)
	if !ok {
		panic(fmt.Sprintf("tpcr: generated key %d missing from supplier", sk))
	}
	newRow := old.Clone()
	newRow[2] = storage.I(int64(g.rng.Intn(len(nationNames))))
	return ivm.Update("S", key, newRow)
}
