package exec

import (
	"fmt"
	"sort"

	"abivm/internal/storage"
)

// SortKey is one ordering key of a Sort operator.
type SortKey struct {
	Col  int // input column position
	Desc bool
}

// Sort materializes its input and emits it ordered by the sort keys
// (a stable sort, so equal keys keep input order). Each sorted row
// charges one RowsEmitted unit; the materialization pass charges one
// BatchSetups unit.
type Sort struct {
	in    Op
	keys  []SortKey
	stats *storage.Stats

	rows []storage.Row
	pos  int
}

// NewSort validates the keys against the input schema.
func NewSort(in Op, keys []SortKey, stats *storage.Stats) (*Sort, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("exec: sort needs at least one key")
	}
	cols := in.Columns()
	for _, k := range keys {
		if k.Col < 0 || k.Col >= len(cols) {
			return nil, fmt.Errorf("exec: sort key %d out of range", k.Col)
		}
	}
	return &Sort{in: in, keys: keys, stats: stats}, nil
}

// Columns implements Op.
func (s *Sort) Columns() []Col { return s.in.Columns() }

// Open implements Op: it drains the input and sorts.
func (s *Sort) Open() error {
	if err := s.in.Open(); err != nil {
		return err
	}
	defer s.in.Close()
	s.rows = s.rows[:0]
	for {
		r, ok := s.in.Next()
		if !ok {
			break
		}
		s.rows = append(s.rows, r)
	}
	if s.stats != nil {
		s.stats.BatchSetups++
	}
	sort.SliceStable(s.rows, func(i, j int) bool {
		for _, k := range s.keys {
			c := storage.Compare(s.rows[i][k.Col], s.rows[j][k.Col])
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	s.pos = 0
	return nil
}

// Next implements Op.
func (s *Sort) Next() (storage.Row, bool) {
	if s.pos >= len(s.rows) {
		return nil, false
	}
	r := s.rows[s.pos]
	s.pos++
	if s.stats != nil {
		s.stats.RowsEmitted++
	}
	return r, true
}

// Close implements Op.
func (s *Sort) Close() { s.rows = nil }

// Describe renders the sort keys for EXPLAIN output.
func (s *Sort) Describe() string {
	cols := s.in.Columns()
	out := ""
	for i, k := range s.keys {
		if i > 0 {
			out += ", "
		}
		out += cols[k.Col].String()
		if k.Desc {
			out += " DESC"
		}
	}
	return "by " + out
}

// Input returns the sort's child operator.
func (s *Sort) Input() Op { return s.in }

// Limit passes through at most N rows.
type Limit struct {
	in   Op
	n    int64
	seen int64
}

// NewLimit validates the row cap.
func NewLimit(in Op, n int64) (*Limit, error) {
	if n < 0 {
		return nil, fmt.Errorf("exec: negative limit %d", n)
	}
	return &Limit{in: in, n: n}, nil
}

// Columns implements Op.
func (l *Limit) Columns() []Col { return l.in.Columns() }

// Open implements Op.
func (l *Limit) Open() error {
	l.seen = 0
	return l.in.Open()
}

// Next implements Op.
func (l *Limit) Next() (storage.Row, bool) {
	if l.seen >= l.n {
		return nil, false
	}
	r, ok := l.in.Next()
	if !ok {
		return nil, false
	}
	l.seen++
	return r, true
}

// Close implements Op.
func (l *Limit) Close() { l.in.Close() }

// N returns the row cap.
func (l *Limit) N() int64 { return l.n }

// Input returns the limit's child operator.
func (l *Limit) Input() Op { return l.in }
