// Package exec implements the physical query operators of the relational
// engine: sequential scans, static row sources (used for delta batches),
// filters, projections, hash joins, index-nested-loop joins, and hash
// aggregation. Operators follow the Volcano pull model (Open/Next/Close)
// and charge their work to the shared storage.Stats counters, which is
// what makes the engine's costs measurable by the costmodel package.
package exec

import (
	"fmt"

	"abivm/internal/storage"
)

// Col describes one output column of an operator: the table alias it
// originated from ("" for computed columns), its name, and its type.
type Col struct {
	Table string
	Name  string
	Type  storage.Type
}

// String renders the column as alias.name.
func (c Col) String() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}

// FindCol returns the position of the column matching a (table, name)
// reference in cols: if table is "" the name must be unambiguous.
// It returns -1 when not found and -2 when ambiguous.
func FindCol(cols []Col, table, name string) int {
	found := -1
	for i, c := range cols {
		if c.Name != name {
			continue
		}
		if table != "" {
			if c.Table == table {
				return i
			}
			continue
		}
		if found >= 0 {
			return -2
		}
		found = i
	}
	return found
}

// Op is a physical operator. The contract is: Open before Next; Next
// returns rows until (nil, false); Close releases state; Open again
// restarts the operator from scratch.
type Op interface {
	Columns() []Col
	Open() error
	Next() (storage.Row, bool)
	Close()
}

// Scalar evaluates an expression over an input row.
type Scalar func(storage.Row) storage.Value

// Predicate decides whether an input row passes a filter.
type Predicate func(storage.Row) bool

// Collect runs op to completion and returns all rows.
func Collect(op Op) ([]storage.Row, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []storage.Row
	for {
		r, ok := op.Next()
		if !ok {
			return out, nil
		}
		out = append(out, r)
	}
}

// SeqScan reads all live rows of a table.
type SeqScan struct {
	table *storage.Table
	alias string
	cols  []Col
	cur   *storage.Cursor
}

// NewSeqScan returns a sequential scan over the table, exposing columns
// under the given alias.
func NewSeqScan(table *storage.Table, alias string) *SeqScan {
	schema := table.Schema()
	cols := make([]Col, len(schema.Columns))
	for i, c := range schema.Columns {
		cols[i] = Col{Table: alias, Name: c.Name, Type: c.Type}
	}
	return &SeqScan{table: table, alias: alias, cols: cols}
}

// Columns implements Op.
func (s *SeqScan) Columns() []Col { return s.cols }

// Open implements Op.
func (s *SeqScan) Open() error {
	s.cur = s.table.NewCursor()
	return nil
}

// Next implements Op.
func (s *SeqScan) Next() (storage.Row, bool) { return s.cur.Next() }

// Close implements Op.
func (s *SeqScan) Close() { s.cur = nil }

// RowsSource emits a fixed set of rows; the IVM engine uses it to feed
// delta batches into operator trees.
type RowsSource struct {
	cols  []Col
	rows  []storage.Row
	stats *storage.Stats
	pos   int
}

// NewRowsSource returns a source emitting rows with the given schema.
// stats may be nil.
func NewRowsSource(cols []Col, rows []storage.Row, stats *storage.Stats) *RowsSource {
	return &RowsSource{cols: cols, rows: rows, stats: stats}
}

// Columns implements Op.
func (s *RowsSource) Columns() []Col { return s.cols }

// Open implements Op.
func (s *RowsSource) Open() error {
	s.pos = 0
	return nil
}

// Next implements Op.
func (s *RowsSource) Next() (storage.Row, bool) {
	if s.pos >= len(s.rows) {
		return nil, false
	}
	r := s.rows[s.pos]
	s.pos++
	if s.stats != nil {
		s.stats.RowsScanned++
	}
	return r, true
}

// Close implements Op.
func (s *RowsSource) Close() {}

// Filter passes through rows satisfying a predicate.
type Filter struct {
	in   Op
	pred Predicate
}

// NewFilter wraps in with a predicate.
func NewFilter(in Op, pred Predicate) *Filter { return &Filter{in: in, pred: pred} }

// Columns implements Op.
func (f *Filter) Columns() []Col { return f.in.Columns() }

// Open implements Op.
func (f *Filter) Open() error { return f.in.Open() }

// Next implements Op.
func (f *Filter) Next() (storage.Row, bool) {
	for {
		r, ok := f.in.Next()
		if !ok {
			return nil, false
		}
		if f.pred(r) {
			return r, true
		}
	}
}

// Close implements Op.
func (f *Filter) Close() { f.in.Close() }

// Project computes output expressions over input rows.
type Project struct {
	in    Op
	cols  []Col
	exprs []Scalar
	stats *storage.Stats
}

// NewProject returns a projection; cols and exprs must align.
func NewProject(in Op, cols []Col, exprs []Scalar, stats *storage.Stats) (*Project, error) {
	if len(cols) != len(exprs) {
		return nil, fmt.Errorf("exec: project has %d columns but %d expressions", len(cols), len(exprs))
	}
	return &Project{in: in, cols: cols, exprs: exprs, stats: stats}, nil
}

// Columns implements Op.
func (p *Project) Columns() []Col { return p.cols }

// Open implements Op.
func (p *Project) Open() error { return p.in.Open() }

// Next implements Op.
func (p *Project) Next() (storage.Row, bool) {
	r, ok := p.in.Next()
	if !ok {
		return nil, false
	}
	out := make(storage.Row, len(p.exprs))
	for i, e := range p.exprs {
		out[i] = e(r)
	}
	if p.stats != nil {
		p.stats.RowsEmitted++
	}
	return out, true
}

// Close implements Op.
func (p *Project) Close() { p.in.Close() }
