package exec

import (
	"fmt"

	"abivm/internal/storage"
)

// HashJoin is an equi-join that builds a hash table on its right input
// and probes it with rows from the left input. Output rows are the left
// row concatenated with the right row. Building charges one HashBuildRows
// unit per build row plus one BatchSetups unit per (re)build; probing
// charges one HashProbeRows unit per probe.
type HashJoin struct {
	left, right         Op
	leftKeys, rightKeys []int
	cols                []Col
	stats               *storage.Stats

	table   map[string][]storage.Row
	curLeft storage.Row
	matches []storage.Row
	matchI  int
}

// NewHashJoin joins left and right on equality of the key columns.
func NewHashJoin(left, right Op, leftKeys, rightKeys []int, stats *storage.Stats) (*HashJoin, error) {
	if len(leftKeys) != len(rightKeys) || len(leftKeys) == 0 {
		return nil, fmt.Errorf("exec: hash join needs matching non-empty key lists, got %d and %d", len(leftKeys), len(rightKeys))
	}
	lc, rc := left.Columns(), right.Columns()
	for _, k := range leftKeys {
		if k < 0 || k >= len(lc) {
			return nil, fmt.Errorf("exec: hash join left key %d out of range", k)
		}
	}
	for _, k := range rightKeys {
		if k < 0 || k >= len(rc) {
			return nil, fmt.Errorf("exec: hash join right key %d out of range", k)
		}
	}
	cols := make([]Col, 0, len(lc)+len(rc))
	cols = append(cols, lc...)
	cols = append(cols, rc...)
	return &HashJoin{left: left, right: right, leftKeys: leftKeys, rightKeys: rightKeys, cols: cols, stats: stats}, nil
}

// Columns implements Op.
func (j *HashJoin) Columns() []Col { return j.cols }

// Open implements Op: it materializes the build side.
func (j *HashJoin) Open() error {
	if err := j.right.Open(); err != nil {
		return err
	}
	defer j.right.Close()
	j.table = make(map[string][]storage.Row)
	if j.stats != nil {
		j.stats.BatchSetups++
	}
	for {
		r, ok := j.right.Next()
		if !ok {
			break
		}
		key := joinKey(r, j.rightKeys)
		j.table[key] = append(j.table[key], r)
		if j.stats != nil {
			j.stats.HashBuildRows++
		}
	}
	j.curLeft = nil
	j.matches = nil
	j.matchI = 0
	return j.left.Open()
}

// Next implements Op.
func (j *HashJoin) Next() (storage.Row, bool) {
	for {
		if j.matchI < len(j.matches) {
			right := j.matches[j.matchI]
			j.matchI++
			out := make(storage.Row, 0, len(j.curLeft)+len(right))
			out = append(out, j.curLeft...)
			out = append(out, right...)
			if j.stats != nil {
				j.stats.RowsEmitted++
			}
			return out, true
		}
		l, ok := j.left.Next()
		if !ok {
			return nil, false
		}
		j.curLeft = l
		if j.stats != nil {
			j.stats.HashProbeRows++
		}
		j.matches = j.table[joinKey(l, j.leftKeys)]
		j.matchI = 0
	}
}

// Close implements Op.
func (j *HashJoin) Close() {
	j.left.Close()
	j.table = nil
	j.matches = nil
}

func joinKey(r storage.Row, keys []int) string {
	vals := make([]storage.Value, len(keys))
	for i, k := range keys {
		vals[i] = r[k]
	}
	return storage.EncodeKey(vals...)
}

// IndexLoopJoin is an index-nested-loop equi-join: for each left row it
// probes an index on the stored right table. This is the engine's cheap
// path — the source of the cost asymmetry the paper exploits: a delta
// batch joined through an index costs O(batch), while the same join
// without an index costs O(batch + |table|) via HashJoin's build.
type IndexLoopJoin struct {
	left     Op
	right    *storage.Table
	index    *storage.Index
	leftKeys []int
	cols     []Col

	curLeft storage.Row
	matches []storage.Row
	matchI  int
}

// NewIndexLoopJoin joins left rows against table rows whose index key
// equals the left key columns. index must be an index of table covering
// exactly the joined columns.
func NewIndexLoopJoin(left Op, table *storage.Table, alias string, index *storage.Index, leftKeys []int) (*IndexLoopJoin, error) {
	if index == nil {
		return nil, fmt.Errorf("exec: index loop join needs an index")
	}
	if len(leftKeys) != len(index.Cols) || len(leftKeys) == 0 {
		return nil, fmt.Errorf("exec: index loop join key arity %d does not match index arity %d", len(leftKeys), len(index.Cols))
	}
	lc := left.Columns()
	for _, k := range leftKeys {
		if k < 0 || k >= len(lc) {
			return nil, fmt.Errorf("exec: index loop join left key %d out of range", k)
		}
	}
	schema := table.Schema()
	cols := make([]Col, 0, len(lc)+len(schema.Columns))
	cols = append(cols, lc...)
	for _, c := range schema.Columns {
		cols = append(cols, Col{Table: alias, Name: c.Name, Type: c.Type})
	}
	return &IndexLoopJoin{left: left, right: table, index: index, leftKeys: leftKeys, cols: cols}, nil
}

// Columns implements Op.
func (j *IndexLoopJoin) Columns() []Col { return j.cols }

// Open implements Op.
func (j *IndexLoopJoin) Open() error {
	j.curLeft = nil
	j.matches = nil
	j.matchI = 0
	return j.left.Open()
}

// Next implements Op.
func (j *IndexLoopJoin) Next() (storage.Row, bool) {
	for {
		if j.matchI < len(j.matches) {
			right := j.matches[j.matchI]
			j.matchI++
			out := make(storage.Row, 0, len(j.curLeft)+len(right))
			out = append(out, j.curLeft...)
			out = append(out, right...)
			if st := j.right.Stats(); st != nil {
				st.RowsEmitted++
			}
			return out, true
		}
		l, ok := j.left.Next()
		if !ok {
			return nil, false
		}
		j.curLeft = l
		vals := make([]storage.Value, len(j.leftKeys))
		for i, k := range j.leftKeys {
			vals[i] = l[k]
		}
		j.matches = j.right.LookupVia(j.index, vals...)
		j.matchI = 0
	}
}

// Close implements Op.
func (j *IndexLoopJoin) Close() { j.left.Close() }
