package exec

import (
	"fmt"

	"abivm/internal/storage"
)

// IndexRangeScan reads the rows of a table whose ordered-index key falls
// within a range, in ascending key order. The planner chooses it for
// single-table comparison predicates over a column with an ordered
// index; the original predicate is still applied as a filter above, so
// the range is purely an access-path narrowing.
type IndexRangeScan struct {
	table  *storage.Table
	alias  string
	index  *storage.Index
	lo, hi *storage.Bound
	cols   []Col

	rows []storage.Row
	pos  int
}

// NewIndexRangeScan returns a range scan over the table via an ordered
// index; either bound may be nil (unbounded).
func NewIndexRangeScan(table *storage.Table, alias string, index *storage.Index, lo, hi *storage.Bound) (*IndexRangeScan, error) {
	if index == nil {
		return nil, fmt.Errorf("exec: index range scan needs an index")
	}
	if index.Kind != storage.OrderedIndex {
		return nil, fmt.Errorf("exec: index range scan needs an ordered index, got %q", index.Name)
	}
	schema := table.Schema()
	cols := make([]Col, len(schema.Columns))
	for i, c := range schema.Columns {
		cols[i] = Col{Table: alias, Name: c.Name, Type: c.Type}
	}
	return &IndexRangeScan{table: table, alias: alias, index: index, lo: lo, hi: hi, cols: cols}, nil
}

// Columns implements Op.
func (s *IndexRangeScan) Columns() []Col { return s.cols }

// Open implements Op: it materializes the matching rows in key order.
func (s *IndexRangeScan) Open() error {
	s.rows = s.rows[:0]
	s.table.ScanRangeVia(s.index, s.lo, s.hi, func(r storage.Row) bool {
		s.rows = append(s.rows, r)
		return true
	})
	s.pos = 0
	return nil
}

// Next implements Op.
func (s *IndexRangeScan) Next() (storage.Row, bool) {
	if s.pos >= len(s.rows) {
		return nil, false
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true
}

// Close implements Op.
func (s *IndexRangeScan) Close() { s.rows = nil }

// Describe renders the scan for EXPLAIN output.
func (s *IndexRangeScan) Describe() string {
	bound := func(b *storage.Bound, op, opExcl string) string {
		if b == nil {
			return ""
		}
		if b.Exclusive {
			return fmt.Sprintf(" key %s %s", opExcl, b.Value)
		}
		return fmt.Sprintf(" key %s %s", op, b.Value)
	}
	return fmt.Sprintf("%s AS %s via %s%s%s",
		s.table.Schema().Name, s.alias, s.index.Name,
		bound(s.lo, ">=", ">"), bound(s.hi, "<=", "<"))
}
