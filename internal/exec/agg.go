package exec

import (
	"fmt"
	"sort"

	"abivm/internal/storage"
)

// AggKind enumerates aggregate functions.
type AggKind uint8

// Supported aggregates.
const (
	AggMin AggKind = iota
	AggMax
	AggSum
	AggCount
	AggAvg
)

// String names the aggregate.
func (k AggKind) String() string {
	switch k {
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggSum:
		return "SUM"
	case AggCount:
		return "COUNT"
	case AggAvg:
		return "AVG"
	}
	return fmt.Sprintf("AggKind(%d)", uint8(k))
}

// AggSpec configures one aggregate output: the function and the input
// expression it consumes (nil for COUNT(*)).
type AggSpec struct {
	Kind AggKind
	Arg  Scalar
	Name string // output column name
}

// HashAgg groups input rows by the given key columns and computes
// aggregates. Output rows are the group-by values followed by the
// aggregate results, groups ordered by encoded group key for determinism.
// Every consumed row charges one AggUpdates unit per aggregate.
type HashAgg struct {
	in      Op
	groupBy []int
	specs   []AggSpec
	cols    []Col
	stats   *storage.Stats

	results []storage.Row
	pos     int
}

// aggState accumulates one aggregate within one group.
type aggState struct {
	count    int64
	sum      float64
	min, max storage.Value
	seen     bool
}

// NewHashAgg returns a grouping aggregate over in. groupBy lists input
// column positions; specs configure the aggregate outputs.
func NewHashAgg(in Op, groupBy []int, specs []AggSpec, stats *storage.Stats) (*HashAgg, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("exec: aggregate needs at least one spec")
	}
	inCols := in.Columns()
	cols := make([]Col, 0, len(groupBy)+len(specs))
	for _, g := range groupBy {
		if g < 0 || g >= len(inCols) {
			return nil, fmt.Errorf("exec: group-by column %d out of range", g)
		}
		cols = append(cols, inCols[g])
	}
	for _, sp := range specs {
		typ := storage.TFloat
		if sp.Kind == AggCount {
			typ = storage.TInt
		}
		name := sp.Name
		if name == "" {
			name = sp.Kind.String()
		}
		cols = append(cols, Col{Name: name, Type: typ})
	}
	return &HashAgg{in: in, groupBy: groupBy, specs: specs, cols: cols, stats: stats}, nil
}

// Columns implements Op.
func (a *HashAgg) Columns() []Col { return a.cols }

// Open implements Op: it consumes the entire input and materializes the
// grouped results.
func (a *HashAgg) Open() error {
	if err := a.in.Open(); err != nil {
		return err
	}
	defer a.in.Close()
	if a.stats != nil {
		a.stats.BatchSetups++
	}
	groups := map[string][]*aggState{}
	groupRows := map[string]storage.Row{}
	for {
		r, ok := a.in.Next()
		if !ok {
			break
		}
		keyVals := make([]storage.Value, len(a.groupBy))
		for i, g := range a.groupBy {
			keyVals[i] = r[g]
		}
		key := storage.EncodeKey(keyVals...)
		states, ok := groups[key]
		if !ok {
			states = make([]*aggState, len(a.specs))
			for i := range states {
				states[i] = &aggState{}
			}
			groups[key] = states
			groupRows[key] = keyVals
		}
		for i, sp := range a.specs {
			states[i].update(sp, r)
			if a.stats != nil {
				a.stats.AggUpdates++
			}
		}
	}
	// Grand aggregate with no groups and no input: one row of "empty"
	// aggregates (COUNT 0, others NULL-ish zero values), matching SQL.
	if len(groups) == 0 && len(a.groupBy) == 0 {
		states := make([]*aggState, len(a.specs))
		for i := range states {
			states[i] = &aggState{}
		}
		groups[""] = states
		groupRows[""] = nil
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	a.results = a.results[:0]
	for _, k := range keys {
		row := make(storage.Row, 0, len(a.groupBy)+len(a.specs))
		row = append(row, groupRows[k]...)
		for i, sp := range a.specs {
			row = append(row, groups[k][i].result(sp))
		}
		a.results = append(a.results, row)
	}
	a.pos = 0
	return nil
}

// Next implements Op.
func (a *HashAgg) Next() (storage.Row, bool) {
	if a.pos >= len(a.results) {
		return nil, false
	}
	r := a.results[a.pos]
	a.pos++
	return r, true
}

// Close implements Op.
func (a *HashAgg) Close() { a.results = nil }

func (st *aggState) update(sp AggSpec, r storage.Row) {
	st.count++
	if sp.Kind == AggCount {
		return
	}
	v := sp.Arg(r)
	switch sp.Kind {
	case AggSum, AggAvg:
		st.sum += v.Float()
	case AggMin:
		if !st.seen || storage.Compare(v, st.min) < 0 {
			st.min = v
		}
	case AggMax:
		if !st.seen || storage.Compare(v, st.max) > 0 {
			st.max = v
		}
	}
	st.seen = true
}

func (st *aggState) result(sp AggSpec) storage.Value {
	switch sp.Kind {
	case AggCount:
		return storage.I(st.count)
	case AggSum:
		return storage.F(st.sum)
	case AggAvg:
		if st.count == 0 {
			return storage.F(0)
		}
		return storage.F(st.sum / float64(st.count))
	case AggMin:
		if !st.seen {
			return storage.F(0)
		}
		return st.min
	case AggMax:
		if !st.seen {
			return storage.F(0)
		}
		return st.max
	}
	return storage.Value{}
}
