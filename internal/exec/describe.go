package exec

import (
	"fmt"
	"strings"
)

// This file holds the structural accessors and Describe methods the plan
// explainer renders. They expose tree shape only, never mutable state.

// Input returns the filter's child operator.
func (f *Filter) Input() Op { return f.in }

// Input returns the projection's child operator.
func (p *Project) Input() Op { return p.in }

// Input returns the aggregate's child operator.
func (a *HashAgg) Input() Op { return a.in }

// Describe renders the aggregate's grouping and functions.
func (a *HashAgg) Describe() string {
	groups := make([]string, len(a.groupBy))
	inCols := a.in.Columns()
	for i, g := range a.groupBy {
		groups[i] = inCols[g].String()
	}
	aggs := make([]string, len(a.specs))
	for i, sp := range a.specs {
		aggs[i] = sp.Kind.String()
	}
	return fmt.Sprintf("group=[%s] aggs=[%s]", strings.Join(groups, ", "), strings.Join(aggs, ", "))
}

// Left returns the probe side of the hash join.
func (j *HashJoin) Left() Op { return j.left }

// Right returns the build side of the hash join.
func (j *HashJoin) Right() Op { return j.right }

// Describe renders the hash join's key columns.
func (j *HashJoin) Describe() string {
	lc, rc := j.left.Columns(), j.right.Columns()
	pairs := make([]string, len(j.leftKeys))
	for i := range j.leftKeys {
		pairs[i] = lc[j.leftKeys[i]].String() + "=" + rc[j.rightKeys[i]].String()
	}
	return "on " + strings.Join(pairs, ", ")
}

// Left returns the outer (driving) input of the index join.
func (j *IndexLoopJoin) Left() Op { return j.left }

// Describe renders the index join's inner table and index.
func (j *IndexLoopJoin) Describe() string {
	lc := j.left.Columns()
	keys := make([]string, len(j.leftKeys))
	for i, k := range j.leftKeys {
		keys[i] = lc[k].String()
	}
	return fmt.Sprintf("inner=%s via %s on [%s]",
		j.right.Schema().Name, j.index.Name, strings.Join(keys, ", "))
}

// Describe renders the scan's table and alias.
func (s *SeqScan) Describe() string {
	name := s.table.Schema().Name
	if s.alias != name {
		return name + " AS " + s.alias
	}
	return name
}
