package exec

import (
	"strings"
	"testing"

	"abivm/internal/storage"
)

func TestAggKindString(t *testing.T) {
	cases := map[AggKind]string{
		AggMin: "MIN", AggMax: "MAX", AggSum: "SUM", AggCount: "COUNT", AggAvg: "AVG",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
	if got := AggKind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestColString(t *testing.T) {
	if got := (Col{Table: "s", Name: "k"}).String(); got != "s.k" {
		t.Errorf("qualified = %q", got)
	}
	if got := (Col{Name: "k"}).String(); got != "k" {
		t.Errorf("bare = %q", got)
	}
}

func TestDescribeAccessors(t *testing.T) {
	supp := suppliers(t)
	nat := nations(t)
	if err := nat.CreateIndex("pk", storage.HashIndex, "nationkey"); err != nil {
		t.Fatal(err)
	}

	scan := NewSeqScan(supp, "supplier") // alias == table name
	if got := scan.Describe(); got != "supplier" {
		t.Errorf("SeqScan.Describe = %q", got)
	}
	aliased := NewSeqScan(supp, "s")
	if got := aliased.Describe(); got != "supplier AS s" {
		t.Errorf("aliased = %q", got)
	}

	f := NewFilter(aliased, func(storage.Row) bool { return true })
	if f.Input() != aliased {
		t.Error("Filter.Input mismatch")
	}

	hj, err := NewHashJoin(aliased, NewSeqScan(nat, "n"), []int{2}, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hj.Left() != aliased || hj.Right() == nil {
		t.Error("HashJoin accessors")
	}
	if got := hj.Describe(); !strings.Contains(got, "s.nationkey=n.nationkey") {
		t.Errorf("HashJoin.Describe = %q", got)
	}

	ilj, err := NewIndexLoopJoin(aliased, nat, "n", nat.IndexOn("nationkey"), []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if ilj.Left() != aliased {
		t.Error("IndexLoopJoin.Left mismatch")
	}
	if got := ilj.Describe(); !strings.Contains(got, "inner=nation via pk") {
		t.Errorf("IndexLoopJoin.Describe = %q", got)
	}

	agg, err := NewHashAgg(aliased, []int{2}, []AggSpec{{Kind: AggCount, Name: "c"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Input() != aliased {
		t.Error("HashAgg.Input mismatch")
	}
	if got := agg.Describe(); !strings.Contains(got, "group=[s.nationkey]") || !strings.Contains(got, "aggs=[COUNT]") {
		t.Errorf("HashAgg.Describe = %q", got)
	}

	srt, err := NewSort(aliased, []SortKey{{Col: 0, Desc: true}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if srt.Input() != aliased {
		t.Error("Sort.Input mismatch")
	}
	if got := srt.Describe(); !strings.Contains(got, "s.suppkey DESC") {
		t.Errorf("Sort.Describe = %q", got)
	}

	lim, err := NewLimit(srt, 4)
	if err != nil {
		t.Fatal(err)
	}
	if lim.N() != 4 || lim.Input() != srt {
		t.Error("Limit accessors")
	}
}
