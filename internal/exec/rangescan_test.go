package exec

import (
	"strings"
	"testing"

	"abivm/internal/storage"
)

func rangeTable(t *testing.T) *storage.Table {
	t.Helper()
	tbl := mkTable(t, "m",
		[]storage.Column{
			{Name: "k", Type: storage.TInt},
			{Name: "score", Type: storage.TFloat},
		}, "k", nil)
	if err := tbl.CreateIndex("score_ord", storage.OrderedIndex, "score"); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 20; i++ {
		if err := tbl.Insert(storage.Row{storage.I(i), storage.F(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestIndexRangeScan(t *testing.T) {
	tbl := rangeTable(t)
	scan, err := NewIndexRangeScan(tbl, "m", tbl.IndexOn("score"),
		&storage.Bound{Value: storage.F(5)},
		&storage.Bound{Value: storage.F(10), Exclusive: true})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(scan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 { // scores 5..9
		t.Fatalf("rows = %d: %v", len(rows), rows)
	}
	for i := 1; i < len(rows); i++ {
		if storage.Compare(rows[i-1][1], rows[i][1]) > 0 {
			t.Fatal("not in key order")
		}
	}
	// Reopen restarts.
	rows, err = Collect(scan)
	if err != nil || len(rows) != 5 {
		t.Fatalf("after reopen: %d rows, err %v", len(rows), err)
	}
}

func TestIndexRangeScanUnbounded(t *testing.T) {
	tbl := rangeTable(t)
	scan, err := NewIndexRangeScan(tbl, "m", tbl.IndexOn("score"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(scan)
	if err != nil || len(rows) != 20 {
		t.Fatalf("%d rows, err %v", len(rows), err)
	}
}

func TestIndexRangeScanValidation(t *testing.T) {
	tbl := rangeTable(t)
	if _, err := NewIndexRangeScan(tbl, "m", nil, nil, nil); err == nil {
		t.Fatal("nil index accepted")
	}
	if err := tbl.CreateIndex("k_hash", storage.HashIndex, "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := NewIndexRangeScan(tbl, "m", tbl.IndexOn("k"), nil, nil); err == nil {
		t.Fatal("hash index accepted")
	}
}

func TestIndexRangeScanDescribe(t *testing.T) {
	tbl := rangeTable(t)
	scan, err := NewIndexRangeScan(tbl, "alias", tbl.IndexOn("score"),
		&storage.Bound{Value: storage.F(2), Exclusive: true},
		&storage.Bound{Value: storage.F(7)})
	if err != nil {
		t.Fatal(err)
	}
	d := scan.Describe()
	for _, want := range []string{"m AS alias", "score_ord", "key > 2", "key <= 7"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe %q missing %q", d, want)
		}
	}
}
