package exec

import (
	"testing"

	"abivm/internal/storage"
)

func sortInput(stats *storage.Stats) *RowsSource {
	cols := []Col{
		{Name: "k", Type: storage.TInt},
		{Name: "v", Type: storage.TString},
	}
	rows := []storage.Row{
		{storage.I(3), storage.S("c")},
		{storage.I(1), storage.S("a")},
		{storage.I(2), storage.S("b")},
		{storage.I(1), storage.S("z")},
	}
	return NewRowsSource(cols, rows, stats)
}

func TestSortAscendingStable(t *testing.T) {
	stats := &storage.Stats{}
	s, err := NewSort(sortInput(stats), []SortKey{{Col: 0}}, stats)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	wantK := []int64{1, 1, 2, 3}
	wantV := []string{"a", "z", "b", "c"} // stable: "a" before "z"
	for i := range wantK {
		if rows[i][0].Int() != wantK[i] || rows[i][1].Str() != wantV[i] {
			t.Fatalf("row %d = %v", i, rows[i])
		}
	}
	if stats.RowsEmitted == 0 || stats.BatchSetups == 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestSortDescendingAndMultiKey(t *testing.T) {
	s, err := NewSort(sortInput(nil), []SortKey{{Col: 0, Desc: true}, {Col: 1, Desc: true}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	wantV := []string{"c", "b", "z", "a"}
	for i := range wantV {
		if rows[i][1].Str() != wantV[i] {
			t.Fatalf("row %d = %v", i, rows[i])
		}
	}
}

func TestSortValidation(t *testing.T) {
	if _, err := NewSort(sortInput(nil), nil, nil); err == nil {
		t.Fatal("no keys accepted")
	}
	if _, err := NewSort(sortInput(nil), []SortKey{{Col: 9}}, nil); err == nil {
		t.Fatal("out-of-range key accepted")
	}
}

func TestSortReopen(t *testing.T) {
	s, err := NewSort(sortInput(nil), []SortKey{{Col: 0}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Collect(s)
	if err != nil || len(second) != len(first) {
		t.Fatalf("reopen: %d rows, err %v", len(second), err)
	}
}

func TestLimit(t *testing.T) {
	l, err := NewLimit(sortInput(nil), 2)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(l)
	if err != nil || len(rows) != 2 {
		t.Fatalf("%d rows, err %v", len(rows), err)
	}
	// Reopen resets the counter.
	rows, err = Collect(l)
	if err != nil || len(rows) != 2 {
		t.Fatalf("reopen: %d rows, err %v", len(rows), err)
	}
	zero, err := NewLimit(sortInput(nil), 0)
	if err != nil {
		t.Fatal(err)
	}
	rows, err = Collect(zero)
	if err != nil || len(rows) != 0 {
		t.Fatalf("limit 0: %d rows", len(rows))
	}
	if _, err := NewLimit(sortInput(nil), -1); err == nil {
		t.Fatal("negative limit accepted")
	}
}
