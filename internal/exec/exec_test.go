package exec

import (
	"testing"

	"abivm/internal/storage"
)

func mkTable(t *testing.T, name string, cols []storage.Column, key string, rows []storage.Row) *storage.Table {
	t.Helper()
	schema, err := storage.NewSchema(name, cols, key)
	if err != nil {
		t.Fatal(err)
	}
	tbl := storage.NewTable(schema, nil)
	for _, r := range rows {
		if err := tbl.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func suppliers(t *testing.T) *storage.Table {
	return mkTable(t, "supplier",
		[]storage.Column{
			{Name: "suppkey", Type: storage.TInt},
			{Name: "name", Type: storage.TString},
			{Name: "nationkey", Type: storage.TInt},
		}, "suppkey",
		[]storage.Row{
			{storage.I(1), storage.S("alpha"), storage.I(10)},
			{storage.I(2), storage.S("beta"), storage.I(10)},
			{storage.I(3), storage.S("gamma"), storage.I(20)},
		})
}

func nations(t *testing.T) *storage.Table {
	return mkTable(t, "nation",
		[]storage.Column{
			{Name: "nationkey", Type: storage.TInt},
			{Name: "nname", Type: storage.TString},
		}, "nationkey",
		[]storage.Row{
			{storage.I(10), storage.S("FRANCE")},
			{storage.I(20), storage.S("JAPAN")},
		})
}

func TestSeqScan(t *testing.T) {
	scan := NewSeqScan(suppliers(t), "s")
	cols := scan.Columns()
	if len(cols) != 3 || cols[0].Table != "s" || cols[0].Name != "suppkey" {
		t.Fatalf("columns = %v", cols)
	}
	rows, err := Collect(scan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Reopening restarts the scan.
	rows, err = Collect(scan)
	if err != nil || len(rows) != 3 {
		t.Fatalf("second collect: %d rows, err %v", len(rows), err)
	}
}

func TestRowsSource(t *testing.T) {
	stats := &storage.Stats{}
	src := NewRowsSource([]Col{{Name: "x", Type: storage.TInt}},
		[]storage.Row{{storage.I(1)}, {storage.I(2)}}, stats)
	rows, err := Collect(src)
	if err != nil || len(rows) != 2 {
		t.Fatalf("%d rows, err %v", len(rows), err)
	}
	if stats.RowsScanned != 2 {
		t.Fatalf("RowsScanned = %d", stats.RowsScanned)
	}
	// Reopen restarts.
	rows, _ = Collect(src)
	if len(rows) != 2 {
		t.Fatalf("after reopen: %d rows", len(rows))
	}
}

func TestFilter(t *testing.T) {
	scan := NewSeqScan(suppliers(t), "s")
	f := NewFilter(scan, func(r storage.Row) bool { return r[2].Int() == 10 })
	rows, err := Collect(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("filtered rows = %d", len(rows))
	}
}

func TestProject(t *testing.T) {
	stats := &storage.Stats{}
	scan := NewSeqScan(suppliers(t), "s")
	p, err := NewProject(scan,
		[]Col{{Name: "double", Type: storage.TInt}},
		[]Scalar{func(r storage.Row) storage.Value { return storage.I(r[0].Int() * 2) }},
		stats)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0][0].Int() != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if stats.RowsEmitted != 3 {
		t.Fatalf("RowsEmitted = %d", stats.RowsEmitted)
	}
	if _, err := NewProject(scan, []Col{{Name: "x"}}, nil, nil); err == nil {
		t.Fatal("mismatched project accepted")
	}
}

func TestHashJoin(t *testing.T) {
	stats := &storage.Stats{}
	left := NewSeqScan(suppliers(t), "s")
	right := NewSeqScan(nations(t), "n")
	j, err := NewHashJoin(left, right, []int{2}, []int{0}, stats)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("join rows = %d", len(rows))
	}
	cols := j.Columns()
	if len(cols) != 5 || cols[3].Table != "n" {
		t.Fatalf("join columns = %v", cols)
	}
	for _, r := range rows {
		if r[2].Int() != r[3].Int() {
			t.Fatalf("join key mismatch in %v", r)
		}
	}
	if stats.HashBuildRows != 2 || stats.HashProbeRows != 3 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.BatchSetups != 1 {
		t.Fatalf("BatchSetups = %d", stats.BatchSetups)
	}
}

func TestHashJoinValidation(t *testing.T) {
	left := NewSeqScan(suppliers(t), "s")
	right := NewSeqScan(nations(t), "n")
	if _, err := NewHashJoin(left, right, nil, nil, nil); err == nil {
		t.Fatal("empty keys accepted")
	}
	if _, err := NewHashJoin(left, right, []int{99}, []int{0}, nil); err == nil {
		t.Fatal("out-of-range left key accepted")
	}
	if _, err := NewHashJoin(left, right, []int{0}, []int{99}, nil); err == nil {
		t.Fatal("out-of-range right key accepted")
	}
}

func TestIndexLoopJoin(t *testing.T) {
	supp := suppliers(t)
	nat := nations(t)
	if err := nat.CreateIndex("pk", storage.HashIndex, "nationkey"); err != nil {
		t.Fatal(err)
	}
	ix := nat.IndexOn("nationkey")
	left := NewSeqScan(supp, "s")
	j, err := NewIndexLoopJoin(left, nat, "n", ix, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("join rows = %d", len(rows))
	}
	for _, r := range rows {
		if r[2].Int() != r[3].Int() {
			t.Fatalf("join key mismatch in %v", r)
		}
	}
	// Probes counted on the inner table.
	if nat.Stats().IndexProbes == 0 {
		t.Fatal("no index probes recorded")
	}
}

func TestIndexLoopJoinValidation(t *testing.T) {
	nat := nations(t)
	left := NewSeqScan(suppliers(t), "s")
	if _, err := NewIndexLoopJoin(left, nat, "n", nil, []int{2}); err == nil {
		t.Fatal("nil index accepted")
	}
	_ = nat.CreateIndex("pk", storage.HashIndex, "nationkey")
	ix := nat.IndexOn("nationkey")
	if _, err := NewIndexLoopJoin(left, nat, "n", ix, []int{2, 0}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, err := NewIndexLoopJoin(left, nat, "n", ix, []int{77}); err == nil {
		t.Fatal("out-of-range key accepted")
	}
}

func TestHashAggGrandTotal(t *testing.T) {
	scan := NewSeqScan(suppliers(t), "s")
	agg, err := NewHashAgg(scan, nil, []AggSpec{
		{Kind: AggCount, Name: "cnt"},
		{Kind: AggMin, Arg: func(r storage.Row) storage.Value { return r[0] }, Name: "min_k"},
		{Kind: AggMax, Arg: func(r storage.Row) storage.Value { return r[0] }, Name: "max_k"},
		{Kind: AggSum, Arg: func(r storage.Row) storage.Value { return r[0] }, Name: "sum_k"},
		{Kind: AggAvg, Arg: func(r storage.Row) storage.Value { return r[0] }, Name: "avg_k"},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("agg rows = %d", len(rows))
	}
	r := rows[0]
	if r[0].Int() != 3 || r[1].Int() != 1 || r[2].Int() != 3 || r[3].Float() != 6 || r[4].Float() != 2 {
		t.Fatalf("agg row = %v", r)
	}
}

func TestHashAggGroupBy(t *testing.T) {
	scan := NewSeqScan(suppliers(t), "s")
	agg, err := NewHashAgg(scan, []int{2}, []AggSpec{{Kind: AggCount, Name: "cnt"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("groups = %d", len(rows))
	}
	// Deterministic order by encoded group key: nation 10 before 20.
	if rows[0][0].Int() != 10 || rows[0][1].Int() != 2 {
		t.Fatalf("group 0 = %v", rows[0])
	}
	if rows[1][0].Int() != 20 || rows[1][1].Int() != 1 {
		t.Fatalf("group 1 = %v", rows[1])
	}
}

func TestHashAggEmptyInput(t *testing.T) {
	src := NewRowsSource([]Col{{Name: "x", Type: storage.TInt}}, nil, nil)
	// Grand aggregate over empty input: one row with COUNT 0.
	agg, err := NewHashAgg(src, nil, []AggSpec{{Kind: AggCount, Name: "cnt"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int() != 0 {
		t.Fatalf("rows = %v", rows)
	}
	// Grouped aggregate over empty input: no rows.
	agg2, _ := NewHashAgg(src, []int{0}, []AggSpec{{Kind: AggCount, Name: "cnt"}}, nil)
	rows, err = Collect(agg2)
	if err != nil || len(rows) != 0 {
		t.Fatalf("grouped empty: %v, %v", rows, err)
	}
}

func TestHashAggValidation(t *testing.T) {
	src := NewRowsSource([]Col{{Name: "x", Type: storage.TInt}}, nil, nil)
	if _, err := NewHashAgg(src, nil, nil, nil); err == nil {
		t.Fatal("no specs accepted")
	}
	if _, err := NewHashAgg(src, []int{5}, []AggSpec{{Kind: AggCount}}, nil); err == nil {
		t.Fatal("bad group column accepted")
	}
}

func TestFindCol(t *testing.T) {
	cols := []Col{
		{Table: "s", Name: "k", Type: storage.TInt},
		{Table: "n", Name: "k", Type: storage.TInt},
		{Table: "n", Name: "name", Type: storage.TString},
	}
	if got := FindCol(cols, "s", "k"); got != 0 {
		t.Errorf("qualified = %d", got)
	}
	if got := FindCol(cols, "", "name"); got != 2 {
		t.Errorf("unqualified unique = %d", got)
	}
	if got := FindCol(cols, "", "k"); got != -2 {
		t.Errorf("ambiguous = %d", got)
	}
	if got := FindCol(cols, "", "zzz"); got != -1 {
		t.Errorf("missing = %d", got)
	}
	if got := FindCol(cols, "x", "k"); got != -1 {
		t.Errorf("wrong table = %d", got)
	}
}
