// Package mapord exercises the maporder analyzer: map ranges whose
// iteration order escapes, next to the blessed collect-then-sort idiom
// and other order-independent near-misses.
package mapord

import (
	"fmt"
	"io"
	"sort"
)

// collectSorted is the blessed idiom: the collected slice is sorted
// before anything can observe it.
func collectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func collectUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "without sorting out afterwards"
	}
	return out
}

func writeEach(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "calls Fprintf"
	}
}

func sendEach(ch chan string, m map[string]bool) {
	for k := range m {
		ch <- k // want "channel send"
	}
}

func visit(m map[int]string, fn func(string)) {
	for _, v := range m {
		fn(v) // want "invokes callback fn"
	}
}

func firstMatch(m map[string]int, want int) string {
	found := ""
	for k, v := range m {
		if v == want {
			found = k // want "assigns an iteration-derived value to found"
			break
		}
	}
	return found
}

func sumFloats(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want "floating-point accumulation"
	}
	return total
}

func returnDerived(m map[string]int) string {
	for k := range m {
		return k // want "returns a value derived from map iteration"
	}
	return ""
}

// sumInts is order-independent: integer addition commutes exactly.
func sumInts(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// invert writes each key once; per-key map writes cannot race on order.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// sliceOutput ranges over a slice, not a map: order is the slice's.
func sliceOutput(w io.Writer, xs []int) {
	for _, x := range xs {
		fmt.Fprintln(w, x)
	}
}

// existence returns a constant, the same whichever element is seen
// first.
func existence(m map[string]int, key string) bool {
	for k := range m {
		if k == key {
			return true
		}
	}
	return false
}

// suppressed demonstrates the lint:ignore directive.
func suppressed(w io.Writer, m map[string]int) {
	for k := range m {
		//lint:ignore maporder debug dump, order intentionally irrelevant
		fmt.Fprintln(w, k)
	}
}
