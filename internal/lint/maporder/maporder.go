// Package maporder flags range loops over maps whose iteration order
// escapes into observable state. Go randomizes map iteration on purpose;
// every replay-determinism proof in this repo (faulted-vs-baseline chaos
// comparisons, sharded-vs-serial byte identity) silently breaks the
// moment a map range feeds notification order, WAL contents, writer
// output, a visitor callback, or a first/last-match selection.
//
// The one blessed idiom is collect-then-sort: a loop whose only effect
// is appending to a slice is clean when that slice is passed to a
// sort.* / slices.Sort* call later in the same block — iteration order
// is repaired before it can be observed. Everything else that lets the
// order out is reported:
//
//   - channel sends inside the loop body
//   - calls to output-shaped functions (Write*, Print*, Fprint*,
//     Notify*, Publish*, Send*, Emit*, Record*, Log*, Append*)
//   - invoking a function-typed variable or parameter (visitor
//     callbacks observe the order they are called in)
//   - appends to slices declared outside the loop that are never sorted
//   - assignments of iteration-derived values to outer variables
//     (first-match-wins and last-match-wins selections), returns of
//     iteration-derived values, and floating-point accumulation
//     (summation order changes the last ulp)
//
// Per-key map writes (m2[k] = ... keyed by the iteration variable) and
// integer accumulation are commutative and stay untouched.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"abivm/internal/lint"
)

// Analyzer is the maporder check.
var Analyzer = &lint.Analyzer{
	Name: "maporder",
	Doc: "flags range-over-map loops whose iteration order escapes into " +
		"observable state (sends, writes, callbacks, unsorted collects)",
	Run: run,
}

// sinkName matches function and method names whose call makes iteration
// order observable: anything that writes, notifies, logs, or forwards.
var sinkName = regexp.MustCompile(`^(Write|Print|Fprint|Notify|Publish|Send|Emit|Record|Log|Append|Enqueue|Push)`)

func run(pass *lint.Pass) error {
	info := pass.Pkg.TypesInfo
	lint.InspectFuncDecls(pass.Pkg, func(_ *ast.File, decl *ast.FuncDecl) {
		inspectBlocks(decl.Body, func(stmts []ast.Stmt) {
			for i, s := range stmts {
				rs, ok := s.(*ast.RangeStmt)
				if !ok || !isMapType(info, rs.X) {
					continue
				}
				checkRange(pass, rs, stmts[i+1:])
			}
		})
	})
	return nil
}

// inspectBlocks visits every statement list in the body (blocks, case
// clauses, comm clauses), so range statements are seen next to the
// statements that follow them — needed to recognize the sort-after idiom.
func inspectBlocks(body *ast.BlockStmt, fn func([]ast.Stmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			fn(n.List)
		case *ast.CaseClause:
			fn(n.Body)
		case *ast.CommClause:
			fn(n.Body)
		}
		return true
	})
}

// collect is one append-to-outer-slice sink, redeemable by a later sort.
type collect struct {
	obj types.Object // the slice variable appended to
	pos token.Pos
}

func checkRange(pass *lint.Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	info := pass.Pkg.TypesInfo
	loopVars := rangeVarObjects(info, rs)
	var collects []collect

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// A nested map range runs its own checkRange via the outer
			// inspectBlocks walk; don't double-report its body here.
			if n != rs && isMapType(info, n.X) {
				return false
			}
		case *ast.SendStmt:
			pass.Reportf(n.Arrow, "channel send inside a range over a map: receive order depends on map iteration order")
		case *ast.CallExpr:
			checkCall(pass, info, n)
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if referencesAny(info, res, loopVars) {
					pass.Reportf(res.Pos(), "returns a value derived from map iteration: which element wins depends on iteration order")
					break
				}
			}
		case *ast.AssignStmt:
			checkAssign(pass, info, rs, n, loopVars, &collects)
		}
		return true
	})

	// The collect-then-sort idiom: every collected slice must be sorted
	// in the statements that follow the loop.
	for _, c := range collects {
		if !sortedAfter(info, rest, c.obj) {
			pass.Reportf(c.pos, "append inside a range over a map without sorting %s afterwards: element order depends on map iteration order", c.obj.Name())
		}
	}
}

// checkCall reports calls that make iteration order observable: sinks by
// name, and invocations of function-typed variables (visitor callbacks).
func checkCall(pass *lint.Pass, info *types.Info, call *ast.CallExpr) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if sinkName.MatchString(fun.Sel.Name) {
			pass.Reportf(call.Pos(), "calls %s inside a range over a map: output order depends on map iteration order", fun.Sel.Name)
		}
	case *ast.Ident:
		obj := info.Uses[fun]
		if v, ok := obj.(*types.Var); ok {
			if _, isFunc := v.Type().Underlying().(*types.Signature); isFunc {
				pass.Reportf(call.Pos(), "invokes callback %s inside a range over a map: it observes map iteration order", fun.Name)
			}
		}
	}
}

// isBuiltin reports whether id resolves to a universe-scope builtin
// (append has no Uses entry pointing at a package object).
func isBuiltin(info *types.Info, id *ast.Ident) bool {
	obj := info.Uses[id]
	if obj == nil {
		return true
	}
	_, ok := obj.(*types.Builtin)
	return ok
}

// checkAssign classifies assignments in the loop body. Writes to
// variables declared inside the loop, per-key map writes, and integer
// accumulation are order-independent; appends to outer slices become
// redeemable collects; everything else that stores an iteration-derived
// value into outer state is reported.
func checkAssign(pass *lint.Pass, info *types.Info, rs *ast.RangeStmt, as *ast.AssignStmt, loopVars map[types.Object]bool, collects *[]collect) {
	for i, lhs := range as.Lhs {
		obj := assignTarget(info, lhs)
		if obj == nil || declaredWithin(obj, rs) || loopVars[obj] {
			continue
		}
		// m2[k] = v keyed by the iteration variable touches each key
		// once; order cannot matter.
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && referencesAny(info, ix.Index, loopVars) {
			continue
		}
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		} else if len(as.Rhs) == 1 {
			rhs = as.Rhs[0]
		}
		if rhs != nil {
			if call, isCall := ast.Unparen(rhs).(*ast.CallExpr); isCall {
				if id, isID := ast.Unparen(call.Fun).(*ast.Ident); isID && id.Name == "append" && isBuiltin(info, id) {
					*collects = append(*collects, collect{obj: obj, pos: as.Pos()})
					continue
				}
			}
		}
		if as.Tok != token.ASSIGN && isInteger(obj.Type()) {
			continue // n += 1, total |= bits: commutative on integers
		}
		if as.Tok != token.ASSIGN && isFloat(obj.Type()) {
			pass.Reportf(as.Pos(), "floating-point accumulation over a map: summation order changes the result in the last ulp; collect and sort first")
			continue
		}
		if rhs != nil && referencesAny(info, rhs, loopVars) {
			pass.Reportf(as.Pos(), "assigns an iteration-derived value to %s declared outside the loop: which element wins depends on map iteration order", obj.Name())
		}
	}
}

// assignTarget resolves the variable an assignment ultimately stores
// into: the ident itself, the index base (s[i] = v stores into s), or
// the selector base (x.f = v stores into x).
func assignTarget(info *types.Info, lhs ast.Expr) types.Object {
	for {
		switch e := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if obj := info.Defs[e]; obj != nil {
				return obj
			}
			return info.Uses[e]
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether obj is declared inside the range
// statement (loop-local state resets every iteration).
func declaredWithin(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() >= rs.Pos() && obj.Pos() < rs.End()
}

// rangeVarObjects returns the key/value loop variable objects.
func rangeVarObjects(info *types.Info, rs *ast.RangeStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := e.(*ast.Ident)
		if !ok {
			continue
		}
		if obj := info.Defs[id]; obj != nil {
			out[obj] = true
		} else if obj := info.Uses[id]; obj != nil {
			out[obj] = true
		}
	}
	return out
}

// referencesAny reports whether expr mentions any of the objects.
func referencesAny(info *types.Info, expr ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objs[info.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

// sortedAfter reports whether one of the trailing statements sorts obj:
// a call to sort.* or slices.Sort* mentioning obj in its arguments.
func sortedAfter(info *types.Info, rest []ast.Stmt, obj types.Object) bool {
	objs := map[types.Object]bool{obj: true}
	for _, s := range rest {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			if pkgName, isPkg := info.Uses[pkg].(*types.PkgName); isPkg {
				path := pkgName.Imported().Path()
				if path == "sort" || path == "slices" {
					for _, arg := range call.Args {
						if referencesAny(info, arg, objs) {
							found = true
						}
					}
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func isMapType(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
