package maporder_test

import (
	"testing"

	"abivm/internal/lint"
	"abivm/internal/lint/maporder"
)

func TestMapOrderFixture(t *testing.T) {
	lint.RunFixture(t, maporder.Analyzer, "testdata/src/mapord")
}
