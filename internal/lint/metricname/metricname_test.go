package metricname

import (
	"testing"

	"abivm/internal/lint"
)

func TestMetricNameFixture(t *testing.T) {
	lint.RunFixture(t, Analyzer, "testdata/src/metricky")
}
