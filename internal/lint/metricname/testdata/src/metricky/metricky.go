// Package metricky is a metricname fixture: dynamic metric names in
// every registration method are positives; constant names — including
// ones built from constants and carrying variable label values — are the
// documented negative space.
package metricky

import (
	"fmt"

	"abivm/internal/obs"
)

const prefix = "metricky_"

func dynamicNames(r *obs.Registry, which string) {
	r.Counter("metricky_" + which)                            // want "not a compile-time constant"
	r.Gauge(fmt.Sprintf("metricky_%s_depth", which))          // want "not a compile-time constant"
	r.Histogram(which, obs.LatencyBuckets())                  // want "not a compile-time constant"
	r.Counter(prefix+which, "site", "drain")                  // want "not a compile-time constant"
	(r.Gauge)(fmt.Sprint("g", 1))                             // want "not a compile-time constant"
	r.Counter(func() string { return "metricky_fn_total" }()) // want "not a compile-time constant"
}

func constantNames(r *obs.Registry, sub string) {
	const local = "metricky_local_total"
	r.Counter("metricky_steps_total")
	r.Counter(prefix + "drains_total") // constant concatenation folds at compile time
	r.Gauge(local)
	r.Histogram("metricky_latency_seconds", obs.LatencyBuckets())
	// Variable label values are the supported parameterization.
	r.Counter("metricky_sub_notes_total", "sub", sub)
	r.Gauge("metricky_sub_behind", "sub", fmt.Sprintf("%s-replica", sub))
}

// other.Counter with a non-Registry receiver must stay quiet even with a
// dynamic argument.
type other struct{}

func (other) Counter(name string) {}

func notARegistry(o other, which string) {
	o.Counter("free_" + which)
}
