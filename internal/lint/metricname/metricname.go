// Package metricname flags metric registrations whose name is not a
// compile-time constant. The obs registry keys instruments by name, the
// exposition format is scraped by dashboards and the serve smoke test,
// and DESIGN.md carries the metric catalog — all three assume the set of
// series names is fixed at build time. A name computed at runtime
// (fmt.Sprintf, a variable, a concatenation with data) silently grows
// the registry without bound and produces series nobody catalogued;
// variable *label values* are the supported way to parameterize a
// metric, and stay untouched.
package metricname

import (
	"go/ast"
	"go/types"
	"strings"

	"abivm/internal/lint"
)

// Analyzer is the metricname check.
var Analyzer = &lint.Analyzer{
	Name: "metricname",
	Doc: "flags obs.Registry Counter/Gauge/Histogram registrations whose " +
		"metric name is not a compile-time constant string",
	Run: run,
}

// registration methods on *obs.Registry whose first argument is the
// metric name.
var registerMethods = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
}

func run(pass *lint.Pass) error {
	info := pass.Pkg.TypesInfo
	for _, file := range pass.Pkg.Syntax {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !registerMethods[sel.Sel.Name] {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || !isRegistryMethod(fn) || len(call.Args) == 0 {
				return true
			}
			name := call.Args[0]
			tv, ok := info.Types[name]
			if !ok || tv.Value == nil {
				pass.Reportf(name.Pos(),
					"metric name passed to Registry.%s is not a compile-time constant; "+
						"use a const name and put variable parts in label values",
					sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}

// isRegistryMethod reports whether fn is a method of the internal/obs
// Registry type (the receiver may be *Registry or Registry).
func isRegistryMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Registry" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "internal/obs" || strings.HasSuffix(path, "/internal/obs")
}
