// Package badcmd mislabels a binary: package main documentation must // want "should start"
// open with "Command", not "Package".
package main

func main() {}
