// Package dupdoc holds the canonical package comment in this file.
package dupdoc

// Alpha does nothing.
func Alpha() {}
