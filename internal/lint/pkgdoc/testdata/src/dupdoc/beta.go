// Package dupdoc is documented a second time here, which godoc would // want "duplicated"
// silently concatenate with alpha.go's comment.
package dupdoc

// Beta does nothing.
func Beta() {}
