// This comment documents the package but skips the canonical godoc // want "Package baddoc"
// opening phrase, so tooling that keys off "Package baddoc" misfiles it.
package baddoc

// Exported does nothing.
func Exported() {}
