package undoc // want "package undoc has no package comment"

// Exported does nothing; the package around it is what's missing docs.
func Exported() {}
