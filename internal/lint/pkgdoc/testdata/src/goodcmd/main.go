// Command goodcmd is a correctly documented binary: the comment opens
// with "Command" and lives in a single file.
package main

func main() {}
