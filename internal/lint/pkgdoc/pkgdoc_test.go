package pkgdoc

import (
	"testing"

	"abivm/internal/lint"
)

func TestPkgDocFixtures(t *testing.T) {
	for _, dir := range []string{"undoc", "baddoc", "dupdoc", "badcmd", "goodcmd"} {
		t.Run(dir, func(t *testing.T) {
			lint.RunFixture(t, Analyzer, "testdata/src/"+dir)
		})
	}
}

func TestAppliesTo(t *testing.T) {
	cases := map[string]bool{
		"abivm/internal/pubsub":      true,
		"abivm/internal/lint/pkgdoc": true,
		"abivm/cmd/abivm":            true,
		"abivm/cmd/abivmlint":        true,
		"abivm":                      false,
		"abivm/docs":                 false,
		"fixture/testdata/src/undoc": false,
	}
	for path, want := range cases {
		if got := appliesTo(path); got != want {
			t.Errorf("appliesTo(%q) = %v, want %v", path, got, want)
		}
	}
}
