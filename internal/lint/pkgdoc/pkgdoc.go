// Package pkgdoc enforces the repo's package-documentation convention:
// every package under internal/... and cmd/... carries a package comment,
// the comment opens with the canonical godoc phrase ("Package <name> ..."
// for libraries, "Command ..." for main packages), and exactly one file
// holds it. OPERATIONS.md and DESIGN.md point readers at godoc for the
// per-package contracts, so an undocumented package is a broken link in
// the documentation layer, not a style nit.
package pkgdoc

import (
	"go/ast"
	"strings"

	"abivm/internal/lint"
)

// Analyzer is the pkgdoc check.
var Analyzer = &lint.Analyzer{
	Name: "pkgdoc",
	Doc: "requires a package comment on every internal/... and cmd/... " +
		"package, starting \"Package <name>\" (or \"Command\" for main) " +
		"and living in exactly one file",
	AppliesTo: appliesTo,
	Run:       run,
}

func appliesTo(pkgPath string) bool {
	for _, seg := range []string{"internal", "cmd"} {
		if strings.HasPrefix(pkgPath, seg+"/") || strings.Contains(pkgPath, "/"+seg+"/") {
			return true
		}
	}
	return false
}

func run(pass *lint.Pass) error {
	name := pass.Pkg.Types.Name()
	var docs []*ast.File
	for _, file := range pass.Pkg.Syntax {
		if file.Doc != nil {
			docs = append(docs, file)
		}
	}
	if len(docs) == 0 {
		// Anchor the finding on the package clause of the first file so
		// it points somewhere editable.
		pass.Reportf(pass.Pkg.Syntax[0].Name.Pos(),
			"package %s has no package comment; add one starting %q in exactly one file",
			name, docPrefix(name))
		return nil
	}
	for _, file := range docs[1:] {
		pass.Reportf(file.Doc.Pos(),
			"package comment for %s duplicated; keep a single package comment (the first is at %s)",
			name, pass.Pkg.Fset.Position(docs[0].Doc.Pos()))
	}
	for _, file := range docs {
		text := file.Doc.Text()
		if !strings.HasPrefix(text, docPrefix(name)+" ") && !strings.HasPrefix(text, docPrefix(name)+"\n") {
			pass.Reportf(file.Doc.Pos(),
				"package comment should start %q (godoc keys its package lists off that phrase)",
				docPrefix(name))
		}
	}
	return nil
}

// docPrefix is the required opening phrase: godoc's convention is
// "Package <name>" for importable packages and "Command <name>" for
// binaries (package main).
func docPrefix(pkgName string) string {
	if pkgName == "main" {
		return "Command"
	}
	return "Package " + pkgName
}
