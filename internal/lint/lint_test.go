package lint

import (
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseIgnore(t *testing.T) {
	cases := []struct {
		text string
		want []string
	}{
		{"//lint:ignore vecalias caller owns it", []string{"vecalias"}},
		{"//lint:ignore vecalias,floateq shared reason", []string{"vecalias", "floateq"}},
		{"//lint:ignore * blanket waiver with reason", []string{"*"}},
		{"//lint:ignore vecalias", nil}, // missing justification: not honored
		{"// lint:ignore vecalias reason", nil},
		{"// plain comment", nil},
	}
	for _, c := range cases {
		got, ok := parseIgnore(c.text)
		if (c.want == nil) == ok {
			t.Errorf("parseIgnore(%q) ok=%v, want %v", c.text, ok, c.want != nil)
			continue
		}
		if strings.Join(got.names, ",") != strings.Join(c.want, ",") {
			t.Errorf("parseIgnore(%q) = %v, want %v", c.text, got.names, c.want)
		}
		if ok && got.reason == "" {
			t.Errorf("parseIgnore(%q) lost the justification", c.text)
		}
	}
}

func TestLoaderTypeChecksModulePackages(t *testing.T) {
	root, err := FindModRoot()
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./internal/core", "./internal/lgm")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	for _, p := range pkgs {
		if p.Types == nil || len(p.Syntax) == 0 {
			t.Errorf("package %s not fully loaded", p.PkgPath)
		}
	}
	// lgm sorts after core and must see core's Vector type through the
	// module-local importer.
	core, lgm := pkgs[0], pkgs[1]
	if !strings.HasSuffix(core.PkgPath, "internal/core") || !strings.HasSuffix(lgm.PkgPath, "internal/lgm") {
		t.Fatalf("unexpected package order: %s, %s", core.PkgPath, lgm.PkgPath)
	}
	if core.Types.Scope().Lookup("Vector") == nil {
		t.Error("core.Vector not found in type-checked package")
	}
}

func TestRunSortsAndSuppresses(t *testing.T) {
	root, err := FindModRoot()
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./internal/core")
	if err != nil {
		t.Fatal(err)
	}
	reportAll := &Analyzer{
		Name: "everyline",
		Doc:  "test analyzer reporting each file once",
		Run: func(p *Pass) error {
			for _, f := range p.Pkg.Syntax {
				p.Reportf(f.Package, "package clause")
			}
			return nil
		},
	}
	findings, err := Run(pkgs, []*Analyzer{reportAll})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != len(pkgs[0].Syntax) {
		t.Fatalf("got %d findings, want %d", len(findings), len(pkgs[0].Syntax))
	}
	for i := 1; i < len(findings); i++ {
		if findings[i].Pos.Filename < findings[i-1].Pos.Filename {
			t.Fatal("findings not sorted by filename")
		}
	}
	if base := filepath.Base(findings[0].Pos.Filename); !strings.HasSuffix(base, ".go") {
		t.Errorf("finding position %q is not a Go file", base)
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Analyzer: "x", Pos: token.Position{Filename: "a.go", Line: 3, Column: 7}, Message: "m"}
	if got := f.String(); got != "a.go:3:7: [x] m" {
		t.Errorf("Finding.String() = %q", got)
	}
}
