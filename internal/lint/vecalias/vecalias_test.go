package vecalias_test

import (
	"testing"

	"abivm/internal/lint"
	"abivm/internal/lint/vecalias"
)

func TestVecAliasFixture(t *testing.T) {
	lint.RunFixture(t, vecalias.Analyzer, "testdata/src/vec")
}
