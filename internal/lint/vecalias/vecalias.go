// Package vecalias flags functions that retain a core.Vector parameter
// without cloning it. core.Vector is a bare []int, so storing a parameter
// in a struct field, map, slice, package variable, or escaping closure —
// or returning it — aliases the caller's backing array; a later in-place
// update (AddInPlace, SubInPlace) then silently corrupts state the caller
// believed was private. This is exactly the bug class that corrupts
// lazy-plan states, so retention must go through Clone().
package vecalias

import (
	"go/ast"
	"go/types"
	"strings"

	"abivm/internal/lint"
)

// Analyzer is the vecalias check.
var Analyzer = &lint.Analyzer{
	Name: "vecalias",
	Doc: "flags core.Vector parameters that are stored, returned, or captured " +
		"by an escaping closure without a Clone() call",
	Run: run,
}

func run(pass *lint.Pass) error {
	lint.InspectFuncDecls(pass.Pkg, func(_ *ast.File, decl *ast.FuncDecl) {
		checkFunc(pass, decl)
	})
	return nil
}

// isCoreVector reports whether t is the named type Vector from the
// internal/core package (directly, not types merely sharing []int).
func isCoreVector(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Vector" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "internal/core" || strings.HasSuffix(path, "/internal/core")
}

func checkFunc(pass *lint.Pass, decl *ast.FuncDecl) {
	info := pass.Pkg.TypesInfo

	// origin maps every object aliasing a Vector parameter to the
	// parameter's name (for diagnostics). Seed with the parameters.
	origin := map[types.Object]string{}
	for _, field := range decl.Type.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj != nil && isCoreVector(obj.Type()) {
				origin[obj] = name.Name
			}
		}
	}
	if len(origin) == 0 {
		return
	}

	// aliasOf resolves an expression to the parameter it aliases, seeing
	// through parentheses and re-slicing (p[1:] shares p's array).
	var aliasOf func(e ast.Expr) (string, bool)
	aliasOf = func(e ast.Expr) (string, bool) {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			name, ok := origin[info.Uses[e]]
			return name, ok
		case *ast.SliceExpr:
			return aliasOf(e.X)
		}
		return "", false
	}

	// Propagate aliasing through plain assignments (q := p, q = p,
	// q := p[1:], q := append(p, ...)) until a fixed point: retention of
	// a first-degree alias is just as corrupting as of the parameter.
	for changed := true; changed; {
		changed = false
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				name, ok := aliasOrAppendAlias(aliasOf, rhs)
				if !ok {
					continue
				}
				id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil || !isLocalVar(obj) {
					continue
				}
				if _, seen := origin[obj]; !seen {
					origin[obj] = name
					changed = true
				}
			}
			return true
		})
	}

	escaping := escapingFuncLits(decl.Body)

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				name, ok := aliasOf(rhs)
				if !ok {
					continue
				}
				switch lhs := ast.Unparen(n.Lhs[i]).(type) {
				case *ast.SelectorExpr:
					pass.Reportf(rhs.Pos(), "core.Vector parameter %q is stored in a field without Clone()", name)
				case *ast.IndexExpr:
					pass.Reportf(rhs.Pos(), "core.Vector parameter %q is stored in a map or slice element without Clone()", name)
				case *ast.StarExpr:
					pass.Reportf(rhs.Pos(), "core.Vector parameter %q is stored through a pointer without Clone()", name)
				case *ast.Ident:
					if obj := info.Uses[lhs]; obj != nil && isPkgLevelVar(obj) {
						pass.Reportf(rhs.Pos(), "core.Vector parameter %q is stored in package variable %s without Clone()", name, lhs.Name)
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if name, ok := aliasOf(res); ok {
					pass.Reportf(res.Pos(), "core.Vector parameter %q is returned without Clone()", name)
				}
			}
		case *ast.CallExpr:
			// append(dst, p) retains the slice header when the element
			// type is core.Vector; append(ints, p...) copies values and
			// is safe.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" && !n.Ellipsis.IsValid() {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					for _, arg := range n.Args[1:] {
						if name, ok := aliasOf(arg); ok {
							pass.Reportf(arg.Pos(), "core.Vector parameter %q is appended to a slice without Clone()", name)
						}
					}
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				val := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if name, ok := aliasOf(val); ok {
					pass.Reportf(val.Pos(), "core.Vector parameter %q is stored in a composite literal without Clone()", name)
				}
			}
		case *ast.FuncLit:
			if !escaping[n] {
				return true
			}
			ast.Inspect(n.Body, func(inner ast.Node) bool {
				id, ok := inner.(*ast.Ident)
				if !ok {
					return true
				}
				if name, tracked := origin[info.Uses[id]]; tracked {
					pass.Reportf(id.Pos(), "core.Vector parameter %q is captured by an escaping closure without Clone()", name)
				}
				return true
			})
			return false // inner findings reported above; don't descend twice
		}
		return true
	})
}

// aliasOrAppendAlias additionally sees through append(p, ...) on the
// right-hand side of an assignment: the result may share p's array.
func aliasOrAppendAlias(aliasOf func(ast.Expr) (string, bool), e ast.Expr) (string, bool) {
	if name, ok := aliasOf(e); ok {
		return name, ok
	}
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok && len(call.Args) > 0 {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
			return aliasOf(call.Args[0])
		}
	}
	return "", false
}

func isLocalVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.Parent() != nil && v.Parent() != v.Pkg().Scope()
}

func isPkgLevelVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.Parent() == v.Pkg().Scope()
}

// escapingFuncLits returns the function literals that may outlive the
// enclosing call: literals that are returned, stored into a field, map,
// slice, pointer, or package variable, placed in a composite literal, or
// passed as an argument to another function. A literal only assigned to a
// local and invoked locally cannot retain the parameter past the call, so
// capturing there is fine.
func escapingFuncLits(body *ast.BlockStmt) map[*ast.FuncLit]bool {
	out := map[*ast.FuncLit]bool{}
	litIn := func(e ast.Expr) *ast.FuncLit {
		lit, _ := ast.Unparen(e).(*ast.FuncLit)
		return lit
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if lit := litIn(res); lit != nil {
					out[lit] = true
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				lit := litIn(rhs)
				if lit == nil {
					continue
				}
				switch ast.Unparen(n.Lhs[i]).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					out[lit] = true
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				val := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if lit := litIn(val); lit != nil {
					out[lit] = true
				}
			}
		case *ast.CallExpr:
			// A literal passed as an argument escapes to the callee; a
			// literal that *is* the callee is invoked immediately.
			for _, arg := range n.Args {
				if lit := litIn(arg); lit != nil {
					out[lit] = true
				}
			}
		}
		return true
	})
	return out
}
