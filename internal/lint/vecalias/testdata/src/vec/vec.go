// Package vec is a vecalias fixture: every "want" line is a positive
// case; the remaining functions document the negative space (clones,
// local closures, value appends) that must stay quiet.
package vec

import "abivm/internal/core"

type holder struct{ v core.Vector }

var global core.Vector

func storeField(h *holder, p core.Vector) {
	h.v = p // want "stored in a field"
}

func storeFieldClone(h *holder, p core.Vector) {
	h.v = p.Clone() // negative: clone breaks the alias
}

func storeMap(m map[string]core.Vector, p core.Vector) {
	m["k"] = p // want "map or slice element"
}

func storeGlobal(p core.Vector) {
	global = p // want "package variable"
}

func ret(p core.Vector) core.Vector {
	return p // want "returned without Clone"
}

func retClone(p core.Vector) core.Vector {
	return p.Clone() // negative
}

func retSlice(p core.Vector) core.Vector {
	return p[1:] // want "returned without Clone"
}

func appendVec(dst []core.Vector, p core.Vector) []core.Vector {
	return append(dst, p) // want "appended to a slice"
}

func appendValues(p core.Vector) int {
	// negative: append(ints, p...) copies the int values, no aliasing.
	tmp := append([]int{}, p...)
	return len(tmp)
}

func escapeClosure(p core.Vector) func() int {
	return func() int { return p[0] } // want "captured by an escaping closure"
}

func localClosure(p core.Vector) int {
	// negative: the closure never outlives the call.
	f := func() int { return p[0] }
	return f()
}

func viaAlias(h *holder, p core.Vector) {
	q := p
	h.v = q // want "stored in a field"
}

func compositeLit(p core.Vector) *holder {
	return &holder{v: p} // want "composite literal"
}

func readOnly(p core.Vector) int {
	// negative: reads and element writes do not retain the header.
	s := 0
	for _, x := range p {
		s += x
	}
	return s
}

func suppressed(h *holder, p core.Vector) {
	//lint:ignore vecalias the caller transfers ownership by contract
	h.v = p
}
