// Package dropper is an errdrop fixture.
package dropper

import (
	"errors"
	"fmt"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func valueAndError() (int, error) { return 0, nil }

func ignoredCall() {
	mayFail() // want "error result of mayFail is discarded"
}

func blankSingle() {
	_ = mayFail() // want "assigned to _"
}

func blankTuple() int {
	v, _ := valueAndError() // want "assigned to _"
	return v
}

func deferred() {
	defer mayFail() // want "defer error result of mayFail"
}

func handled() error {
	// negative: both results are consumed.
	if err := mayFail(); err != nil {
		return err
	}
	v, err := valueAndError()
	if err != nil {
		return err
	}
	_ = v // negative: blank-assigning a non-error is fine
	return nil
}

func allowlisted() string {
	// negative: fmt print family and Builder writes are conventionally
	// error-free.
	fmt.Println("ok")
	var b strings.Builder
	b.WriteString("x")
	fmt.Fprintf(&b, "%d", 1)
	return b.String()
}

func suppressed() {
	//lint:ignore errdrop best-effort cleanup on shutdown
	mayFail()
}
