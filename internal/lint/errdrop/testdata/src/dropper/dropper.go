// Package dropper is an errdrop fixture.
package dropper

import (
	"errors"
	"fmt"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func valueAndError() (int, error) { return 0, nil }

func ignoredCall() {
	mayFail() // want "error result of mayFail is discarded"
}

func blankSingle() {
	_ = mayFail() // want "assigned to _"
}

func blankTuple() int {
	v, _ := valueAndError() // want "assigned to _"
	return v
}

func deferred() {
	defer mayFail() // want "defer error result of mayFail"
}

func handled() error {
	// negative: both results are consumed.
	if err := mayFail(); err != nil {
		return err
	}
	v, err := valueAndError()
	if err != nil {
		return err
	}
	_ = v // negative: blank-assigning a non-error is fine
	return nil
}

func allowlisted() string {
	// negative: fmt print family and Builder writes are conventionally
	// error-free.
	fmt.Println("ok")
	var b strings.Builder
	b.WriteString("x")
	fmt.Fprintf(&b, "%d", 1)
	return b.String()
}

func suppressed() {
	//lint:ignore errdrop best-effort cleanup on shutdown
	mayFail()
}

// The fault-injection shapes: an injector's Hit and a WAL writer's
// Append both return errors that silently disable fault handling when
// dropped — exactly the class errdrop exists to catch.

type site string

type injector interface {
	Hit(s site) error
}

type wal struct{}

func (w *wal) Append(rec string) (uint64, error) { return 1, nil }

func pollSite(inj injector) {
	inj.Hit("drain.plan") // want "error result of inj.Hit is discarded"
}

func logArrival(w *wal) {
	w.Append("arrival") // want "error result of w.Append is discarded"
}

func logBlankLSN(w *wal) {
	// Discarding the LSN is fine; discarding the error is not.
	_, _ = w.Append("drain") // want "assigned to _"
}

func logHandled(w *wal) (uint64, error) {
	// negative: LSN consumed, error propagated.
	lsn, err := w.Append("drain")
	if err != nil {
		return 0, err
	}
	return lsn, nil
}

func pollHandled(inj injector) bool {
	// negative: the injected error is inspected, not dropped.
	return inj.Hit("crash") != nil
}

// The durable file-I/O shapes: Sync is the durability point and Close
// reports the write-back errors buffered writes deferred — dropping
// either one on the happy path turns a failed write into silent data
// loss. Only the error path after a failure may discard them, with the
// suppression spelled out.

type segfile struct{}

func (f *segfile) Write(p []byte) (int, error) { return len(p), nil }

func (f *segfile) Sync() error { return nil }

func (f *segfile) Close() error { return nil }

func syncDropped(f *segfile) {
	f.Sync() // want "error result of f.Sync is discarded"
}

func closeDeferred(f *segfile) error {
	defer f.Close() // want "defer error result of f.Close"
	_, err := f.Write([]byte("frame"))
	return err
}

func writeSynced(f *segfile, p []byte) error {
	// negative: every step of the write-sync-close sequence is checked.
	if _, err := f.Write(p); err != nil {
		//lint:ignore errdrop the write already failed; Close is best-effort cleanup
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		//lint:ignore errdrop the sync already failed; Close is best-effort cleanup
		f.Close()
		return err
	}
	return f.Close()
}
