package errdrop_test

import (
	"testing"

	"abivm/internal/lint"
	"abivm/internal/lint/errdrop"
)

func TestErrDropFixture(t *testing.T) {
	lint.RunFixture(t, errdrop.Analyzer, "testdata/src/dropper")
}

func TestAppliesToInternalAndCmd(t *testing.T) {
	applies := errdrop.Analyzer.AppliesTo
	for _, path := range []string{"abivm/internal/storage", "abivm/cmd/abivm", "abivm/internal/lint/errdrop"} {
		if !applies(path) {
			t.Errorf("errdrop should apply to %s", path)
		}
	}
	if applies("abivm") {
		t.Error("errdrop should not apply to the public root package")
	}
}
