// Package errdrop flags discarded error return values: calls whose error
// result is ignored entirely (expression statements, go/defer statements)
// or assigned to the blank identifier. The storage, ivm, and pubsub layers
// report real failures through errors; dropping one turns a detectable
// inconsistency into silent corruption.
//
// A small allowlist covers calls whose errors are conventionally
// meaningless: the fmt print family and the write methods of
// strings.Builder and bytes.Buffer (documented to never return a non-nil
// error).
package errdrop

import (
	"go/ast"
	"go/types"
	"strings"

	"abivm/internal/lint"
)

// Analyzer is the errdrop check.
var Analyzer = &lint.Analyzer{
	Name: "errdrop",
	Doc:  "flags ignored or blank-assigned error return values in internal/... and cmd/...",
	AppliesTo: func(pkgPath string) bool {
		return strings.Contains(pkgPath, "/internal/") || strings.HasSuffix(pkgPath, "/internal") ||
			strings.Contains(pkgPath, "/cmd/") || strings.HasSuffix(pkgPath, "/cmd")
	},
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Pkg.Syntax {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				checkIgnoredCall(pass, n.X, "")
			case *ast.GoStmt:
				checkIgnoredCall(pass, n.Call, "go ")
			case *ast.DeferStmt:
				checkIgnoredCall(pass, n.Call, "defer ")
			case *ast.AssignStmt:
				checkBlankAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkIgnoredCall reports a call statement that silently discards an
// error result.
func checkIgnoredCall(pass *lint.Pass, e ast.Expr, prefix string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	info := pass.Pkg.TypesInfo
	idx := errorResultIndexes(info, call)
	if len(idx) == 0 || allowlisted(info, call) {
		return
	}
	pass.Reportf(call.Pos(), "%serror result of %s is discarded; handle it or assign it explicitly", prefix, calleeName(info, call))
}

// checkBlankAssign reports error results assigned to the blank
// identifier, in both tuple form (v, _ := f()) and direct form (_ = f()).
func checkBlankAssign(pass *lint.Pass, as *ast.AssignStmt) {
	info := pass.Pkg.TypesInfo
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// v, _ := f(): one call, tuple results.
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || allowlisted(info, call) {
			return
		}
		for _, i := range errorResultIndexes(info, call) {
			if i < len(as.Lhs) && isBlank(as.Lhs[i]) {
				pass.Reportf(as.Lhs[i].Pos(), "error result of %s is assigned to _; handle it", calleeName(info, call))
			}
		}
		return
	}
	if len(as.Rhs) != len(as.Lhs) {
		return
	}
	for i, rhs := range as.Rhs {
		if !isBlank(as.Lhs[i]) {
			continue
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || allowlisted(info, call) {
			continue
		}
		if len(errorResultIndexes(info, call)) > 0 {
			pass.Reportf(as.Lhs[i].Pos(), "error result of %s is assigned to _; handle it", calleeName(info, call))
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

var errorType = types.Universe.Lookup("error").Type()

// errorResultIndexes returns the result positions of the call that have
// type error.
func errorResultIndexes(info *types.Info, call *ast.CallExpr) []int {
	t := info.TypeOf(call)
	if t == nil {
		return nil
	}
	var out []int
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errorType) {
				out = append(out, i)
			}
		}
	default:
		if types.Identical(t, errorType) {
			out = append(out, 0)
		}
	}
	return out
}

// allowlisted reports whether the callee's errors are conventionally
// ignorable.
func allowlisted(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Method call: check the receiver's named type.
	if s, ok := info.Selections[sel]; ok {
		recv := s.Recv()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		if named, ok := recv.(*types.Named); ok && named.Obj().Pkg() != nil {
			full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
			if full == "strings.Builder" || full == "bytes.Buffer" {
				return strings.HasPrefix(s.Obj().Name(), "Write")
			}
		}
		return false
	}
	// Package-qualified function: fmt print family.
	if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		return strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")
	}
	return false
}

// calleeName renders the callee for diagnostics.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
