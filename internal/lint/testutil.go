package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// RunFixture loads the fixture package in dir (relative to the calling
// test's working directory), applies the analyzer with its package filter
// bypassed, and compares the findings against "want" expectations in the
// fixture source. A line expecting diagnostics carries a trailing comment
//
//	x := p // want "stored" "second finding"
//
// where each quoted string must be a substring of exactly one diagnostic
// reported on that line; diagnostics on lines without a matching want, and
// wants without a matching diagnostic, fail the test. lint:ignore
// directives are honored, so fixtures can also assert suppression.
func RunFixture(t testing.TB, a *Analyzer, dir string) {
	t.Helper()
	modRoot, err := FindModRoot()
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(modRoot)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir, "fixture/"+filepath.ToSlash(dir))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	unfiltered := *a
	unfiltered.AppliesTo = nil
	findings, err := Run([]*Package{pkg}, []*Analyzer{&unfiltered})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	checkExpectations(t, pkg, findings)
}

var wantRx = regexp.MustCompile(`//\s*want\s+(.+)$`)
var wantArgRx = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// checkExpectations matches findings against want comments line by line.
func checkExpectations(t testing.TB, pkg *Package, findings []Finding) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := map[key][]string{}
	for _, file := range pkg.Syntax {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, arg := range wantArgRx.FindAllStringSubmatch(m[1], -1) {
					wants[k] = append(wants[k], arg[1])
				}
			}
		}
	}
	for _, f := range findings {
		k := key{f.Pos.Filename, f.Pos.Line}
		matched := -1
		for i, w := range wants[k] {
			if strings.Contains(f.Message, w) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic at %s:%d: %s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Message)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	for k, remaining := range wants {
		for _, w := range remaining {
			t.Errorf("missing diagnostic at %s:%d: want message containing %q", filepath.Base(k.file), k.line, w)
		}
	}
}

// FindModRoot walks up from the working directory to the enclosing
// go.mod, so fixture tests work from any package directory.
func FindModRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above working directory")
		}
		dir = parent
	}
}
