package gobcompat_test

import (
	"testing"

	"abivm/internal/lint"
	"abivm/internal/lint/gobcompat"
)

func TestGobCompatFixture(t *testing.T) {
	lint.RunFixture(t, gobcompat.Analyzer, "testdata/src/gobby")
}
