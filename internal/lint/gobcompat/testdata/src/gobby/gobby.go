// Package gobby exercises the gobcompat analyzer: silently-dropped
// unexported fields, unencodable fields, unstable registrations, and
// the self-encoding (GobEncoder) near-miss that must stay clean.
package gobby

import (
	"bytes"
	"encoding/gob"
)

// GoodDTO is the explicit-DTO shape checkpoints should use.
type GoodDTO struct {
	Version int
	Names   []string
	ByKey   map[string]int64
}

type leaky struct {
	Exported int
	hidden   string
}

type withChan struct {
	C chan int
}

// SelfCoded owns its wire format; its unexported field is its own
// business.
type SelfCoded struct {
	raw []byte
}

// GobEncode implements gob.GobEncoder.
func (s SelfCoded) GobEncode() ([]byte, error) { return s.raw, nil }

// GobDecode implements gob.GobDecoder.
func (s *SelfCoded) GobDecode(b []byte) error { s.raw = append([]byte(nil), b...); return nil }

// Wrapper nests a self-encoding type: the walk must stop at it.
type Wrapper struct {
	Inner SelfCoded
	Count int
}

// HasIface smuggles an interface into the checkpoint format.
type HasIface struct {
	V any
}

func encodeGood(w *bytes.Buffer) error { return gob.NewEncoder(w).Encode(GoodDTO{}) }

func encodeWrapper(w *bytes.Buffer) error { return gob.NewEncoder(w).Encode(Wrapper{}) }

func encodeLeaky(w *bytes.Buffer) error {
	return gob.NewEncoder(w).Encode(leaky{}) // want "unexported field leaky.hidden"
}

func encodeChan(w *bytes.Buffer) error {
	return gob.NewEncoder(w).Encode(withChan{}) // want "cannot encode withChan.C"
}

func encodeIface(w *bytes.Buffer) error {
	return gob.NewEncoder(w).Encode(HasIface{}) // want "HasIface.V is interface-typed"
}

func decodeLeaky(r *bytes.Buffer) error {
	var v leaky
	return gob.NewDecoder(r).Decode(&v) // want "unexported field leaky.hidden"
}

func registerUnstable() {
	gob.Register(GoodDTO{}) // want "not stable across refactors"
}

func registerStable() {
	gob.RegisterName("gobby.GoodDTO", GoodDTO{})
}

func registerDynamic(name string) {
	gob.RegisterName(name, GoodDTO{}) // want "not a compile-time constant"
}

// suppressed demonstrates the lint:ignore directive.
func encodeSuppressed(w *bytes.Buffer) error {
	//lint:ignore gobcompat scratch encoding for a size estimate, never persisted
	return gob.NewEncoder(w).Encode(leaky{})
}

// The on-disk durability shapes: a checkpoint manifest referencing
// checksummed segments. All-exported nested DTOs must stay clean —
// these files outlive the process, so a silently-dropped field is a
// recovery bug, not a serialization quirk.

// SegmentRef names one segment with its checksum and LSN range.
type SegmentRef struct {
	Name    string
	CRC     uint32
	FromLSN uint64
	LSN     uint64
}

// Manifest records a checkpoint chain: base plus delta segments.
type Manifest struct {
	Version int
	Gen     uint64
	Base    SegmentRef
	Deltas  []SegmentRef
}

// leakyManifest caches a decoded form in an unexported field — the
// classic way a manifest quietly loses state across a refactor.
type leakyManifest struct {
	Version int
	decoded *Manifest
}

func encodeManifest(w *bytes.Buffer, m *Manifest) error {
	// negative: nested all-exported DTOs round-trip.
	return gob.NewEncoder(w).Encode(m)
}

func decodeManifest(r *bytes.Buffer) (*Manifest, error) {
	var m Manifest
	err := gob.NewDecoder(r).Decode(&m)
	return &m, err
}

func encodeLeakyManifest(w *bytes.Buffer) error {
	return gob.NewEncoder(w).Encode(leakyManifest{}) // want "unexported field leakyManifest.decoded"
}
