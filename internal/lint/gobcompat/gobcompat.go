// Package gobcompat guards the checkpoint compatibility promise: every
// type handed to gob (an Encoder.Encode/Decoder.Decode argument or a
// gob.Register* call) must actually round-trip. Three silent failure
// modes are reported:
//
//   - unexported struct fields: gob skips them without error, so a
//     checkpoint writes fine, decodes fine, and has quietly lost state
//     (unless the type implements GobEncoder/GobDecoder or the binary
//     marshaler interfaces and owns its own wire format);
//   - fields gob cannot encode at all (func, chan, unsafe.Pointer) and
//     interface-typed fields, whose concrete types must be registered
//     and therefore belong behind an explicit DTO;
//   - unstable registrations: gob.Register derives the type name from
//     the import path, so moving a package breaks every old checkpoint —
//     gob.RegisterName with a compile-time-constant name is required.
//
// The walk recurses through struct, slice, array, map, and pointer
// types, memoizing visited types so recursive DTOs terminate.
package gobcompat

import (
	"go/ast"
	"go/types"

	"abivm/internal/lint"
)

// Analyzer is the gobcompat check.
var Analyzer = &lint.Analyzer{
	Name: "gobcompat",
	Doc: "checks types passed to gob Encode/Decode/Register for " +
		"unexported or unencodable fields and unstable registrations",
	Run: run,
}

func run(pass *lint.Pass) error {
	info := pass.Pkg.TypesInfo
	for _, file := range pass.Pkg.Syntax {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/gob" {
				return true
			}
			switch {
			case fn.Name() == "Register" && len(call.Args) == 1:
				pass.Reportf(call.Pos(), "gob.Register derives the name from the import path, which is not stable across refactors; use gob.RegisterName with a constant name")
				checkArgType(pass, info, call.Args[0])
			case fn.Name() == "RegisterName" && len(call.Args) == 2:
				if tv, ok := info.Types[call.Args[0]]; !ok || tv.Value == nil {
					pass.Reportf(call.Args[0].Pos(), "gob.RegisterName name is not a compile-time constant; registration must be stable across builds")
				}
				checkArgType(pass, info, call.Args[1])
			case (fn.Name() == "Encode" || fn.Name() == "Decode") && isCodecMethod(fn) && len(call.Args) == 1:
				checkArgType(pass, info, call.Args[0])
			}
			return true
		})
	}
	return nil
}

// isCodecMethod reports whether fn is a method of gob.Encoder/Decoder
// (as opposed to some local Encode helper).
func isCodecMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	return name == "Encoder" || name == "Decoder"
}

// checkArgType validates the static type of one gob argument.
func checkArgType(pass *lint.Pass, info *types.Info, arg ast.Expr) {
	t := info.TypeOf(arg)
	if t == nil {
		return
	}
	w := &walker{pass: pass, pos: arg, seen: map[types.Type]bool{}}
	w.check(t, typeLabel(t))
}

type walker struct {
	pass *lint.Pass
	pos  ast.Expr
	seen map[types.Type]bool
}

func (w *walker) check(t types.Type, path string) {
	if w.seen[t] {
		return
	}
	w.seen[t] = true
	// Types owning their wire format are opaque to the walk.
	if selfEncoding(t) {
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			w.pass.Reportf(w.pos.Pos(), "gob cannot encode %s (unsafe.Pointer)", path)
		}
	case *types.Chan:
		w.pass.Reportf(w.pos.Pos(), "gob cannot encode %s (channel)", path)
	case *types.Signature:
		w.pass.Reportf(w.pos.Pos(), "gob cannot encode %s (function)", path)
	case *types.Interface:
		w.pass.Reportf(w.pos.Pos(), "%s is interface-typed: gob needs every concrete type registered and the checkpoint format stops being explicit; encode a concrete DTO instead", path)
	case *types.Pointer:
		w.check(u.Elem(), path)
	case *types.Slice:
		w.check(u.Elem(), path+"[]")
	case *types.Array:
		w.check(u.Elem(), path+"[]")
	case *types.Map:
		w.check(u.Key(), path+" key")
		w.check(u.Elem(), path+" value")
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if !f.Exported() {
				w.pass.Reportf(w.pos.Pos(), "unexported field %s.%s is silently dropped by gob; export it, move it out of the DTO, or implement GobEncoder/GobDecoder", path, f.Name())
				continue
			}
			w.check(f.Type(), path+"."+f.Name())
		}
	}
}

// selfEncoding reports whether t (or *t) implements GobEncoder,
// GobDecoder, or the encoding.Binary(M|Unm)arshaler shapes gob accepts.
func selfEncoding(t types.Type) bool {
	for _, name := range []string{"GobEncode", "GobDecode", "MarshalBinary", "UnmarshalBinary"} {
		if hasMethod(t, name) || hasMethod(types.NewPointer(t), name) {
			return true
		}
	}
	return false
}

func hasMethod(t types.Type, name string) bool {
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}

// typeLabel renders a short name for the argument's type.
func typeLabel(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
