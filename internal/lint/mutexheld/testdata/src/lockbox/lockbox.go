// Package lockbox exercises the mutexheld analyzer: unguarded accesses
// to mutex-protected fields, next to the locked-caller helper idiom and
// never-guarded fields that must stay clean.
package lockbox

import "sync"

// Box guards count with a named mutex; name is set at construction and
// never touched under the lock.
type Box struct {
	mu    sync.Mutex
	count int
	name  string
}

// New is a constructor, not a method: initialization is unguarded by
// design.
func New(name string) *Box { return &Box{name: name} }

func (b *Box) Inc() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.bump()
}

// bump runs only under Inc's lock: the call-graph exemption keeps it
// clean.
func (b *Box) bump() { b.count++ }

func (b *Box) Count() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.count
}

func (b *Box) Peek() int {
	return b.count // want "which other methods guard with the mutex"
}

// Name touches only the never-guarded field.
func (b *Box) Name() string { return b.name }

// RBox embeds its RWMutex, the broker idiom.
type RBox struct {
	sync.RWMutex
	vals []int
}

func (r *RBox) Add(v int) {
	r.Lock()
	defer r.Unlock()
	r.vals = append(r.vals, v)
}

func (r *RBox) Len() int {
	r.RLock()
	defer r.RUnlock()
	return len(r.vals)
}

func (r *RBox) Raw() []int {
	return r.vals // want "which other methods guard with the mutex"
}

// Snapshot demonstrates the lint:ignore directive.
func (r *RBox) Snapshot() []int {
	//lint:ignore mutexheld only called from the owner goroutine before Serve starts
	return r.vals
}
