// Package mutexheld flags unguarded accesses to mutex-protected struct
// fields. For every struct type that carries a sync.Mutex or
// sync.RWMutex field (named or embedded), a sibling field counts as
// *guarded* when at least one method of the type accesses it while
// acquiring that mutex. Methods that then touch a guarded field without
// acquiring the lock are reported — the class of data race the broker
// accessor work (Health/Result/TotalCost scraping a live workload loop)
// fixed by hand.
//
// The repo's locking idiom is "exported methods lock, unexported
// helpers run under the caller's lock", so a naming convention is not
// enough: the analyzer builds the intra-type call graph and exempts a
// non-locking method when every one of its same-type callers holds the
// lock (directly or transitively). A method nobody calls — the typical
// freshly added accessor — gets no such benefit of the doubt.
//
// This is a heuristic, not a proof: lock acquisition is recognized
// anywhere in the method body (no flow sensitivity), cross-type calls
// are not tracked, and fields published before the owning goroutine
// shares the struct are indistinguishable from races. False positives
// carry a //lint:ignore mutexheld with the invariant that makes the
// access safe.
package mutexheld

import (
	"go/ast"
	"go/token"
	"go/types"

	"abivm/internal/lint"
)

// Analyzer is the mutexheld check.
var Analyzer = &lint.Analyzer{
	Name: "mutexheld",
	Doc: "flags methods accessing mutex-guarded struct fields without " +
		"holding the lock (call-graph aware)",
	Run: run,
}

// access records where a method first touches a field.
type access struct {
	field string
	pos   token.Pos
}

// method is the per-method summary the fixpoint runs on.
type method struct {
	name     string
	locks    bool     // acquires the receiver's mutex somewhere in the body
	accesses []access // non-mutex struct fields read or written via the receiver
	calls    map[string]bool
}

func run(pass *lint.Pass) error {
	for _, st := range structsWithMutex(pass.Pkg) {
		checkStruct(pass, st)
	}
	return nil
}

// mutexStruct is one struct type carrying a mutex field.
type mutexStruct struct {
	obj    *types.TypeName
	fields map[string]bool // all field names
	mu     map[string]bool // the mutex field names ("Mutex"/"RWMutex" for embedded)
}

func structsWithMutex(pkg *lint.Package) []*mutexStruct {
	var out []*mutexStruct
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		ms := &mutexStruct{obj: tn, fields: map[string]bool{}, mu: map[string]bool{}}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			ms.fields[f.Name()] = true
			if isMutex(f.Type()) {
				ms.mu[f.Name()] = true
			}
		}
		if len(ms.mu) > 0 {
			out = append(out, ms)
		}
	}
	return out
}

func isMutex(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

func checkStruct(pass *lint.Pass, ms *mutexStruct) {
	info := pass.Pkg.TypesInfo
	methods := map[string]*method{}

	lint.InspectFuncDecls(pass.Pkg, func(_ *ast.File, decl *ast.FuncDecl) {
		recvObj := receiverOf(info, decl, ms.obj)
		if recvObj == nil {
			return
		}
		m := &method{name: decl.Name.Name, calls: map[string]bool{}}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			base, ok := ast.Unparen(sel.X).(*ast.Ident)
			if ok && info.Uses[base] == recvObj {
				name := sel.Sel.Name
				switch {
				case ms.mu[name]: // r.mu.Lock() — handled one level up
				case ms.fields[name]:
					m.accesses = append(m.accesses, access{field: name, pos: sel.Sel.Pos()})
				default:
					m.calls[name] = true // r.Helper(...) or promoted method
					// Embedded mutex: r.Lock() / r.RLock() directly.
					if (name == "Lock" || name == "RLock") && embeddedMutexMethod(info, sel) {
						m.locks = true
					}
				}
				return true
			}
			// r.mu.Lock() / r.mu.RLock(): selector whose X is itself the
			// receiver's mutex field.
			if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
				if ib, ok := ast.Unparen(inner.X).(*ast.Ident); ok && info.Uses[ib] == recvObj && ms.mu[inner.Sel.Name] {
					if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
						m.locks = true
					}
				}
			}
			return true
		})
		methods[m.name] = m
	})

	guarded := map[string]bool{}
	for _, m := range methods {
		if m.locks {
			for _, a := range m.accesses {
				guarded[a.field] = true
			}
		}
	}
	if len(guarded) == 0 {
		return
	}

	// Fixpoint: a non-locking method is safe when it has at least one
	// same-type caller and every caller is safe.
	callers := map[string][]string{}
	for name, m := range methods {
		for callee := range m.calls {
			if _, isMethod := methods[callee]; isMethod {
				callers[callee] = append(callers[callee], name)
			}
		}
	}
	safe := map[string]bool{}
	for name, m := range methods {
		safe[name] = m.locks
	}
	for changed := true; changed; {
		changed = false
		for name := range methods {
			if safe[name] || len(callers[name]) == 0 {
				continue
			}
			all := true
			for _, c := range callers[name] {
				if !safe[c] {
					all = false
					break
				}
			}
			if all {
				safe[name] = true
				changed = true
			}
		}
	}

	for name, m := range methods {
		if safe[name] {
			continue
		}
		reported := map[string]bool{}
		for _, a := range m.accesses {
			if guarded[a.field] && !reported[a.field] {
				reported[a.field] = true
				pass.Reportf(a.pos, "%s.%s accesses %q, which other methods guard with the mutex, without holding the lock", ms.obj.Name(), name, a.field)
			}
		}
	}
}

// receiverOf returns the receiver variable object when decl is a method
// of the given type (pointer or value receiver), else nil.
func receiverOf(info *types.Info, decl *ast.FuncDecl, tn *types.TypeName) types.Object {
	if decl.Recv == nil || len(decl.Recv.List) != 1 || len(decl.Recv.List[0].Names) != 1 {
		return nil
	}
	id := decl.Recv.List[0].Names[0]
	obj := info.Defs[id]
	if obj == nil {
		return nil
	}
	t := obj.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() != tn {
		return nil
	}
	return obj
}

// embeddedMutexMethod reports whether the selected Lock/RLock resolves
// through an embedded sync.Mutex/RWMutex field.
func embeddedMutexMethod(info *types.Info, sel *ast.SelectorExpr) bool {
	s, ok := info.Selections[sel]
	if !ok {
		return false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync"
}
