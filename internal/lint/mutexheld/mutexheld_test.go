package mutexheld_test

import (
	"testing"

	"abivm/internal/lint"
	"abivm/internal/lint/mutexheld"
)

func TestMutexHeldFixture(t *testing.T) {
	lint.RunFixture(t, mutexheld.Analyzer, "testdata/src/lockbox")
}
