// Package detcore exercises the nondet analyzer: wall-clock, global
// math/rand, environment reads, and map-keyed selects, next to the
// seeded-generator near-misses that must stay clean.
package detcore

import (
	"math/rand"
	"os"
	"time"
)

func wallClock() time.Duration {
	start := time.Now() // want "reads the wall clock"
	work()
	return time.Since(start) // want "reads the wall clock"
}

func work() {}

func globalRand() int {
	return rand.Intn(10) // want "draws from the global generator"
}

func env() string {
	return os.Getenv("ABIVM_MODE") // want "reads the process environment"
}

func mapSelect(chans map[string]chan int, k string) int {
	select {
	case v := <-chans[k]: // want "indexed out of a map"
		return v
	default:
		return 0
	}
}

// seeded constructs an explicitly seeded generator: the approved source
// of randomness in deterministic packages.
func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// sliceSelect indexes a slice, whose order is deterministic.
func sliceSelect(chans []chan int) int {
	select {
	case v := <-chans[0]:
		return v
	default:
		return 0
	}
}

// suppressed demonstrates the lint:ignore directive.
func suppressed() time.Time {
	//lint:ignore nondet timestamp feeds a report header, never replayed state
	return time.Now()
}
