// Package viewcalib exercises the nondet analyzer on the calibration
// shapes the SQL→IVM compiler path must avoid: a sandbox whose
// measurement loop reads the wall clock or draws from the global
// math/rand generator produces cost models that differ run to run,
// breaking the "same seed, same database, same query → byte-identical
// model" compile contract. The seeded generator at the bottom is the
// approved shape and must stay clean.
package viewcalib

import (
	"math/rand"
	"time"
)

// measureBatch stamps samples with the wall clock instead of the
// engine's work-unit counters.
func measureBatch(k int) (int, time.Time) {
	return k, time.Now() // want "reads the wall clock"
}

// pickVictim selects a calibration victim from the global generator, so
// two compiles of the same view disagree on what was measured.
func pickVictim(n int) int {
	return rand.Intn(n) // want "draws from the global generator"
}

// shuffledKs perturbs the calibration grid through the shared source.
func shuffledKs(ks []int) {
	rand.Shuffle(len(ks), func(i, j int) { ks[i], ks[j] = ks[j], ks[i] }) // want "draws from the global generator"
}

// seededGen is the approved alternative: a per-alias generator owned by
// the sandbox, constructed from an explicit seed.
func seededGen(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}
