// Package nondet flags nondeterminism sources inside the deterministic
// core packages: wall-clock reads (time.Now, time.Since, time.Until),
// the global math/rand generator (any top-level function drawing from
// the shared source — seeded rand.New(rand.NewSource(seed)) generators
// are the approved alternative), environment reads (os.Getenv and
// friends), and select statements whose channel operand is taken from a
// map (the chosen case then depends on map iteration order on top of
// select's own randomization).
//
// Which packages count as "deterministic core" is driven by the Policy
// table below, mirroring the replay-determinism contract: everything the
// chaos and byte-identity harnesses compare byte-for-byte must compute
// identical state from identical inputs. That includes the SQL→IVM
// compiler path (internal/viewc, internal/costmodel): the same seed,
// database, and query must calibrate byte-identical cost models. internal/obs (the measurement
// layer), internal/experiments (the timing harness), and cmd/... (the
// I/O shell) are deliberately exempt — wall-clock there feeds metrics
// and reports, never replayed state.
package nondet

import (
	"go/ast"
	"go/types"
	"strings"

	"abivm/internal/lint"
)

// Policy lists the package path suffixes that must stay deterministic.
// A package absent from the table is exempt; the notable exemptions and
// why they are safe:
//
//	internal/obs          measurement only; never feeds replayed state
//	internal/experiments  timing/reporting harness around the core
//	internal/policy       consumes only injected cost models and seeds
//	cmd/...               process shell: flags, stdout, signals
var Policy = map[string]bool{
	"internal/ivm":       true,
	"internal/pubsub":    true,
	"internal/core":      true,
	"internal/astar":     true,
	"internal/fault":     true,
	"internal/storage":   true,
	"internal/durable":   true,
	"internal/costmodel": true,
	"internal/viewc":     true,
}

// Analyzer is the nondet check.
var Analyzer = &lint.Analyzer{
	Name: "nondet",
	Doc: "flags wall-clock, global math/rand, environment reads, and " +
		"map-keyed selects inside the deterministic core packages",
	AppliesTo: Deterministic,
	Run:       run,
}

// Deterministic reports whether the package path is under the
// determinism policy.
func Deterministic(pkgPath string) bool {
	for suffix := range Policy {
		if pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix) {
			return true
		}
	}
	return false
}

// banned maps import path -> function name -> why it is nondeterministic.
var banned = map[string]map[string]string{
	"time": {
		"Now":   "reads the wall clock",
		"Since": "reads the wall clock",
		"Until": "reads the wall clock",
	},
	"os": {
		"Getenv":    "reads the process environment",
		"LookupEnv": "reads the process environment",
		"Environ":   "reads the process environment",
	},
}

// randAllowed are the math/rand top-level functions that do NOT draw
// from the global source: constructors taking an explicit seed.
var randAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func run(pass *lint.Pass) error {
	info := pass.Pkg.TypesInfo
	for _, file := range pass.Pkg.Syntax {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkSelector(pass, info, n)
			case *ast.SelectStmt:
				checkSelect(pass, info, n)
			}
			return true
		})
	}
	return nil
}

// checkSelector reports uses (calls or references) of banned functions.
func checkSelector(pass *lint.Pass, info *types.Info, sel *ast.SelectorExpr) {
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn) are instance-scoped
	}
	path := fn.Pkg().Path()
	if why, bad := banned[path][fn.Name()]; bad {
		pass.Reportf(sel.Pos(), "%s.%s %s; deterministic packages must take such inputs as explicit parameters", path, fn.Name(), why)
		return
	}
	if (path == "math/rand" || path == "math/rand/v2") && !randAllowed[fn.Name()] {
		pass.Reportf(sel.Pos(), "%s.%s draws from the global generator; use a seeded *rand.Rand owned by the component", path, fn.Name())
	}
}

// checkSelect reports select cases whose channel is indexed out of a
// map: which ready case fires then depends on map iteration order in
// addition to select's randomization.
func checkSelect(pass *lint.Pass, info *types.Info, sel *ast.SelectStmt) {
	for _, clause := range sel.Body.List {
		comm, ok := clause.(*ast.CommClause)
		if !ok || comm.Comm == nil {
			continue
		}
		ch := channelExpr(comm.Comm)
		if ch == nil {
			continue
		}
		if ix := mapIndexIn(info, ch); ix != nil {
			pass.Reportf(ix.Pos(), "select case channel is indexed out of a map; key the channel by a deterministic handle instead")
		}
	}
}

// channelExpr extracts the channel operand of one comm clause.
func channelExpr(s ast.Stmt) ast.Expr {
	switch s := s.(type) {
	case *ast.SendStmt:
		return s.Chan
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok {
			return u.X
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if u, ok := ast.Unparen(s.Rhs[0]).(*ast.UnaryExpr); ok {
				return u.X
			}
		}
	}
	return nil
}

// mapIndexIn returns the first map index expression inside e, if any.
func mapIndexIn(info *types.Info, e ast.Expr) *ast.IndexExpr {
	var found *ast.IndexExpr
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		if t := info.TypeOf(ix.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				found = ix
			}
		}
		return true
	})
	return found
}
