package nondet_test

import (
	"testing"

	"abivm/internal/lint"
	"abivm/internal/lint/nondet"
)

func TestNonDetFixture(t *testing.T) {
	lint.RunFixture(t, nondet.Analyzer, "testdata/src/detcore")
}

func TestNonDetCalibrationFixture(t *testing.T) {
	lint.RunFixture(t, nondet.Analyzer, "testdata/src/viewcalib")
}

func TestPolicyTable(t *testing.T) {
	cases := map[string]bool{
		"abivm/internal/ivm":       true,
		"abivm/internal/pubsub":    true,
		"abivm/internal/core":      true,
		"abivm/internal/astar":     true,
		"abivm/internal/fault":     true,
		"abivm/internal/storage":   true,
		"abivm/internal/viewc":     true, // compiler: seed must pin the model
		"abivm/internal/costmodel": true,
		"abivm/internal/obs":       false, // measurement layer is exempt
		"abivm/internal/policy":    false,
		"abivm/cmd/abivm":          false, // process shell is exempt
		"abivm/internal/lint":      false,
		"abivm":                    false,
		"abivm/internal/ivmextra":  false, // suffix must match a whole segment
	}
	for path, want := range cases {
		if got := nondet.Deterministic(path); got != want {
			t.Errorf("Deterministic(%q) = %v, want %v", path, got, want)
		}
	}
}
