// Package lint is a minimal, dependency-free static-analysis framework
// for the abivm tree. It mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer / Pass / diagnostics) but is built entirely on the standard
// library (go/parser + go/types), so the module keeps its zero-dependency,
// offline-buildable property.
//
// Analyzers check invariants the compiler cannot see — core.Vector
// aliasing, float64 equality in cost-bearing code, dropped errors, and
// undocumented panics — and are wired together by cmd/abivmlint.
//
// A finding can be suppressed with a directive comment on the offending
// line or the line directly above it:
//
//	//lint:ignore vecalias the callee owns the vector by contract
//
// The first field after "ignore" is a comma-separated list of analyzer
// names ("*" matches every analyzer); the rest of the line is a mandatory
// justification.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in findings and ignore directives.
	Name string
	// Doc is a one-paragraph description shown by abivmlint -list.
	Doc string
	// AppliesTo filters the packages the driver hands to Run; nil means
	// every package. Tests bypass the filter and feed fixtures directly.
	AppliesTo func(pkgPath string) bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// All holds every loaded package, for whole-program analyses such as
	// panicdoc's transitive panic propagation.
	All []*Package

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Finding is one reported diagnostic.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
	// Suppressed carries the lint:ignore justification when the finding
	// was waived; empty for live findings.
	Suppressed string `json:"suppressed,omitempty"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Run applies the analyzers to the packages, drops findings suppressed by
// lint:ignore directives, and returns the rest sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	kept, _, err := RunAll(pkgs, analyzers)
	return kept, err
}

// RunAll is Run, but it also returns the findings that lint:ignore
// directives suppressed (each tagged with its justification), so drivers
// can count and publish the waived exceptions alongside the live ones —
// the -json CI artifact reports both. Both slices are sorted by position.
func RunAll(pkgs []*Package, analyzers []*Analyzer) (kept, suppressed []Finding, err error) {
	var findings []Finding
	for _, a := range analyzers {
		if a.Run == nil {
			return nil, nil, fmt.Errorf("lint: analyzer %q has no Run function", a.Name)
		}
		for _, pkg := range pkgs {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.PkgPath) {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, All: pkgs, findings: &findings}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	kept, suppressed = suppressIgnored(pkgs, findings)
	sortFindings(kept)
	sortFindings(suppressed)
	return kept, suppressed, nil
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// ignoreKey locates one lint:ignore directive.
type ignoreKey struct {
	file string
	line int
}

// ignoreDirective is one parsed lint:ignore comment.
type ignoreDirective struct {
	names  []string
	reason string
}

// suppressIgnored splits findings into those that survive and those
// covered by a lint:ignore directive on the same line or the line
// directly above; suppressed findings carry the directive's reason.
func suppressIgnored(pkgs []*Package, findings []Finding) (kept, suppressed []Finding) {
	ignores := map[ignoreKey][]ignoreDirective{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Syntax {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					d, ok := parseIgnore(c.Text)
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					k := ignoreKey{pos.Filename, pos.Line}
					ignores[k] = append(ignores[k], d)
				}
			}
		}
	}
	if len(ignores) == 0 {
		return findings, nil
	}
	kept = findings[:0]
	for _, f := range findings {
		reason, ok := ignoredAt(ignores, f.Pos.Filename, f.Pos.Line, f.Analyzer)
		if !ok {
			reason, ok = ignoredAt(ignores, f.Pos.Filename, f.Pos.Line-1, f.Analyzer)
		}
		if ok {
			f.Suppressed = reason
			suppressed = append(suppressed, f)
			continue
		}
		kept = append(kept, f)
	}
	return kept, suppressed
}

func ignoredAt(ignores map[ignoreKey][]ignoreDirective, file string, line int, analyzer string) (string, bool) {
	for _, d := range ignores[ignoreKey{file, line}] {
		for _, name := range d.names {
			if name == "*" || name == analyzer {
				return d.reason, true
			}
		}
	}
	return "", false
}

// parseIgnore recognizes "//lint:ignore name1,name2 justification" and
// returns the analyzer names plus the justification. Directives without
// a justification are not honored, so every suppression carries its
// reason in the source.
func parseIgnore(text string) (ignoreDirective, bool) {
	const prefix = "//lint:ignore "
	if !strings.HasPrefix(text, prefix) {
		return ignoreDirective{}, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, prefix))
	fields := strings.Fields(rest)
	if len(fields) < 2 { // names + at least one word of justification
		return ignoreDirective{}, false
	}
	return ignoreDirective{
		names:  strings.Split(fields[0], ","),
		reason: strings.Join(fields[1:], " "),
	}, true
}

// InspectFuncDecls walks every function declaration with a body in the
// package — the shared entry point of the syntactic analyzers.
func InspectFuncDecls(pkg *Package, fn func(file *ast.File, decl *ast.FuncDecl)) {
	for _, file := range pkg.Syntax {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(file, fd)
			}
		}
	}
}
