// Package lint is a minimal, dependency-free static-analysis framework
// for the abivm tree. It mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer / Pass / diagnostics) but is built entirely on the standard
// library (go/parser + go/types), so the module keeps its zero-dependency,
// offline-buildable property.
//
// Analyzers check invariants the compiler cannot see — core.Vector
// aliasing, float64 equality in cost-bearing code, dropped errors, and
// undocumented panics — and are wired together by cmd/abivmlint.
//
// A finding can be suppressed with a directive comment on the offending
// line or the line directly above it:
//
//	//lint:ignore vecalias the callee owns the vector by contract
//
// The first field after "ignore" is a comma-separated list of analyzer
// names ("*" matches every analyzer); the rest of the line is a mandatory
// justification.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in findings and ignore directives.
	Name string
	// Doc is a one-paragraph description shown by abivmlint -list.
	Doc string
	// AppliesTo filters the packages the driver hands to Run; nil means
	// every package. Tests bypass the filter and feed fixtures directly.
	AppliesTo func(pkgPath string) bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// All holds every loaded package, for whole-program analyses such as
	// panicdoc's transitive panic propagation.
	All []*Package

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Finding is one reported diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Run applies the analyzers to the packages, drops findings suppressed by
// lint:ignore directives, and returns the rest sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, a := range analyzers {
		if a.Run == nil {
			return nil, fmt.Errorf("lint: analyzer %q has no Run function", a.Name)
		}
		for _, pkg := range pkgs {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.PkgPath) {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, All: pkgs, findings: &findings}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	findings = suppressIgnored(pkgs, findings)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// ignoreKey locates one lint:ignore directive.
type ignoreKey struct {
	file string
	line int
}

// suppressIgnored removes findings covered by a lint:ignore directive on
// the same line or the line directly above.
func suppressIgnored(pkgs []*Package, findings []Finding) []Finding {
	ignores := map[ignoreKey][]string{} // position -> analyzer names
	for _, pkg := range pkgs {
		for _, file := range pkg.Syntax {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					names, ok := parseIgnore(c.Text)
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					k := ignoreKey{pos.Filename, pos.Line}
					ignores[k] = append(ignores[k], names...)
				}
			}
		}
	}
	if len(ignores) == 0 {
		return findings
	}
	kept := findings[:0]
	for _, f := range findings {
		if ignoredAt(ignores, f.Pos.Filename, f.Pos.Line, f.Analyzer) ||
			ignoredAt(ignores, f.Pos.Filename, f.Pos.Line-1, f.Analyzer) {
			continue
		}
		kept = append(kept, f)
	}
	return kept
}

func ignoredAt(ignores map[ignoreKey][]string, file string, line int, analyzer string) bool {
	for _, name := range ignores[ignoreKey{file, line}] {
		if name == "*" || name == analyzer {
			return true
		}
	}
	return false
}

// parseIgnore recognizes "//lint:ignore name1,name2 justification" and
// returns the analyzer names. Directives without a justification are not
// honored, so every suppression carries its reason in the source.
func parseIgnore(text string) ([]string, bool) {
	const prefix = "//lint:ignore "
	if !strings.HasPrefix(text, prefix) {
		return nil, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, prefix))
	fields := strings.Fields(rest)
	if len(fields) < 2 { // names + at least one word of justification
		return nil, false
	}
	return strings.Split(fields[0], ","), true
}

// InspectFuncDecls walks every function declaration with a body in the
// package — the shared entry point of the syntactic analyzers.
func InspectFuncDecls(pkg *Package, fn func(file *ast.File, decl *ast.FuncDecl)) {
	for _, file := range pkg.Syntax {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(file, fd)
			}
		}
	}
}
