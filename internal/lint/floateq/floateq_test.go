package floateq_test

import (
	"testing"

	"abivm/internal/lint"
	"abivm/internal/lint/floateq"
)

func TestFloatEqFixture(t *testing.T) {
	lint.RunFixture(t, floateq.Analyzer, "testdata/src/costcode")
}

func TestAppliesToCostPackages(t *testing.T) {
	applies := floateq.Analyzer.AppliesTo
	for _, path := range []string{
		"abivm/internal/costfn", "abivm/internal/costmodel", "abivm/internal/lgm",
		"abivm/internal/astar", "abivm/internal/policy", "abivm/internal/core",
	} {
		if !applies(path) {
			t.Errorf("floateq should apply to %s", path)
		}
	}
	for _, path := range []string{"abivm", "abivm/internal/storage", "abivm/internal/sim"} {
		if applies(path) {
			t.Errorf("floateq should not apply to %s", path)
		}
	}
}
