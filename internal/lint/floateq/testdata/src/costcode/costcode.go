// Package costcode is a floateq fixture standing in for a cost-bearing
// package.
package costcode

func eq(a, b float64) bool {
	return a == b // want "== between float64"
}

func neq(a, b float64) bool {
	return a != b // want "!= between float64"
}

func mixedOperand(a float64, b int) bool {
	return a == float64(b) // want "== between float64"
}

func zeroCompare(cost float64) bool {
	return cost != 0 // want "!= between float64"
}

func intCompare(a, b int) bool {
	return a == b // negative: ints compare exactly
}

func constCompare() bool {
	return 1.5 == 3.0/2.0 // negative: both compile-time constants
}

func ordered(a, b float64) bool {
	return a <= b // negative: ordering comparisons are fine
}

// ApproxEq is the approved epsilon helper shape; raw comparisons inside
// it are the point.
func ApproxEq(a, b float64) bool {
	return a == b // negative: approx helpers are exempt
}

func suppressed(a float64) bool {
	//lint:ignore floateq the contract requires an exact zero
	return a == 0
}
