// Package floateq flags == and != between floating-point expressions in
// the cost-bearing packages (costfn, costmodel, lgm, astar, policy, and
// core itself). Costs there are accumulated float64 sums compared against
// the response-time constraint C; exact equality on such values is almost
// always a latent bug — two mathematically equal costs computed along
// different summation orders differ in the last ulp. Comparisons must go
// through the epsilon helpers core.ApproxEq / core.ApproxLE instead.
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"abivm/internal/lint"
)

// costPackages are the package basenames whose float comparisons the
// driver scrutinizes.
var costPackages = map[string]bool{
	"core":      true,
	"costfn":    true,
	"costmodel": true,
	"lgm":       true,
	"astar":     true,
	"policy":    true,
}

// Analyzer is the floateq check.
var Analyzer = &lint.Analyzer{
	Name: "floateq",
	Doc: "flags ==/!= between floating-point expressions in cost-bearing " +
		"packages; use core.ApproxEq/ApproxLE instead",
	AppliesTo: func(pkgPath string) bool {
		return costPackages[pkgPath[strings.LastIndex(pkgPath, "/")+1:]]
	},
	Run: run,
}

func run(pass *lint.Pass) error {
	info := pass.Pkg.TypesInfo
	lint.InspectFuncDecls(pass.Pkg, func(_ *ast.File, decl *ast.FuncDecl) {
		// The epsilon helpers themselves are the approved home of raw
		// float comparisons.
		if strings.HasPrefix(strings.ToLower(decl.Name.Name), "approx") {
			return
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(info, be.X) && !isFloat(info, be.Y) {
				return true
			}
			// Two compile-time constants compare exactly by definition.
			if isConst(info, be.X) && isConst(info, be.Y) {
				return true
			}
			pass.Reportf(be.OpPos, "%s between float64 expressions; use core.ApproxEq/ApproxLE (or restructure the comparison)", be.Op)
			return true
		})
	})
	return nil
}

func isFloat(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}
