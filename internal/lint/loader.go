package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Loader parses and type-checks packages of a single module without any
// external tooling: module-local imports are resolved by walking the
// module tree, standard-library imports through the compiler's source
// importer. It deliberately supports only what this repo needs — one
// module, no vendoring, no cgo, no build tags — which keeps it small
// enough to audit and free of golang.org/x/tools.
type Loader struct {
	ModRoot string // directory containing go.mod
	ModPath string // module path declared in go.mod
	Fset    *token.FileSet

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader reads go.mod under modRoot and prepares a loader.
func NewLoader(modRoot string) (*Loader, error) {
	modRoot, err := filepath.Abs(modRoot)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: reading go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.Trim(strings.TrimSpace(rest), `"`)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", modRoot)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModRoot: modRoot,
		ModPath: modPath,
		Fset:    fset,
		// The "source" importer type-checks the standard library from
		// GOROOT/src; unlike export-data importers it needs no compiled
		// artifacts and no subprocesses, so it works in a bare container.
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// Load resolves the patterns ("./...", "dir/...", or plain relative
// directories) and returns the matched packages sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		root := l.ModRoot
		recursive := false
		if pat == "..." {
			recursive = true
		} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			root = filepath.Join(l.ModRoot, rest)
			recursive = true
		} else if pat != "" && pat != "." {
			root = filepath.Join(l.ModRoot, pat)
		}
		if !recursive {
			dirs[root] = true
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				dirs[path] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	var out []*Package
	for dir := range dirs {
		rel, err := filepath.Rel(l.ModRoot, dir)
		if err != nil {
			return nil, err
		}
		pkgPath := l.ModPath
		if rel != "." {
			pkgPath = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.loadPath(pkgPath)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// LoadDir type-checks a single directory outside the module layout (e.g.
// a testdata fixture) under the given synthetic import path. Imports of
// module packages and of the standard library resolve normally.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.check(dir, asPath)
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if isSourceFile(e) {
			return true
		}
	}
	return false
}

func isSourceFile(e os.DirEntry) bool {
	name := e.Name()
	return !e.IsDir() && strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_")
}

// loadPath loads a module-local package by import path, caching results
// and detecting cycles.
func (l *Loader) loadPath(pkgPath string) (*Package, error) {
	if pkg, ok := l.pkgs[pkgPath]; ok {
		return pkg, nil
	}
	if l.loading[pkgPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", pkgPath)
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(pkgPath, l.ModPath), "/")
	dir := filepath.Join(l.ModRoot, filepath.FromSlash(rel))
	l.loading[pkgPath] = true
	defer delete(l.loading, pkgPath)
	pkg, err := l.check(dir, pkgPath)
	if err != nil {
		return nil, err
	}
	l.pkgs[pkgPath] = pkg
	return pkg, nil
}

// check parses and type-checks the non-test Go files of one directory.
func (l *Loader) check(dir, pkgPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if !isSourceFile(e) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: importerFunc(l.importPkg)}
	tpkg, err := conf.Check(pkgPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", pkgPath, err)
	}
	return &Package{
		PkgPath:   pkgPath,
		Dir:       dir,
		Fset:      l.Fset,
		Syntax:    files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// importPkg resolves one import: module-local paths through the loader,
// everything else through the standard-library source importer.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		pkg, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
