// Package panicdoc flags exported functions of the public abivm package
// and of internal/core that can reach a panic call — directly or through
// static calls into other module packages — without the word "panic"
// appearing in their doc comment. Callers of the public surface must be
// able to tell, from the documentation alone, which entry points can blow
// up on malformed input (length-mismatched vectors, oversized instances)
// and which return errors.
//
// The reachability analysis is intra-module and static: calls through
// interfaces or function values, and panics inside the standard library,
// are not tracked. A function whose body installs a deferred recover() is
// treated as non-panicking and stops propagation.
package panicdoc

import (
	"go/ast"
	"go/types"
	"strings"

	"abivm/internal/lint"
)

// Analyzer is the panicdoc check.
var Analyzer = &lint.Analyzer{
	Name: "panicdoc",
	Doc: "flags exported functions in abivm and internal/core that can reach " +
		"panic without a \"panics\" mention in their doc comment",
	AppliesTo: func(pkgPath string) bool {
		return !strings.Contains(pkgPath, "/") || strings.HasSuffix(pkgPath, "/internal/core")
	},
	Run: run,
}

// funcFacts summarizes one function declaration for the reachability
// fixpoint.
type funcFacts struct {
	decl     *ast.FuncDecl
	panics   bool // contains a direct call to the panic builtin
	recovers bool // installs a deferred recover()
	callees  []*types.Func
}

func run(pass *lint.Pass) error {
	facts := map[*types.Func]*funcFacts{}
	for _, pkg := range pass.All {
		collect(pkg, facts)
	}
	// Ensure the current package is covered even when the driver passed a
	// single fixture package not included in All.
	collect(pass.Pkg, facts)

	panicky := solve(facts)

	for _, file := range pass.Pkg.Syntax {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !exportedAPI(pass.Pkg.TypesInfo, fd) {
				continue
			}
			fn, ok := pass.Pkg.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok || !panicky[fn] {
				continue
			}
			if docMentionsPanic(fd.Doc) {
				continue
			}
			pass.Reportf(fd.Name.Pos(), "exported %s can reach panic but its doc comment does not mention it; add a \"panics if ...\" sentence", describe(fd))
		}
	}
	return nil
}

// collect gathers per-function facts for one package.
func collect(pkg *lint.Package, facts map[*types.Func]*funcFacts) {
	info := pkg.TypesInfo
	lint.InspectFuncDecls(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
		fn, ok := info.Defs[fd.Name].(*types.Func)
		if !ok {
			return
		}
		if _, seen := facts[fn]; seen {
			return
		}
		f := &funcFacts{decl: fd}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				if deferInstallsRecover(info, n) {
					f.recovers = true
				}
			case *ast.CallExpr:
				if isBuiltin(info, n.Fun, "panic") {
					f.panics = true
				} else if callee := staticCallee(info, n); callee != nil {
					f.callees = append(f.callees, callee)
				}
			}
			return true
		})
		facts[fn] = f
	})
}

// solve propagates panickiness along static call edges to a fixed point.
// recover() acts as a barrier: a recovering function neither reports nor
// propagates panics of its callees.
func solve(facts map[*types.Func]*funcFacts) map[*types.Func]bool {
	panicky := map[*types.Func]bool{}
	for fn, f := range facts {
		if f.panics && !f.recovers {
			panicky[fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, f := range facts {
			if panicky[fn] || f.recovers {
				continue
			}
			for _, callee := range f.callees {
				if panicky[callee] {
					panicky[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return panicky
}

// exportedAPI reports whether fd is part of the package's exported
// surface: an exported function, or an exported method on an exported
// receiver type.
func exportedAPI(info *types.Info, fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil {
		return true
	}
	recv := fd.Recv.List[0].Type
	for {
		switch t := recv.(type) {
		case *ast.StarExpr:
			recv = t.X
		case *ast.IndexExpr: // generic receiver
			recv = t.X
		case *ast.Ident:
			return t.IsExported()
		default:
			return false
		}
	}
}

func docMentionsPanic(doc *ast.CommentGroup) bool {
	return doc != nil && strings.Contains(strings.ToLower(doc.Text()), "panic")
}

func describe(fd *ast.FuncDecl) string {
	if fd.Recv != nil {
		return "method " + fd.Name.Name
	}
	return "function " + fd.Name.Name
}

func isBuiltin(info *types.Info, fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// deferInstallsRecover recognizes both "defer recover()" and
// "defer func() { ... recover() ... }()".
func deferInstallsRecover(info *types.Info, d *ast.DeferStmt) bool {
	if isBuiltin(info, d.Call.Fun, "recover") {
		return true
	}
	lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isBuiltin(info, call.Fun, "recover") {
			found = true
		}
		return !found
	})
	return found
}

// staticCallee resolves a call to a statically known *types.Func:
// package-level functions and concrete method calls. Interface dispatch
// and function values return nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				// Interface methods have no body to analyze; returning
				// them is harmless (no facts => never panicky).
				return fn
			}
			return nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
