// Package panicky is a panicdoc fixture.
package panicky

// Boom explodes unconditionally.
func Boom() { // want "exported function Boom can reach panic"
	panic("boom")
}

// Documented panics if called; the mention satisfies the check.
func Documented() {
	panic("documented")
}

// Indirect delegates to an unexported helper.
func Indirect() { // want "exported function Indirect can reach panic"
	helper()
}

// TwoHops delegates through two static calls.
func TwoHops() { // want "exported function TwoHops can reach panic"
	middle()
}

func middle() { helper() }

func helper() { panic("helper") }

// Safe never reaches a panic call.
func Safe() int {
	return 1
}

// Recovered calls a panicking helper behind a deferred recover, so the
// panic cannot escape.
func Recovered() {
	defer func() { _ = recover() }()
	helper()
}

// Gadget is an exported receiver for the method cases.
type Gadget struct{}

// Hit trips the failure path.
func (Gadget) Hit() { // want "exported method Hit can reach panic"
	panic("hit")
}

// Miss panics if provoked — documented, so quiet.
func (Gadget) Miss() {
	panic("miss")
}

// Suppressed reaches the failure path but the site is explicitly waived.
//
//lint:ignore panicdoc unreachable by construction in this fixture
func Suppressed() {
	helper()
}
