package panicdoc_test

import (
	"testing"

	"abivm/internal/lint"
	"abivm/internal/lint/panicdoc"
)

func TestPanicDocFixture(t *testing.T) {
	lint.RunFixture(t, panicdoc.Analyzer, "testdata/src/panicky")
}

func TestAppliesToPublicSurface(t *testing.T) {
	applies := panicdoc.Analyzer.AppliesTo
	if !applies("abivm") || !applies("abivm/internal/core") {
		t.Error("panicdoc should apply to abivm and abivm/internal/core")
	}
	for _, path := range []string{"abivm/internal/policy", "abivm/cmd/abivm"} {
		if applies(path) {
			t.Errorf("panicdoc should not apply to %s", path)
		}
	}
}
