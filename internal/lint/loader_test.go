package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module for loader error-path tests:
// a go.mod (unless modLine is "") and the given relative-path → content
// files.
func writeModule(t *testing.T, modLine string, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	if modLine != "" {
		if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte(modLine), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestNewLoaderMissingGoMod(t *testing.T) {
	root := writeModule(t, "", nil)
	if _, err := NewLoader(root); err == nil {
		t.Fatal("NewLoader on a directory without go.mod: want error, got nil")
	} else if !strings.Contains(err.Error(), "go.mod") {
		t.Fatalf("error should mention go.mod: %v", err)
	}
}

func TestNewLoaderNoModuleDirective(t *testing.T) {
	root := writeModule(t, "go 1.22\n", nil)
	_, err := NewLoader(root)
	if err == nil {
		t.Fatal("NewLoader on go.mod without a module line: want error, got nil")
	}
	if !strings.Contains(err.Error(), "no module directive") {
		t.Fatalf("error should name the missing module directive: %v", err)
	}
}

func TestLoadUnparsableFile(t *testing.T) {
	root := writeModule(t, "module broken\n", map[string]string{
		"bad/bad.go": "package bad\n\nfunc oops() {\n", // unbalanced brace
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Load("bad"); err == nil {
		t.Fatal("loading a package with a syntax error: want error, got nil")
	}
}

func TestLoadEmptyPackageDir(t *testing.T) {
	root := writeModule(t, "module empty\n", map[string]string{
		// Only a test file: not a source file, so the directory has no
		// loadable Go files.
		"only/only_test.go": "package only\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	_, err = l.Load("only")
	if err == nil {
		t.Fatal("loading a directory without non-test Go files: want error, got nil")
	}
	if !strings.Contains(err.Error(), "no Go files") {
		t.Fatalf("error should say the directory has no Go files: %v", err)
	}
}

func TestLoadTypeCheckFailure(t *testing.T) {
	root := writeModule(t, "module typo\n", map[string]string{
		"p/p.go": "package p\n\nvar x undeclaredType\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	_, err = l.Load("p")
	if err == nil {
		t.Fatal("loading a package that fails type-checking: want error, got nil")
	}
	if !strings.Contains(err.Error(), "type-checking") {
		t.Fatalf("error should come from the type-check phase: %v", err)
	}
}

func TestLoadImportCycle(t *testing.T) {
	root := writeModule(t, "module cyc\n", map[string]string{
		"a/a.go": "package a\n\nimport \"cyc/b\"\n\nvar _ = b.B\n",
		"b/b.go": "package b\n\nimport \"cyc/a\"\n\nvar B = 1\n\nvar _ = a.A\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	_, err = l.Load("a")
	if err == nil {
		t.Fatal("loading an import cycle: want error, got nil")
	}
	if !strings.Contains(err.Error(), "import cycle") {
		t.Fatalf("error should name the import cycle: %v", err)
	}
}

func TestLoadDirOutsideModule(t *testing.T) {
	root := writeModule(t, "module host\n", nil)
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	fixture := t.TempDir()
	if err := os.WriteFile(filepath.Join(fixture, "f.go"), []byte("package f\n\nvar F = 42\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(fixture, "example.test/f")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.PkgPath != "example.test/f" {
		t.Fatalf("PkgPath = %q, want the synthetic path", pkg.PkgPath)
	}
	if pkg.Types == nil || pkg.TypesInfo == nil || len(pkg.Syntax) != 1 {
		t.Fatalf("loaded package is missing type info or syntax: %+v", pkg)
	}
}

func TestLoadRecursivePatternSkipsTestdata(t *testing.T) {
	root := writeModule(t, "module walk\n", map[string]string{
		"p/p.go":               "package p\n",
		"p/testdata/skip.go":   "package not even parseable {{{\n",
		"p/_hidden/skip.go":    "package also broken (((\n",
		"p/.dotted/skip.go":    "package broken too )))\n",
		"p/inner/q.go":         "package inner\n",
		"p/inner/docsonly.txt": "not go\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("p/...")
	if err != nil {
		t.Fatalf("recursive load should skip testdata/_ /. dirs: %v", err)
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.PkgPath)
	}
	want := []string{"walk/p", "walk/p/inner"}
	if len(paths) != len(want) || paths[0] != want[0] || paths[1] != want[1] {
		t.Fatalf("Load(p/...) = %v, want %v", paths, want)
	}
}
