package btree

import (
	"math/rand"
	"sort"
	"testing"
)

func TestAscendFrom(t *testing.T) {
	m := New[int, int](intCmp)
	for i := 0; i < 100; i += 2 { // even keys
		m.Set(i, i)
	}
	var got []int
	m.AscendFrom(31, func(k, v int) bool {
		got = append(got, k)
		return true
	})
	if len(got) == 0 || got[0] != 32 {
		t.Fatalf("first key = %v, want 32", got)
	}
	if got[len(got)-1] != 98 {
		t.Fatalf("last key = %d, want 98", got[len(got)-1])
	}
	if !sort.IntsAreSorted(got) {
		t.Fatal("not sorted")
	}
	// Inclusive at an existing key.
	got = got[:0]
	m.AscendFrom(32, func(k, v int) bool {
		got = append(got, k)
		return true
	})
	if got[0] != 32 {
		t.Fatalf("AscendFrom not inclusive: first = %d", got[0])
	}
}

func TestAscendFromEarlyStop(t *testing.T) {
	m := New[int, int](intCmp)
	for i := 0; i < 1000; i++ {
		m.Set(i, i)
	}
	count := 0
	m.AscendFrom(500, func(k, v int) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("visited %d, want 5", count)
	}
}

func TestAscendFromEmptyAndBeyond(t *testing.T) {
	m := New[int, int](intCmp)
	calls := 0
	m.AscendFrom(0, func(int, int) bool { calls++; return true })
	if calls != 0 {
		t.Fatal("empty tree visited entries")
	}
	m.Set(1, 1)
	m.AscendFrom(100, func(int, int) bool { calls++; return true })
	if calls != 0 {
		t.Fatal("AscendFrom beyond max visited entries")
	}
}

func TestAscendFromRandomizedAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := New[int, int](intCmp)
	keys := map[int]bool{}
	for i := 0; i < 3000; i++ {
		k := rng.Intn(10000)
		m.Set(k, k)
		keys[k] = true
	}
	sorted := make([]int, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Ints(sorted)
	for trial := 0; trial < 50; trial++ {
		lo := rng.Intn(10000)
		idx := sort.SearchInts(sorted, lo)
		var got []int
		m.AscendFrom(lo, func(k, v int) bool {
			got = append(got, k)
			return true
		})
		want := sorted[idx:]
		if len(got) != len(want) {
			t.Fatalf("lo=%d: %d keys, want %d", lo, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("lo=%d: mismatch at %d", lo, i)
			}
		}
	}
}
