// Package btree implements an in-memory B-tree ordered map. The storage
// engine uses it for ordered secondary indexes and the IVM engine for the
// auxiliary value multisets that make MIN/MAX maintainable under deletes.
//
// The tree is generic over the key type with an explicit comparison
// function, holds one value per key, and supports point operations,
// ordered iteration, and range scans. It is not safe for concurrent use;
// the engine serializes access (single-writer semantics).
package btree

// degree is the minimum number of children of an internal node (except
// the root). Nodes hold between degree-1 and 2*degree-1 items.
const degree = 16

const maxItems = 2*degree - 1

// Map is a B-tree ordered map from K to V ordered by the provided
// comparison function.
type Map[K, V any] struct {
	cmp  func(a, b K) int
	root *node[K, V]
	size int
}

type item[K, V any] struct {
	key K
	val V
}

type node[K, V any] struct {
	items    []item[K, V]
	children []*node[K, V] // nil for leaves
}

func (n *node[K, V]) leaf() bool { return n.children == nil }

// New returns an empty map ordered by cmp, which must return a negative,
// zero, or positive value for a<b, a==b, a>b respectively.
func New[K, V any](cmp func(a, b K) int) *Map[K, V] {
	if cmp == nil {
		panic("btree: nil comparison function")
	}
	return &Map[K, V]{cmp: cmp}
}

// Len returns the number of keys in the map.
func (m *Map[K, V]) Len() int { return m.size }

// find locates key within a node's items: it returns the index and
// whether the key was found; when not found, the index is the child to
// descend into (or the insertion point in a leaf).
func (m *Map[K, V]) find(n *node[K, V], key K) (int, bool) {
	lo, hi := 0, len(n.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if m.cmp(n.items[mid].key, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.items) && m.cmp(n.items[lo].key, key) == 0 {
		return lo, true
	}
	return lo, false
}

// Get returns the value stored under key.
func (m *Map[K, V]) Get(key K) (V, bool) {
	n := m.root
	for n != nil {
		i, ok := m.find(n, key)
		if ok {
			return n.items[i].val, true
		}
		if n.leaf() {
			break
		}
		n = n.children[i]
	}
	var zero V
	return zero, false
}

// Set stores val under key, replacing any existing value. It reports
// whether the key was newly inserted.
func (m *Map[K, V]) Set(key K, val V) bool {
	if m.root == nil {
		m.root = &node[K, V]{items: []item[K, V]{{key, val}}}
		m.size = 1
		return true
	}
	if len(m.root.items) == maxItems {
		old := m.root
		m.root = &node[K, V]{children: []*node[K, V]{old}}
		m.splitChild(m.root, 0)
	}
	inserted := m.insertNonFull(m.root, key, val)
	if inserted {
		m.size++
	}
	return inserted
}

// splitChild splits the full child at index i of parent p.
func (m *Map[K, V]) splitChild(p *node[K, V], i int) {
	child := p.children[i]
	mid := len(child.items) / 2
	midItem := child.items[mid]

	right := &node[K, V]{}
	right.items = append(right.items, child.items[mid+1:]...)
	child.items = child.items[:mid]
	if !child.leaf() {
		right.children = append(right.children, child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}

	p.items = append(p.items, item[K, V]{})
	copy(p.items[i+1:], p.items[i:])
	p.items[i] = midItem

	p.children = append(p.children, nil)
	copy(p.children[i+2:], p.children[i+1:])
	p.children[i+1] = right
}

func (m *Map[K, V]) insertNonFull(n *node[K, V], key K, val V) bool {
	for {
		i, ok := m.find(n, key)
		if ok {
			n.items[i].val = val
			return false
		}
		if n.leaf() {
			n.items = append(n.items, item[K, V]{})
			copy(n.items[i+1:], n.items[i:])
			n.items[i] = item[K, V]{key, val}
			return true
		}
		if len(n.children[i].items) == maxItems {
			m.splitChild(n, i)
			switch c := m.cmp(key, n.items[i].key); {
			case c == 0:
				n.items[i].val = val
				return false
			case c > 0:
				i++
			}
		}
		n = n.children[i]
	}
}

// Delete removes key from the map and reports whether it was present.
func (m *Map[K, V]) Delete(key K) bool {
	if m.root == nil {
		return false
	}
	deleted := m.delete(m.root, key)
	if len(m.root.items) == 0 {
		if m.root.leaf() {
			m.root = nil
		} else {
			m.root = m.root.children[0]
		}
	}
	if deleted {
		m.size--
	}
	return deleted
}

// delete removes key from the subtree rooted at n, which is guaranteed to
// have at least degree items unless it is the root.
func (m *Map[K, V]) delete(n *node[K, V], key K) bool {
	i, found := m.find(n, key)
	if n.leaf() {
		if !found {
			return false
		}
		n.items = append(n.items[:i], n.items[i+1:]...)
		return true
	}
	if found {
		// Replace with predecessor from the left child (after ensuring it
		// can spare an item), then delete the predecessor recursively.
		if len(n.children[i].items) >= degree {
			pred := m.max(n.children[i])
			n.items[i] = pred
			return m.delete(n.children[i], pred.key)
		}
		if len(n.children[i+1].items) >= degree {
			succ := m.min(n.children[i+1])
			n.items[i] = succ
			return m.delete(n.children[i+1], succ.key)
		}
		m.merge(n, i)
		return m.delete(n.children[i], key)
	}
	// Descend into child i, topping it up to degree items first.
	child := n.children[i]
	if len(child.items) < degree {
		i = m.fill(n, i)
		child = n.children[i]
		// The key's position may have shifted after a merge; re-resolve.
		return m.delete(child, key)
	}
	return m.delete(child, key)
}

// fill ensures n.children[i] has at least degree items by borrowing from a
// sibling or merging; it returns the index of the child that now covers
// the original key range.
func (m *Map[K, V]) fill(n *node[K, V], i int) int {
	if i > 0 && len(n.children[i-1].items) >= degree {
		m.borrowFromLeft(n, i)
		return i
	}
	if i < len(n.children)-1 && len(n.children[i+1].items) >= degree {
		m.borrowFromRight(n, i)
		return i
	}
	if i < len(n.children)-1 {
		m.merge(n, i)
		return i
	}
	m.merge(n, i-1)
	return i - 1
}

func (m *Map[K, V]) borrowFromLeft(n *node[K, V], i int) {
	child, left := n.children[i], n.children[i-1]
	child.items = append(child.items, item[K, V]{})
	copy(child.items[1:], child.items)
	child.items[0] = n.items[i-1]
	n.items[i-1] = left.items[len(left.items)-1]
	left.items = left.items[:len(left.items)-1]
	if !child.leaf() {
		child.children = append(child.children, nil)
		copy(child.children[1:], child.children)
		child.children[0] = left.children[len(left.children)-1]
		left.children = left.children[:len(left.children)-1]
	}
}

func (m *Map[K, V]) borrowFromRight(n *node[K, V], i int) {
	child, right := n.children[i], n.children[i+1]
	child.items = append(child.items, n.items[i])
	n.items[i] = right.items[0]
	right.items = append(right.items[:0], right.items[1:]...)
	if !child.leaf() {
		child.children = append(child.children, right.children[0])
		right.children = append(right.children[:0], right.children[1:]...)
	}
}

// merge folds n.children[i+1] and separator i into n.children[i].
func (m *Map[K, V]) merge(n *node[K, V], i int) {
	child, right := n.children[i], n.children[i+1]
	child.items = append(child.items, n.items[i])
	child.items = append(child.items, right.items...)
	if !child.leaf() {
		child.children = append(child.children, right.children...)
	}
	n.items = append(n.items[:i], n.items[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

func (m *Map[K, V]) min(n *node[K, V]) item[K, V] {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.items[0]
}

func (m *Map[K, V]) max(n *node[K, V]) item[K, V] {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.items[len(n.items)-1]
}

// Min returns the smallest key and its value.
func (m *Map[K, V]) Min() (K, V, bool) {
	if m.root == nil || m.size == 0 {
		var k K
		var v V
		return k, v, false
	}
	it := m.min(m.root)
	return it.key, it.val, true
}

// Max returns the largest key and its value.
func (m *Map[K, V]) Max() (K, V, bool) {
	if m.root == nil || m.size == 0 {
		var k K
		var v V
		return k, v, false
	}
	it := m.max(m.root)
	return it.key, it.val, true
}

// Ascend visits all entries in ascending key order until fn returns false.
func (m *Map[K, V]) Ascend(fn func(key K, val V) bool) {
	m.ascend(m.root, fn)
}

func (m *Map[K, V]) ascend(n *node[K, V], fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	for i, it := range n.items {
		if !n.leaf() {
			if !m.ascend(n.children[i], fn) {
				return false
			}
		}
		if !fn(it.key, it.val) {
			return false
		}
	}
	if !n.leaf() {
		return m.ascend(n.children[len(n.children)-1], fn)
	}
	return true
}

// AscendFrom visits entries with key >= lo in ascending order until fn
// returns false.
func (m *Map[K, V]) AscendFrom(lo K, fn func(key K, val V) bool) {
	m.ascendFrom(m.root, lo, fn)
}

func (m *Map[K, V]) ascendFrom(n *node[K, V], lo K, fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	start, _ := m.find(n, lo)
	for i := start; i < len(n.items); i++ {
		if !n.leaf() {
			if !m.ascendFrom(n.children[i], lo, fn) {
				return false
			}
		}
		if !fn(n.items[i].key, n.items[i].val) {
			return false
		}
	}
	if !n.leaf() {
		return m.ascendFrom(n.children[len(n.children)-1], lo, fn)
	}
	return true
}

// AscendRange visits entries with lo <= key < hi in ascending order until
// fn returns false.
func (m *Map[K, V]) AscendRange(lo, hi K, fn func(key K, val V) bool) {
	m.ascendRange(m.root, lo, hi, fn)
}

func (m *Map[K, V]) ascendRange(n *node[K, V], lo, hi K, fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	start, _ := m.find(n, lo)
	for i := start; i < len(n.items); i++ {
		if !n.leaf() {
			if !m.ascendRange(n.children[i], lo, hi, fn) {
				return false
			}
		}
		if m.cmp(n.items[i].key, hi) >= 0 {
			return false
		}
		if !fn(n.items[i].key, n.items[i].val) {
			return false
		}
	}
	if !n.leaf() {
		return m.ascendRange(n.children[len(n.children)-1], lo, hi, fn)
	}
	return true
}
