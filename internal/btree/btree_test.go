package btree

import (
	"math/rand"
	"sort"
	"testing"
)

func intCmp(a, b int) int { return a - b }

func TestEmptyMap(t *testing.T) {
	m := New[int, string](intCmp)
	if m.Len() != 0 {
		t.Fatalf("Len = %d", m.Len())
	}
	if _, ok := m.Get(1); ok {
		t.Fatal("Get on empty map found a key")
	}
	if m.Delete(1) {
		t.Fatal("Delete on empty map reported success")
	}
	if _, _, ok := m.Min(); ok {
		t.Fatal("Min on empty map")
	}
	if _, _, ok := m.Max(); ok {
		t.Fatal("Max on empty map")
	}
	calls := 0
	m.Ascend(func(int, string) bool { calls++; return true })
	if calls != 0 {
		t.Fatal("Ascend visited entries of an empty map")
	}
}

func TestSetGetDelete(t *testing.T) {
	m := New[int, int](intCmp)
	if !m.Set(5, 50) {
		t.Fatal("first Set not reported as insert")
	}
	if m.Set(5, 55) {
		t.Fatal("overwrite reported as insert")
	}
	if v, ok := m.Get(5); !ok || v != 55 {
		t.Fatalf("Get = (%d, %t)", v, ok)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
	if !m.Delete(5) {
		t.Fatal("Delete failed")
	}
	if m.Len() != 0 {
		t.Fatalf("Len after delete = %d", m.Len())
	}
	if _, ok := m.Get(5); ok {
		t.Fatal("deleted key still present")
	}
}

func TestOrderedIteration(t *testing.T) {
	m := New[int, int](intCmp)
	perm := rand.New(rand.NewSource(1)).Perm(1000)
	for _, k := range perm {
		m.Set(k, k*10)
	}
	var keys []int
	m.Ascend(func(k, v int) bool {
		if v != k*10 {
			t.Fatalf("value mismatch at key %d: %d", k, v)
		}
		keys = append(keys, k)
		return true
	})
	if len(keys) != 1000 {
		t.Fatalf("visited %d keys", len(keys))
	}
	if !sort.IntsAreSorted(keys) {
		t.Fatal("Ascend order not sorted")
	}
}

func TestAscendEarlyStop(t *testing.T) {
	m := New[int, int](intCmp)
	for i := 0; i < 100; i++ {
		m.Set(i, i)
	}
	count := 0
	m.Ascend(func(k, v int) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("visited %d, want 10", count)
	}
}

func TestAscendRange(t *testing.T) {
	m := New[int, int](intCmp)
	for i := 0; i < 200; i += 2 { // even keys only
		m.Set(i, i)
	}
	var got []int
	m.AscendRange(31, 61, func(k, v int) bool {
		got = append(got, k)
		return true
	})
	var want []int
	for i := 32; i < 61; i += 2 {
		want = append(want, i)
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestMinMax(t *testing.T) {
	m := New[int, string](intCmp)
	m.Set(10, "ten")
	m.Set(3, "three")
	m.Set(77, "seventy-seven")
	if k, v, ok := m.Min(); !ok || k != 3 || v != "three" {
		t.Fatalf("Min = (%d, %q, %t)", k, v, ok)
	}
	if k, v, ok := m.Max(); !ok || k != 77 || v != "seventy-seven" {
		t.Fatalf("Max = (%d, %q, %t)", k, v, ok)
	}
}

func TestRandomOpsAgainstReferenceMap(t *testing.T) {
	// Property test: a long random op sequence must agree with a Go map
	// plus sorting, at every step for Len and at checkpoints for content.
	rng := rand.New(rand.NewSource(42))
	m := New[int, int](intCmp)
	ref := map[int]int{}
	const ops = 30000
	for op := 0; op < ops; op++ {
		k := rng.Intn(2000)
		switch rng.Intn(3) {
		case 0, 1: // insert/overwrite biased 2:1
			v := rng.Int()
			_, existed := ref[k]
			inserted := m.Set(k, v)
			if inserted == existed {
				t.Fatalf("op %d: Set(%d) inserted=%t, ref existed=%t", op, k, inserted, existed)
			}
			ref[k] = v
		case 2:
			_, existed := ref[k]
			deleted := m.Delete(k)
			if deleted != existed {
				t.Fatalf("op %d: Delete(%d) = %t, ref existed=%t", op, k, deleted, existed)
			}
			delete(ref, k)
		}
		if m.Len() != len(ref) {
			t.Fatalf("op %d: Len %d != ref %d", op, m.Len(), len(ref))
		}
		if op%5000 == 0 {
			checkAgainstRef(t, m, ref)
		}
	}
	checkAgainstRef(t, m, ref)
}

func checkAgainstRef(t *testing.T, m *Map[int, int], ref map[int]int) {
	t.Helper()
	var keys []int
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	i := 0
	m.Ascend(func(k, v int) bool {
		if i >= len(keys) {
			t.Fatalf("extra key %d in tree", k)
		}
		if k != keys[i] || v != ref[k] {
			t.Fatalf("position %d: tree (%d,%d), ref (%d,%d)", i, k, v, keys[i], ref[keys[i]])
		}
		i++
		return true
	})
	if i != len(keys) {
		t.Fatalf("tree has %d keys, ref %d", i, len(keys))
	}
}

func TestDeleteAllAscendingAndDescending(t *testing.T) {
	for _, descending := range []bool{false, true} {
		m := New[int, int](intCmp)
		const n = 5000
		for i := 0; i < n; i++ {
			m.Set(i, i)
		}
		for i := 0; i < n; i++ {
			k := i
			if descending {
				k = n - 1 - i
			}
			if !m.Delete(k) {
				t.Fatalf("descending=%t: Delete(%d) failed", descending, k)
			}
		}
		if m.Len() != 0 {
			t.Fatalf("descending=%t: Len = %d after deleting all", descending, m.Len())
		}
	}
}

func TestStringKeys(t *testing.T) {
	m := New[string, int](func(a, b string) int {
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	})
	words := []string{"partsupp", "supplier", "nation", "region", "part"}
	for i, w := range words {
		m.Set(w, i)
	}
	if k, _, _ := m.Min(); k != "nation" {
		t.Fatalf("Min = %q", k)
	}
	if k, _, _ := m.Max(); k != "supplier" {
		t.Fatalf("Max = %q", k)
	}
}

func TestNewNilCmpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil cmp accepted")
		}
	}()
	New[int, int](nil)
}

func BenchmarkSet(b *testing.B) {
	m := New[int, int](intCmp)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		m.Set(rng.Intn(1<<20), i)
	}
}

func BenchmarkGet(b *testing.B) {
	m := New[int, int](intCmp)
	for i := 0; i < 1<<16; i++ {
		m.Set(i, i)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get(rng.Intn(1 << 16))
	}
}
