// Package staged explores the paper's third future-work direction
// (Section 7): asymmetry *within* a single table's maintenance query.
// "In the query plan representing a maintenance query, different
// operators may be more or less amenable to batch processing.
// Propagating modifications through some operators while batching them
// in front of others may lead to further savings."
//
// The model factors each table's maintenance pipeline into two stages:
//
//   - Stage A — the cheap prefix: joining the delta against small
//     dimension tables and applying selections. It has cost fA(k) and
//     selectivity σ ∈ (0, 1]: of k input modifications, about σ·k
//     survive into the expensive remainder.
//   - Stage B — the expensive suffix: joining the survivors against the
//     large table and folding them into the view, with cost fB(k).
//
// The per-table state is a pair (u, g): u unprocessed modifications
// waiting in front of stage A and g staged survivors waiting in front of
// stage B. A refresh must push everything through both stages, so the
// refresh cost of one table is fA(u) + fB(round(σ·u) + g), and the
// response-time constraint sums this over tables. The scheduling
// opportunity: when fA is steep-but-setup-free and σ is small, eagerly
// draining stage A is nearly free and shrinks the population that the
// expensive, batch-friendly stage B must eventually absorb — a second
// layer of exactly the asymmetry the paper exploits across tables.
//
// The package provides the two-stage state model, a single-stage
// scheduler (the paper's model: each action runs a table's full
// pipeline), and a two-stage scheduler that may run stage A alone; the
// experiment in internal/experiments compares them.
package staged

import (
	"fmt"
	"math"

	"abivm/internal/core"
)

// TableCosts describes one table's two-stage pipeline.
type TableCosts struct {
	A core.CostFunc // cheap prefix
	B core.CostFunc // expensive suffix
	// Selectivity is the fraction of stage-A input surviving into stage
	// B, in (0, 1].
	Selectivity float64
}

// Model is the two-stage cost model of an instance.
type Model struct {
	tables []TableCosts
}

// NewModel validates the per-table stage costs.
func NewModel(tables ...TableCosts) (*Model, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("staged: need at least one table")
	}
	for i, tc := range tables {
		if tc.A == nil || tc.B == nil {
			return nil, fmt.Errorf("staged: table %d missing a stage cost function", i)
		}
		if tc.Selectivity <= 0 || tc.Selectivity > 1 {
			return nil, fmt.Errorf("staged: table %d selectivity %g outside (0,1]", i, tc.Selectivity)
		}
	}
	return &Model{tables: tables}, nil
}

// N returns the number of tables.
func (m *Model) N() int { return len(m.tables) }

// survivors returns round(σ·k) for table i, at least 1 for k > 0 (a
// non-empty batch always carries at least one survivor so costs never
// vanish entirely).
func (m *Model) survivors(i, k int) int {
	if k <= 0 {
		return 0
	}
	s := int(math.Round(m.tables[i].Selectivity * float64(k)))
	if s < 1 {
		s = 1
	}
	return s
}

// State is the two-stage backlog: U[i] modifications in front of stage A
// and G[i] staged survivors in front of stage B.
type State struct {
	U core.Vector
	G core.Vector
}

// NewState returns an empty state for n tables.
func NewState(n int) State {
	return State{U: core.NewVector(n), G: core.NewVector(n)}
}

// Clone copies the state.
func (s State) Clone() State { return State{U: s.U.Clone(), G: s.G.Clone()} }

// RefreshCost is the cost of pushing the whole backlog through both
// stages: Σ_i fA(u_i) + fB(survivors(u_i) + g_i).
func (m *Model) RefreshCost(s State) float64 {
	total := 0.0
	for i, tc := range m.tables {
		if s.U[i] > 0 {
			total += tc.A.Cost(s.U[i])
		}
		if b := m.survivors(i, s.U[i]) + s.G[i]; b > 0 {
			total += tc.B.Cost(b)
		}
	}
	return total
}

// Full reports whether the refresh cost exceeds the constraint.
func (m *Model) Full(s State, c float64) bool { return m.RefreshCost(s) > c }

// Action describes one maintenance step: StageA[i] modifications are
// pushed through stage A (their survivors land in G), and StageB[i]
// staged survivors are pushed through stage B. StageB is applied after
// StageA within the action, so it may include this action's survivors.
type Action struct {
	StageA core.Vector
	StageB core.Vector
}

// IsZero reports whether the action does nothing.
func (a Action) IsZero() bool { return a.StageA.IsZero() && a.StageB.IsZero() }

// Cost returns the processing cost of the action.
func (m *Model) Cost(a Action) float64 {
	total := 0.0
	for i, tc := range m.tables {
		if a.StageA[i] > 0 {
			total += tc.A.Cost(a.StageA[i])
		}
		if a.StageB[i] > 0 {
			total += tc.B.Cost(a.StageB[i])
		}
	}
	return total
}

// Apply advances the state by an action; it returns an error when the
// action drains more than is available.
func (m *Model) Apply(s *State, a Action) error {
	for i := range m.tables {
		if a.StageA[i] < 0 || a.StageA[i] > s.U[i] {
			return fmt.Errorf("staged: stage-A action %d exceeds backlog %d (table %d)", a.StageA[i], s.U[i], i)
		}
		s.U[i] -= a.StageA[i]
		s.G[i] += m.survivors(i, a.StageA[i])
		if a.StageB[i] < 0 || a.StageB[i] > s.G[i] {
			return fmt.Errorf("staged: stage-B action %d exceeds staged %d (table %d)", a.StageB[i], s.G[i], i)
		}
		s.G[i] -= a.StageB[i]
	}
	return nil
}
