package staged

import (
	"fmt"

	"abivm/internal/core"
)

// Scheduler decides staged maintenance actions online.
type Scheduler interface {
	Name() string
	Reset(n int)
	// Act is called once per step with the pre-action state (arrivals of
	// the step already in U); refresh marks the final step, where the
	// returned action must drain everything through both stages.
	Act(t int, s State, refresh bool) Action
}

// fullDrain builds the action that empties the whole backlog.
func fullDrain(m *Model, s State) Action {
	n := m.N()
	a := Action{StageA: s.U.Clone(), StageB: core.NewVector(n)}
	for i := 0; i < n; i++ {
		a.StageB[i] = s.G[i] + m.survivors(i, s.U[i])
	}
	return a
}

// SingleStage is the paper's original model lifted into the staged
// setting: an action on table i always runs the full pipeline (stage A
// immediately followed by stage B), so staged survivors never persist.
// On violation it greedily drains whole tables, cheapest first, until
// the state is no longer full — the direct analogue of a greedy minimal
// symmetric policy.
type SingleStage struct {
	m *Model
	c float64
}

// NewSingleStage returns the single-stage baseline.
func NewSingleStage(m *Model, c float64) *SingleStage { return &SingleStage{m: m, c: c} }

// Name implements Scheduler.
func (p *SingleStage) Name() string { return "SINGLE-STAGE" }

// Reset implements Scheduler.
func (p *SingleStage) Reset(int) {}

// Act implements Scheduler.
func (p *SingleStage) Act(t int, s State, refresh bool) Action {
	if refresh {
		return fullDrain(p.m, s)
	}
	if !p.m.Full(s, p.c) {
		n := p.m.N()
		return Action{StageA: core.NewVector(n), StageB: core.NewVector(n)}
	}
	// Drain whole tables (both stages) in increasing order of pipeline
	// cost until non-full.
	n := p.m.N()
	act := Action{StageA: core.NewVector(n), StageB: core.NewVector(n)}
	work := s.Clone()
	for p.m.Full(work, p.c) {
		best, bestCost := -1, 0.0
		for i := 0; i < n; i++ {
			if work.U[i] == 0 && work.G[i] == 0 {
				continue
			}
			cost := 0.0
			if work.U[i] > 0 {
				cost += p.m.tables[i].A.Cost(work.U[i])
			}
			if b := p.m.survivors(i, work.U[i]) + work.G[i]; b > 0 {
				cost += p.m.tables[i].B.Cost(b)
			}
			if best < 0 || cost < bestCost {
				best, bestCost = i, cost
			}
		}
		if best < 0 {
			break
		}
		act.StageA[best] += work.U[best]
		act.StageB[best] += p.m.survivors(best, work.U[best]) + work.G[best]
		work.G[best] = 0
		work.U[best] = 0
	}
	return act
}

// TwoStage exploits intra-query asymmetry: it may run stage A alone,
// staging survivors in front of the expensive stage B. Stage A of a
// table is drained eagerly whenever its marginal cost rate is below the
// eagerness threshold (cheap, setup-free prefixes are near-free and
// shrink the future stage-B population); stage B is drained lazily, only
// when the constraint forces it, whole tables at a time, cheapest first.
type TwoStage struct {
	m *Model
	c float64
	// EagerRate is the per-modification stage-A cost below which the
	// prefix is drained every step. Defaults to +Inf (always eager).
	EagerRate float64
}

// NewTwoStage returns the two-stage scheduler with an always-eager
// stage A.
func NewTwoStage(m *Model, c float64) *TwoStage {
	return &TwoStage{m: m, c: c, EagerRate: 1e308}
}

// Name implements Scheduler.
func (p *TwoStage) Name() string { return "TWO-STAGE" }

// Reset implements Scheduler.
func (p *TwoStage) Reset(int) {}

// Act implements Scheduler.
func (p *TwoStage) Act(t int, s State, refresh bool) Action {
	if refresh {
		return fullDrain(p.m, s)
	}
	n := p.m.N()
	act := Action{StageA: core.NewVector(n), StageB: core.NewVector(n)}
	work := s.Clone()
	// Eager stage A: drain cheap prefixes every step.
	for i := 0; i < n; i++ {
		if work.U[i] == 0 {
			continue
		}
		perMod := p.m.tables[i].A.Cost(work.U[i]) / float64(work.U[i])
		if perMod <= p.EagerRate {
			act.StageA[i] = work.U[i]
			work.G[i] += p.m.survivors(i, work.U[i])
			work.U[i] = 0
		}
	}
	// Lazy stage B: only when forced, cheapest whole stage first.
	for p.m.Full(work, p.c) {
		best, bestCost := -1, 0.0
		for i := 0; i < n; i++ {
			total := work.G[i] + p.m.survivors(i, work.U[i])
			if total == 0 {
				continue
			}
			cost := p.m.tables[i].B.Cost(total)
			if work.U[i] > 0 {
				cost += p.m.tables[i].A.Cost(work.U[i])
			}
			if best < 0 || cost < bestCost {
				best, bestCost = i, cost
			}
		}
		if best < 0 {
			break
		}
		// Push any remaining prefix through too, then drain stage B.
		act.StageA[best] += work.U[best]
		work.G[best] += p.m.survivors(best, work.U[best])
		work.U[best] = 0
		act.StageB[best] += work.G[best]
		work.G[best] = 0
	}
	return act
}

// RunResult accounts one simulated run.
type RunResult struct {
	Scheduler  string
	TotalCost  float64
	Actions    int
	MaxRefresh float64
}

// Run simulates a scheduler over an arrival sequence (arrivals land in
// U each step; the final step is the refresh). It validates that every
// post-action state respects the constraint.
func Run(m *Model, sched Scheduler, arrivals core.Arrivals, c float64) (*RunResult, error) {
	if arrivals.N() != m.N() {
		return nil, fmt.Errorf("staged: arrivals cover %d tables, model %d", arrivals.N(), m.N())
	}
	sched.Reset(m.N())
	s := NewState(m.N())
	res := &RunResult{Scheduler: sched.Name()}
	tEnd := arrivals.T()
	for t := 0; t <= tEnd; t++ {
		s.U.AddInPlace(arrivals[t])
		act := sched.Act(t, s.Clone(), t == tEnd)
		if !act.IsZero() {
			res.TotalCost += m.Cost(act)
			res.Actions++
		}
		if err := m.Apply(&s, act); err != nil {
			return nil, fmt.Errorf("staged: %s at t=%d: %w", sched.Name(), t, err)
		}
		if t < tEnd {
			if rc := m.RefreshCost(s); rc > c {
				return nil, fmt.Errorf("staged: %s violated the constraint at t=%d: %.4g > %.4g", sched.Name(), t, rc, c)
			} else if rc > res.MaxRefresh {
				res.MaxRefresh = rc
			}
		}
	}
	if !s.U.IsZero() || !s.G.IsZero() {
		return nil, fmt.Errorf("staged: %s left residual state %v/%v", sched.Name(), s.U, s.G)
	}
	return res, nil
}
