package staged

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"abivm/internal/arrivals"
	"abivm/internal/core"
	"abivm/internal/costfn"
)

// mkModel builds the canonical two-stage instance: one table whose
// stage A is steep but setup-free with selectivity 0.2 (the ΔS ⋈ Nation
// ⋈ Region prefix) and whose stage B is flat with a big setup (the hash
// join against PartSupp).
func mkModel(t *testing.T) *Model {
	t.Helper()
	fA, err := costfn.NewLinear(0.2, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	fB, err := costfn.NewLinear(0.05, 8)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(TableCosts{A: fA, B: fB, Selectivity: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewModelValidation(t *testing.T) {
	fA, _ := costfn.NewLinear(1, 0)
	if _, err := NewModel(); err == nil {
		t.Error("empty model accepted")
	}
	if _, err := NewModel(TableCosts{A: fA, B: nil, Selectivity: 0.5}); err == nil {
		t.Error("missing stage accepted")
	}
	for _, sigma := range []float64{0, -0.5, 1.5} {
		if _, err := NewModel(TableCosts{A: fA, B: fA, Selectivity: sigma}); err == nil {
			t.Errorf("selectivity %g accepted", sigma)
		}
	}
}

func TestRefreshCostAndSurvivors(t *testing.T) {
	m := mkModel(t)
	s := NewState(1)
	if got := m.RefreshCost(s); got != 0 {
		t.Fatalf("empty refresh = %g", got)
	}
	s.U[0] = 10
	// fA(10) = 2.01; survivors = 2; fB(2) = 8.1.
	want := 2.01 + 8.1
	if got := m.RefreshCost(s); math.Abs(got-want) > 1e-9 {
		t.Fatalf("refresh = %g, want %g", got, want)
	}
	s.G[0] = 3
	want = 2.01 + 8 + 0.05*5
	if got := m.RefreshCost(s); math.Abs(got-want) > 1e-9 {
		t.Fatalf("refresh with staged = %g, want %g", got, want)
	}
	// Tiny batches still leave at least one survivor.
	if got := m.survivors(0, 1); got != 1 {
		t.Fatalf("survivors(1) = %d", got)
	}
}

func TestApplyMovesBetweenStages(t *testing.T) {
	m := mkModel(t)
	s := NewState(1)
	s.U[0] = 10
	act := Action{StageA: core.Vector{10}, StageB: core.Vector{2}}
	if err := m.Apply(&s, act); err != nil {
		t.Fatal(err)
	}
	if s.U[0] != 0 || s.G[0] != 0 {
		t.Fatalf("state after apply = %v/%v", s.U, s.G)
	}
	// Overdrain is rejected.
	s.U[0] = 1
	if err := m.Apply(&s, Action{StageA: core.Vector{5}, StageB: core.Vector{0}}); err == nil {
		t.Fatal("stage-A overdrain accepted")
	}
	if err := m.Apply(&s, Action{StageA: core.Vector{0}, StageB: core.Vector{5}}); err == nil {
		t.Fatal("stage-B overdrain accepted")
	}
}

func TestSchedulersProduceValidRuns(t *testing.T) {
	m := mkModel(t)
	c := 12.0
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		steps := 50 + rng.Intn(200)
		seq := make(core.Arrivals, steps)
		for ti := range seq {
			seq[ti] = core.Vector{rng.Intn(4)}
		}
		for _, sched := range []Scheduler{NewSingleStage(m, c), NewTwoStage(m, c)} {
			res, err := Run(m, sched, seq, c)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, sched.Name(), err)
			}
			if res.MaxRefresh > c {
				t.Fatalf("trial %d %s: max refresh %g > C", trial, sched.Name(), res.MaxRefresh)
			}
		}
	}
}

func TestTwoStageBeatsSingleStage(t *testing.T) {
	// The future-work claim: with a selective, setup-free prefix and an
	// expensive suffix, staging beats the full-pipeline-only model.
	m := mkModel(t)
	c := 12.0
	seq := arrivals.UniformSequence(800, 2)
	single, err := Run(m, NewSingleStage(m, c), seq, c)
	if err != nil {
		t.Fatal(err)
	}
	two, err := Run(m, NewTwoStage(m, c), seq, c)
	if err != nil {
		t.Fatal(err)
	}
	if two.TotalCost >= single.TotalCost {
		t.Fatalf("TWO-STAGE %g did not beat SINGLE-STAGE %g", two.TotalCost, single.TotalCost)
	}
}

func TestTwoStageMultiTable(t *testing.T) {
	fA1, _ := costfn.NewLinear(0.2, 0.01)
	fB1, _ := costfn.NewLinear(0.05, 8)
	fA2, _ := costfn.NewLinear(0.05, 1)
	fB2, _ := costfn.NewLinear(0.02, 3)
	m, err := NewModel(
		TableCosts{A: fA1, B: fB1, Selectivity: 0.2},
		TableCosts{A: fA2, B: fB2, Selectivity: 0.9},
	)
	if err != nil {
		t.Fatal(err)
	}
	c := 20.0
	seq := arrivals.UniformSequence(400, 1, 1)
	for _, sched := range []Scheduler{NewSingleStage(m, c), NewTwoStage(m, c)} {
		if _, err := Run(m, sched, seq, c); err != nil {
			t.Fatalf("%s: %v", sched.Name(), err)
		}
	}
}

func TestRunValidation(t *testing.T) {
	m := mkModel(t)
	seq := arrivals.UniformSequence(10, 1, 1) // two tables, model has one
	if _, err := Run(m, NewTwoStage(m, 10), seq, 10); err == nil || !strings.Contains(err.Error(), "cover") {
		t.Fatalf("arity mismatch: %v", err)
	}
}
