package costfn

import "abivm/internal/core"

// CheckMonotone verifies Cost(k) >= Cost(k-1) for all k in [1, upTo].
// It returns the first violating k, or 0 if none.
func CheckMonotone(f core.CostFunc, upTo int) int {
	prev := f.Cost(0)
	for k := 1; k <= upTo; k++ {
		cur := f.Cost(k)
		if cur < prev {
			return k
		}
		prev = cur
	}
	return 0
}

// CheckSubadditive verifies Cost(0)==0 and Cost(x+y) <= Cost(x)+Cost(y)
// for all 1 <= x <= y with x+y <= upTo, within a small relative tolerance
// for float drift. It returns the first violating (x, y), or (0, 0).
func CheckSubadditive(f core.CostFunc, upTo int) (x, y int) {
	const eps = 1e-9
	if f.Cost(0) != 0 {
		return 0, 1
	}
	costs := make([]float64, upTo+1)
	for k := 0; k <= upTo; k++ {
		costs[k] = f.Cost(k)
	}
	for a := 1; a <= upTo; a++ {
		for b := a; a+b <= upTo; b++ {
			sum := costs[a] + costs[b]
			if costs[a+b] > sum+eps*(1+sum) {
				return a, b
			}
		}
	}
	return 0, 0
}

// IsWellFormed reports whether f is monotone and subadditive over
// [0, upTo]; it is the combined probe used by tests and by the cost-model
// fitter before a measured function is trusted.
func IsWellFormed(f core.CostFunc, upTo int) bool {
	if CheckMonotone(f, upTo) != 0 {
		return false
	}
	x, _ := CheckSubadditive(f, upTo)
	return x == 0
}
