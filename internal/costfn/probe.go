package costfn

import (
	"fmt"
	"math"

	"abivm/internal/core"
)

// CheckMonotone verifies Cost(k) >= Cost(k-1) for all k in [1, upTo].
// It returns the first violating k, or 0 if none.
func CheckMonotone(f core.CostFunc, upTo int) int {
	prev := f.Cost(0)
	for k := 1; k <= upTo; k++ {
		cur := f.Cost(k)
		if cur < prev {
			return k
		}
		prev = cur
	}
	return 0
}

// CheckSubadditive verifies Cost(0)==0 and Cost(x+y) <= Cost(x)+Cost(y)
// for all 1 <= x <= y with x+y <= upTo, within a small relative tolerance
// for float drift. It returns the first violating (x, y), or (0, 0).
func CheckSubadditive(f core.CostFunc, upTo int) (x, y int) {
	//lint:ignore floateq the CostFunc contract requires an exact zero at k=0
	if f.Cost(0) != 0 {
		return 0, 1
	}
	costs := make([]float64, upTo+1)
	for k := 0; k <= upTo; k++ {
		costs[k] = f.Cost(k)
	}
	for a := 1; a <= upTo; a++ {
		for b := a; a+b <= upTo; b++ {
			if !core.ApproxLE(costs[a+b], costs[a]+costs[b]) {
				return a, b
			}
		}
	}
	return 0, 0
}

// CheckInvariants verifies the full CostFunc contract over [0, maxK] and
// returns a descriptive error naming the first violated property, or nil:
//
//   - Cost(0) == 0, exactly — the empty batch is free by definition;
//   - every cost is finite and non-negative;
//   - monotonicity: Cost(k) >= Cost(k-1) (Theorem 1's proofs batch
//     actions together and may not lower any batch's cost);
//   - subadditivity: Cost(x+y) <= Cost(x) + Cost(y) within float
//     tolerance (what makes batching worthwhile at all).
//
// Constructor tests call this on every cost-function implementation, and
// the cost-model fitter calls IsWellFormed (its boolean form) before a
// measured function is trusted by the planner.
func CheckInvariants(f core.CostFunc, maxK int) error {
	if maxK < 1 {
		return fmt.Errorf("costfn: CheckInvariants needs maxK >= 1, got %d", maxK)
	}
	//lint:ignore floateq the CostFunc contract requires an exact zero at k=0
	if z := f.Cost(0); z != 0 {
		return fmt.Errorf("costfn: Cost(0) = %g, want exactly 0", z)
	}
	for k := 1; k <= maxK; k++ {
		c := f.Cost(k)
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("costfn: Cost(%d) = %g is not finite", k, c)
		}
		if c < 0 {
			return fmt.Errorf("costfn: Cost(%d) = %g is negative", k, c)
		}
	}
	if k := CheckMonotone(f, maxK); k != 0 {
		return fmt.Errorf("costfn: not monotone at k=%d: Cost(%d)=%g < Cost(%d)=%g",
			k, k, f.Cost(k), k-1, f.Cost(k-1))
	}
	if x, y := CheckSubadditive(f, maxK); x != 0 || y != 0 {
		return fmt.Errorf("costfn: not subadditive at (%d,%d): Cost(%d)=%g > Cost(%d)+Cost(%d)=%g",
			x, y, x+y, f.Cost(x+y), x, y, f.Cost(x)+f.Cost(y))
	}
	return nil
}

// IsWellFormed reports whether f satisfies the CostFunc contract over
// [0, upTo]; it is the boolean probe used by the cost-model fitter before
// a measured function is trusted.
func IsWellFormed(f core.CostFunc, upTo int) bool {
	return CheckInvariants(f, upTo) == nil
}
