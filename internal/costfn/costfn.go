// Package costfn provides the cost-function library for asymmetric batch
// incremental view maintenance: standard monotone subadditive shapes
// (linear, step, concave power/log, piecewise linear) plus empirical
// table-backed functions fitted from measurements, and property probes
// that check monotonicity and subadditivity over a range.
//
// Every function here satisfies the paper's two requirements: Cost(0)==0,
// Cost is non-decreasing, and Cost(x+y) <= Cost(x)+Cost(y). The Step
// function is the paper's example of a subadditive but non-concave cost
// (the I/O cost ceil(x/B) of scanning a compactly stored table).
package costfn

import (
	"fmt"
	"math"
	"sort"

	"abivm/internal/core"
)

// Linear is the cost function f(k) = a*k + b for k >= 1 and f(0) = 0.
// b models a fixed per-batch setup cost (parsing, optimization, building
// hash tables, loading index pages); a is the per-modification cost.
// Linear costs are the practically dominant case: Theorem 2 of the paper
// shows the best LGM plan is globally optimal under them.
type Linear struct {
	A float64 // per-modification cost; must be > 0
	B float64 // per-batch setup cost; must be >= 0
}

// NewLinear validates and returns a Linear cost function.
func NewLinear(a, b float64) (Linear, error) {
	if a <= 0 {
		return Linear{}, fmt.Errorf("costfn: linear slope must be positive, got %g", a)
	}
	if b < 0 {
		return Linear{}, fmt.Errorf("costfn: linear intercept must be non-negative, got %g", b)
	}
	return Linear{A: a, B: b}, nil
}

// Cost returns a*k+b for k>=1 and 0 for k==0.
func (f Linear) Cost(k int) float64 {
	if k <= 0 {
		return 0
	}
	return f.A*float64(k) + f.B
}

// MaxBatch returns the largest k with Cost(k) <= budget in closed form.
func (f Linear) MaxBatch(budget float64) int {
	if budget < f.A+f.B {
		return 0
	}
	return int(math.Floor((budget - f.B) / f.A))
}

// Step is the subadditive, non-concave cost f(k) = ceil(k/B) * C: e.g. the
// I/O cost of scanning k rows packed into blocks of B rows at cost C per
// block. This is the family used to show Theorem 1 is tight.
type Step struct {
	BlockSize int     // rows per block; must be >= 1
	BlockCost float64 // cost per block; must be > 0
}

// NewStep validates and returns a Step cost function.
func NewStep(blockSize int, blockCost float64) (Step, error) {
	if blockSize < 1 {
		return Step{}, fmt.Errorf("costfn: block size must be >= 1, got %d", blockSize)
	}
	if blockCost <= 0 {
		return Step{}, fmt.Errorf("costfn: block cost must be positive, got %g", blockCost)
	}
	return Step{BlockSize: blockSize, BlockCost: blockCost}, nil
}

// Cost returns ceil(k/BlockSize)*BlockCost.
func (f Step) Cost(k int) float64 {
	if k <= 0 {
		return 0
	}
	blocks := (k + f.BlockSize - 1) / f.BlockSize
	return float64(blocks) * f.BlockCost
}

// MaxBatch returns the largest k with Cost(k) <= budget in closed form.
func (f Step) MaxBatch(budget float64) int {
	if budget < f.BlockCost {
		return 0
	}
	blocks := int(math.Floor(budget / f.BlockCost))
	return blocks * f.BlockSize
}

// Power is the concave cost f(k) = a * k^e with 0 < e <= 1, plus an
// optional setup cost b (f(k) = a*k^e + b for k >= 1). Concave costs model
// strongly batching-friendly processing such as sort-merge maintenance.
type Power struct {
	A float64 // scale; must be > 0
	E float64 // exponent in (0, 1]
	B float64 // per-batch setup cost; must be >= 0
}

// NewPower validates and returns a Power cost function.
func NewPower(a, e, b float64) (Power, error) {
	if a <= 0 {
		return Power{}, fmt.Errorf("costfn: power scale must be positive, got %g", a)
	}
	if e <= 0 || e > 1 {
		return Power{}, fmt.Errorf("costfn: power exponent must be in (0,1], got %g", e)
	}
	if b < 0 {
		return Power{}, fmt.Errorf("costfn: power setup cost must be non-negative, got %g", b)
	}
	return Power{A: a, E: e, B: b}, nil
}

// Cost returns a*k^e + b for k>=1 and 0 for k==0.
func (f Power) Cost(k int) float64 {
	if k <= 0 {
		return 0
	}
	return f.A*math.Pow(float64(k), f.E) + f.B
}

// Log is the concave cost f(k) = a*log2(1+k) + b for k >= 1; it models
// index-dominated maintenance whose marginal cost collapses with batching.
type Log struct {
	A float64 // scale; must be > 0
	B float64 // per-batch setup cost; must be >= 0
}

// NewLog validates and returns a Log cost function.
func NewLog(a, b float64) (Log, error) {
	if a <= 0 {
		return Log{}, fmt.Errorf("costfn: log scale must be positive, got %g", a)
	}
	if b < 0 {
		return Log{}, fmt.Errorf("costfn: log setup cost must be non-negative, got %g", b)
	}
	return Log{A: a, B: b}, nil
}

// Cost returns a*log2(1+k)+b for k>=1 and 0 for k==0.
func (f Log) Cost(k int) float64 {
	if k <= 0 {
		return 0
	}
	return f.A*math.Log2(1+float64(k)) + f.B
}

// PiecewiseLinear interpolates linearly between knot points and
// extrapolates the last segment's slope beyond the final knot. Knots must
// start at (0, 0) and be strictly increasing in k with non-decreasing,
// concave-compatible costs; NewPiecewiseLinear verifies monotonicity and
// subadditivity is probed by the caller when needed.
type PiecewiseLinear struct {
	ks []int
	cs []float64
}

// Knot is one (batch size, cost) sample of a piecewise-linear function.
type Knot struct {
	K    int
	Cost float64
}

// NewPiecewiseLinear builds a piecewise-linear cost function from knots.
// An implicit (0,0) knot is required as the first entry.
func NewPiecewiseLinear(knots []Knot) (*PiecewiseLinear, error) {
	if len(knots) < 2 {
		return nil, fmt.Errorf("costfn: need at least two knots, got %d", len(knots))
	}
	//lint:ignore floateq the (0,0) anchor knot must be exact, not approximate
	if knots[0].K != 0 || knots[0].Cost != 0 {
		return nil, fmt.Errorf("costfn: first knot must be (0,0), got (%d,%g)", knots[0].K, knots[0].Cost)
	}
	f := &PiecewiseLinear{ks: make([]int, len(knots)), cs: make([]float64, len(knots))}
	for i, kn := range knots {
		if i > 0 {
			if kn.K <= knots[i-1].K {
				return nil, fmt.Errorf("costfn: knot batch sizes must strictly increase (knot %d)", i)
			}
			if kn.Cost < knots[i-1].Cost {
				return nil, fmt.Errorf("costfn: knot costs must be non-decreasing (knot %d)", i)
			}
		}
		f.ks[i] = kn.K
		f.cs[i] = kn.Cost
	}
	return f, nil
}

// Cost interpolates between knots; beyond the last knot it extrapolates
// with the final segment's slope.
func (f *PiecewiseLinear) Cost(k int) float64 {
	if k <= 0 {
		return 0
	}
	last := len(f.ks) - 1
	if k >= f.ks[last] {
		slope := f.segSlope(last - 1)
		return f.cs[last] + slope*float64(k-f.ks[last])
	}
	// Find the segment containing k.
	idx := sort.SearchInts(f.ks, k)
	if idx < len(f.ks) && f.ks[idx] == k {
		return f.cs[idx]
	}
	lo := idx - 1
	slope := f.segSlope(lo)
	return f.cs[lo] + slope*float64(k-f.ks[lo])
}

func (f *PiecewiseLinear) segSlope(i int) float64 {
	return (f.cs[i+1] - f.cs[i]) / float64(f.ks[i+1]-f.ks[i])
}

// Knots returns a copy of the knot sequence, including the (0,0) anchor
// — reporting tools (EXPLAIN IVM) render fitted functions from it.
func (f *PiecewiseLinear) Knots() []Knot {
	out := make([]Knot, len(f.ks))
	for i := range f.ks {
		out[i] = Knot{K: f.ks[i], Cost: f.cs[i]}
	}
	return out
}

// Table is an empirical cost function backed by dense per-k measurements
// for k in [0, len(samples)-1]; beyond the measured range it extrapolates
// linearly using the average slope of the last quarter of the samples.
// The costmodel package produces Tables from engine measurements.
type Table struct {
	samples []float64 // samples[k] = measured cost of batch size k; samples[0]==0
	slope   float64   // extrapolation slope
}

// NewTable builds a Table from measurements. samples[0] must be 0 and the
// sequence must be non-decreasing (monotonicity); measured irregularities
// that break monotonicity are clamped upward to preserve the contract, as
// the paper's measured curves are only approximately monotone.
func NewTable(samples []float64) (*Table, error) {
	if len(samples) < 2 {
		return nil, fmt.Errorf("costfn: need at least two samples, got %d", len(samples))
	}
	//lint:ignore floateq samples[0] anchors Cost(0)==0 and must be exact
	if samples[0] != 0 {
		return nil, fmt.Errorf("costfn: samples[0] must be 0, got %g", samples[0])
	}
	clamped := make([]float64, len(samples))
	copy(clamped, samples)
	for k := 1; k < len(clamped); k++ {
		if clamped[k] < clamped[k-1] {
			clamped[k] = clamped[k-1]
		}
	}
	// Average slope over the last quarter for extrapolation.
	from := len(clamped) * 3 / 4
	if from >= len(clamped)-1 {
		from = len(clamped) - 2
	}
	slope := (clamped[len(clamped)-1] - clamped[from]) / float64(len(clamped)-1-from)
	if slope <= 0 {
		slope = clamped[len(clamped)-1] / float64(len(clamped)-1)
	}
	return &Table{samples: clamped, slope: slope}, nil
}

// Cost returns the measured cost for k within range and a linear
// extrapolation beyond it.
func (f *Table) Cost(k int) float64 {
	if k <= 0 {
		return 0
	}
	if k < len(f.samples) {
		return f.samples[k]
	}
	last := len(f.samples) - 1
	return f.samples[last] + f.slope*float64(k-last)
}

// Scaled wraps a cost function and multiplies its output by Factor; it is
// used to express "the same maintenance query, slower medium" scenarios in
// the ablation benches.
type Scaled struct {
	Inner  interface{ Cost(int) float64 }
	Factor float64
}

// Cost returns Factor * Inner.Cost(k).
func (f Scaled) Cost(k int) float64 { return f.Factor * f.Inner.Cost(k) }

// Capped is min(Inner(k), Cap): beyond some batch size the optimizer
// abandons the incremental strategy for a full recomputation whose cost
// does not depend on the batch (e.g. a table scan / full refresh). The
// minimum of a monotone subadditive function and a positive constant is
// itself monotone and subadditive, so Capped stays a valid cost function
// while modelling the plan switch.
type Capped struct {
	Inner core.CostFunc
	Cap   float64
}

// NewCapped validates and returns a capped cost function.
func NewCapped(inner core.CostFunc, cap float64) (Capped, error) {
	if inner == nil {
		return Capped{}, fmt.Errorf("costfn: capped needs an inner function")
	}
	if cap <= 0 {
		return Capped{}, fmt.Errorf("costfn: cap must be positive, got %g", cap)
	}
	return Capped{Inner: inner, Cap: cap}, nil
}

// Cost returns min(Inner(k), Cap) with Cost(0) == 0.
func (f Capped) Cost(k int) float64 {
	if k <= 0 {
		return 0
	}
	c := f.Inner.Cost(k)
	if c > f.Cap {
		return f.Cap
	}
	return c
}
