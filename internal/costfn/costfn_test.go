package costfn

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"abivm/internal/core"
)

func TestLinearCost(t *testing.T) {
	f, err := NewLinear(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Cost(0); got != 0 {
		t.Errorf("Cost(0) = %g", got)
	}
	if got := f.Cost(1); got != 5 {
		t.Errorf("Cost(1) = %g", got)
	}
	if got := f.Cost(10); got != 23 {
		t.Errorf("Cost(10) = %g", got)
	}
	if err := CheckInvariants(f, 200); err != nil {
		t.Error(err)
	}
}

func TestNewLinearValidation(t *testing.T) {
	if _, err := NewLinear(0, 1); err == nil {
		t.Error("zero slope accepted")
	}
	if _, err := NewLinear(-1, 1); err == nil {
		t.Error("negative slope accepted")
	}
	if _, err := NewLinear(1, -1); err == nil {
		t.Error("negative intercept accepted")
	}
}

func TestLinearMaxBatch(t *testing.T) {
	f, _ := NewLinear(2, 3)
	cases := []struct {
		budget float64
		want   int
	}{
		{0, 0}, {4.99, 0}, {5, 1}, {7, 2}, {23, 10}, {23.9, 10},
	}
	for _, c := range cases {
		if got := f.MaxBatch(c.budget); got != c.want {
			t.Errorf("MaxBatch(%g) = %d, want %d", c.budget, got, c.want)
		}
	}
}

func TestLinearMaxBatchAgreesWithModelFallback(t *testing.T) {
	// Property: the closed form equals the generic search on a wrapper
	// that hides the MaxBatcher interface.
	f, _ := NewLinear(0.37, 1.21)
	hidden := core.NewCostModel(hideMaxBatch{f})
	direct := core.NewCostModel(f)
	for budget := 0.0; budget < 50; budget += 0.73 {
		want := direct.MaxBatch(0, budget)
		got := hidden.MaxBatch(0, budget)
		if got != want {
			t.Fatalf("budget %g: fallback %d != closed form %d", budget, got, want)
		}
	}
}

// hideMaxBatch wraps a cost function, hiding any MaxBatcher implementation.
type hideMaxBatch struct{ inner core.CostFunc }

func (h hideMaxBatch) Cost(k int) float64 { return h.inner.Cost(k) }

func TestStepCost(t *testing.T) {
	f, err := NewStep(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		k    int
		want float64
	}{
		{0, 0}, {1, 4}, {10, 4}, {11, 8}, {20, 8}, {21, 12},
	}
	for _, c := range cases {
		if got := f.Cost(c.k); got != c.want {
			t.Errorf("Cost(%d) = %g, want %g", c.k, got, c.want)
		}
	}
	if err := CheckInvariants(f, 200); err != nil {
		t.Error(err)
	}
}

func TestStepMaxBatch(t *testing.T) {
	f, _ := NewStep(10, 4)
	if got := f.MaxBatch(8); got != 20 {
		t.Errorf("MaxBatch(8) = %d, want 20", got)
	}
	if got := f.MaxBatch(3); got != 0 {
		t.Errorf("MaxBatch(3) = %d, want 0", got)
	}
}

func TestNewStepValidation(t *testing.T) {
	if _, err := NewStep(0, 1); err == nil {
		t.Error("zero block size accepted")
	}
	if _, err := NewStep(1, 0); err == nil {
		t.Error("zero block cost accepted")
	}
}

func TestPowerAndLog(t *testing.T) {
	p, err := NewPower(2, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Cost(4); math.Abs(got-5) > 1e-12 {
		t.Errorf("Power.Cost(4) = %g, want 5", got)
	}
	if got := p.Cost(0); got != 0 {
		t.Errorf("Power.Cost(0) = %g", got)
	}
	l, err := NewLog(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Cost(1); math.Abs(got-5) > 1e-12 { // 3*log2(2)+2
		t.Errorf("Log.Cost(1) = %g, want 5", got)
	}
	if err := CheckInvariants(p, 200); err != nil {
		t.Errorf("power: %v", err)
	}
	if err := CheckInvariants(l, 200); err != nil {
		t.Errorf("log: %v", err)
	}
}

func TestNewPowerValidation(t *testing.T) {
	if _, err := NewPower(1, 0, 0); err == nil {
		t.Error("exponent 0 accepted")
	}
	if _, err := NewPower(1, 1.5, 0); err == nil {
		t.Error("exponent > 1 accepted")
	}
	if _, err := NewPower(0, 0.5, 0); err == nil {
		t.Error("zero scale accepted")
	}
	if _, err := NewPower(1, 0.5, -1); err == nil {
		t.Error("negative setup accepted")
	}
}

func TestPiecewiseLinear(t *testing.T) {
	f, err := NewPiecewiseLinear([]Knot{{0, 0}, {10, 5}, {20, 8}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		k    int
		want float64
	}{
		{0, 0}, {10, 5}, {20, 8}, {5, 2.5}, {15, 6.5},
		{30, 11}, // extrapolation with last slope 0.3
	}
	for _, c := range cases {
		if got := f.Cost(c.k); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Cost(%d) = %g, want %g", c.k, got, c.want)
		}
	}
	if err := CheckInvariants(f, 200); err != nil {
		t.Error(err)
	}
}

func TestNewPiecewiseLinearValidation(t *testing.T) {
	if _, err := NewPiecewiseLinear([]Knot{{0, 0}}); err == nil {
		t.Error("single knot accepted")
	}
	if _, err := NewPiecewiseLinear([]Knot{{1, 1}, {2, 2}}); err == nil {
		t.Error("missing origin accepted")
	}
	if _, err := NewPiecewiseLinear([]Knot{{0, 0}, {5, 3}, {5, 4}}); err == nil {
		t.Error("non-increasing k accepted")
	}
	if _, err := NewPiecewiseLinear([]Knot{{0, 0}, {5, 3}, {6, 2}}); err == nil {
		t.Error("decreasing cost accepted")
	}
}

func TestTableCostAndExtrapolation(t *testing.T) {
	f, err := NewTable([]float64{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Cost(3); got != 3 {
		t.Errorf("Cost(3) = %g", got)
	}
	// Extrapolation with slope 1.
	if got := f.Cost(10); math.Abs(got-10) > 1e-9 {
		t.Errorf("Cost(10) = %g, want 10", got)
	}
	if err := CheckInvariants(f, 200); err != nil {
		t.Error(err)
	}
}

func TestTableClampsNonMonotoneSamples(t *testing.T) {
	f, err := NewTable([]float64{0, 2, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Cost(2); got != 2 {
		t.Errorf("Cost(2) = %g, want clamped 2", got)
	}
	if k := CheckMonotone(f, 20); k != 0 {
		t.Errorf("clamped table not monotone at k=%d", k)
	}
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable([]float64{0}); err == nil {
		t.Error("single sample accepted")
	}
	if _, err := NewTable([]float64{1, 2}); err == nil {
		t.Error("non-zero origin accepted")
	}
}

func TestScaled(t *testing.T) {
	f, _ := NewLinear(1, 1)
	s := Scaled{Inner: f, Factor: 3}
	if got := s.Cost(4); got != 15 {
		t.Errorf("Scaled.Cost(4) = %g, want 15", got)
	}
	if err := CheckInvariants(s, 200); err != nil {
		t.Error(err)
	}
}

func TestCapped(t *testing.T) {
	lin, _ := NewLinear(1, 0)
	f, err := NewCapped(lin, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Cost(0); got != 0 {
		t.Errorf("Cost(0) = %g", got)
	}
	if got := f.Cost(5); got != 5 {
		t.Errorf("Cost(5) = %g", got)
	}
	if got := f.Cost(50); got != 10 {
		t.Errorf("Cost(50) = %g, want capped 10", got)
	}
	if err := CheckInvariants(f, 200); err != nil {
		t.Errorf("capped linear: %v", err)
	}
	// A capped step function stays well-formed too.
	step, _ := NewStep(3, 2)
	cs, err := NewCapped(step, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckInvariants(cs, 200); err != nil {
		t.Errorf("capped step: %v", err)
	}
}

func TestNewCappedValidation(t *testing.T) {
	lin, _ := NewLinear(1, 0)
	if _, err := NewCapped(nil, 5); err == nil {
		t.Error("nil inner accepted")
	}
	if _, err := NewCapped(lin, 0); err == nil {
		t.Error("zero cap accepted")
	}
}

func TestStandardFunctionsAreWellFormed(t *testing.T) {
	lin, _ := NewLinear(0.7, 2.1)
	step, _ := NewStep(7, 3)
	pow, _ := NewPower(2, 0.6, 1)
	lg, _ := NewLog(1.5, 0.5)
	pw, _ := NewPiecewiseLinear([]Knot{{0, 0}, {5, 10}, {50, 40}})
	tbl, _ := NewTable([]float64{0, 3, 5, 6.5, 8, 9})
	funcs := map[string]core.CostFunc{
		"linear": lin, "step": step, "power": pow, "log": lg,
		"piecewise": pw, "table": tbl,
	}
	for name, f := range funcs {
		if err := CheckInvariants(f, 300); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestCheckInvariantsReportsViolations(t *testing.T) {
	cases := []struct {
		name string
		f    core.CostFunc
		maxK int
		want string
	}{
		{"bad maxK", quadratic{}, 0, "maxK >= 1"},
		{"nonzero origin", offsetCost{}, 10, "Cost(0)"},
		{"not finite", nanCost{}, 10, "not finite"},
		{"negative", negCost{}, 10, "negative"},
		{"not monotone", vShape{}, 10, "not monotone"},
		{"superadditive", quadratic{}, 10, "not subadditive"},
	}
	for _, c := range cases {
		err := CheckInvariants(c.f, c.maxK)
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

type offsetCost struct{}

func (offsetCost) Cost(k int) float64 { return float64(k) + 1 }

type nanCost struct{}

func (nanCost) Cost(k int) float64 {
	if k == 3 {
		return math.NaN()
	}
	return float64(k)
}

type negCost struct{}

func (negCost) Cost(k int) float64 {
	if k == 0 {
		return 0
	}
	return -1
}

func TestLinearSubadditivityProperty(t *testing.T) {
	// Property: random positive (a, b) always yield monotone subadditive
	// linear functions.
	f := func(a, b uint8) bool {
		lin, err := NewLinear(float64(a)/16+0.01, float64(b)/16)
		if err != nil {
			return false
		}
		return IsWellFormed(lin, 64)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCheckSubadditiveCatchesSuperadditive(t *testing.T) {
	// Quadratic cost is superadditive: Cost(2) = 4 > 2*Cost(1).
	x, y := CheckSubadditive(quadratic{}, 10)
	if x == 0 {
		t.Fatal("superadditive function passed the probe")
	}
	_ = y
}

type quadratic struct{}

func (quadratic) Cost(k int) float64 { return float64(k * k) }

func TestCheckMonotoneCatchesDecreasing(t *testing.T) {
	if k := CheckMonotone(vShape{}, 10); k == 0 {
		t.Fatal("decreasing function passed the probe")
	}
}

type vShape struct{}

func (vShape) Cost(k int) float64 {
	if k == 0 {
		return 0
	}
	return math.Abs(float64(k - 5))
}
