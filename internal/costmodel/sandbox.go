package costmodel

import (
	"fmt"
	"math/rand"

	"abivm/internal/ivm"
	"abivm/internal/storage"
)

// Sandbox is an isolated calibration environment for one view: the
// view's base tables cloned into a scratch database, a maintainer built
// over the clones, and one deterministic update generator per FROM
// alias. Calibration batches drain through the scratch maintainer only —
// the database the sandbox was built from is never written.
//
// The generated workload is pure updates (the paper's update workload):
// table sizes stay constant across samples, victims are drawn from the
// table's own key population, and replacement values are sampled from
// the column's existing value domain so join selectivities survive
// calibration. Everything is driven by a seeded generator, so two
// sandboxes with the same inputs and seed produce identical mod streams
// and therefore identical measurements.
type Sandbox struct {
	db      *storage.DB
	m       *ivm.Maintainer
	aliases []string
	gens    map[string]func() ivm.Mod
}

// NewSandbox clones the base tables of the view query out of src and
// builds the scratch maintainer and per-alias generators. src is only
// read, and only during construction.
func NewSandbox(src *storage.DB, query string, seed int64) (*Sandbox, error) {
	p, err := ivm.PlanView(query)
	if err != nil {
		return nil, err
	}
	scratch := storage.NewDB()
	for _, s := range p.Sources {
		tbl, err := src.Table(s.Table)
		if err != nil {
			return nil, err
		}
		if _, err := storage.CloneTable(scratch, tbl); err != nil {
			return nil, err
		}
	}
	m, err := ivm.New(scratch, query)
	if err != nil {
		return nil, err
	}
	sb := &Sandbox{db: scratch, m: m, gens: make(map[string]func() ivm.Mod)}
	for i, s := range p.Sources {
		sb.aliases = append(sb.aliases, s.Alias)
		gen, err := newUpdateGen(scratch.MustTable(s.Table), s.Alias, seed+int64(i)*1_000_003)
		if err != nil {
			return nil, err
		}
		sb.gens[s.Alias] = gen
	}
	return sb, nil
}

// Maintainer returns the scratch maintainer the sandbox calibrates.
func (sb *Sandbox) Maintainer() *ivm.Maintainer { return sb.m }

// Aliases returns the FROM aliases in order.
func (sb *Sandbox) Aliases() []string { return sb.aliases }

// Gen returns the alias's deterministic modification generator, or nil
// for an unknown alias.
func (sb *Sandbox) Gen(alias string) func() ivm.Mod { return sb.gens[alias] }

// Measure samples the alias's batch-cost curve f_i(k) at the given batch
// sizes inside the sandbox.
func (sb *Sandbox) Measure(alias string, ks []int, w storage.Weights) (*Measurement, error) {
	gen, ok := sb.gens[alias]
	if !ok {
		return nil, fmt.Errorf("costmodel: sandbox has no alias %q", alias)
	}
	return Measure(sb.m, alias, gen, ks, w)
}

// newUpdateGen builds a seeded pure-update generator for one base table.
// It snapshots the key population and per-column value domains at
// construction; each call picks a victim key, reads the row's current
// state from the (scratch) table, and replaces one non-key column with a
// value drawn from that column's original domain.
func newUpdateGen(tbl *storage.Table, alias string, seed int64) (func() ivm.Mod, error) {
	schema := tbl.Schema()
	if tbl.Len() == 0 {
		return nil, fmt.Errorf("costmodel: table %s is empty; cannot generate a calibration workload", schema.Name)
	}
	isKey := make(map[int]bool, len(schema.Key))
	for _, k := range schema.Key {
		isKey[k] = true
	}
	var nonKey []int
	for i := range schema.Columns {
		if !isKey[i] {
			nonKey = append(nonKey, i)
		}
	}
	if len(nonKey) == 0 {
		return nil, fmt.Errorf("costmodel: table %s is all key columns; updates cannot change it", schema.Name)
	}
	var keys [][]storage.Value
	domains := make([][]storage.Value, len(schema.Columns))
	tbl.Scan(func(r storage.Row) bool {
		keys = append(keys, r.Project(schema.Key))
		for _, c := range nonKey {
			domains[c] = append(domains[c], r[c])
		}
		return true
	})
	rng := rand.New(rand.NewSource(seed))
	return func() ivm.Mod {
		victim := keys[rng.Intn(len(keys))]
		cur, ok := tbl.Get(victim...)
		if !ok {
			// Unreachable for a pure-update workload (keys never leave the
			// table); guard so a future mixed workload fails loudly.
			panic(fmt.Sprintf("costmodel: victim key %v vanished from %s", victim, schema.Name))
		}
		row := cur.Clone()
		c := nonKey[rng.Intn(len(nonKey))]
		row[c] = domains[c][rng.Intn(len(domains[c]))]
		return ivm.Update(alias, victim, row)
	}, nil
}
