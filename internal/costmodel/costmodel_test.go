package costmodel

import (
	"math"
	"strings"
	"testing"

	"abivm/internal/costfn"
	"abivm/internal/ivm"
	"abivm/internal/storage"
	"abivm/internal/tpcr"
)

func setup(t *testing.T) (*ivm.Maintainer, *tpcr.UpdateGen) {
	t.Helper()
	cfg := tpcr.DefaultConfig()
	cfg.ScaleFactor = 0.002
	db := storage.NewDB()
	if err := tpcr.Generate(db, cfg); err != nil {
		t.Fatal(err)
	}
	m, err := ivm.New(db, tpcr.PaperView)
	if err != nil {
		t.Fatal(err)
	}
	return m, tpcr.NewUpdateGen(db, cfg, 3)
}

func TestMeasureProducesIncreasingCosts(t *testing.T) {
	m, gen := setup(t)
	ks := []int{1, 5, 10, 20, 40}
	ms, err := Measure(m, "PS", gen.PartSuppUpdate, ks, storage.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.K) != len(ks) {
		t.Fatalf("samples = %d", len(ms.K))
	}
	for i, c := range ms.Cost {
		if c <= 0 {
			t.Fatalf("sample %d: non-positive cost %g", i, c)
		}
	}
	// Costs grow overall (allowing local noise from MIN multiset work).
	if ms.Cost[len(ms.Cost)-1] <= ms.Cost[0] {
		t.Fatalf("cost at k=40 (%g) not above cost at k=1 (%g)", ms.Cost[len(ms.Cost)-1], ms.Cost[0])
	}
}

func TestMeasureSupplierCostsDominatePartSupp(t *testing.T) {
	// The paper's Figure 4 asymmetry: Supplier batches cost more than
	// PartSupp batches of the same size (no index on partsupp.suppkey).
	m, gen := setup(t)
	ks := []int{1, 5, 10, 20}
	w := storage.DefaultWeights()
	ps, err := Measure(m, "PS", gen.PartSuppUpdate, ks, w)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Measure(m, "S", gen.SupplierUpdate, ks, w)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ks {
		if s.Cost[i] <= ps.Cost[i] {
			t.Fatalf("k=%d: supplier cost %g not above partsupp cost %g", ks[i], s.Cost[i], ps.Cost[i])
		}
	}
}

func TestMeasureValidation(t *testing.T) {
	m, gen := setup(t)
	w := storage.DefaultWeights()
	if _, err := Measure(m, "PS", gen.PartSuppUpdate, []int{0}, w); err == nil {
		t.Fatal("zero batch size accepted")
	}
	// Regression: duplicate sample sizes used to be measured twice against
	// drifted state and fold into one fitted point; now rejected up front.
	if _, err := Measure(m, "PS", gen.PartSuppUpdate, []int{1, 5, 5, 10}, w); err == nil || !strings.Contains(err.Error(), "strictly increasing") {
		t.Fatalf("duplicate batch sizes: err = %v", err)
	}
	if _, err := Measure(m, "PS", gen.PartSuppUpdate, []int{10, 5}, w); err == nil || !strings.Contains(err.Error(), "strictly increasing") {
		t.Fatalf("unsorted batch sizes: err = %v", err)
	}
	// Validation happens before any modification is applied: the queue is
	// untouched after a rejected call.
	if got := m.Pending(); got[0] != 0 || got[1] != 0 {
		t.Fatalf("rejected Measure mutated the maintainer: pending %v", got)
	}
}

func TestFitLinearRecoversExactLine(t *testing.T) {
	ms := &Measurement{K: []int{1, 2, 3, 4}, Cost: []float64{5, 7, 9, 11}} // 2k+3
	lin, err := ms.FitLinear()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lin.A-2) > 1e-9 || math.Abs(lin.B-3) > 1e-9 {
		t.Fatalf("fit = (%g, %g), want (2, 3)", lin.A, lin.B)
	}
}

func TestFitLinearClampsDegenerateSlope(t *testing.T) {
	ms := &Measurement{K: []int{1, 2, 3}, Cost: []float64{5, 5, 5}}
	lin, err := ms.FitLinear()
	if err != nil {
		t.Fatal(err)
	}
	if lin.A <= 0 {
		t.Fatalf("slope %g not clamped positive", lin.A)
	}
	if _, err := (&Measurement{K: []int{1}, Cost: []float64{1}}).FitLinear(); err == nil {
		t.Fatal("single sample accepted")
	}
}

func TestPiecewiseReproducesSamples(t *testing.T) {
	ms := &Measurement{K: []int{2, 4, 8}, Cost: []float64{3, 4, 9}}
	f, err := ms.Piecewise()
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range ms.K {
		if got := f.Cost(k); math.Abs(got-ms.Cost[i]) > 1e-9 {
			t.Fatalf("Cost(%d) = %g, want %g", k, got, ms.Cost[i])
		}
	}
	// Non-monotone samples clamp upward.
	ms2 := &Measurement{K: []int{1, 2, 3}, Cost: []float64{5, 4, 6}}
	f2, err := ms2.Piecewise()
	if err != nil {
		t.Fatal(err)
	}
	if got := f2.Cost(2); got != 5 {
		t.Fatalf("clamped Cost(2) = %g, want 5", got)
	}
}

func TestModelAssembly(t *testing.T) {
	a := &Measurement{K: []int{1, 2}, Cost: []float64{2, 3}}
	b := &Measurement{K: []int{1, 2}, Cost: []float64{5, 9}}
	model, err := Model("linear", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if model.N() != 2 {
		t.Fatalf("N = %d", model.N())
	}
	if _, err := Model("spline", a); err == nil {
		t.Fatal("unknown fit accepted")
	}
	pw, err := Model("piecewise", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if pw.TableCost(0, 2) != 3 {
		t.Fatalf("piecewise model Cost = %g", pw.TableCost(0, 2))
	}
	if pw.TableCost(1, 2) != 9 {
		t.Fatalf("piecewise model Cost = %g", pw.TableCost(1, 2))
	}
}

func TestFittedFunctionsAreWellFormed(t *testing.T) {
	m, gen := setup(t)
	ks := []int{1, 5, 10, 20, 40}
	w := storage.DefaultWeights()
	for alias, g := range map[string]func() ivm.Mod{"PS": gen.PartSuppUpdate, "S": gen.SupplierUpdate} {
		ms, err := Measure(m, alias, g, ks, w)
		if err != nil {
			t.Fatal(err)
		}
		lin, err := ms.FitLinear()
		if err != nil {
			t.Fatal(err)
		}
		if !costfn.IsWellFormed(lin, 200) {
			t.Errorf("%s: fitted linear function not monotone subadditive", alias)
		}
		pw, err := ms.Piecewise()
		if err != nil {
			t.Fatal(err)
		}
		if k := costfn.CheckMonotone(pw, 200); k != 0 {
			t.Errorf("%s: piecewise fit not monotone at %d", alias, k)
		}
	}
}
