package costmodel

import (
	"reflect"
	"testing"

	"abivm/internal/storage"
	"abivm/internal/tpcr"
)

func sandboxDB(t *testing.T) *storage.DB {
	t.Helper()
	cfg := tpcr.DefaultConfig()
	cfg.ScaleFactor = 0.002
	db := storage.NewDB()
	if err := tpcr.Generate(db, cfg); err != nil {
		t.Fatal(err)
	}
	return db
}

// snapshot captures every table's rows keyed by encoded primary key.
func snapshot(db *storage.DB) map[string]map[string]string {
	out := map[string]map[string]string{}
	for _, name := range db.TableNames() {
		tbl := db.MustTable(name)
		rows := map[string]string{}
		tbl.Scan(func(r storage.Row) bool {
			rows[tbl.Schema().KeyOf(r)] = storage.EncodeKey(r...)
			return true
		})
		out[name] = rows
	}
	return out
}

// TestSandboxDoesNotMutateSource is the isolation guarantee: calibrating
// inside a sandbox leaves the database it was built from byte-identical.
func TestSandboxDoesNotMutateSource(t *testing.T) {
	db := sandboxDB(t)
	before := snapshot(db)
	sb, err := NewSandbox(db, tpcr.PaperView, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, alias := range sb.Aliases() {
		if _, err := sb.Measure(alias, []int{1, 4, 8}, storage.DefaultWeights()); err != nil {
			t.Fatalf("Measure(%s): %v", alias, err)
		}
	}
	if after := snapshot(db); !reflect.DeepEqual(before, after) {
		t.Fatal("calibration mutated the source database")
	}
}

// TestSandboxWorkloadIsPureUpdates: table sizes in the scratch database
// stay constant across calibration (the paper's update workload).
func TestSandboxWorkloadIsPureUpdates(t *testing.T) {
	db := sandboxDB(t)
	sb, err := NewSandbox(db, tpcr.PaperView, 7)
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[string]int{}
	for _, name := range db.TableNames() {
		sizes[name] = db.MustTable(name).Len()
	}
	alias := sb.Aliases()[0]
	if _, err := sb.Measure(alias, []int{1, 8, 16}, storage.DefaultWeights()); err != nil {
		t.Fatal(err)
	}
	m := sb.Maintainer()
	for _, a := range sb.Aliases() {
		name := m.TableOf(a)
		if want, ok := sizes[name]; ok {
			if got := mustLen(t, sb, name); got != want {
				t.Errorf("table %s: %d rows after calibration, want %d", name, got, want)
			}
		}
	}
}

func mustLen(t *testing.T, sb *Sandbox, name string) int {
	t.Helper()
	tbl, err := sb.db.Table(name)
	if err != nil {
		t.Fatal(err)
	}
	return tbl.Len()
}

// TestSandboxDeterminism: same source, query, and seed produce
// byte-identical mod streams and measurements.
func TestSandboxDeterminism(t *testing.T) {
	db := sandboxDB(t)
	run := func() []*Measurement {
		sb, err := NewSandbox(db, tpcr.PaperView, 42)
		if err != nil {
			t.Fatal(err)
		}
		var out []*Measurement
		for _, alias := range sb.Aliases() {
			ms, err := sb.Measure(alias, []int{1, 4, 8, 16}, storage.DefaultWeights())
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, ms)
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different measurements:\n%v\n%v", a, b)
	}
	sb, err := NewSandbox(db, tpcr.PaperView, 43)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := sb.Measure(sb.Aliases()[0], []int{1, 4, 8, 16}, storage.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a[0], ms) {
		t.Log("different seed produced identical measurements (possible but suspicious)")
	}
}
