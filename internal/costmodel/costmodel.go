// Package costmodel measures the batch cost functions f_i(k) of a
// maintained view by driving real update batches through the IVM engine
// and converting the engine's work-unit counters into pseudo-millisecond
// costs. This is the paper's methodology ("the cost functions can be ...
// measured by experiments"): the measured samples back the simulator, the
// A* planner, and the ONLINE policy, and a least-squares linear fit
// recovers the (a, b) parameters that Theorems 2 and 4 reason about.
package costmodel

import (
	"fmt"

	"abivm/internal/core"
	"abivm/internal/costfn"
	"abivm/internal/ivm"
	"abivm/internal/storage"
)

// Measurement is a sampled batch-cost curve for one delta table.
type Measurement struct {
	Alias string
	K     []int     // batch sizes, increasing
	Cost  []float64 // pseudo-ms cost of processing a batch of K[i]
}

// Measure samples the cost of processing batches of the given sizes. For
// each k it applies k modifications from gen, processes them as one
// batch, and records the pseudo-millisecond cost of that batch under w.
// The database state advances between samples (the workload is pure
// updates, so table sizes stay constant — the same property the paper's
// update workload has).
func Measure(m *ivm.Maintainer, alias string, gen func() ivm.Mod, ks []int, w storage.Weights) (*Measurement, error) {
	// The sample grid must be strictly increasing: duplicates would fold
	// two measurements of drifted state into one fitted point, and
	// out-of-order sizes would break Piecewise's knot ordering silently.
	for i, k := range ks {
		if k <= 0 {
			return nil, fmt.Errorf("costmodel: batch size %d must be positive", k)
		}
		if i > 0 && k <= ks[i-1] {
			return nil, fmt.Errorf("costmodel: batch sizes must be strictly increasing (ks[%d]=%d after %d)", i, k, ks[i-1])
		}
	}
	out := &Measurement{Alias: alias}
	for _, k := range ks {
		for j := 0; j < k; j++ {
			if err := m.Apply(gen()); err != nil {
				return nil, err
			}
		}
		before := *m.Stats()
		if err := m.ProcessBatch(alias, k); err != nil {
			return nil, err
		}
		cost := w.Cost(m.Stats().Sub(before))
		out.K = append(out.K, k)
		out.Cost = append(out.Cost, cost)
	}
	return out, nil
}

// FitLinear fits cost = a*k + b by ordinary least squares and returns the
// linear cost function. A non-positive fitted slope (possible when the
// curve is flat and noisy) is clamped to a small positive value so the
// result remains a valid cost function.
func (ms *Measurement) FitLinear() (costfn.Linear, error) {
	n := float64(len(ms.K))
	if n < 2 {
		return costfn.Linear{}, fmt.Errorf("costmodel: need at least 2 samples, got %d", len(ms.K))
	}
	var sumX, sumY, sumXY, sumXX float64
	for i := range ms.K {
		x, y := float64(ms.K[i]), ms.Cost[i]
		sumX += x
		sumY += y
		sumXY += x * y
		sumXX += x * x
	}
	denom := n*sumXX - sumX*sumX
	if core.ApproxEq(denom, 0) {
		return costfn.Linear{}, fmt.Errorf("costmodel: degenerate sample set")
	}
	a := (n*sumXY - sumX*sumY) / denom
	b := (sumY - a*sumX) / n
	const minSlope = 1e-6
	if a < minSlope {
		a = minSlope
	}
	if b < 0 {
		b = 0
	}
	return costfn.NewLinear(a, b)
}

// Piecewise converts the measurement into a piecewise-linear cost
// function anchored at (0, 0), clamping any non-monotone samples upward.
// It reproduces the measured curve exactly at the sampled batch sizes and
// interpolates between them — the empirical cost functions behind the
// validation experiment (Figure 5).
func (ms *Measurement) Piecewise() (*costfn.PiecewiseLinear, error) {
	knots := []costfn.Knot{{K: 0, Cost: 0}}
	prev := 0.0
	for i := range ms.K {
		c := ms.Cost[i]
		if c < prev {
			c = prev
		}
		knots = append(knots, costfn.Knot{K: ms.K[i], Cost: c})
		prev = c
	}
	return costfn.NewPiecewiseLinear(knots)
}

// Model fits one cost function per measured alias and assembles a
// core.CostModel in the order given. fit selects the functional form:
// "linear" or "piecewise".
func Model(fit string, ms ...*Measurement) (*core.CostModel, error) {
	funcs := make([]core.CostFunc, len(ms))
	for i, m := range ms {
		switch fit {
		case "linear":
			f, err := m.FitLinear()
			if err != nil {
				return nil, err
			}
			funcs[i] = f
		case "piecewise":
			f, err := m.Piecewise()
			if err != nil {
				return nil, err
			}
			funcs[i] = f
		default:
			return nil, fmt.Errorf("costmodel: unknown fit %q", fit)
		}
	}
	return core.NewCostModel(funcs...), nil
}
