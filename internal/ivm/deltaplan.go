package ivm

import (
	"fmt"
	"strings"

	"abivm/internal/exec"
	"abivm/internal/plan"
	"abivm/internal/sql"
	"abivm/internal/storage"
)

// DeltaSource is one base table feeding a maintained view: the FROM
// alias (the paper's R_i) and the table it binds to.
type DeltaSource struct {
	Alias string
	Table string
}

// DeltaPlan is the maintainable form of a view definition: the bound
// view query, the delta query used to propagate base-table changes, and
// the per-item mapping from delta-query output to view output. It is
// derived once by PlanView, shared by every Maintainer for the view
// (Maintainer.Plan returns it), and inspectable by the compiler front
// end (EXPLAIN IVM renders it via Explain).
type DeltaPlan struct {
	// View is the parsed view definition.
	View *sql.Select
	// Delta is the delta query: for select-project-join views the view
	// query itself; for aggregate views the same join emitting
	// (group columns..., aggregate arguments...) so deltas can be folded
	// into per-group state.
	Delta *sql.Select
	// Sources lists the base tables in FROM order.
	Sources []DeltaSource
	// Aggregate reports whether the view folds rows into groups.
	Aggregate bool
	// GroupCols is the number of leading group-by columns in Delta's
	// output (0 for SPJ views and grand aggregates).
	GroupCols int

	aggKinds []exec.AggKind // per aggregate item, in select order
	itemRefs []itemRef      // select item -> group col or aggregate index
}

// PlanView parses a view definition and derives its delta plan. It is
// pure analysis — no database access — so the compiler can reject
// unmaintainable views before touching any tables. Rejections of
// well-formed SQL the maintainer cannot handle are *sql.UnsupportedError
// values carrying the source position of the offending construct.
func PlanView(query string) (*DeltaPlan, error) {
	sel, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	return PlanSelect(sel)
}

// PlanSelect is PlanView over an already-parsed view definition. The
// compiler front end uses it directly so diagnostics keep the positions
// of the original catalog source instead of a re-rendered query.
func PlanSelect(sel *sql.Select) (*DeltaPlan, error) {
	if len(sel.OrderBy) > 0 {
		return nil, sql.Unsupported(sel.OrderByPos, "ORDER BY")
	}
	if sel.Limit != nil {
		return nil, sql.Unsupported(sel.LimitPos, "LIMIT")
	}
	p := &DeltaPlan{View: sel}
	seenAlias := map[string]bool{}
	seenTable := map[string]bool{}
	for _, tr := range sel.From {
		if seenAlias[tr.Alias] {
			return nil, sql.Unsupported(0, "duplicate alias %q", tr.Alias)
		}
		if seenTable[tr.Table] {
			return nil, sql.Unsupported(0, "self-join (table %q appears twice)", tr.Table)
		}
		seenAlias[tr.Alias] = true
		seenTable[tr.Table] = true
		p.Sources = append(p.Sources, DeltaSource{Alias: tr.Alias, Table: tr.Table})
	}
	if err := p.deriveDelta(); err != nil {
		return nil, err
	}
	return p, nil
}

// deriveDelta derives the delta query and the select-item mapping for
// rendering results.
func (p *DeltaPlan) deriveDelta() error {
	sel := p.View
	if !sel.HasAggregates() && len(sel.GroupBy) == 0 {
		// SPJ view: the delta query is the view query itself.
		p.Delta = sel
		return nil
	}
	p.Aggregate = true
	p.GroupCols = len(sel.GroupBy)
	ds := &sql.Select{From: sel.From, Where: sel.Where}
	for _, g := range sel.GroupBy {
		ds.Items = append(ds.Items, sql.SelectItem{Expr: g})
	}
	p.itemRefs = make([]itemRef, len(sel.Items))
	for i, item := range sel.Items {
		switch x := item.Expr.(type) {
		case *sql.AggExpr:
			arg := x.Arg
			if arg == nil {
				if x.Func != sql.AggCount {
					return sql.Unsupported(x.Pos, "%s without an argument", x.Func)
				}
				arg = &sql.IntLit{V: 1}
			}
			kind, err := aggKind(x)
			if err != nil {
				return err
			}
			p.itemRefs[i] = itemRef{groupIdx: -1, aggIdx: len(p.aggKinds)}
			p.aggKinds = append(p.aggKinds, kind)
			ds.Items = append(ds.Items, sql.SelectItem{Expr: arg})
		case *sql.ColumnRef:
			pos := -1
			for gi, g := range sel.GroupBy {
				if g.Column == x.Column && (g.Table == x.Table || g.Table == "" || x.Table == "") {
					pos = gi
					break
				}
			}
			if pos < 0 {
				return sql.Unsupported(x.Pos, "select column %s outside GROUP BY", x)
			}
			p.itemRefs[i] = itemRef{groupIdx: pos, aggIdx: -1}
		default:
			return sql.Unsupported(0, "select item %s in an aggregate view", item.Expr)
		}
	}
	p.Delta = ds
	return nil
}

func aggKind(x *sql.AggExpr) (exec.AggKind, error) {
	switch x.Func {
	case sql.AggMin:
		return exec.AggMin, nil
	case sql.AggMax:
		return exec.AggMax, nil
	case sql.AggSum:
		return exec.AggSum, nil
	case sql.AggCount:
		return exec.AggCount, nil
	case sql.AggAvg:
		return exec.AggAvg, nil
	}
	return 0, sql.Unsupported(x.Pos, "aggregate %q", x.Func)
}

// AggDescriptions renders the aggregate kinds in select order, for
// reports; empty for SPJ views.
func (p *DeltaPlan) AggDescriptions() []string {
	out := make([]string, 0, len(p.aggKinds))
	for _, it := range p.View.Items {
		if a, ok := it.Expr.(*sql.AggExpr); ok {
			out = append(out, a.String())
		}
	}
	return out
}

// Explain renders the delta plan for humans: the view and delta queries,
// the shape of the view state, and — per base table — the physical plan
// the maintainer executes when draining that table's delta queue (the
// alias replaced by a change cursor, everything else resolved through
// resolve, typically the replica or live database). The rendering is
// deterministic and size-free, so it is stable under data growth.
func (p *DeltaPlan) Explain(resolve func(string) (*storage.Table, error)) (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "view:  %s\n", p.View)
	fmt.Fprintf(&sb, "delta: %s\n", p.Delta)
	if p.Aggregate {
		fmt.Fprintf(&sb, "state: groups (group cols %d, aggregates %s)\n",
			p.GroupCols, strings.Join(p.AggDescriptions(), " "))
	} else {
		sb.WriteString("state: bag of view rows with multiplicities\n")
	}
	var scratch storage.Stats
	for _, src := range p.Sources {
		tbl, err := resolve(src.Table)
		if err != nil {
			return "", err
		}
		schema := tbl.Schema()
		cols := make([]exec.Col, len(schema.Columns))
		for i, c := range schema.Columns {
			cols[i] = exec.Col{Table: src.Alias, Name: c.Name, Type: c.Type}
		}
		cursor := exec.NewRowsSource(cols, nil, &scratch)
		op, err := plan.Compile(p.Delta, nil, &plan.Options{
			Sources: map[string]exec.Op{src.Alias: cursor},
			Resolve: resolve,
			Stats:   &scratch,
		})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "Δ%s (table %s):\n", src.Alias, src.Table)
		for _, line := range strings.Split(strings.TrimRight(plan.Explain(op), "\n"), "\n") {
			sb.WriteString("  ")
			sb.WriteString(line)
			sb.WriteString("\n")
		}
	}
	return sb.String(), nil
}
