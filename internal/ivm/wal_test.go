package ivm

import (
	"errors"
	"sync"
	"testing"

	"abivm/internal/storage"
)

func TestWALAppendSinceTruncate(t *testing.T) {
	w := NewWAL()
	if got := w.LastLSN(); got != 0 {
		t.Fatalf("empty LastLSN = %d", got)
	}
	for i := 0; i < 5; i++ {
		lsn, err := w.Append(WALRecord{Kind: WALDrain, Alias: "a", K: i + 1})
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn = %d, want %d", lsn, i+1)
		}
	}
	if got := w.LastLSN(); got != 5 {
		t.Fatalf("LastLSN = %d", got)
	}
	since := w.Since(2)
	if len(since) != 3 || since[0].LSN != 3 || since[2].LSN != 5 {
		t.Fatalf("Since(2) = %+v", since)
	}
	if got := w.Since(99); len(got) != 0 {
		t.Fatalf("Since(99) = %+v", got)
	}

	w.TruncateThrough(3)
	if w.Len() != 2 {
		t.Fatalf("Len after truncate = %d", w.Len())
	}
	// Truncation must not disturb LSN assignment.
	lsn, err := w.Append(WALRecord{Kind: WALArrival, Mod: Insert("a", storage.Row{storage.I(1)})})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 6 {
		t.Fatalf("post-truncate lsn = %d, want 6", lsn)
	}
	got := w.Since(0)
	if len(got) != 3 || got[0].LSN != 4 || got[2].LSN != 6 {
		t.Fatalf("Since(0) after truncate = %+v", got)
	}
}

func TestWALReplay(t *testing.T) {
	w := NewWAL()
	for i := 0; i < 8; i++ {
		if _, err := w.Append(WALRecord{Kind: WALDrain, Alias: "a", K: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	w.TruncateThrough(2)

	// Replay sees exactly the records Since sees, in order.
	var lsns []uint64
	if err := w.Replay(4, func(rec WALRecord) error {
		lsns = append(lsns, rec.LSN)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(lsns) != 4 || lsns[0] != 5 || lsns[3] != 8 {
		t.Fatalf("Replay(4) visited %v", lsns)
	}

	// A replayed suffix stays intact even when the log is appended to and
	// truncated mid-iteration — record cells are write-once.
	count := 0
	if err := w.Replay(0, func(rec WALRecord) error {
		if count == 0 {
			if _, err := w.Append(WALRecord{Kind: WALDrain, Alias: "b", K: 9}); err != nil {
				t.Fatal(err)
			}
			w.TruncateThrough(6)
		}
		if want := uint64(3 + count); rec.LSN != want {
			t.Fatalf("record %d has lsn %d, want %d", count, rec.LSN, want)
		}
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 6 {
		t.Fatalf("replayed %d records, want 6", count)
	}

	// Errors from fn stop the iteration and propagate.
	calls := 0
	err := w.Replay(0, func(rec WALRecord) error {
		calls++
		return errStop
	})
	if err != errStop || calls != 1 {
		t.Fatalf("err = %v after %d calls", err, calls)
	}
}

// errStop is a sentinel for testing error propagation from Replay.
var errStop = errors.New("stop")

func TestWALTruncateAllReleasesLog(t *testing.T) {
	w := NewWAL()
	for i := 0; i < 4; i++ {
		if _, err := w.Append(WALRecord{Kind: WALDrain, Alias: "a", K: 1}); err != nil {
			t.Fatal(err)
		}
	}
	w.TruncateThrough(99)
	if w.Len() != 0 {
		t.Fatalf("Len = %d after full truncation", w.Len())
	}
	// LSNs keep advancing across a full truncation.
	lsn, err := w.Append(WALRecord{Kind: WALDrain, Alias: "a", K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 5 {
		t.Fatalf("lsn = %d, want 5", lsn)
	}
	if got := w.Since(0); len(got) != 1 || got[0].LSN != 5 {
		t.Fatalf("Since(0) = %+v", got)
	}
}

func TestWALConcurrentAppend(t *testing.T) {
	w := NewWAL()
	var wg sync.WaitGroup
	const workers, per = 8, 50
	seen := make([][]uint64, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				lsn, err := w.Append(WALRecord{Kind: WALDrain, Alias: "x", K: 1})
				if err != nil {
					t.Error(err)
					return
				}
				seen[g] = append(seen[g], lsn)
			}
		}(g)
	}
	wg.Wait()
	all := map[uint64]bool{}
	for _, s := range seen {
		for _, lsn := range s {
			if all[lsn] {
				t.Fatalf("duplicate lsn %d", lsn)
			}
			all[lsn] = true
		}
	}
	if len(all) != workers*per || w.LastLSN() != uint64(workers*per) {
		t.Fatalf("assigned %d lsns, last %d", len(all), w.LastLSN())
	}
}
