package ivm

import (
	"sync"
	"testing"

	"abivm/internal/storage"
)

func TestWALAppendSinceTruncate(t *testing.T) {
	w := NewWAL()
	if got := w.LastLSN(); got != 0 {
		t.Fatalf("empty LastLSN = %d", got)
	}
	for i := 0; i < 5; i++ {
		lsn, err := w.Append(WALRecord{Kind: WALDrain, Alias: "a", K: i + 1})
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn = %d, want %d", lsn, i+1)
		}
	}
	if got := w.LastLSN(); got != 5 {
		t.Fatalf("LastLSN = %d", got)
	}
	since := w.Since(2)
	if len(since) != 3 || since[0].LSN != 3 || since[2].LSN != 5 {
		t.Fatalf("Since(2) = %+v", since)
	}
	if got := w.Since(99); len(got) != 0 {
		t.Fatalf("Since(99) = %+v", got)
	}

	w.TruncateThrough(3)
	if w.Len() != 2 {
		t.Fatalf("Len after truncate = %d", w.Len())
	}
	// Truncation must not disturb LSN assignment.
	lsn, err := w.Append(WALRecord{Kind: WALArrival, Mod: Insert("a", storage.Row{storage.I(1)})})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 6 {
		t.Fatalf("post-truncate lsn = %d, want 6", lsn)
	}
	got := w.Since(0)
	if len(got) != 3 || got[0].LSN != 4 || got[2].LSN != 6 {
		t.Fatalf("Since(0) after truncate = %+v", got)
	}
}

func TestWALConcurrentAppend(t *testing.T) {
	w := NewWAL()
	var wg sync.WaitGroup
	const workers, per = 8, 50
	seen := make([][]uint64, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				lsn, err := w.Append(WALRecord{Kind: WALDrain, Alias: "x", K: 1})
				if err != nil {
					t.Error(err)
					return
				}
				seen[g] = append(seen[g], lsn)
			}
		}(g)
	}
	wg.Wait()
	all := map[uint64]bool{}
	for _, s := range seen {
		for _, lsn := range s {
			if all[lsn] {
				t.Fatalf("duplicate lsn %d", lsn)
			}
			all[lsn] = true
		}
	}
	if len(all) != workers*per || w.LastLSN() != uint64(workers*per) {
		t.Fatalf("assigned %d lsns, last %d", len(all), w.LastLSN())
	}
}
