package ivm

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"abivm/internal/fault"
	"abivm/internal/storage"
)

// applyN applies n partsupp inserts with keys starting at base.
func applyN(t *testing.T, m *Maintainer, base, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		k := int64(base + i)
		mod := Insert("PS", storage.Row{storage.I(k), storage.I(k % 6), storage.F(float64(50 + k))})
		if err := m.Apply(mod); err != nil {
			t.Fatal(err)
		}
	}
}

// pendingKey renders the pending vector for comparison.
func pendingKey(m *Maintainer) string { return fmt.Sprint(m.Pending()) }

func TestCheckpointRecoverRoundTrip(t *testing.T) {
	db := liveDB(t)
	m, err := New(db, paperView)
	if err != nil {
		t.Fatal(err)
	}
	wal := NewWAL()
	m.AttachWAL(wal)

	// Arrivals, a partial drain, a checkpoint, then more work past it.
	applyN(t, m, 100, 6)
	if err := m.ProcessBatch("PS", 2); err != nil {
		t.Fatal(err)
	}
	var cp bytes.Buffer
	if err := m.Checkpoint(&cp); err != nil {
		t.Fatal(err)
	}
	applyN(t, m, 200, 3)
	if err := m.Apply(Update("S", []storage.Value{storage.I(0)},
		storage.Row{storage.I(0), storage.S("S2"), storage.I(1)})); err != nil {
		t.Fatal(err)
	}
	if err := m.ProcessBatch("PS", 4); err != nil {
		t.Fatal(err)
	}
	if err := m.ProcessBatch("S", 1); err != nil {
		t.Fatal(err)
	}

	wantPending := pendingKey(m)
	wantView := rowsKey(m.Result())

	rec, err := Recover(db, paperView, bytes.NewReader(cp.Bytes()), wal)
	if err != nil {
		t.Fatal(err)
	}
	if got := pendingKey(rec); got != wantPending {
		t.Errorf("recovered pending %s, want %s", got, wantPending)
	}
	if got := rowsKey(rec.Result()); got != wantView {
		t.Errorf("recovered view %s, want %s", got, wantView)
	}
	// The recovered maintainer keeps working: it converges to the same
	// ground truth as the original.
	assertConsistent(t, rec)
	assertConsistent(t, m)
	if rowsKey(rec.Result()) != rowsKey(m.Result()) {
		t.Error("recovered and original maintainers diverged after refresh")
	}
}

func TestRecoverAfterWALTruncation(t *testing.T) {
	db := liveDB(t)
	m, err := New(db, paperView)
	if err != nil {
		t.Fatal(err)
	}
	wal := NewWAL()
	m.AttachWAL(wal)
	applyN(t, m, 100, 4)
	if err := m.ProcessBatch("PS", 3); err != nil {
		t.Fatal(err)
	}
	lsn := wal.LastLSN()
	var cp bytes.Buffer
	if err := m.Checkpoint(&cp); err != nil {
		t.Fatal(err)
	}
	wal.TruncateThrough(lsn)
	applyN(t, m, 300, 2)

	rec, err := Recover(db, paperView, bytes.NewReader(cp.Bytes()), wal)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := pendingKey(rec), pendingKey(m); got != want {
		t.Errorf("pending after truncated-WAL recovery %s, want %s", got, want)
	}
	assertConsistent(t, rec)
}

func TestRecoverRejectsBadCheckpoint(t *testing.T) {
	db := liveDB(t)
	if _, err := Recover(db, paperView, strings.NewReader("not a checkpoint"), NewWAL()); err == nil {
		t.Error("garbage checkpoint accepted")
	}
	m, err := New(db, paperView)
	if err != nil {
		t.Fatal(err)
	}
	var cp bytes.Buffer
	if err := m.Checkpoint(&cp); err != nil {
		t.Fatal(err)
	}
	// A view over a table the checkpoint has no replica for must be
	// rejected, not silently rebuilt.
	if _, err := Recover(db, "SELECT a.x FROM audit AS a", bytes.NewReader(cp.Bytes()), NewWAL()); err == nil {
		t.Error("checkpoint missing the view's replica accepted")
	}
}

func TestProcessBatchRollsBackOnMidApplyFault(t *testing.T) {
	db := liveDB(t)
	m, err := New(db, paperView)
	if err != nil {
		t.Fatal(err)
	}
	applyN(t, m, 100, 5)
	// Mix in an update and a delete so the drain has both replica
	// deletions and insertions to roll back.
	if err := m.Apply(Update("PS", []storage.Value{storage.I(100)},
		storage.Row{storage.I(100), storage.I(3), storage.F(1)})); err != nil {
		t.Fatal(err)
	}
	if err := m.Apply(Delete("PS", storage.I(101))); err != nil {
		t.Fatal(err)
	}

	wantPending := pendingKey(m)
	wantView := rowsKey(m.Result())

	for _, site := range []fault.Site{fault.SiteDrainPlan, fault.SiteDrainApply, fault.SiteWALCommit} {
		m.SetInjector(fault.AlwaysAt(site))
		err := m.ProcessBatch("PS", 7)
		if err == nil {
			t.Fatalf("%s: injected fault did not surface", site)
		}
		if !fault.Transient(err) {
			t.Fatalf("%s: error %v is not transient", site, err)
		}
		if got := pendingKey(m); got != wantPending {
			t.Fatalf("%s: pending %s after failed drain, want %s", site, got, wantPending)
		}
		if got := rowsKey(m.Result()); got != wantView {
			t.Fatalf("%s: view changed after failed drain", site)
		}
	}

	// Clearing the injector, the same drain succeeds and the maintainer
	// converges — proof the rollbacks left no residue.
	m.SetInjector(nil)
	if err := m.ProcessBatch("PS", 7); err != nil {
		t.Fatal(err)
	}
	assertConsistent(t, m)
}

func TestProcessBatchRetryAfterRollbackMatchesFaultFree(t *testing.T) {
	build := func(inj fault.Injector) *Maintainer {
		t.Helper()
		m, err := New(liveDB(t), paperView)
		if err != nil {
			t.Fatal(err)
		}
		m.SetInjector(inj)
		return m
	}
	clean := build(nil)
	faulty := build(fault.NewSeeded(7, fault.Rates{DrainPlan: 0.4, DrainApply: 0.4}))
	for _, m := range []*Maintainer{clean, faulty} {
		applyN(t, m, 100, 8)
	}
	for _, step := range []struct {
		alias string
		k     int
	}{{"PS", 3}, {"PS", 2}, {"PS", 3}} {
		if err := clean.ProcessBatch(step.alias, step.k); err != nil {
			t.Fatal(err)
		}
		// Retry the faulty maintainer until the drain commits; rollback
		// must make each retry start from the identical pre-state.
		for attempt := 0; ; attempt++ {
			if attempt > 2*fault.MaxRun+2 {
				t.Fatal("retries did not clear the capped fault runs")
			}
			err := faulty.ProcessBatch(step.alias, step.k)
			if err == nil {
				break
			}
			if !fault.Transient(err) {
				t.Fatal(err)
			}
		}
	}
	if rowsKey(clean.Result()) != rowsKey(faulty.Result()) {
		t.Error("faulted-and-retried view diverged from fault-free view")
	}
	if pendingKey(clean) != pendingKey(faulty) {
		t.Error("faulted-and-retried pending diverged from fault-free pending")
	}
}
