package ivm

import (
	"bytes"
	"strings"
	"testing"
)

// TestRecoverNamespacedValidatesOwnership: a namespaced checkpoint
// recovers only under its own namespace; a mismatch fails before any
// state is rebuilt, and the legacy Recover entry points ignore
// namespaces entirely (old checkpoints carry the zero value).
func TestRecoverNamespacedValidatesOwnership(t *testing.T) {
	db := liveDB(t)
	m, err := New(db, paperView)
	if err != nil {
		t.Fatal(err)
	}
	wal := NewWAL()
	m.AttachWAL(wal)
	m.SetNamespace("shard2/east")
	if got := m.Namespace(); got != "shard2/east" {
		t.Fatalf("Namespace() = %q after SetNamespace", got)
	}
	applyN(t, m, 100, 4)
	var cp bytes.Buffer
	if err := m.Checkpoint(&cp); err != nil {
		t.Fatal(err)
	}

	// Matching namespace: recovery succeeds and the namespace survives.
	rec, err := RecoverNamespaced(db, paperView, "shard2/east", bytes.NewReader(cp.Bytes()), wal, nil)
	if err != nil {
		t.Fatalf("matching namespace: %v", err)
	}
	if got := rec.Namespace(); got != "shard2/east" {
		t.Errorf("recovered namespace %q, want shard2/east", got)
	}
	if got := pendingKey(rec); got != pendingKey(m) {
		t.Errorf("recovered pending %s, want %s", got, pendingKey(m))
	}

	// Foreign namespace: refused with both names in the error.
	if _, err := RecoverNamespaced(db, paperView, "shard0/east", bytes.NewReader(cp.Bytes()), wal, nil); err == nil {
		t.Fatal("recovering another shard's checkpoint succeeded")
	} else if !strings.Contains(err.Error(), "shard2/east") || !strings.Contains(err.Error(), "shard0/east") {
		t.Errorf("mismatch error %q does not name both namespaces", err)
	}

	// Un-namespaced Recover accepts any checkpoint and preserves the
	// recorded namespace.
	rec2, err := Recover(db, paperView, bytes.NewReader(cp.Bytes()), wal)
	if err != nil {
		t.Fatalf("legacy Recover on namespaced checkpoint: %v", err)
	}
	if got := rec2.Namespace(); got != "shard2/east" {
		t.Errorf("legacy Recover dropped the namespace: %q", got)
	}

	// An un-namespaced checkpoint recovers under the empty namespace.
	m2, err := New(liveDB(t), paperView)
	if err != nil {
		t.Fatal(err)
	}
	var cp2 bytes.Buffer
	if err := m2.Checkpoint(&cp2); err != nil {
		t.Fatal(err)
	}
	if _, err := RecoverNamespaced(db, paperView, "", bytes.NewReader(cp2.Bytes()), nil, nil); err != nil {
		t.Errorf("empty-namespace recovery: %v", err)
	}
	if _, err := RecoverNamespaced(db, paperView, "shard1/west", bytes.NewReader(cp2.Bytes()), nil, nil); err == nil {
		t.Error("un-namespaced checkpoint recovered under a shard namespace")
	}
}
