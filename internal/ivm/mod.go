// Package ivm implements batch incremental view maintenance over the
// relational engine: materialized aggregate and select-project-join views
// whose content can be brought up to date by processing batches of base
// table modifications, one table at a time — the asymmetric processing
// model of the paper.
//
// # State-bug avoidance
//
// Modifications are applied to the live base tables immediately, but the
// view must be maintained against the state it currently reflects, not
// the (newer) live state — using the post-update base state in a
// maintenance join is the classic "state bug" (Colby et al., SIGMOD 96).
// The Maintainer therefore keeps a view-consistent replica of every base
// table. A delta batch from table i is joined against the replicas (the
// exact state the view reflects) and only then applied to replica i. The
// live tables are never consulted during maintenance.
//
// # Aggregates under deletion
//
// MIN and MAX are not incrementally maintainable from the aggregate value
// alone: deleting the current minimum forces a recompute. The Maintainer
// keeps a B-tree multiset of contributing values per group, so deletions
// are O(log n) and never touch the base data — the auxiliary-structure
// remedy the paper alludes to.
package ivm

import (
	"fmt"

	"abivm/internal/storage"
)

// ModKind enumerates modification kinds.
type ModKind uint8

// Modification kinds.
const (
	ModInsert ModKind = iota
	ModDelete
	ModUpdate
)

// String names the kind.
func (k ModKind) String() string {
	switch k {
	case ModInsert:
		return "INSERT"
	case ModDelete:
		return "DELETE"
	case ModUpdate:
		return "UPDATE"
	}
	return fmt.Sprintf("ModKind(%d)", uint8(k))
}

// Mod is one base-table modification addressed to a FROM alias of the
// view.
type Mod struct {
	Kind  ModKind
	Alias string
	// Row is the full new row for inserts and updates.
	Row storage.Row
	// Key holds the primary-key values for deletes and updates.
	Key []storage.Value
}

// Insert builds an insert modification.
func Insert(alias string, row storage.Row) Mod {
	return Mod{Kind: ModInsert, Alias: alias, Row: row}
}

// Delete builds a delete modification.
func Delete(alias string, key ...storage.Value) Mod {
	return Mod{Kind: ModDelete, Alias: alias, Key: key}
}

// Update builds an update modification replacing the row at key with row.
func Update(alias string, key []storage.Value, row storage.Row) Mod {
	return Mod{Kind: ModUpdate, Alias: alias, Key: key, Row: row}
}
