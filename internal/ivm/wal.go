package ivm

import (
	"fmt"
	"sort"
	"sync"
)

// The write-ahead log and checkpoint pair give a Maintainer crash
// durability: every accepted arrival and every committed drain is
// recorded, so a maintainer that loses its in-memory state (replica,
// delta queues, view) is rebuilt exactly by loading the last checkpoint
// and replaying the log suffix — a classic redo log. Replaying drains
// (not just arrivals) is what makes recovery *byte-identical*: the
// recovered maintainer has processed precisely the batches the crashed
// one had, so pending vectors, refresh costs, and view contents all
// match the fault-free execution.

// WALKind distinguishes log record types.
type WALKind uint8

// WAL record kinds.
const (
	// WALArrival records one accepted base-table modification.
	WALArrival WALKind = iota
	// WALDrain records one committed ProcessBatch(Alias, K).
	WALDrain
)

// WALRecord is one redo-log entry. Arrival records carry Mod (whose
// Alias addresses the maintainer's view); drain records carry Alias/K.
type WALRecord struct {
	LSN   uint64
	Kind  WALKind
	Mod   Mod
	Alias string
	K     int
}

// WALSink mirrors the log's mutations to a durable backend (see
// internal/durable). AppendRecord receives every record in LSN order
// and TruncateRecords every truncation, both invoked under the WAL's
// lock, so a sink observes exactly the in-memory mutation sequence. A
// sink error surfaces to the WAL caller; the in-memory mutation has
// already happened by then, so callers must treat a sink failure as a
// durability failure of the whole log, not of one record.
type WALSink interface {
	AppendRecord(rec WALRecord) error
	TruncateRecords(lsn uint64) error
}

// WAL is an in-memory, append-only redo log with monotonically
// increasing LSNs starting at 1. It survives a (simulated) maintainer
// crash because it is owned by the broker, not the maintainer; a
// persistent deployment backs it with a file through SetSink (see
// internal/durable), which the explicit LSN/truncation API is shaped
// for. WAL is safe for concurrent use.
type WAL struct {
	mu   sync.Mutex
	recs []WALRecord
	next uint64
	sink WALSink
	obs  *Metrics
}

// NewWAL returns an empty log.
func NewWAL() *WAL { return &WAL{next: 1} }

// RestoreWAL rebuilds a log from records recovered off a durable
// backend: recs (strictly LSN-ascending; they become the retained
// suffix) and next, the LSN the rebuilt log assigns first. next must
// exceed the last record's LSN — a durable recovery that restarted LSN
// assignment inside the retained suffix would corrupt the write-once
// record-cell invariant Replay relies on.
func RestoreWAL(recs []WALRecord, next uint64) (*WAL, error) {
	if next < 1 {
		return nil, fmt.Errorf("ivm: restoring wal with next lsn %d < 1", next)
	}
	for i, rec := range recs {
		if i > 0 && rec.LSN <= recs[i-1].LSN {
			return nil, fmt.Errorf("ivm: restoring wal with non-ascending lsn %d after %d", rec.LSN, recs[i-1].LSN)
		}
	}
	if n := len(recs); n > 0 && recs[n-1].LSN >= next {
		return nil, fmt.Errorf("ivm: restoring wal with next lsn %d inside retained suffix (last record %d)", next, recs[n-1].LSN)
	}
	return &WAL{recs: append([]WALRecord(nil), recs...), next: next}, nil
}

// SetSink attaches a durable mirror receiving every append and
// truncation; nil detaches. Attach before the records the sink should
// see — existing retained records are not replayed into it.
func (w *WAL) SetSink(sink WALSink) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.sink = sink
}

// SetMetrics attaches an instrumentation bundle recording appends,
// truncations, and the retained record count; nil detaches.
func (w *WAL) SetMetrics(ms *Metrics) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.obs = ms
}

// Append assigns the next LSN to rec and appends it, returning the LSN.
// Without a sink the in-memory append itself is the durability point, so
// the append counter doubles as the sync counter; with a sink attached
// the record is also handed to the durable mirror (which buffers it
// until its explicit sync point — see internal/durable).
func (w *WAL) Append(rec WALRecord) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	rec.LSN = w.next
	w.next++
	w.recs = append(w.recs, rec)
	w.obs.observeWALAppend(len(w.recs))
	if w.sink != nil {
		if err := w.sink.AppendRecord(rec); err != nil {
			return rec.LSN, fmt.Errorf("ivm: wal sink append lsn=%d: %w", rec.LSN, err)
		}
	}
	return rec.LSN, nil
}

// LastLSN returns the LSN of the most recently appended record, or 0 for
// an empty (or fully truncated) log history.
func (w *WAL) LastLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.next - 1
}

// suffixFrom returns the index of the first retained record with
// LSN > lsn. Records are LSN-sorted (Append assigns monotonically, and
// truncation only drops prefixes), so this is a binary search, not a
// scan. Callers must hold w.mu.
func (w *WAL) suffixFrom(lsn uint64) int {
	return sort.Search(len(w.recs), func(i int) bool { return w.recs[i].LSN > lsn })
}

// Since returns a copy of every record with LSN > lsn, in order. Replay
// is the zero-copy variant for recovery-sized suffixes.
func (w *WAL) Since(lsn uint64) []WALRecord {
	w.mu.Lock()
	defer w.mu.Unlock()
	i := w.suffixFrom(lsn)
	out := make([]WALRecord, len(w.recs)-i)
	copy(out, w.recs[i:])
	return out
}

// Replay invokes fn on every record with LSN > lsn, in order, without
// copying the suffix. The suffix slice is captured under the lock and
// iterated outside it, which is safe because record cells are
// write-once: Append only extends the log and TruncateThrough only
// advances its start, so a captured suffix is immutable even while the
// log keeps moving. Replay stops at fn's first error and returns it.
func (w *WAL) Replay(lsn uint64, fn func(WALRecord) error) error {
	w.mu.Lock()
	i := w.suffixFrom(lsn)
	recs := w.recs[i:len(w.recs):len(w.recs)]
	w.mu.Unlock()
	for _, rec := range recs {
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// TruncateThrough drops every record with LSN <= lsn; a checkpoint at
// lsn makes the prefix unnecessary for recovery. LSN assignment is
// unaffected. Truncation re-slices instead of copying down — O(1), and
// it preserves the write-once record cells that make Replay's captured
// suffixes immutable; the abandoned prefix is reclaimed when the backing
// array next grows (or immediately, when the log empties). With a sink
// attached the truncation is mirrored to the durable backend (which may
// retain a longer suffix for its own fallback ladder); a sink error is
// returned after the in-memory truncation has happened.
func (w *WAL) TruncateThrough(lsn uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	i := w.suffixFrom(lsn)
	if i == len(w.recs) {
		w.recs = nil
	} else {
		w.recs = w.recs[i:]
	}
	w.obs.observeWALTruncate(len(w.recs))
	if w.sink != nil {
		if err := w.sink.TruncateRecords(lsn); err != nil {
			return fmt.Errorf("ivm: wal sink truncate lsn=%d: %w", lsn, err)
		}
	}
	return nil
}

// Len returns the number of retained records.
func (w *WAL) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.recs)
}

// String summarizes the log for diagnostics.
func (w *WAL) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return fmt.Sprintf("wal{records=%d, next=%d}", len(w.recs), w.next)
}
