package ivm

import (
	"fmt"
	"sort"
	"sync"
)

// The write-ahead log and checkpoint pair give a Maintainer crash
// durability: every accepted arrival and every committed drain is
// recorded, so a maintainer that loses its in-memory state (replica,
// delta queues, view) is rebuilt exactly by loading the last checkpoint
// and replaying the log suffix — a classic redo log. Replaying drains
// (not just arrivals) is what makes recovery *byte-identical*: the
// recovered maintainer has processed precisely the batches the crashed
// one had, so pending vectors, refresh costs, and view contents all
// match the fault-free execution.

// WALKind distinguishes log record types.
type WALKind uint8

// WAL record kinds.
const (
	// WALArrival records one accepted base-table modification.
	WALArrival WALKind = iota
	// WALDrain records one committed ProcessBatch(Alias, K).
	WALDrain
)

// WALRecord is one redo-log entry. Arrival records carry Mod (whose
// Alias addresses the maintainer's view); drain records carry Alias/K.
type WALRecord struct {
	LSN   uint64
	Kind  WALKind
	Mod   Mod
	Alias string
	K     int
}

// WAL is an in-memory, append-only redo log with monotonically
// increasing LSNs starting at 1. It survives a (simulated) maintainer
// crash because it is owned by the broker, not the maintainer; a
// persistent deployment would back it with a file, which the explicit
// LSN/truncation API is shaped for. WAL is safe for concurrent use.
type WAL struct {
	mu   sync.Mutex
	recs []WALRecord
	next uint64
	obs  *Metrics
}

// NewWAL returns an empty log.
func NewWAL() *WAL { return &WAL{next: 1} }

// SetMetrics attaches an instrumentation bundle recording appends,
// truncations, and the retained record count; nil detaches.
func (w *WAL) SetMetrics(ms *Metrics) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.obs = ms
}

// Append assigns the next LSN to rec and appends it, returning the LSN.
// With the in-memory log the append itself is the durability point (a
// file-backed log would fsync here), so the append counter doubles as
// the sync counter.
func (w *WAL) Append(rec WALRecord) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	rec.LSN = w.next
	w.next++
	w.recs = append(w.recs, rec)
	w.obs.observeWALAppend(len(w.recs))
	return rec.LSN, nil
}

// LastLSN returns the LSN of the most recently appended record, or 0 for
// an empty (or fully truncated) log history.
func (w *WAL) LastLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.next - 1
}

// suffixFrom returns the index of the first retained record with
// LSN > lsn. Records are LSN-sorted (Append assigns monotonically, and
// truncation only drops prefixes), so this is a binary search, not a
// scan. Callers must hold w.mu.
func (w *WAL) suffixFrom(lsn uint64) int {
	return sort.Search(len(w.recs), func(i int) bool { return w.recs[i].LSN > lsn })
}

// Since returns a copy of every record with LSN > lsn, in order. Replay
// is the zero-copy variant for recovery-sized suffixes.
func (w *WAL) Since(lsn uint64) []WALRecord {
	w.mu.Lock()
	defer w.mu.Unlock()
	i := w.suffixFrom(lsn)
	out := make([]WALRecord, len(w.recs)-i)
	copy(out, w.recs[i:])
	return out
}

// Replay invokes fn on every record with LSN > lsn, in order, without
// copying the suffix. The suffix slice is captured under the lock and
// iterated outside it, which is safe because record cells are
// write-once: Append only extends the log and TruncateThrough only
// advances its start, so a captured suffix is immutable even while the
// log keeps moving. Replay stops at fn's first error and returns it.
func (w *WAL) Replay(lsn uint64, fn func(WALRecord) error) error {
	w.mu.Lock()
	i := w.suffixFrom(lsn)
	recs := w.recs[i:len(w.recs):len(w.recs)]
	w.mu.Unlock()
	for _, rec := range recs {
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// TruncateThrough drops every record with LSN <= lsn; a checkpoint at
// lsn makes the prefix unnecessary for recovery. LSN assignment is
// unaffected. Truncation re-slices instead of copying down — O(1), and
// it preserves the write-once record cells that make Replay's captured
// suffixes immutable; the abandoned prefix is reclaimed when the backing
// array next grows (or immediately, when the log empties).
func (w *WAL) TruncateThrough(lsn uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	i := w.suffixFrom(lsn)
	if i == len(w.recs) {
		w.recs = nil
	} else {
		w.recs = w.recs[i:]
	}
	w.obs.observeWALTruncate(len(w.recs))
}

// Len returns the number of retained records.
func (w *WAL) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.recs)
}

// String summarizes the log for diagnostics.
func (w *WAL) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return fmt.Sprintf("wal{records=%d, next=%d}", len(w.recs), w.next)
}
