package ivm

import (
	"fmt"
	"sync"
)

// The write-ahead log and checkpoint pair give a Maintainer crash
// durability: every accepted arrival and every committed drain is
// recorded, so a maintainer that loses its in-memory state (replica,
// delta queues, view) is rebuilt exactly by loading the last checkpoint
// and replaying the log suffix — a classic redo log. Replaying drains
// (not just arrivals) is what makes recovery *byte-identical*: the
// recovered maintainer has processed precisely the batches the crashed
// one had, so pending vectors, refresh costs, and view contents all
// match the fault-free execution.

// WALKind distinguishes log record types.
type WALKind uint8

// WAL record kinds.
const (
	// WALArrival records one accepted base-table modification.
	WALArrival WALKind = iota
	// WALDrain records one committed ProcessBatch(Alias, K).
	WALDrain
)

// WALRecord is one redo-log entry. Arrival records carry Mod (whose
// Alias addresses the maintainer's view); drain records carry Alias/K.
type WALRecord struct {
	LSN   uint64
	Kind  WALKind
	Mod   Mod
	Alias string
	K     int
}

// WAL is an in-memory, append-only redo log with monotonically
// increasing LSNs starting at 1. It survives a (simulated) maintainer
// crash because it is owned by the broker, not the maintainer; a
// persistent deployment would back it with a file, which the explicit
// LSN/truncation API is shaped for. WAL is safe for concurrent use.
type WAL struct {
	mu   sync.Mutex
	recs []WALRecord
	next uint64
	obs  *Metrics
}

// NewWAL returns an empty log.
func NewWAL() *WAL { return &WAL{next: 1} }

// SetMetrics attaches an instrumentation bundle recording appends,
// truncations, and the retained record count; nil detaches.
func (w *WAL) SetMetrics(ms *Metrics) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.obs = ms
}

// Append assigns the next LSN to rec and appends it, returning the LSN.
// With the in-memory log the append itself is the durability point (a
// file-backed log would fsync here), so the append counter doubles as
// the sync counter.
func (w *WAL) Append(rec WALRecord) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	rec.LSN = w.next
	w.next++
	w.recs = append(w.recs, rec)
	w.obs.observeWALAppend(len(w.recs))
	return rec.LSN, nil
}

// LastLSN returns the LSN of the most recently appended record, or 0 for
// an empty (or fully truncated) log history.
func (w *WAL) LastLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.next - 1
}

// Since returns a copy of every record with LSN > lsn, in order.
func (w *WAL) Since(lsn uint64) []WALRecord {
	w.mu.Lock()
	defer w.mu.Unlock()
	i := 0
	for i < len(w.recs) && w.recs[i].LSN <= lsn {
		i++
	}
	out := make([]WALRecord, len(w.recs)-i)
	copy(out, w.recs[i:])
	return out
}

// TruncateThrough drops every record with LSN <= lsn; a checkpoint at
// lsn makes the prefix unnecessary for recovery. LSN assignment is
// unaffected.
func (w *WAL) TruncateThrough(lsn uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	i := 0
	for i < len(w.recs) && w.recs[i].LSN <= lsn {
		i++
	}
	w.recs = append(w.recs[:0], w.recs[i:]...)
	w.obs.observeWALTruncate(len(w.recs))
}

// Len returns the number of retained records.
func (w *WAL) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.recs)
}

// String summarizes the log for diagnostics.
func (w *WAL) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return fmt.Sprintf("wal{records=%d, next=%d}", len(w.recs), w.next)
}
