package ivm

import (
	"time"

	"abivm/internal/obs"
)

// Metrics is the maintainer's instrumentation bundle: drain latency and
// throughput, redo-log activity, checkpoint cost, and recovery replay
// length. Attach one bundle per registry via Maintainer.SetMetrics /
// WAL.SetMetrics; several maintainers may share a bundle (every
// instrument is atomic), which is exactly what the broker does — the
// histograms then aggregate across subscriptions. A nil *Metrics is the
// detached state: every recording helper no-ops and the hot paths skip
// all measurement work, including time.Now calls.
type Metrics struct {
	// Drains counts ProcessBatch attempts with k > 0; DrainFailures the
	// attempts that returned an error (injected or real).
	Drains        *obs.Counter
	DrainFailures *obs.Counter
	// DrainLatency observes the wall-clock seconds of committed drains.
	DrainLatency *obs.Histogram
	// DrainedMods counts modifications folded into views by committed
	// drains — the runtime's integral of the paper's batch sizes k.
	DrainedMods *obs.Counter

	// WALAppends counts redo-log appends (arrivals and drain commits);
	// the in-memory WAL has no separate fsync, so an append is also the
	// durability point. WALRecords tracks the retained suffix length.
	WALAppends     *obs.Counter
	WALTruncations *obs.Counter
	WALRecords     *obs.Gauge

	// Checkpoints counts successful Checkpoint calls; bytes and seconds
	// observe each checkpoint's size and duration.
	Checkpoints       *obs.Counter
	CheckpointBytes   *obs.Histogram
	CheckpointSeconds *obs.Histogram

	// Incremental checkpointing: CheckpointDeltas counts successful
	// delta-segment writes (full-segment writes stay in Checkpoints) and
	// CheckpointDeltaBytes observes each segment's size — the pair whose
	// ratio to Checkpoints/CheckpointBytes shows what incremental
	// checkpointing saves. CheckpointCompactions counts chain
	// compactions and CheckpointChainDepth tracks the delta segments
	// currently chained behind the base. Delta durations fold into
	// CheckpointSeconds alongside full checkpoints.
	CheckpointDeltas      *obs.Counter
	CheckpointDeltaBytes  *obs.Histogram
	CheckpointCompactions *obs.Counter
	CheckpointChainDepth  *obs.Gauge

	// Recoveries counts successful Recover calls; RecoveryReplay
	// observes the WAL suffix length each recovery replayed.
	Recoveries     *obs.Counter
	RecoveryReplay *obs.Histogram

	// Disk durability (see internal/durable): WALSyncs counts explicit
	// file-backed sync points and WALSyncBytes the frame bytes they
	// flushed — the pair whose ratio is the effective group-commit batch
	// size. The in-memory WAL never touches them.
	WALSyncs     *obs.Counter
	WALSyncBytes *obs.Counter

	// Corruption-hardened recovery: RecoveryCorruptions counts corrupt
	// or missing on-disk artifacts detected while rebuilding a
	// maintainer, RecoveryQuarantines the artifacts moved into the
	// store's quarantine directory, and RecoveryFallbacks the recoveries
	// that had to degrade to a full refresh from the live tables because
	// no exact recovery point survived. A fallback is loud by design:
	// the maintainer keeps serving, but the operator sees the ladder rung
	// it landed on.
	RecoveryCorruptions *obs.Counter
	RecoveryQuarantines *obs.Counter
	RecoveryFallbacks   *obs.Counter
}

// NewMetrics registers the maintainer instruments on r and returns the
// bundle (nil registry yields nil, the detached bundle).
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		Drains:         r.Counter("ivm_drains_total"),
		DrainFailures:  r.Counter("ivm_drain_failures_total"),
		DrainLatency:   r.Histogram("ivm_drain_latency_seconds", obs.LatencyBuckets()),
		DrainedMods:    r.Counter("ivm_drained_mods_total"),
		WALAppends:     r.Counter("ivm_wal_appends_total"),
		WALTruncations: r.Counter("ivm_wal_truncations_total"),
		WALRecords:     r.Gauge("ivm_wal_records"),
		Checkpoints:    r.Counter("ivm_checkpoints_total"),
		CheckpointBytes: r.Histogram("ivm_checkpoint_bytes",
			obs.SizeBuckets()),
		CheckpointSeconds: r.Histogram("ivm_checkpoint_seconds", obs.LatencyBuckets()),
		CheckpointDeltas:  r.Counter("ivm_checkpoint_deltas_total"),
		CheckpointDeltaBytes: r.Histogram("ivm_checkpoint_delta_bytes",
			obs.SizeBuckets()),
		CheckpointCompactions: r.Counter("ivm_checkpoint_compactions_total"),
		CheckpointChainDepth:  r.Gauge("ivm_checkpoint_chain_depth"),
		Recoveries:            r.Counter("ivm_recoveries_total"),
		RecoveryReplay: r.Histogram("ivm_recovery_replayed_records",
			[]float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256}),
		WALSyncs:            r.Counter("ivm_wal_sync_total"),
		WALSyncBytes:        r.Counter("ivm_wal_sync_bytes_total"),
		RecoveryCorruptions: r.Counter("ivm_recovery_corruption_total"),
		RecoveryQuarantines: r.Counter("ivm_recovery_corruption_quarantined_total"),
		RecoveryFallbacks:   r.Counter("ivm_recovery_corruption_fallbacks_total"),
	}
}

// ObserveWALSync records one file-backed WAL sync flushing n frame
// bytes. It is exported for the durable layer, which owns the sync point
// but reports through the maintainer bundle.
func (ms *Metrics) ObserveWALSync(n int) {
	if ms == nil {
		return
	}
	ms.WALSyncs.Inc()
	ms.WALSyncBytes.Add(int64(n))
}

// ObserveRecoveryCorruption records detected corrupt artifacts and how
// many of them were quarantined during one disk recovery.
func (ms *Metrics) ObserveRecoveryCorruption(detected, quarantined int) {
	if ms == nil {
		return
	}
	ms.RecoveryCorruptions.Add(int64(detected))
	ms.RecoveryQuarantines.Add(int64(quarantined))
}

// ObserveRecoveryFallback records one recovery that degraded to a full
// refresh from the live tables.
func (ms *Metrics) ObserveRecoveryFallback() {
	if ms == nil {
		return
	}
	ms.RecoveryFallbacks.Inc()
}

// ObserveDrain records one drain (ProcessBatch) outcome on behalf of an
// external view runtime (internal/dataflow), which owns its drain path
// but reports through the maintainer bundle so classic and shared modes
// share one set of series.
func (ms *Metrics) ObserveDrain(elapsed time.Duration, k int, err error) {
	ms.observeDrain(elapsed, k, err)
}

// ObserveCheckpoint records one successful checkpoint taken by an
// external view runtime.
func (ms *Metrics) ObserveCheckpoint(elapsed time.Duration, bytes int) {
	ms.observeCheckpoint(elapsed, bytes)
}

// ObserveRecovery records one successful recovery by an external view
// runtime with the replayed record count.
func (ms *Metrics) ObserveRecovery(replayed int) {
	ms.observeRecovery(replayed)
}

// observeDrain records one ProcessBatch outcome.
func (ms *Metrics) observeDrain(elapsed time.Duration, k int, err error) {
	if ms == nil {
		return
	}
	ms.Drains.Inc()
	if err != nil {
		ms.DrainFailures.Inc()
		return
	}
	ms.DrainLatency.Observe(elapsed.Seconds())
	ms.DrainedMods.Add(int64(k))
}

// observeCheckpoint records one successful Checkpoint.
func (ms *Metrics) observeCheckpoint(elapsed time.Duration, bytes int) {
	if ms == nil {
		return
	}
	ms.Checkpoints.Inc()
	ms.CheckpointBytes.Observe(float64(bytes))
	ms.CheckpointSeconds.Observe(elapsed.Seconds())
}

// observeCheckpointDelta records one successful CheckpointDelta.
func (ms *Metrics) observeCheckpointDelta(elapsed time.Duration, bytes int) {
	if ms == nil {
		return
	}
	ms.CheckpointDeltas.Inc()
	ms.CheckpointDeltaBytes.Observe(float64(bytes))
	ms.CheckpointSeconds.Observe(elapsed.Seconds())
}

// observeCompaction records one chain compaction.
func (ms *Metrics) observeCompaction() {
	if ms == nil {
		return
	}
	ms.CheckpointCompactions.Inc()
}

// observeRecovery records one successful Recover with the replayed
// record count.
func (ms *Metrics) observeRecovery(replayed int) {
	if ms == nil {
		return
	}
	ms.Recoveries.Inc()
	ms.RecoveryReplay.Observe(float64(replayed))
}

// observeWALAppend / observeWALTruncate record redo-log activity with
// the retained length after the operation.
func (ms *Metrics) observeWALAppend(retained int) {
	if ms == nil {
		return
	}
	ms.WALAppends.Inc()
	ms.WALRecords.Set(float64(retained))
}

func (ms *Metrics) observeWALTruncate(retained int) {
	if ms == nil {
		return
	}
	ms.WALTruncations.Inc()
	ms.WALRecords.Set(float64(retained))
}
