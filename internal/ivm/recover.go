package ivm

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"time"

	"abivm/internal/storage"
)

// checkpointVersion guards against reading checkpoints written by an
// incompatible layout.
const checkpointVersion = 1

// checkpointDTO is the on-stream checkpoint format: the replica database
// (the exact state the view reflects), the pending delta queues, and the
// WAL position the checkpoint covers. The view content itself is not
// stored — it is a pure function of the replicas (the delta query over
// them), so Recover recomputes it, keeping the format small and immune
// to view-state layout changes.
type checkpointDTO struct {
	Version int
	LSN     uint64
	Replica []byte
	Queues  map[string][]Mod
	// Namespace identifies whose state this checkpoint is (see
	// Maintainer.SetNamespace); "" for un-namespaced maintainers. Old
	// checkpoints decode with the zero value, so the field is
	// version-compatible.
	Namespace string
}

// Checkpoint serializes the maintainer's durable state to w: replica
// snapshot, delta queues, and the current WAL position. Everything the
// checkpoint covers (LSN and below) may be truncated from the WAL
// afterwards; Recover replays only records past the checkpoint.
func (m *Maintainer) Checkpoint(w io.Writer) error {
	if m.obs == nil {
		return m.checkpoint(w)
	}
	cw := &countingWriter{w: w}
	//lint:ignore nondet checkpoint latency feeds metrics only, never checkpoint content
	start := time.Now()
	err := m.checkpoint(cw)
	if err == nil {
		//lint:ignore nondet measurement of the checkpoint, not part of it
		m.obs.observeCheckpoint(time.Since(start), cw.n)
	}
	return err
}

// countingWriter measures checkpoint size without buffering it.
type countingWriter struct {
	w io.Writer
	n int
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += n
	return n, err
}

func (m *Maintainer) checkpoint(w io.Writer) error {
	// The replica serialization buffer and the queue copies are reused
	// across checkpoints (cpBuf / the modPool free list): the encoder
	// consumes them before this function returns, so nothing escapes.
	m.cpBuf.Reset()
	if err := m.replica.WriteSnapshot(&m.cpBuf); err != nil {
		return fmt.Errorf("ivm: checkpoint replica snapshot: %w", err)
	}
	dto := checkpointDTO{
		Version:   checkpointVersion,
		Replica:   m.cpBuf.Bytes(),
		Queues:    m.takeQueues(),
		Namespace: m.ns,
	}
	defer m.releaseQueues(dto.Queues)
	if m.wal != nil {
		dto.LSN = m.wal.LastLSN()
	}
	if err := gob.NewEncoder(w).Encode(dto); err != nil {
		return fmt.Errorf("ivm: encoding checkpoint: %w", err)
	}
	return nil
}

// Recover rebuilds a crashed maintainer from its last checkpoint and the
// write-ahead log: load the replica snapshot and queues, recompute the
// view content from the replicas, then redo the WAL suffix — arrivals
// re-enter the queues (their live-table effects already happened before
// the crash) and drains re-execute, so the recovered maintainer matches
// the crashed one exactly: same replicas, same queues, same view. The
// WAL is attached to the returned maintainer; replayed work is not
// re-logged.
func Recover(live *storage.DB, query string, cp io.Reader, wal *WAL) (*Maintainer, error) {
	return recoverMaintainer(live, query, "", false, cp, nil, wal, nil)
}

// RecoverNamespaced is Recover with a namespace check: the checkpoint
// must have been written by a maintainer whose namespace is exactly ns,
// otherwise recovery fails before any state is rebuilt. A sharded broker
// uses this to guarantee each shard restores only its own subscriptions'
// recovery points ("<shard>/<subscription>" namespaces).
func RecoverNamespaced(live *storage.DB, query, ns string, cp io.Reader, wal *WAL, ms *Metrics) (*Maintainer, error) {
	return recoverMaintainer(live, query, ns, true, cp, nil, wal, ms)
}

// RecoverWithMetrics is Recover with an instrumentation bundle: a
// successful recovery is counted, its replayed WAL suffix length is
// observed, and ms is attached to the recovered maintainer so its
// post-recovery drains keep reporting to the same registry. A nil ms is
// exactly Recover.
func RecoverWithMetrics(live *storage.DB, query string, cp io.Reader, wal *WAL, ms *Metrics) (*Maintainer, error) {
	return recoverMaintainer(live, query, "", false, cp, nil, wal, ms)
}

// recoverMaintainer is the shared implementation; checkNS enables the namespace
// validation (wantNS may legitimately be "" for a namespaced caller that
// never named its maintainer). A non-empty deltas is an incremental
// checkpoint chain: each segment is validated (version, namespace, LSN
// continuity) and folded into the base state before the view recompute.
func recoverMaintainer(live *storage.DB, query, wantNS string, checkNS bool, cp io.Reader, deltas [][]byte, wal *WAL, ms *Metrics) (*Maintainer, error) {
	var dto checkpointDTO
	if err := gob.NewDecoder(cp).Decode(&dto); err != nil {
		return nil, fmt.Errorf("ivm: decoding checkpoint: %w", err)
	}
	if dto.Version != checkpointVersion {
		return nil, fmt.Errorf("ivm: checkpoint version %d, want %d", dto.Version, checkpointVersion)
	}
	if checkNS && dto.Namespace != wantNS {
		return nil, fmt.Errorf("ivm: checkpoint namespace %q, want %q", dto.Namespace, wantNS)
	}
	m, err := newSkeleton(live, query)
	if err != nil {
		return nil, err
	}
	replica, err := storage.ReadSnapshot(bytes.NewReader(dto.Replica))
	if err != nil {
		return nil, fmt.Errorf("ivm: checkpoint replica: %w", err)
	}
	if err := foldChainInto(&dto, replica, deltas); err != nil {
		return nil, err
	}
	m.replica = replica
	m.stats = replica.Stats()
	m.view.SetStats(m.stats)
	for _, alias := range m.aliases {
		if _, err := replica.Table(m.tables[alias]); err != nil {
			return nil, fmt.Errorf("ivm: checkpoint is missing replica of %q: %w", alias, err)
		}
	}
	// The view content is the delta query over the replicas — exactly the
	// state the checkpoint captured.
	if err := m.initialize(); err != nil {
		return nil, fmt.Errorf("ivm: recomputing view from checkpoint: %w", err)
	}
	// Restore queues in sorted alias order so a checkpoint with several
	// unknown aliases always fails on the same one.
	aliases := make([]string, 0, len(dto.Queues))
	for alias := range dto.Queues {
		aliases = append(aliases, alias)
	}
	sort.Strings(aliases)
	for _, alias := range aliases {
		if _, ok := m.tables[alias]; !ok {
			return nil, fmt.Errorf("ivm: checkpoint queue for unknown alias %q", alias)
		}
		m.deltas[alias] = append([]Mod(nil), dto.Queues[alias]...)
	}
	// Redo the log suffix through the zero-copy iterator — recovery
	// reads the records in place instead of copying the whole suffix.
	// The WAL (and injector) stay detached during replay: recovery must
	// not re-log records or pick up new faults.
	replayed := 0
	if wal != nil {
		if err := wal.Replay(dto.LSN, func(rec WALRecord) error {
			replayed++
			switch rec.Kind {
			case WALArrival:
				if _, ok := m.tables[rec.Mod.Alias]; !ok {
					return fmt.Errorf("ivm: wal arrival for unknown alias %q", rec.Mod.Alias)
				}
				m.deltas[rec.Mod.Alias] = append(m.deltas[rec.Mod.Alias], rec.Mod)
				return nil
			case WALDrain:
				if err := m.ProcessBatch(rec.Alias, rec.K); err != nil {
					return fmt.Errorf("ivm: replaying drain lsn=%d %s/%d: %w", rec.LSN, rec.Alias, rec.K, err)
				}
				return nil
			default:
				return fmt.Errorf("ivm: unknown wal record kind %d at lsn %d", rec.Kind, rec.LSN)
			}
		}); err != nil {
			return nil, err
		}
	}
	m.wal = wal
	m.obs = ms
	m.ns = dto.Namespace
	ms.observeRecovery(replayed)
	// Replay work is recovery overhead, not maintenance cost.
	*m.stats = storage.Stats{}
	return m, nil
}
