package ivm

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"abivm/internal/storage"
)

// Incremental checkpointing: instead of re-serializing the full replica
// state at every checkpoint, a CheckpointChain keeps one base segment
// (the v1 full-checkpoint format, unchanged) plus a chain of delta
// segments, each covering the WAL range since the previous segment. A
// delta serializes only the replica rows committed drains have touched
// (the maintainer's dirty-key set) plus the pending queues — typically a
// few rows instead of every table. Compaction folds the chain back into
// a fresh base once it exceeds a configurable depth; it is a pure
// transformation of already-written segments, never touching the live
// maintainer, so when it runs relative to drains and crashes cannot
// change what recovery produces.

// deltaCheckpointVersion guards against reading delta segments written
// by an incompatible layout. It is independent of checkpointVersion:
// base segments remain plain v1 full checkpoints, which is what keeps
// pre-chain checkpoints recoverable.
const deltaCheckpointVersion = 1

// deltaDTO is the on-stream delta-segment format. FromLSN names the WAL
// position of the segment it extends and LSN the position it covers
// through; RecoverChain and Compact refuse a chain whose FromLSN links
// don't match — the truncated/reordered-chain guard. Queues replace the
// pending queues wholesale (they are step-sized), while Delta carries
// only the changed replica rows (see storage.WriteSnapshotDelta).
type deltaDTO struct {
	Version   int
	FromLSN   uint64
	LSN       uint64
	Delta     []byte
	Queues    map[string][]Mod
	Namespace string
}

// CheckpointDelta serializes an incremental checkpoint segment to w:
// the replica rows drained since the previous segment (which must have
// covered WAL position fromLSN), the pending queues, and the current
// WAL position. On success the dirty-key set is cleared — the segment
// now owns those changes. Callers normally go through
// CheckpointChain.Checkpoint, which threads fromLSN correctly.
func (m *Maintainer) CheckpointDelta(w io.Writer, fromLSN uint64) error {
	if m.obs == nil {
		return m.checkpointDelta(w, fromLSN)
	}
	cw := &countingWriter{w: w}
	//lint:ignore nondet checkpoint latency feeds metrics only, never checkpoint content
	start := time.Now()
	err := m.checkpointDelta(cw, fromLSN)
	if err == nil {
		//lint:ignore nondet measurement of the checkpoint, not part of it
		m.obs.observeCheckpointDelta(time.Since(start), cw.n)
	}
	return err
}

func (m *Maintainer) checkpointDelta(w io.Writer, fromLSN uint64) error {
	m.cpBuf.Reset()
	if err := m.replica.WriteSnapshotDelta(&m.cpBuf, m.dirty); err != nil {
		return fmt.Errorf("ivm: checkpoint replica delta: %w", err)
	}
	dto := deltaDTO{
		Version:   deltaCheckpointVersion,
		FromLSN:   fromLSN,
		Delta:     m.cpBuf.Bytes(),
		Queues:    m.takeQueues(),
		Namespace: m.ns,
	}
	defer m.releaseQueues(dto.Queues)
	if m.wal != nil {
		dto.LSN = m.wal.LastLSN()
	}
	if err := gob.NewEncoder(w).Encode(dto); err != nil {
		return fmt.Errorf("ivm: encoding checkpoint delta: %w", err)
	}
	m.clearDirty()
	return nil
}

// takeQueues copies the pending delta queues into pooled slices for a
// checkpoint DTO. The copies stay valid until releaseQueues returns
// them to the free list — which the caller does once the DTO is
// encoded, so steady-state checkpointing reuses the same arrays.
func (m *Maintainer) takeQueues() map[string][]Mod {
	if m.cpQueues == nil {
		m.cpQueues = make(map[string][]Mod, len(m.aliases))
	}
	for _, alias := range m.aliases {
		m.cpQueues[alias] = append(m.qpool.get(len(m.deltas[alias])), m.deltas[alias]...)
	}
	return m.cpQueues
}

// releaseQueues returns a takeQueues result to the free list.
func (m *Maintainer) releaseQueues(qs map[string][]Mod) {
	for _, alias := range m.aliases {
		if q, ok := qs[alias]; ok {
			m.qpool.put(q)
			delete(qs, alias)
		}
	}
}

// modPool is a small free list of []Mod backing arrays. The checkpoint
// path takes short-lived copies of every delta queue; recycling them
// makes steady-state checkpointing allocation-free instead of producing
// one garbage slice per queue per checkpoint.
type modPool struct {
	free [][]Mod
}

// get returns a zero-length slice with capacity at least n, reusing a
// freed array when one is large enough.
func (p *modPool) get(n int) []Mod {
	for i := len(p.free) - 1; i >= 0; i-- {
		if cap(p.free[i]) >= n {
			s := p.free[i]
			p.free[i] = p.free[len(p.free)-1]
			p.free = p.free[:len(p.free)-1]
			return s
		}
	}
	if n == 0 {
		return nil
	}
	return make([]Mod, 0, n)
}

// put returns a slice's backing array to the free list.
func (p *modPool) put(s []Mod) {
	if cap(s) == 0 {
		return
	}
	p.free = append(p.free, s[:0])
}

// DefaultChainDepth is the default maximum number of delta segments a
// CheckpointChain accumulates before compacting into a fresh base.
const DefaultChainDepth = 4

// ChainStore mirrors a chain's segment mutations to a durable backend
// (see internal/durable). PutBase receives every event that resets the
// chain to a single base segment covering WAL position lsn (the first
// checkpoint, a compaction, SetBase); PutDelta receives every appended
// delta segment with its FromLSN→LSN link. Calls arrive in mutation
// order on the broker's serial checkpoint path; a store error aborts
// the checkpoint that triggered it.
type ChainStore interface {
	PutBase(seg []byte, lsn uint64) error
	PutDelta(seg []byte, fromLSN, lsn uint64) error
}

// CheckpointChain owns a maintainer's incremental recovery point: one
// base segment (a v1 full checkpoint) plus the delta segments written
// since. It is the unit the broker stores per subscription and hands to
// RecoverChain after a crash. A chain is not safe for concurrent use;
// the broker serializes access under its own lock, like the maintainer
// itself.
type CheckpointChain struct {
	base   []byte
	deltas [][]byte
	tipLSN uint64
	// maxDepth is the compaction trigger: after a checkpoint pushes the
	// chain past maxDepth delta segments, Checkpoint compacts. 0 means
	// "compact immediately" — every checkpoint folds to a full base,
	// which is exactly the pre-chain full-checkpoint behavior.
	maxDepth int

	store ChainStore
	obs   *Metrics
}

// NewCheckpointChain returns an empty chain compacting beyond maxDepth
// delta segments; maxDepth < 0 selects DefaultChainDepth.
func NewCheckpointChain(maxDepth int) *CheckpointChain {
	if maxDepth < 0 {
		maxDepth = DefaultChainDepth
	}
	return &CheckpointChain{maxDepth: maxDepth}
}

// RestoreChain rebuilds a chain from segments recovered off a durable
// backend: the base, the delta segments in chain order, and the WAL
// position the last segment covers through. The caller attests the
// segments form a valid FromLSN→LSN chain (recovery re-validates them
// when it folds the chain); maxDepth < 0 selects DefaultChainDepth.
func RestoreChain(base []byte, deltas [][]byte, tipLSN uint64, maxDepth int) *CheckpointChain {
	c := NewCheckpointChain(maxDepth)
	c.base = base
	c.deltas = deltas
	c.tipLSN = tipLSN
	return c
}

// SetMetrics attaches an instrumentation bundle observing delta writes,
// compactions, and chain depth; nil detaches.
func (c *CheckpointChain) SetMetrics(ms *Metrics) { c.obs = ms }

// SetStore attaches a durable mirror receiving every base and delta
// segment the chain writes from now on; nil detaches. Attach before the
// first Checkpoint (or right after RestoreChain, whose adopted segments
// the store already holds) — existing segments are not replayed into it.
func (c *CheckpointChain) SetStore(st ChainStore) { c.store = st }

// putBase mirrors a chain-resetting base segment to the store, if any.
func (c *CheckpointChain) putBase(lsn uint64) error {
	if c.store == nil {
		return nil
	}
	if err := c.store.PutBase(c.base, lsn); err != nil {
		return fmt.Errorf("ivm: chain store base: %w", err)
	}
	return nil
}

// SetMaxDepth changes the compaction trigger; it takes effect at the
// next Checkpoint. n < 0 selects DefaultChainDepth.
func (c *CheckpointChain) SetMaxDepth(n int) {
	if n < 0 {
		n = DefaultChainDepth
	}
	c.maxDepth = n
}

// TipLSN returns the WAL position the chain covers through: everything
// at or below it may be truncated from the WAL.
func (c *CheckpointChain) TipLSN() uint64 { return c.tipLSN }

// Depth returns the current number of delta segments.
func (c *CheckpointChain) Depth() int { return len(c.deltas) }

// HasBase reports whether the chain holds a recovery point at all.
func (c *CheckpointChain) HasBase() bool { return c.base != nil }

// SetBase installs a pre-existing v1 full checkpoint as the chain's
// base segment, dropping any delta segments. This is how a chain adopts
// a checkpoint written before incremental checkpointing existed.
func (c *CheckpointChain) SetBase(base []byte, lsn uint64) error {
	c.base = base
	c.deltas = nil
	c.tipLSN = lsn
	c.observeDepth()
	return c.putBase(lsn)
}

// Checkpoint writes the maintainer's next checkpoint segment into the
// chain: a full base when the chain is empty, an incremental delta
// otherwise. When the chain grows past its configured depth it is
// compacted before returning. On success the chain's tip covers the
// maintainer's current WAL position, so the caller may truncate the WAL
// through TipLSN.
func (c *CheckpointChain) Checkpoint(m *Maintainer) error {
	lsn := uint64(0)
	if w := m.WAL(); w != nil {
		lsn = w.LastLSN()
	}
	if c.base == nil {
		var buf bytes.Buffer
		if err := m.Checkpoint(&buf); err != nil {
			return err
		}
		// The base covers everything up to now; dirty keys accumulated
		// before it are folded in.
		m.clearDirty()
		c.base = buf.Bytes()
		c.tipLSN = lsn
		c.observeDepth()
		return c.putBase(lsn)
	}
	fromLSN := c.tipLSN
	var buf bytes.Buffer
	if err := m.CheckpointDelta(&buf, fromLSN); err != nil {
		return err
	}
	c.deltas = append(c.deltas, buf.Bytes())
	c.tipLSN = lsn
	if c.store != nil {
		if err := c.store.PutDelta(buf.Bytes(), fromLSN, lsn); err != nil {
			return fmt.Errorf("ivm: chain store delta: %w", err)
		}
	}
	if len(c.deltas) > c.maxDepth {
		return c.Compact()
	}
	c.observeDepth()
	return nil
}

// Compact folds the delta segments into the base, yielding an
// equivalent single-segment chain. It is a pure data transformation of
// the already-written segments — the maintainer is not consulted — so
// it is safe to run at any point between checkpoints: recovery from the
// compacted chain produces byte-identical state to recovery from the
// original chain.
func (c *CheckpointChain) Compact() error {
	if len(c.deltas) == 0 {
		return nil
	}
	if c.base == nil {
		return fmt.Errorf("ivm: compacting a chain with delta segments but no base")
	}
	var dto checkpointDTO
	if err := gob.NewDecoder(bytes.NewReader(c.base)).Decode(&dto); err != nil {
		return fmt.Errorf("ivm: decoding chain base: %w", err)
	}
	if dto.Version != checkpointVersion {
		return fmt.Errorf("ivm: chain base version %d, want %d", dto.Version, checkpointVersion)
	}
	replica, err := storage.ReadSnapshot(bytes.NewReader(dto.Replica))
	if err != nil {
		return fmt.Errorf("ivm: chain base replica: %w", err)
	}
	if err := foldChainInto(&dto, replica, c.deltas); err != nil {
		return err
	}
	var rbuf bytes.Buffer
	if err := replica.WriteSnapshot(&rbuf); err != nil {
		return fmt.Errorf("ivm: compaction replica snapshot: %w", err)
	}
	dto.Replica = rbuf.Bytes()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(dto); err != nil {
		return fmt.Errorf("ivm: encoding compacted base: %w", err)
	}
	c.base = buf.Bytes()
	c.deltas = nil
	c.obs.observeCompaction()
	c.observeDepth()
	return c.putBase(c.tipLSN)
}

func (c *CheckpointChain) observeDepth() {
	if c.obs != nil {
		c.obs.CheckpointChainDepth.Set(float64(len(c.deltas)))
	}
}

// foldChainInto validates and applies delta segments on top of a
// decoded base: the replica absorbs each segment's row delta, the
// queues are replaced by each segment's queue snapshot, and dto.LSN
// advances to the last segment's position. Every continuity violation —
// a missing, reordered, or foreign segment — fails here with a
// diagnosis naming the segment.
func foldChainInto(dto *checkpointDTO, replica *storage.DB, deltas [][]byte) error {
	cur := dto.LSN
	for i, seg := range deltas {
		var d deltaDTO
		if err := gob.NewDecoder(bytes.NewReader(seg)).Decode(&d); err != nil {
			return fmt.Errorf("ivm: decoding delta segment %d: %w", i, err)
		}
		if d.Version != deltaCheckpointVersion {
			return fmt.Errorf("ivm: delta segment %d version %d, want %d", i, d.Version, deltaCheckpointVersion)
		}
		if d.Namespace != dto.Namespace {
			return fmt.Errorf("ivm: delta segment %d namespace %q, want %q", i, d.Namespace, dto.Namespace)
		}
		if d.FromLSN != cur {
			return fmt.Errorf("ivm: delta chain gap at segment %d: extends lsn %d but chain covers %d (truncated or reordered chain)", i, d.FromLSN, cur)
		}
		if err := storage.ApplySnapshotDelta(replica, bytes.NewReader(d.Delta)); err != nil {
			return fmt.Errorf("ivm: applying delta segment %d: %w", i, err)
		}
		dto.Queues = d.Queues
		cur = d.LSN
	}
	dto.LSN = cur
	return nil
}

// RecoverChain rebuilds a crashed maintainer from an incremental
// checkpoint chain plus the WAL: load the base, fold the delta
// segments, recompute the view, then redo the WAL suffix past the
// chain's tip. See Recover for the single-segment contract it extends.
func RecoverChain(live *storage.DB, query string, chain *CheckpointChain, wal *WAL) (*Maintainer, error) {
	return recoverChain(live, query, "", false, chain, wal, nil)
}

// RecoverChainNamespaced is RecoverChain with the namespace-ownership
// check of RecoverNamespaced applied to the base and every delta
// segment.
func RecoverChainNamespaced(live *storage.DB, query, ns string, chain *CheckpointChain, wal *WAL, ms *Metrics) (*Maintainer, error) {
	return recoverChain(live, query, ns, true, chain, wal, ms)
}

func recoverChain(live *storage.DB, query, wantNS string, checkNS bool, chain *CheckpointChain, wal *WAL, ms *Metrics) (*Maintainer, error) {
	if chain == nil || chain.base == nil {
		return nil, fmt.Errorf("ivm: recovering from a checkpoint chain with no base segment")
	}
	return recoverMaintainer(live, query, wantNS, checkNS, bytes.NewReader(chain.base), chain.deltas, wal, ms)
}
