package ivm

import (
	"errors"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"abivm/internal/sql"
	"abivm/internal/storage"
)

// liveDB builds the miniature TPC-R-shaped database used across the IVM
// tests: region(2) <- nation(4) <- supplier(6) <- partsupp(12).
func liveDB(t *testing.T) *storage.DB {
	t.Helper()
	db := storage.NewDB()
	mk := func(name string, cols []storage.Column, key string) *storage.Table {
		schema, err := storage.NewSchema(name, cols, key)
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := db.CreateTable(schema)
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	region := mk("region", []storage.Column{
		{Name: "regionkey", Type: storage.TInt},
		{Name: "rname", Type: storage.TString},
	}, "regionkey")
	for i, n := range []string{"MIDDLE EAST", "EUROPE"} {
		if err := region.Insert(storage.Row{storage.I(int64(i)), storage.S(n)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := region.CreateIndex("region_pk", storage.HashIndex, "regionkey"); err != nil {
		t.Fatal(err)
	}

	nation := mk("nation", []storage.Column{
		{Name: "nationkey", Type: storage.TInt},
		{Name: "nname", Type: storage.TString},
		{Name: "regionkey", Type: storage.TInt},
	}, "nationkey")
	for i := 0; i < 4; i++ {
		if err := nation.Insert(storage.Row{storage.I(int64(i)), storage.S("N"), storage.I(int64(i % 2))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := nation.CreateIndex("nation_pk", storage.HashIndex, "nationkey"); err != nil {
		t.Fatal(err)
	}

	supplier := mk("supplier", []storage.Column{
		{Name: "suppkey", Type: storage.TInt},
		{Name: "sname", Type: storage.TString},
		{Name: "nationkey", Type: storage.TInt},
	}, "suppkey")
	for i := 0; i < 6; i++ {
		if err := supplier.Insert(storage.Row{storage.I(int64(i)), storage.S("S"), storage.I(int64(i % 4))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := supplier.CreateIndex("supplier_pk", storage.HashIndex, "suppkey"); err != nil {
		t.Fatal(err)
	}

	partsupp := mk("partsupp", []storage.Column{
		{Name: "partkey", Type: storage.TInt},
		{Name: "suppkey", Type: storage.TInt},
		{Name: "supplycost", Type: storage.TFloat},
	}, "partkey")
	for i := 0; i < 12; i++ {
		if err := partsupp.Insert(storage.Row{storage.I(int64(i)), storage.I(int64(i % 6)), storage.F(float64(100 + i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := partsupp.CreateIndex("ps_supp", storage.HashIndex, "suppkey"); err != nil {
		t.Fatal(err)
	}
	return db
}

const paperView = `
	SELECT MIN(PS.supplycost)
	FROM partsupp AS PS, supplier AS S, nation AS N, region AS R
	WHERE S.suppkey = PS.suppkey
	AND S.nationkey = N.nationkey
	AND N.regionkey = R.regionkey
	AND R.rname = 'MIDDLE EAST'`

// rowsKey canonicalizes a row multiset for comparison.
func rowsKey(rows []storage.Row) string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = storage.EncodeKey(r...)
	}
	sort.Strings(keys)
	return strings.Join(keys, "|")
}

// assertConsistent refreshes the maintainer and compares its view content
// with a fresh recompute over the live tables.
func assertConsistent(t *testing.T, m *Maintainer) {
	t.Helper()
	if err := m.Refresh(); err != nil {
		t.Fatal(err)
	}
	fresh, err := m.RecomputeFresh()
	if err != nil {
		t.Fatal(err)
	}
	got := m.Result()
	if rowsKey(got) != rowsKey(fresh) {
		t.Fatalf("view diverged:\nincremental: %v\nfresh:       %v", got, fresh)
	}
}

func TestInitialContentMatchesFreshRun(t *testing.T) {
	m, err := New(liveDB(t), paperView)
	if err != nil {
		t.Fatal(err)
	}
	assertConsistent(t, m)
	res := m.Result()
	if len(res) != 1 || res[0][0].Float() != 100 {
		t.Fatalf("initial MIN = %v, want 100", res)
	}
}

func TestAliasesOrder(t *testing.T) {
	m, err := New(liveDB(t), paperView)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"PS", "S", "N", "R"}
	got := m.Aliases()
	if len(got) != len(want) {
		t.Fatalf("aliases = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("aliases = %v, want %v", got, want)
		}
	}
}

func TestApplyUpdatesLiveImmediatelyButNotView(t *testing.T) {
	db := liveDB(t)
	m, err := New(db, paperView)
	if err != nil {
		t.Fatal(err)
	}
	// Drop the ME minimum (partkey 0, cost 100) to 50.
	err = m.Apply(Update("PS", []storage.Value{storage.I(0)}, storage.Row{storage.I(0), storage.I(0), storage.F(50)}))
	if err != nil {
		t.Fatal(err)
	}
	// Live table reflects the change.
	ps := db.MustTable("partsupp")
	row, _ := ps.Get(storage.I(0))
	if row[2].Float() != 50 {
		t.Fatalf("live row = %v", row)
	}
	// View not yet refreshed: still 100.
	if got := m.Result()[0][0].Float(); got != 100 {
		t.Fatalf("stale view = %g, want 100", got)
	}
	if p := m.Pending(); p[0] != 1 {
		t.Fatalf("pending = %v", p)
	}
	assertConsistent(t, m)
	if got := m.Result()[0][0].Float(); got != 50 {
		t.Fatalf("refreshed view = %g, want 50", got)
	}
}

func TestMinSurvivesDeletionOfMinimum(t *testing.T) {
	// The MIN-maintainability trap: delete the current minimum; the
	// multiset must recover the next-best value without recompute.
	m, err := New(liveDB(t), paperView)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Apply(Delete("PS", storage.I(0))); err != nil { // cost 100, the minimum
		t.Fatal(err)
	}
	assertConsistent(t, m)
	// Remaining ME partsupp rows: keys 2,4,6,8,10 -> min cost 102.
	if got := m.Result()[0][0].Float(); got != 102 {
		t.Fatalf("MIN after deleting minimum = %g, want 102", got)
	}
}

func TestSupplierNationkeyUpdateMovesRegion(t *testing.T) {
	// The paper's second update type: change a supplier's nationkey so it
	// moves in/out of the MIDDLE EAST region.
	m, err := New(liveDB(t), paperView)
	if err != nil {
		t.Fatal(err)
	}
	// Supplier 1 (nation 1, EUROPE) moves to nation 0 (MIDDLE EAST):
	// partsupp rows with suppkey 1 (keys 1, 7 -> costs 101, 107) join in.
	err = m.Apply(Update("S", []storage.Value{storage.I(1)}, storage.Row{storage.I(1), storage.S("S"), storage.I(0)}))
	if err != nil {
		t.Fatal(err)
	}
	assertConsistent(t, m)
	if got := m.Result()[0][0].Float(); got != 100 {
		t.Fatalf("MIN = %g", got)
	}
	// And out again: all ME suppliers move to EUROPE; group drains.
	for _, sk := range []int64{0, 1, 2, 4} {
		err = m.Apply(Update("S", []storage.Value{storage.I(sk)}, storage.Row{storage.I(sk), storage.S("S"), storage.I(1)}))
		if err != nil {
			t.Fatal(err)
		}
	}
	assertConsistent(t, m)
}

func TestBatchProcessingOneTableAtATime(t *testing.T) {
	// Asymmetric processing: drain PS deltas while S deltas stay queued;
	// the view must reflect exactly the processed prefix.
	m, err := New(liveDB(t), paperView)
	if err != nil {
		t.Fatal(err)
	}
	mods := []Mod{
		Update("PS", []storage.Value{storage.I(0)}, storage.Row{storage.I(0), storage.I(0), storage.F(90)}),
		Update("S", []storage.Value{storage.I(1)}, storage.Row{storage.I(1), storage.S("S"), storage.I(0)}),
		Update("PS", []storage.Value{storage.I(2)}, storage.Row{storage.I(2), storage.I(2), storage.F(80)}),
	}
	if err := m.Apply(mods...); err != nil {
		t.Fatal(err)
	}
	if p := m.Pending(); p[0] != 2 || p[1] != 1 {
		t.Fatalf("pending = %v", p)
	}
	// Process only the first PS update.
	if err := m.ProcessBatch("PS", 1); err != nil {
		t.Fatal(err)
	}
	if got := m.Result()[0][0].Float(); got != 90 {
		t.Fatalf("after first batch MIN = %g, want 90", got)
	}
	if p := m.Pending(); p[0] != 1 || p[1] != 1 {
		t.Fatalf("pending after batch = %v", p)
	}
	// Remaining deltas via Refresh; compare against ground truth.
	assertConsistent(t, m)
	if got := m.Result()[0][0].Float(); got != 80 {
		t.Fatalf("final MIN = %g, want 80", got)
	}
}

func TestProcessBatchValidation(t *testing.T) {
	m, err := New(liveDB(t), paperView)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ProcessBatch("PS", 1); err == nil {
		t.Fatal("overdrain accepted")
	}
	if err := m.ProcessBatch("ZZ", 0); err == nil {
		t.Fatal("unknown alias accepted")
	}
	if err := m.ProcessBatch("PS", 0); err != nil {
		t.Fatalf("zero batch rejected: %v", err)
	}
}

func TestApplyValidation(t *testing.T) {
	m, err := New(liveDB(t), paperView)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Apply(Insert("ZZ", storage.Row{})); err == nil {
		t.Fatal("unknown alias accepted")
	}
	// Key-changing update rejected.
	err = m.Apply(Update("PS", []storage.Value{storage.I(0)}, storage.Row{storage.I(99), storage.I(0), storage.F(1)}))
	if err == nil || !strings.Contains(err.Error(), "primary key") {
		t.Fatalf("key-changing update: %v", err)
	}
	// Duplicate insert propagates the storage error and is not enqueued.
	err = m.Apply(Insert("PS", storage.Row{storage.I(0), storage.I(0), storage.F(1)}))
	if err == nil {
		t.Fatal("duplicate insert accepted")
	}
	if p := m.Pending(); p[0] != 0 {
		t.Fatalf("failed mod was enqueued: %v", p)
	}
}

func TestSelfJoinRejected(t *testing.T) {
	_, err := New(liveDB(t), "SELECT a.nationkey FROM nation AS a, nation AS b WHERE a.nationkey = b.regionkey")
	if err == nil || !strings.Contains(err.Error(), "self-join") {
		t.Fatalf("err = %v", err)
	}
}

func TestInsertThenDeleteSameKeyInOneBatch(t *testing.T) {
	// Net delta collapses to nothing: the view must be unaffected and the
	// replica must stay consistent.
	m, err := New(liveDB(t), paperView)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Apply(
		Insert("PS", storage.Row{storage.I(50), storage.I(0), storage.F(1)}),
		Delete("PS", storage.I(50)),
	); err != nil {
		t.Fatal(err)
	}
	if err := m.ProcessBatch("PS", 2); err != nil {
		t.Fatal(err)
	}
	if got := m.Result()[0][0].Float(); got != 100 {
		t.Fatalf("MIN = %g, want unchanged 100", got)
	}
	assertConsistent(t, m)
}

func TestDeleteThenReinsertSameRowInOneBatch(t *testing.T) {
	m, err := New(liveDB(t), paperView)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Apply(
		Delete("PS", storage.I(0)),
		Insert("PS", storage.Row{storage.I(0), storage.I(0), storage.F(100)}),
	); err != nil {
		t.Fatal(err)
	}
	if err := m.ProcessBatch("PS", 2); err != nil {
		t.Fatal(err)
	}
	assertConsistent(t, m)
}

func TestApplyDeferredAndTableOf(t *testing.T) {
	db := liveDB(t)
	m, err := New(db, paperView)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.TableOf("PS"); got != "partsupp" {
		t.Fatalf("TableOf(PS) = %q", got)
	}
	if got := m.TableOf("nope"); got != "" {
		t.Fatalf("TableOf(nope) = %q", got)
	}
	// Apply the live change out-of-band, then observe it via deferral.
	ps := db.MustTable("partsupp")
	old, err := ps.Update([]storage.Value{storage.I(0)}, storage.Row{storage.I(0), storage.I(0), storage.F(60)})
	if err != nil {
		t.Fatal(err)
	}
	_ = old
	mod := Update("PS", []storage.Value{storage.I(0)}, storage.Row{storage.I(0), storage.I(0), storage.F(60)})
	if err := m.ApplyDeferred(mod); err != nil {
		t.Fatal(err)
	}
	if p := m.Pending(); p[0] != 1 {
		t.Fatalf("pending = %v", p)
	}
	assertConsistent(t, m)
	if got := m.Result()[0][0].Float(); got != 60 {
		t.Fatalf("MIN = %g, want 60", got)
	}
	if err := m.ApplyDeferred(Insert("ZZ", nil)); err == nil {
		t.Fatal("unknown alias accepted")
	}
}

func TestGroupByView(t *testing.T) {
	db := liveDB(t)
	m, err := New(db, `SELECT n.regionkey, COUNT(*) AS cnt, SUM(ps.supplycost) AS total, MIN(ps.supplycost) AS mn
		FROM partsupp AS ps, supplier AS s, nation AS n
		WHERE s.suppkey = ps.suppkey AND s.nationkey = n.nationkey
		GROUP BY n.regionkey`)
	if err != nil {
		t.Fatal(err)
	}
	assertConsistent(t, m)
	if err := m.Apply(
		Update("ps", []storage.Value{storage.I(3)}, storage.Row{storage.I(3), storage.I(3), storage.F(5)}),
		Delete("ps", storage.I(7)),
		Insert("ps", storage.Row{storage.I(40), storage.I(5), storage.F(7)}),
	); err != nil {
		t.Fatal(err)
	}
	assertConsistent(t, m)
}

func TestSPJView(t *testing.T) {
	db := liveDB(t)
	m, err := New(db, `SELECT s.suppkey, n.nname FROM supplier AS s, nation AS n
		WHERE s.nationkey = n.nationkey`)
	if err != nil {
		t.Fatal(err)
	}
	assertConsistent(t, m)
	if len(m.Result()) != 6 {
		t.Fatalf("initial SPJ rows = %d", len(m.Result()))
	}
	if err := m.Apply(
		Insert("s", storage.Row{storage.I(50), storage.S("X"), storage.I(0)}),
		Delete("s", storage.I(1)),
	); err != nil {
		t.Fatal(err)
	}
	assertConsistent(t, m)
	if len(m.Result()) != 6 {
		t.Fatalf("SPJ rows after mods = %d", len(m.Result()))
	}
}

func TestSPJViewWithDuplicates(t *testing.T) {
	// Projecting a non-key column produces duplicate view rows; the bag
	// multiplicities must track insertions and retractions exactly.
	db := liveDB(t)
	m, err := New(db, `SELECT n.regionkey FROM supplier AS s, nation AS n
		WHERE s.nationkey = n.nationkey`)
	if err != nil {
		t.Fatal(err)
	}
	assertConsistent(t, m)
	if got := len(m.Result()); got != 6 {
		t.Fatalf("initial rows = %d, want 6 (with duplicates)", got)
	}
	// Move suppliers around and delete one; multiplicities shift.
	if err := m.Apply(
		Update("s", []storage.Value{storage.I(0)}, storage.Row{storage.I(0), storage.S("S"), storage.I(3)}),
		Delete("s", storage.I(5)),
		Insert("s", storage.Row{storage.I(9), storage.S("S"), storage.I(0)}),
	); err != nil {
		t.Fatal(err)
	}
	assertConsistent(t, m)
	if got := len(m.Result()); got != 6 {
		t.Fatalf("rows after churn = %d, want 6", got)
	}
}

func TestMaintainerRejectsOrderByAndLimit(t *testing.T) {
	db := liveDB(t)
	for _, q := range []string{
		"SELECT suppkey FROM supplier ORDER BY suppkey",
		"SELECT suppkey FROM supplier LIMIT 5",
	} {
		_, err := New(db, q)
		var ue *sql.UnsupportedError
		if !errors.As(err, &ue) {
			t.Errorf("New(%q) err = %v, want *sql.UnsupportedError", q, err)
			continue
		}
		if ue.Pos <= 0 {
			t.Errorf("New(%q) diagnostic has no position: %v", q, err)
		}
	}
}

func TestCostAsymmetryIndexedVsUnindexed(t *testing.T) {
	// The engine-level root of the paper's Figure 1: a PS delta probes
	// supplier/nation/region through indexes (cheap, O(batch)); an S
	// delta's join against partsupp has no index on partsupp.suppkey, so
	// the hash join scans/builds over the whole table (expensive).
	db := liveDB(t)
	// Remove the ps_supp index effect by building a DB without it.
	db2 := storage.NewDB()
	for _, name := range db.TableNames() {
		src := db.MustTable(name)
		dst, err := db2.CreateTable(src.Schema())
		if err != nil {
			t.Fatal(err)
		}
		src.Scan(func(r storage.Row) bool {
			if err := dst.Insert(r); err != nil {
				t.Fatal(err)
			}
			return true
		})
		if name != "partsupp" { // keep partsupp unindexed
			for _, ix := range src.Indexes() {
				cols := make([]string, len(ix.Cols))
				for i, c := range ix.Cols {
					cols[i] = src.Schema().Columns[c].Name
				}
				if err := dst.CreateIndex(ix.Name, ix.Kind, cols...); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	m, err := New(db2, paperView)
	if err != nil {
		t.Fatal(err)
	}
	w := storage.DefaultWeights()

	cost := func(fn func()) float64 {
		before := *m.Stats()
		fn()
		return w.Cost(m.Stats().Sub(before))
	}
	psCost := cost(func() {
		if err := m.Apply(Update("PS", []storage.Value{storage.I(0)}, storage.Row{storage.I(0), storage.I(0), storage.F(90)})); err != nil {
			t.Fatal(err)
		}
		if err := m.ProcessBatch("PS", 1); err != nil {
			t.Fatal(err)
		}
	})
	sCost := cost(func() {
		if err := m.Apply(Update("S", []storage.Value{storage.I(0)}, storage.Row{storage.I(0), storage.S("S"), storage.I(1)})); err != nil {
			t.Fatal(err)
		}
		if err := m.ProcessBatch("S", 1); err != nil {
			t.Fatal(err)
		}
	})
	if sCost <= psCost {
		t.Fatalf("expected supplier deltas to cost more than partsupp deltas: S=%g PS=%g", sCost, psCost)
	}
	assertConsistent(t, m)
}

func TestRandomizedMaintenanceAgainstRecompute(t *testing.T) {
	// Long randomized soak: interleave inserts, deletes and updates on
	// two tables with partial batch processing, comparing against a fresh
	// recompute at every checkpoint.
	db := liveDB(t)
	m, err := New(db, paperView)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	nextPS := int64(100)
	livePS := map[int64]bool{}
	for i := 0; i < 12; i++ {
		livePS[int64(i)] = true
	}
	psKeys := func() []int64 {
		out := make([]int64, 0, len(livePS))
		for k := range livePS {
			out = append(out, k)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	for step := 0; step < 300; step++ {
		switch rng.Intn(4) {
		case 0: // insert PS row
			k := nextPS
			nextPS++
			mod := Insert("PS", storage.Row{storage.I(k), storage.I(int64(rng.Intn(6))), storage.F(float64(rng.Intn(500)))})
			if err := m.Apply(mod); err != nil {
				t.Fatal(err)
			}
			livePS[k] = true
		case 1: // delete PS row
			keys := psKeys()
			if len(keys) == 0 {
				continue
			}
			k := keys[rng.Intn(len(keys))]
			if err := m.Apply(Delete("PS", storage.I(k))); err != nil {
				t.Fatal(err)
			}
			delete(livePS, k)
		case 2: // update PS cost
			keys := psKeys()
			if len(keys) == 0 {
				continue
			}
			k := keys[rng.Intn(len(keys))]
			row, _ := db.MustTable("partsupp").Get(storage.I(k))
			newRow := storage.Row{row[0], row[1], storage.F(float64(rng.Intn(500)))}
			if err := m.Apply(Update("PS", []storage.Value{storage.I(k)}, newRow)); err != nil {
				t.Fatal(err)
			}
		case 3: // update supplier nationkey
			sk := int64(rng.Intn(6))
			row, _ := db.MustTable("supplier").Get(storage.I(sk))
			newRow := storage.Row{row[0], row[1], storage.I(int64(rng.Intn(4)))}
			if err := m.Apply(Update("S", []storage.Value{storage.I(sk)}, newRow)); err != nil {
				t.Fatal(err)
			}
		}
		// Occasionally drain a random prefix of a random queue.
		if rng.Intn(5) == 0 {
			alias := m.Aliases()[rng.Intn(4)]
			pending := m.Pending()
			for i, a := range m.Aliases() {
				if a == alias && pending[i] > 0 {
					if err := m.ProcessBatch(alias, 1+rng.Intn(pending[i])); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		if step%50 == 49 {
			assertConsistent(t, m)
		}
	}
	assertConsistent(t, m)
}
