package ivm

import (
	"bytes"
	"fmt"
	"time"

	"abivm/internal/exec"
	"abivm/internal/fault"
	"abivm/internal/plan"
	"abivm/internal/sql"
	"abivm/internal/storage"
)

// Maintainer incrementally maintains one materialized view. Modifications
// enter through Apply (which updates the live base tables immediately and
// enqueues deltas); ProcessBatch drains a prefix of one table's delta
// queue into the view — the action primitive of the paper's maintenance
// plans.
type Maintainer struct {
	live    *storage.DB
	replica *storage.DB
	stats   *storage.Stats // maintenance-side work units (replica DB)

	sel     *sql.Select
	plan    *DeltaPlan        // the derivation behind sel/deltaSel, inspectable
	aliases []string          // FROM order; index i is the paper's table i
	tables  map[string]string // alias -> table name
	deltas  map[string][]Mod

	// view is the foldable content: the bag (SPJ) or per-group aggregate
	// states, shared with the dataflow runtime (see viewstate.go).
	view     *ViewState
	deltaSel *sql.Select // join query emitting (group cols..., agg args...)

	// Fault-tolerance hooks: an optional redo log of arrivals and drain
	// commits, and an optional fault injector consulted at the drain
	// sites (see internal/fault).
	wal *WAL
	inj fault.Injector

	// ns is the maintainer's durability namespace. It is stamped into
	// every checkpoint, and RecoverNamespaced refuses a checkpoint whose
	// namespace does not match — the guard that keeps a sharded broker
	// from restoring one shard's subscription from another shard's
	// recovery point.
	ns string

	// dirty tracks, per replica table, the primary keys committed drains
	// have touched since the last checkpoint segment — the key set an
	// incremental checkpoint serializes instead of the full replica.
	// Cleared only when a checkpoint segment covering it succeeds.
	dirty map[string]storage.KeySet

	// Checkpoint-path scratch state, reused across checkpoints so the
	// durability hot path stops allocating per call: the replica
	// serialization buffer, the queue-copy map of the checkpoint DTOs,
	// and the free list backing those copies.
	cpBuf    bytes.Buffer
	cpQueues map[string][]Mod
	qpool    modPool

	// Observability hook: nil (the default) means no measurement work at
	// all on the drain path, including time.Now calls.
	obs *Metrics
}

type bagEntry struct {
	row   storage.Row
	count int64
}

type itemRef struct {
	groupIdx int // >= 0: group-by column position
	aggIdx   int // >= 0: aggregate position
}

// New parses and binds a view definition over the live database, builds
// view-consistent replica tables, and computes the initial view content.
func New(live *storage.DB, query string) (*Maintainer, error) {
	m, err := newSkeleton(live, query)
	if err != nil {
		return nil, err
	}
	if err := m.buildReplicas(); err != nil {
		return nil, err
	}
	if err := m.initialize(); err != nil {
		return nil, err
	}
	return m, nil
}

// newSkeleton parses and binds the view definition and derives the delta
// query, but builds no replicas and computes no content — the shared
// front half of New (replicas snapshotted from live) and Recover
// (replicas loaded from a checkpoint). The analysis itself lives in
// PlanView; the skeleton just adopts the resulting DeltaPlan.
func newSkeleton(live *storage.DB, query string) (*Maintainer, error) {
	p, err := PlanView(query)
	if err != nil {
		return nil, err
	}
	m := &Maintainer{
		live:     live,
		sel:      p.View,
		plan:     p,
		tables:   make(map[string]string),
		deltas:   make(map[string][]Mod),
		dirty:    make(map[string]storage.KeySet),
		view:     NewViewState(p, nil),
		deltaSel: p.Delta,
	}
	for _, s := range p.Sources {
		m.tables[s.Alias] = s.Table
		m.aliases = append(m.aliases, s.Alias)
	}
	return m, nil
}

// Plan returns the view's delta plan — the derivation behind the
// maintainer's delta queries, shared and read-only.
func (m *Maintainer) Plan() *DeltaPlan { return m.plan }

// AttachWAL makes the maintainer record every accepted arrival and every
// committed drain to w, enabling Checkpoint/Recover. A nil w detaches.
func (m *Maintainer) AttachWAL(w *WAL) { m.wal = w }

// SetNamespace names the maintainer's durability namespace (typically
// "<shard>/<subscription>"). Checkpoints taken afterwards carry the
// namespace, and RecoverNamespaced validates it. The empty namespace
// (the default) disables the check.
func (m *Maintainer) SetNamespace(ns string) { m.ns = ns }

// Namespace returns the durability namespace, or "" when unset.
func (m *Maintainer) Namespace() string { return m.ns }

// WAL returns the attached redo log, or nil.
func (m *Maintainer) WAL() *WAL { return m.wal }

// SetInjector installs a fault injector consulted at the drain sites; a
// nil injector (the default) disables injection.
func (m *Maintainer) SetInjector(inj fault.Injector) { m.inj = inj }

// SetMetrics attaches an instrumentation bundle (see NewMetrics); nil
// (the default) detaches and restores the zero-measurement fast path.
func (m *Maintainer) SetMetrics(ms *Metrics) { m.obs = ms }

// hit consults the fault injector at a site.
func (m *Maintainer) hit(site fault.Site) error {
	if m.inj == nil {
		return nil
	}
	return m.inj.Hit(site)
}

// logArrival appends an arrival record for an accepted modification.
func (m *Maintainer) logArrival(mod Mod) error {
	if m.wal == nil {
		return nil
	}
	_, err := m.wal.Append(WALRecord{Kind: WALArrival, Mod: mod})
	return err
}

// Aliases returns the FROM aliases in order; index i corresponds to the
// paper's base table R_i.
func (m *Maintainer) Aliases() []string { return m.aliases }

// Stats exposes the maintenance-side work-unit counters.
func (m *Maintainer) Stats() *storage.Stats { return m.stats }

// buildReplicas snapshots every base table (rows and index definitions)
// into the maintainer's private replica database.
func (m *Maintainer) buildReplicas() error {
	m.replica = storage.NewDB()
	m.stats = m.replica.Stats()
	m.view.SetStats(m.stats)
	for _, alias := range m.aliases {
		src, err := m.live.Table(m.tables[alias])
		if err != nil {
			return err
		}
		if _, err := storage.CloneTable(m.replica, src); err != nil {
			return err
		}
	}
	// Snapshotting is setup cost, not maintenance cost: reset counters.
	*m.stats = storage.Stats{}
	return nil
}

// initialize computes the initial view content by running the delta query
// over the full replicas (an "insert everything" delta), charged as setup
// rather than maintenance.
func (m *Maintainer) initialize() error {
	op, err := plan.Compile(m.deltaSel, nil, &plan.Options{
		Resolve: m.replica.Table,
		Stats:   m.stats,
	})
	if err != nil {
		return err
	}
	rows, err := exec.Collect(op)
	if err != nil {
		return err
	}
	m.addRows(rows)
	*m.stats = storage.Stats{} // initial computation is setup cost
	return nil
}

// Apply applies modifications to the live base tables immediately and
// appends them to the per-table delta queues for later batch processing,
// matching the paper's execution model.
func (m *Maintainer) Apply(mods ...Mod) error {
	for _, mod := range mods {
		name, ok := m.tables[mod.Alias]
		if !ok {
			return fmt.Errorf("ivm: unknown alias %q", mod.Alias)
		}
		tbl, err := m.live.Table(name)
		if err != nil {
			return err
		}
		switch mod.Kind {
		case ModInsert:
			if err := tbl.Insert(mod.Row); err != nil {
				return err
			}
		case ModDelete:
			if _, err := tbl.Delete(mod.Key...); err != nil {
				return err
			}
		case ModUpdate:
			newKey := tbl.Schema().KeyOf(mod.Row)
			if newKey != storage.EncodeKey(mod.Key...) {
				return fmt.Errorf("ivm: update must not change the primary key (alias %q)", mod.Alias)
			}
			if _, err := tbl.Update(mod.Key, mod.Row); err != nil {
				return err
			}
		default:
			return fmt.Errorf("ivm: unknown modification kind %d", mod.Kind)
		}
		m.deltas[mod.Alias] = append(m.deltas[mod.Alias], mod)
		if err := m.logArrival(mod); err != nil {
			return err
		}
	}
	return nil
}

// ApplyDeferred enqueues modifications for deferred view maintenance
// WITHOUT applying them to the live base tables. It exists for brokers
// that multiplex one shared live database across several maintainers:
// exactly one maintainer applies the live change (Apply) and the others
// only observe it (ApplyDeferred). The caller is responsible for the
// modifications actually being applied to the live tables by someone;
// the replicas stay consistent either way because they are private.
func (m *Maintainer) ApplyDeferred(mods ...Mod) error {
	for _, mod := range mods {
		if _, ok := m.tables[mod.Alias]; !ok {
			return fmt.Errorf("ivm: unknown alias %q", mod.Alias)
		}
		m.deltas[mod.Alias] = append(m.deltas[mod.Alias], mod)
		if err := m.logArrival(mod); err != nil {
			return err
		}
	}
	return nil
}

// TableOf returns the base-table name behind a FROM alias, or "" when
// the alias is unknown.
func (m *Maintainer) TableOf(alias string) string { return m.tables[alias] }

// Pending returns the per-table delta queue sizes in alias order — the
// paper's state vector s.
func (m *Maintainer) Pending() []int { return m.PendingInto(nil) }

// PendingInto is Pending writing into dst (grown when too small) — the
// allocation-free variant for callers that poll the state vector every
// step and can reuse a scratch slice. Returns the filled slice.
func (m *Maintainer) PendingInto(dst []int) []int {
	if cap(dst) < len(m.aliases) {
		dst = make([]int, len(m.aliases))
	}
	dst = dst[:len(m.aliases)]
	for i, a := range m.aliases {
		dst[i] = len(m.deltas[a])
	}
	return dst
}

// ProcessBatch drains the earliest k modifications of the alias's delta
// queue into the view. It is the action primitive: the cost it charges to
// Stats is the paper's f_i(k).
//
// The drain is atomic: the plan phase (net-delta replay and delta joins)
// mutates nothing, and the mutation phase keeps an undo journal, so any
// failure — injected or real — rolls the maintainer back to the exact
// pre-action state and the error is safe to retry. View-state folding,
// the WAL commit record, and the queue trim happen only at the commit
// point. Work units charged to Stats by a failed attempt are not undone:
// failed work is still work.
func (m *Maintainer) ProcessBatch(alias string, k int) error {
	if m.obs == nil {
		return m.processBatch(alias, k)
	}
	//lint:ignore nondet drain latency feeds metrics only, never maintained state
	start := time.Now()
	err := m.processBatch(alias, k)
	//lint:ignore nondet measurement of the drain, not part of it
	m.obs.observeDrain(time.Since(start), k, err)
	return err
}

func (m *Maintainer) processBatch(alias string, k int) error {
	queue, ok := m.deltas[alias]
	if !ok {
		if _, known := m.tables[alias]; !known {
			return fmt.Errorf("ivm: unknown alias %q", alias)
		}
	}
	if k < 0 || k > len(queue) {
		return fmt.Errorf("ivm: batch size %d out of range (queue %d)", k, len(queue))
	}
	if k == 0 {
		return nil
	}
	if err := m.hit(fault.SiteDrainPlan); err != nil {
		return err
	}
	batch := queue[:k]

	repl := m.replica.MustTable(m.tables[alias])
	delRows, insRows, err := m.netDelta(repl, batch)
	if err != nil {
		return err
	}
	minus, err := m.deltaJoin(alias, repl, delRows)
	if err != nil {
		return err
	}
	plus, err := m.deltaJoin(alias, repl, insRows)
	if err != nil {
		return err
	}

	// Mutation phase: bring replica i up to the post-batch state, keeping
	// an undo journal so a mid-batch failure restores the pre-action
	// replica instead of leaving half-applied deltas.
	var undo []func() error
	rollback := func(cause error) error {
		for i := len(undo) - 1; i >= 0; i-- {
			if rerr := undo[i](); rerr != nil {
				// A failing undo means the replica is corrupt; surface it
				// as a distinct, non-retryable error.
				return fmt.Errorf("ivm: rollback after %v failed: %w", cause, rerr)
			}
		}
		return cause
	}
	for _, r := range delRows {
		row := r
		if _, err := repl.Delete(row.Project(repl.Schema().Key)...); err != nil {
			return rollback(fmt.Errorf("ivm: replica delete: %w", err))
		}
		undo = append(undo, func() error { return repl.Insert(row) })
	}
	if err := m.hit(fault.SiteDrainApply); err != nil {
		return rollback(err)
	}
	for _, r := range insRows {
		row := r
		if err := repl.Insert(row); err != nil {
			return rollback(fmt.Errorf("ivm: replica insert: %w", err))
		}
		undo = append(undo, func() error {
			_, derr := repl.Delete(row.Project(repl.Schema().Key)...)
			return derr
		})
	}
	if err := m.hit(fault.SiteWALCommit); err != nil {
		return rollback(err)
	}

	// Commit point: fold the delta into the view state (exact inverse
	// deltas, cannot fail), log the drain, mark the touched keys dirty
	// for the next incremental checkpoint, trim the queue.
	m.removeRows(minus)
	m.addRows(plus)
	if m.wal != nil {
		if _, err := m.wal.Append(WALRecord{Kind: WALDrain, Alias: alias, K: k}); err != nil {
			m.addRows(minus)
			m.removeRows(plus)
			return rollback(fmt.Errorf("ivm: wal commit: %w", err))
		}
	}
	m.stats.BatchSetups++
	m.markDirty(m.tables[alias], repl, delRows)
	m.markDirty(m.tables[alias], repl, insRows)
	// Recycle the drained prefix in place instead of re-slicing: the
	// queue is an append/drain cycle, and keeping the backing array's
	// start fixed lets future arrivals reuse the freed cells. The batch
	// prefix is dead at this point — only its Row contents (separate
	// arrays) live on in the view state.
	if k == len(queue) {
		m.deltas[alias] = queue[:0]
	} else {
		n := copy(queue, queue[k:])
		m.deltas[alias] = queue[:n]
	}
	return nil
}

// markDirty records the primary keys of rows as changed since the last
// checkpoint segment. Over-marking is safe: the snapshot delta resolves
// every dirty key against the current replica state at write time.
func (m *Maintainer) markDirty(table string, repl *storage.Table, rows []storage.Row) {
	if len(rows) == 0 {
		return
	}
	ks := m.dirty[table]
	if ks == nil {
		ks = storage.KeySet{}
		m.dirty[table] = ks
	}
	keyCols := repl.Schema().Key
	for _, r := range rows {
		keyVals := r.Project(keyCols)
		ks[storage.EncodeKey(keyVals...)] = keyVals
	}
}

// clearDirty empties the dirty-key sets (keeping their buckets) after a
// checkpoint segment has captured them.
func (m *Maintainer) clearDirty() {
	for _, alias := range m.aliases {
		if ks := m.dirty[m.tables[alias]]; ks != nil {
			clear(ks)
		}
	}
}

// netDelta replays a batch against the replica state and collapses it to
// per-key net (delete, insert) row sets.
func (m *Maintainer) netDelta(repl *storage.Table, batch []Mod) (delRows, insRows []storage.Row, err error) {
	type keyState struct {
		initial storage.Row // replica row at batch start; nil if absent
		final   storage.Row // row after replaying the batch; nil if absent
	}
	states := map[string]*keyState{}
	order := []string{} // first-touch order, for deterministic output
	lookup := func(keyVals []storage.Value) *keyState {
		k := storage.EncodeKey(keyVals...)
		st, ok := states[k]
		if !ok {
			st = &keyState{}
			if row, found := repl.Get(keyVals...); found {
				st.initial = row
				st.final = row
			}
			states[k] = st
			order = append(order, k)
		}
		return st
	}
	for _, mod := range batch {
		switch mod.Kind {
		case ModInsert:
			st := lookup(mod.Row.Project(repl.Schema().Key))
			if st.final != nil {
				return nil, nil, fmt.Errorf("ivm: replay insert over existing key %v", mod.Row)
			}
			st.final = mod.Row
		case ModDelete:
			st := lookup(mod.Key)
			if st.final == nil {
				return nil, nil, fmt.Errorf("ivm: replay delete of missing key %v", mod.Key)
			}
			st.final = nil
		case ModUpdate:
			st := lookup(mod.Key)
			if st.final == nil {
				return nil, nil, fmt.Errorf("ivm: replay update of missing key %v", mod.Key)
			}
			st.final = mod.Row
		}
	}
	for _, k := range order {
		st := states[k]
		if st.initial == nil && st.final == nil {
			continue
		}
		if st.initial != nil && st.final != nil && rowsEqual(st.initial, st.final) {
			continue
		}
		if st.initial != nil {
			delRows = append(delRows, st.initial)
		}
		if st.final != nil {
			insRows = append(insRows, st.final)
		}
	}
	return delRows, insRows, nil
}

func rowsEqual(a, b storage.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !storage.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// deltaJoin runs the delta query with the alias's table replaced by the
// given rows, joining them against the view-consistent replicas.
func (m *Maintainer) deltaJoin(alias string, repl *storage.Table, rows []storage.Row) ([]storage.Row, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	schema := repl.Schema()
	cols := make([]exec.Col, len(schema.Columns))
	for i, c := range schema.Columns {
		cols[i] = exec.Col{Table: alias, Name: c.Name, Type: c.Type}
	}
	src := exec.NewRowsSource(cols, rows, m.stats)
	op, err := plan.Compile(m.deltaSel, nil, &plan.Options{
		Sources: map[string]exec.Op{alias: src},
		Resolve: m.replica.Table,
		Stats:   m.stats,
	})
	if err != nil {
		return nil, err
	}
	return exec.Collect(op)
}

// addRows folds delta rows (group cols + agg args, or plain view rows)
// into the view state.
func (m *Maintainer) addRows(rows []storage.Row) { m.view.Add(rows) }

// removeRows retracts delta rows from the view state.
func (m *Maintainer) removeRows(rows []storage.Row) { m.view.Remove(rows) }

// Refresh processes every pending delta, one full batch per table in
// alias order, bringing the view fully up to date.
func (m *Maintainer) Refresh() error {
	for _, alias := range m.aliases {
		if n := len(m.deltas[alias]); n > 0 {
			if err := m.ProcessBatch(alias, n); err != nil {
				return err
			}
		}
	}
	return nil
}

// Result renders the current view content in the SELECT-item order, rows
// sorted by group key (aggregate views) or encoded row (SPJ views, with
// multiplicities expanded). The layout matches what executing the view
// query through the planner produces, enabling direct comparison.
func (m *Maintainer) Result() []storage.Row { return m.view.Result() }

// RecomputeFresh evaluates the view query from scratch against the live
// base tables (the ground truth after all pending modifications). The
// work is charged to a throwaway counter, not to maintenance cost.
func (m *Maintainer) RecomputeFresh() ([]storage.Row, error) {
	var scratch storage.Stats
	op, err := plan.Compile(m.sel, nil, &plan.Options{
		Resolve: m.live.Table,
		Stats:   &scratch,
	})
	if err != nil {
		return nil, err
	}
	return exec.Collect(op)
}
