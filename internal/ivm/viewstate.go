package ivm

import (
	"fmt"
	"sort"

	"abivm/internal/exec"
	"abivm/internal/storage"
)

// ViewState is the foldable content of a maintained view: a bag of rows
// with multiplicities for select-project-join views, or per-group
// aggregate states for aggregate views. It is the part of a view that
// consumes signed delta rows and renders results, factored out of the
// Maintainer so the shared delta-dataflow runtime (internal/dataflow)
// folds its operator-graph output through exactly the same state
// machine — one implementation of the aggregate semantics (including
// the MIN/MAX multisets), two runtimes on top.
type ViewState struct {
	isAgg    bool
	gbCount  int
	aggKinds []exec.AggKind
	itemRefs []itemRef
	groups   map[string]*groupState
	bag      map[string]*bagEntry
	stats    *storage.Stats
}

// NewViewState builds the empty fold state for a planned view. stats
// (may be nil) receives the RowsMaterial/AggUpdates work-unit charges.
func NewViewState(p *DeltaPlan, stats *storage.Stats) *ViewState {
	return &ViewState{
		isAgg:    p.Aggregate,
		gbCount:  p.GroupCols,
		aggKinds: p.aggKinds,
		itemRefs: p.itemRefs,
		groups:   make(map[string]*groupState),
		bag:      make(map[string]*bagEntry),
		stats:    stats,
	}
}

// SetStats redirects the work-unit charges; nil disables them.
func (v *ViewState) SetStats(stats *storage.Stats) { v.stats = stats }

// Add folds delta rows (group cols + agg args for aggregate views,
// plain view rows otherwise) into the state with weight +1 each.
func (v *ViewState) Add(rows []storage.Row) {
	for _, r := range rows {
		v.fold(r, 1)
	}
}

// Remove retracts delta rows from the state (weight -1 each).
func (v *ViewState) Remove(rows []storage.Row) {
	for _, r := range rows {
		v.fold(r, -1)
	}
}

// AddWeighted folds one delta row with a signed multiplicity: w > 0
// adds the row w times, w < 0 retracts it -w times. The dataflow
// runtime's Z-set fold entry point.
func (v *ViewState) AddWeighted(row storage.Row, w int64) {
	for ; w > 0; w-- {
		v.fold(row, 1)
	}
	for ; w < 0; w++ {
		v.fold(row, -1)
	}
}

// fold applies one unit-weight delta row.
func (v *ViewState) fold(r storage.Row, sign int64) {
	if v.stats != nil {
		v.stats.RowsMaterial++
	}
	if !v.isAgg {
		key := storage.EncodeKey(r...)
		e, ok := v.bag[key]
		if sign > 0 {
			if !ok {
				e = &bagEntry{row: r}
				v.bag[key] = e
			}
			e.count++
			return
		}
		if !ok || e.count <= 0 {
			panic("ivm: retracting a row absent from the view bag")
		}
		e.count--
		if e.count == 0 {
			delete(v.bag, key)
		}
		return
	}
	key := storage.EncodeKey(r[:v.gbCount]...)
	g, ok := v.groups[key]
	if sign > 0 {
		if !ok {
			g = &groupState{keyVals: r[:v.gbCount].Clone(), aggs: make([]aggState, len(v.aggKinds))}
			for i, kind := range v.aggKinds {
				g.aggs[i] = newAggState(kind)
			}
			v.groups[key] = g
		}
		g.count++
		for i := range g.aggs {
			g.aggs[i].add(r[v.gbCount+i], v.stats)
		}
		return
	}
	if !ok {
		panic("ivm: retracting from a missing group")
	}
	g.count--
	for i := range g.aggs {
		g.aggs[i].remove(r[v.gbCount+i], v.stats)
	}
	if g.count == 0 {
		delete(v.groups, key)
	} else if g.count < 0 {
		panic("ivm: negative group count")
	}
}

// Result renders the current content in SELECT-item order, rows sorted
// by group key (aggregate views) or encoded row (SPJ views, with
// multiplicities expanded) — the same layout the planner produces for
// the view query, enabling direct comparison.
func (v *ViewState) Result() []storage.Row {
	if v.isAgg {
		keys := make([]string, 0, len(v.groups))
		for k := range v.groups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out := make([]storage.Row, 0, len(keys))
		for _, k := range keys {
			g := v.groups[k]
			row := make(storage.Row, len(v.itemRefs))
			for i, ref := range v.itemRefs {
				if ref.aggIdx >= 0 {
					row[i] = g.aggs[ref.aggIdx].result(g.count)
				} else {
					row[i] = g.keyVals[ref.groupIdx]
				}
			}
			out = append(out, row)
		}
		// Grand aggregate over an empty state: one row of empty aggregate
		// values, mirroring exec.HashAgg.
		if len(out) == 0 && v.gbCount == 0 {
			row := make(storage.Row, len(v.itemRefs))
			for i, ref := range v.itemRefs {
				empty := newAggState(v.aggKinds[ref.aggIdx])
				row[i] = empty.result(0)
			}
			out = append(out, row)
		}
		return out
	}
	keys := make([]string, 0, len(v.bag))
	for k := range v.bag {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []storage.Row
	for _, k := range keys {
		e := v.bag[k]
		for i := int64(0); i < e.count; i++ {
			out = append(out, e.row)
		}
	}
	return out
}

// ViewStateSnapshot is the portable (gob-safe, exported-fields-only)
// serialization of a ViewState: groups and bag entries in sorted key
// order, aggregate states flattened to (sum, sorted multiset) pairs.
// The aggregate kinds are not stored — they are re-derived from the
// view's DeltaPlan at restore time, keeping the format layout-stable.
type ViewStateSnapshot struct {
	Groups []GroupSnapshot
	Bag    []BagSnapshot
}

// GroupSnapshot is one group's serialized state.
type GroupSnapshot struct {
	Key   storage.Row
	Count int64
	Aggs  []AggSnapshot
}

// AggSnapshot is one aggregate's serialized state: Sum carries
// SUM/AVG accumulators, Multiset the sorted (value, count) pairs of a
// MIN/MAX B-tree (nil otherwise).
type AggSnapshot struct {
	Sum      float64
	Multiset []ValueCount
}

// ValueCount is one multiset bucket.
type ValueCount struct {
	V storage.Value
	N int64
}

// BagSnapshot is one SPJ bag entry.
type BagSnapshot struct {
	Row   storage.Row
	Count int64
}

// Snapshot serializes the state deterministically (sorted keys).
func (v *ViewState) Snapshot() ViewStateSnapshot {
	var snap ViewStateSnapshot
	if v.isAgg {
		keys := make([]string, 0, len(v.groups))
		for k := range v.groups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			g := v.groups[k]
			gs := GroupSnapshot{Key: g.keyVals.Clone(), Count: g.count}
			for i := range g.aggs {
				as := AggSnapshot{Sum: g.aggs[i].sum}
				if ms := g.aggs[i].multiset; ms != nil {
					ms.Ascend(func(val storage.Value, n int64) bool {
						as.Multiset = append(as.Multiset, ValueCount{V: val, N: n})
						return true
					})
				}
				gs.Aggs = append(gs.Aggs, as)
			}
			snap.Groups = append(snap.Groups, gs)
		}
		return snap
	}
	keys := make([]string, 0, len(v.bag))
	for k := range v.bag {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e := v.bag[k]
		snap.Bag = append(snap.Bag, BagSnapshot{Row: e.row.Clone(), Count: e.count})
	}
	return snap
}

// Restore replaces the state with a snapshot's content. The snapshot
// must come from a view with the same plan shape (aggregate count and
// kinds); a mismatch is an error, not a panic.
func (v *ViewState) Restore(snap ViewStateSnapshot) error {
	v.groups = make(map[string]*groupState, len(snap.Groups))
	v.bag = make(map[string]*bagEntry, len(snap.Bag))
	if v.isAgg {
		if len(snap.Bag) > 0 {
			return fmt.Errorf("ivm: bag entries in an aggregate view snapshot")
		}
		for _, gs := range snap.Groups {
			if len(gs.Aggs) != len(v.aggKinds) {
				return fmt.Errorf("ivm: snapshot group carries %d aggregates, plan has %d", len(gs.Aggs), len(v.aggKinds))
			}
			if len(gs.Key) != v.gbCount {
				return fmt.Errorf("ivm: snapshot group key width %d, plan has %d", len(gs.Key), v.gbCount)
			}
			g := &groupState{keyVals: gs.Key.Clone(), count: gs.Count, aggs: make([]aggState, len(v.aggKinds))}
			for i, kind := range v.aggKinds {
				g.aggs[i] = newAggState(kind)
				g.aggs[i].sum = gs.Aggs[i].Sum
				if g.aggs[i].multiset != nil {
					for _, vc := range gs.Aggs[i].Multiset {
						g.aggs[i].multiset.Set(vc.V, vc.N)
					}
				}
			}
			v.groups[storage.EncodeKey(g.keyVals...)] = g
		}
		return nil
	}
	if len(snap.Groups) > 0 {
		return fmt.Errorf("ivm: group entries in an SPJ view snapshot")
	}
	for _, bs := range snap.Bag {
		v.bag[storage.EncodeKey(bs.Row...)] = &bagEntry{row: bs.Row.Clone(), count: bs.Count}
	}
	return nil
}
