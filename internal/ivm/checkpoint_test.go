package ivm

import (
	"bytes"
	"strings"
	"testing"

	"abivm/internal/storage"
)

// chainFixture builds a maintainer with a WAL and a checkpoint chain,
// runs a scripted workload that interleaves arrivals, drains, and chain
// checkpoints, and returns everything for inspection. The script is
// deterministic, so two fixtures are byte-for-byte interchangeable.
func chainFixture(t *testing.T, maxDepth int) (*storage.DB, *Maintainer, *WAL, *CheckpointChain) {
	t.Helper()
	db := liveDB(t)
	m, err := New(db, paperView)
	if err != nil {
		t.Fatal(err)
	}
	wal := NewWAL()
	m.AttachWAL(wal)
	chain := NewCheckpointChain(maxDepth)
	if err := chain.Checkpoint(m); err != nil { // base segment
		t.Fatal(err)
	}

	applyN(t, m, 100, 6)
	if err := m.ProcessBatch("PS", 3); err != nil {
		t.Fatal(err)
	}
	if err := chain.Checkpoint(m); err != nil { // delta 1
		t.Fatal(err)
	}

	// A delete and an update make the second delta carry all three
	// mutation shapes.
	if err := m.Apply(Delete("PS", storage.I(100))); err != nil {
		t.Fatal(err)
	}
	if err := m.Apply(Update("S", []storage.Value{storage.I(0)},
		storage.Row{storage.I(0), storage.S("S2"), storage.I(1)})); err != nil {
		t.Fatal(err)
	}
	if err := m.ProcessBatch("PS", 4); err != nil {
		t.Fatal(err)
	}
	if err := m.ProcessBatch("S", 1); err != nil {
		t.Fatal(err)
	}
	if err := chain.Checkpoint(m); err != nil { // delta 2
		t.Fatal(err)
	}

	// Work past the chain tip, so recovery also replays a WAL suffix.
	applyN(t, m, 200, 3)
	if err := m.ProcessBatch("PS", 2); err != nil {
		t.Fatal(err)
	}
	return db, m, wal, chain
}

func TestChainCheckpointRecoverRoundTrip(t *testing.T) {
	db, m, wal, chain := chainFixture(t, DefaultChainDepth)
	if chain.Depth() != 2 {
		t.Fatalf("chain depth = %d, want 2", chain.Depth())
	}

	wantPending := pendingKey(m)
	wantView := rowsKey(m.Result())

	rec, err := RecoverChain(db, paperView, chain, wal)
	if err != nil {
		t.Fatal(err)
	}
	if got := pendingKey(rec); got != wantPending {
		t.Errorf("recovered pending %s, want %s", got, wantPending)
	}
	if got := rowsKey(rec.Result()); got != wantView {
		t.Errorf("recovered view %s, want %s", got, wantView)
	}
	// The recovered maintainer keeps working and converges to the same
	// ground truth as the original.
	assertConsistent(t, rec)
	assertConsistent(t, m)
	if rowsKey(rec.Result()) != rowsKey(m.Result()) {
		t.Error("recovered and original maintainers diverged after refresh")
	}
}

func TestChainRecoveryMatchesFullCheckpointRecovery(t *testing.T) {
	// The same workload driven twice: one recovery point is an
	// incremental chain, the other a single full checkpoint taken at the
	// same moment. Both recoveries must produce identical maintainers.
	db1, _, wal1, chain := chainFixture(t, DefaultChainDepth)
	db2, m2, wal2, _ := chainFixture(t, DefaultChainDepth)

	// The two recovery points cover different WAL prefixes (chain tip vs.
	// this instant) but recovery must converge because the WAL suffix
	// fills the difference.
	var full bytes.Buffer
	if err := m2.Checkpoint(&full); err != nil {
		t.Fatal(err)
	}

	recChain, err := RecoverChain(db1, paperView, chain, wal1)
	if err != nil {
		t.Fatal(err)
	}
	recFull, err := Recover(db2, paperView, bytes.NewReader(full.Bytes()), wal2)
	if err != nil {
		t.Fatal(err)
	}
	if pendingKey(recChain) != pendingKey(recFull) {
		t.Errorf("chain pending %s, full-checkpoint pending %s", pendingKey(recChain), pendingKey(recFull))
	}
	if rowsKey(recChain.Result()) != rowsKey(recFull.Result()) {
		t.Error("chain recovery and full-checkpoint recovery produced different views")
	}
}

func TestChainCompactionPreservesRecovery(t *testing.T) {
	db1, m1, wal1, chain1 := chainFixture(t, DefaultChainDepth)
	db2, _, wal2, chain2 := chainFixture(t, DefaultChainDepth)

	if err := chain2.Compact(); err != nil {
		t.Fatal(err)
	}
	if chain2.Depth() != 0 {
		t.Fatalf("depth after compaction = %d", chain2.Depth())
	}
	if chain1.TipLSN() != chain2.TipLSN() {
		t.Fatalf("compaction moved the tip: %d vs %d", chain2.TipLSN(), chain1.TipLSN())
	}

	rec1, err := RecoverChain(db1, paperView, chain1, wal1)
	if err != nil {
		t.Fatal(err)
	}
	rec2, err := RecoverChain(db2, paperView, chain2, wal2)
	if err != nil {
		t.Fatal(err)
	}
	if pendingKey(rec1) != pendingKey(rec2) {
		t.Errorf("pending diverged: chained %s, compacted %s", pendingKey(rec1), pendingKey(rec2))
	}
	if rowsKey(rec1.Result()) != rowsKey(rec2.Result()) {
		t.Error("compacted-chain recovery diverged from chained recovery")
	}
	// Compacting twice (or an empty chain) is a no-op.
	if err := chain2.Compact(); err != nil {
		t.Fatal(err)
	}
	// The original maintainer is untouched by compaction.
	assertConsistent(t, m1)
}

func TestChainAutoCompactsPastMaxDepth(t *testing.T) {
	db := liveDB(t)
	m, err := New(db, paperView)
	if err != nil {
		t.Fatal(err)
	}
	wal := NewWAL()
	m.AttachWAL(wal)
	chain := NewCheckpointChain(2)
	if err := chain.Checkpoint(m); err != nil {
		t.Fatal(err)
	}
	depths := []int{1, 2, 0, 1} // the third checkpoint trips maxDepth=2
	for i, want := range depths {
		applyN(t, m, 100+10*i, 2)
		if err := m.ProcessBatch("PS", 2); err != nil {
			t.Fatal(err)
		}
		if err := chain.Checkpoint(m); err != nil {
			t.Fatal(err)
		}
		if chain.Depth() != want {
			t.Fatalf("after checkpoint %d: depth %d, want %d", i+1, chain.Depth(), want)
		}
	}
	rec, err := RecoverChain(db, paperView, chain, wal)
	if err != nil {
		t.Fatal(err)
	}
	if pendingKey(rec) != pendingKey(m) || rowsKey(rec.Result()) != rowsKey(m.Result()) {
		t.Error("recovery after auto-compaction diverged")
	}
}

func TestChainDepthZeroIsFullCheckpointing(t *testing.T) {
	db := liveDB(t)
	m, err := New(db, paperView)
	if err != nil {
		t.Fatal(err)
	}
	wal := NewWAL()
	m.AttachWAL(wal)
	chain := NewCheckpointChain(0)
	for i := 0; i < 3; i++ {
		applyN(t, m, 100+10*i, 2)
		if err := m.ProcessBatch("PS", 1); err != nil {
			t.Fatal(err)
		}
		if err := chain.Checkpoint(m); err != nil {
			t.Fatal(err)
		}
		if chain.Depth() != 0 {
			t.Fatalf("depth-0 chain retained %d deltas", chain.Depth())
		}
		wal.TruncateThrough(chain.TipLSN())
	}
	rec, err := RecoverChain(db, paperView, chain, wal)
	if err != nil {
		t.Fatal(err)
	}
	if pendingKey(rec) != pendingKey(m) || rowsKey(rec.Result()) != rowsKey(m.Result()) {
		t.Error("depth-0 chain recovery diverged")
	}
}

func TestChainAdoptsV1FullCheckpointAsBase(t *testing.T) {
	// Backward compatibility: a checkpoint written through the plain v1
	// Checkpoint API (the pre-chain format) serves as a chain base, and
	// delta segments extend it.
	db := liveDB(t)
	m, err := New(db, paperView)
	if err != nil {
		t.Fatal(err)
	}
	wal := NewWAL()
	m.AttachWAL(wal)
	applyN(t, m, 100, 4)
	if err := m.ProcessBatch("PS", 2); err != nil {
		t.Fatal(err)
	}
	var v1 bytes.Buffer
	if err := m.Checkpoint(&v1); err != nil {
		t.Fatal(err)
	}
	chain := NewCheckpointChain(DefaultChainDepth)
	chain.SetBase(v1.Bytes(), wal.LastLSN())
	if !chain.HasBase() {
		t.Fatal("chain did not adopt the base")
	}

	applyN(t, m, 200, 3)
	if err := m.ProcessBatch("PS", 3); err != nil {
		t.Fatal(err)
	}
	if err := chain.Checkpoint(m); err != nil {
		t.Fatal(err)
	}
	if chain.Depth() != 1 {
		t.Fatalf("depth = %d, want 1", chain.Depth())
	}
	rec, err := RecoverChain(db, paperView, chain, wal)
	if err != nil {
		t.Fatal(err)
	}
	if pendingKey(rec) != pendingKey(m) || rowsKey(rec.Result()) != rowsKey(m.Result()) {
		t.Error("recovery from adopted v1 base diverged")
	}
}

func TestChainRejectsTruncatedChain(t *testing.T) {
	db, _, wal, chain := chainFixture(t, DefaultChainDepth)

	// Dropping the first delta leaves a FromLSN gap.
	whole := chain.deltas
	chain.deltas = whole[1:]
	_, err := RecoverChain(db, paperView, chain, wal)
	if err == nil || !strings.Contains(err.Error(), "delta chain gap") {
		t.Errorf("truncated chain error = %v, want a delta-chain-gap diagnosis", err)
	}
	// Compaction applies the same validation.
	if err := chain.Compact(); err == nil || !strings.Contains(err.Error(), "delta chain gap") {
		t.Errorf("compacting a truncated chain: err = %v", err)
	}

	// Reordered segments are diagnosed the same way.
	chain.deltas = [][]byte{whole[1], whole[0]}
	if _, err := RecoverChain(db, paperView, chain, wal); err == nil || !strings.Contains(err.Error(), "delta chain gap") {
		t.Errorf("reordered chain error = %v", err)
	}

	// A corrupt segment fails decoding with a segment-naming error.
	chain.deltas = [][]byte{whole[0], []byte("garbage segment")}
	if _, err := RecoverChain(db, paperView, chain, wal); err == nil || !strings.Contains(err.Error(), "delta segment 1") {
		t.Errorf("corrupt segment error = %v", err)
	}

	// A chain with deltas but no base is rejected outright.
	empty := NewCheckpointChain(DefaultChainDepth)
	if _, err := RecoverChain(db, paperView, empty, wal); err == nil {
		t.Error("recovery from an empty chain succeeded")
	}
}

func TestChainValidatesNamespace(t *testing.T) {
	db := liveDB(t)
	m, err := New(db, paperView)
	if err != nil {
		t.Fatal(err)
	}
	wal := NewWAL()
	m.AttachWAL(wal)
	m.SetNamespace("shard1/east")
	chain := NewCheckpointChain(DefaultChainDepth)
	if err := chain.Checkpoint(m); err != nil {
		t.Fatal(err)
	}
	applyN(t, m, 100, 2)
	if err := m.ProcessBatch("PS", 2); err != nil {
		t.Fatal(err)
	}
	if err := chain.Checkpoint(m); err != nil {
		t.Fatal(err)
	}
	if _, err := RecoverChainNamespaced(db, paperView, "shard2/east", chain, wal, nil); err == nil {
		t.Error("foreign-namespace chain accepted")
	}
	if _, err := RecoverChainNamespaced(db, paperView, "shard1/east", chain, wal, nil); err != nil {
		t.Errorf("owner recovery failed: %v", err)
	}
}

func TestCheckpointDeltaIsSmallerThanFull(t *testing.T) {
	db := liveDB(t)
	m, err := New(db, paperView)
	if err != nil {
		t.Fatal(err)
	}
	wal := NewWAL()
	m.AttachWAL(wal)
	chain := NewCheckpointChain(DefaultChainDepth)
	if err := chain.Checkpoint(m); err != nil {
		t.Fatal(err)
	}
	applyN(t, m, 100, 2)
	if err := m.ProcessBatch("PS", 2); err != nil {
		t.Fatal(err)
	}
	if err := chain.Checkpoint(m); err != nil {
		t.Fatal(err)
	}
	base, delta := len(chain.base), len(chain.deltas[0])
	if delta >= base {
		t.Errorf("delta segment (%d bytes) not smaller than base (%d bytes)", delta, base)
	}
}
