package ivm

import (
	"bytes"
	"testing"

	"abivm/internal/obs"
	"abivm/internal/storage"
)

// mixedBurst applies a burst of inserts plus an update and a delete on
// the partsupp alias and a supplier move, leaving pending work on two
// aliases.
func mixedBurst(t *testing.T, m *Maintainer, base int) {
	t.Helper()
	applyN(t, m, base, 5)
	if err := m.Apply(Update("PS", []storage.Value{storage.I(int64(base))},
		storage.Row{storage.I(int64(base)), storage.I(2), storage.F(float64(base) / 2)})); err != nil {
		t.Fatal(err)
	}
	if err := m.Apply(Delete("PS", storage.I(int64(base+1)))); err != nil {
		t.Fatal(err)
	}
	if err := m.Apply(Update("S", []storage.Value{storage.I(1)},
		storage.Row{storage.I(1), storage.S("S'"), storage.I(int64(base % 4))})); err != nil {
		t.Fatal(err)
	}
}

// TestRefreshFallbackMatchesRecompute exercises the full-refresh
// fallback: after bursts with interleaved partial drains, Refresh must
// clear every pending delta and land on exactly the from-scratch
// recompute; a second Refresh must be a no-op (no further drains).
func TestRefreshFallbackMatchesRecompute(t *testing.T) {
	m, err := New(liveDB(t), paperView)
	if err != nil {
		t.Fatal(err)
	}
	ms := NewMetrics(obs.NewRegistry())
	m.SetMetrics(ms)

	mixedBurst(t, m, 100)
	if err := m.ProcessBatch("PS", 2); err != nil { // partial drain mid-burst
		t.Fatal(err)
	}
	mixedBurst(t, m, 200)

	if err := m.Refresh(); err != nil {
		t.Fatal(err)
	}
	for i, n := range m.Pending() {
		if n != 0 {
			t.Errorf("alias %d: %d mods still pending after Refresh", i, n)
		}
	}
	fresh, err := m.RecomputeFresh()
	if err != nil {
		t.Fatal(err)
	}
	if rowsKey(m.Result()) != rowsKey(fresh) {
		t.Fatalf("refreshed view diverged from recompute:\nincremental: %v\nfresh:       %v", m.Result(), fresh)
	}

	// An up-to-date maintainer has nothing to drain: Refresh must not
	// touch the drain path at all.
	drains := ms.Drains.Value()
	if err := m.Refresh(); err != nil {
		t.Fatal(err)
	}
	if got := ms.Drains.Value(); got != drains {
		t.Errorf("no-op Refresh issued %d extra drains", got-drains)
	}
}

// TestCheckpointWALTruncationMidBurst interleaves a checkpoint and its
// WAL truncation into the middle of a modification burst, keeps working
// past it, then crashes: recovery from the mid-burst checkpoint plus the
// truncated tail must reproduce the pre-crash state byte for byte, and
// both maintainers must stay in lockstep afterwards.
func TestCheckpointWALTruncationMidBurst(t *testing.T) {
	db := liveDB(t)
	m, err := New(db, paperView)
	if err != nil {
		t.Fatal(err)
	}
	wal := NewWAL()
	m.AttachWAL(wal)
	ms := NewMetrics(obs.NewRegistry())
	m.SetMetrics(ms)
	wal.SetMetrics(ms)

	// First half of the burst, with a partial drain in flight.
	mixedBurst(t, m, 100)
	if err := m.ProcessBatch("PS", 3); err != nil {
		t.Fatal(err)
	}

	// Checkpoint lands mid-burst; the coordinator truncates everything
	// the checkpoint covers.
	var cp bytes.Buffer
	if err := m.Checkpoint(&cp); err != nil {
		t.Fatal(err)
	}
	wal.TruncateThrough(wal.LastLSN())
	if wal.Len() != 0 {
		t.Fatalf("WAL holds %d records after full truncation", wal.Len())
	}

	// The burst continues as if nothing happened.
	mixedBurst(t, m, 200)
	if err := m.ProcessBatch("PS", 2); err != nil {
		t.Fatal(err)
	}
	if err := m.ProcessBatch("S", 1); err != nil {
		t.Fatal(err)
	}
	tail := wal.Len()
	if tail == 0 {
		t.Fatal("post-truncation burst appended no WAL records")
	}

	// Crash. Recovery sees only the checkpoint and the truncated tail.
	rms := NewMetrics(obs.NewRegistry())
	rec, err := RecoverWithMetrics(db, paperView, bytes.NewReader(cp.Bytes()), wal, rms)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := pendingKey(rec), pendingKey(m); got != want {
		t.Errorf("recovered pending %s, want %s", got, want)
	}
	if got, want := rowsKey(rec.Result()), rowsKey(m.Result()); got != want {
		t.Errorf("recovered view diverged from pre-crash view")
	}
	if got := rms.Recoveries.Value(); got != 1 {
		t.Errorf("recoveries counter = %d, want 1", got)
	}
	if got := rms.RecoveryReplay.Sum(); got != float64(tail) {
		t.Errorf("recovery replayed %v records, want %d", got, tail)
	}
	if got := ms.WALTruncations.Value(); got != 1 {
		t.Errorf("truncations counter = %d, want 1", got)
	}

	// Both survivors keep working in lockstep over the shared live
	// database: the original applies the live change, the recovered one
	// observes it deferred (the broker's multiplexing contract).
	for i := 0; i < 2; i++ {
		k := int64(300 + i)
		mod := Insert("PS", storage.Row{storage.I(k), storage.I(k % 6), storage.F(float64(50 + k))})
		if err := m.Apply(mod); err != nil {
			t.Fatal(err)
		}
		if err := rec.ApplyDeferred(mod); err != nil {
			t.Fatal(err)
		}
	}
	for _, mm := range []*Maintainer{m, rec} {
		if err := mm.ProcessBatch("PS", 1); err != nil {
			t.Fatal(err)
		}
	}
	if pendingKey(rec) != pendingKey(m) {
		t.Error("pending diverged after post-recovery steps")
	}
	assertConsistent(t, m)
	assertConsistent(t, rec)
	if rowsKey(rec.Result()) != rowsKey(m.Result()) {
		t.Error("views diverged after post-recovery refresh")
	}
}
