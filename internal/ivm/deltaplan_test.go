package ivm

import (
	"errors"
	"strings"
	"testing"

	"abivm/internal/sql"
)

// TestPlanViewRejections exercises every unsupported-feature path and
// requires a typed diagnostic with the expected feature text.
func TestPlanViewRejections(t *testing.T) {
	cases := []struct {
		query   string
		feature string // substring of UnsupportedError.Feature
		posSet  bool   // whether the diagnostic must carry a position
	}{
		{"SELECT a FROM t ORDER BY a", "ORDER BY", true},
		{"SELECT a FROM t LIMIT 3", "LIMIT", true},
		{"SELECT x.a FROM t AS x, u AS x", "duplicate alias", false},
		{"SELECT a.k, b.k FROM t AS a, t AS b", "self-join", false},
		{"SELECT SUM(amount), region FROM sales GROUP BY r2", "outside GROUP BY", true},
		{"SELECT SUM(a) + 1 FROM t", "select item", false},
	}
	for _, tc := range cases {
		_, err := PlanView(tc.query)
		var ue *sql.UnsupportedError
		if !errors.As(err, &ue) {
			t.Errorf("PlanView(%q) err = %v, want *sql.UnsupportedError", tc.query, err)
			continue
		}
		if !strings.Contains(ue.Feature, tc.feature) {
			t.Errorf("PlanView(%q) feature = %q, want substring %q", tc.query, ue.Feature, tc.feature)
		}
		if tc.posSet && ue.Pos <= 0 {
			t.Errorf("PlanView(%q) lost the source position: %+v", tc.query, ue)
		}
	}
}

func TestPlanViewShapes(t *testing.T) {
	spj, err := PlanView("SELECT s.a FROM t AS s WHERE s.a > 1")
	if err != nil {
		t.Fatal(err)
	}
	if spj.Aggregate || spj.Delta != spj.View {
		t.Errorf("SPJ plan: aggregate=%v, delta==view %v", spj.Aggregate, spj.Delta == spj.View)
	}
	agg, err := PlanView("SELECT g, SUM(a), COUNT(*) FROM t GROUP BY g")
	if err != nil {
		t.Fatal(err)
	}
	if !agg.Aggregate || agg.GroupCols != 1 || len(agg.aggKinds) != 2 {
		t.Errorf("agg plan shape: %+v", agg)
	}
	// Delta query emits group cols then agg args; COUNT(*) becomes 1.
	if got := agg.Delta.String(); got != "SELECT g, a, 1 FROM t" {
		t.Errorf("delta query = %q", got)
	}
	if got := agg.AggDescriptions(); len(got) != 2 || got[0] != "SUM(a)" || got[1] != "COUNT(*)" {
		t.Errorf("AggDescriptions = %v", got)
	}
}

// TestDeltaPlanExplain renders the per-source physical plans over the
// test database and pins the structural content.
func TestDeltaPlanExplain(t *testing.T) {
	db := liveDB(t)
	m, err := New(db, `SELECT n.nname, SUM(s.suppkey), COUNT(*)
		FROM supplier AS s, nation AS n
		WHERE s.nationkey = n.nationkey
		GROUP BY n.nname`)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Plan()
	if p == nil {
		t.Fatal("Maintainer.Plan() = nil")
	}
	out, err := p.Explain(db.Table)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"view:  SELECT n.nname, SUM(s.suppkey), COUNT(*) FROM supplier AS s, nation AS n",
		"delta: SELECT n.nname, s.suppkey, 1 FROM supplier AS s, nation AS n",
		"state: groups (group cols 1, aggregates SUM(s.suppkey) COUNT(*))",
		"Δs (table supplier):",
		"Δn (table nation):",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q in:\n%s", want, out)
		}
	}
	// Deterministic: two renders are byte-identical.
	again, err := p.Explain(db.Table)
	if err != nil {
		t.Fatal(err)
	}
	if again != out {
		t.Error("Explain is not deterministic")
	}
}
