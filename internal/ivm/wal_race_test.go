package ivm

import (
	"sync"
	"sync/atomic"
	"testing"
)

// Replay's contract is that a captured suffix stays immutable while the
// log keeps moving: Append only extends the record slice and
// TruncateThrough only advances its start, so the cells a replayer
// iterates outside the lock are write-once. This test runs replayers
// against concurrent appenders and truncators; under -race any
// violation of the write-once claim (a truncation that copied records
// down, an append that rewrote a cell) surfaces as a data race, and the
// per-suffix ordering checks catch logical corruption even without the
// race detector.
func TestWALReplayConcurrentAppendTruncate(t *testing.T) {
	const (
		appends   = 2000
		replayers = 4
	)
	w := NewWAL()
	var (
		wg       sync.WaitGroup
		appended atomic.Uint64
	)

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < appends; i++ {
			if _, err := w.Append(WALRecord{Kind: WALDrain, Alias: "S", K: i}); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
			appended.Add(1)
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		// Chase the appender, checkpoint-style: truncate through a
		// recent LSN so replayers race against both a moving tail and a
		// moving head.
		for {
			last := appended.Load()
			if err := w.TruncateThrough(last / 2); err != nil {
				t.Errorf("truncate through %d: %v", last/2, err)
				return
			}
			if last >= appends {
				return
			}
		}
	}()

	for r := 0; r < replayers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for appended.Load() < appends {
				var prev uint64
				err := w.Replay(0, func(rec WALRecord) error {
					if rec.LSN <= prev {
						t.Errorf("replay saw lsn %d after %d", rec.LSN, prev)
					}
					prev = rec.LSN
					if rec.Kind != WALDrain || rec.Alias != "S" {
						t.Errorf("replay saw foreign record %+v", rec)
					}
					return nil
				})
				if err != nil {
					t.Errorf("replay: %v", err)
					return
				}
			}
		}()
	}

	wg.Wait()

	// The dust settled: a final replay must see a contiguous suffix
	// ending at the last assigned LSN.
	var got []uint64
	if err := w.Replay(0, func(rec WALRecord) error {
		got = append(got, rec.LSN)
		return nil
	}); err != nil {
		t.Fatalf("final replay: %v", err)
	}
	if len(got) == 0 {
		t.Fatalf("final replay saw no records (over-truncated)")
	}
	if got[len(got)-1] != appends {
		t.Errorf("final replay ends at lsn %d, want %d", got[len(got)-1], appends)
	}
	for i := 1; i < len(got); i++ {
		if got[i] != got[i-1]+1 {
			t.Errorf("final replay has a gap: %d after %d", got[i], got[i-1])
		}
	}
}
