package ivm

import (
	"abivm/internal/btree"
	"abivm/internal/exec"
	"abivm/internal/storage"
)

// groupState holds the incrementally maintainable state of one group: a
// contribution count plus one aggregate state per aggregate item.
type groupState struct {
	keyVals storage.Row // the group-by values
	count   int64       // joined rows contributing to the group
	aggs    []aggState
}

// aggState is the incremental state of one aggregate.
type aggState struct {
	kind exec.AggKind
	sum  float64
	// multiset tracks contributing values for MIN/MAX so deletions never
	// force a recompute; nil for other aggregates.
	multiset *btree.Map[storage.Value, int64]
}

func newAggState(kind exec.AggKind) aggState {
	st := aggState{kind: kind}
	if kind == exec.AggMin || kind == exec.AggMax {
		st.multiset = btree.New[storage.Value, int64](storage.Compare)
	}
	return st
}

// add folds one contributing value into the aggregate (v is unused for
// COUNT).
func (st *aggState) add(v storage.Value, stats *storage.Stats) {
	if stats != nil {
		stats.AggUpdates++
	}
	switch st.kind {
	case exec.AggCount:
	case exec.AggSum, exec.AggAvg:
		st.sum += v.Float()
	case exec.AggMin, exec.AggMax:
		n, _ := st.multiset.Get(v)
		st.multiset.Set(v, n+1)
	}
}

// remove retracts one contributing value.
func (st *aggState) remove(v storage.Value, stats *storage.Stats) {
	if stats != nil {
		stats.AggUpdates++
	}
	switch st.kind {
	case exec.AggCount:
	case exec.AggSum, exec.AggAvg:
		st.sum -= v.Float()
	case exec.AggMin, exec.AggMax:
		n, ok := st.multiset.Get(v)
		if !ok {
			panic("ivm: retracting a value absent from the MIN/MAX multiset")
		}
		if n <= 1 {
			st.multiset.Delete(v)
		} else {
			st.multiset.Set(v, n-1)
		}
	}
}

// result renders the aggregate for a group with the given contribution
// count, mirroring exec.HashAgg's conventions for empty groups.
func (st *aggState) result(count int64) storage.Value {
	switch st.kind {
	case exec.AggCount:
		return storage.I(count)
	case exec.AggSum:
		return storage.F(st.sum)
	case exec.AggAvg:
		if count == 0 {
			return storage.F(0)
		}
		return storage.F(st.sum / float64(count))
	case exec.AggMin:
		if k, _, ok := st.multiset.Min(); ok {
			return k
		}
		return storage.F(0)
	case exec.AggMax:
		if k, _, ok := st.multiset.Max(); ok {
			return k
		}
		return storage.F(0)
	}
	return storage.Value{}
}
