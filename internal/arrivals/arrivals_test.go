package arrivals

import (
	"math"
	"testing"
)

func TestUniform(t *testing.T) {
	g := &Uniform{Rate: 3}
	for i := 0; i < 5; i++ {
		if got := g.Next(); got != 3 {
			t.Fatalf("Next = %d, want 3", got)
		}
	}
}

func TestNonUniformRespectsP(t *testing.T) {
	// With p=0 no modifications ever arrive.
	g := NewNonUniform(0, 1, 1, 1)
	for i := 0; i < 100; i++ {
		if got := g.Next(); got != 0 {
			t.Fatalf("p=0 produced %d", got)
		}
	}
	// With p=1 every step has at least one modification.
	g = NewNonUniform(1, 1, 1, 1)
	for i := 0; i < 100; i++ {
		if got := g.Next(); got < 1 {
			t.Fatalf("p=1 produced %d", got)
		}
	}
}

func TestNonUniformEmpiricalRate(t *testing.T) {
	// Paper parameters: the fraction of non-zero steps should approach p.
	for _, p := range []float64{0.5, 0.9} {
		g := NewNonUniform(p, 1, 1, 7)
		nonZero := 0
		n := 20000
		for i := 0; i < n; i++ {
			if g.Next() > 0 {
				nonZero++
			}
		}
		frac := float64(nonZero) / float64(n)
		if math.Abs(frac-p) > 0.02 {
			t.Errorf("p=%g: observed non-zero fraction %g", p, frac)
		}
	}
}

func TestNonUniformUnstableHasHigherVariance(t *testing.T) {
	stable := NewNonUniform(1, 1, 1, 3)
	unstable := NewNonUniform(1, 1, 5, 3)
	varOf := func(g Generator) float64 {
		n := 20000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			x := float64(g.Next())
			sum += x
			sumSq += x * x
		}
		mean := sum / float64(n)
		return sumSq/float64(n) - mean*mean
	}
	if vs, vu := varOf(stable), varOf(unstable); vu <= vs {
		t.Errorf("unstable variance %g not larger than stable %g", vu, vs)
	}
}

func TestNonUniformDeterministicBySeed(t *testing.T) {
	a := NewNonUniform(0.7, 1, 2, 99)
	b := NewNonUniform(0.7, 1, 2, 99)
	for i := 0; i < 200; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("same seed diverged at step %d: %d vs %d", i, x, y)
		}
	}
}

func TestNonUniformValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { NewNonUniform(-0.1, 1, 1, 0) },
		func() { NewNonUniform(1.1, 1, 1, 0) },
		func() { NewNonUniform(0.5, 1, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid parameters accepted")
				}
			}()
			bad()
		}()
	}
}

func TestPoissonMean(t *testing.T) {
	g := NewPoisson(2.5, 5)
	n := 50000
	sum := 0
	for i := 0; i < n; i++ {
		sum += g.Next()
	}
	mean := float64(sum) / float64(n)
	if math.Abs(mean-2.5) > 0.05 {
		t.Errorf("Poisson mean %g, want 2.5", mean)
	}
}

func TestPoissonZeroLambda(t *testing.T) {
	g := NewPoisson(0, 1)
	for i := 0; i < 50; i++ {
		if got := g.Next(); got != 0 {
			t.Fatalf("lambda=0 produced %d", got)
		}
	}
}

func TestBurstyEmitsBothLevels(t *testing.T) {
	g := NewBursty(1, 10, 5, 5, 13)
	sawLow, sawHigh := false, false
	for i := 0; i < 1000; i++ {
		switch g.Next() {
		case 1:
			sawLow = true
		case 10:
			sawHigh = true
		default:
			t.Fatal("unexpected level")
		}
	}
	if !sawLow || !sawHigh {
		t.Fatalf("missing phase: low=%t high=%t", sawLow, sawHigh)
	}
}

func TestTraceRepeats(t *testing.T) {
	g := &Trace{Counts: []int{1, 2, 3}}
	want := []int{1, 2, 3, 1, 2, 3, 1}
	for i, w := range want {
		if got := g.Next(); got != w {
			t.Fatalf("step %d: %d, want %d", i, got, w)
		}
	}
	empty := &Trace{}
	if got := empty.Next(); got != 0 {
		t.Fatalf("empty trace produced %d", got)
	}
}

func TestSequenceShape(t *testing.T) {
	arr := Sequence(5, &Uniform{Rate: 1}, &Uniform{Rate: 2})
	if len(arr) != 5 {
		t.Fatalf("len = %d", len(arr))
	}
	for _, d := range arr {
		if d[0] != 1 || d[1] != 2 {
			t.Fatalf("step = %v", d)
		}
	}
	if err := arr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUniformSequence(t *testing.T) {
	arr := UniformSequence(4, 1, 1)
	if arr.T() != 3 || arr.N() != 2 {
		t.Fatalf("T=%d N=%d", arr.T(), arr.N())
	}
	total := arr.TotalPerTable()
	if total[0] != 4 || total[1] != 4 {
		t.Fatalf("totals = %v", total)
	}
}
