// Package arrivals generates modification arrival sequences. It covers
// the paper's two experimental workloads — a uniform stream (a constant
// number of modifications per step, Figure 6) and the non-uniform
// truncated-normal scheme of Figure 7 — plus Poisson and bursty streams
// used by the extension benches. All generators are deterministic given a
// seed.
package arrivals

import (
	"math"
	"math/rand"

	"abivm/internal/core"
)

// Generator produces the arrival counts of one base table, one time step
// at a time.
type Generator interface {
	// Next returns the number of modifications arriving at the next step.
	Next() int
}

// Uniform emits exactly Rate modifications every step.
type Uniform struct {
	Rate int
}

// Next implements Generator.
func (g *Uniform) Next() int { return g.Rate }

// NonUniform is the paper's Figure 7 stream model. For each step, with
// probability P at least one modification arrives; the count d > 0 is
// distributed as ceil(X) for X ~ Normal(Mu, Sigma²) conditioned on X > 0.
// P controls the stream rate (0.5 = slow, 0.9 = fast in the paper) and
// Sigma its stability (1 = stable, 5 = unstable); the paper keeps Mu = 1.
type NonUniform struct {
	P     float64
	Mu    float64
	Sigma float64
	Rng   *rand.Rand
}

// NewNonUniform returns a seeded non-uniform generator.
func NewNonUniform(p, mu, sigma float64, seed int64) *NonUniform {
	if p < 0 || p > 1 {
		panic("arrivals: probability out of [0,1]")
	}
	if sigma <= 0 {
		panic("arrivals: sigma must be positive")
	}
	return &NonUniform{P: p, Mu: mu, Sigma: sigma, Rng: rand.New(rand.NewSource(seed))}
}

// Next implements Generator.
func (g *NonUniform) Next() int {
	if g.Rng.Float64() >= g.P {
		return 0
	}
	// Sample X ~ N(mu, sigma^2) conditioned on X > 0 by rejection; the
	// acceptance probability is at least Phi(mu/sigma), bounded well away
	// from zero for the paper's parameter choices.
	for {
		x := g.Rng.NormFloat64()*g.Sigma + g.Mu
		if x > 0 {
			return int(math.Ceil(x))
		}
	}
}

// Poisson emits counts from a Poisson distribution with mean Lambda,
// sampled with Knuth's product method (Lambda is small in all uses here).
type Poisson struct {
	Lambda float64
	Rng    *rand.Rand
}

// NewPoisson returns a seeded Poisson generator.
func NewPoisson(lambda float64, seed int64) *Poisson {
	if lambda < 0 {
		panic("arrivals: lambda must be non-negative")
	}
	return &Poisson{Lambda: lambda, Rng: rand.New(rand.NewSource(seed))}
}

// Next implements Generator.
func (g *Poisson) Next() int {
	l := math.Exp(-g.Lambda)
	k := 0
	p := 1.0
	for {
		p *= g.Rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Bursty alternates between a quiet phase emitting Low per step and a
// burst phase emitting High per step; phase lengths are geometric with
// the given means. It stresses the ONLINE policy's rate estimator.
type Bursty struct {
	Low, High                  int
	MeanQuietLen, MeanBurstLen float64
	Rng                        *rand.Rand

	inBurst bool
}

// NewBursty returns a seeded bursty generator starting in the quiet phase.
func NewBursty(low, high int, meanQuiet, meanBurst float64, seed int64) *Bursty {
	if meanQuiet < 1 || meanBurst < 1 {
		panic("arrivals: mean phase lengths must be >= 1")
	}
	return &Bursty{Low: low, High: high, MeanQuietLen: meanQuiet, MeanBurstLen: meanBurst, Rng: rand.New(rand.NewSource(seed))}
}

// Next implements Generator.
func (g *Bursty) Next() int {
	if g.inBurst {
		if g.Rng.Float64() < 1/g.MeanBurstLen {
			g.inBurst = false
		}
		return g.High
	}
	if g.Rng.Float64() < 1/g.MeanQuietLen {
		g.inBurst = true
	}
	return g.Low
}

// Trace replays a fixed sequence of counts and then repeats it.
type Trace struct {
	Counts []int
	pos    int
}

// Next implements Generator.
func (g *Trace) Next() int {
	if len(g.Counts) == 0 {
		return 0
	}
	v := g.Counts[g.pos]
	g.pos = (g.pos + 1) % len(g.Counts)
	return v
}

// Sequence materializes an arrival sequence of length steps from one
// generator per base table.
func Sequence(steps int, gens ...Generator) core.Arrivals {
	if steps <= 0 {
		panic("arrivals: steps must be positive")
	}
	out := make(core.Arrivals, steps)
	for t := range out {
		d := core.NewVector(len(gens))
		for i, g := range gens {
			d[i] = g.Next()
		}
		out[t] = d
	}
	return out
}

// UniformSequence is a convenience for the Figure 6 workload: rate[i]
// modifications on table i at every one of the steps.
func UniformSequence(steps int, rates ...int) core.Arrivals {
	gens := make([]Generator, len(rates))
	for i, r := range rates {
		gens[i] = &Uniform{Rate: r}
	}
	return Sequence(steps, gens...)
}
