package lgm

import (
	"math/rand"
	"testing"

	"abivm/internal/bruteforce"
	"abivm/internal/core"
	"abivm/internal/costfn"
)

// randInstance builds a random small instance with the given cost
// functions.
func randInstance(t *testing.T, rng *rand.Rand, funcs []core.CostFunc, steps, maxArrive int, c float64) *core.Instance {
	t.Helper()
	arr := make(core.Arrivals, steps)
	for ti := range arr {
		d := core.NewVector(len(funcs))
		for i := range d {
			d[i] = rng.Intn(maxArrive + 1)
		}
		arr[ti] = d
	}
	in, err := core.NewInstance(arr, core.NewCostModel(funcs...), c)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// randValidPlan produces a random valid (generally non-lazy, non-greedy)
// plan: at each step it drains random amounts, retrying until the
// post-action state is non-full, falling back to a full drain.
func randValidPlan(rng *rand.Rand, in *core.Instance) core.Plan {
	n := in.N()
	tEnd := in.T()
	plan := make(core.Plan, tEnd+1)
	state := core.NewVector(n)
	for t := 0; t <= tEnd; t++ {
		state.AddInPlace(in.Arrivals[t])
		if t == tEnd {
			plan[t] = state.Clone()
			state = core.NewVector(n)
			continue
		}
		var act core.Vector
		for attempt := 0; attempt < 8; attempt++ {
			try := core.NewVector(n)
			for i := range try {
				if state[i] > 0 {
					try[i] = rng.Intn(state[i] + 1)
				}
			}
			if !in.Model.Full(state.Sub(try), in.C) {
				act = try
				break
			}
		}
		if act == nil {
			act = state.Clone() // full drain always valid
		}
		plan[t] = act
		state.SubInPlace(act)
	}
	return plan
}

func linearFuncs(t *testing.T) []core.CostFunc {
	t.Helper()
	f0, err := costfn.NewLinear(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := costfn.NewLinear(0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	return []core.CostFunc{f0, f1}
}

func TestMakeLazyPlanProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	funcs := linearFuncs(t)
	for trial := 0; trial < 100; trial++ {
		in := randInstance(t, rng, funcs, 3+rng.Intn(15), 3, float64(8+rng.Intn(10)))
		p := randValidPlan(rng, in)
		if err := in.Validate(p); err != nil {
			t.Fatalf("trial %d: generator produced invalid plan: %v", trial, err)
		}
		q := MakeLazyPlan(in, p)
		if err := in.Validate(q); err != nil {
			t.Fatalf("trial %d: lazy plan invalid: %v", trial, err)
		}
		if !in.IsLazy(q) {
			t.Fatalf("trial %d: MakeLazyPlan output not lazy", trial)
		}
		if cq, cp := in.Cost(q), in.Cost(p); cq > cp+1e-9 {
			t.Fatalf("trial %d: lazy plan cost %g exceeds original %g", trial, cq, cp)
		}
	}
}

func TestMakeLazyPlanOnStepCosts(t *testing.T) {
	// Subadditive non-concave costs exercise the combination argument of
	// Lemma 1 beyond the linear case.
	rng := rand.New(rand.NewSource(9))
	step1, err := costfn.NewStep(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	step2, err := costfn.NewStep(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	funcs := []core.CostFunc{step1, step2}
	for trial := 0; trial < 100; trial++ {
		in := randInstance(t, rng, funcs, 3+rng.Intn(12), 3, float64(4+rng.Intn(8)))
		p := randValidPlan(rng, in)
		q := MakeLazyPlan(in, p)
		if err := in.Validate(q); err != nil {
			t.Fatalf("trial %d: lazy plan invalid: %v", trial, err)
		}
		if !in.IsLazy(q) {
			t.Fatalf("trial %d: output not lazy", trial)
		}
		if cq, cp := in.Cost(q), in.Cost(p); cq > cp+1e-9 {
			t.Fatalf("trial %d: lazy cost %g > original %g", trial, cq, cp)
		}
	}
}

func TestMakeLGMPlanProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	funcs := linearFuncs(t)
	for trial := 0; trial < 100; trial++ {
		in := randInstance(t, rng, funcs, 3+rng.Intn(15), 3, float64(8+rng.Intn(10)))
		p := randValidPlan(rng, in)
		q := MakeLGMPlan(in, p)
		if err := in.Validate(q); err != nil {
			t.Fatalf("trial %d: LGM plan invalid: %v", trial, err)
		}
		if !in.IsLGM(q) {
			t.Fatalf("trial %d: MakeLGMPlan output not LGM", trial)
		}
		// Lemma 2 / Theorem 1 bound: f(Q) <= 2 f(P).
		if cq, cp := in.Cost(q), in.Cost(p); cq > 2*cp+1e-9 {
			t.Fatalf("trial %d: LGM cost %g exceeds twice original %g", trial, cq, cp)
		}
	}
}

func TestMakeLGMPlanActionCountsUnderLinearCosts(t *testing.T) {
	// Theorem 2 machinery: per-table action counts of the constructed LGM
	// plan never exceed those of the source plan.
	rng := rand.New(rand.NewSource(77))
	funcs := linearFuncs(t)
	for trial := 0; trial < 150; trial++ {
		in := randInstance(t, rng, funcs, 3+rng.Intn(12), 3, float64(8+rng.Intn(12)))
		p := randValidPlan(rng, in)
		q := MakeLGMPlan(in, p)
		cp := ActionCount(p, in.N())
		cq := ActionCount(q, in.N())
		for i := range cp {
			if cq[i] > cp[i] {
				t.Fatalf("trial %d: |Q(%d)|=%d > |P(%d)|=%d\nP=%v\nQ=%v",
					trial, i, cq[i], i, cp[i], p, q)
			}
		}
	}
}

func TestMakeLGMPlanOnStepCosts(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	step1, _ := costfn.NewStep(4, 3)
	step2, _ := costfn.NewStep(2, 1)
	funcs := []core.CostFunc{step1, step2}
	for trial := 0; trial < 100; trial++ {
		in := randInstance(t, rng, funcs, 3+rng.Intn(10), 3, float64(4+rng.Intn(8)))
		p := randValidPlan(rng, in)
		q := MakeLGMPlan(in, p)
		if err := in.Validate(q); err != nil {
			t.Fatalf("trial %d: LGM plan invalid: %v", trial, err)
		}
		if !in.IsLGM(q) {
			t.Fatalf("trial %d: output not LGM", trial)
		}
		if cq, cp := in.Cost(q), in.Cost(p); cq > 2*cp+1e-9 {
			t.Fatalf("trial %d: LGM cost %g > 2x original %g", trial, cq, cp)
		}
	}
}

func TestMakeLGMPlanFromOptimalIsTwoApprox(t *testing.T) {
	// End-to-end Theorem 1: transform a globally optimal plan and compare
	// against OPT itself.
	rng := rand.New(rand.NewSource(5))
	step1, _ := costfn.NewStep(3, 2)
	lin, _ := costfn.NewLinear(1, 1)
	funcs := []core.CostFunc{step1, lin}
	for trial := 0; trial < 20; trial++ {
		in := randInstance(t, rng, funcs, 3+rng.Intn(5), 2, float64(4+rng.Intn(5)))
		opt, optPlan, err := bruteforce.Optimal(in)
		if err != nil {
			t.Fatal(err)
		}
		q := MakeLGMPlan(in, optPlan)
		if err := in.Validate(q); err != nil {
			t.Fatalf("trial %d: invalid: %v", trial, err)
		}
		if cq := in.Cost(q); cq > 2*opt+1e-9 {
			t.Fatalf("trial %d: LGM-from-OPT cost %g > 2*OPT %g", trial, cq, opt)
		}
	}
}

func TestActionCount(t *testing.T) {
	p := core.Plan{{1, 0}, {0, 0}, {2, 3}, nil, {0, 1}}
	got := ActionCount(p, 2)
	if got[0] != 2 || got[1] != 2 {
		t.Fatalf("ActionCount = %v, want [2 2]", got)
	}
}

func TestMakeLazyPlanIdempotentOnLazyInput(t *testing.T) {
	// A lazy plan passed through MakeLazyPlan keeps its cost (actions are
	// released at the same forced times).
	rng := rand.New(rand.NewSource(64))
	funcs := linearFuncs(t)
	for trial := 0; trial < 50; trial++ {
		in := randInstance(t, rng, funcs, 3+rng.Intn(10), 3, float64(8+rng.Intn(10)))
		base := in.NaivePlan()
		q := MakeLazyPlan(in, base)
		if c1, c2 := in.Cost(base), in.Cost(q); c1 != c2 {
			t.Fatalf("trial %d: lazy transform changed cost of lazy plan: %g -> %g", trial, c1, c2)
		}
	}
}

func TestPlanTransformsDoNotAliasInput(t *testing.T) {
	// Regression test for vector aliasing: the transformed plan must own
	// its vectors, so mutating the input plan (or vice versa) afterwards
	// must not change the output. A shared backing array here would let a
	// caller silently corrupt a derived plan.
	rng := rand.New(rand.NewSource(7))
	lin1, _ := costfn.NewLinear(1, 2)
	lin2, _ := costfn.NewLinear(2, 1)
	in := randInstance(t, rng, []core.CostFunc{lin1, lin2}, 8, 4, 14)
	p := randValidPlan(rng, in)

	for name, transform := range map[string]func(*core.Instance, core.Plan) core.Plan{
		"MakeLazyPlan": MakeLazyPlan,
		"MakeLGMPlan":  MakeLGMPlan,
	} {
		q := transform(in, p.Clone())
		snapshot := q.Clone()
		// Scribble over the input plan's vectors.
		for _, act := range p {
			for i := range act {
				act[i] = 997
			}
		}
		for ti := range q {
			if !q[ti].Equal(snapshot[ti]) {
				t.Errorf("%s: output step %d changed after input mutation: %v -> %v",
					name, ti, snapshot[ti], q[ti])
			}
		}
		// And the other direction: mutating the output must not corrupt
		// the input the caller still holds.
		p2 := randValidPlan(rng, in)
		p2Snap := p2.Clone()
		q2 := transform(in, p2)
		for _, act := range q2 {
			for i := range act {
				act[i] = -1
			}
		}
		for ti := range p2 {
			if !p2[ti].Equal(p2Snap[ti]) {
				t.Errorf("%s: input step %d changed after output mutation: %v -> %v",
					name, ti, p2Snap[ti], p2[ti])
			}
		}
	}
}
