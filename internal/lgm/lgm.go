// Package lgm implements the plan transformations of Section 3 of the
// paper: MakeLazyPlan (Lemma 1) converts any valid plan into a lazy plan
// of no greater cost, and MakeLGMPlan (Lemma 2 / Theorem 1) converts any
// valid plan into a valid LGM (lazy, greedy, minimal) plan whose cost is
// at most twice the original; under linear cost functions the result is
// as cheap as the original up to per-table action counts (Theorem 2).
package lgm

import "abivm/internal/core"

// MakeLazyPlan constructs a lazy plan from valid plan p per the paper's
// MAKELAZYPLAN procedure: actions of p are accumulated and only released
// when the pre-action state under the new plan becomes full (or at T).
// Subadditivity guarantees the released combined action costs no more
// than the sum of the accumulated originals, so f(Q) <= f(P).
func MakeLazyPlan(in *core.Instance, p core.Plan) core.Plan {
	n := in.N()
	tEnd := in.T()
	q := make(core.Plan, tEnd+1)
	pending := core.NewVector(n) // accumulated, not-yet-released actions of p
	state := core.NewVector(n)   // pre/post-action state under the new plan
	for t := 0; t <= tEnd; t++ {
		state.AddInPlace(in.Arrivals[t])
		if t < len(p) && p[t] != nil {
			pending.AddInPlace(p[t])
		}
		if t == tEnd || in.Model.Full(state, in.C) {
			q[t] = pending.Clone()
			state.SubInPlace(q[t])
			pending = core.NewVector(n)
		} else {
			q[t] = core.NewVector(n)
		}
	}
	return q
}

// MakeLGMPlan constructs a valid LGM plan from valid plan p per the
// paper's MAKELGMPLAN procedure. When the state under the new plan Q
// becomes full at t, Q empties exactly the delta tables whose Q-side
// backlog strictly exceeds the post-action backlog of p at t, and then
// minimizes that action. Theorem 1: f(Q) <= 2 f(P); Theorem 2: under
// linear costs, per-table action counts satisfy |Q(i)| <= |P(i)|.
func MakeLGMPlan(in *core.Instance, p core.Plan) core.Plan {
	n := in.N()
	tEnd := in.T()
	q := make(core.Plan, tEnd+1)

	// Track p's post-action state alongside q's state.
	pState := core.NewVector(n)
	qState := core.NewVector(n)
	for t := 0; t <= tEnd; t++ {
		pState.AddInPlace(in.Arrivals[t])
		qState.AddInPlace(in.Arrivals[t])
		if t < len(p) && p[t] != nil {
			pState.SubInPlace(p[t])
		}
		if t == tEnd {
			// q_T drains everything (refresh).
			q[t] = qState.Clone()
			qState = core.NewVector(n)
			continue
		}
		if !in.Model.Full(qState, in.C) {
			q[t] = core.NewVector(n)
			continue
		}
		// Action forced: empty tables whose Q backlog exceeds P's
		// post-action backlog, then minimize.
		tentative := core.NewVector(n)
		for i := 0; i < n; i++ {
			if qState[i] > pState[i] {
				tentative[i] = qState[i]
			}
		}
		q[t] = core.MinimizeAction(tentative, qState, in.Model, in.C)
		qState.SubInPlace(q[t])
	}
	return q
}

// ActionCount returns |P(i)| for each table i: the number of time steps at
// which plan p processes a non-zero batch from table i. Under linear cost
// functions Σ_i b_i |P(i)| is the only plan-dependent cost component, so
// this is the quantity Theorem 2 and Theorem 4 reason about.
func ActionCount(p core.Plan, n int) []int {
	counts := make([]int, n)
	for _, act := range p {
		if act == nil {
			continue
		}
		for i, k := range act {
			if k > 0 {
				counts[i]++
			}
		}
	}
	return counts
}
