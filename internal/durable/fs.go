package durable

import (
	"errors"
	"fmt"
	iofs "io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// FS is the file layer a Store runs on: a namespace of files addressed
// by slash-separated relative names. It is structurally identical to
// fault.MediaFS (defined separately to keep the fault package
// dependency-free), so a *fault.Media wrapping any FS is itself an FS —
// that composition is how the chaos harness injects byte-level damage
// under a real store.
type FS interface {
	// ReadFile returns the full content of a file. A missing file yields
	// an error satisfying errors.Is(err, io/fs.ErrNotExist).
	ReadFile(name string) ([]byte, error)
	// WriteFile creates or replaces a file with data. It need not be
	// atomic — the Store builds atomicity on top via temp-file + Rename.
	WriteFile(name string, data []byte) error
	// AppendFile appends data to a file, creating it when absent.
	AppendFile(name string, data []byte) error
	// Rename atomically renames a file, replacing any existing target. A
	// missing source yields an io/fs.ErrNotExist-satisfying error.
	Rename(oldName, newName string) error
	// Remove deletes a file; removing a missing file is not an error
	// (idempotent, so cleanup paths never fail on repeated attempts).
	Remove(name string) error
	// List returns every file name in the namespace, sorted.
	List() ([]string, error)
}

// checkName rejects names that would escape a rooted namespace:
// absolute paths, "..", empty names, or un-clean paths. Every FS entry
// point validates so a corrupt manifest can never address files outside
// the store directory.
func checkName(name string) error {
	if name == "" || name != path.Clean(name) || path.IsAbs(name) ||
		name == ".." || strings.HasPrefix(name, "../") {
		return fmt.Errorf("durable: invalid file name %q", name)
	}
	return nil
}

// DirFS is an FS rooted at an OS directory. Writes and appends sync the
// file before returning — the Store's explicit sync points assume data
// handed to the FS is durable when the call returns.
type DirFS struct {
	root string
}

// NewDirFS returns a DirFS rooted at dir, creating it if needed.
func NewDirFS(dir string) (*DirFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: creating store directory: %w", err)
	}
	return &DirFS{root: dir}, nil
}

// path resolves a validated relative name under the root.
func (d *DirFS) path(name string) (string, error) {
	if err := checkName(name); err != nil {
		return "", err
	}
	return filepath.Join(d.root, filepath.FromSlash(name)), nil
}

// ReadFile implements FS.
func (d *DirFS) ReadFile(name string) ([]byte, error) {
	p, err := d.path(name)
	if err != nil {
		return nil, err
	}
	return os.ReadFile(p)
}

// writeSynced opens p with flags, writes data, and syncs before closing.
// Sync and Close errors are durability failures and are reported — a
// write that may still be sitting in a dead page cache must not count as
// landed.
func writeSynced(p string, flags int, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	f, err := os.OpenFile(p, flags, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		// The write already failed; Close can add nothing but noise.
		//lint:ignore errdrop the write error is the failure being reported
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		//lint:ignore errdrop the sync error is the failure being reported
		f.Close()
		return err
	}
	return f.Close()
}

// WriteFile implements FS.
func (d *DirFS) WriteFile(name string, data []byte) error {
	p, err := d.path(name)
	if err != nil {
		return err
	}
	return writeSynced(p, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, data)
}

// AppendFile implements FS.
func (d *DirFS) AppendFile(name string, data []byte) error {
	p, err := d.path(name)
	if err != nil {
		return err
	}
	return writeSynced(p, os.O_WRONLY|os.O_CREATE|os.O_APPEND, data)
}

// Rename implements FS.
func (d *DirFS) Rename(oldName, newName string) error {
	op, err := d.path(oldName)
	if err != nil {
		return err
	}
	np, err := d.path(newName)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(np), 0o755); err != nil {
		return err
	}
	return os.Rename(op, np)
}

// Remove implements FS.
func (d *DirFS) Remove(name string) error {
	p, err := d.path(name)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !errors.Is(err, iofs.ErrNotExist) {
		return err
	}
	return nil
}

// List implements FS. WalkDir visits lexically, so the result is sorted
// without an extra pass; a missing root lists empty.
func (d *DirFS) List() ([]string, error) {
	var out []string
	err := filepath.WalkDir(d.root, func(p string, de iofs.DirEntry, err error) error {
		if err != nil {
			if errors.Is(err, iofs.ErrNotExist) {
				return nil
			}
			return err
		}
		if de.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(d.root, p)
		if err != nil {
			return err
		}
		out = append(out, filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("durable: listing store directory: %w", err)
	}
	return out, nil
}

// MemFS is an in-memory FS for tests: deterministic, no OS interaction,
// and cheap to snapshot. It is safe for concurrent use.
type MemFS struct {
	mu    sync.Mutex
	files map[string][]byte
}

// NewMemFS returns an empty in-memory FS.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string][]byte)}
}

// ReadFile implements FS.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	if err := checkName(name); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("durable: memfs read %q: %w", name, iofs.ErrNotExist)
	}
	return append([]byte(nil), data...), nil
}

// WriteFile implements FS.
func (m *MemFS) WriteFile(name string, data []byte) error {
	if err := checkName(name); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = append([]byte(nil), data...)
	return nil
}

// AppendFile implements FS.
func (m *MemFS) AppendFile(name string, data []byte) error {
	if err := checkName(name); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = append(m.files[name], data...)
	return nil
}

// Rename implements FS.
func (m *MemFS) Rename(oldName, newName string) error {
	if err := checkName(oldName); err != nil {
		return err
	}
	if err := checkName(newName); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[oldName]
	if !ok {
		return fmt.Errorf("durable: memfs rename %q: %w", oldName, iofs.ErrNotExist)
	}
	delete(m.files, oldName)
	m.files[newName] = data
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	if err := checkName(name); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.files, name)
	return nil
}

// List implements FS.
func (m *MemFS) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.files))
	for name := range m.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}
