package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"abivm/internal/ivm"
	"abivm/internal/storage"
)

// WAL frame format. Every record is framed as
//
//	[u32le payload length][u32le CRC32C of payload][payload]
//
// and the payload is a compact custom encoding of ivm.WALRecord (uvarint
// LSN, kind byte, length-prefixed strings, length-prefixed
// storage.Value gob bytes). CRC32C (Castagnoli) is hardware-accelerated
// on every platform the toolchain targets and — unlike a plain length
// check — catches the bit flips and mid-frame tears the fault model
// injects. The frame length lives *outside* the checksummed payload, so
// a corrupt length cannot send the scanner past the tear: the scanner
// bounds-checks the length against the remaining bytes first and treats
// any overrun as a torn tail.

// frameHeaderSize is the fixed per-frame overhead: length + CRC32C.
const frameHeaderSize = 8

// crcTable is the Castagnoli polynomial table shared by frames,
// checkpoint segments, and the manifest.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// crcOf returns the CRC32C of data.
func crcOf(data []byte) uint32 { return crc32.Checksum(data, crcTable) }

// appendFrame appends one framed record to dst and returns the extended
// slice.
func appendFrame(dst []byte, rec ivm.WALRecord) ([]byte, error) {
	start := len(dst)
	dst = append(dst, make([]byte, frameHeaderSize)...)
	dst, err := appendRecordPayload(dst, rec)
	if err != nil {
		return dst[:start], err
	}
	payload := dst[start+frameHeaderSize:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crcOf(payload))
	return dst, nil
}

// readFrame decodes the frame starting at data[off]. It returns the
// record and the offset past the frame, or an error describing the first
// defect: a torn header, a length overrunning the remaining bytes, a
// checksum mismatch, or an undecodable payload. Callers treat any error
// as "the log ends here".
func readFrame(data []byte, off int) (ivm.WALRecord, int, error) {
	var zero ivm.WALRecord
	rest := data[off:]
	if len(rest) < frameHeaderSize {
		return zero, 0, fmt.Errorf("torn frame header: %d trailing bytes", len(rest))
	}
	n := int(binary.LittleEndian.Uint32(rest))
	sum := binary.LittleEndian.Uint32(rest[4:])
	if n <= 0 || n > len(rest)-frameHeaderSize {
		return zero, 0, fmt.Errorf("frame length %d overruns %d remaining bytes (torn tail)", n, len(rest)-frameHeaderSize)
	}
	payload := rest[frameHeaderSize : frameHeaderSize+n]
	if got := crcOf(payload); got != sum {
		return zero, 0, fmt.Errorf("frame checksum mismatch: stored %08x, computed %08x", sum, got)
	}
	rec, err := decodeRecordPayload(payload)
	if err != nil {
		return zero, 0, fmt.Errorf("decoding frame payload: %w", err)
	}
	return rec, off + frameHeaderSize + n, nil
}

// appendRecordPayload appends the payload encoding of rec to dst.
func appendRecordPayload(dst []byte, rec ivm.WALRecord) ([]byte, error) {
	dst = binary.AppendUvarint(dst, rec.LSN)
	dst = append(dst, byte(rec.Kind))
	dst = appendLenBytes(dst, []byte(rec.Alias))
	dst = binary.AppendVarint(dst, int64(rec.K))
	dst = append(dst, byte(rec.Mod.Kind))
	dst = appendLenBytes(dst, []byte(rec.Mod.Alias))
	dst, err := appendValues(dst, rec.Mod.Row)
	if err != nil {
		return dst, err
	}
	return appendValues(dst, rec.Mod.Key)
}

// decodeRecordPayload is appendRecordPayload's inverse; trailing bytes
// are a defect (a frame holds exactly one record).
func decodeRecordPayload(payload []byte) (ivm.WALRecord, error) {
	var rec ivm.WALRecord
	r := payloadReader{buf: payload}
	rec.LSN = r.uvarint()
	rec.Kind = ivm.WALKind(r.byte())
	rec.Alias = string(r.lenBytes())
	rec.K = int(r.varint())
	rec.Mod.Kind = ivm.ModKind(r.byte())
	rec.Mod.Alias = string(r.lenBytes())
	rec.Mod.Row = r.values()
	key := r.values()
	if len(key) > 0 {
		rec.Mod.Key = []storage.Value(key)
	}
	if r.err != nil {
		return rec, r.err
	}
	if r.off != len(payload) {
		return rec, fmt.Errorf("%d trailing payload bytes", len(payload)-r.off)
	}
	return rec, nil
}

// appendLenBytes appends a uvarint length prefix followed by b.
func appendLenBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// appendValues appends a uvarint count followed by each value's
// length-prefixed gob encoding (the same tag-plus-text form the
// checkpoint format uses, so frames and segments share one value
// layout).
func appendValues(dst []byte, vals []storage.Value) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	for _, v := range vals {
		b, err := v.GobEncode()
		if err != nil {
			return dst, err
		}
		dst = appendLenBytes(dst, b)
	}
	return dst, nil
}

// payloadReader decodes a frame payload with sticky error handling: the
// first defect latches and every later read returns zero values, so the
// decode sequence stays linear instead of error-checking each field.
type payloadReader struct {
	buf []byte
	off int
	err error
}

func (r *payloadReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *payloadReader) byte() byte {
	if r.err != nil || r.off >= len(r.buf) {
		r.fail("payload truncated at byte field")
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

func (r *payloadReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("payload truncated at uvarint field")
		return 0
	}
	r.off += n
	return v
}

func (r *payloadReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("payload truncated at varint field")
		return 0
	}
	r.off += n
	return v
}

func (r *payloadReader) lenBytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail("payload field length %d overruns %d remaining bytes", n, len(r.buf)-r.off)
		return nil
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b
}

func (r *payloadReader) values() storage.Row {
	n := r.uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) {
		// Each value takes at least one byte; a count beyond the remaining
		// bytes is damage, not a huge row.
		r.fail("payload value count %d overruns %d remaining bytes", n, len(r.buf)-r.off)
		return nil
	}
	vals := make(storage.Row, n)
	for i := range vals {
		b := r.lenBytes()
		if r.err != nil {
			return nil
		}
		if err := vals[i].GobDecode(b); err != nil {
			r.fail("payload value %d: %v", i, err)
			return nil
		}
	}
	return vals
}
