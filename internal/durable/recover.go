package durable

import (
	"errors"
	"fmt"
	iofs "io/fs"

	"abivm/internal/ivm"
	"abivm/internal/storage"
)

// Corruption describes one damaged or missing artifact recovery
// detected: the file (or file region) and what was wrong with it.
type Corruption struct {
	Artifact string
	Detail   string
}

// Recovery is the result of Store.Recover: a rebuilt maintainer with its
// WAL and checkpoint chain, plus the ladder rung taken. Fallback is
// false for an exact recovery (byte-identical to the crashed maintainer)
// and true when corruption forced a full refresh from the live tables —
// the last rung, where the view is recomputed from current base state
// and un-drained deltas are lost. Corruptions lists every artifact the
// ladder stepped over either way.
type Recovery struct {
	M           *ivm.Maintainer
	WAL         *ivm.WAL
	Chain       *ivm.CheckpointChain
	Fallback    bool
	Corruptions []Corruption
}

// scanState is the outcome of scanning the on-disk WAL segments: the
// longest valid contiguous record run, the segments that survive
// (including repaired ones), and the damage found along the way.
type scanState struct {
	recs    []ivm.WALRecord
	segs    []walSeg
	events  []Corruption
	quars   int
	repairs int
}

func (s *scanState) first() uint64 {
	if len(s.recs) == 0 {
		return 0
	}
	return s.recs[0].LSN
}

func (s *scanState) last() uint64 {
	if len(s.recs) == 0 {
		return 0
	}
	return s.recs[len(s.recs)-1].LSN
}

// quarantineLocked moves an artifact into the quarantine directory under
// a unique sequence-numbered name, preserving it for diagnosis while
// freeing its live name. When the rename itself fails (quarantine on
// damaged media), the artifact is removed instead — a stale file must
// not shadow a fresh one. If both fail the file simply stays; generation
// and LSN naming keeps leftovers from ever being mistaken for live
// artifacts.
func (st *Store) quarantineLocked(name string) bool {
	qname := fmt.Sprintf("%s%06d-%s", quarantinePrefix, st.qseq, name)
	st.qseq++
	if err := st.fs.Rename(name, qname); err != nil {
		if rmErr := st.fs.Remove(name); rmErr != nil {
			return false
		}
	}
	st.stats.Quarantined++
	return true
}

// scanWALLocked reads every WAL segment in LSN order and accepts the
// longest valid prefix: frames must parse, checksum, and carry strictly
// contiguous LSNs within and across segments, and each segment's first
// record must match the LSN in its file name. The scan truncates at the
// first defect: the damaged segment is quarantined and its valid prefix
// rewritten in place (so the next scan sees a cleanly-ended log), and
// any segments past the defect are quarantined whole — rotation happens
// only after a sync, so nothing after a tear can be contiguous.
func (st *Store) scanWALLocked() scanState {
	var sc scanState
	names, err := st.fs.List()
	if err != nil {
		sc.events = append(sc.events, Corruption{Artifact: ".", Detail: fmt.Sprintf("listing store: %v", err)})
		return sc
	}
	type cand struct {
		name  string
		first uint64
	}
	var cands []cand
	for _, name := range names {
		first, ok := parseWALName(name)
		if !ok {
			continue
		}
		// List is sorted and the fixed-width hex names sort by LSN, so
		// cands is already in ascending first-LSN order.
		cands = append(cands, cand{name: name, first: first})
	}
	broken := false
	for _, c := range cands {
		if broken {
			sc.events = append(sc.events, Corruption{Artifact: c.name,
				Detail: "unreachable past a damaged segment"})
			if st.quarantineLocked(c.name) {
				sc.quars++
			}
			continue
		}
		if len(sc.segs) > 0 && c.first != sc.last()+1 {
			sc.events = append(sc.events, Corruption{Artifact: c.name,
				Detail: fmt.Sprintf("segment starts at lsn %d, log covers %d (gap)", c.first, sc.last())})
			if st.quarantineLocked(c.name) {
				sc.quars++
			}
			broken = true
			continue
		}
		data, err := st.fs.ReadFile(c.name)
		if err != nil {
			sc.events = append(sc.events, Corruption{Artifact: c.name,
				Detail: fmt.Sprintf("reading segment: %v", err)})
			if !errors.Is(err, iofs.ErrNotExist) && st.quarantineLocked(c.name) {
				sc.quars++
			}
			broken = true
			continue
		}
		expect := c.first
		off, goodOff := 0, 0
		var defect string
		for off < len(data) {
			rec, next, err := readFrame(data, off)
			if err != nil {
				defect = err.Error()
				break
			}
			if rec.LSN != expect {
				defect = fmt.Sprintf("frame at offset %d has lsn %d, want %d", off, rec.LSN, expect)
				break
			}
			sc.recs = append(sc.recs, rec)
			expect++
			off = next
			goodOff = next
		}
		if defect == "" {
			sc.segs = append(sc.segs, walSeg{name: c.name, first: c.first})
			continue
		}
		sc.events = append(sc.events, Corruption{Artifact: c.name,
			Detail: fmt.Sprintf("truncating log at lsn %d: %s", expect-1, defect)})
		if st.quarantineLocked(c.name) {
			sc.quars++
		}
		if goodOff > 0 {
			// Rewrite the valid prefix under the original name so the log
			// ends cleanly on disk; if the repair write is itself lost to
			// the media, the next recovery just finds a shorter log.
			if err := st.writeAtomic(c.name, data[:goodOff]); err == nil {
				sc.segs = append(sc.segs, walSeg{name: c.name, first: c.first})
				sc.repairs++
			}
		}
		broken = true
	}
	return sc
}

// chainState is the usable part of the on-disk checkpoint chain: the
// manifest, the base segment, and the longest valid delta prefix.
type chainState struct {
	man    *manifestDTO
	base   []byte
	deltas [][]byte
	// tip is the WAL position the usable prefix covers through: the last
	// good delta's LSN, or the base LSN with no deltas.
	tip    uint64
	ok     bool
	events []Corruption
	quars  int
}

// loadChainLocked reads and validates the checkpoint chain: manifest
// checksum, version and namespace; base checksum against the manifest;
// then each delta in order, stopping the prefix at the first damaged
// segment (a later delta cannot apply over a missing link). Corrupt
// artifacts are quarantined as they are found.
func (st *Store) loadChainLocked() chainState {
	var cs chainState
	fail := func(artifact, detail string, quarantine bool) {
		cs.events = append(cs.events, Corruption{Artifact: artifact, Detail: detail})
		if quarantine && st.quarantineLocked(artifact) {
			cs.quars++
		}
	}
	data, err := st.fs.ReadFile(manifestName)
	if err != nil {
		fail(manifestName, fmt.Sprintf("reading manifest: %v", err), false)
		return cs
	}
	man, err := decodeManifest(data)
	if err != nil {
		fail(manifestName, err.Error(), true)
		return cs
	}
	if man.Namespace != st.ns {
		fail(manifestName, fmt.Sprintf("manifest namespace %q, want %q", man.Namespace, st.ns), true)
		return cs
	}
	base, err := st.fs.ReadFile(man.BaseName)
	if err != nil {
		fail(man.BaseName, fmt.Sprintf("reading base segment: %v", err), false)
		return cs
	}
	if got := crcOf(base); got != man.BaseCRC {
		fail(man.BaseName, fmt.Sprintf("base checksum mismatch: manifest %08x, computed %08x", man.BaseCRC, got), true)
		return cs
	}
	cs.man = man
	cs.base = base
	cs.tip = man.BaseLSN
	cs.ok = true
	for i, ref := range man.Deltas {
		seg, err := st.fs.ReadFile(ref.Name)
		if err != nil {
			fail(ref.Name, fmt.Sprintf("reading delta segment %d: %v", i, err), false)
			break
		}
		if got := crcOf(seg); got != ref.CRC {
			fail(ref.Name, fmt.Sprintf("delta segment %d checksum mismatch: manifest %08x, computed %08x", i, ref.CRC, got), true)
			break
		}
		cs.deltas = append(cs.deltas, seg)
		cs.tip = ref.LSN
	}
	return cs
}

// Recover rebuilds the namespace's maintainer from disk after a crash,
// walking the fallback ladder:
//
//  1. Exact: manifest, base, and a delta prefix validate, and the WAL
//     scan covers every record the last sync acknowledged — replaying
//     the scanned suffix over the chain reproduces the crashed
//     maintainer byte-for-byte.
//  2. Degraded chain: corrupt delta segments are dropped (quarantined,
//     manifest rewritten to the good prefix) and the longer WAL suffix
//     kept by the base-LSN retention floor is replayed instead — still
//     exact.
//  3. Full refresh: the chain or the acknowledged log is unrecoverable,
//     so the maintainer is rebuilt from the live tables — current state,
//     with un-drained deltas lost — and a fresh generation checkpoint
//     re-seeds the store. Loud (Fallback flag, corruption metrics),
//     never silent.
//
// The store detects silent tail loss with its in-memory acknowledged-LSN
// watermark: a scan that ends below the last successful Sync means an
// append lied (a torn write cut on a frame boundary), which no checksum
// can see. A store opened fresh on an existing directory has no
// watermark and trusts the scan — the same trust a real log places in
// its last fsync.
//
// The rebuilt maintainer has the store re-attached as WAL sink and chain
// store, and ms attached to maintainer, WAL, and chain.
func (st *Store) Recover(live *storage.DB, query string, maxDepth int, ms *ivm.Metrics) (*Recovery, error) {
	st.mu.Lock()
	rec, err := st.recoverLocked(live, query, maxDepth, ms)
	st.mu.Unlock()
	if err != nil || !rec.Fallback {
		return rec, err
	}
	// Full-refresh fallback: build the maintainer outside the store lock,
	// because seeding the fresh chain calls straight back into PutBase.
	m, err := ivm.New(live, query)
	if err != nil {
		return nil, fmt.Errorf("durable: fallback rebuild: %w", err)
	}
	m.SetNamespace(st.ns)
	m.SetMetrics(ms)
	wal := ivm.NewWAL()
	wal.SetMetrics(ms)
	m.AttachWAL(wal)
	chain := ivm.NewCheckpointChain(maxDepth)
	chain.SetMetrics(ms)
	wal.SetSink(st)
	chain.SetStore(st)
	if err := chain.Checkpoint(m); err != nil {
		return nil, fmt.Errorf("durable: fallback checkpoint: %w", err)
	}
	rec.M, rec.WAL, rec.Chain = m, wal, chain
	return rec, nil
}

// recoverLocked runs the ladder's read side under the store lock. On the
// exact rungs it returns the finished Recovery; on the fallback rung it
// resets the store and returns Fallback=true with M/WAL/Chain nil for
// Recover to fill in.
func (st *Store) recoverLocked(live *storage.DB, query string, maxDepth int, ms *ivm.Metrics) (*Recovery, error) {
	// Whatever was buffered but never synced died with the crash.
	st.buf = nil
	st.bufFirst = 0

	cs := st.loadChainLocked()
	events := cs.events
	quars := cs.quars
	if !cs.ok {
		return st.fallbackLocked(ms, events, quars), nil
	}

	sc := st.scanWALLocked()
	events = append(events, sc.events...)
	quars += sc.quars

	// Coverage: every record the last sync acknowledged must be reachable
	// — on disk past the chain tip, or subsumed by the chain itself.
	covered := max64(sc.last(), cs.tip)
	if covered < st.ackedLSN {
		events = append(events, Corruption{Artifact: walName(st.ackedLSN),
			Detail: fmt.Sprintf("log ends at lsn %d but sync acknowledged %d (silent tail loss)", covered, st.ackedLSN)})
		return st.fallbackLocked(ms, events, quars), nil
	}
	if sc.last() > cs.tip && sc.first() > cs.tip+1 {
		events = append(events, Corruption{Artifact: walName(sc.first()),
			Detail: fmt.Sprintf("log starts at lsn %d, past the chain tip %d (gap)", sc.first(), cs.tip)})
		return st.fallbackLocked(ms, events, quars), nil
	}

	chain := ivm.RestoreChain(cs.base, cs.deltas, cs.tip, maxDepth)
	suffix := sc.recs
	for len(suffix) > 0 && suffix[0].LSN <= cs.tip {
		suffix = suffix[1:]
	}
	lastLSN := max64(cs.tip, sc.last())
	wal, err := ivm.RestoreWAL(suffix, lastLSN+1)
	if err != nil {
		// The scan guarantees ascending contiguous LSNs, so this is a
		// software defect, not media damage.
		return nil, err
	}
	m, err := ivm.RecoverChainNamespaced(live, query, st.ns, chain, wal, ms)
	if err != nil {
		// Checksums passed but the content would not rebuild — a stale
		// manifest landed by a lying rename, or damage below CRC
		// visibility. Last rung.
		events = append(events, Corruption{Artifact: cs.man.BaseName,
			Detail: fmt.Sprintf("chain replay failed: %v", err)})
		return st.fallbackLocked(ms, events, quars), nil
	}

	// Adopt the surviving file state. If the scan ended at or below the
	// chain tip the segments are fully subsumed by the chain; drop them
	// so future appends (which restart at tip+1) keep the on-disk LSN
	// sequence gap-free.
	if dropped := len(cs.deltas) < len(cs.man.Deltas); dropped {
		man := *cs.man
		man.Deltas = append([]segmentRefDTO(nil), cs.man.Deltas[:len(cs.deltas)]...)
		if err := st.writeManifestLocked(&man); err == nil {
			cs.man = &man
		}
		// A failed rewrite leaves the old manifest referencing the
		// quarantined deltas; the next recovery re-drops them.
	}
	if sc.last() <= cs.tip {
		for _, seg := range sc.segs {
			if err := st.fs.Remove(seg.name); err != nil {
				break
			}
		}
		sc.segs = nil
	}
	st.segs = sc.segs
	st.rotate = true
	st.lastLSN = lastLSN
	st.ackedLSN = lastLSN
	if len(sc.segs) > 0 {
		st.ackedLSN = sc.last()
	}
	st.man = cs.man
	st.baseLSN = cs.man.BaseLSN
	if cs.man.Gen > st.gen {
		st.gen = cs.man.Gen
	}
	st.stats.Corruptions += len(events)
	st.ms = ms
	ms.ObserveRecoveryCorruption(len(events), quars)

	wal.SetSink(st)
	chain.SetStore(st)
	return &Recovery{M: m, WAL: wal, Chain: chain, Corruptions: events}, nil
}

// fallbackLocked takes the ladder's last rung: quarantining already
// happened at detection time, so this just resets the store to a fresh
// (but generation-continuous) state and reports the damage. The caller
// rebuilds the maintainer from the live tables and re-seeds the store
// with a fresh base checkpoint.
func (st *Store) fallbackLocked(ms *ivm.Metrics, events []Corruption, quars int) *Recovery {
	st.buf = nil
	st.bufFirst = 0
	st.rotate = false
	st.segs = nil
	st.lastLSN = 0
	st.ackedLSN = 0
	st.baseLSN = 0
	st.man = nil
	st.stats.Corruptions += len(events)
	st.stats.Fallbacks++
	st.ms = ms
	ms.ObserveRecoveryCorruption(len(events), quars)
	ms.ObserveRecoveryFallback()
	return &Recovery{Fallback: true, Corruptions: events}
}

// max64 returns the larger of two LSNs.
func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
