package durable

import (
	"reflect"
	"testing"

	"abivm/internal/ivm"
	"abivm/internal/storage"
)

func frameRecords() []ivm.WALRecord {
	return []ivm.WALRecord{
		{LSN: 1, Kind: ivm.WALArrival, Mod: ivm.Insert("PS",
			storage.Row{storage.I(7), storage.F(3.25), storage.S("hello")})},
		{LSN: 2, Kind: ivm.WALArrival, Mod: ivm.Delete("PS", storage.I(-42))},
		{LSN: 3, Kind: ivm.WALArrival, Mod: ivm.Update("S",
			[]storage.Value{storage.I(1)}, storage.Row{storage.I(1), storage.S(""), storage.I(0)})},
		{LSN: 4, Kind: ivm.WALDrain, Alias: "PS", K: 3},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf []byte
	var err error
	recs := frameRecords()
	for _, rec := range recs {
		if buf, err = appendFrame(buf, rec); err != nil {
			t.Fatal(err)
		}
	}
	off := 0
	for i, want := range recs {
		got, next, err := readFrame(buf, off)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d round-tripped to %+v, want %+v", i, got, want)
		}
		off = next
	}
	if off != len(buf) {
		t.Fatalf("decoded through %d of %d bytes", off, len(buf))
	}
}

func TestFrameDetectsDamage(t *testing.T) {
	rec := frameRecords()[0]
	clean, err := appendFrame(nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func([]byte) []byte{
		"bit flip in payload": func(b []byte) []byte { b[len(b)-2] ^= 1; return b },
		"bit flip in crc":     func(b []byte) []byte { b[5] ^= 1; return b },
		"torn tail":           func(b []byte) []byte { return b[:len(b)-3] },
		"torn header":         func(b []byte) []byte { return b[:frameHeaderSize-1] },
		"length overrun":      func(b []byte) []byte { b[0]++; return b },
	}
	for name, damage := range cases {
		data := damage(append([]byte(nil), clean...))
		if _, _, err := readFrame(data, 0); err == nil {
			t.Errorf("%s: damage not detected", name)
		}
	}
	// The scanner keeps valid frames before the damage.
	two, err := appendFrame(append([]byte(nil), clean...), frameRecords()[1])
	if err != nil {
		t.Fatal(err)
	}
	two[len(two)-1] ^= 1
	got, next, err := readFrame(two, 0)
	if err != nil || got.LSN != 1 {
		t.Fatalf("valid leading frame rejected: %v", err)
	}
	if _, _, err := readFrame(two, next); err == nil {
		t.Error("damaged second frame accepted")
	}
}

func TestManifestRoundTripAndDamage(t *testing.T) {
	man := &manifestDTO{
		Version:   manifestVersion,
		Namespace: "shard0/orders",
		Gen:       9,
		BaseName:  baseSegName(9),
		BaseCRC:   0xdeadbeef,
		BaseLSN:   41,
		Deltas: []segmentRefDTO{
			{Name: deltaSegName(9, 0), CRC: 1, FromLSN: 41, LSN: 50},
			{Name: deltaSegName(9, 1), CRC: 2, FromLSN: 50, LSN: 58},
		},
	}
	data, err := encodeManifest(man)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, man) {
		t.Fatalf("manifest round-tripped to %+v, want %+v", got, man)
	}
	for name, damage := range map[string]func([]byte) []byte{
		"bit flip":  func(b []byte) []byte { b[len(b)/2] ^= 1; return b },
		"truncated": func(b []byte) []byte { return b[:len(b)-1] },
		"empty":     func(b []byte) []byte { return nil },
	} {
		if _, err := decodeManifest(damage(append([]byte(nil), data...))); err == nil {
			t.Errorf("%s manifest accepted", name)
		}
	}
}

func TestWALNames(t *testing.T) {
	for _, lsn := range []uint64{1, 255, 1 << 40} {
		name := walName(lsn)
		got, ok := parseWALName(name)
		if !ok || got != lsn {
			t.Errorf("walName(%d) = %s, parsed to (%d, %v)", lsn, name, got, ok)
		}
	}
	for _, bad := range []string{"wal-.log", "wal-00000000000000zz.log", "MANIFEST", "quarantine/000001-wal-0000000000000001.log"} {
		if _, ok := parseWALName(bad); ok {
			t.Errorf("parseWALName accepted %q", bad)
		}
	}
	// Lexical order must equal LSN order — the scanner relies on it.
	if walName(9) > walName(10) {
		t.Error("wal segment names do not sort by LSN")
	}
}
