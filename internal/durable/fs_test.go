package durable

import (
	"errors"
	iofs "io/fs"
	"reflect"
	"testing"
)

// TestFSContract runs every FS implementation through the behavior the
// Store depends on: read-your-writes, append creation, atomic-ish
// rename with replace, idempotent remove, sorted listing, not-exist
// errors, and path-escape rejection.
func TestFSContract(t *testing.T) {
	impls := map[string]func(t *testing.T) FS{
		"MemFS": func(t *testing.T) FS { return NewMemFS() },
		"DirFS": func(t *testing.T) FS {
			fsys, err := NewDirFS(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return fsys
		},
	}
	for name, mk := range impls {
		t.Run(name, func(t *testing.T) {
			fsys := mk(t)
			if _, err := fsys.ReadFile("missing"); !errors.Is(err, iofs.ErrNotExist) {
				t.Fatalf("reading a missing file: %v, want ErrNotExist", err)
			}
			if err := fsys.Rename("missing", "also-missing"); !errors.Is(err, iofs.ErrNotExist) {
				t.Fatalf("renaming a missing file: %v, want ErrNotExist", err)
			}
			if err := fsys.Remove("missing"); err != nil {
				t.Fatalf("removing a missing file must be idempotent: %v", err)
			}
			if err := fsys.WriteFile("a.tmp", []byte("one")); err != nil {
				t.Fatal(err)
			}
			if err := fsys.WriteFile("a.tmp", []byte("two")); err != nil {
				t.Fatal(err)
			}
			if err := fsys.AppendFile("log", []byte("ab")); err != nil {
				t.Fatal(err)
			}
			if err := fsys.AppendFile("log", []byte("cd")); err != nil {
				t.Fatal(err)
			}
			if got, _ := fsys.ReadFile("log"); string(got) != "abcd" {
				t.Fatalf("append produced %q, want abcd", got)
			}
			if err := fsys.Rename("a.tmp", "quarantine/a"); err != nil {
				t.Fatal(err)
			}
			if got, _ := fsys.ReadFile("quarantine/a"); string(got) != "two" {
				t.Fatalf("rename carried %q, want two", got)
			}
			if err := fsys.WriteFile("b", []byte("old")); err != nil {
				t.Fatal(err)
			}
			if err := fsys.AppendFile("c", []byte("new")); err != nil {
				t.Fatal(err)
			}
			if err := fsys.Rename("c", "b"); err != nil {
				t.Fatal(err)
			}
			if got, _ := fsys.ReadFile("b"); string(got) != "new" {
				t.Fatalf("rename-over-existing left %q, want new", got)
			}
			names, err := fsys.List()
			if err != nil {
				t.Fatal(err)
			}
			if want := []string{"b", "log", "quarantine/a"}; !reflect.DeepEqual(names, want) {
				t.Fatalf("List() = %v, want %v", names, want)
			}
			if err := fsys.Remove("b"); err != nil {
				t.Fatal(err)
			}
			if _, err := fsys.ReadFile("b"); !errors.Is(err, iofs.ErrNotExist) {
				t.Fatalf("removed file still readable: %v", err)
			}
			for _, bad := range []string{"", "../escape", "/abs", "a/../../b", ".."} {
				if err := fsys.WriteFile(bad, []byte("x")); err == nil {
					t.Errorf("escaping name %q accepted", bad)
				}
			}
		})
	}
}
