package durable

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
)

// manifestVersion guards against reading manifests written by an
// incompatible layout.
const manifestVersion = 1

// manifestName is the single well-known file in a store directory; every
// other artifact is reached through it.
const manifestName = "MANIFEST"

// segmentRefDTO names one checkpoint delta segment in the manifest and
// carries everything recovery needs to validate it without decoding:
// content checksum and the FromLSN→LSN chain link.
type segmentRefDTO struct {
	Name    string
	CRC     uint32
	FromLSN uint64
	LSN     uint64
}

// manifestDTO is the on-disk manifest: the checkpoint chain's shape. Gen
// is the base generation counter that keeps artifact names fresh across
// chain resets (a stale same-named file from an earlier generation can
// never shadow a current one). The WAL segments are deliberately *not*
// listed — their names carry their own first-LSN, and recovery trusts
// frame checksums plus LSN continuity rather than a catalog that would
// need rewriting on every sync.
type manifestDTO struct {
	Version   int
	Namespace string
	Gen       uint64
	BaseName  string
	BaseCRC   uint32
	BaseLSN   uint64
	Deltas    []segmentRefDTO
}

// encodeManifest serializes m as a 4-byte little-endian CRC32C followed
// by the gob payload it covers. The checksum-first layout means a
// truncated or bit-flipped manifest is detected before gob ever parses
// attacker-shaped bytes.
func encodeManifest(m *manifestDTO) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(make([]byte, 4))
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, fmt.Errorf("durable: encoding manifest: %w", err)
	}
	out := buf.Bytes()
	binary.LittleEndian.PutUint32(out, crcOf(out[4:]))
	return out, nil
}

// decodeManifest is encodeManifest's inverse; any defect — short file,
// checksum mismatch, gob error, wrong version — comes back as an error
// the recovery ladder treats as a corrupt manifest.
func decodeManifest(data []byte) (*manifestDTO, error) {
	if len(data) < 5 {
		return nil, fmt.Errorf("durable: manifest truncated to %d bytes", len(data))
	}
	sum := binary.LittleEndian.Uint32(data)
	if got := crcOf(data[4:]); got != sum {
		return nil, fmt.Errorf("durable: manifest checksum mismatch: stored %08x, computed %08x", sum, got)
	}
	var m manifestDTO
	if err := gob.NewDecoder(bytes.NewReader(data[4:])).Decode(&m); err != nil {
		return nil, fmt.Errorf("durable: decoding manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("durable: manifest version %d, want %d", m.Version, manifestVersion)
	}
	return &m, nil
}
