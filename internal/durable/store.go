// Package durable is the crash-consistent on-disk backend for the ivm
// redo log and checkpoint chain: checksummed WAL segment files with
// buffered appends and an explicit sync point, checkpoint base/delta
// segments written via temp-file + atomic rename, and a manifest tying
// the chain together. Recovery (see recover.go) validates every artifact
// before decoding it and degrades down a documented ladder — truncate
// the WAL at the first corrupt frame, drop corrupt delta segments, fall
// back to the base, and as the last rung rebuild from the live tables —
// quarantining damaged artifacts instead of failing the maintainer. The
// byte-level damage it must survive is modeled by fault.Media, which
// wraps the FS with seeded torn writes, bit flips, truncations, dropped
// files, and skipped renames.
package durable

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"abivm/internal/fault"
	"abivm/internal/ivm"
)

// walName returns the segment file name for a segment whose first record
// has the given LSN. The fixed-width hex form makes lexical file-name
// order equal LSN order, so a sorted directory listing is already a
// scan plan.
func walName(first uint64) string {
	return fmt.Sprintf("wal-%016x.log", first)
}

// parseWALName extracts the first-record LSN from a WAL segment name;
// ok is false for names not produced by walName.
func parseWALName(name string) (uint64, bool) {
	const prefix, suffix = "wal-", ".log"
	if len(name) != len(prefix)+16+len(suffix) ||
		!strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	first, err := strconv.ParseUint(name[len(prefix):len(prefix)+16], 16, 64)
	if err != nil {
		return 0, false
	}
	return first, true
}

// baseName / deltaName name checkpoint segments by generation (and, for
// deltas, chain position). Generation numbers only grow, so a stale
// segment surviving a failed sweep can never be confused with a current
// one.
func baseSegName(gen uint64) string {
	return fmt.Sprintf("ckpt-%016x-base.seg", gen)
}

func deltaSegName(gen uint64, idx int) string {
	return fmt.Sprintf("ckpt-%016x-d%03d.seg", gen, idx)
}

// quarantinePrefix is the directory corrupt artifacts are moved into.
const quarantinePrefix = "quarantine/"

// tmpSuffix marks in-flight atomic writes; recovery and sweeps treat
// leftovers as garbage.
const tmpSuffix = ".tmp"

// walSeg is the store's in-memory record of one on-disk WAL segment.
type walSeg struct {
	name  string
	first uint64
}

// Stats is a snapshot of a store's durability counters.
type Stats struct {
	// Syncs and SyncBytes count explicit WAL sync points and the frame
	// bytes they flushed.
	Syncs     int
	SyncBytes int
	// Corruptions counts corrupt or missing artifacts detected during
	// recovery, Quarantined the artifacts moved aside, and Fallbacks the
	// recoveries that degraded to a full refresh from the live tables.
	Corruptions int
	Quarantined int
	Fallbacks   int
}

// Add accumulates another snapshot into s, for aggregating counters
// across a broker's stores.
func (s *Stats) Add(o Stats) {
	s.Syncs += o.Syncs
	s.SyncBytes += o.SyncBytes
	s.Corruptions += o.Corruptions
	s.Quarantined += o.Quarantined
	s.Fallbacks += o.Fallbacks
}

// Store is the durable backend for one maintainer: it implements
// ivm.WALSink (mirroring the redo log into segment files) and
// ivm.ChainStore (mirroring checkpoint segments plus the manifest).
// Appends are buffered in memory; Sync is the durability point, called
// by the broker at its step boundary and implicitly before every
// truncation. A Store survives the (simulated) crash of its maintainer —
// like the in-memory WAL it backs, it is owned by the broker — and
// Recover rebuilds maintainer, WAL, and chain from the file state.
//
// Store is safe for concurrent use, but recovery exactness relies on the
// broker's sequencing: at every crash point the last Sync must have
// covered every append, which the broker guarantees by syncing at step
// entry before it polls for crashes.
type Store struct {
	mu sync.Mutex
	fs FS
	ns string
	ms *ivm.Metrics

	// WAL state: buffered frames not yet on disk (buf, starting at LSN
	// bufFirst), the on-disk segments in LSN order, and three
	// watermarks — lastLSN (last buffered append), ackedLSN (last append
	// covered by a successful Sync: the durability high-water mark that
	// lets recovery detect a torn tail cut exactly on a frame boundary),
	// and baseLSN (the manifest base position, the retention floor that
	// keeps enough log around to replay over a corrupt delta segment).
	buf      []byte
	bufFirst uint64
	rotate   bool
	segs     []walSeg
	lastLSN  uint64
	ackedLSN uint64
	baseLSN  uint64

	// Checkpoint state: the current manifest and its generation counter
	// (monotonic across chain resets and fallbacks).
	man *manifestDTO
	gen uint64

	// qseq uniquifies quarantine names across recoveries.
	qseq  int
	stats Stats
}

// NewStore returns a store for namespace ns over fsys. It performs no
// I/O: a subscription's first checkpoint initializes the directory, and
// Recover adopts whatever state a previous incarnation left behind.
func NewStore(fsys FS, ns string) (*Store, error) {
	if fsys == nil {
		return nil, fmt.Errorf("durable: nil FS")
	}
	return &Store{fs: fsys, ns: ns}, nil
}

// Namespace returns the maintainer namespace the store serves.
//
//lint:ignore mutexheld ns is set at construction and never reassigned
func (st *Store) Namespace() string { return st.ns }

// Media returns the byte-level fault injector sitting between the store
// and its file layer, or nil when the store writes through unfaulted —
// harnesses use it to aggregate injected-damage counts after a run.
func (st *Store) Media() *fault.Media {
	//lint:ignore mutexheld fs is set at construction and never reassigned
	if m, ok := st.fs.(*fault.Media); ok {
		return m
	}
	return nil
}

// SetMetrics attaches the maintainer instrumentation bundle the store
// reports syncs and recovery corruption through; nil detaches.
func (st *Store) SetMetrics(ms *ivm.Metrics) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.ms = ms
}

// Stats returns a snapshot of the durability counters.
func (st *Store) Stats() Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.stats
}

// AppendRecord implements ivm.WALSink: the record is framed into the
// in-memory buffer and becomes durable at the next Sync. LSNs must
// extend the last buffered append contiguously — the WAL assigns them
// that way, and the scanner's continuity check depends on it.
func (st *Store) AppendRecord(rec ivm.WALRecord) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.lastLSN != 0 && rec.LSN != st.lastLSN+1 {
		return fmt.Errorf("durable: append lsn %d does not extend %d", rec.LSN, st.lastLSN)
	}
	buf, err := appendFrame(st.buf, rec)
	if err != nil {
		return fmt.Errorf("durable: framing wal record lsn=%d: %w", rec.LSN, err)
	}
	if st.bufFirst == 0 {
		st.bufFirst = rec.LSN
	}
	st.buf = buf
	st.lastLSN = rec.LSN
	return nil
}

// Sync flushes the buffered frames to the current WAL segment (opening a
// new one after a rotation) — the explicit durability point. On success
// every appended record is on disk; on failure the buffer is retained,
// so a later Sync retries the same bytes.
func (st *Store) Sync() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.syncLocked()
}

func (st *Store) syncLocked() error {
	if len(st.buf) == 0 {
		return nil
	}
	if st.rotate || len(st.segs) == 0 {
		name := walName(st.bufFirst)
		if err := st.fs.AppendFile(name, st.buf); err != nil {
			return fmt.Errorf("durable: syncing wal segment %s: %w", name, err)
		}
		st.segs = append(st.segs, walSeg{name: name, first: st.bufFirst})
	} else {
		name := st.segs[len(st.segs)-1].name
		if err := st.fs.AppendFile(name, st.buf); err != nil {
			return fmt.Errorf("durable: syncing wal segment %s: %w", name, err)
		}
	}
	st.rotate = false
	st.ackedLSN = st.lastLSN
	st.stats.Syncs++
	st.stats.SyncBytes += len(st.buf)
	st.ms.ObserveWALSync(len(st.buf))
	st.buf = st.buf[:0]
	st.bufFirst = 0
	return nil
}

// TruncateRecords implements ivm.WALSink: the log through lsn is no
// longer needed for tip recovery. The store first syncs (a truncation
// follows a checkpoint, a natural durability point), then rotates so the
// next sync opens a fresh segment, then deletes the segments fully
// covered by the retention floor. The floor is min(lsn, manifest base
// LSN), not lsn itself: keeping the log back to the *base* is what lets
// recovery replay over a corrupt delta segment instead of falling back
// to a full refresh.
func (st *Store) TruncateRecords(lsn uint64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.syncLocked(); err != nil {
		return err
	}
	st.rotate = true
	floor := lsn
	if st.man != nil && st.baseLSN < floor {
		floor = st.baseLSN
	}
	// Deleting retained log is never required for correctness, so a
	// failed Remove just ends this round of reclamation — the segment
	// stays on disk and on the books, and the next truncation retries.
	for len(st.segs) > 1 && st.segs[1].first <= floor+1 {
		if err := st.fs.Remove(st.segs[0].name); err != nil {
			return nil
		}
		st.segs = st.segs[1:]
	}
	if len(st.segs) == 1 && st.ackedLSN <= floor {
		if err := st.fs.Remove(st.segs[0].name); err != nil {
			return nil
		}
		st.segs = nil
	}
	return nil
}

// writeAtomic lands data at name via temp-file + rename: readers (and
// recovery) see either the old content or the complete new content,
// never a partial write. The crash between the two steps is exactly the
// window fault.Media's skip-rename models.
func (st *Store) writeAtomic(name string, data []byte) error {
	tmp := name + tmpSuffix
	if err := st.fs.WriteFile(tmp, data); err != nil {
		return err
	}
	return st.fs.Rename(tmp, name)
}

// PutBase implements ivm.ChainStore: the chain reset to a single base
// segment covering lsn. The base lands first (atomically, under a fresh
// generation name), then the manifest flips to it, then superseded
// artifacts are swept — every crash point leaves a manifest whose
// references exist.
func (st *Store) PutBase(seg []byte, lsn uint64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.gen++
	name := baseSegName(st.gen)
	if err := st.writeAtomic(name, seg); err != nil {
		return fmt.Errorf("durable: writing base segment %s: %w", name, err)
	}
	man := &manifestDTO{
		Version:   manifestVersion,
		Namespace: st.ns,
		Gen:       st.gen,
		BaseName:  name,
		BaseCRC:   crcOf(seg),
		BaseLSN:   lsn,
	}
	if err := st.writeManifestLocked(man); err != nil {
		return err
	}
	st.man = man
	st.baseLSN = lsn
	st.sweepLocked()
	return nil
}

// PutDelta implements ivm.ChainStore: one delta segment appended to the
// chain. The segment lands atomically, then the manifest grows its
// reference — a crash in between leaves an unreferenced segment for the
// next sweep, never a manifest pointing at nothing.
func (st *Store) PutDelta(seg []byte, fromLSN, lsn uint64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.man == nil {
		return fmt.Errorf("durable: delta segment before any base")
	}
	name := deltaSegName(st.man.Gen, len(st.man.Deltas))
	if err := st.writeAtomic(name, seg); err != nil {
		return fmt.Errorf("durable: writing delta segment %s: %w", name, err)
	}
	man := *st.man
	man.Deltas = append(append([]segmentRefDTO(nil), st.man.Deltas...),
		segmentRefDTO{Name: name, CRC: crcOf(seg), FromLSN: fromLSN, LSN: lsn})
	if err := st.writeManifestLocked(&man); err != nil {
		return err
	}
	st.man = &man
	return nil
}

// writeManifestLocked lands man atomically at the well-known name.
func (st *Store) writeManifestLocked(man *manifestDTO) error {
	data, err := encodeManifest(man)
	if err != nil {
		return err
	}
	if err := st.writeAtomic(manifestName, data); err != nil {
		return fmt.Errorf("durable: writing manifest: %w", err)
	}
	return nil
}

// sweepLocked removes files no longer reachable from the current
// manifest or WAL bookkeeping: superseded checkpoint generations,
// truncated WAL segments a failed Remove left behind, and leftover temp
// files. Quarantined artifacts are kept — they are the forensic record.
// Sweeping is best-effort: any error just ends the sweep; stale files
// are harmless because generation and LSN naming keeps them from ever
// shadowing a live artifact.
func (st *Store) sweepLocked() {
	names, err := st.fs.List()
	if err != nil {
		return
	}
	keep := make(map[string]bool, 2+len(st.segs))
	keep[manifestName] = true
	if st.man != nil {
		keep[st.man.BaseName] = true
		for _, ref := range st.man.Deltas {
			keep[ref.Name] = true
		}
	}
	for _, seg := range st.segs {
		keep[seg.name] = true
	}
	for _, name := range names {
		if keep[name] || strings.HasPrefix(name, quarantinePrefix) {
			continue
		}
		if err := st.fs.Remove(name); err != nil {
			return
		}
	}
}
