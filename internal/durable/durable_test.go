package durable

import (
	"sort"
	"strconv"
	"strings"
	"testing"

	"abivm/internal/ivm"
	"abivm/internal/storage"
)

// liveDB builds the paper's four-table schema with small seed data —
// the same rig the ivm tests use, rebuilt here because the durable
// layer exercises full maintainer recovery, not just file plumbing.
func liveDB(t *testing.T) *storage.DB {
	t.Helper()
	db := storage.NewDB()
	mk := func(name string, cols []storage.Column, key string) *storage.Table {
		schema, err := storage.NewSchema(name, cols, key)
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := db.CreateTable(schema)
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	region := mk("region", []storage.Column{
		{Name: "regionkey", Type: storage.TInt},
		{Name: "rname", Type: storage.TString},
	}, "regionkey")
	for i, n := range []string{"MIDDLE EAST", "EUROPE"} {
		if err := region.Insert(storage.Row{storage.I(int64(i)), storage.S(n)}); err != nil {
			t.Fatal(err)
		}
	}
	nation := mk("nation", []storage.Column{
		{Name: "nationkey", Type: storage.TInt},
		{Name: "nname", Type: storage.TString},
		{Name: "regionkey", Type: storage.TInt},
	}, "nationkey")
	for i := 0; i < 4; i++ {
		if err := nation.Insert(storage.Row{storage.I(int64(i)), storage.S("N"), storage.I(int64(i % 2))}); err != nil {
			t.Fatal(err)
		}
	}
	supplier := mk("supplier", []storage.Column{
		{Name: "suppkey", Type: storage.TInt},
		{Name: "sname", Type: storage.TString},
		{Name: "nationkey", Type: storage.TInt},
	}, "suppkey")
	for i := 0; i < 6; i++ {
		if err := supplier.Insert(storage.Row{storage.I(int64(i)), storage.S("S"), storage.I(int64(i % 4))}); err != nil {
			t.Fatal(err)
		}
	}
	partsupp := mk("partsupp", []storage.Column{
		{Name: "partkey", Type: storage.TInt},
		{Name: "suppkey", Type: storage.TInt},
		{Name: "supplycost", Type: storage.TFloat},
	}, "partkey")
	for i := 0; i < 12; i++ {
		if err := partsupp.Insert(storage.Row{storage.I(int64(i)), storage.I(int64(i % 6)), storage.F(float64(100 + i))}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

const paperView = `
	SELECT MIN(PS.supplycost)
	FROM partsupp AS PS, supplier AS S, nation AS N, region AS R
	WHERE S.suppkey = PS.suppkey
	AND S.nationkey = N.nationkey
	AND N.regionkey = R.regionkey
	AND R.rname = 'MIDDLE EAST'`

func rowsKey(rows []storage.Row) string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = storage.EncodeKey(r...)
	}
	sort.Strings(keys)
	return strings.Join(keys, "|")
}

// rig is a broker-shaped wiring of one maintainer over a durable store:
// WAL sink and chain store attached before any logged work, base
// checkpoint seeding the directory — the same order pubsub.Subscribe
// uses.
type rig struct {
	db    *storage.DB
	fs    FS
	st    *Store
	m     *ivm.Maintainer
	wal   *ivm.WAL
	chain *ivm.CheckpointChain
	depth int
}

func newRig(t *testing.T, fsys FS, depth int) *rig {
	t.Helper()
	db := liveDB(t)
	st, err := NewStore(fsys, "sub")
	if err != nil {
		t.Fatal(err)
	}
	m, err := ivm.New(db, paperView)
	if err != nil {
		t.Fatal(err)
	}
	m.SetNamespace("sub")
	wal := ivm.NewWAL()
	m.AttachWAL(wal)
	chain := ivm.NewCheckpointChain(depth)
	wal.SetSink(st)
	chain.SetStore(st)
	if err := chain.Checkpoint(m); err != nil {
		t.Fatal(err)
	}
	return &rig{db: db, fs: fsys, st: st, m: m, wal: wal, chain: chain, depth: depth}
}

// apply feeds n partsupp inserts with keys starting at base.
func (r *rig) apply(t *testing.T, base, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		k := int64(base + i)
		mod := ivm.Insert("PS", storage.Row{storage.I(k), storage.I(k % 6), storage.F(float64(50 + k))})
		if err := r.m.Apply(mod); err != nil {
			t.Fatal(err)
		}
	}
}

func (r *rig) drain(t *testing.T, alias string, k int) {
	t.Helper()
	if err := r.m.ProcessBatch(alias, k); err != nil {
		t.Fatal(err)
	}
}

func (r *rig) checkpoint(t *testing.T) {
	t.Helper()
	if err := r.chain.Checkpoint(r.m); err != nil {
		t.Fatal(err)
	}
	if err := r.wal.TruncateThrough(r.chain.TipLSN()); err != nil {
		t.Fatal(err)
	}
}

func (r *rig) sync(t *testing.T) {
	t.Helper()
	if err := r.st.Sync(); err != nil {
		t.Fatal(err)
	}
}

// state captures everything recovery must reproduce byte-for-byte.
type rigState struct {
	pending string
	view    string
	lastLSN uint64
	walLen  int
	tipLSN  uint64
}

func (r *rig) snapshot() rigState {
	return rigState{
		pending: intsKey(r.m.Pending()),
		view:    rowsKey(r.m.Result()),
		lastLSN: r.wal.LastLSN(),
		walLen:  r.wal.Len(),
		tipLSN:  r.chain.TipLSN(),
	}
}

func intsKey(v []int) string {
	parts := make([]string, len(v))
	for i, n := range v {
		parts[i] = strconv.Itoa(n)
	}
	return strings.Join(parts, ",")
}

// crash simulates losing the maintainer, WAL, and chain (the store,
// like the broker-owned WAL it replaces, survives) and recovers from
// disk.
func (r *rig) crash(t *testing.T) *Recovery {
	t.Helper()
	rec, err := r.st.Recover(r.db, paperView, r.depth, nil)
	if err != nil {
		t.Fatal(err)
	}
	r.m, r.wal, r.chain = rec.M, rec.WAL, rec.Chain
	return rec
}

// assertExact crashes and verifies byte-identical recovery.
func (r *rig) assertExact(t *testing.T, wantEvents bool) *Recovery {
	t.Helper()
	want := r.snapshot()
	rec := r.crash(t)
	if rec.Fallback {
		t.Fatalf("recovery fell back: %v", rec.Corruptions)
	}
	if wantEvents && len(rec.Corruptions) == 0 {
		t.Fatal("expected corruption events, got none")
	}
	if !wantEvents && len(rec.Corruptions) > 0 {
		t.Fatalf("unexpected corruption events: %v", rec.Corruptions)
	}
	if got := r.snapshot(); got != want {
		t.Fatalf("recovered state %+v, want %+v", got, want)
	}
	return rec
}

func TestStoreRecoverExactCleanDisk(t *testing.T) {
	r := newRig(t, NewMemFS(), 4)
	r.apply(t, 100, 6)
	r.drain(t, "PS", 2)
	r.sync(t)
	r.assertExact(t, false)

	// Keep working after recovery: more arrivals, a delta checkpoint,
	// un-checkpointed tail, another crash.
	r.apply(t, 200, 4)
	r.drain(t, "PS", 3)
	r.checkpoint(t)
	r.apply(t, 300, 2)
	r.sync(t)
	r.assertExact(t, false)
}

func TestStoreRecoverAcrossCheckpointsAndTruncation(t *testing.T) {
	r := newRig(t, NewMemFS(), 2)
	for round := 0; round < 6; round++ {
		r.apply(t, 100*(round+1), 3)
		r.drain(t, "PS", 2)
		r.checkpoint(t)
	}
	r.apply(t, 900, 2)
	r.sync(t)
	r.assertExact(t, false)
	if err := r.m.Refresh(); err != nil {
		t.Fatal(err)
	}
	fresh, err := r.m.RecomputeFresh()
	if err != nil {
		t.Fatal(err)
	}
	if rowsKey(r.m.Result()) != rowsKey(fresh) {
		t.Fatal("recovered maintainer diverged from ground truth")
	}
}

// corruptFile flips one byte of a stored file at off (negative counts
// from the end).
func corruptFile(t *testing.T, fsys FS, name string, off int) {
	t.Helper()
	data, err := fsys.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if off < 0 {
		off += len(data)
	}
	data[off] ^= 0x40
	if err := fsys.WriteFile(name, data); err != nil {
		t.Fatal(err)
	}
}

// findFile returns the stored file names matching a prefix.
func findFiles(t *testing.T, fsys FS, prefix string) []string {
	t.Helper()
	names, err := fsys.List()
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, n := range names {
		if strings.HasPrefix(n, prefix) {
			out = append(out, n)
		}
	}
	return out
}

// deltaRig builds a store whose disk holds a base (lsn 3), one delta
// segment, and a retained WAL segment spanning the delta's range — the
// setup where the base-LSN retention floor matters.
func deltaRig(t *testing.T) *rig {
	r := newRig(t, NewMemFS(), 4)
	r.apply(t, 100, 3)
	r.checkpoint(t) // first delta checkpoint after the seed base
	r.apply(t, 200, 3)
	r.drain(t, "PS", 2)
	r.checkpoint(t)
	r.sync(t)
	return r
}

func TestRecoverCorruptDeltaReplaysRetainedWAL(t *testing.T) {
	r := deltaRig(t)
	deltas := findFiles(t, r.fs, "ckpt-")
	var target string
	for _, n := range deltas {
		if strings.Contains(n, "-d") {
			target = n
		}
	}
	if target == "" {
		t.Fatalf("no delta segment on disk: %v", deltas)
	}
	corruptFile(t, r.fs, target, -3)

	// The maintainer comes back byte-identical, but through rung 2: the
	// chain tip regresses to the surviving prefix and the retained WAL
	// suffix is replayed (and stays retained) instead.
	wantPending, wantView, wantLSN := intsKey(r.m.Pending()), rowsKey(r.m.Result()), r.wal.LastLSN()
	rec := r.crash(t)
	if rec.Fallback {
		t.Fatalf("corrupt delta forced fallback: %v", rec.Corruptions)
	}
	if intsKey(r.m.Pending()) != wantPending || rowsKey(r.m.Result()) != wantView || r.wal.LastLSN() != wantLSN {
		t.Fatal("degraded-chain recovery diverged from crashed maintainer")
	}
	if r.chain.TipLSN() >= wantLSN {
		t.Fatalf("chain tip %d did not regress past the dropped delta", r.chain.TipLSN())
	}
	if len(rec.Corruptions) == 0 || rec.Corruptions[0].Artifact != target {
		t.Fatalf("corruption blamed %v, want %s", rec.Corruptions, target)
	}
	if q := findFiles(t, r.fs, quarantinePrefix); len(q) == 0 {
		t.Fatal("corrupt delta was not quarantined")
	}
	if st := r.st.Stats(); st.Corruptions == 0 || st.Quarantined == 0 || st.Fallbacks != 0 {
		t.Fatalf("stats %+v, want corruption+quarantine without fallback", st)
	}
}

func TestRecoverCorruptWALFrameTruncatesAtTear(t *testing.T) {
	r := deltaRig(t)
	wals := findFiles(t, r.fs, "wal-")
	if len(wals) == 0 {
		t.Fatal("no retained wal segment")
	}
	// Damage the last retained segment's tail frame. The records are
	// covered by the checkpoint chain, so recovery truncates the log at
	// the tear and is still exact.
	corruptFile(t, r.fs, wals[len(wals)-1], -2)
	r.assertExact(t, true)
}

func TestRecoverCorruptBaseFallsBackToFullRefresh(t *testing.T) {
	r := deltaRig(t)
	// Un-checkpointed pending work that a full refresh legitimately
	// loses: the fallback rebuilds from the live tables instead.
	r.apply(t, 300, 2)
	r.sync(t)
	base := findFiles(t, r.fs, "ckpt-")
	sort.Strings(base)
	var target string
	for _, n := range base {
		if strings.HasSuffix(n, "-base.seg") {
			target = n
		}
	}
	corruptFile(t, r.fs, target, 10)

	rec := r.crash(t)
	if !rec.Fallback {
		t.Fatalf("corrupt base did not force fallback: %v", rec.Corruptions)
	}
	if len(rec.Corruptions) == 0 {
		t.Fatal("fallback reported no corruption")
	}
	if st := r.st.Stats(); st.Fallbacks != 1 {
		t.Fatalf("stats %+v, want one fallback", st)
	}
	// The fallback maintainer reflects the live tables exactly and the
	// store is re-seeded: the next crash recovers exactly again.
	fresh, err := r.m.RecomputeFresh()
	if err != nil {
		t.Fatal(err)
	}
	if rowsKey(r.m.Result()) != rowsKey(fresh) {
		t.Fatal("fallback maintainer does not match live tables")
	}
	r.apply(t, 400, 3)
	r.drain(t, "PS", 1)
	r.sync(t)
	r.assertExact(t, false)
}

func TestRecoverMissingManifestFallsBack(t *testing.T) {
	r := deltaRig(t)
	if err := r.fs.Remove(manifestName); err != nil {
		t.Fatal(err)
	}
	rec := r.crash(t)
	if !rec.Fallback {
		t.Fatal("missing manifest did not force fallback")
	}
	r.apply(t, 500, 2)
	r.sync(t)
	r.assertExact(t, false)
}

func TestRecoverSilentTailLossDetectedByWatermark(t *testing.T) {
	r := newRig(t, NewMemFS(), 4)
	r.apply(t, 100, 4)
	r.drain(t, "PS", 2)
	r.sync(t)
	// Cut the log at a frame boundary — the tear a checksum scan cannot
	// see. Only the acknowledged-LSN watermark catches it.
	wals := findFiles(t, r.fs, "wal-")
	data, err := r.fs.ReadFile(wals[0])
	if err != nil {
		t.Fatal(err)
	}
	_, boundary, err := readFrame(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.fs.WriteFile(wals[0], data[:boundary]); err != nil {
		t.Fatal(err)
	}
	rec := r.crash(t)
	if !rec.Fallback {
		t.Fatal("boundary-cut tail loss was not detected")
	}
	found := false
	for _, c := range rec.Corruptions {
		if strings.Contains(c.Detail, "silent tail loss") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no silent-tail-loss event in %v", rec.Corruptions)
	}
}

func TestTruncateRetainsBackToBaseLSN(t *testing.T) {
	r := deltaRig(t)
	// The chain tip is past the base, so truncation must keep the
	// segments covering (baseLSN, tip] even though the in-memory WAL
	// dropped them.
	if len(findFiles(t, r.fs, "wal-")) == 0 {
		t.Fatal("truncation deleted the log back past the manifest base")
	}
	// Compacting moves the base to the tip; the next truncation may then
	// reclaim everything.
	if err := r.chain.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := r.wal.TruncateThrough(r.chain.TipLSN()); err != nil {
		t.Fatal(err)
	}
	if got := findFiles(t, r.fs, "wal-"); len(got) != 0 {
		t.Fatalf("fully-covered segments retained after compaction: %v", got)
	}
}

func TestDirOpenerEndToEnd(t *testing.T) {
	open := DirOpener(t.TempDir())
	st, err := open("shard0/orders")
	if err != nil {
		t.Fatal(err)
	}
	db := liveDB(t)
	m, err := ivm.New(db, paperView)
	if err != nil {
		t.Fatal(err)
	}
	m.SetNamespace("shard0/orders")
	wal := ivm.NewWAL()
	m.AttachWAL(wal)
	chain := ivm.NewCheckpointChain(4)
	wal.SetSink(st)
	chain.SetStore(st)
	if err := chain.Checkpoint(m); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := m.Apply(ivm.Insert("PS", storage.Row{storage.I(int64(900 + i)), storage.I(1), storage.F(42)})); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.ProcessBatch("PS", 3); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	wantView := rowsKey(m.Result())
	rec, err := st.Recover(db, paperView, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Fallback {
		t.Fatalf("clean DirFS recovery fell back: %v", rec.Corruptions)
	}
	if got := rowsKey(rec.M.Result()); got != wantView {
		t.Fatalf("recovered view %s, want %s", got, wantView)
	}
}
