package durable

import (
	"hash/fnv"
	"path"

	"abivm/internal/fault"
)

// Opener constructs the durable store for one maintainer namespace; the
// broker calls it at Subscribe time. Namespaces may contain slashes
// ("shard0/orders"), which map to subdirectories.
type Opener func(ns string) (*Store, error)

// MemOpener returns an Opener over per-namespace in-memory file
// systems — hermetic disk-path behavior without real files or media
// faults.
func MemOpener() Opener {
	return func(ns string) (*Store, error) {
		return NewStore(NewMemFS(), ns)
	}
}

// DirOpener returns an Opener rooting each namespace's store in its own
// subdirectory of root.
func DirOpener(root string) Opener {
	return func(ns string) (*Store, error) {
		fsys, err := NewDirFS(path.Join(root, ns))
		if err != nil {
			return nil, err
		}
		return NewStore(fsys, ns)
	}
}

// FaultyDirOpener is DirOpener with a seeded fault.Media between the
// store and the directory, injecting byte-level media damage. Each
// namespace gets its own injector seeded from seed and the namespace
// name, so the damage schedule of one store is a pure function of its
// own operation sequence — independent of how concurrently-scheduled
// stores interleave.
func FaultyDirOpener(root string, seed int64, rates fault.MediaRates) Opener {
	return func(ns string) (*Store, error) {
		fsys, err := NewDirFS(path.Join(root, ns))
		if err != nil {
			return nil, err
		}
		return NewStore(fault.NewMedia(fsys, mediaSeed(seed, ns), rates), ns)
	}
}

// FaultyMemOpener is FaultyDirOpener over per-namespace in-memory file
// systems — the hermetic variant the chaos tests use.
func FaultyMemOpener(seed int64, rates fault.MediaRates) Opener {
	return func(ns string) (*Store, error) {
		return NewStore(fault.NewMedia(NewMemFS(), mediaSeed(seed, ns), rates), ns)
	}
}

// mediaSeed derives a per-namespace injector seed.
func mediaSeed(seed int64, ns string) int64 {
	h := fnv.New64a()
	//lint:ignore errdrop fnv.Write cannot fail
	h.Write([]byte(ns))
	return seed ^ int64(h.Sum64())
}
