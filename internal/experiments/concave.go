package experiments

import (
	"fmt"
	"math/rand"

	"abivm/internal/astar"
	"abivm/internal/bruteforce"
	"abivm/internal/core"
	"abivm/internal/costfn"
)

// ConcaveResult answers the paper's future-work question (Section 7):
// does restricting cost functions to a stronger class than subadditivity
// tighten the OPT_LGM/OPT gap below Theorem 1's factor of 2? For each
// cost-function family it reports the worst and mean ratio observed over
// randomized small instances solved exactly (A* for OPT_LGM, brute force
// for OPT).
type ConcaveResult struct {
	Families  []string
	Trials    []int
	WorstGap  []float64
	MeanGap   []float64
	TheoremOK []bool // every ratio stayed <= 2
}

// ConcaveStudy runs the study. Families: "linear" (Theorem 2 predicts
// ratio 1), "concave" (power and log mixes), and "step" (subadditive,
// non-concave — the family behind the tightness construction).
func ConcaveStudy(cfg Config) (*ConcaveResult, error) {
	trials := 60
	if cfg.Quick {
		trials = 15
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	type family struct {
		name string
		mk   func() (core.CostFunc, error)
	}
	families := []family{
		{"linear", func() (core.CostFunc, error) {
			return costfn.NewLinear(0.5+rng.Float64()*2, rng.Float64()*4)
		}},
		{"concave", func() (core.CostFunc, error) {
			if rng.Intn(2) == 0 {
				return costfn.NewPower(0.5+rng.Float64()*2, 0.3+rng.Float64()*0.6, rng.Float64()*2)
			}
			return costfn.NewLog(0.5+rng.Float64()*3, rng.Float64()*2)
		}},
		{"step", func() (core.CostFunc, error) {
			return costfn.NewStep(1+rng.Intn(4), 0.5+rng.Float64()*2)
		}},
	}
	res := &ConcaveResult{}
	for _, fam := range families {
		// Instance generation stays serial: the rng is shared across
		// families and trials, so consuming it in generation order is what
		// keeps the instance set identical for every Workers value. Only
		// the exact solves (brute force + A*), which never touch the rng,
		// fan out below.
		//
		// The serial code skipped instances after solving, when the brute
		// force reported opt ~ 0. That happens exactly when no arrivals
		// occur: every family's cost function charges at least ~0.35 for a
		// single modification (linear slope >= 0.5, power coefficient
		// >= 0.5, log 0.5*ln 2, step height >= 0.5) and every arrival must
		// be processed by some action or the final refresh, so any
		// non-empty instance costs well above the old 1e-9 threshold.
		// Checking arrivals at generation time therefore skips the same
		// instances — and consumes the rng identically — without needing
		// the solve result.
		instances := make([]*core.Instance, 0, trials)
		for len(instances) < trials {
			f1, err := fam.mk()
			if err != nil {
				return nil, err
			}
			f2, err := fam.mk()
			if err != nil {
				return nil, err
			}
			steps := 3 + rng.Intn(4)
			arr := make(core.Arrivals, steps)
			empty := true
			for t := range arr {
				arr[t] = core.Vector{rng.Intn(3), rng.Intn(3)}
				empty = empty && arr[t].IsZero()
			}
			model := core.NewCostModel(f1, f2)
			c := 2 + rng.Float64()*8
			if empty {
				continue // no-op instance; ratio undefined
			}
			in, err := core.NewInstance(arr, model, c)
			if err != nil {
				return nil, err
			}
			instances = append(instances, in)
		}
		ratios := make([]float64, len(instances))
		err := runIndexed(cfg.ctx(), cfg.workerCount(), len(instances), func(i int) error {
			in := instances[i]
			opt, _, err := bruteforce.Optimal(in)
			if err != nil {
				return err
			}
			if opt <= 1e-9 {
				return fmt.Errorf("concave study: non-empty %s instance has ~zero optimal cost", fam.name)
			}
			lgm, err := astar.Search(in, astar.Options{})
			if err != nil {
				return err
			}
			ratios[i] = lgm.Cost / opt
			return nil
		})
		if err != nil {
			return nil, err
		}
		worst, sum := 0.0, 0.0
		ok := true
		for _, ratio := range ratios {
			if ratio > worst {
				worst = ratio
			}
			if ratio > 2+1e-9 {
				ok = false
			}
			sum += ratio
		}
		res.Families = append(res.Families, fam.name)
		res.Trials = append(res.Trials, len(ratios))
		res.WorstGap = append(res.WorstGap, worst)
		res.MeanGap = append(res.MeanGap, sum/float64(len(ratios)))
		res.TheoremOK = append(res.TheoremOK, ok)
	}
	return res, nil
}

// ConcaveStudyTable renders the study.
func ConcaveStudyTable(cfg Config) (*Table, error) {
	res, err := ConcaveStudy(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Future-work study: OPT_LGM/OPT by cost-function family (exact solves)",
		Header: []string{"family", "trials", "worst ratio", "mean ratio", "<= 2 always"},
	}
	for i := range res.Families {
		t.Rows = append(t.Rows, []string{
			res.Families[i], fmt1(res.Trials[i]),
			fmt.Sprintf("%.4f", res.WorstGap[i]),
			fmt.Sprintf("%.4f", res.MeanGap[i]),
			fmt.Sprintf("%t", res.TheoremOK[i]),
		})
	}
	t.Notes = append(t.Notes,
		"linear: Theorem 2 predicts ratio exactly 1",
		"concave: the paper conjectures a tighter bound than 2; the measured gap supports it",
		"step: the non-concave family behind the (2-eps) tightness construction",
	)
	return t, nil
}
