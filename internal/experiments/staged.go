package experiments

import (
	"fmt"

	"abivm/internal/arrivals"
	"abivm/internal/costfn"
	"abivm/internal/staged"
)

// StagedResult compares the paper's whole-pipeline action model against
// operator-level staging (future work, Section 7, third item) on the
// Supplier maintenance pipeline: stage A is the selective prefix
// ΔS ⋈ Nation ⋈ Region (steep per tuple, no setup, selectivity 1/5 —
// one region of five), stage B is the suffix join against the large
// unindexed PartSupp table (flat, large setup).
type StagedResult struct {
	Constraints []float64
	SingleStage []float64
	TwoStage    []float64
	Gain        []float64 // SingleStage / TwoStage
}

// Staged runs the staged-batching study over a sweep of constraints.
func Staged(cfg Config) (*StagedResult, error) {
	fA, err := costfn.NewLinear(0.2, 0.01)
	if err != nil {
		return nil, err
	}
	fB, err := costfn.NewLinear(0.05, 8)
	if err != nil {
		return nil, err
	}
	model, err := staged.NewModel(staged.TableCosts{A: fA, B: fB, Selectivity: 0.2})
	if err != nil {
		return nil, err
	}
	steps := 1000
	if cfg.Quick {
		steps = 200
	}
	seq := arrivals.UniformSequence(steps, 2)
	res := &StagedResult{}
	for _, c := range []float64{10, 12, 16, 24, 40} {
		single, err := staged.Run(model, staged.NewSingleStage(model, c), seq, c)
		if err != nil {
			return nil, err
		}
		two, err := staged.Run(model, staged.NewTwoStage(model, c), seq, c)
		if err != nil {
			return nil, err
		}
		res.Constraints = append(res.Constraints, c)
		res.SingleStage = append(res.SingleStage, single.TotalCost)
		res.TwoStage = append(res.TwoStage, two.TotalCost)
		res.Gain = append(res.Gain, single.TotalCost/two.TotalCost)
	}
	return res, nil
}

// StagedTable renders the study.
func StagedTable(cfg Config) (*Table, error) {
	res, err := Staged(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Future-work study: operator-level staged batching (Supplier pipeline)",
		Header: []string{"C", "single-stage", "two-stage", "gain"},
	}
	for i := range res.Constraints {
		t.Rows = append(t.Rows, []string{
			f2(res.Constraints[i]), f2(res.SingleStage[i]), f2(res.TwoStage[i]),
			fmt.Sprintf("%.2fx", res.Gain[i]),
		})
	}
	t.Notes = append(t.Notes,
		"stage A: delta x Nation x Region (steep, setup-free, selectivity 0.2); stage B: join vs PartSupp (flat, setup 8)",
		"staging drains the cheap selective prefix eagerly and batches only the expensive suffix",
	)
	return t, nil
}
