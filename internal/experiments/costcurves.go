package experiments

import (
	"abivm/internal/costmodel"
	"abivm/internal/tpcr"
)

// Fig1Result holds the cost curves of the Figure 1 example: a two-way
// join R ⋈ S where R = PartSupp is indexed on the join attribute and
// S = Supplier is not. c_ΔR (processing PartSupp deltas) is dominated by
// scanning/building over the unindexed Supplier side — roughly flat in
// the batch size — while c_ΔS (processing Supplier deltas) probes R's
// index and grows linearly. The crossover is what makes the asymmetric
// plan of Section 1 profitable.
type Fig1Result struct {
	K              []int
	CostDeltaR     []float64  // c_ΔR: PartSupp-delta batches
	CostDeltaS     []float64  // c_ΔS: Supplier-delta batches
	LinR, LinS     [2]float64 // fitted (a, b) per curve
	CrossoverBatch int        // first k where c_ΔS exceeds c_ΔR; -1 if none
}

// Fig1 measures the Figure 1 cost curves.
func Fig1(cfg Config) (*Fig1Result, error) {
	m, gen, err := setupView(cfg, tpcr.JoinView, false /* supplier unindexed */, true /* partsupp indexed */)
	if err != nil {
		return nil, err
	}
	ks := batchSweep(cfg.Quick)
	ps, s, err := measurePair(m, gen, ks)
	if err != nil {
		return nil, err
	}
	res := &Fig1Result{K: ks, CostDeltaR: ps.Cost, CostDeltaS: s.Cost, CrossoverBatch: -1}
	linR, err := ps.FitLinear()
	if err != nil {
		return nil, err
	}
	linS, err := s.FitLinear()
	if err != nil {
		return nil, err
	}
	res.LinR = [2]float64{linR.A, linR.B}
	res.LinS = [2]float64{linS.A, linS.B}
	for i := range ks {
		if res.CostDeltaS[i] > res.CostDeltaR[i] {
			res.CrossoverBatch = ks[i]
			break
		}
	}
	return res, nil
}

// Fig1Table renders Figure 1 as a table.
func Fig1Table(cfg Config) (*Table, error) {
	res, err := Fig1(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 1: cost functions c_dR and c_dS for R(PartSupp, indexed) JOIN S(Supplier)",
		Header: []string{"batch k", "c_dR (pseudo-ms)", "c_dS (pseudo-ms)"},
	}
	for i, k := range res.K {
		t.Rows = append(t.Rows, []string{fmt1(k), f2(res.CostDeltaR[i]), f2(res.CostDeltaS[i])})
	}
	t.Notes = append(t.Notes,
		"paper shape: c_dR roughly flat (scan of unindexed S dominates); c_dS linear (probes R's index)",
		"fit c_dR ~ "+f4(res.LinR[0])+"*k + "+f2(res.LinR[1])+
			"; c_dS ~ "+f4(res.LinS[0])+"*k + "+f2(res.LinS[1]),
		"batches larger than the scaled supplier key space saturate c_dS (net deltas collapse)",
	)
	if res.CrossoverBatch >= 0 {
		t.Notes = append(t.Notes, "curves cross near k = "+fmt1(res.CrossoverBatch))
	}
	return t, nil
}

// Fig4Result holds the measured cost functions of the paper's four-way
// MIN view: both curves follow linear trends, with Supplier updates more
// expensive because their delta join hits the much larger PartSupp table
// without an index.
type Fig4Result struct {
	K      []int
	CostPS []float64
	CostS  []float64
	LinPS  [2]float64 // fitted (a, b)
	LinS   [2]float64
	MeasPS *costmodel.Measurement
	MeasS  *costmodel.Measurement
}

// Fig4 measures the Figure 4 cost curves on the paper's view.
func Fig4(cfg Config) (*Fig4Result, error) {
	m, gen, err := setupView(cfg, tpcr.PaperView, true /* supplier indexed */, false /* partsupp unindexed */)
	if err != nil {
		return nil, err
	}
	ks := batchSweep(cfg.Quick)
	ps, s, err := measurePair(m, gen, ks)
	if err != nil {
		return nil, err
	}
	res := &Fig4Result{K: ks, CostPS: ps.Cost, CostS: s.Cost, MeasPS: ps, MeasS: s}
	linPS, err := ps.FitLinear()
	if err != nil {
		return nil, err
	}
	linS, err := s.FitLinear()
	if err != nil {
		return nil, err
	}
	res.LinPS = [2]float64{linPS.A, linPS.B}
	res.LinS = [2]float64{linS.A, linS.B}
	return res, nil
}

// Fig4Table renders Figure 4 as a table.
func Fig4Table(cfg Config) (*Table, error) {
	res, err := Fig4(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 4: batch maintenance cost of the TPC-R MIN view (PartSupp vs Supplier updates)",
		Header: []string{"batch k", "PartSupp batch (pseudo-ms)", "Supplier batch (pseudo-ms)"},
	}
	for i, k := range res.K {
		t.Rows = append(t.Rows, []string{fmt1(k), f2(res.CostPS[i]), f2(res.CostS[i])})
	}
	t.Notes = append(t.Notes,
		"paper shape: both curves approximately linear; Supplier updates cost more (PartSupp join side is large and unindexed)",
		"fit PartSupp ~ "+f4(res.LinPS[0])+"*k + "+f2(res.LinPS[1])+
			"; Supplier ~ "+f4(res.LinS[0])+"*k + "+f2(res.LinS[1]),
		"batches larger than the scaled supplier key space saturate the Supplier curve (net deltas collapse)",
	)
	return t, nil
}
