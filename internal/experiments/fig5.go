package experiments

import (
	"fmt"
	"math"
	"sync"

	"abivm/internal/astar"
	"abivm/internal/core"
	"abivm/internal/costmodel"
	"abivm/internal/ivm"
	"abivm/internal/policy"
	"abivm/internal/sim"
	"abivm/internal/storage"
	"abivm/internal/tpcr"
)

// modelCacheKey identifies a fig4Model result: the model is a pure
// function of these four inputs (generation and measurement are fully
// seeded), so equal keys always yield identical models.
type modelCacheKey struct {
	scale float64
	seed  int64
	quick bool
	fit   string
}

var (
	modelCacheMu sync.Mutex
	modelCache   = map[modelCacheKey]*core.CostModel{}
)

// fig4Model returns the paper-view cost model for the configuration,
// memoized per (Scale, Seed, Quick, fit). Profiling shows the TPC-R
// generation + curve measurement behind it dominates the figure suite
// (~70% of BenchmarkFig6VaryRefresh), and Fig5/Fig6/Fig7/Policies all
// rebuild the identical model; CostModel is immutable after
// construction, so one shared instance serves every caller, including
// concurrent parallel-sweep workers. Errors are not cached.
func fig4Model(cfg Config, fit string) (*core.CostModel, error) {
	key := modelCacheKey{scale: cfg.Scale, seed: cfg.Seed, quick: cfg.Quick, fit: fit}
	modelCacheMu.Lock()
	defer modelCacheMu.Unlock()
	if m, ok := modelCache[key]; ok {
		return m, nil
	}
	m, err := fig4ModelUncached(cfg, fit)
	if err != nil {
		return nil, err
	}
	modelCache[key] = m
	return m, nil
}

// fig4ModelUncached measures the paper-view cost curves and returns a
// cost model (fit = "linear" or "piecewise").
func fig4ModelUncached(cfg Config, fit string) (*core.CostModel, error) {
	m, gen, err := setupView(cfg, tpcr.PaperView, true, false)
	if err != nil {
		return nil, err
	}
	ks := []int{1, 5, 10, 20, 40, 80, 120, 160, 240}
	if cfg.Quick {
		ks = []int{1, 5, 15, 30, 60, 90}
	}
	ps, s, err := measurePair(m, gen, ks)
	if err != nil {
		return nil, err
	}
	return costmodel.Model(fit, ps, s)
}

// chooseC picks the response-time constraint as the refresh cost of a
// balanced 40+40 backlog (12+12 in quick mode): large enough that both
// tables can batch, small enough that a steady 1+1 stream forces regular
// actions — mirroring the role C=12s plays against the paper's measured
// cost scale.
func chooseC(model *core.CostModel, quick bool) float64 {
	k := 80
	if quick {
		k = 30
	}
	return model.Total(core.Vector{k, k})
}

// engineReplay executes a maintenance plan against a freshly generated
// engine and returns the actual pseudo-ms cost of all its actions.
// Arrivals are (PS, S) update counts per step; seeds match setupView so
// the replay sees the same database and update stream every time.
func engineReplay(cfg Config, arrivalSeq core.Arrivals, plan core.Plan) (float64, error) {
	m, gen, err := setupView(cfg, tpcr.PaperView, true, false)
	if err != nil {
		return 0, err
	}
	w := storage.DefaultWeights()
	total := 0.0
	for t, d := range arrivalSeq {
		var mods []ivm.Mod
		for i := 0; i < d[0]; i++ {
			mods = append(mods, gen.PartSuppUpdate())
		}
		for i := 0; i < d[1]; i++ {
			mods = append(mods, gen.SupplierUpdate())
		}
		if err := m.Apply(mods...); err != nil {
			return 0, err
		}
		act := plan[t]
		if act == nil || act.IsZero() {
			continue
		}
		before := *m.Stats()
		if act[0] > 0 {
			if err := m.ProcessBatch("PS", act[0]); err != nil {
				return 0, err
			}
		}
		if act[1] > 0 {
			if err := m.ProcessBatch("S", act[1]); err != nil {
				return 0, err
			}
		}
		total += w.Cost(m.Stats().Sub(before))
	}
	return total, nil
}

// Fig5Result compares simulated plan costs (via measured cost functions)
// with actual engine execution costs for three plans.
type Fig5Result struct {
	Plans     []string
	Simulated []float64
	Actual    []float64
	DiffPct   []float64
}

// Fig5 runs the validation experiment.
func Fig5(cfg Config) (*Fig5Result, error) {
	model, err := fig4Model(cfg, "piecewise")
	if err != nil {
		return nil, err
	}
	steps := 200
	if cfg.Quick {
		steps = 80
	}
	arrivalSeq := make(core.Arrivals, steps)
	for t := range arrivalSeq {
		arrivalSeq[t] = core.Vector{1, 1}
	}
	c := chooseC(model, cfg.Quick)
	in, err := core.NewInstance(arrivalSeq, model, c)
	if err != nil {
		return nil, err
	}

	naive := in.NaivePlan()
	opt, err := astar.Search(in, astar.Options{})
	if err != nil {
		return nil, err
	}
	onlineRun, err := sim.Run(in, policy.NewOnline(model, c, nil), sim.Options{})
	if err != nil {
		return nil, err
	}

	res := &Fig5Result{}
	for _, entry := range []struct {
		name string
		plan core.Plan
	}{
		{"NAIVE", naive},
		{"ONLINE", onlineRun.Plan},
		{"OPT-LGM", opt.Plan},
	} {
		simCost := in.Cost(entry.plan)
		actCost, err := engineReplay(cfg, arrivalSeq, entry.plan)
		if err != nil {
			return nil, err
		}
		diff := 0.0
		if actCost != 0 {
			diff = 100 * math.Abs(simCost-actCost) / actCost
		}
		res.Plans = append(res.Plans, entry.name)
		res.Simulated = append(res.Simulated, simCost)
		res.Actual = append(res.Actual, actCost)
		res.DiffPct = append(res.DiffPct, diff)
	}
	return res, nil
}

// Fig5Table renders the validation experiment.
func Fig5Table(cfg Config) (*Table, error) {
	res, err := Fig5(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 5: simulation validation (simulated vs actual plan cost, pseudo-ms)",
		Header: []string{"plan", "simulated", "actual", "diff %"},
	}
	for i := range res.Plans {
		t.Rows = append(t.Rows, []string{
			res.Plans[i], f2(res.Simulated[i]), f2(res.Actual[i]), fmt.Sprintf("%.1f", res.DiffPct[i]),
		})
	}
	t.Notes = append(t.Notes, "paper shape: negligible difference between simulated and actual costs")
	return t, nil
}
