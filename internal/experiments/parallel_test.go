package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// renderWith runs the given table builders under the given worker count
// and returns the concatenated rendered output.
func renderWith(t *testing.T, workers int, builders ...func(Config) (*Table, error)) []byte {
	t.Helper()
	cfg := Config{Scale: 0.002, Seed: 1, Quick: true, Workers: workers}
	var buf bytes.Buffer
	for _, b := range builders {
		tbl, err := b(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tbl.Render(&buf)
	}
	return buf.Bytes()
}

// TestParallelOutputByteIdentical is the headline guarantee of the
// parallel sweeps: for the same seed, -workers=4 must render exactly
// the bytes -workers=1 renders, for every parallelized experiment.
func TestParallelOutputByteIdentical(t *testing.T) {
	builders := []func(Config) (*Table, error){Fig6Table, Fig7Table, ConcaveStudyTable}
	serial := renderWith(t, 1, builders...)
	parallel := renderWith(t, 4, builders...)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("parallel output diverged from serial:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", serial, parallel)
	}
}

func TestRunIndexedCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 53
		var hits [n]atomic.Int32
		if err := runIndexed(workers, n, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestRunIndexedPropagatesFirstError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := runIndexed(workers, 20, func(i int) error {
			if i == 7 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: got %v, want %v", workers, err, boom)
		}
	}
}

// TestRunIndexedHammer drives the pool hard with many tiny tasks and
// more workers than tasks deserve; under -race this shakes out any
// unsynchronized access in the scheduler or in result collection.
func TestRunIndexedHammer(t *testing.T) {
	for round := 0; round < 50; round++ {
		const n = 200
		results := make([]int, n)
		if err := runIndexed(32, n, func(i int) error {
			results[i] = i * i
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, v := range results {
			if v != i*i {
				t.Fatalf("round %d: results[%d] = %d", round, i, v)
			}
		}
	}
}

// TestConcaveStudyParallelMatchesSerial hammers the full experiment
// (shared rng in generation, parallel exact solves) across worker
// counts; the numeric results must be identical, not merely close.
func TestConcaveStudyParallelMatchesSerial(t *testing.T) {
	cfgAt := func(w int) Config { return Config{Scale: 0.002, Seed: 9, Quick: true, Workers: w} }
	want, err := ConcaveStudy(cfgAt(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := ConcaveStudy(cfgAt(workers))
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
			t.Fatalf("workers=%d diverged:\n%+v\nwant\n%+v", workers, got, want)
		}
	}
}
