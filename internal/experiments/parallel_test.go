package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// renderWith runs the given table builders under the given worker count
// and returns the concatenated rendered output.
func renderWith(t *testing.T, workers int, builders ...func(Config) (*Table, error)) []byte {
	t.Helper()
	cfg := Config{Scale: 0.002, Seed: 1, Quick: true, Workers: workers}
	var buf bytes.Buffer
	for _, b := range builders {
		tbl, err := b(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tbl.Render(&buf)
	}
	return buf.Bytes()
}

// TestParallelOutputByteIdentical is the headline guarantee of the
// parallel sweeps: for the same seed, -workers=4 must render exactly
// the bytes -workers=1 renders, for every parallelized experiment.
func TestParallelOutputByteIdentical(t *testing.T) {
	builders := []func(Config) (*Table, error){Fig6Table, Fig7Table, ConcaveStudyTable}
	serial := renderWith(t, 1, builders...)
	parallel := renderWith(t, 4, builders...)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("parallel output diverged from serial:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", serial, parallel)
	}
}

func TestRunIndexedCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 53
		var hits [n]atomic.Int32
		if err := runIndexed(nil, workers, n, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestRunIndexedPropagatesFirstError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := runIndexed(nil, workers, 20, func(i int) error {
			if i == 7 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: got %v, want %v", workers, err, boom)
		}
	}
}

// TestRunIndexedHammer drives the pool hard with many tiny tasks and
// more workers than tasks deserve; under -race this shakes out any
// unsynchronized access in the scheduler or in result collection.
func TestRunIndexedHammer(t *testing.T) {
	for round := 0; round < 50; round++ {
		const n = 200
		results := make([]int, n)
		if err := runIndexed(nil, 32, n, func(i int) error {
			results[i] = i * i
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, v := range results {
			if v != i*i {
				t.Fatalf("round %d: results[%d] = %d", round, i, v)
			}
		}
	}
}

func TestRunIndexedStopsOnCancelledContext(t *testing.T) {
	pre := func() context.Context {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		return ctx
	}
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		err := runIndexed(pre(), workers, 100, func(i int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
		}
		// A pre-cancelled context must not start any serial task; the
		// parallel pool may race a handful in before workers observe it.
		if workers == 1 && ran.Load() != 0 {
			t.Fatalf("serial path ran %d tasks under a cancelled context", ran.Load())
		}
	}
}

func TestRunIndexedCancelMidRun(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		const n = 10_000
		err := runIndexed(ctx, workers, n, func(i int) error {
			if ran.Add(1) == 25 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
		}
		if got := ran.Load(); got >= n {
			t.Fatalf("workers=%d: cancellation did not stop the queue (%d/%d tasks ran)", workers, got, n)
		}
	}
}

// TestRunIndexedErrorBeatsCancel: when a task fails and the context is
// then cancelled by the caller's defer, the task error is what callers
// see — cancellation must not mask real failures.
func TestRunIndexedErrorBeatsCancel(t *testing.T) {
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := runIndexed(ctx, 4, 50, func(i int) error {
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
}

// TestConcaveStudyParallelMatchesSerial hammers the full experiment
// (shared rng in generation, parallel exact solves) across worker
// counts; the numeric results must be identical, not merely close.
func TestConcaveStudyParallelMatchesSerial(t *testing.T) {
	cfgAt := func(w int) Config { return Config{Scale: 0.002, Seed: 9, Quick: true, Workers: w} }
	want, err := ConcaveStudy(cfgAt(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := ConcaveStudy(cfgAt(workers))
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
			t.Fatalf("workers=%d diverged:\n%+v\nwant\n%+v", workers, got, want)
		}
	}
}
