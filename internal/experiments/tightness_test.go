package experiments

import (
	"testing"

	"abivm/internal/costfn"
)

func TestStepCostInvariants(t *testing.T) {
	// The Section 3.2 construction must itself be a valid cost function
	// (monotone, subadditive, zero at the origin) for every eps the
	// tightness experiment uses — otherwise the OPT_LGM/OPT ratio it
	// reports would be measured on an instance outside the theorem's
	// hypotheses.
	for _, eps := range []float64{1, 0.5, 0.25, 0.125} {
		f := stepCost{eps: eps, c: 10}
		if err := costfn.CheckInvariants(f, 4*int(2/eps)+8); err != nil {
			t.Errorf("eps=%g: %v", eps, err)
		}
	}
}
