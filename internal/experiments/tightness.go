package experiments

import (
	"fmt"

	"abivm/internal/astar"
	"abivm/internal/bruteforce"
	"abivm/internal/core"
)

// stepCost is the Section 3.2 tightness construction:
//
//	f(x) = (eps*x/2) * C   for 0 <= x <= 2/eps
//	f(x) = (1 + eps/2) * C for x > 2/eps
//
// It is monotone and subadditive but not concave, and it forces every LGM
// plan to pay (1+eps/2)*C at each step while a non-greedy plan that
// leaves exactly 2/eps modifications behind pays only (1+eps)*C per two
// steps, driving OPT_LGM/OPT toward 2 as eps shrinks.
type stepCost struct {
	eps float64
	c   float64
}

func (f stepCost) Cost(k int) float64 {
	if k <= 0 {
		return 0
	}
	if float64(k) <= 2/f.eps {
		return f.eps * float64(k) / 2 * f.c
	}
	return (1 + f.eps/2) * f.c
}

// TightnessResult reports OPT_LGM vs OPT on the construction for several
// eps values.
type TightnessResult struct {
	Eps    []float64
	OptLGM []float64
	Opt    []float64
	Ratio  []float64
	Bound  []float64 // the paper's asymptotic ratio bound 2/(1+eps)-ish lower bound (2-eps over the limit); we report (2+eps)/(1+eps), the exact construction ratio
}

// Tightness evaluates the construction with m rounds per eps.
func Tightness(cfg Config) (*TightnessResult, error) {
	epsilons := []float64{1, 0.5, 0.25}
	if cfg.Quick {
		epsilons = []float64{1, 0.5}
	}
	m := 2 // rounds; T = 2m-1
	c := 10.0
	res := &TightnessResult{}
	for _, eps := range epsilons {
		perStep := int(2/eps) + 1
		tEnd := 2*m - 1
		seq := make(core.Arrivals, tEnd+1)
		for t := range seq {
			seq[t] = core.Vector{perStep}
		}
		in, err := core.NewInstance(seq, core.NewCostModel(stepCost{eps: eps, c: c}), c)
		if err != nil {
			return nil, err
		}
		lgm, err := astar.Search(in, astar.Options{})
		if err != nil {
			return nil, err
		}
		opt, _, err := bruteforce.Optimal(in)
		if err != nil {
			return nil, err
		}
		res.Eps = append(res.Eps, eps)
		res.OptLGM = append(res.OptLGM, lgm.Cost)
		res.Opt = append(res.Opt, opt)
		res.Ratio = append(res.Ratio, lgm.Cost/opt)
		res.Bound = append(res.Bound, (2+eps)/(1+eps))
	}
	return res, nil
}

// TightnessTable renders the experiment.
func TightnessTable(cfg Config) (*Table, error) {
	res, err := Tightness(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Section 3.2 example: tightness of the OPT_LGM <= 2*OPT bound",
		Header: []string{"eps", "OPT-LGM", "OPT", "ratio", "construction ratio (2+eps)/(1+eps)"},
	}
	for i := range res.Eps {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", res.Eps[i]), f2(res.OptLGM[i]), f2(res.Opt[i]),
			fmt.Sprintf("%.3f", res.Ratio[i]), fmt.Sprintf("%.3f", res.Bound[i]),
		})
	}
	t.Notes = append(t.Notes, "as eps -> 0 the ratio approaches 2, matching Theorem 1's tightness claim")
	return t, nil
}
