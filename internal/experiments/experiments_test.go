package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func quickCfg() Config {
	c := DefaultConfig()
	c.Scale = 0.002
	c.Quick = true
	return c
}

func TestFig1Shapes(t *testing.T) {
	res, err := Fig1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// At batch size 1, the unindexed-side scan makes c_dR more expensive
	// than one indexed probe.
	if res.CostDeltaR[0] <= res.CostDeltaS[0] {
		t.Errorf("c_dR(1)=%g should exceed c_dS(1)=%g", res.CostDeltaR[0], res.CostDeltaS[0])
	}
	// c_dS grows faster: fitted slope comparison.
	if res.LinS[0] <= res.LinR[0] {
		t.Errorf("slope of c_dS (%g) should exceed slope of c_dR (%g)", res.LinS[0], res.LinR[0])
	}
	// The curves cross, making asymmetric processing profitable.
	if res.CrossoverBatch < 0 {
		t.Error("no crossover found")
	}
}

func TestFig4Shapes(t *testing.T) {
	res, err := Fig4(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Supplier batches dominate PartSupp batches at every size.
	for i, k := range res.K {
		if res.CostS[i] <= res.CostPS[i] {
			t.Errorf("k=%d: Supplier cost %g not above PartSupp cost %g", k, res.CostS[i], res.CostPS[i])
		}
	}
	// Supplier's intercept (the hash build over PartSupp) is the dominant
	// asymmetry.
	if res.LinS[1] <= res.LinPS[1] {
		t.Errorf("Supplier intercept %g should exceed PartSupp intercept %g", res.LinS[1], res.LinPS[1])
	}
}

func TestFig5Validation(t *testing.T) {
	res, err := Fig5(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plans) != 3 {
		t.Fatalf("plans = %v", res.Plans)
	}
	for i, p := range res.Plans {
		if res.Actual[i] <= 0 || res.Simulated[i] <= 0 {
			t.Errorf("%s: non-positive costs (sim %g, actual %g)", p, res.Simulated[i], res.Actual[i])
		}
		// "Negligible difference": under 15% even in quick mode.
		if res.DiffPct[i] > 15 {
			t.Errorf("%s: simulated-vs-actual diff %.1f%% too large", p, res.DiffPct[i])
		}
	}
}

func TestFig6Ordering(t *testing.T) {
	res, err := Fig6(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var naiveSum, optSum, adaptSum, onlineMSum float64
	for i := range res.RefreshTimes {
		// OPT-LGM lower-bounds every policy (all produce valid plans,
		// and under linear costs OPT-LGM is globally optimal).
		for _, v := range []float64{res.Naive[i], res.Adapt[i], res.Online[i], res.OnlineM[i]} {
			if v < res.OptLGM[i]-1e-6 {
				t.Errorf("T=%d: policy cost %g below OPT %g", res.RefreshTimes[i], v, res.OptLGM[i])
			}
		}
		naiveSum += res.Naive[i]
		optSum += res.OptLGM[i]
		adaptSum += res.Adapt[i]
		onlineMSum += res.OnlineM[i]
	}
	if naiveSum <= optSum {
		t.Error("NAIVE not worse than OPT overall")
	}
	// The paper's claim: ADAPT tracks OPT much more closely than NAIVE.
	if adaptSum >= naiveSum {
		t.Errorf("ADAPT (%g) not better than NAIVE (%g)", adaptSum, naiveSum)
	}
	if onlineMSum >= naiveSum {
		t.Errorf("ONLINE-M (%g) not better than NAIVE (%g)", onlineMSum, naiveSum)
	}
}

func TestFig7Ordering(t *testing.T) {
	res, err := Fig7(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Streams) != 4 {
		t.Fatalf("streams = %v", res.Streams)
	}
	for i, s := range res.Streams {
		if res.Naive[i] < res.OptLGM[i]-1e-6 {
			t.Errorf("%s: NAIVE %g below OPT %g", s, res.Naive[i], res.OptLGM[i])
		}
		if res.Online[i] < res.OptLGM[i]-1e-6 {
			t.Errorf("%s: ONLINE %g below OPT %g", s, res.Online[i], res.OptLGM[i])
		}
		// ONLINE-M stays within 15% of the offline optimum.
		if res.OnlineM[i] > 1.15*res.OptLGM[i] {
			t.Errorf("%s: ONLINE-M %g too far above OPT %g", s, res.OnlineM[i], res.OptLGM[i])
		}
	}
}

func TestTightnessMatchesConstruction(t *testing.T) {
	res, err := Tightness(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i, eps := range res.Eps {
		if math.Abs(res.Ratio[i]-res.Bound[i]) > 1e-9 {
			t.Errorf("eps=%g: ratio %.6f != construction ratio %.6f", eps, res.Ratio[i], res.Bound[i])
		}
	}
	// The ratio grows toward 2 as eps shrinks.
	for i := 1; i < len(res.Ratio); i++ {
		if res.Ratio[i] <= res.Ratio[i-1] {
			t.Errorf("ratio not increasing: %v", res.Ratio)
		}
	}
}

func TestConcaveStudy(t *testing.T) {
	res, err := ConcaveStudy(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Families) != 3 {
		t.Fatalf("families = %v", res.Families)
	}
	for i, fam := range res.Families {
		if !res.TheoremOK[i] {
			t.Errorf("%s: a ratio exceeded 2 — Theorem 1 violated", fam)
		}
		if res.WorstGap[i] < 1-1e-9 {
			t.Errorf("%s: worst ratio %g below 1 — LGM beat the global optimum", fam, res.WorstGap[i])
		}
	}
	// Theorem 2: linear instances are solved optimally by the LGM search.
	if res.Families[0] != "linear" || res.WorstGap[0] > 1+1e-6 {
		t.Errorf("linear worst ratio %g, want 1", res.WorstGap[0])
	}
	// The concave conjecture: gap well below the step family's potential.
	if res.WorstGap[1] > 1.5 {
		t.Errorf("concave worst ratio %g unexpectedly large", res.WorstGap[1])
	}
}

func TestStagedStudy(t *testing.T) {
	res, err := Staged(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Constraints) == 0 {
		t.Fatal("no sweep points")
	}
	for i, c := range res.Constraints {
		if res.TwoStage[i] > res.SingleStage[i]+1e-9 {
			t.Errorf("C=%g: staging lost (%g vs %g)", c, res.TwoStage[i], res.SingleStage[i])
		}
	}
	// Gains shrink as the constraint loosens (more batching headroom for
	// the single-stage model too).
	if res.Gain[0] <= res.Gain[len(res.Gain)-1] {
		t.Errorf("gain should diminish with looser constraints: %v", res.Gain)
	}
	// At the tightest constraint staging must win by a clear margin.
	if res.Gain[0] < 1.5 {
		t.Errorf("tight-constraint gain %.2f below expectation", res.Gain[0])
	}
}

func TestPoliciesSuite(t *testing.T) {
	res, err := Policies(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names) != 7 || res.Names[0] != "OPT-LGM" {
		t.Fatalf("names = %v", res.Names)
	}
	for i, name := range res.Names {
		if res.OverOpt[i] < 1-1e-9 {
			t.Errorf("%s: cost/OPT %.3f below 1 — beat the optimum", name, res.OverOpt[i])
		}
	}
	// The library's extensions must track the optimum closely even in
	// quick mode.
	for i, name := range res.Names {
		if name == "ONLINE-M" && res.OverOpt[i] > 1.25 {
			t.Errorf("ONLINE-M at %.3f of OPT", res.OverOpt[i])
		}
	}
}

func TestTablesRender(t *testing.T) {
	cfg := quickCfg()
	for name, fn := range map[string]func(Config) (*Table, error){
		"fig1": Fig1Table, "fig4": Fig4Table, "fig5": Fig5Table,
		"fig6": Fig6Table, "fig7": Fig7Table, "tight": TightnessTable,
		"concave": ConcaveStudyTable, "staged": StagedTable,
	} {
		tbl, err := fn(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var buf bytes.Buffer
		tbl.Render(&buf)
		out := buf.String()
		if !strings.Contains(out, tbl.Title) {
			t.Errorf("%s: rendered output missing title", name)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s: no rows", name)
		}
	}
}

func TestAllRendersEveryExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := All(quickCfg(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Figure 1", "Figure 4", "Figure 5", "Figure 6", "Figure 7",
		"tightness", "concave", "staged",
	} {
		if !strings.Contains(strings.ToLower(out), strings.ToLower(want)) {
			t.Errorf("All output missing %q", want)
		}
	}
}
