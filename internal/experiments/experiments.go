// Package experiments regenerates every figure of the paper's evaluation
// (Section 5) plus the Section 3.2 tightness example, on the from-scratch
// engine:
//
//	Fig. 1 — cost functions of a two-way join view (indexed vs not)
//	Fig. 4 — cost functions of the four-way MIN view over TPC-R
//	Fig. 5 — simulated vs actual plan costs (validation)
//	Fig. 6 — total cost vs refresh time for NAIVE/OPT-LGM/ADAPT/ONLINE
//	Fig. 7 — non-uniform arrival streams (SS/SU/FS/FU)
//	Tightness — OPT_LGM / OPT approaching 2 on the step-cost instance
//
// Absolute numbers are pseudo-milliseconds of engine work units, not the
// paper's wall-clock seconds; the comparisons the paper draws (who wins,
// by what factor, where curves cross) are what these experiments
// reproduce.
package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"

	"abivm/internal/costmodel"
	"abivm/internal/ivm"
	"abivm/internal/obs"
	"abivm/internal/storage"
	"abivm/internal/tpcr"
)

// Config parameterizes the experiment suite.
type Config struct {
	// Scale is the TPC-R scale factor (default 0.005: 50 suppliers, 4000
	// partsupp rows, preserving the paper's 80:1 ratio).
	Scale float64
	// Seed drives data generation and update streams.
	Seed int64
	// Quick shrinks sweeps and horizons for use in tests; the shapes are
	// preserved, the resolution is reduced.
	Quick bool
	// Workers bounds the worker pool used by the independent-task sweeps
	// (Fig. 6 refresh times, Fig. 7 streams, concave-study instances).
	// 0 means one worker per CPU, 1 forces the serial path. Output is
	// byte-identical for every value: tasks are seeded independently and
	// results are collected by index.
	Workers int
	// Context, when non-nil, cancels in-flight sweeps: workers stop
	// picking up tasks and the experiment returns the context's error.
	// nil means run to completion.
	Context context.Context
	// Obs, when non-nil, receives planner and policy metrics from the
	// sweeps (see internal/obs). nil — the default, and the benched
	// configuration — keeps the sweeps instrumentation-free.
	Obs *obs.Registry
}

// DefaultConfig returns the standard experiment configuration.
func DefaultConfig() Config { return Config{Scale: 0.005, Seed: 1} }

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render prints the table in aligned text form.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// f2 formats a float at 2 decimals, f4 at 4, fmt1 an int.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
func fmt1(k int) string   { return fmt.Sprintf("%d", k) }

// setupView generates a TPC-R database with the given index configuration
// and wraps the view in a maintainer plus update generator.
func setupView(cfg Config, view string, supplierIdx, partsuppIdx bool) (*ivm.Maintainer, *tpcr.UpdateGen, error) {
	tcfg := tpcr.Config{
		ScaleFactor:          cfg.Scale,
		Seed:                 cfg.Seed,
		SupplierSuppkeyIndex: supplierIdx,
		PartSuppSuppkeyIndex: partsuppIdx,
	}
	db := storage.NewDB()
	if err := tpcr.Generate(db, tcfg); err != nil {
		return nil, nil, err
	}
	m, err := ivm.New(db, view)
	if err != nil {
		return nil, nil, err
	}
	return m, tpcr.NewUpdateGen(db, tcfg, cfg.Seed+100), nil
}

// measurePair measures the PS and S batch-cost curves of a maintained
// view over the given batch sizes.
func measurePair(m *ivm.Maintainer, gen *tpcr.UpdateGen, ks []int) (ps, s *costmodel.Measurement, err error) {
	w := storage.DefaultWeights()
	ps, err = costmodel.Measure(m, "PS", gen.PartSuppUpdate, ks, w)
	if err != nil {
		return nil, nil, err
	}
	s, err = costmodel.Measure(m, "S", gen.SupplierUpdate, ks, w)
	if err != nil {
		return nil, nil, err
	}
	return ps, s, nil
}

// batchSweep returns the batch-size sweep for cost-function figures.
func batchSweep(quick bool) []int {
	if quick {
		return []int{1, 5, 10, 25, 50}
	}
	return []int{1, 10, 25, 50, 100, 150, 200, 300, 400, 500, 750, 1000}
}

// All runs every experiment and renders the tables to w.
func All(cfg Config, w io.Writer) error {
	type namedRun struct {
		name string
		run  func(Config) (*Table, error)
	}
	runs := []namedRun{
		{"fig1", Fig1Table},
		{"fig4", Fig4Table},
		{"fig5", Fig5Table},
		{"fig6", Fig6Table},
		{"fig7", Fig7Table},
		{"tight", TightnessTable},
		{"concave", ConcaveStudyTable},
		{"staged", StagedTable},
		{"policies", PoliciesTable},
	}
	for _, r := range runs {
		tbl, err := r.run(cfg)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", r.name, err)
		}
		tbl.Render(w)
	}
	return nil
}
