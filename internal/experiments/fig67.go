package experiments

import (
	"fmt"

	"abivm/internal/arrivals"
	"abivm/internal/astar"
	"abivm/internal/core"
	"abivm/internal/policy"
	"abivm/internal/sim"
)

// Fig6Result compares NAIVE, OPT-LGM, ADAPT and ONLINE total maintenance
// costs while the refresh time varies. One PartSupp and one Supplier
// update arrive at every step; OPT-LGM is recomputed per refresh time,
// ADAPT reuses a single plan optimized for the middle refresh time.
type Fig6Result struct {
	C            float64
	AdaptT0      int
	RefreshTimes []int
	Naive        []float64
	OptLGM       []float64
	Adapt        []float64
	Online       []float64
	// OnlineM is our marginal-rate extension of the ONLINE heuristic; it
	// is not in the paper and is reported as an extra labeled column.
	OnlineM []float64
}

// Fig6 runs the varying-refresh-time experiment.
func Fig6(cfg Config) (*Fig6Result, error) {
	model, err := fig4Model(cfg, "linear")
	if err != nil {
		return nil, err
	}
	c := chooseC(model, cfg.Quick)
	times := []int{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}
	t0 := 500
	if cfg.Quick {
		times = []int{40, 80, 120, 160, 200}
		t0 = 120
	}
	adaptPlan, err := optPlanUniform(model, c, t0, cfg.searchOptions())
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{
		C: c, AdaptT0: t0, RefreshTimes: times,
		Naive:   make([]float64, len(times)),
		OptLGM:  make([]float64, len(times)),
		Adapt:   make([]float64, len(times)),
		Online:  make([]float64, len(times)),
		OnlineM: make([]float64, len(times)),
	}
	// Each refresh time is an independent instance, so the points fan out
	// across the worker pool. The shared model, constraint and adaptPlan
	// are strictly read-only (CostModel is immutable; Adapt clamps the
	// plan into fresh vectors without mutating it), and every task writes
	// only its own index, so any Workers value produces identical output.
	err = runIndexed(cfg.ctx(), cfg.workerCount(), len(times), func(i int) error {
		tEnd := times[i]
		seq := arrivals.UniformSequence(tEnd+1, 1, 1)
		in, err := core.NewInstance(seq, model, c)
		if err != nil {
			return err
		}
		res.Naive[i] = in.Cost(in.NaivePlan())
		opt, err := astar.Search(in, cfg.searchOptions())
		if err != nil {
			return err
		}
		res.OptLGM[i] = opt.Cost
		adaptRun, err := sim.Run(in, policy.NewAdapt(model, c, adaptPlan), sim.Options{})
		if err != nil {
			return err
		}
		res.Adapt[i] = adaptRun.TotalCost
		onlineRun, err := sim.Run(in, cfg.newOnline(model, c), sim.Options{})
		if err != nil {
			return err
		}
		res.Online[i] = onlineRun.TotalCost
		onlineMRun, err := sim.Run(in, cfg.newOnlineMarginal(model, c), sim.Options{})
		if err != nil {
			return err
		}
		res.OnlineM[i] = onlineMRun.TotalCost
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// optPlanUniform computes the optimal LGM plan for a uniform (1,1) stream
// over [0, t0].
func optPlanUniform(model *core.CostModel, c float64, t0 int, opts astar.Options) (core.Plan, error) {
	seq := arrivals.UniformSequence(t0+1, 1, 1)
	in, err := core.NewInstance(seq, model, c)
	if err != nil {
		return nil, err
	}
	res, err := astar.Search(in, opts)
	if err != nil {
		return nil, err
	}
	return res.Plan, nil
}

// Fig6Table renders the experiment.
func Fig6Table(cfg Config) (*Table, error) {
	res, err := Fig6(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 6: total maintenance cost vs refresh time (uniform 1+1 updates/step)",
		Header: []string{"refresh T", "NAIVE", "OPT-LGM", "ADAPT", "ONLINE", "ONLINE-M*"},
	}
	for i, tEnd := range res.RefreshTimes {
		t.Rows = append(t.Rows, []string{
			fmt1(tEnd), f2(res.Naive[i]), f2(res.OptLGM[i]), f2(res.Adapt[i]), f2(res.Online[i]), f2(res.OnlineM[i]),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("C = %.2f pseudo-ms; ADAPT reuses the plan optimized for T0 = %d", res.C, res.AdaptT0),
		"paper shape: NAIVE clearly worst; ADAPT and ONLINE track OPT-LGM closely",
		"*ONLINE-M is this library's marginal-rate extension of ONLINE (not in the paper)",
	)
	return t, nil
}

// Fig7Result compares policies over the paper's four non-uniform stream
// types: slow/stable, slow/unstable, fast/stable, fast/unstable. Costs
// are means over Seeds independent stream realizations; Spread[i] is the
// largest relative half-range of any policy's cost across seeds, a
// robustness indicator the single-run paper does not report.
type Fig7Result struct {
	C       float64
	T       int
	Seeds   int
	Streams []string
	Naive   []float64
	OptLGM  []float64
	Online  []float64
	// OnlineM is our marginal-rate extension (not in the paper).
	OnlineM []float64
	Spread  []float64
}

// Fig7 runs the non-uniform arrival experiment.
func Fig7(cfg Config) (*Fig7Result, error) {
	model, err := fig4Model(cfg, "linear")
	if err != nil {
		return nil, err
	}
	c := 1.6 * chooseC(model, cfg.Quick) // the paper raises C for this experiment (12s -> 20s)
	tEnd := 1000
	seeds := 3
	if cfg.Quick {
		tEnd = 150
		seeds = 1
	}
	type streamCfg struct {
		name  string
		p     float64
		sigma float64
	}
	streams := []streamCfg{
		{"SS (slow/stable)", 0.5, 1},
		{"SU (slow/unstable)", 0.5, 5},
		{"FS (fast/stable)", 0.9, 1},
		{"FU (fast/unstable)", 0.9, 5},
	}
	res := &Fig7Result{C: c, T: tEnd, Seeds: seeds}
	// Every (stream, repetition) pair derives its own rng seeds from
	// (si, rep) alone, so the flattened task list fans out across the
	// worker pool with results collected per index; aggregation below
	// then runs serially in stream order, making the output identical
	// for any Workers value.
	type cell struct {
		naive, opt, online, onlineM float64
	}
	cells := make([]cell, len(streams)*seeds)
	err = runIndexed(cfg.ctx(), cfg.workerCount(), len(cells), func(idx int) error {
		si, rep := idx/seeds, idx%seeds
		sc := streams[si]
		base := cfg.Seed + int64(si)*20 + int64(rep)*2
		seq := arrivals.Sequence(tEnd+1,
			arrivals.NewNonUniform(sc.p, 1, sc.sigma, base+1),
			arrivals.NewNonUniform(sc.p, 1, sc.sigma, base+2),
		)
		in, err := core.NewInstance(seq, model, c)
		if err != nil {
			return err
		}
		cl := &cells[idx]
		cl.naive = in.Cost(in.NaivePlan())
		optRes, err := astar.Search(in, cfg.searchOptions())
		if err != nil {
			return err
		}
		cl.opt = optRes.Cost
		onlineRun, err := sim.Run(in, cfg.newOnline(model, c), sim.Options{})
		if err != nil {
			return err
		}
		cl.online = onlineRun.TotalCost
		onlineMRun, err := sim.Run(in, cfg.newOnlineMarginal(model, c), sim.Options{})
		if err != nil {
			return err
		}
		cl.onlineM = onlineMRun.TotalCost
		return nil
	})
	if err != nil {
		return nil, err
	}
	for si, sc := range streams {
		var naive, opt, online, onlineM []float64
		for rep := 0; rep < seeds; rep++ {
			cl := cells[si*seeds+rep]
			naive = append(naive, cl.naive)
			opt = append(opt, cl.opt)
			online = append(online, cl.online)
			onlineM = append(onlineM, cl.onlineM)
		}
		res.Streams = append(res.Streams, sc.name)
		res.Naive = append(res.Naive, mean(naive))
		res.OptLGM = append(res.OptLGM, mean(opt))
		res.Online = append(res.Online, mean(online))
		res.OnlineM = append(res.OnlineM, mean(onlineM))
		spread := 0.0
		for _, series := range [][]float64{naive, opt, online, onlineM} {
			if s := relHalfRange(series); s > spread {
				spread = s
			}
		}
		res.Spread = append(res.Spread, spread)
	}
	return res, nil
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// relHalfRange returns (max-min)/(2*mean), the relative half-range.
func relHalfRange(xs []float64) float64 {
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	m := mean(xs)
	if m == 0 {
		return 0
	}
	return (hi - lo) / (2 * m)
}

// Fig7Table renders the experiment.
func Fig7Table(cfg Config) (*Table, error) {
	res, err := Fig7(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 7: non-uniform modification arrivals (normal-based streams)",
		Header: []string{"stream", "NAIVE", "OPT-LGM", "ONLINE", "ONLINE-M*", "ONLINE/OPT", "±spread"},
	}
	for i := range res.Streams {
		ratio := res.Online[i] / res.OptLGM[i]
		t.Rows = append(t.Rows, []string{
			res.Streams[i], f2(res.Naive[i]), f2(res.OptLGM[i]), f2(res.Online[i]), f2(res.OnlineM[i]),
			fmt.Sprintf("%.3f", ratio), fmt.Sprintf("%.1f%%", 100*res.Spread[i]),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("C = %.2f pseudo-ms, refresh at T = %d; mu = 1; means over %d stream realizations", res.C, res.T, res.Seeds),
		"paper shape: NAIVE worst everywhere; ONLINE near OPT on stable streams, further off on unstable ones",
		"*ONLINE-M is this library's marginal-rate extension of ONLINE (not in the paper)",
	)
	return t, nil
}
