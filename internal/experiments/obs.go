package experiments

import (
	"abivm/internal/astar"
	"abivm/internal/core"
	"abivm/internal/policy"
)

// Instrumentation plumbing for the sweeps: each helper resolves
// Config.Obs into the matching layer's metrics bundle. With Obs nil
// every helper degrades to the uninstrumented construction, so the
// benched figure paths stay measurement-free by default. The registry is
// idempotent per (name, labels), so concurrent sweep workers calling
// these helpers share one set of instruments.

// searchOptions returns the planner options for a sweep cell with the
// config's metrics sink attached.
func (cfg Config) searchOptions() astar.Options {
	return astar.Options{Metrics: astar.NewMetrics(cfg.Obs)}
}

// newOnline builds an ONLINE policy reporting to the config's sink.
func (cfg Config) newOnline(model *core.CostModel, c float64) *policy.Online {
	p := policy.NewOnline(model, c, nil)
	p.SetMetrics(policy.NewMetrics(cfg.Obs, p.Name()))
	return p
}

// newOnlineMarginal builds an ONLINE-M policy reporting to the config's
// sink.
func (cfg Config) newOnlineMarginal(model *core.CostModel, c float64) *policy.OnlineMarginal {
	p := policy.NewOnlineMarginal(model, c, nil)
	p.SetMetrics(policy.NewMetrics(cfg.Obs, p.Name()))
	return p
}
