package experiments

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// workerCount resolves Config.Workers into an actual pool size: 0 means
// one worker per available CPU (runtime.GOMAXPROCS), 1 means serial,
// anything larger caps the pool at that many goroutines.
func (cfg Config) workerCount() int {
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ctx resolves Config.Context, defaulting to the background context.
func (cfg Config) ctx() context.Context {
	if cfg.Context != nil {
		return cfg.Context
	}
	return context.Background()
}

// runIndexed runs fn(0) .. fn(n-1) across a bounded worker pool. Tasks
// communicate results only by writing into caller-preallocated slots at
// their own index, so the assembled output is identical to a serial loop
// regardless of goroutine scheduling. With workers <= 1 (or a single
// task) it degenerates to the plain serial loop the pre-parallel code
// ran — no goroutines, no atomics.
//
// The first task error wins and cancels the rest of the queue; a
// cancelled ctx (interrupt, timeout) stops workers from picking up new
// tasks and surfaces ctx.Err(). Already-running tasks finish — they are
// side-effect-free solves — so returning means all workers have exited.
func runIndexed(ctx context.Context, workers, n int, fn func(i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for wctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errOnce.Do(func() { firstErr = err })
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	// Distinguish "queue drained" from "caller cancelled us": only the
	// outer context's state matters once every task error is ruled out.
	return ctx.Err()
}
