package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workerCount resolves Config.Workers into an actual pool size: 0 means
// one worker per available CPU (runtime.GOMAXPROCS), 1 means serial,
// anything larger caps the pool at that many goroutines.
func (cfg Config) workerCount() int {
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runIndexed runs fn(0) .. fn(n-1) across a bounded worker pool. Tasks
// communicate results only by writing into caller-preallocated slots at
// their own index, so the assembled output is identical to a serial loop
// regardless of goroutine scheduling. With workers <= 1 (or a single
// task) it degenerates to the plain serial loop the pre-parallel code
// ran — no goroutines, no atomics.
//
// The first error wins; once a task fails the remaining queue is
// abandoned (already-running tasks finish — they are side-effect-free
// solves, so cancellation plumbing isn't worth its complexity here).
func runIndexed(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errOnce.Do(func() { firstErr = err })
					// Drain the queue so the other workers stop picking
					// up new tasks.
					next.Store(int64(n))
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
