package experiments

import (
	"fmt"

	"abivm/internal/arrivals"
	"abivm/internal/astar"
	"abivm/internal/core"
	"abivm/internal/policy"
	"abivm/internal/sim"
)

// PoliciesResult races the full policy suite over one calibrated
// workload: the offline optimum, the paper's three approaches (NAIVE,
// ADAPT, ONLINE), the classic periodic baseline, and this library's two
// extensions (ONLINE-M, ADAPT-RP). It is the summary table a user
// consults when choosing a policy.
type PoliciesResult struct {
	C         float64
	T         int
	Names     []string
	Costs     []float64
	OverOpt   []float64 // cost / OPT-LGM
	Actions   []int
	Foresight []string // what the policy must know in advance
}

// Policies runs the suite comparison.
func Policies(cfg Config) (*PoliciesResult, error) {
	model, err := fig4Model(cfg, "linear")
	if err != nil {
		return nil, err
	}
	c := chooseC(model, cfg.Quick)
	tEnd := 1000
	adaptT0 := 500
	period := 40
	if cfg.Quick {
		tEnd = 200
		adaptT0 = 100
		period = 20
	}
	seq := arrivals.UniformSequence(tEnd+1, 1, 1)
	in, err := core.NewInstance(seq, model, c)
	if err != nil {
		return nil, err
	}
	opt, err := astar.Search(in, astar.Options{})
	if err != nil {
		return nil, err
	}
	adaptPlan, err := optPlanUniform(model, c, adaptT0, astar.Options{})
	if err != nil {
		return nil, err
	}

	res := &PoliciesResult{C: c, T: tEnd}
	add := func(name string, cost float64, actions int, foresight string) {
		res.Names = append(res.Names, name)
		res.Costs = append(res.Costs, cost)
		res.OverOpt = append(res.OverOpt, cost/opt.Cost)
		res.Actions = append(res.Actions, actions)
		res.Foresight = append(res.Foresight, foresight)
	}
	countActions := func(p core.Plan) int {
		n := 0
		for _, a := range p {
			if a != nil && !a.IsZero() {
				n++
			}
		}
		return n
	}
	add("OPT-LGM", opt.Cost, countActions(opt.Plan), "arrivals + refresh time")

	naive := in.NaivePlan()
	add("NAIVE", in.Cost(naive), countActions(naive), "none")

	pols := []struct {
		pol       policy.Policy
		foresight string
	}{
		{policy.NewPeriodic(model, c, period), "none (fixed period)"},
		{policy.NewAdapt(model, c, adaptPlan), fmt.Sprintf("plan for T0=%d", adaptT0)},
		{policy.NewAdaptReplan(model, c, adaptT0/2, nil), "none (replans from rates)"},
		{policy.NewOnline(model, c, nil), "none"},
		{policy.NewOnlineMarginal(model, c, nil), "none"},
	}
	for _, e := range pols {
		run, err := sim.Run(in, e.pol, sim.Options{})
		if err != nil {
			return nil, err
		}
		add(run.Policy, run.TotalCost, run.Actions, e.foresight)
	}
	return res, nil
}

// PoliciesTable renders the suite comparison.
func PoliciesTable(cfg Config) (*Table, error) {
	res, err := Policies(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Policy suite: total maintenance cost on the calibrated TPC-R workload",
		Header: []string{"policy", "total cost", "cost/OPT", "actions", "advance knowledge"},
	}
	for i := range res.Names {
		t.Rows = append(t.Rows, []string{
			res.Names[i], f2(res.Costs[i]), fmt.Sprintf("%.3f", res.OverOpt[i]),
			fmt1(res.Actions[i]), res.Foresight[i],
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("uniform 1+1 updates/step, C = %.2f pseudo-ms, refresh at T = %d", res.C, res.T),
		"ONLINE-M and ADAPT-RP are this library's extensions; the rest follow the paper",
	)
	return t, nil
}
