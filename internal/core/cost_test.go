package core

import (
	"math"
	"testing"
)

// linFunc is a minimal linear cost function for tests in this package
// (the real implementations live in costfn, which depends on core).
type linFunc struct{ a, b float64 }

func (f linFunc) Cost(k int) float64 {
	if k <= 0 {
		return 0
	}
	return f.a*float64(k) + f.b
}

// stepFunc is ceil(k/block)*c.
type stepFunc struct {
	block int
	c     float64
}

func (f stepFunc) Cost(k int) float64 {
	if k <= 0 {
		return 0
	}
	return float64((k+f.block-1)/f.block) * f.c
}

// cappedFunc saturates at cap: min(a*k, cap). Used to exercise the
// MaxBatch fallback horizon.
type cappedFunc struct{ a, cap float64 }

func (f cappedFunc) Cost(k int) float64 {
	if k <= 0 {
		return 0
	}
	return math.Min(f.a*float64(k), f.cap)
}

func testModel(funcs ...CostFunc) *CostModel { return NewCostModel(funcs...) }

func TestCostModelTotal(t *testing.T) {
	m := testModel(linFunc{1, 2}, linFunc{0.5, 0})
	if got := m.Total(Vector{0, 0}); got != 0 {
		t.Fatalf("Total(zero) = %g", got)
	}
	// f0(3)=5, f1(4)=2.
	if got := m.Total(Vector{3, 4}); got != 7 {
		t.Fatalf("Total = %g, want 7", got)
	}
}

func TestCostModelTableCostZero(t *testing.T) {
	m := testModel(linFunc{1, 100})
	if got := m.TableCost(0, 0); got != 0 {
		t.Fatalf("TableCost(0) = %g, want 0 despite intercept", got)
	}
}

func TestCostModelFull(t *testing.T) {
	m := testModel(linFunc{1, 0})
	if m.Full(Vector{5}, 5) {
		t.Error("state at exactly C reported full")
	}
	if !m.Full(Vector{6}, 5) {
		t.Error("state above C not reported full")
	}
}

func TestMaxBatchBinarySearch(t *testing.T) {
	m := testModel(linFunc{2, 3}) // f(k)=2k+3
	cases := []struct {
		budget float64
		want   int
	}{
		{0, 0},
		{4.9, 0},  // f(1)=5
		{5, 1},    // exactly f(1)
		{10, 3},   // f(3)=9, f(4)=11
		{103, 50}, // f(50)=103
	}
	for _, c := range cases {
		if got := m.MaxBatch(0, c.budget); got != c.want {
			t.Errorf("MaxBatch(budget=%g) = %d, want %d", c.budget, got, c.want)
		}
	}
}

func TestMaxBatchStep(t *testing.T) {
	m := testModel(stepFunc{block: 10, c: 4}) // f(k)=ceil(k/10)*4
	// budget 8 -> 2 blocks -> k up to 20.
	if got := m.MaxBatch(0, 8); got != 20 {
		t.Fatalf("MaxBatch = %d, want 20", got)
	}
	if got := m.MaxBatch(0, 3.9); got != 0 {
		t.Fatalf("MaxBatch below one block = %d, want 0", got)
	}
}

func TestMaxBatchUnboundedBudget(t *testing.T) {
	m := testModel(cappedFunc{a: 1, cap: 10})
	if got := m.MaxBatch(0, 100); got != maxBatchHorizon {
		t.Fatalf("MaxBatch with saturating cost = %d, want horizon %d", got, maxBatchHorizon)
	}
}

func TestMaxBatchDelegatesToMaxBatcher(t *testing.T) {
	m := testModel(fixedMaxBatcher{})
	if got := m.MaxBatch(0, 42); got != 777 {
		t.Fatalf("MaxBatch = %d, want delegated 777", got)
	}
}

type fixedMaxBatcher struct{}

func (fixedMaxBatcher) Cost(k int) float64   { return float64(k) }
func (fixedMaxBatcher) MaxBatch(float64) int { return 777 }

func TestCostModelPanicsOnArityMismatch(t *testing.T) {
	m := testModel(linFunc{1, 0})
	defer func() {
		if recover() == nil {
			t.Fatal("Total with wrong arity did not panic")
		}
	}()
	_ = m.Total(Vector{1, 2})
}

func TestNewCostModelRequiresFuncs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty cost model did not panic")
		}
	}()
	_ = NewCostModel()
}
