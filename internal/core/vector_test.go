package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorBasics(t *testing.T) {
	v := NewVector(3)
	if !v.IsZero() {
		t.Fatalf("new vector not zero: %v", v)
	}
	v[0], v[2] = 4, 7
	if v.IsZero() {
		t.Fatalf("vector with entries reported zero: %v", v)
	}
	if got := v.Sum(); got != 11 {
		t.Fatalf("Sum = %d, want 11", got)
	}
	w := v.Clone()
	w[0] = 100
	if v[0] != 4 {
		t.Fatalf("Clone aliases the original")
	}
}

func TestVectorArithmetic(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 0, 1}
	if got := v.Add(w); !got.Equal(Vector{5, 2, 4}) {
		t.Fatalf("Add = %v", got)
	}
	if got := w.Sub(v); !got.Equal(Vector{3, -2, -2}) {
		t.Fatalf("Sub = %v", got)
	}
	u := v.Clone()
	u.AddInPlace(w)
	if !u.Equal(Vector{5, 2, 4}) {
		t.Fatalf("AddInPlace = %v", u)
	}
	u.SubInPlace(w)
	if !u.Equal(v) {
		t.Fatalf("SubInPlace = %v", u)
	}
}

func TestVectorDominatedBy(t *testing.T) {
	cases := []struct {
		v, w Vector
		want bool
	}{
		{Vector{0, 0}, Vector{0, 0}, true},
		{Vector{1, 2}, Vector{1, 2}, true},
		{Vector{1, 2}, Vector{2, 2}, true},
		{Vector{3, 2}, Vector{2, 2}, false},
		{Vector{0, 3}, Vector{1, 2}, false},
	}
	for _, c := range cases {
		if got := c.v.DominatedBy(c.w); got != c.want {
			t.Errorf("%v DominatedBy %v = %t, want %t", c.v, c.w, got, c.want)
		}
	}
}

func TestVectorNonNegative(t *testing.T) {
	if !(Vector{0, 1, 2}).NonNegative() {
		t.Error("non-negative vector rejected")
	}
	if (Vector{0, -1, 2}).NonNegative() {
		t.Error("negative vector accepted")
	}
}

func TestVectorEqual(t *testing.T) {
	if !(Vector{1, 2}).Equal(Vector{1, 2}) {
		t.Error("equal vectors reported unequal")
	}
	if (Vector{1, 2}).Equal(Vector{1, 3}) {
		t.Error("unequal vectors reported equal")
	}
	if (Vector{1, 2}).Equal(Vector{1, 2, 3}) {
		t.Error("different lengths reported equal")
	}
}

func TestVectorKeyInjective(t *testing.T) {
	// Property: distinct vectors have distinct keys (within a bounded
	// domain this is what the search dedup relies on).
	rng := rand.New(rand.NewSource(1))
	seen := map[string]Vector{}
	for trial := 0; trial < 2000; trial++ {
		v := NewVector(3)
		for i := range v {
			v[i] = rng.Intn(50)
		}
		k := v.Key()
		if prev, ok := seen[k]; ok && !prev.Equal(v) {
			t.Fatalf("key collision: %v and %v share key %q", prev, v, k)
		}
		seen[k] = v
	}
}

func TestVectorStringAndKey(t *testing.T) {
	v := Vector{3, 0, 12}
	if got := v.String(); got != "[3 0 12]" {
		t.Fatalf("String = %q", got)
	}
	if got := v.Key(); got != "3,0,12" {
		t.Fatalf("Key = %q", got)
	}
}

func TestVectorAddSubRoundTrip(t *testing.T) {
	f := func(a, b [4]uint8) bool {
		v := Vector{int(a[0]), int(a[1]), int(a[2]), int(a[3])}
		w := Vector{int(b[0]), int(b[1]), int(b[2]), int(b[3])}
		return v.Add(w).Sub(w).Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVectorLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched lengths did not panic")
		}
	}()
	_ = Vector{1}.Add(Vector{1, 2})
}
