package core

import "math"

// FloatTolerance is the relative tolerance of the Approx comparison
// helpers. Costs are accumulated float64 sums; two mathematically equal
// costs computed along different summation orders differ in the last few
// ulps, so code comparing costs (tie-breaks, degenerate-fit guards,
// budget checks against C) must compare through these helpers rather
// than with == or !=. 1e-9 matches the drift guard the subadditivity
// probe has always used.
const FloatTolerance = 1e-9

// ApproxEq reports whether a and b are equal within FloatTolerance,
// relative to their magnitude (with an absolute floor of FloatTolerance
// near zero). Infinities of equal sign compare equal; NaN compares equal
// to nothing.
func ApproxEq(a, b float64) bool {
	if a == b {
		return true // also handles equal infinities
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false // unequal infinities stay apart at any tolerance
	}
	scale := 1 + math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= FloatTolerance*scale
}

// ApproxLE reports a <= b within FloatTolerance: true when a is strictly
// below b or indistinguishable from it. This is the comparison to use for
// "does this cost fit the budget C" checks.
func ApproxLE(a, b float64) bool { return a <= b || ApproxEq(a, b) }

// ApproxGE reports a >= b within FloatTolerance.
func ApproxGE(a, b float64) bool { return a >= b || ApproxEq(a, b) }
