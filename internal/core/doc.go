// Package core defines the problem model of asymmetric batch incremental
// view maintenance (He, Xie, Yang, Yu; ICDE 2005).
//
// A materialized view V is defined over n base tables R_1..R_n. Time is
// discrete. At each step t an arrival vector d_t reports how many
// modifications landed on each base table; modifications are appended to
// per-table delta tables. A maintenance plan is a sequence of action
// vectors p_t: at step t the plan drains the earliest p_t[i] modifications
// from delta table i and propagates them into the view.
//
// Batch-processing k modifications of table i costs f_i(k), where every
// f_i is monotone and subadditive (f_i(0)=0, f_i(x+y) <= f_i(x)+f_i(y)).
// The response-time constraint requires every post-action state s to
// satisfy f(s) = Σ_i f_i(s[i]) <= C, so that an on-demand refresh always
// completes within cost C. The goal is to minimize the total plan cost
// Σ_t f(p_t) subject to the constraint, with all delta tables emptied at
// the refresh time T.
//
// This package holds the vocabulary shared by every other package: count
// vectors, states, actions, plans, arrival sequences, cost models, and the
// validity rules of Definition 1 (valid), Definition 2 (lazy) and
// Definition 3 (LGM) of the paper.
package core
