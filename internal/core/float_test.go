package core

import (
	"math"
	"testing"
)

func TestApproxEq(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{1.0, 1.0, true},
		{0, 0, true},
		{0, 1e-12, true},            // below the absolute floor
		{0, 1e-6, false},            // visibly non-zero
		{1e9, 1e9 + 10, false},      // ten times the relative tolerance at this scale
		{1e9, 1e9 + 0.1, true},      // within relative tolerance
		{100.0, 100.0 + 5e-8, true}, // accumulated drift
		{1.0, 1.1, false},
		{math.Inf(1), math.Inf(1), true},
		{math.Inf(1), math.Inf(-1), false},
		{math.NaN(), math.NaN(), false},
		{math.NaN(), 1, false},
	}
	for _, c := range cases {
		if got := ApproxEq(c.a, c.b); got != c.want {
			t.Errorf("ApproxEq(%g, %g) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := ApproxEq(c.b, c.a); got != c.want {
			t.Errorf("ApproxEq(%g, %g) = %v, want %v (asymmetric)", c.b, c.a, got, c.want)
		}
	}
}

func TestApproxLEGE(t *testing.T) {
	if !ApproxLE(1.0, 2.0) || ApproxLE(2.0, 1.0) {
		t.Error("ApproxLE must order clearly separated values")
	}
	if !ApproxLE(1.0+1e-12, 1.0) {
		t.Error("ApproxLE must tolerate drift just above the bound")
	}
	if !ApproxGE(2.0, 1.0) || ApproxGE(1.0, 2.0) {
		t.Error("ApproxGE must order clearly separated values")
	}
	if !ApproxGE(1.0-1e-12, 1.0) {
		t.Error("ApproxGE must tolerate drift just below the bound")
	}
	// A drifted budget check: a cost that exceeds C by float noise fits.
	c := 25.0
	cost := 25.0 + 25*FloatTolerance/2
	if cost <= c {
		t.Fatal("test premise broken: cost should exceed c exactly")
	}
	if !ApproxLE(cost, c) {
		t.Error("ApproxLE should absorb accumulation noise around the budget")
	}
}
