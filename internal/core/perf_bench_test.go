package core

import (
	"fmt"
	"strings"
	"testing"
)

// legacyKey reproduces the pre-optimization Key implementation
// (fmt.Sprintf + strings.Join churn) as the benchmark baseline for the
// strconv.AppendInt + pooled-buffer rewrite.
func legacyKey(v Vector) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return strings.Join(parts, ",")
}

func benchVector() Vector { return Vector{123, 4, 56789, 0, 42} }

func TestLegacyKeyAgrees(t *testing.T) {
	for _, v := range []Vector{{}, {0}, {1, 2, 3}, {-5, 1000000, 7}, benchVector()} {
		if got, want := v.Key(), legacyKey(v); got != want {
			t.Fatalf("Key(%v) = %q, legacy %q", v, got, want)
		}
	}
}

func BenchmarkVectorKey(b *testing.B) {
	v := benchVector()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = v.Key()
	}
}

func BenchmarkVectorKeyLegacy(b *testing.B) {
	v := benchVector()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = legacyKey(v)
	}
}

func BenchmarkGreedyActionSet(b *testing.B) {
	m := NewCostModel(linFunc{0.5, 2}, linFunc{1.5, 1}, linFunc{0.8, 3})
	s := Vector{14, 9, 22}
	c := m.Total(s) * 0.6
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = GreedyActionSet(s, m, c, true)
		}
	})
	b.Run("scratch", func(b *testing.B) {
		var sc ActionScratch
		var buf []Vector
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = sc.AppendGreedyActions(buf[:0], s, m, c, true)
		}
	})
}
