package core

import (
	"math/rand"
	"testing"
)

func TestGreedyActionSetEnumeratesMinimalSubsets(t *testing.T) {
	// f0(k)=k, f1(k)=2k, f2(k)=k. State {3, 2, 1} costs 3+4+1 = 8.
	m := NewCostModel(linFunc{1, 0}, linFunc{2, 0}, linFunc{1, 0})
	s := Vector{3, 2, 1}

	// C=4: need to shed > 4 cost. Options: drop table0 (saves 3, residual
	// 5 > 4 invalid); drop table1 (saves 4, residual 4 valid, minimal);
	// drop table2 (saves 1, invalid); {0,1} residual 1 valid but contains
	// valid subset {1}; {0,2} residual 4 valid and minimal (neither {0}
	// nor {2} valid); {1,2} contains {1}; {0,1,2} contains {1}.
	got := GreedyActionSet(s, m, 4, true)
	want := map[string]bool{"0,2,0": true, "3,0,1": true}
	if len(got) != len(want) {
		t.Fatalf("got %d actions %v, want %d", len(got), got, len(want))
	}
	for _, q := range got {
		if !want[q.Key()] {
			t.Errorf("unexpected minimal action %v", q)
		}
	}
}

func TestGreedyActionSetAllVsMinimal(t *testing.T) {
	m := NewCostModel(linFunc{1, 0}, linFunc{2, 0}, linFunc{1, 0})
	s := Vector{3, 2, 1}
	all := GreedyActionSet(s, m, 4, false)
	// Valid masks from the case analysis above: {1}, {0,1}, {0,2}, {1,2},
	// {0,1,2}.
	if len(all) != 5 {
		t.Fatalf("got %d valid actions %v, want 5", len(all), all)
	}
	minimal := GreedyActionSet(s, m, 4, true)
	for _, q := range minimal {
		// Every minimal action must appear among the valid ones.
		found := false
		for _, a := range all {
			if a.Equal(q) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("minimal action %v missing from valid set", q)
		}
	}
}

func TestGreedyActionSetSkipsEmptyTables(t *testing.T) {
	m := NewCostModel(linFunc{1, 0}, linFunc{1, 0})
	got := GreedyActionSet(Vector{0, 3}, m, 1, false)
	for _, q := range got {
		if q[0] != 0 {
			t.Errorf("action %v drains an empty table", q)
		}
	}
	if len(got) != 1 {
		t.Fatalf("got %d actions, want 1 (drain table 1)", len(got))
	}
}

func TestGreedyActionSetEmptyState(t *testing.T) {
	m := NewCostModel(linFunc{1, 0})
	if got := GreedyActionSet(Vector{0}, m, 1, true); got != nil {
		t.Fatalf("expected nil for empty state, got %v", got)
	}
}

func TestGreedyActionSetFullDrainAlwaysValid(t *testing.T) {
	// Property: for any full state, the set of valid greedy actions is
	// non-empty (the full drain is always there) and minimal actions leave
	// non-full states.
	rng := rand.New(rand.NewSource(3))
	m := NewCostModel(linFunc{1, 0}, linFunc{2, 1}, linFunc{0.5, 3})
	for trial := 0; trial < 200; trial++ {
		s := Vector{rng.Intn(10), rng.Intn(10), rng.Intn(10)}
		c := float64(rng.Intn(12))
		if !m.Full(s, c) {
			continue
		}
		minimal := GreedyActionSet(s, m, c, true)
		if len(minimal) == 0 {
			t.Fatalf("full state %v (C=%g) has no minimal valid action", s, c)
		}
		for _, q := range minimal {
			post := s.Sub(q)
			if m.Full(post, c) {
				t.Fatalf("action %v leaves full state %v", q, post)
			}
			// Minimality: dropping any drained table refills the state.
			for i, k := range q {
				if k == 0 {
					continue
				}
				reduced := q.Clone()
				reduced[i] = 0
				if !m.Full(s.Sub(reduced), c) {
					t.Fatalf("action %v not minimal: table %d droppable", q, i)
				}
			}
		}
	}
}

func TestMinimizeAction(t *testing.T) {
	m := NewCostModel(linFunc{1, 0}, linFunc{2, 0}, linFunc{1, 0})
	s := Vector{3, 2, 1}
	// Full drain is valid for C=4; minimizing should keep a minimal
	// subset. Expensive components (table1, cost 4; table0, cost 3) are
	// dropped first when possible.
	q := MinimizeAction(s.Clone(), s, m, 4)
	post := s.Sub(q)
	if m.Full(post, 4) {
		t.Fatalf("minimized action %v leaves full state", q)
	}
	for i, k := range q {
		if k == 0 {
			continue
		}
		reduced := q.Clone()
		reduced[i] = 0
		if !m.Full(s.Sub(reduced), 4) {
			t.Fatalf("minimized action %v is not minimal (table %d droppable)", q, i)
		}
	}
}

func TestMinimizeActionPreservesValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewCostModel(linFunc{1, 0}, linFunc{3, 0})
	for trial := 0; trial < 200; trial++ {
		s := Vector{rng.Intn(8), rng.Intn(8)}
		c := float64(rng.Intn(10))
		if !m.Full(s, c) {
			continue
		}
		q := MinimizeAction(s.Clone(), s, m, c)
		if !q.DominatedBy(s) || !q.NonNegative() {
			t.Fatalf("minimized action %v out of range for state %v", q, s)
		}
		if m.Full(s.Sub(q), c) {
			t.Fatalf("minimized action %v invalid for state %v, C=%g", q, s, c)
		}
	}
}

func TestCheapestGreedyMinimalAction(t *testing.T) {
	m := NewCostModel(linFunc{1, 0}, linFunc{2, 0}, linFunc{1, 0})
	s := Vector{3, 2, 1}
	// Minimal actions for C=4 are {1} (cost 4) and {0,2} (cost 4): a tie,
	// broken lexicographically on the action key ("0,2,0" < "3,0,1").
	got := CheapestGreedyMinimalAction(s, m, 4)
	if !got.Equal(Vector{0, 2, 0}) {
		t.Fatalf("cheapest action = %v, want [0 2 0]", got)
	}
	// Non-full state: no action needed.
	if got := CheapestGreedyMinimalAction(Vector{1, 0, 0}, m, 4); got != nil {
		t.Fatalf("action for non-full state: %v", got)
	}
}
