package core

import (
	"errors"
	"fmt"
)

// Arrivals is the modification arrival sequence d_0..d_T: Arrivals[t][i]
// counts the modifications that land on base table R_i at step t.
type Arrivals []Vector

// T returns the final time step of the sequence (len-1). The view is
// refreshed at T.
func (a Arrivals) T() int { return len(a) - 1 }

// N returns the number of base tables, inferred from the first step.
// It panics on an empty sequence.
func (a Arrivals) N() int {
	if len(a) == 0 {
		panic("core: empty arrival sequence")
	}
	return len(a[0])
}

// TotalPerTable returns K, where K[i] is the total number of modifications
// on table i over the whole sequence. It panics if the sequence is not
// rectangular (see Validate).
func (a Arrivals) TotalPerTable() Vector {
	if len(a) == 0 {
		return nil
	}
	total := NewVector(a.N())
	for _, d := range a {
		total.AddInPlace(d)
	}
	return total
}

// SuffixTotals returns S where S[t][i] is the total number of table-i
// modifications arriving during (t, T], i.e. strictly after step t. The
// A* heuristic consumes these. S has len(a) entries; S[T] is zero. It
// panics if the sequence is empty or not rectangular.
func (a Arrivals) SuffixTotals() []Vector {
	n := a.N()
	out := make([]Vector, len(a))
	running := NewVector(n)
	for t := len(a) - 1; t >= 0; t-- {
		out[t] = running.Clone()
		running.AddInPlace(a[t])
	}
	return out
}

// MaxPerStep returns m, where m[i] is the largest single-step arrival
// count for table i. The A* heuristic uses this as the slack term in its
// per-table batch bound. It panics if the sequence is empty.
func (a Arrivals) MaxPerStep() Vector {
	m := NewVector(a.N())
	for _, d := range a {
		for i, x := range d {
			if x > m[i] {
				m[i] = x
			}
		}
	}
	return m
}

// Validate checks that the sequence is rectangular and non-negative.
func (a Arrivals) Validate() error {
	if len(a) == 0 {
		return errors.New("core: empty arrival sequence")
	}
	n := len(a[0])
	for t, d := range a {
		if len(d) != n {
			return fmt.Errorf("core: arrival step %d has %d components, want %d", t, len(d), n)
		}
		if !d.NonNegative() {
			return fmt.Errorf("core: arrival step %d has a negative component: %v", t, d)
		}
	}
	return nil
}

// Plan is a maintenance plan p_0..p_T: Plan[t][i] counts the modifications
// drained from delta table i at step t. A nil entry is treated as the zero
// action by the evaluation helpers in this package.
type Plan []Vector

// Clone returns a deep copy of the plan: every action vector is copied,
// and nil entries stay nil.
func (p Plan) Clone() Plan {
	out := make(Plan, len(p))
	for t, act := range p {
		if act != nil {
			out[t] = act.Clone()
		}
	}
	return out
}

// Instance bundles everything that defines one problem instance: the
// arrival sequence, the per-table cost functions, and the response-time
// constraint C. The view is refreshed at the last step of Arrivals.
type Instance struct {
	Arrivals Arrivals
	Model    *CostModel
	C        float64
}

// NewInstance builds an instance and validates its shape. It panics if
// model is nil; shape problems in the arrivals are returned as errors.
func NewInstance(arrivals Arrivals, model *CostModel, c float64) (*Instance, error) {
	if err := arrivals.Validate(); err != nil {
		return nil, err
	}
	if model.N() != arrivals.N() {
		return nil, fmt.Errorf("core: cost model arity %d does not match arrival arity %d", model.N(), arrivals.N())
	}
	if c < 0 {
		return nil, fmt.Errorf("core: negative response-time constraint %g", c)
	}
	return &Instance{Arrivals: arrivals, Model: model, C: c}, nil
}

// N returns the number of base tables. It panics if the instance holds an
// empty arrival sequence (NewInstance never builds one).
func (in *Instance) N() int { return in.Arrivals.N() }

// T returns the refresh time.
func (in *Instance) T() int { return in.Arrivals.T() }

// Cost returns the total maintenance cost of plan p: Σ_t f(p_t).
// Nil actions count as zero. It panics if an action does not match the
// model arity or has a negative component; use Validate to get an error
// instead.
func (in *Instance) Cost(p Plan) float64 {
	total := 0.0
	for _, act := range p {
		if act == nil {
			continue
		}
		total += in.Model.Total(act)
	}
	return total
}

// action returns p[t] or nil when the plan is shorter than t+1 or the
// entry is nil; callers treat nil as the zero action.
func planAction(p Plan, t int) Vector {
	if t >= len(p) {
		return nil
	}
	return p[t]
}

// Trajectory holds the state evolution of a plan over an instance.
type Trajectory struct {
	// Pre[t] is the pre-action state s_t: deltas after the arrivals at t
	// and before the action at t.
	Pre []Vector
	// Post[t] is the post-action state s_t+.
	Post []Vector
}

// Run evolves plan p over the instance and returns the state trajectory.
// It does not validate the plan; see Validate. It panics if an action's
// length does not match the instance arity.
func (in *Instance) Run(p Plan) Trajectory {
	n := in.N()
	tEnd := in.T()
	tr := Trajectory{Pre: make([]Vector, tEnd+1), Post: make([]Vector, tEnd+1)}
	state := NewVector(n)
	for t := 0; t <= tEnd; t++ {
		state.AddInPlace(in.Arrivals[t])
		tr.Pre[t] = state.Clone()
		if act := planAction(p, t); act != nil {
			state.SubInPlace(act)
		}
		tr.Post[t] = state.Clone()
	}
	return tr
}

// PlanError describes why a plan is invalid.
type PlanError struct {
	Time   int
	Reason string
}

func (e *PlanError) Error() string {
	return fmt.Sprintf("core: invalid plan at t=%d: %s", e.Time, e.Reason)
}

// Validate checks plan p against Definition 1:
//   - every action drains at most what has accumulated (0 <= p_t <= s_t),
//   - every post-action state before T satisfies f(s_t+) <= C,
//   - the action at T empties all delta tables (p_T = s_T).
//
// Malformed actions are reported as *PlanError values, never panics; it
// panics only if the instance itself is malformed (mismatched arrival
// arity, which NewInstance rejects).
func (in *Instance) Validate(p Plan) error {
	n := in.N()
	tEnd := in.T()
	state := NewVector(n)
	for t := 0; t <= tEnd; t++ {
		state.AddInPlace(in.Arrivals[t])
		act := planAction(p, t)
		if act == nil {
			act = NewVector(n)
		}
		if len(act) != n {
			return &PlanError{t, fmt.Sprintf("action has %d components, want %d", len(act), n)}
		}
		if !act.NonNegative() {
			return &PlanError{t, fmt.Sprintf("negative action %v", act)}
		}
		if !act.DominatedBy(state) {
			return &PlanError{t, fmt.Sprintf("action %v exceeds accumulated state %v", act, state)}
		}
		state.SubInPlace(act)
		if t < tEnd {
			if in.Model.Full(state, in.C) {
				return &PlanError{t, fmt.Sprintf("post-action state %v is full: f=%.6g > C=%.6g", state, in.Model.Total(state), in.C)}
			}
		}
	}
	if !state.IsZero() {
		return &PlanError{tEnd, fmt.Sprintf("refresh incomplete: residual state %v", state)}
	}
	return nil
}

// IsLazy reports whether plan p is lazy per Definition 2: before T it only
// acts when the pre-action state is full. The plan must be valid; like
// Run, it panics on actions whose length does not match the instance.
func (in *Instance) IsLazy(p Plan) bool {
	tr := in.Run(p)
	for t := 0; t < in.T(); t++ {
		act := planAction(p, t)
		if act == nil || act.IsZero() {
			continue
		}
		if !in.Model.Full(tr.Pre[t], in.C) {
			return false
		}
	}
	return true
}

// IsGreedy reports whether every action of p either fully drains a delta
// table or leaves it untouched (Definition 3, greediness). Like Run, it
// panics on actions whose length does not match the instance.
func (in *Instance) IsGreedy(p Plan) bool {
	tr := in.Run(p)
	for t := 0; t <= in.T(); t++ {
		act := planAction(p, t)
		if act == nil {
			continue
		}
		for i, k := range act {
			if k != 0 && k != tr.Pre[t][i] {
				return false
			}
		}
	}
	return true
}

// IsMinimal reports whether every action before T is minimal per
// Definition 3: no non-zero component can be dropped while keeping the
// post-action state non-full. Like Run, it panics on actions whose length
// does not match the instance.
func (in *Instance) IsMinimal(p Plan) bool {
	tr := in.Run(p)
	for t := 0; t < in.T(); t++ {
		act := planAction(p, t)
		if act == nil || act.IsZero() {
			continue
		}
		for i, k := range act {
			if k == 0 {
				continue
			}
			reduced := act.Clone()
			reduced[i] = 0
			if !in.Model.Full(tr.Pre[t].Sub(reduced), in.C) {
				return false
			}
		}
	}
	return true
}

// IsLGM reports whether p is a valid LGM (lazy, greedy, minimal) plan.
// Like Run, it panics on actions whose length does not match the instance.
func (in *Instance) IsLGM(p Plan) bool {
	if in.Validate(p) != nil {
		return false
	}
	return in.IsLazy(p) && in.IsGreedy(p) && in.IsMinimal(p)
}

// NaivePlan returns the symmetric deferred-maintenance baseline: whenever
// the pre-action state is full (and at T), process everything. This is the
// NAIVE plan of the paper's experiments and is always a valid LGM plan
// except that its actions are not necessarily minimal. It panics if the
// instance's arrival sequence is not rectangular (NewInstance rejects
// such sequences).
func (in *Instance) NaivePlan() Plan {
	n := in.N()
	tEnd := in.T()
	p := make(Plan, tEnd+1)
	state := NewVector(n)
	for t := 0; t <= tEnd; t++ {
		state.AddInPlace(in.Arrivals[t])
		if t == tEnd || in.Model.Full(state, in.C) {
			p[t] = state.Clone()
			state = NewVector(n)
		} else {
			p[t] = NewVector(n)
		}
	}
	return p
}
