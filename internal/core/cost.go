package core

import "fmt"

// CostFunc measures the cost of batch-processing k modifications from one
// delta table. Implementations must be monotone (larger batches never cost
// less) and subadditive (Cost(0)==0 and Cost(x+y) <= Cost(x)+Cost(y));
// subadditivity is what makes batching worthwhile. The costfn package
// provides the standard implementations and property probes.
type CostFunc interface {
	// Cost returns the cost of processing a batch of k modifications.
	// Cost(0) must be 0. k is never negative.
	Cost(k int) float64
}

// MaxBatcher is an optional interface for cost functions that can directly
// answer "what is the largest batch whose cost is <= budget". The A*
// heuristic needs this quantity; CostModel.MaxBatch falls back to an
// exponential-probe/binary search for functions that do not implement it.
type MaxBatcher interface {
	// MaxBatch returns the largest k >= 0 with Cost(k) <= budget, or -1 if
	// no finite maximum exists is never returned: implementations may cap
	// at a documented horizon when the budget is never exceeded.
	MaxBatch(budget float64) int
}

// CostModel bundles the per-table cost functions of an instance.
type CostModel struct {
	funcs []CostFunc
}

// NewCostModel builds a cost model from one CostFunc per base table. It
// panics if no cost functions are given.
func NewCostModel(funcs ...CostFunc) *CostModel {
	if len(funcs) == 0 {
		panic("core: cost model needs at least one cost function")
	}
	return &CostModel{funcs: funcs}
}

// N returns the number of base tables the model covers.
func (m *CostModel) N() int { return len(m.funcs) }

// Func returns the cost function of table i.
func (m *CostModel) Func(i int) CostFunc { return m.funcs[i] }

// TableCost returns f_i(k): the cost of batch-processing k modifications
// from delta table i. It panics if k is negative.
func (m *CostModel) TableCost(i, k int) float64 {
	if k < 0 {
		panic(fmt.Sprintf("core: negative batch size %d for table %d", k, i))
	}
	if k == 0 {
		return 0
	}
	return m.funcs[i].Cost(k)
}

// Total returns f(v) = Σ_i f_i(v[i]), the refresh cost of state v or the
// cost of action v. It panics if v's length does not match the model
// arity or any component is negative.
func (m *CostModel) Total(v Vector) float64 {
	if len(v) != len(m.funcs) {
		panic(fmt.Sprintf("core: vector length %d does not match model arity %d", len(v), len(m.funcs)))
	}
	total := 0.0
	for i, k := range v {
		total += m.TableCost(i, k)
	}
	return total
}

// Full reports whether state s violates the response-time constraint C,
// i.e. f(s) > C beyond float tolerance: a refresh cost within
// FloatTolerance of the budget still fits (summation-order drift must not
// force an action). A valid plan must never leave a full post-action
// state. It panics if s's length does not match the model arity.
func (m *CostModel) Full(s Vector, c float64) bool { return !ApproxLE(m.Total(s), c) }

// maxBatchHorizon bounds the fallback search in MaxBatch for cost
// functions whose value never exceeds the budget (e.g. bounded costs).
const maxBatchHorizon = 1 << 30

// MaxBatch returns the largest batch size k such that f_i(k) <= budget.
// If the cost function implements MaxBatcher the exact answer is delegated;
// otherwise monotonicity justifies an exponential probe followed by a
// binary search. If even maxBatchHorizon modifications fit in the budget,
// maxBatchHorizon is returned.
func (m *CostModel) MaxBatch(i int, budget float64) int {
	f := m.funcs[i]
	if mb, ok := f.(MaxBatcher); ok {
		return mb.MaxBatch(budget)
	}
	if budget < 0 || f.Cost(1) > budget {
		return 0
	}
	lo, hi := 1, 2
	for hi < maxBatchHorizon && f.Cost(hi) <= budget {
		lo = hi
		hi *= 2
	}
	if hi >= maxBatchHorizon {
		return maxBatchHorizon
	}
	// Invariant: Cost(lo) <= budget < Cost(hi).
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		if f.Cost(mid) <= budget {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Note on feasibility: every instance admits a valid plan. The constraint
// applies to post-action states only, and draining every delta table is
// always a permitted action, which leaves the zero state with f(0)=0 <= C.
// What varies between instances is only how expensive the best plan is.
