package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// mkInstance builds a two-table instance with linear costs f0(k)=k,
// f1(k)=2k and constraint c over the given arrivals.
func mkInstance(t *testing.T, arr Arrivals, c float64) *Instance {
	t.Helper()
	in, err := NewInstance(arr, NewCostModel(linFunc{1, 0}, linFunc{2, 0}), c)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestArrivalsAccessors(t *testing.T) {
	arr := Arrivals{{1, 0}, {2, 3}, {0, 1}}
	if arr.T() != 2 {
		t.Fatalf("T = %d", arr.T())
	}
	if arr.N() != 2 {
		t.Fatalf("N = %d", arr.N())
	}
	if got := arr.TotalPerTable(); !got.Equal(Vector{3, 4}) {
		t.Fatalf("TotalPerTable = %v", got)
	}
	if got := arr.MaxPerStep(); !got.Equal(Vector{2, 3}) {
		t.Fatalf("MaxPerStep = %v", got)
	}
}

func TestArrivalsSuffixTotals(t *testing.T) {
	arr := Arrivals{{1, 0}, {2, 3}, {0, 1}}
	s := arr.SuffixTotals()
	want := []Vector{{2, 4}, {0, 1}, {0, 0}}
	for i := range want {
		if !s[i].Equal(want[i]) {
			t.Errorf("SuffixTotals[%d] = %v, want %v", i, s[i], want[i])
		}
	}
}

func TestArrivalsValidate(t *testing.T) {
	if err := (Arrivals{}).Validate(); err == nil {
		t.Error("empty sequence accepted")
	}
	if err := (Arrivals{{1}, {1, 2}}).Validate(); err == nil {
		t.Error("ragged sequence accepted")
	}
	if err := (Arrivals{{1}, {-2}}).Validate(); err == nil {
		t.Error("negative arrivals accepted")
	}
	if err := (Arrivals{{1, 2}, {0, 0}}).Validate(); err != nil {
		t.Errorf("valid sequence rejected: %v", err)
	}
}

func TestNewInstanceValidation(t *testing.T) {
	model := NewCostModel(linFunc{1, 0})
	if _, err := NewInstance(Arrivals{{1, 2}}, model, 5); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := NewInstance(Arrivals{{1}}, model, -1); err == nil {
		t.Error("negative constraint accepted")
	}
	if _, err := NewInstance(Arrivals{{1}}, model, 5); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
}

func TestRunTrajectory(t *testing.T) {
	in := mkInstance(t, Arrivals{{1, 1}, {1, 1}, {1, 1}}, 100)
	p := Plan{{0, 0}, {2, 0}, {1, 3}}
	tr := in.Run(p)
	wantPre := []Vector{{1, 1}, {2, 2}, {1, 3}}
	wantPost := []Vector{{1, 1}, {0, 2}, {0, 0}}
	for i := range wantPre {
		if !tr.Pre[i].Equal(wantPre[i]) {
			t.Errorf("Pre[%d] = %v, want %v", i, tr.Pre[i], wantPre[i])
		}
		if !tr.Post[i].Equal(wantPost[i]) {
			t.Errorf("Post[%d] = %v, want %v", i, tr.Post[i], wantPost[i])
		}
	}
}

func TestValidateAcceptsNaivePlan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		arr := make(Arrivals, 1+rng.Intn(20))
		for ti := range arr {
			arr[ti] = Vector{rng.Intn(3), rng.Intn(3)}
		}
		in := mkInstance(t, arr, float64(2+rng.Intn(10)))
		p := in.NaivePlan()
		if err := in.Validate(p); err != nil {
			t.Fatalf("trial %d: naive plan invalid: %v", trial, err)
		}
		if !in.IsLazy(p) {
			t.Fatalf("trial %d: naive plan not lazy", trial)
		}
		if !in.IsGreedy(p) {
			t.Fatalf("trial %d: naive plan not greedy", trial)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	in := mkInstance(t, Arrivals{{2, 0}, {0, 0}}, 1)

	// Over-draining.
	err := in.Validate(Plan{{3, 0}, {0, 0}})
	if err == nil || !strings.Contains(err.Error(), "exceeds accumulated") {
		t.Errorf("over-drain not rejected: %v", err)
	}

	// Negative action.
	err = in.Validate(Plan{{-1, 0}, {1, 0}})
	if err == nil || !strings.Contains(err.Error(), "negative action") {
		t.Errorf("negative action not rejected: %v", err)
	}

	// Full post-action state: leaving both modifications costs 2 > C=1.
	err = in.Validate(Plan{{0, 0}, {2, 0}})
	if err == nil || !strings.Contains(err.Error(), "full") {
		t.Errorf("full post-action state not rejected: %v", err)
	}

	// Residual at refresh.
	err = in.Validate(Plan{{1, 0}, {0, 0}})
	if err == nil || !strings.Contains(err.Error(), "refresh incomplete") {
		t.Errorf("incomplete refresh not rejected: %v", err)
	}

	// A valid plan passes.
	if err := in.Validate(Plan{{1, 0}, {1, 0}}); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}

	var perr *PlanError
	if err := in.Validate(Plan{{3, 0}, {0, 0}}); !errors.As(err, &perr) {
		t.Errorf("error is not a *PlanError: %v", err)
	}
}

func TestValidateWithNilAndShortPlans(t *testing.T) {
	in := mkInstance(t, Arrivals{{1, 0}, {0, 0}}, 10)
	// Short plan: missing actions are zero, so the refresh never happens.
	if err := in.Validate(Plan{}); err == nil {
		t.Error("empty plan accepted despite residual state")
	}
	// Nil entries are zero actions.
	if err := in.Validate(Plan{nil, {1, 0}}); err != nil {
		t.Errorf("plan with nil action rejected: %v", err)
	}
}

func TestPlanCost(t *testing.T) {
	in := mkInstance(t, Arrivals{{1, 1}, {1, 1}}, 100)
	p := Plan{{1, 0}, {1, 2}}
	// f0(1)+f0(1)+f1(2) = 1+1+4.
	if got := in.Cost(p); got != 6 {
		t.Fatalf("Cost = %g, want 6", got)
	}
	if got := in.Cost(Plan{nil, nil}); got != 0 {
		t.Fatalf("Cost of nil plan = %g", got)
	}
}

func TestIsLazyDetectsEagerAction(t *testing.T) {
	in := mkInstance(t, Arrivals{{1, 0}, {1, 0}, {0, 0}}, 10)
	eager := Plan{{1, 0}, {1, 0}, {0, 0}}
	if in.IsLazy(eager) {
		t.Error("eager plan reported lazy")
	}
	lazy := Plan{{0, 0}, {0, 0}, {2, 0}}
	if !in.IsLazy(lazy) {
		t.Error("lazy plan reported eager")
	}
}

func TestIsGreedyDetectsPartialDrain(t *testing.T) {
	in := mkInstance(t, Arrivals{{2, 0}, {0, 0}}, 10)
	partial := Plan{{1, 0}, {1, 0}}
	if in.IsGreedy(partial) {
		t.Error("partial drain reported greedy")
	}
	full := Plan{{0, 0}, {2, 0}}
	if !in.IsGreedy(full) {
		t.Error("full drain reported non-greedy")
	}
}

func TestIsMinimalDetectsOverkill(t *testing.T) {
	// C=3: after arrivals {2,1} the state costs 2+2=4 > 3, so an action is
	// forced; draining only table 1 (saving 2) reaches cost 2 <= 3, so
	// draining both tables is not minimal.
	in := mkInstance(t, Arrivals{{2, 1}, {0, 0}}, 3)
	overkill := Plan{{2, 1}, {0, 0}}
	if in.IsMinimal(overkill) {
		t.Error("overkill action reported minimal")
	}
	minimal := Plan{{0, 1}, {2, 0}}
	if !in.IsMinimal(minimal) {
		t.Error("minimal action reported non-minimal")
	}
}

func TestIsLGM(t *testing.T) {
	in := mkInstance(t, Arrivals{{2, 1}, {0, 0}}, 3)
	if !in.IsLGM(Plan{{0, 1}, {2, 0}}) {
		t.Error("LGM plan rejected")
	}
	if in.IsLGM(Plan{{2, 1}, {0, 0}}) {
		t.Error("non-minimal plan accepted as LGM")
	}
	// Invalid plans are never LGM.
	if in.IsLGM(Plan{{0, 0}, {0, 0}}) {
		t.Error("invalid plan accepted as LGM")
	}
}

func TestNaivePlanFlushesEverythingWhenFull(t *testing.T) {
	// C=2, arrivals of cost 1 per step on table 0: fills at t=2 (3 > 2).
	in := mkInstance(t, Arrivals{{1, 0}, {1, 0}, {1, 0}, {1, 0}, {0, 0}}, 2)
	p := in.NaivePlan()
	if !p[2].Equal(Vector{3, 0}) {
		t.Fatalf("naive flush at t=2 = %v, want [3 0]", p[2])
	}
	if err := in.Validate(p); err != nil {
		t.Fatal(err)
	}
}
