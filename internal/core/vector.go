package core

import (
	"fmt"
	"strings"
)

// Vector is an n-component count vector. It represents arrivals (d_t),
// actions (p_t) or states (s_t): component i counts modifications on base
// table R_i. Components are never negative in a well-formed instance.
type Vector []int

// NewVector returns a zero vector with n components.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// IsZero reports whether every component of v is zero.
func (v Vector) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// Sum returns the total count across all components.
func (v Vector) Sum() int {
	s := 0
	for _, x := range v {
		s += x
	}
	return s
}

// Add returns v + w as a new vector. It panics if the lengths differ.
func (v Vector) Add(w Vector) Vector {
	mustSameLen(v, w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w as a new vector. It panics if the lengths differ.
func (v Vector) Sub(w Vector) Vector {
	mustSameLen(v, w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// AddInPlace adds w into v component-wise. It panics if the vectors have
// different lengths.
func (v Vector) AddInPlace(w Vector) {
	mustSameLen(v, w)
	for i := range v {
		v[i] += w[i]
	}
}

// SubInPlace subtracts w from v component-wise. It panics if the vectors
// have different lengths.
func (v Vector) SubInPlace(w Vector) {
	mustSameLen(v, w)
	for i := range v {
		v[i] -= w[i]
	}
}

// NonNegative reports whether every component of v is >= 0.
func (v Vector) NonNegative() bool {
	for _, x := range v {
		if x < 0 {
			return false
		}
	}
	return true
}

// DominatedBy reports whether v <= w component-wise. It panics if the
// vectors have different lengths.
func (v Vector) DominatedBy(w Vector) bool {
	mustSameLen(v, w)
	for i := range v {
		if v[i] > w[i] {
			return false
		}
	}
	return true
}

// Equal reports whether v and w have identical components.
func (v Vector) Equal(w Vector) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// Key returns a compact string usable as a map key for deduplicating
// states during search.
func (v Vector) Key() string {
	var b strings.Builder
	for i, x := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", x)
	}
	return b.String()
}

// String renders v as "[a b c]".
func (v Vector) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func mustSameLen(v, w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("core: vector length mismatch %d vs %d", len(v), len(w)))
	}
}
