package core

import (
	"fmt"
	"strconv"
	"sync"
)

// Vector is an n-component count vector. It represents arrivals (d_t),
// actions (p_t) or states (s_t): component i counts modifications on base
// table R_i. Components are never negative in a well-formed instance.
type Vector []int

// NewVector returns a zero vector with n components.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// IsZero reports whether every component of v is zero.
func (v Vector) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// Sum returns the total count across all components.
func (v Vector) Sum() int {
	s := 0
	for _, x := range v {
		s += x
	}
	return s
}

// Add returns v + w as a new vector. It panics if the lengths differ.
func (v Vector) Add(w Vector) Vector {
	mustSameLen(v, w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w as a new vector. It panics if the lengths differ.
func (v Vector) Sub(w Vector) Vector {
	mustSameLen(v, w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// AddInPlace adds w into v component-wise. It panics if the vectors have
// different lengths.
func (v Vector) AddInPlace(w Vector) {
	mustSameLen(v, w)
	for i := range v {
		v[i] += w[i]
	}
}

// SubInPlace subtracts w from v component-wise. It panics if the vectors
// have different lengths.
func (v Vector) SubInPlace(w Vector) {
	mustSameLen(v, w)
	for i := range v {
		v[i] -= w[i]
	}
}

// NonNegative reports whether every component of v is >= 0.
func (v Vector) NonNegative() bool {
	for _, x := range v {
		if x < 0 {
			return false
		}
	}
	return true
}

// DominatedBy reports whether v <= w component-wise. It panics if the
// vectors have different lengths.
func (v Vector) DominatedBy(w Vector) bool {
	mustSameLen(v, w)
	for i := range v {
		if v[i] > w[i] {
			return false
		}
	}
	return true
}

// Equal reports whether v and w have identical components.
func (v Vector) Equal(w Vector) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// keyBufPool recycles the scratch byte buffers behind Key and String so
// rendering a vector costs exactly one allocation (the returned string).
var keyBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

// Key returns a compact string usable as a map key for deduplicating
// states, and as the debug rendering of a vector's components. The hot
// search path in internal/astar packs states into fixed-size comparable
// keys instead; Key remains the debug/String formatting path and the
// deterministic tie-break order for action selection.
func (v Vector) Key() string {
	return v.render(',', "")
}

// String renders v as "[a b c]".
func (v Vector) String() string {
	return v.render(' ', "[]")
}

// render joins the components with sep; brackets, when non-empty, holds
// the surrounding open/close bytes.
func (v Vector) render(sep byte, brackets string) string {
	bp := keyBufPool.Get().(*[]byte)
	b := (*bp)[:0]
	if brackets != "" {
		b = append(b, brackets[0])
	}
	for i, x := range v {
		if i > 0 {
			b = append(b, sep)
		}
		b = strconv.AppendInt(b, int64(x), 10)
	}
	if brackets != "" {
		b = append(b, brackets[1])
	}
	s := string(b)
	*bp = b
	keyBufPool.Put(bp)
	return s
}

func mustSameLen(v, w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("core: vector length mismatch %d vs %d", len(v), len(w)))
	}
}
