package core

import "fmt"

// maxEnumTables caps the subset enumeration used to generate greedy
// actions. The paper observes n is a very small constant (n <= 5 for its
// TPC-R views); 20 leaves generous headroom while preventing a 2^n blowup
// from a mis-constructed instance.
const maxEnumTables = 20

// ActionScratch holds the reusable enumeration buffers behind
// GreedyActionSet. A caller that enumerates actions once per node
// expansion (the A* searcher) keeps one scratch and calls
// AppendGreedyActions to avoid re-allocating the buffers every time.
// The zero value is ready to use; a scratch must not be used from
// multiple goroutines at once.
type ActionScratch struct {
	occupied []int
	saved    []float64
}

// GreedyActionSet enumerates candidate greedy actions for pre-action state
// s under constraint C: each candidate empties exactly the delta tables in
// some subset and leaves a non-full post-action state. Only subsets of
// tables with non-empty deltas are considered.
//
// If minimalOnly is true only minimal candidates are returned: emptying any
// proper subset would leave a full state (Definition 3, minimality).
// Validity of a subset is monotone (emptying more tables only shrinks the
// residual refresh cost), so minimality is checked against one-bit-removed
// subsets only.
//
// It panics if s has more than maxEnumTables components or does not match
// the model arity.
func GreedyActionSet(s Vector, m *CostModel, c float64, minimalOnly bool) []Vector {
	var sc ActionScratch
	return sc.AppendGreedyActions(nil, s, m, c, minimalOnly)
}

// AppendGreedyActions appends the greedy action set of s (see
// GreedyActionSet) to dst and returns the extended slice. The appended
// action vectors are freshly allocated and owned by the caller; only the
// scratch's internal enumeration buffers are reused across calls. It
// panics if s has more than maxEnumTables components or does not match
// the model arity.
func (sc *ActionScratch) AppendGreedyActions(dst []Vector, s Vector, m *CostModel, c float64, minimalOnly bool) []Vector {
	n := len(s)
	if n > maxEnumTables {
		panic(fmt.Sprintf("core: %d tables exceeds the greedy-action enumeration cap %d", n, maxEnumTables))
	}
	// Tables that actually hold modifications; emptying an empty table is a
	// no-op, so subsets are built over occupied tables only.
	occupied := sc.occupied[:0]
	for i, k := range s {
		if k > 0 {
			occupied = append(occupied, i)
		}
	}
	sc.occupied = occupied
	if len(occupied) == 0 {
		return dst
	}
	total := m.Total(s)
	// saved[j] is the refresh cost removed by emptying occupied[j].
	saved := sc.saved[:0]
	for _, i := range occupied {
		saved = append(saved, m.TableCost(i, s[i]))
	}
	sc.saved = saved
	nOcc := len(occupied)
	valid := func(mask uint32) bool {
		residual := total
		for j := 0; j < nOcc; j++ {
			if mask&(1<<j) != 0 {
				residual -= saved[j]
			}
		}
		// The subtractive residual drifts from the additive total the
		// model computes, so compare within tolerance.
		return ApproxLE(residual, c)
	}
	for mask := uint32(1); mask < 1<<nOcc; mask++ {
		if !valid(mask) {
			continue
		}
		if minimalOnly {
			minimal := true
			for j := 0; j < nOcc; j++ {
				if mask&(1<<j) != 0 && valid(mask&^(1<<j)) {
					minimal = false
					break
				}
			}
			if !minimal {
				continue
			}
		}
		act := NewVector(n)
		for j, i := range occupied {
			if mask&(1<<uint(j)) != 0 {
				act[i] = s[i]
			}
		}
		dst = append(dst, act)
	}
	return dst
}

// MinimizeAction implements the paper's MinimizeAction(q, s): given a
// greedy action q over pre-action state s with f(s-q) <= C, it returns a
// minimal greedy action that empties a subset of the tables emptied by q
// and still satisfies the constraint. Tables are considered for removal in
// descending order of their drain cost, so the kept (processed) components
// tend to be the cheap ones; any minimal subset satisfies the paper's
// proofs. It panics if q or s does not match the model arity or q is not
// dominated by s.
func MinimizeAction(q, s Vector, m *CostModel, c float64) Vector {
	out := q.Clone()
	residual := m.Total(s.Sub(out))
	type cand struct {
		i    int
		cost float64
	}
	cands := make([]cand, 0, len(out))
	for i, k := range out {
		if k > 0 {
			cands = append(cands, cand{i, m.TableCost(i, k)})
		}
	}
	// Descending drain cost: try to avoid paying the big components.
	for a := 0; a < len(cands); a++ {
		for b := a + 1; b < len(cands); b++ {
			if cands[b].cost > cands[a].cost {
				cands[a], cands[b] = cands[b], cands[a]
			}
		}
	}
	for _, cd := range cands {
		// Dropping table cd.i from the action puts its full delta cost back
		// into the residual refresh cost.
		restored := m.TableCost(cd.i, s[cd.i])
		if ApproxLE(residual+restored, c) {
			residual += restored
			out[cd.i] = 0
		}
	}
	return out
}

// CheapestGreedyMinimalAction returns the greedy minimal valid action for
// state s with the smallest immediate processing cost f(q), or nil when s
// is not full (no action is forced). Ties break toward the
// lexicographically smallest action for determinism. It panics if s does
// not match the model arity or exceeds the enumeration cap.
func CheapestGreedyMinimalAction(s Vector, m *CostModel, c float64) Vector {
	if !m.Full(s, c) {
		return nil
	}
	var best Vector
	bestCost := 0.0
	for _, q := range GreedyActionSet(s, m, c, true) {
		cost := m.Total(q)
		if best == nil || cost < bestCost || (ApproxEq(cost, bestCost) && q.Key() < best.Key()) {
			best, bestCost = q, cost
		}
	}
	return best
}
