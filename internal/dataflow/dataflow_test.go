package dataflow

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"abivm/internal/ivm"
	"abivm/internal/storage"
)

// testDB builds the stations/sales database the chaos workload uses.
func testDB(t *testing.T) *storage.DB {
	t.Helper()
	db := storage.NewDB()
	st, err := storage.NewSchema("stations", []storage.Column{
		{Name: "stationkey", Type: storage.TInt},
		{Name: "region", Type: storage.TString},
	}, "stationkey")
	if err != nil {
		t.Fatal(err)
	}
	stations, err := db.CreateTable(st)
	if err != nil {
		t.Fatal(err)
	}
	regions := []string{"EAST", "WEST"}
	for i := int64(0); i < 6; i++ {
		if err := stations.Insert(storage.Row{storage.I(i), storage.S(regions[i%2])}); err != nil {
			t.Fatal(err)
		}
	}
	if err := stations.CreateIndex("st_pk", storage.HashIndex, "stationkey"); err != nil {
		t.Fatal(err)
	}
	sa, err := storage.NewSchema("sales", []storage.Column{
		{Name: "salekey", Type: storage.TInt},
		{Name: "station", Type: storage.TInt},
		{Name: "amount", Type: storage.TFloat},
	}, "salekey")
	if err != nil {
		t.Fatal(err)
	}
	sales, err := db.CreateTable(sa)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 20; i++ {
		if err := sales.Insert(storage.Row{storage.I(i), storage.I(i % 6), storage.F(float64(1 + i%9))}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// applyLive applies one modification to the live database (the part
// Maintainer.Apply does besides enqueueing).
func applyLive(t *testing.T, db *storage.DB, table string, mod ivm.Mod) {
	t.Helper()
	tbl, err := db.Table(table)
	if err != nil {
		t.Fatal(err)
	}
	switch mod.Kind {
	case ivm.ModInsert:
		err = tbl.Insert(mod.Row)
	case ivm.ModDelete:
		_, err = tbl.Delete(mod.Key...)
	case ivm.ModUpdate:
		_, err = tbl.Update(mod.Key, mod.Row)
	}
	if err != nil {
		t.Fatal(err)
	}
}

func renderRows(rows []storage.Row) string {
	parts := make([]string, len(rows))
	for i, r := range rows {
		parts[i] = fmt.Sprintf("%q", storage.EncodeKey(r...))
	}
	return strings.Join(parts, "|")
}

// pair couples a classic maintainer and a shared-graph handle over one
// live database, fed the same modification and drain streams.
type pair struct {
	t *testing.T
	m *ivm.Maintainer
	h *ViewHandle
	g *Graph
}

func newPair(t *testing.T, db *storage.DB, g *Graph, query string) *pair {
	t.Helper()
	m, err := ivm.New(db, query)
	if err != nil {
		t.Fatalf("ivm.New(%q): %v", query, err)
	}
	p, err := ivm.PlanView(query)
	if err != nil {
		t.Fatal(err)
	}
	h, err := g.Subscribe(p)
	if err != nil {
		t.Fatalf("Subscribe(%q): %v", query, err)
	}
	return &pair{t: t, m: m, h: h, g: g}
}

// apply routes one modification to both runtimes: the maintainer
// applies it to the live table and enqueues; the graph ingests it
// (the live mutation already happened).
func (p *pair) apply(table string, mod ivm.Mod) {
	p.t.Helper()
	if err := p.m.Apply(mod); err != nil {
		p.t.Fatalf("maintainer apply: %v", err)
	}
	if err := p.g.Ingest(table, mod); err != nil {
		p.t.Fatalf("graph ingest: %v", err)
	}
}

func (p *pair) drain(alias string, k int) {
	p.t.Helper()
	if err := p.m.ProcessBatch(alias, k); err != nil {
		p.t.Fatalf("maintainer drain %s/%d: %v", alias, k, err)
	}
	if err := p.h.ProcessBatch(alias, k); err != nil {
		p.t.Fatalf("handle drain %s/%d: %v", alias, k, err)
	}
}

func (p *pair) check(ctx string) {
	p.t.Helper()
	want := renderRows(p.m.Result())
	got := renderRows(p.h.Result())
	if want != got {
		p.t.Fatalf("%s: shared result diverged\nmaintainer: %s\nshared:     %s", ctx, want, got)
	}
	wantPend := fmt.Sprint(p.m.Pending())
	gotPend := fmt.Sprint(p.h.Pending())
	if wantPend != gotPend {
		p.t.Fatalf("%s: pending diverged: maintainer %s, shared %s", ctx, wantPend, gotPend)
	}
}

// mutate generates one deterministic pseudo-random modification stream
// step: inserts, deletes, and updates over both tables.
type mutator struct {
	rng      *rand.Rand
	nextSale int64
	sales    []int64
	stations []int64
}

func newMutator(seed int64) *mutator {
	mu := &mutator{rng: rand.New(rand.NewSource(seed)), nextSale: 20}
	for i := int64(0); i < 20; i++ {
		mu.sales = append(mu.sales, i)
	}
	for i := int64(0); i < 6; i++ {
		mu.stations = append(mu.stations, i)
	}
	return mu
}

// step emits (table, mod) pairs; aliases are stamped by the caller.
func (mu *mutator) step() (tables []string, mods []ivm.Mod) {
	n := 1 + mu.rng.Intn(3)
	for i := 0; i < n; i++ {
		switch mu.rng.Intn(4) {
		case 0, 1: // insert a sale
			id := mu.nextSale
			mu.nextSale++
			mu.sales = append(mu.sales, id)
			row := storage.Row{storage.I(id), storage.I(mu.stations[mu.rng.Intn(len(mu.stations))]), storage.F(float64(1 + mu.rng.Intn(20)))}
			tables = append(tables, "sales")
			mods = append(mods, ivm.Mod{Kind: ivm.ModInsert, Row: row})
		case 2: // delete a sale
			if len(mu.sales) == 0 {
				continue
			}
			i := mu.rng.Intn(len(mu.sales))
			id := mu.sales[i]
			mu.sales = append(mu.sales[:i], mu.sales[i+1:]...)
			tables = append(tables, "sales")
			mods = append(mods, ivm.Mod{Kind: ivm.ModDelete, Key: []storage.Value{storage.I(id)}})
		case 3: // flip a station's region
			id := mu.stations[mu.rng.Intn(len(mu.stations))]
			region := "EAST"
			if mu.rng.Intn(2) == 0 {
				region = "WEST"
			}
			tables = append(tables, "stations")
			mods = append(mods, ivm.Mod{Kind: ivm.ModUpdate, Key: []storage.Value{storage.I(id)}, Row: storage.Row{storage.I(id), storage.S(region)}})
		}
	}
	return tables, mods
}

var equivalenceQueries = []string{
	"SELECT SUM(s.amount), COUNT(*) FROM sales AS s, stations AS st WHERE s.station = st.stationkey AND st.region = 'EAST'",
	"SELECT st.region, SUM(s.amount), MIN(s.amount), MAX(s.amount) FROM sales AS s, stations AS st WHERE s.station = st.stationkey GROUP BY st.region",
	"SELECT s.salekey, st.region FROM sales AS s, stations AS st WHERE s.station = st.stationkey AND s.amount > 5",
	"SELECT region, COUNT(*) FROM stations GROUP BY region",
	"SELECT station, AVG(amount) FROM sales GROUP BY station",
}

// aliasFor maps a table to a query's FROM alias; the equivalence
// queries use s/st or the bare table names.
func aliasFor(m *ivm.Maintainer, table string) string {
	for _, a := range m.Aliases() {
		if m.TableOf(a) == table {
			return a
		}
	}
	return ""
}

// TestEquivalenceWithMaintainer drives the per-view maintainer and the
// shared-graph handle with identical modification and asymmetric drain
// schedules and requires byte-identical results and backlog vectors at
// every step — the core byte-identity contract of the shared runtime.
func TestEquivalenceWithMaintainer(t *testing.T) {
	for qi, query := range equivalenceQueries {
		for seed := int64(1); seed <= 5; seed++ {
			db := testDB(t)
			g := NewGraph(db)
			p := newPair(t, db, g, query)
			mu := newMutator(seed)
			drains := rand.New(rand.NewSource(seed * 977))
			for step := 0; step < 40; step++ {
				tables, mods := mu.step()
				for i, mod := range mods {
					alias := aliasFor(p.m, tables[i])
					if alias == "" {
						continue // table not read by this view
					}
					mod.Alias = alias
					p.apply(tables[i], mod)
				}
				// Asymmetric drain: pick one alias, drain a random prefix.
				aliases := p.m.Aliases()
				alias := aliases[drains.Intn(len(aliases))]
				pend := p.m.Pending()
				for i, a := range aliases {
					if a == alias && pend[i] > 0 {
						p.drain(alias, 1+drains.Intn(pend[i]))
					}
				}
				p.check(fmt.Sprintf("query %d seed %d step %d", qi, seed, step))
			}
			// Full refresh at the end must converge both runtimes.
			if err := p.m.Refresh(); err != nil {
				t.Fatal(err)
			}
			if err := p.h.Refresh(); err != nil {
				t.Fatal(err)
			}
			p.check(fmt.Sprintf("query %d seed %d refresh", qi, seed))
		}
	}
}

// TestEquivalenceSingleTableMods exercises queries whose tables see no
// mods at all for long stretches (cursor coverage with frozen
// coordinates).
func TestEquivalenceLateSubscriber(t *testing.T) {
	query := equivalenceQueries[1]
	db := testDB(t)
	g := NewGraph(db)
	p := newPair(t, db, g, query)
	mu := newMutator(7)
	for step := 0; step < 10; step++ {
		tables, mods := mu.step()
		for i, mod := range mods {
			mod.Alias = aliasFor(p.m, tables[i])
			p.apply(tables[i], mod)
		}
	}
	// A subscriber arriving mid-stream starts from the live state with
	// an empty backlog, exactly like a fresh maintainer.
	p2 := newPair(t, db, g, equivalenceQueries[0])
	p2.check("late subscribe")
	drains := rand.New(rand.NewSource(99))
	for step := 0; step < 20; step++ {
		tables, mods := mu.step()
		for i, mod := range mods {
			mod.Alias = aliasFor(p.m, tables[i])
			p.apply(tables[i], mod)
			mod2 := mod
			mod2.Alias = aliasFor(p2.m, tables[i])
			if err := p2.m.ApplyDeferred(mod2); err != nil {
				t.Fatal(err)
			}
		}
		for _, pr := range []*pair{p, p2} {
			aliases := pr.m.Aliases()
			alias := aliases[drains.Intn(len(aliases))]
			pend := pr.m.Pending()
			for i, a := range aliases {
				if a == alias && pend[i] > 0 {
					pr.drain(alias, 1+drains.Intn(pend[i]))
				}
			}
		}
		p.check(fmt.Sprintf("late step %d view 1", step))
		p2.check(fmt.Sprintf("late step %d view 2", step))
	}
}

// TestSharingOpCount proves sharing is real: two views over the same
// join with different group-bys instantiate the shared sub-plan once,
// and a third identical view adds no nodes at all.
func TestSharingOpCount(t *testing.T) {
	db := testDB(t)
	g := NewGraph(db)
	qA := "SELECT st.region, SUM(s.amount) FROM sales AS s, stations AS st WHERE s.station = st.stationkey GROUP BY st.region"
	qB := "SELECT st.stationkey, COUNT(*) FROM sales AS s, stations AS st WHERE s.station = st.stationkey GROUP BY st.stationkey"

	pA, err := ivm.PlanView(qA)
	if err != nil {
		t.Fatal(err)
	}
	hA, err := g.Subscribe(pA)
	if err != nil {
		t.Fatal(err)
	}
	base := g.Stats()
	if base.Nodes != 4 { // scan(sales), scan(stations), join, project
		t.Fatalf("single view built %d nodes, want 4: %v", base.Nodes, hA.Signatures())
	}

	pB, err := ivm.PlanView(qB)
	if err != nil {
		t.Fatal(err)
	}
	hB, err := g.Subscribe(pB)
	if err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Nodes != 5 { // + project only; both scans and the join shared
		t.Fatalf("two overlapping views built %d nodes, want 5", st.Nodes)
	}
	if st.InternHits != 3 {
		t.Fatalf("intern hits = %d, want 3 (scan, scan, join reused)", st.InternHits)
	}
	if st.Views != 2 {
		t.Fatalf("views = %d, want 2", st.Views)
	}

	// An identical third view shares everything including the top
	// projection; its sink rides the existing node.
	pA2, err := ivm.PlanView(qA)
	if err != nil {
		t.Fatal(err)
	}
	hA2, err := g.Subscribe(pA2)
	if err != nil {
		t.Fatal(err)
	}
	st = g.Stats()
	if st.Nodes != 5 {
		t.Fatalf("identical view added nodes: %d, want 5", st.Nodes)
	}
	if st.InternHits != 3+4 {
		t.Fatalf("intern hits = %d, want 7", st.InternHits)
	}

	// The shared join feeds all three sinks with correct, divergent
	// downstream content.
	mu := newMutator(3)
	for step := 0; step < 15; step++ {
		tables, mods := mu.step()
		for i, mod := range mods {
			applyLive(t, db, tables[i], mod)
			if err := g.Ingest(tables[i], mod); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, h := range []*ViewHandle{hA, hB, hA2} {
		if err := h.Refresh(); err != nil {
			t.Fatal(err)
		}
	}
	wantA, err := ivm.New(db, qA)
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := ivm.New(db, qB)
	if err != nil {
		t.Fatal(err)
	}
	if renderRows(hA.Result()) != renderRows(wantA.Result()) {
		t.Fatalf("view A diverged from fresh recompute")
	}
	if renderRows(hA2.Result()) != renderRows(wantA.Result()) {
		t.Fatalf("view A2 diverged from fresh recompute")
	}
	if renderRows(hB.Result()) != renderRows(wantB.Result()) {
		t.Fatalf("view B diverged from fresh recompute")
	}
}

// TestReleaseRefcounts proves unsubscribe releases only unshared nodes
// and the graph is empty after the last view leaves.
func TestReleaseRefcounts(t *testing.T) {
	db := testDB(t)
	g := NewGraph(db)
	qA := "SELECT st.region, SUM(s.amount) FROM sales AS s, stations AS st WHERE s.station = st.stationkey GROUP BY st.region"
	qB := "SELECT st.stationkey, COUNT(*) FROM sales AS s, stations AS st WHERE s.station = st.stationkey GROUP BY st.stationkey"
	qC := "SELECT region, COUNT(*) FROM stations GROUP BY region"
	var handles []*ViewHandle
	for _, q := range []string{qA, qB, qC} {
		p, err := ivm.PlanView(q)
		if err != nil {
			t.Fatal(err)
		}
		h, err := g.Subscribe(p)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	// 2 scans + shared join + 3 projections; qC rides scan(stations).
	if n := g.Stats().Nodes; n != 6 {
		t.Fatalf("three views built %d nodes, want 6", n)
	}

	// Releasing B drops only its projection; the shared join and scans
	// stay for A.
	g.Release(handles[1])
	if n := g.Stats().Nodes; n != 5 {
		t.Fatalf("after releasing B: %d nodes, want 5", n)
	}
	if !g.Watches("sales") || !g.Watches("stations") {
		t.Fatal("shared scans must survive releasing one of their views")
	}

	// Releasing A drops the join spine; C keeps scan(stations) alive.
	g.Release(handles[0])
	if n := g.Stats().Nodes; n != 2 { // scan(stations) + C's project
		t.Fatalf("after releasing A: %d nodes, want 2", n)
	}
	if g.Watches("sales") {
		t.Fatal("sales scan leaked after its last view released")
	}

	g.Release(handles[2])
	st := g.Stats()
	if st.Nodes != 0 || st.Views != 0 {
		t.Fatalf("graph not empty after all views released: %+v", st)
	}
	if g.Watches("stations") {
		t.Fatal("stations scan leaked")
	}
	if len(g.refs) != 0 {
		t.Fatalf("refcount map leaked: %v", g.refs)
	}
}

// TestCheckpointRecover crashes a handle mid-stream and recovers it
// from its snapshot plus WAL replay; the recovered view must match an
// undisturbed control at every subsequent step.
func TestCheckpointRecover(t *testing.T) {
	query := equivalenceQueries[1]
	db := testDB(t)
	g := NewGraph(db)
	p := newPair(t, db, g, query)
	wal := ivm.NewWAL()
	p.h.AttachWAL(wal)
	p.h.SetNamespace("test/view")
	if err := p.h.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	mu := newMutator(11)
	drains := rand.New(rand.NewSource(5))
	step := func(ctx string) {
		tables, mods := mu.step()
		for i, mod := range mods {
			mod.Alias = aliasFor(p.m, tables[i])
			if err := p.m.Apply(mod); err != nil {
				t.Fatal(err)
			}
			if err := p.g.Ingest(tables[i], mod); err != nil {
				t.Fatal(err)
			}
			if err := p.h.LogArrival(mod); err != nil {
				t.Fatal(err)
			}
		}
		aliases := p.m.Aliases()
		alias := aliases[drains.Intn(len(aliases))]
		pend := p.m.Pending()
		for i, a := range aliases {
			if a == alias && pend[i] > 0 {
				p.drain(alias, 1+drains.Intn(pend[i]))
			}
		}
		p.check(ctx)
	}

	for i := 0; i < 8; i++ {
		step(fmt.Sprintf("pre-checkpoint step %d", i))
	}
	if err := p.h.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := wal.TruncateThrough(p.h.TipLSN()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		step(fmt.Sprintf("post-checkpoint step %d", i))
	}

	// Crash: wipe the volatile per-view state and recover.
	if err := p.h.Recover(); err != nil {
		t.Fatal(err)
	}
	p.check("after recovery")
	for i := 0; i < 8; i++ {
		step(fmt.Sprintf("post-recovery step %d", i))
	}
}

// TestTrimWatermark garbage-collects retained state below the durable
// watermark and proves maintenance stays correct afterwards.
func TestTrimWatermark(t *testing.T) {
	query := equivalenceQueries[1]
	db := testDB(t)
	g := NewGraph(db)
	p := newPair(t, db, g, query)
	mu := newMutator(17)
	drains := rand.New(rand.NewSource(23))
	step := func(ctx string) {
		tables, mods := mu.step()
		for i, mod := range mods {
			mod.Alias = aliasFor(p.m, tables[i])
			p.apply(tables[i], mod)
		}
		aliases := p.m.Aliases()
		alias := aliases[drains.Intn(len(aliases))]
		pend := p.m.Pending()
		for i, a := range aliases {
			if a == alias && pend[i] > 0 {
				p.drain(alias, 1+drains.Intn(pend[i]))
			}
		}
		p.check(ctx)
	}
	for i := 0; i < 20; i++ {
		step(fmt.Sprintf("pre-trim step %d", i))
	}
	if err := p.h.Refresh(); err != nil {
		t.Fatal(err)
	}
	if err := p.m.Refresh(); err != nil {
		t.Fatal(err)
	}
	if err := p.h.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	joinEntries := func() int {
		n := 0
		for _, nd := range g.nodes {
			if j, ok := nd.(*joinNode); ok {
				n += len(j.lstate.entries) + len(j.rstate.entries)
			}
		}
		return n
	}
	before := joinEntries()
	g.Trim(p.h.DurableCursors())
	after := joinEntries()
	if after >= before {
		t.Fatalf("trim did not consolidate join state: %d -> %d entries", before, after)
	}
	if n := len(p.h.top.retained()); n != 0 {
		t.Fatalf("retained log not emptied at full coverage: %d entries", n)
	}
	for i := 0; i < 20; i++ {
		step(fmt.Sprintf("post-trim step %d", i))
	}
}

// TestSignatures pins the canonical EXPLAIN surface: alias-insensitive,
// conjunct-order-insensitive signatures.
func TestSignatures(t *testing.T) {
	db := testDB(t)
	g := NewGraph(db)
	q1 := "SELECT SUM(s.amount) FROM sales AS s, stations AS st WHERE s.station = st.stationkey AND st.region = 'EAST'"
	q2 := "SELECT SUM(x.amount) FROM sales AS x, stations AS y WHERE y.region = 'EAST' AND x.station = y.stationkey"
	p1, err := ivm.PlanView(q1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ivm.PlanView(q2)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := Signatures(p1, g.schemaOf)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Signatures(p2, g.schemaOf)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(s1, "\n") != strings.Join(s2, "\n") {
		t.Fatalf("alias/order-insensitive signatures diverged:\n%v\n%v", s1, s2)
	}
	want := "join(scan(sales), filter(scan(stations), [stations.region = 'EAST']), on=[sales.station=stations.stationkey])"
	found := false
	for _, s := range s1 {
		if s == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing canonical join signature %q in %v", want, s1)
	}
}
