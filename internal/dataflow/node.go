package dataflow

import (
	"fmt"
	"sort"

	"abivm/internal/exec"
	"abivm/internal/ivm"
	"abivm/internal/storage"
)

// receiver consumes deltas emitted by an upstream node. Operator nodes
// are receivers (join inputs through port wrappers), and so are view
// sinks (ViewHandle).
type receiver interface {
	onDelta(d Delta)
}

// node is one operator in the shared graph. Rows inside deltas are
// immutable by convention — cloned once on scan ingest, shared freely
// downstream — so retained logs and join states may alias them.
type node interface {
	// sig is the canonical structural signature; nodes with equal
	// signatures compute identical functions of the base tables and are
	// hash-consed into one instance.
	sig() string
	// tables returns the base tables of the node's output in coordinate
	// order (left-deep FROM order).
	tables() []string
	// cols returns the output schema for binding parent expressions.
	cols() []exec.Col
	// current returns a deterministic snapshot of the node's present
	// output as net weighted rows — the seed for newly created parents,
	// which treat it as covered-at-creation (coordinate zero).
	current() []weightedRow
	// addOut / removeOut manage downstream operator edges; attachSink /
	// detachSink manage view sinks (which additionally turn on output
	// retention for crash recovery).
	addOut(r receiver)
	removeOut(r receiver)
	attachSink(r receiver)
	detachSink(r receiver)
	// detach unlinks the node from its children; called when the node's
	// reference count drops to zero.
	detach()
	// fanout is the number of downstream consumers (edges + sinks).
	fanout() int
	// retained returns the retained output log (nil unless a sink ever
	// attached); trim discards retained/stored deltas whose coordinates
	// are all covered by the per-table watermark.
	retained() []Delta
	trim(wm map[string]uint64)
}

// nodeBase carries the shared node mechanics: identity, schema, the
// downstream edge list, and the sink-driven retained output log.
type nodeBase struct {
	signature string
	tabs      []string
	schema    []exec.Col
	outs      []receiver
	sinks     int
	retain    bool
	log       []Delta
}

func (n *nodeBase) sig() string        { return n.signature }
func (n *nodeBase) tables() []string   { return n.tabs }
func (n *nodeBase) cols() []exec.Col   { return n.schema }
func (n *nodeBase) fanout() int        { return len(n.outs) }
func (n *nodeBase) retained() []Delta  { return n.log }
func (n *nodeBase) addOut(r receiver)  { n.outs = append(n.outs, r) }
func (n *nodeBase) removeOut(r receiver) {
	for i, o := range n.outs {
		if o == r {
			n.outs = append(n.outs[:i], n.outs[i+1:]...)
			return
		}
	}
}

func (n *nodeBase) attachSink(r receiver) {
	n.addOut(r)
	n.sinks++
	n.retain = true
}

func (n *nodeBase) detachSink(r receiver) {
	n.removeOut(r)
	n.sinks--
}

// emit forwards one delta to every consumer in attachment order
// (deterministic: subscription order) and retains it when a sink
// depends on this node for crash recovery.
func (n *nodeBase) emit(d Delta) {
	if n.retain {
		n.log = append(n.log, d)
	}
	for _, o := range n.outs {
		o.onDelta(d)
	}
}

// trimLog drops retained deltas fully covered by the watermark — every
// live view's durable cursors are at or above wm, so no recovery will
// ever need them again.
func (n *nodeBase) trimLog(wm map[string]uint64) {
	if len(n.log) == 0 {
		return
	}
	kept := n.log[:0]
	for _, d := range n.log {
		if !d.Coord.coveredBy(n.tabs, wm) {
			kept = append(kept, d)
		}
	}
	for i := len(kept); i < len(n.log); i++ {
		n.log[i] = Delta{}
	}
	n.log = kept
}

// scanNode is a base-table source. It mirrors the live table (base
// snapshot plus every ingested modification) so deletes and updates can
// resolve the old row, and stamps each emitted delta with the 1-based
// ingest sequence number as its coordinate.
type scanNode struct {
	nodeBase
	tableName string
	keyCols   []int
	state     map[string]storage.Row
	mods      uint64
}

func newScanNode(sig string, tbl *storage.Table) *scanNode {
	schema := tbl.Schema()
	cols := make([]exec.Col, len(schema.Columns))
	for i, c := range schema.Columns {
		cols[i] = exec.Col{Table: schema.Name, Name: c.Name, Type: c.Type}
	}
	s := &scanNode{
		nodeBase: nodeBase{
			signature: sig,
			tabs:      []string{schema.Name},
			schema:    cols,
		},
		tableName: schema.Name,
		keyCols:   schema.Key,
		state:     make(map[string]storage.Row, tbl.Len()),
	}
	tbl.Scan(func(r storage.Row) bool {
		row := r.Clone()
		s.state[storage.EncodeKey(row.Project(s.keyCols)...)] = row
		return true
	})
	return s
}

func (s *scanNode) detach() {}

// ingest converts one base-table modification into signed deltas and
// propagates them. The coordinate is the modification's position on the
// table's ingest log; an update emits its retraction and insertion
// under the same coordinate, so views always fold both or neither.
func (s *scanNode) ingest(mod ivm.Mod) error {
	seq := s.mods + 1
	switch mod.Kind {
	case ivm.ModInsert:
		row := mod.Row.Clone()
		key := storage.EncodeKey(row.Project(s.keyCols)...)
		if _, ok := s.state[key]; ok {
			return fmt.Errorf("dataflow: insert over existing key on %q", s.tableName)
		}
		s.mods = seq
		s.state[key] = row
		s.emit(Delta{Row: row, W: 1, Coord: Coord{seq}})
	case ivm.ModDelete:
		key := storage.EncodeKey(mod.Key...)
		old, ok := s.state[key]
		if !ok {
			return fmt.Errorf("dataflow: delete of missing key on %q", s.tableName)
		}
		s.mods = seq
		delete(s.state, key)
		s.emit(Delta{Row: old, W: -1, Coord: Coord{seq}})
	case ivm.ModUpdate:
		key := storage.EncodeKey(mod.Key...)
		old, ok := s.state[key]
		if !ok {
			return fmt.Errorf("dataflow: update of missing key on %q", s.tableName)
		}
		row := mod.Row.Clone()
		if storage.EncodeKey(row.Project(s.keyCols)...) != key {
			return fmt.Errorf("dataflow: update must not change the primary key on %q", s.tableName)
		}
		s.mods = seq
		s.state[key] = row
		s.emit(Delta{Row: old, W: -1, Coord: Coord{seq}})
		s.emit(Delta{Row: row, W: 1, Coord: Coord{seq}})
	default:
		return fmt.Errorf("dataflow: unknown modification kind %d", mod.Kind)
	}
	return nil
}

func (s *scanNode) current() []weightedRow {
	keys := make([]string, 0, len(s.state))
	for k := range s.state {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]weightedRow, 0, len(keys))
	for _, k := range keys {
		out = append(out, weightedRow{row: s.state[k], w: 1})
	}
	return out
}

func (s *scanNode) trim(wm map[string]uint64) { s.trimLog(wm) }

// filterNode applies a conjunction of predicates.
type filterNode struct {
	nodeBase
	child node
	preds []exec.Predicate
}

func newFilterNode(sig string, child node, preds []exec.Predicate) *filterNode {
	f := &filterNode{
		nodeBase: nodeBase{
			signature: sig,
			tabs:      child.tables(),
			schema:    child.cols(),
		},
		child: child,
		preds: preds,
	}
	child.addOut(f)
	return f
}

func (f *filterNode) pass(r storage.Row) bool {
	for _, p := range f.preds {
		if !p(r) {
			return false
		}
	}
	return true
}

func (f *filterNode) onDelta(d Delta) {
	if f.pass(d.Row) {
		f.emit(d)
	}
}

func (f *filterNode) current() []weightedRow {
	var out []weightedRow
	for _, wr := range f.child.current() {
		if f.pass(wr.row) {
			out = append(out, wr)
		}
	}
	return out
}

func (f *filterNode) detach()                  { f.child.removeOut(f) }
func (f *filterNode) trim(wm map[string]uint64) { f.trimLog(wm) }

// projectNode evaluates scalar select items.
type projectNode struct {
	nodeBase
	child   node
	scalars []exec.Scalar
}

func newProjectNode(sig string, child node, scalars []exec.Scalar, cols []exec.Col) *projectNode {
	p := &projectNode{
		nodeBase: nodeBase{
			signature: sig,
			tabs:      child.tables(),
			schema:    cols,
		},
		child:   child,
		scalars: scalars,
	}
	child.addOut(p)
	return p
}

func (p *projectNode) project(r storage.Row) storage.Row {
	out := make(storage.Row, len(p.scalars))
	for i, s := range p.scalars {
		out[i] = s(r)
	}
	return out
}

func (p *projectNode) onDelta(d Delta) {
	p.emit(Delta{Row: p.project(d.Row), W: d.W, Coord: d.Coord})
}

func (p *projectNode) current() []weightedRow {
	var out []weightedRow
	for _, wr := range p.child.current() {
		out = append(out, weightedRow{row: p.project(wr.row), w: wr.w})
	}
	return out
}

func (p *projectNode) detach()                  { p.child.removeOut(p) }
func (p *projectNode) trim(wm map[string]uint64) { p.trimLog(wm) }

// port disambiguates which input of a binary join a delta arrives on.
type port struct {
	j    *joinNode
	left bool
}

func (p *port) onDelta(d Delta) { p.j.onSide(p.left, d) }

// stateEntry is one retained input delta of a join side: the row, its
// attribution, and its signed weight. Entries fully covered by the GC
// watermark are consolidated into net coordinate-zero entries by trim.
type stateEntry struct {
	row   storage.Row
	coord Coord
	w     int64
}

// sideState is one join input's retained history plus a hash index on
// the equi-join key.
type sideState struct {
	entries []stateEntry
	index   map[string][]int
}

func (s *sideState) add(e stateEntry, key string) {
	s.index[key] = append(s.index[key], len(s.entries))
	s.entries = append(s.entries, e)
}

// joinNode is a binary equi-join with optional residual predicates over
// the concatenated row. Delta rule: a delta on one side joins the other
// side's full retained state (including negative-weight entries), THEN
// is appended to its own side — each (left, right) pair is produced
// exactly once, when the later of its two inputs arrives.
type joinNode struct {
	nodeBase
	left, right         node
	leftPort, rightPort *port
	lkeys, rkeys        []exec.Scalar
	residual            []exec.Predicate
	lstate, rstate      sideState
}

func newJoinNode(sig string, left, right node, lkeys, rkeys []exec.Scalar, residual []exec.Predicate, cols []exec.Col) *joinNode {
	tabs := make([]string, 0, len(left.tables())+len(right.tables()))
	tabs = append(tabs, left.tables()...)
	tabs = append(tabs, right.tables()...)
	j := &joinNode{
		nodeBase: nodeBase{
			signature: sig,
			tabs:      tabs,
			schema:    cols,
		},
		left:     left,
		right:    right,
		lkeys:    lkeys,
		rkeys:    rkeys,
		residual: residual,
		lstate:   sideState{index: make(map[string][]int)},
		rstate:   sideState{index: make(map[string][]int)},
	}
	j.leftPort = &port{j: j, left: true}
	j.rightPort = &port{j: j, left: false}
	// Seed each side from the child's present output: the new node (and
	// the one new view behind it) treats everything already there as
	// covered at creation.
	for _, wr := range left.current() {
		j.lstate.add(stateEntry{row: wr.row, coord: make(Coord, len(left.tables())), w: wr.w}, j.key(j.lkeys, wr.row))
	}
	for _, wr := range right.current() {
		j.rstate.add(stateEntry{row: wr.row, coord: make(Coord, len(right.tables())), w: wr.w}, j.key(j.rkeys, wr.row))
	}
	left.addOut(j.leftPort)
	right.addOut(j.rightPort)
	return j
}

func (j *joinNode) key(fns []exec.Scalar, r storage.Row) string {
	vals := make([]storage.Value, len(fns))
	for i, fn := range fns {
		vals[i] = fn(r)
	}
	return storage.EncodeKey(vals...)
}

func (j *joinNode) pass(r storage.Row) bool {
	for _, p := range j.residual {
		if !p(r) {
			return false
		}
	}
	return true
}

func (j *joinNode) onSide(left bool, d Delta) {
	var own, other *sideState
	var ownKeys []exec.Scalar
	if left {
		own, other, ownKeys = &j.lstate, &j.rstate, j.lkeys
	} else {
		own, other, ownKeys = &j.rstate, &j.lstate, j.rkeys
	}
	key := j.key(ownKeys, d.Row)
	for _, idx := range other.index[key] {
		e := other.entries[idx]
		var row storage.Row
		var coord Coord
		if left {
			row = concatRows(d.Row, e.row)
			coord = concatCoords(d.Coord, e.coord)
		} else {
			row = concatRows(e.row, d.Row)
			coord = concatCoords(e.coord, d.Coord)
		}
		if !j.pass(row) {
			continue
		}
		j.emit(Delta{Row: row, W: d.W * e.w, Coord: coord})
	}
	own.add(stateEntry{row: d.Row, coord: d.Coord, w: d.W}, key)
}

func (j *joinNode) current() []weightedRow {
	var out []weightedRow
	for _, le := range j.lstate.entries {
		key := j.key(j.lkeys, le.row)
		for _, idx := range j.rstate.index[key] {
			re := j.rstate.entries[idx]
			row := concatRows(le.row, re.row)
			if !j.pass(row) {
				continue
			}
			out = append(out, weightedRow{row: row, w: le.w * re.w})
		}
	}
	return out
}

func (j *joinNode) detach() {
	j.left.removeOut(j.leftPort)
	j.right.removeOut(j.rightPort)
}

func (j *joinNode) trim(wm map[string]uint64) {
	j.trimLog(wm)
	j.lstate.consolidate(j.left.tables(), wm, j.lkeys, j.key)
	j.rstate.consolidate(j.right.tables(), wm, j.rkeys, j.key)
}

// consolidate nets every state entry fully covered by the watermark
// into a single coordinate-zero base entry per distinct row (dropping
// rows whose weights cancel), keeping uncovered entries verbatim. Safe
// because every live cursor is at or above the watermark and new
// subscribers start fully covered — nobody can ever distinguish a
// covered entry's coordinate from zero again.
func (s *sideState) consolidate(tabs []string, wm map[string]uint64, keyFns []exec.Scalar, keyOf func([]exec.Scalar, storage.Row) string) {
	covered := 0
	for _, e := range s.entries {
		if e.coord.coveredBy(tabs, wm) {
			covered++
		}
	}
	if covered == 0 {
		return
	}
	type baseEntry struct {
		row storage.Row
		w   int64
	}
	net := make(map[string]*baseEntry, covered)
	order := make([]string, 0, covered)
	var live []stateEntry
	for _, e := range s.entries {
		if !e.coord.coveredBy(tabs, wm) {
			live = append(live, e)
			continue
		}
		rk := storage.EncodeKey(e.row...)
		b, ok := net[rk]
		if !ok {
			b = &baseEntry{row: e.row}
			net[rk] = b
			order = append(order, rk)
		}
		b.w += e.w
	}
	sort.Strings(order)
	rebuilt := sideState{index: make(map[string][]int)}
	zero := make(Coord, len(tabs))
	for _, rk := range order {
		b := net[rk]
		if b.w == 0 {
			continue
		}
		rebuilt.add(stateEntry{row: b.row, coord: zero, w: b.w}, keyOf(keyFns, b.row))
	}
	for _, e := range live {
		rebuilt.add(e, keyOf(keyFns, e.row))
	}
	*s = rebuilt
}
