package dataflow

import (
	"fmt"
	"sort"
	"strings"

	"abivm/internal/exec"
	"abivm/internal/ivm"
	"abivm/internal/plan"
	"abivm/internal/sql"
	"abivm/internal/storage"
)

// opKind enumerates the operator kinds of a plan spec.
type opKind int

const (
	opScan opKind = iota
	opFilter
	opJoin
	opProject
)

// opSpec is one operator of a view's canonical plan shape: the
// side-effect-free description (kind, canonical expressions, signature)
// computed before any node is built. Subscribe realizes a spec tree
// into graph nodes, reusing any node whose signature is already
// interned; Signatures renders the same tree for EXPLAIN output.
type opSpec struct {
	kind        opKind
	sig         string
	table       string   // opScan
	conjs       []sql.Expr // opFilter, sorted canonically
	equiL, equiR []sql.Expr // opJoin equi-key pairs, aligned, sorted canonically
	residual    []sql.Expr // opJoin non-equi conjuncts, sorted canonically
	items       []sql.Expr // opProject, in SELECT order
	left, right *opSpec
}

// buildSpecs derives the canonical operator tree for a view plan:
// per-table filters pushed onto their scans, a left-deep join spine in
// FROM order with conjuncts attached at the lowest covering join
// (split into equi-key pairs and residuals), and a projection of the
// delta-query items on top. All expressions are canonicalized
// (alias→table) so structurally equal sub-plans from different views
// render identical signatures.
func buildSpecs(p *ivm.DeltaPlan, schemaOf func(string) (*storage.Schema, error)) (*opSpec, error) {
	sources := make([]sourceTable, len(p.Sources))
	for i, s := range p.Sources {
		sch, err := schemaOf(s.Table)
		if err != nil {
			return nil, err
		}
		sources[i] = sourceTable{alias: s.Alias, table: s.Table, schema: *sch}
	}
	canon := newCanonicalizer(sources)

	type conjunct struct {
		e        sql.Expr
		tabs     []string
		attached bool
	}
	conjs := make([]*conjunct, 0, len(p.Delta.Where))
	for _, w := range p.Delta.Where {
		cw, err := canon.expr(w)
		if err != nil {
			return nil, err
		}
		conjs = append(conjs, &conjunct{e: cw, tabs: tablesOf(cw)})
	}

	var cur *opSpec
	var curTabs []string // sorted canonical tables covered so far
	for _, src := range sources {
		leaf := &opSpec{kind: opScan, table: src.table, sig: "scan(" + src.table + ")"}
		var fc []sql.Expr
		for _, c := range conjs {
			if !c.attached && len(c.tabs) == 1 && c.tabs[0] == src.table {
				fc = append(fc, c.e)
				c.attached = true
			}
		}
		if len(fc) > 0 {
			leaf = filterSpec(leaf, fc)
		}
		if cur == nil {
			cur = leaf
			curTabs = []string{src.table}
			continue
		}
		joinedTabs := append(append([]string(nil), curTabs...), src.table)
		sort.Strings(joinedTabs)
		rightTabs := []string{src.table}
		type equiPair struct {
			l, r sql.Expr
			s    string
		}
		var pairs []equiPair
		var residual []sql.Expr
		for _, c := range conjs {
			if c.attached || !subset(c.tabs, joinedTabs) {
				continue
			}
			c.attached = true
			if be, ok := c.e.(*sql.BinaryExpr); ok && be.Op == "=" {
				lt, rt := tablesOf(be.Left), tablesOf(be.Right)
				if len(lt) > 0 && len(rt) > 0 {
					switch {
					case subset(lt, curTabs) && subset(rt, rightTabs):
						pairs = append(pairs, equiPair{l: be.Left, r: be.Right, s: be.Left.String() + "=" + be.Right.String()})
						continue
					case subset(lt, rightTabs) && subset(rt, curTabs):
						pairs = append(pairs, equiPair{l: be.Right, r: be.Left, s: be.Right.String() + "=" + be.Left.String()})
						continue
					}
				}
			}
			residual = append(residual, c.e)
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].s < pairs[j].s })
		sortExprs(residual)
		j := &opSpec{kind: opJoin, left: cur, right: leaf, residual: residual}
		onStrs := make([]string, len(pairs))
		for i, pr := range pairs {
			j.equiL = append(j.equiL, pr.l)
			j.equiR = append(j.equiR, pr.r)
			onStrs[i] = pr.s
		}
		j.sig = fmt.Sprintf("join(%s, %s, on=[%s]", cur.sig, leaf.sig, strings.Join(onStrs, "; "))
		if len(residual) > 0 {
			j.sig += ", where=[" + joinExprs(residual) + "]"
		}
		j.sig += ")"
		cur = j
		curTabs = joinedTabs
	}

	// Table-free conjuncts (pure literals) apply once above the spine.
	var consts []sql.Expr
	for _, c := range conjs {
		if !c.attached && len(c.tabs) == 0 {
			consts = append(consts, c.e)
			c.attached = true
		}
	}
	if len(consts) > 0 {
		cur = filterSpec(cur, consts)
	}
	for _, c := range conjs {
		if !c.attached {
			return nil, fmt.Errorf("dataflow: conjunct %q not attachable to the join spine", c.e.String())
		}
	}

	items := make([]sql.Expr, len(p.Delta.Items))
	strs := make([]string, len(items))
	for i, it := range p.Delta.Items {
		ce, err := canon.expr(it.Expr)
		if err != nil {
			return nil, err
		}
		items[i] = ce
		strs[i] = ce.String()
	}
	return &opSpec{
		kind:  opProject,
		left:  cur,
		items: items,
		sig:   fmt.Sprintf("project(%s, [%s])", cur.sig, strings.Join(strs, ", ")),
	}, nil
}

func filterSpec(child *opSpec, conjs []sql.Expr) *opSpec {
	sortExprs(conjs)
	return &opSpec{
		kind:  opFilter,
		left:  child,
		conjs: conjs,
		sig:   fmt.Sprintf("filter(%s, [%s])", child.sig, joinExprs(conjs)),
	}
}

func sortExprs(es []sql.Expr) {
	sort.Slice(es, func(i, j int) bool { return es[i].String() < es[j].String() })
}

func joinExprs(es []sql.Expr) string {
	strs := make([]string, len(es))
	for i, e := range es {
		strs[i] = e.String()
	}
	return strings.Join(strs, " AND ")
}

// recordSigs appends the spec subtree's signatures in post-order
// (children before parents) — the reference-count bookkeeping order.
func recordSigs(s *opSpec, used *[]string) {
	if s.left != nil {
		recordSigs(s.left, used)
	}
	if s.right != nil {
		recordSigs(s.right, used)
	}
	*used = append(*used, s.sig)
}

// Signatures returns the canonical operator signatures of a view plan
// in post-order (leaves first, projection last) without building any
// state — the EXPLAIN surface for the shared-dataflow mode, and the
// identity under which Subscribe hash-conses operators.
func Signatures(p *ivm.DeltaPlan, schemaOf func(string) (*storage.Schema, error)) ([]string, error) {
	top, err := buildSpecs(p, schemaOf)
	if err != nil {
		return nil, err
	}
	var sigs []string
	recordSigs(top, &sigs)
	return sigs, nil
}

// Graph is the shared operator DAG: one set of hash-consed nodes over
// one live database, fanning out to any number of view sinks. All
// methods assume external synchronization (the broker's lock), matching
// the rest of the engine.
type Graph struct {
	db    *storage.DB
	nodes map[string]node
	refs  map[string]int
	scans map[string]*scanNode
	hits  uint64
	subs  int
}

// NewGraph builds an empty operator graph over the live database.
func NewGraph(db *storage.DB) *Graph {
	return &Graph{
		db:    db,
		nodes: make(map[string]node),
		refs:  make(map[string]int),
		scans: make(map[string]*scanNode),
	}
}

func (g *Graph) schemaOf(table string) (*storage.Schema, error) {
	tbl, err := g.db.Table(table)
	if err != nil {
		return nil, err
	}
	return tbl.Schema(), nil
}

// Subscribe compiles a view plan into the graph — reusing every
// operator whose canonical signature is already interned, creating and
// wiring the rest — attaches a sink, computes the view's initial
// content from the live database, and returns the handle. Each node in
// the view's plan gains one reference; Release returns them.
func (g *Graph) Subscribe(p *ivm.DeltaPlan) (*ViewHandle, error) {
	top, err := buildSpecs(p, g.schemaOf)
	if err != nil {
		return nil, err
	}
	var used []string
	n, err := g.realize(top, &used)
	if err != nil {
		g.sweepUnreferenced(used)
		return nil, err
	}
	h, err := newViewHandle(g, p, n, used)
	if err != nil {
		g.sweepUnreferenced(used)
		return nil, err
	}
	for _, sig := range used {
		g.refs[sig]++
	}
	n.attachSink(h)
	g.subs++
	return h, nil
}

// realize returns the node for a spec, creating it (and recursively its
// children) unless its signature is already interned. used collects the
// post-order signatures of the whole subtree either way.
func (g *Graph) realize(s *opSpec, used *[]string) (node, error) {
	if existing, ok := g.nodes[s.sig]; ok {
		before := len(*used)
		recordSigs(s, used)
		g.hits += uint64(len(*used) - before)
		return existing, nil
	}
	var n node
	switch s.kind {
	case opScan:
		tbl, err := g.db.Table(s.table)
		if err != nil {
			return nil, err
		}
		sc := newScanNode(s.sig, tbl)
		g.scans[s.table] = sc
		n = sc
	case opFilter:
		child, err := g.realize(s.left, used)
		if err != nil {
			return nil, err
		}
		preds := make([]exec.Predicate, len(s.conjs))
		for i, e := range s.conjs {
			preds[i], err = plan.BindPredicate(e, child.cols())
			if err != nil {
				return nil, err
			}
		}
		n = newFilterNode(s.sig, child, preds)
	case opJoin:
		left, err := g.realize(s.left, used)
		if err != nil {
			return nil, err
		}
		right, err := g.realize(s.right, used)
		if err != nil {
			return nil, err
		}
		lkeys := make([]exec.Scalar, len(s.equiL))
		rkeys := make([]exec.Scalar, len(s.equiR))
		for i := range s.equiL {
			if lkeys[i], _, err = plan.BindScalar(s.equiL[i], left.cols()); err != nil {
				return nil, err
			}
			if rkeys[i], _, err = plan.BindScalar(s.equiR[i], right.cols()); err != nil {
				return nil, err
			}
		}
		cols := make([]exec.Col, 0, len(left.cols())+len(right.cols()))
		cols = append(cols, left.cols()...)
		cols = append(cols, right.cols()...)
		residual := make([]exec.Predicate, len(s.residual))
		for i, e := range s.residual {
			if residual[i], err = plan.BindPredicate(e, cols); err != nil {
				return nil, err
			}
		}
		n = newJoinNode(s.sig, left, right, lkeys, rkeys, residual, cols)
	case opProject:
		child, err := g.realize(s.left, used)
		if err != nil {
			return nil, err
		}
		scalars := make([]exec.Scalar, len(s.items))
		cols := make([]exec.Col, len(s.items))
		for i, e := range s.items {
			sc, typ, err := plan.BindScalar(e, child.cols())
			if err != nil {
				return nil, err
			}
			scalars[i] = sc
			cols[i] = exec.Col{Name: fmt.Sprintf("c%d", i), Type: typ}
		}
		n = newProjectNode(s.sig, child, scalars, cols)
	default:
		return nil, fmt.Errorf("dataflow: unknown operator kind %d", s.kind)
	}
	g.nodes[s.sig] = n
	*used = append(*used, s.sig)
	return n, nil
}

// sweepUnreferenced removes nodes created by a failed Subscribe before
// any reference was taken, parents before children.
func (g *Graph) sweepUnreferenced(used []string) {
	for i := len(used) - 1; i >= 0; i-- {
		sig := used[i]
		if g.refs[sig] > 0 {
			continue
		}
		if n, ok := g.nodes[sig]; ok {
			g.drop(sig, n)
		}
	}
}

func (g *Graph) drop(sig string, n node) {
	n.detach()
	delete(g.nodes, sig)
	delete(g.refs, sig)
	if sc, ok := n.(*scanNode); ok {
		delete(g.scans, sc.tableName)
	}
}

// Release detaches a view's sink and returns its node references,
// dropping (parents before children) every node whose count reaches
// zero. Shared nodes survive untouched.
func (g *Graph) Release(h *ViewHandle) {
	h.top.detachSink(h)
	for i := len(h.sigs) - 1; i >= 0; i-- {
		sig := h.sigs[i]
		g.refs[sig]--
		if g.refs[sig] > 0 {
			continue
		}
		if n, ok := g.nodes[sig]; ok {
			g.drop(sig, n)
		}
	}
	g.subs--
}

// Watches reports whether any subscribed view reads the table.
func (g *Graph) Watches(table string) bool {
	_, ok := g.scans[table]
	return ok
}

// Ingest feeds one base-table modification into the table's scan node,
// propagating the resulting deltas through the whole shared graph (all
// views' pending sets) in one pass.
func (g *Graph) Ingest(table string, mod ivm.Mod) error {
	sc, ok := g.scans[table]
	if !ok {
		return fmt.Errorf("dataflow: no subscribed view reads table %q", table)
	}
	return sc.ingest(mod)
}

// LogLen returns the table's ingest-log length (the coordinate a
// brand-new subscriber starts fully covered at), or 0 when untracked.
func (g *Graph) LogLen(table string) uint64 {
	sc, ok := g.scans[table]
	if !ok {
		return 0
	}
	return sc.mods
}

// Trim garbage-collects retained state below the durability watermark:
// wm maps each table to the minimum checkpoint-covered cursor across
// all views reading it. Retained output-log entries fully below the
// watermark are dropped, and join-side entries fully below it are
// consolidated into net base entries.
func (g *Graph) Trim(wm map[string]uint64) {
	sigs := make([]string, 0, len(g.nodes))
	for sig := range g.nodes {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	for _, sig := range sigs {
		g.nodes[sig].trim(wm)
	}
}

// GraphStats is the observable shape of the shared graph.
type GraphStats struct {
	// Nodes is the number of live operators; Views the number of
	// attached sinks. InternHits counts operators reused instead of
	// created across all Subscribe calls so far — the sharing win.
	Nodes      int
	Views      int
	InternHits uint64
	// MaxFanout is the widest downstream edge count of any operator
	// (operator edges plus sinks).
	MaxFanout int
}

// Stats snapshots the graph shape.
func (g *Graph) Stats() GraphStats {
	st := GraphStats{Nodes: len(g.nodes), Views: g.subs, InternHits: g.hits}
	for _, n := range g.nodes {
		if f := n.fanout(); f > st.MaxFanout {
			st.MaxFanout = f
		}
	}
	return st
}
