package dataflow

import (
	"fmt"
	"sort"

	"abivm/internal/sql"
	"abivm/internal/storage"
)

// canonicalizer rewrites view expressions into canonical form: every
// column reference qualified by its base TABLE name (not the view's
// alias). Two views phrased over different aliases of the same tables
// then render identical expression strings, which is what makes
// hash-consed signatures compare structurally. PlanSelect rejects
// self-joins, so alias→table is a bijection per view and the rewrite is
// lossless.
type canonicalizer struct {
	aliasToTable map[string]string
	// colOwner maps a column name to the unique table that declares it,
	// or "" when two tables share the name (unqualified references to it
	// are then ambiguous, mirroring the planner's binder).
	colOwner map[string]string
}

func newCanonicalizer(sources []sourceTable) *canonicalizer {
	c := &canonicalizer{
		aliasToTable: make(map[string]string, len(sources)),
		colOwner:     make(map[string]string, 8),
	}
	for _, s := range sources {
		c.aliasToTable[s.alias] = s.table
		for _, col := range s.schema.Columns {
			if owner, ok := c.colOwner[col.Name]; ok && owner != s.table {
				c.colOwner[col.Name] = ""
			} else if !ok {
				c.colOwner[col.Name] = s.table
			}
		}
	}
	return c
}

// sourceTable pairs one FROM entry with its resolved schema.
type sourceTable struct {
	alias  string
	table  string
	schema storage.Schema
}

// expr returns the canonical rewrite of e. The input is never mutated —
// rewritten nodes are fresh allocations.
func (c *canonicalizer) expr(e sql.Expr) (sql.Expr, error) {
	switch x := e.(type) {
	case *sql.ColumnRef:
		t := x.Table
		if t == "" {
			t = c.colOwner[x.Column]
			if t == "" {
				return nil, fmt.Errorf("dataflow: column %q is ambiguous or unknown across the view's tables", x.Column)
			}
		} else {
			tbl, ok := c.aliasToTable[t]
			if !ok {
				return nil, fmt.Errorf("dataflow: unknown table alias %q", t)
			}
			t = tbl
		}
		return &sql.ColumnRef{Table: t, Column: x.Column, Pos: x.Pos}, nil
	case *sql.IntLit, *sql.FloatLit, *sql.StringLit:
		return e, nil
	case *sql.BinaryExpr:
		l, err := c.expr(x.Left)
		if err != nil {
			return nil, err
		}
		r, err := c.expr(x.Right)
		if err != nil {
			return nil, err
		}
		return &sql.BinaryExpr{Op: x.Op, Left: l, Right: r}, nil
	default:
		return nil, fmt.Errorf("dataflow: unsupported expression %T in view query", e)
	}
}

// exprTables collects the canonical table names referenced by e into
// set.
func exprTables(e sql.Expr, set map[string]bool) {
	switch x := e.(type) {
	case *sql.ColumnRef:
		set[x.Table] = true
	case *sql.BinaryExpr:
		exprTables(x.Left, set)
		exprTables(x.Right, set)
	}
}

// tablesOf returns the sorted canonical tables referenced by e.
func tablesOf(e sql.Expr) []string {
	set := make(map[string]bool, 2)
	exprTables(e, set)
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// subset reports whether every element of sub (sorted) appears in super
// (sorted).
func subset(sub, super []string) bool {
	i := 0
	for _, s := range sub {
		for i < len(super) && super[i] < s {
			i++
		}
		if i >= len(super) || super[i] != s {
			return false
		}
	}
	return true
}
