// Package dataflow is the shared incremental-view runtime: instead of
// one monolithic maintainer per view (internal/ivm), views compile into
// a DAG of composable incremental operators — scan, filter, join,
// project — over signed-multiplicity delta batches (Z-sets, per DBSP
// and DBToaster's delta processing). Structurally equal sub-plans are
// hash-consed at subscription time, so N overlapping views share one
// filtered-join operator whose output fans out to N per-view sinks; a
// per-operator reference count releases only unshared nodes on
// unsubscribe.
//
// Byte-identity with the per-view maintainer rests on coordinate
// attribution: every delta carries, per base table of its producing
// operator, the sequence number of the source modification it derives
// from (0 = base snapshot). Operators propagate eagerly at publish
// time, but each view's sink folds a delta only once the view's
// per-table drain cursors cover all its coordinates. By bilinearity of
// the join, the folded content at cursors (c_1..c_n) is multiset-equal
// to the delta query over base-table prefixes of those lengths — which
// is exactly the state the per-view maintainer holds after draining the
// same batches (see DESIGN.md §14 for the full argument).
package dataflow

import (
	"abivm/internal/storage"
)

// Coord attributes a delta to source modifications: one entry per base
// table of the producing operator (in the operator's table order),
// holding the 1-based sequence number of the modification on that
// table's ingest log this delta derives from. 0 means "from the base
// snapshot" and is covered by every cursor.
type Coord []uint64

// Delta is one signed-multiplicity change record flowing through the
// operator graph: Row with weight W (+1 insert, -1 retract; joins may
// produce other products of ±1).
type Delta struct {
	Row   storage.Row
	W     int64
	Coord Coord
}

// coveredBy reports whether every coordinate is at or below the cursor
// for its table. tabs aligns positionally with c; cursors maps table →
// covered log prefix length (missing tables cover only coordinate 0).
func (c Coord) coveredBy(tabs []string, cursors map[string]uint64) bool {
	for i, v := range c {
		if v > cursors[tabs[i]] {
			return false
		}
	}
	return true
}

// weightedRow is a row with a net multiplicity — the unit of an
// operator's materialized current output (used to seed join states and
// initialize late-attaching state).
type weightedRow struct {
	row storage.Row
	w   int64
}

// concatRows concatenates a join pair into the combined output row.
func concatRows(l, r storage.Row) storage.Row {
	out := make(storage.Row, 0, len(l)+len(r))
	out = append(out, l...)
	return append(out, r...)
}

// concatCoords concatenates a join pair's attributions.
func concatCoords(l, r Coord) Coord {
	out := make(Coord, 0, len(l)+len(r))
	out = append(out, l...)
	return append(out, r...)
}
