package dataflow

import (
	"fmt"
	"time"

	"abivm/internal/exec"
	"abivm/internal/fault"
	"abivm/internal/ivm"
	"abivm/internal/plan"
	"abivm/internal/storage"
)

// ViewHandle is one view's sink on the shared graph: the per-view
// cursors, the pending (propagated-but-not-yet-folded) deltas, and the
// foldable view state. It mirrors the broker-facing surface of
// ivm.Maintainer — aliases, pending counts, ProcessBatch with the same
// fault-injection sites, WAL, checkpoint/recover — so the pub/sub layer
// drives either runtime through the same choreography.
//
// The asymmetry of the paper survives sharing: operators propagate
// eagerly, but folding stays per-view and per-table — ProcessBatch
// advances exactly one table's cursor by exactly k modifications, and
// only deltas whose every coordinate is covered fold into the view.
type ViewHandle struct {
	g    *Graph
	plan *ivm.DeltaPlan

	aliases  []string
	tables   map[string]string // alias -> table name
	top      node
	sigs     []string // post-order node signatures (the refcount receipt)
	tabOrder []string // top node's coordinate order (== FROM order)

	cursors map[string]uint64 // table -> covered ingest-log prefix
	pending []Delta           // propagated deltas not yet covered
	view    *ivm.ViewState
	stats   *storage.Stats

	wal  *ivm.WAL
	inj  fault.Injector
	ns   string
	obs  *ivm.Metrics
	snap *handleSnapshot

	scratchCur map[string]uint64 // drain-phase tentative cursors, reused
}

// handleSnapshot is a checkpoint of the per-view state. It lives in the
// handle (the in-memory durability tier, like the broker's default
// checkpoint chain); the shared graph itself is not checkpointed — it
// survives per-view crashes exactly as the live database does.
type handleSnapshot struct {
	lsn     uint64
	cursors map[string]uint64
	state   ivm.ViewStateSnapshot
	ns      string
}

func newViewHandle(g *Graph, p *ivm.DeltaPlan, top node, sigs []string) (*ViewHandle, error) {
	h := &ViewHandle{
		g:        g,
		plan:     p,
		tables:   make(map[string]string, len(p.Sources)),
		top:      top,
		sigs:     sigs,
		tabOrder: top.tables(),
		cursors:  make(map[string]uint64, len(p.Sources)),
		stats:    &storage.Stats{},
	}
	for _, s := range p.Sources {
		h.aliases = append(h.aliases, s.Alias)
		h.tables[s.Alias] = s.Table
		h.cursors[s.Table] = g.LogLen(s.Table)
	}
	h.view = ivm.NewViewState(p, h.stats)
	if err := h.initialize(); err != nil {
		return nil, err
	}
	return h, nil
}

// initialize computes the initial content by running the delta query
// over the live database — which is exactly base plus the ingest-log
// prefixes the subscribe-time cursors cover.
func (h *ViewHandle) initialize() error {
	op, err := plan.Compile(h.plan.Delta, nil, &plan.Options{
		Resolve: h.g.db.Table,
		Stats:   h.stats,
	})
	if err != nil {
		return err
	}
	rows, err := exec.Collect(op)
	if err != nil {
		return err
	}
	h.view.Add(rows)
	*h.stats = storage.Stats{} // initial computation is setup cost
	return nil
}

// onDelta receives one propagated delta from the top operator. Freshly
// emitted deltas always carry at least one uncovered coordinate, so
// they are pending by construction.
func (h *ViewHandle) onDelta(d Delta) { h.pending = append(h.pending, d) }

// Plan returns the view's delta plan, shared and read-only.
func (h *ViewHandle) Plan() *ivm.DeltaPlan { return h.plan }

// Aliases returns the FROM aliases in order; index i corresponds to the
// paper's base table R_i.
func (h *ViewHandle) Aliases() []string { return h.aliases }

// TableOf returns the base-table name behind a FROM alias, or "".
func (h *ViewHandle) TableOf(alias string) string { return h.tables[alias] }

// Stats exposes the view-side work-unit counters (folds and drain
// setups; operator work is shared and charged to the graph's tables).
func (h *ViewHandle) Stats() *storage.Stats { return h.stats }

// Signatures returns the view's operator signatures in post-order.
func (h *ViewHandle) Signatures() []string { return h.sigs }

// AttachWAL makes the handle record arrivals and drain commits to w,
// enabling Checkpoint/Recover. A nil w detaches.
func (h *ViewHandle) AttachWAL(w *ivm.WAL) { h.wal = w }

// WAL returns the attached redo log, or nil.
func (h *ViewHandle) WAL() *ivm.WAL { return h.wal }

// SetNamespace names the handle's durability namespace; checkpoints
// carry it and Recover validates it.
func (h *ViewHandle) SetNamespace(ns string) { h.ns = ns }

// Namespace returns the durability namespace, or "".
func (h *ViewHandle) Namespace() string { return h.ns }

// SetInjector installs a fault injector consulted at the drain sites.
func (h *ViewHandle) SetInjector(inj fault.Injector) { h.inj = inj }

// SetMetrics attaches the maintainer instrumentation bundle.
func (h *ViewHandle) SetMetrics(ms *ivm.Metrics) { h.obs = ms }

func (h *ViewHandle) hit(site fault.Site) error {
	if h.inj == nil {
		return nil
	}
	return h.inj.Hit(site)
}

// LogArrival records one accepted modification to the WAL — the shared
// graph holds the modification itself; the record only preserves the
// arrival order for post-checkpoint replay parity.
func (h *ViewHandle) LogArrival(mod ivm.Mod) error {
	if h.wal == nil {
		return nil
	}
	_, err := h.wal.Append(ivm.WALRecord{Kind: ivm.WALArrival, Mod: mod})
	return err
}

// Pending returns the per-table backlog sizes in alias order — the
// paper's state vector s. For a shared view the backlog of table i is
// the ingest-log length minus the view's cursor.
func (h *ViewHandle) Pending() []int { return h.PendingInto(nil) }

// PendingInto is Pending writing into dst, the allocation-free variant.
func (h *ViewHandle) PendingInto(dst []int) []int {
	if cap(dst) < len(h.aliases) {
		dst = make([]int, len(h.aliases))
	}
	dst = dst[:len(h.aliases)]
	for i, a := range h.aliases {
		t := h.tables[a]
		dst[i] = int(h.g.LogLen(t) - h.cursors[t])
	}
	return dst
}

// ProcessBatch advances the alias's cursor by the earliest k pending
// modifications and folds every delta that becomes fully covered into
// the view — the action primitive, with the maintainer's drain fault
// sites (plan, apply, wal-commit) hit in the same order so chaos
// scripts consume injector polls identically in both modes.
func (h *ViewHandle) ProcessBatch(alias string, k int) error {
	if h.obs == nil {
		return h.processBatch(alias, k)
	}
	//lint:ignore nondet drain latency feeds metrics only, never maintained state
	start := time.Now()
	err := h.processBatch(alias, k)
	//lint:ignore nondet measurement of the drain, not part of it
	h.obs.ObserveDrain(time.Since(start), k, err)
	return err
}

func (h *ViewHandle) processBatch(alias string, k int) error {
	table, ok := h.tables[alias]
	if !ok {
		return fmt.Errorf("dataflow: unknown alias %q", alias)
	}
	avail := int(h.g.LogLen(table) - h.cursors[table])
	if k < 0 || k > avail {
		return fmt.Errorf("dataflow: batch size %d out of range (queue %d)", k, avail)
	}
	if k == 0 {
		return nil
	}
	if err := h.hit(fault.SiteDrainPlan); err != nil {
		return err
	}
	// Plan phase (mutates nothing): tentative cursors, then the set of
	// pending deltas they newly cover.
	if h.scratchCur == nil {
		h.scratchCur = make(map[string]uint64, len(h.tabOrder))
	}
	for t, c := range h.cursors {
		h.scratchCur[t] = c
	}
	h.scratchCur[table] += uint64(k)
	covered := 0
	for _, d := range h.pending {
		if d.Coord.coveredBy(h.tabOrder, h.scratchCur) {
			covered++
		}
	}
	if err := h.hit(fault.SiteDrainApply); err != nil {
		return err
	}
	if err := h.hit(fault.SiteWALCommit); err != nil {
		return err
	}
	// Commit point: fold the covered deltas, log the drain, advance the
	// cursor, trim the pending set.
	h.foldCovered(h.scratchCur)
	if h.wal != nil {
		if _, err := h.wal.Append(ivm.WALRecord{Kind: ivm.WALDrain, Alias: alias, K: k}); err != nil {
			h.unfoldCovered(h.scratchCur)
			return fmt.Errorf("dataflow: wal commit: %w", err)
		}
	}
	h.cursors[table] = h.scratchCur[table]
	kept := h.pending[:0]
	for _, d := range h.pending {
		if !d.Coord.coveredBy(h.tabOrder, h.scratchCur) {
			kept = append(kept, d)
		}
	}
	for i := len(kept); i < len(h.pending); i++ {
		h.pending[i] = Delta{}
	}
	h.pending = kept
	h.stats.BatchSetups++
	return nil
}

// foldCovered folds every pending delta covered by cur into the view
// state: net weight per distinct row in first-touch order, positive
// nets applied before negative ones. Netting keeps the fold equal to
// the per-view maintainer's net-delta fold; positives-first guarantees
// no transient negative bag or group count even though the shared
// graph's delta order differs from the maintainer's minus-then-plus
// row sets.
func (h *ViewHandle) foldCovered(cur map[string]uint64) {
	order := h.netCovered(cur)
	for _, e := range order {
		if e.w > 0 {
			h.view.AddWeighted(e.row, e.w)
		}
	}
	for _, e := range order {
		if e.w < 0 {
			h.view.AddWeighted(e.row, e.w)
		}
	}
}

// unfoldCovered exactly inverts foldCovered (negatives first), used to
// compensate a failed WAL commit.
func (h *ViewHandle) unfoldCovered(cur map[string]uint64) {
	order := h.netCovered(cur)
	for _, e := range order {
		if e.w < 0 {
			h.view.AddWeighted(e.row, -e.w)
		}
	}
	for _, e := range order {
		if e.w > 0 {
			h.view.AddWeighted(e.row, -e.w)
		}
	}
}

type netEntry struct {
	row storage.Row
	w   int64
}

func (h *ViewHandle) netCovered(cur map[string]uint64) []*netEntry {
	nets := make(map[string]*netEntry)
	var order []*netEntry
	for _, d := range h.pending {
		if !d.Coord.coveredBy(h.tabOrder, cur) {
			continue
		}
		key := storage.EncodeKey(d.Row...)
		e, ok := nets[key]
		if !ok {
			e = &netEntry{row: d.Row}
			nets[key] = e
			order = append(order, e)
		}
		e.w += d.W
	}
	return order
}

// Refresh drains every pending modification, one full batch per table
// in alias order, bringing the view fully up to date.
func (h *ViewHandle) Refresh() error {
	for _, alias := range h.aliases {
		t := h.tables[alias]
		if n := int(h.g.LogLen(t) - h.cursors[t]); n > 0 {
			if err := h.ProcessBatch(alias, n); err != nil {
				return err
			}
		}
	}
	return nil
}

// Result renders the current view content — same layout as the
// per-view maintainer and the planner.
func (h *ViewHandle) Result() []storage.Row { return h.view.Result() }

// Checkpoint captures the per-view durable state (cursors, view
// content, WAL position) in memory. Everything at or below the captured
// LSN may be truncated from the WAL afterwards.
func (h *ViewHandle) Checkpoint() error {
	//lint:ignore nondet checkpoint latency feeds metrics only, never checkpoint content
	start := time.Now()
	snap := &handleSnapshot{
		cursors: make(map[string]uint64, len(h.cursors)),
		state:   h.view.Snapshot(),
		ns:      h.ns,
	}
	for t, c := range h.cursors {
		snap.cursors[t] = c
	}
	if h.wal != nil {
		snap.lsn = h.wal.LastLSN()
	}
	h.snap = snap
	if h.obs != nil {
		//lint:ignore nondet measurement of the checkpoint, not part of it
		h.obs.ObserveCheckpoint(time.Since(start), 0)
	}
	return nil
}

// TipLSN returns the WAL position the last checkpoint covers.
func (h *ViewHandle) TipLSN() uint64 {
	if h.snap == nil {
		return 0
	}
	return h.snap.lsn
}

// DurableCursors returns the per-table cursors of the last checkpoint —
// the view's contribution to the graph's GC watermark. Nil when no
// checkpoint was ever taken (the broker checkpoints at subscribe, so
// this is transient).
func (h *ViewHandle) DurableCursors() map[string]uint64 {
	if h.snap == nil {
		return nil
	}
	return h.snap.cursors
}

// Recover rebuilds the view from its last checkpoint plus the WAL
// suffix: restore cursors and content, rebuild the pending set from the
// top operator's retained output (the shared graph survives a per-view
// crash exactly as the live database does), then redo logged drains.
// Arrival records only validate — their deltas are already in the
// graph. The WAL and injector stay detached during replay.
func (h *ViewHandle) Recover() error {
	if h.snap == nil {
		return fmt.Errorf("dataflow: no checkpoint to recover %q from", h.ns)
	}
	if h.snap.ns != h.ns {
		return fmt.Errorf("dataflow: checkpoint namespace %q, want %q", h.snap.ns, h.ns)
	}
	view := ivm.NewViewState(h.plan, h.stats)
	if err := view.Restore(h.snap.state); err != nil {
		return err
	}
	h.view = view
	for t := range h.cursors {
		h.cursors[t] = h.snap.cursors[t]
	}
	h.pending = h.pending[:0]
	for _, d := range h.top.retained() {
		if !d.Coord.coveredBy(h.tabOrder, h.cursors) {
			h.pending = append(h.pending, d)
		}
	}
	wal, inj := h.wal, h.inj
	h.wal, h.inj = nil, nil
	replayed := 0
	if wal != nil {
		if err := wal.Replay(h.snap.lsn, func(rec ivm.WALRecord) error {
			replayed++
			switch rec.Kind {
			case ivm.WALArrival:
				if _, ok := h.tables[rec.Mod.Alias]; !ok {
					return fmt.Errorf("dataflow: wal arrival for unknown alias %q", rec.Mod.Alias)
				}
				return nil
			case ivm.WALDrain:
				if err := h.processBatch(rec.Alias, rec.K); err != nil {
					return fmt.Errorf("dataflow: replaying drain lsn=%d %s/%d: %w", rec.LSN, rec.Alias, rec.K, err)
				}
				return nil
			default:
				return fmt.Errorf("dataflow: unknown wal record kind %d at lsn %d", rec.Kind, rec.LSN)
			}
		}); err != nil {
			h.wal, h.inj = wal, inj
			return err
		}
	}
	h.wal, h.inj = wal, inj
	if h.obs != nil {
		h.obs.ObserveRecovery(replayed)
	}
	// Replay work is recovery overhead, not maintenance cost.
	*h.stats = storage.Stats{}
	return nil
}
