// Package bruteforce computes globally optimal maintenance plans by
// exhaustive dynamic programming over (time, state) pairs. It exists to
// verify the paper's approximation guarantees on small instances: the
// space of *all* valid plans (including non-lazy, non-greedy, partial
// actions) is searched, so the result is the true OPT that Theorems 1, 2
// and 4 compare against. Cost is exponential in the instance size; the
// state-count cap keeps accidental misuse from hanging.
package bruteforce

import (
	"errors"
	"fmt"

	"abivm/internal/core"
)

// ErrTooLarge is returned when the memoized state space exceeds the cap.
var ErrTooLarge = errors.New("bruteforce: instance too large for exhaustive search")

// maxStates caps the number of distinct (t, state) pairs memoized. It is
// a variable so tests can lower it; the default is generous because every
// intended use is a deliberately tiny verification instance.
var maxStates = 2_000_000

type solver struct {
	in   *core.Instance
	memo map[string]entry
}

type entry struct {
	cost   float64
	action core.Vector // best action at this (t, pre-state)
}

// Optimal returns the cost of a globally optimal valid plan for the
// instance, together with one plan achieving it.
func Optimal(in *core.Instance) (float64, core.Plan, error) {
	s := &solver{in: in, memo: map[string]entry{}}
	start := in.Arrivals[0].Clone()
	cost, err := s.solve(0, start)
	if err != nil {
		return 0, nil, err
	}
	plan, err := s.reconstruct()
	if err != nil {
		return 0, nil, err
	}
	return cost, plan, nil
}

// solve returns the minimum cost to finish from pre-action state pre at
// time t.
func (s *solver) solve(t int, pre core.Vector) (float64, error) {
	tEnd := s.in.T()
	if t == tEnd {
		// The refresh drains everything.
		return s.in.Model.Total(pre), nil
	}
	key := fmt.Sprintf("%d|%s", t, pre.Key())
	if e, ok := s.memo[key]; ok {
		return e.cost, nil
	}
	if len(s.memo) >= maxStates {
		return 0, ErrTooLarge
	}
	// Reserve the slot to account the state against the cap even while
	// recursing; overwritten with the real entry below.
	s.memo[key] = entry{}

	best := -1.0
	var bestAct core.Vector
	act := core.NewVector(len(pre))
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(pre) {
			post := pre.Sub(act)
			if s.in.Model.Full(post, s.in.C) {
				return nil
			}
			next := post.Add(s.in.Arrivals[t+1])
			rest, err := s.solve(t+1, next)
			if err != nil {
				return err
			}
			total := s.in.Model.Total(act) + rest
			if best < 0 || total < best {
				best = total
				bestAct = act.Clone()
			}
			return nil
		}
		for v := 0; v <= pre[i]; v++ {
			act[i] = v
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		act[i] = 0
		return nil
	}
	if err := rec(0); err != nil {
		return 0, err
	}
	if best < 0 {
		// Unreachable: the full drain always yields a non-full state.
		return 0, fmt.Errorf("bruteforce: no valid action at t=%d state %v", t, pre)
	}
	s.memo[key] = entry{cost: best, action: bestAct}
	return best, nil
}

// reconstruct replays the memoized best actions into a plan.
func (s *solver) reconstruct() (core.Plan, error) {
	tEnd := s.in.T()
	plan := make(core.Plan, tEnd+1)
	state := s.in.Arrivals[0].Clone()
	for t := 0; t < tEnd; t++ {
		key := fmt.Sprintf("%d|%s", t, state.Key())
		e, ok := s.memo[key]
		if !ok || e.action == nil {
			return nil, fmt.Errorf("bruteforce: missing memo entry at t=%d", t)
		}
		plan[t] = e.action.Clone()
		state.SubInPlace(plan[t])
		state.AddInPlace(s.in.Arrivals[t+1])
	}
	plan[tEnd] = state.Clone()
	return plan, nil
}
