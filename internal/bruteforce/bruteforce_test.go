package bruteforce

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"abivm/internal/core"
	"abivm/internal/costfn"
)

func TestOptimalHandComputedExample(t *testing.T) {
	// Single table, f(k)=k+10, C=12 (so at most 2 unprocessed mods),
	// arrivals 2 per step over 3 steps. Any plan must flush at t>=0...
	// Optimal: do nothing at t=0 (state 2, cost 12 <= C), flush 4 at t=1?
	// State at t=1 pre = 4, cost 14 > 12 -> action forced; options include
	// partial drains. Optimal is two actions total: e.g. drain 2 at t=1
	// (cost 12, post state 2 ok), refresh 4 at t=2 (cost 14): total 26.
	// One action at t=1 of 4 (cost 14) + refresh 2 (cost 12) = 26 too.
	f, err := costfn.NewLinear(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	in, err := core.NewInstance(core.Arrivals{{2}, {2}, {2}}, core.NewCostModel(f), 12)
	if err != nil {
		t.Fatal(err)
	}
	cost, plan, err := Optimal(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cost-26) > 1e-9 {
		t.Fatalf("OPT = %g, want 26 (plan %v)", cost, plan)
	}
	if err := in.Validate(plan); err != nil {
		t.Fatalf("optimal plan invalid: %v", err)
	}
	if got := in.Cost(plan); math.Abs(got-cost) > 1e-9 {
		t.Fatalf("plan cost %g != reported %g", got, cost)
	}
}

func TestOptimalNeverWorseThanNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f0, _ := costfn.NewLinear(1, 2)
	f1, _ := costfn.NewStep(2, 3)
	for trial := 0; trial < 20; trial++ {
		arr := make(core.Arrivals, 2+rng.Intn(4))
		for ti := range arr {
			arr[ti] = core.Vector{rng.Intn(3), rng.Intn(3)}
		}
		in, err := core.NewInstance(arr, core.NewCostModel(f0, f1), float64(4+rng.Intn(6)))
		if err != nil {
			t.Fatal(err)
		}
		opt, plan, err := Optimal(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := in.Validate(plan); err != nil {
			t.Fatalf("trial %d: invalid optimal plan: %v", trial, err)
		}
		if naive := in.Cost(in.NaivePlan()); opt > naive+1e-9 {
			t.Fatalf("trial %d: OPT %g worse than naive %g", trial, opt, naive)
		}
	}
}

func TestOptimalPartialDrainBeatsLGMOnStepCosts(t *testing.T) {
	// The Section 3.2 tightness construction in miniature: step cost where
	// draining one modification unlocks a cheaper schedule than greedy
	// full drains. eps=1 -> f(x) = x/2*C for x<=2, 1.5*C beyond; with
	// C=10: f(1)=5, f(2)=10, f(>=3)=15. Three arrivals per step force an
	// action every step for greedy plans.
	f, err := costfn.NewPiecewiseLinear([]costfn.Knot{{K: 0, Cost: 0}, {K: 2, Cost: 10}, {K: 3, Cost: 15}, {K: 1000, Cost: 15}})
	if err != nil {
		t.Fatal(err)
	}
	in, err := core.NewInstance(core.Arrivals{{3}, {3}}, core.NewCostModel(f), 10)
	if err != nil {
		t.Fatal(err)
	}
	opt, plan, err := Optimal(in)
	if err != nil {
		t.Fatal(err)
	}
	// OPT: drain 1 at t=0 (cost 5, post 2 -> refresh cost 10 = C ok),
	// refresh 5 at t=1 (cost 15): total 20. Greedy plans pay 15+15 = 30.
	if math.Abs(opt-20) > 1e-9 {
		t.Fatalf("OPT = %g, want 20 (plan %v)", opt, plan)
	}
}

func TestOptimalTooLarge(t *testing.T) {
	old := maxStates
	maxStates = 50
	defer func() { maxStates = old }()

	f, _ := costfn.NewLinear(0.5, 0)
	arr := make(core.Arrivals, 10)
	for ti := range arr {
		arr[ti] = core.Vector{3, 3}
	}
	in, err := core.NewInstance(arr, core.NewCostModel(f, f), 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Optimal(in); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}
