package policy

import (
	"math/rand"
	"testing"

	"abivm/internal/astar"
	"abivm/internal/core"
	"abivm/internal/costfn"
)

// planFor computes the optimal LGM plan for a uniform two-table stream of
// length t0+1 under the given model and constraint.
func planFor(t *testing.T, model *core.CostModel, c float64, t0 int) core.Plan {
	t.Helper()
	arr := make(core.Arrivals, t0+1)
	for ti := range arr {
		arr[ti] = core.Vector{1, 1}
	}
	in, err := core.NewInstance(arr, model, c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := astar.Search(in, astar.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Plan
}

func adaptInstance(t *testing.T, model *core.CostModel, c float64, tEnd int) *core.Instance {
	t.Helper()
	arr := make(core.Arrivals, tEnd+1)
	for ti := range arr {
		arr[ti] = core.Vector{1, 1}
	}
	in, err := core.NewInstance(arr, model, c)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestAdaptTruncatesWhenRefreshEarlier(t *testing.T) {
	model := mkModel(t)
	c := 12.0
	plan := planFor(t, model, c, 500)
	in := adaptInstance(t, model, c, 200) // T < T0
	got := drive(t, NewAdapt(model, c, plan), in.Arrivals, model, c)
	if err := in.Validate(got); err != nil {
		t.Fatalf("ADAPT truncated plan invalid: %v", err)
	}
}

func TestAdaptRepeatsWhenRefreshLater(t *testing.T) {
	model := mkModel(t)
	c := 12.0
	plan := planFor(t, model, c, 100)
	in := adaptInstance(t, model, c, 450) // T > T0, not a multiple
	got := drive(t, NewAdapt(model, c, plan), in.Arrivals, model, c)
	if err := in.Validate(got); err != nil {
		t.Fatalf("ADAPT repeated plan invalid: %v", err)
	}
}

func TestAdaptMatchesPlanWhenTEqualsT0(t *testing.T) {
	model := mkModel(t)
	c := 12.0
	t0 := 300
	plan := planFor(t, model, c, t0)
	in := adaptInstance(t, model, c, t0)
	got := drive(t, NewAdapt(model, c, plan), in.Arrivals, model, c)
	if gotCost, want := in.Cost(got), in.Cost(plan); gotCost > want+1e-9 {
		t.Fatalf("ADAPT at T=T0 cost %g, want %g (plan verbatim)", gotCost, want)
	}
}

func TestAdaptTheorem4BoundEarlyRefresh(t *testing.T) {
	// Theorem 4, T < T0 with linear costs: cost(ADAPT) <= OPT_T + Σ b_i.
	f0, _ := costfn.NewLinear(1, 2)
	f1, _ := costfn.NewLinear(0.5, 4)
	model := core.NewCostModel(f0, f1)
	sumB := 2.0 + 4.0
	c := 12.0
	t0 := 400
	plan := planFor(t, model, c, t0)
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 8; trial++ {
		tEnd := 50 + rng.Intn(t0-60) // strictly earlier refresh
		in := adaptInstance(t, model, c, tEnd)
		got := drive(t, NewAdapt(model, c, plan), in.Arrivals, model, c)
		if err := in.Validate(got); err != nil {
			t.Fatal(err)
		}
		res, err := astar.Search(in, astar.Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Theorem 2 makes OPT-LGM == OPT for linear costs.
		if cost := in.Cost(got); cost > res.Cost+sumB+1e-6 {
			t.Fatalf("trial %d (T=%d): ADAPT %g > OPT %g + Σb %g", trial, tEnd, cost, res.Cost, sumB)
		}
	}
}

func TestAdaptTheorem4BoundLateRefresh(t *testing.T) {
	// Theorem 4, T > T0 with linear costs and a T0-periodic stream:
	// cost(ADAPT) <= OPT_T + ceil(T/T0)·Σ b_i.
	f0, _ := costfn.NewLinear(1, 2)
	f1, _ := costfn.NewLinear(0.5, 4)
	model := core.NewCostModel(f0, f1)
	sumB := 2.0 + 4.0
	c := 12.0
	t0 := 100
	plan := planFor(t, model, c, t0)
	for _, tEnd := range []int{150, 250, 333, 499} {
		in := adaptInstance(t, model, c, tEnd)
		got := drive(t, NewAdapt(model, c, plan), in.Arrivals, model, c)
		if err := in.Validate(got); err != nil {
			t.Fatal(err)
		}
		res, err := astar.Search(in, astar.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cycles := (tEnd + t0 - 1) / t0
		bound := res.Cost + float64(cycles)*sumB
		if cost := in.Cost(got); cost > bound+1e-6 {
			t.Fatalf("T=%d: ADAPT %g > bound %g (OPT %g + %d·Σb)", tEnd, cost, bound, res.Cost, cycles)
		}
	}
}

func TestAdaptSurvivesDivergentArrivals(t *testing.T) {
	// The plan was computed for a uniform stream but the actual stream is
	// noisy: the safety net must keep the run valid.
	model := mkModel(t)
	c := 12.0
	plan := planFor(t, model, c, 100)
	rng := rand.New(rand.NewSource(50))
	arr := make(core.Arrivals, 300)
	for ti := range arr {
		arr[ti] = core.Vector{rng.Intn(4), rng.Intn(4)}
	}
	in, err := core.NewInstance(arr, model, c)
	if err != nil {
		t.Fatal(err)
	}
	got := drive(t, NewAdapt(model, c, plan), arr, model, c)
	if err := in.Validate(got); err != nil {
		t.Fatalf("ADAPT with divergent arrivals invalid: %v", err)
	}
}

func TestNewAdaptRejectsEmptyPlan(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty plan accepted")
		}
	}()
	NewAdapt(mkModel(t), 1, nil)
}
