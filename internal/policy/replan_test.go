package policy

import (
	"math/rand"
	"testing"

	"abivm/internal/core"
	"abivm/internal/costfn"
)

func asymModel(t *testing.T) *core.CostModel {
	t.Helper()
	fR, err := costfn.NewLinear(0.05, 5) // flat: batch it
	if err != nil {
		t.Fatal(err)
	}
	fS, err := costfn.NewLinear(1.0, 0.1) // steep: drain it
	if err != nil {
		t.Fatal(err)
	}
	return core.NewCostModel(fR, fS)
}

func TestAdaptReplanProducesValidPlans(t *testing.T) {
	model := asymModel(t)
	c := 12.0
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		arr := make(core.Arrivals, 100+rng.Intn(200))
		for ti := range arr {
			arr[ti] = core.Vector{rng.Intn(3), rng.Intn(2)}
		}
		in, err := core.NewInstance(arr, model, c)
		if err != nil {
			t.Fatal(err)
		}
		plan := drive(t, NewAdaptReplan(model, c, 50, nil), arr, model, c)
		if err := in.Validate(plan); err != nil {
			t.Fatalf("trial %d: ADAPT-RP plan invalid: %v", trial, err)
		}
	}
}

func TestAdaptReplanBeatsNaiveOnAsymmetry(t *testing.T) {
	model := asymModel(t)
	c := 12.0
	arr := make(core.Arrivals, 500)
	for ti := range arr {
		arr[ti] = core.Vector{1, 1}
	}
	in, err := core.NewInstance(arr, model, c)
	if err != nil {
		t.Fatal(err)
	}
	plan := drive(t, NewAdaptReplan(model, c, 60, nil), arr, model, c)
	if err := in.Validate(plan); err != nil {
		t.Fatal(err)
	}
	replanCost := in.Cost(plan)
	naiveCost := in.Cost(in.NaivePlan())
	if replanCost >= naiveCost {
		t.Fatalf("ADAPT-RP %g did not beat NAIVE %g", replanCost, naiveCost)
	}
}

func TestAdaptReplanSurvivesExpansionBudget(t *testing.T) {
	model := asymModel(t)
	c := 12.0
	arr := make(core.Arrivals, 120)
	for ti := range arr {
		arr[ti] = core.Vector{1, 1}
	}
	in, err := core.NewInstance(arr, model, c)
	if err != nil {
		t.Fatal(err)
	}
	pol := NewAdaptReplan(model, c, 40, nil)
	pol.MaxExpansions = 1 // every A* run fails; the safety net must carry
	plan := drive(t, pol, arr, model, c)
	if err := in.Validate(plan); err != nil {
		t.Fatalf("budget-starved ADAPT-RP invalid: %v", err)
	}
}

func TestAdaptReplanValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("horizon 0 accepted")
		}
	}()
	NewAdaptReplan(asymModel(t), 1, 0, nil)
}
