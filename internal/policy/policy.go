// Package policy implements the runtime maintenance policies compared in
// the paper's experiments:
//
//   - Naive — the traditional symmetric approach: whenever the constraint
//     is violated, process every batched modification (Section 1).
//   - Online — the heuristic of Section 4.3: on violation, pick the greedy
//     minimal valid action minimizing the amortized-cost ratio H, using a
//     rate estimator to predict TimeToFull. Needs no advance knowledge.
//   - Adapt — Section 4.2: execute a plan precomputed for an estimated
//     refresh time T0; truncate if the true refresh comes earlier, repeat
//     the plan if it comes later.
//   - Oracle — replays a precomputed plan verbatim (e.g. the optimal LGM
//     plan from the astar package); the perfect-knowledge upper baseline.
//
// All policies share the Policy interface consumed by the sim package. A
// policy is driven one step at a time: it observes the arrivals, sees the
// pre-action state, and returns the action to take. Policies never return
// invalid actions: if their primary rule would leave a full state they
// fall back to the cheapest greedy minimal valid action.
package policy

import "abivm/internal/core"

// Policy decides maintenance actions online, one time step at a time.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Reset prepares the policy for a fresh run over n base tables.
	Reset(n int)
	// Act is called once per step. d is the arrival vector at t, pre is
	// the pre-action state (arrivals already included), and refresh marks
	// the final step, at which the returned action must drain everything.
	// Implementations must not retain or mutate d or pre.
	Act(t int, d, pre core.Vector, refresh bool) core.Vector
}

// Naive is the symmetric deferred-maintenance baseline: batch everything,
// and when the response-time constraint is violated (or the view is
// refreshed), process all accumulated modifications from all tables.
type Naive struct {
	model *core.CostModel
	c     float64
}

// NewNaive returns the NAIVE policy for the given cost model and
// constraint.
func NewNaive(model *core.CostModel, c float64) *Naive {
	return &Naive{model: model, c: c}
}

// Name implements Policy.
func (p *Naive) Name() string { return "NAIVE" }

// Reset implements Policy.
func (p *Naive) Reset(int) {}

// Act drains everything when the state is full or the view refreshes.
func (p *Naive) Act(t int, d, pre core.Vector, refresh bool) core.Vector {
	if refresh || p.model.Full(pre, p.c) {
		return pre.Clone()
	}
	return core.NewVector(len(pre))
}

// Oracle replays a precomputed plan. Actions are clamped to the available
// state so that replaying a plan against a slightly different arrival
// sequence stays well-formed, and a safety net keeps the run valid if the
// plan and the observed arrivals diverge.
type Oracle struct {
	model *core.CostModel
	c     float64
	plan  core.Plan
	label string
}

// NewOracle returns a policy replaying plan; label is the reported name
// (e.g. "OPT-LGM").
func NewOracle(model *core.CostModel, c float64, plan core.Plan, label string) *Oracle {
	return &Oracle{model: model, c: c, plan: plan, label: label}
}

// Name implements Policy.
func (p *Oracle) Name() string { return p.label }

// Reset implements Policy.
func (p *Oracle) Reset(int) {}

// Act replays the planned action at t, clamped to the available state;
// at refresh it drains everything, and if the planned action would leave
// a full state it is topped up with the cheapest valid completion.
func (p *Oracle) Act(t int, d, pre core.Vector, refresh bool) core.Vector {
	if refresh {
		return pre.Clone()
	}
	act := core.NewVector(len(pre))
	if t < len(p.plan) && p.plan[t] != nil {
		for i, k := range p.plan[t] {
			if k > pre[i] {
				k = pre[i]
			}
			act[i] = k
		}
	}
	post := pre.Sub(act)
	if p.model.Full(post, p.c) {
		// Plan diverged from observed arrivals; complete with the cheapest
		// greedy minimal action on the remaining state.
		extra := core.CheapestGreedyMinimalAction(post, p.model, p.c)
		act.AddInPlace(extra)
	}
	return act
}
