package policy

import (
	"testing"

	"abivm/internal/core"
)

func TestPeriodicFlushesOnSchedule(t *testing.T) {
	model := mkModel(t)
	c := 1000.0 // constraint never binds
	pol := NewPeriodic(model, c, 5)
	arr := make(core.Arrivals, 12)
	for ti := range arr {
		arr[ti] = core.Vector{1, 0}
	}
	plan := drive(t, pol, arr, model, c)
	// Flushes at t=4, t=9 (period 5) and the refresh at t=11.
	for ti, act := range plan {
		wantFlush := ti == 4 || ti == 9 || ti == 11
		if wantFlush != !act.IsZero() {
			t.Errorf("t=%d: action %v, want flush=%t", ti, act, wantFlush)
		}
	}
	if !plan[4].Equal(core.Vector{5, 0}) {
		t.Errorf("flush at t=4 = %v, want [5 0]", plan[4])
	}
}

func TestPeriodicSafetyNetKeepsConstraint(t *testing.T) {
	model := mkModel(t) // f0 = k+2, f1 = 0.5k+4
	c := 10.0
	// Long period, but heavy arrivals force the lazy safety net well
	// before the scheduled flush.
	pol := NewPeriodic(model, c, 100)
	arr := make(core.Arrivals, 30)
	for ti := range arr {
		arr[ti] = core.Vector{2, 2}
	}
	in, err := core.NewInstance(arr, model, c)
	if err != nil {
		t.Fatal(err)
	}
	plan := drive(t, pol, arr, model, c)
	if err := in.Validate(plan); err != nil {
		t.Fatalf("periodic plan invalid: %v", err)
	}
}

func TestPeriodicValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("period 0 accepted")
		}
	}()
	NewPeriodic(mkModel(t), 1, 0)
}
