package policy

import "abivm/internal/core"

// Adapt executes a plan optimized for an estimated refresh time T0 under
// an arbitrary actual refresh time T (Section 4.2):
//
//   - If T == T0, the precomputed plan runs verbatim.
//   - If T < T0, the plan is truncated: execution stops at T, where all
//     remaining modifications are processed.
//   - If T > T0, the plan is executed repeatedly (the cycle includes the
//     plan's final full refresh at its step T0) until T, where all
//     remaining modifications are processed.
//
// Theorem 4: under linear cost functions the resulting plan costs at most
// OPT_T + Σ_i b_i when T < T0, and at most OPT_T + ceil(T/T0)·Σ_i b_i when
// T > T0 (assuming the arrival sequence is periodic with period T0).
//
// Planned actions are clamped to the available state, and if a planned
// (or absent) action would leave a full state the policy tops it up with
// the cheapest greedy minimal valid action, so runs against arrival
// sequences that deviate from the planning-time sequence remain valid.
type Adapt struct {
	model *core.CostModel
	c     float64
	plan  core.Plan // plan over [0, T0], plan[T0] is the full refresh
}

// NewAdapt returns the ADAPT policy wrapping a plan computed for refresh
// time T0 = len(plan)-1 (typically an optimal LGM plan from the astar
// package).
func NewAdapt(model *core.CostModel, c float64, plan core.Plan) *Adapt {
	if len(plan) == 0 {
		panic("policy: Adapt needs a non-empty plan")
	}
	return &Adapt{model: model, c: c, plan: plan}
}

// Name implements Policy.
func (p *Adapt) Name() string { return "ADAPT" }

// Reset implements Policy.
func (p *Adapt) Reset(int) {}

// Act implements Policy.
func (p *Adapt) Act(t int, d, pre core.Vector, refresh bool) core.Vector {
	if refresh {
		return pre.Clone()
	}
	phase := t % len(p.plan)
	act := core.NewVector(len(pre))
	if planned := p.plan[phase]; planned != nil {
		for i, k := range planned {
			if k > pre[i] {
				k = pre[i]
			}
			act[i] = k
		}
	}
	post := pre.Sub(act)
	if p.model.Full(post, p.c) {
		extra := core.CheapestGreedyMinimalAction(post, p.model, p.c)
		act.AddInPlace(extra)
	}
	return act
}
