package policy

import "abivm/internal/core"

// OnlineMarginal is an extension of the paper's ONLINE heuristic
// (Section 4.3) that scores candidate actions by their marginal cost
// rate
//
//	H'(q) = f(q) / TimeToFull(s_t - q)
//
// instead of the paper's cumulative average (F_t + f(q))/(t + TTF). The
// cumulative form has a cold-start pathology on intercept-heavy cost
// structures: while the accumulated cost F_t is small, a tiny action with
// a tiny time-to-full keeps the historical average low even though its
// marginal rate is far worse than the alternatives, and the policy can
// lock into draining one modification per step. Scoring the marginal
// rate compares what each action buys from now on, which is the quantity
// a long-run-average minimizer actually controls. The paper lists a cost
// bound for its online heuristic as an open problem; this variant is the
// corresponding engineering improvement, evaluated in the ablation bench.
type OnlineMarginal struct {
	model *core.CostModel
	c     float64
	est   RateEstimator
	obs   *Metrics
	inner *Online // reuses the TTF machinery
}

// NewOnlineMarginal returns the marginal-rate online policy. If est is
// nil an EWMA estimator with alpha 0.2 is used.
func NewOnlineMarginal(model *core.CostModel, c float64, est RateEstimator) *OnlineMarginal {
	if est == nil {
		est = NewEWMA(0.2)
	}
	return &OnlineMarginal{model: model, c: c, est: est, inner: NewOnline(model, c, est)}
}

// Name implements Policy.
func (p *OnlineMarginal) Name() string { return "ONLINE-M" }

// SetMetrics attaches an instrumentation bundle (see NewMetrics); nil
// (the default) detaches. The inner TTF machinery stays unmetered — its
// decisions are this policy's, not ONLINE's.
func (p *OnlineMarginal) SetMetrics(ms *Metrics) { p.obs = ms }

// Reset implements Policy.
func (p *OnlineMarginal) Reset(n int) { p.inner.Reset(n) }

// Act implements Policy.
func (p *OnlineMarginal) Act(t int, d, pre core.Vector, refresh bool) core.Vector {
	p.est.Observe(d)
	if refresh {
		p.obs.observeRefresh()
		return pre.Clone()
	}
	if !p.model.Full(pre, p.c) {
		return core.NewVector(len(pre))
	}
	candidates := core.GreedyActionSet(pre, p.model, p.c, true)
	var best core.Vector
	bestScore := 0.0
	for _, q := range candidates {
		ttf := p.inner.timeToFull(pre.Sub(q))
		score := p.model.Total(q) / float64(ttf)
		if best == nil || score < bestScore || (core.ApproxEq(score, bestScore) && q.Key() < best.Key()) {
			best, bestScore = q, score
		}
	}
	p.obs.observeDecision(len(candidates), best)
	return best
}
