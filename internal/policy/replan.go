package policy

import (
	"abivm/internal/astar"
	"abivm/internal/core"
)

// AdaptReplan extends ADAPT (Section 4.2) for settings where neither the
// refresh time nor the arrival sequence is known: every Horizon steps it
// re-runs the A* planner over a *projected* arrival sequence built from
// the current backlog and the estimated arrival rates, then executes the
// fresh plan. It trades planning CPU for plan quality between the
// prescient ADAPT and the purely reactive ONLINE heuristic. Replanning
// failures (e.g. an expansion budget) fall back to the cheapest greedy
// minimal action, so the policy always stays valid.
type AdaptReplan struct {
	model *core.CostModel
	c     float64
	est   RateEstimator
	// Horizon is both the replanning period and the length of the
	// projected arrival sequence.
	Horizon int
	// MaxExpansions bounds each A* run; 0 means unlimited.
	MaxExpansions int

	plan      core.Plan
	planStart int
}

// NewAdaptReplan returns a replanning ADAPT policy. If est is nil an
// EWMA estimator with alpha 0.2 is used.
func NewAdaptReplan(model *core.CostModel, c float64, horizon int, est RateEstimator) *AdaptReplan {
	if horizon < 1 {
		panic("policy: replanning horizon must be >= 1")
	}
	if est == nil {
		est = NewEWMA(0.2)
	}
	return &AdaptReplan{model: model, c: c, est: est, Horizon: horizon}
}

// Name implements Policy.
func (p *AdaptReplan) Name() string { return "ADAPT-RP" }

// Reset implements Policy.
func (p *AdaptReplan) Reset(n int) {
	p.est.Reset(n)
	p.plan = nil
	p.planStart = 0
}

// Act implements Policy.
func (p *AdaptReplan) Act(t int, d, pre core.Vector, refresh bool) core.Vector {
	p.est.Observe(d)
	if refresh {
		return pre.Clone()
	}
	if p.plan == nil || t-p.planStart >= len(p.plan) {
		p.replan(t, pre)
	}
	act := core.NewVector(len(pre))
	if p.plan != nil {
		if planned := p.plan[t-p.planStart]; planned != nil {
			for i, k := range planned {
				if k > pre[i] {
					k = pre[i]
				}
				act[i] = k
			}
		}
	}
	post := pre.Sub(act)
	if p.model.Full(post, p.c) {
		extra := core.CheapestGreedyMinimalAction(post, p.model, p.c)
		act.AddInPlace(extra)
		// The plan's assumptions broke; replan at the next step.
		p.plan = nil
	}
	return act
}

// replan projects the arrival sequence from the estimated rates and
// solves for an optimal LGM plan over the next Horizon steps. The
// current backlog enters as the arrivals of the first projected step.
func (p *AdaptReplan) replan(t int, pre core.Vector) {
	n := len(pre)
	rates := p.est.Rates()
	arr := make(core.Arrivals, p.Horizon+1)
	// carry accumulates fractional rates so a 0.5-rate table still
	// receives one modification every two projected steps.
	carry := make([]float64, n)
	for step := range arr {
		dv := core.NewVector(n)
		if step == 0 {
			copy(dv, pre)
		} else {
			for i := range dv {
				carry[i] += rates[i]
				whole := int(carry[i])
				dv[i] = whole
				carry[i] -= float64(whole)
			}
		}
		arr[step] = dv
	}
	in, err := core.NewInstance(arr, p.model, p.c)
	if err != nil {
		p.plan = nil
		return
	}
	res, err := astar.Search(in, astar.Options{MaxExpansions: p.MaxExpansions})
	if err != nil {
		p.plan = nil
		return
	}
	// Drop the final forced refresh: the projected horizon end is not a
	// real refresh, so draining everything there would be wasteful.
	res.Plan[len(res.Plan)-1] = core.NewVector(n)
	p.plan = res.Plan
	p.planStart = t
}
