package policy

import (
	"math/rand"
	"testing"

	"abivm/internal/astar"
	"abivm/internal/core"
	"abivm/internal/costfn"
)

func TestOnlineProducesValidPlans(t *testing.T) {
	model := mkModel(t)
	rng := rand.New(rand.NewSource(30))
	for trial := 0; trial < 30; trial++ {
		arr := make(core.Arrivals, 5+rng.Intn(60))
		for ti := range arr {
			arr[ti] = core.Vector{rng.Intn(3), rng.Intn(3)}
		}
		c := float64(8 + rng.Intn(10))
		in, err := core.NewInstance(arr, model, c)
		if err != nil {
			t.Fatal(err)
		}
		plan := drive(t, NewOnline(model, c, nil), arr, model, c)
		if err := in.Validate(plan); err != nil {
			t.Fatalf("trial %d: ONLINE plan invalid: %v", trial, err)
		}
		if !in.IsLazy(plan) || !in.IsGreedy(plan) || !in.IsMinimal(plan) {
			t.Fatalf("trial %d: ONLINE plan not LGM", trial)
		}
	}
}

func TestOnlineExploitsAsymmetry(t *testing.T) {
	// The paper's motivating scenario: table 0 (R, indexed) gains a lot
	// from batching (big setup, tiny slope); table 1 (S, unindexed) gains
	// nothing (no setup). ONLINE must beat NAIVE by a clear margin.
	rCost, _ := costfn.NewLinear(0.05, 5)
	sCost, _ := costfn.NewLinear(1.0, 0.1)
	model := core.NewCostModel(rCost, sCost)
	c := 12.0
	arr := make(core.Arrivals, 400)
	for ti := range arr {
		arr[ti] = core.Vector{1, 1}
	}
	in, err := core.NewInstance(arr, model, c)
	if err != nil {
		t.Fatal(err)
	}
	online := drive(t, NewOnline(model, c, nil), arr, model, c)
	if err := in.Validate(online); err != nil {
		t.Fatal(err)
	}
	onlineCost := in.Cost(online)
	naiveCost := in.Cost(in.NaivePlan())
	if onlineCost >= naiveCost {
		t.Fatalf("ONLINE %g did not beat NAIVE %g on asymmetric workload", onlineCost, naiveCost)
	}
	// And it should be within a modest factor of the offline optimum.
	res, err := astar.Search(in, astar.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if onlineCost > 1.6*res.Cost {
		t.Fatalf("ONLINE %g too far from OPT-LGM %g", onlineCost, res.Cost)
	}
}

func TestOnlineWithOracleRates(t *testing.T) {
	// With exact rates the TimeToFull prediction is exact for uniform
	// streams; the resulting plan must still be valid and at least as good
	// as NAIVE.
	model := mkModel(t)
	c := 15.0
	arr := make(core.Arrivals, 300)
	for ti := range arr {
		arr[ti] = core.Vector{1, 2}
	}
	in, err := core.NewInstance(arr, model, c)
	if err != nil {
		t.Fatal(err)
	}
	plan := drive(t, NewOnline(model, c, FixedRates{1, 2}), arr, model, c)
	if err := in.Validate(plan); err != nil {
		t.Fatal(err)
	}
	if got, naive := in.Cost(plan), in.Cost(in.NaivePlan()); got > naive+1e-9 {
		t.Fatalf("ONLINE with oracle rates %g worse than NAIVE %g", got, naive)
	}
}

func TestOnlineZeroRateStream(t *testing.T) {
	// A stream that stops: rates decay to ~0, TimeToFull saturates at the
	// horizon, and the policy must not spin or divide by zero.
	model := mkModel(t)
	c := 6.0
	arr := make(core.Arrivals, 50)
	for ti := range arr {
		if ti < 5 {
			arr[ti] = core.Vector{3, 3}
		} else {
			arr[ti] = core.Vector{0, 0}
		}
	}
	in, err := core.NewInstance(arr, model, c)
	if err != nil {
		t.Fatal(err)
	}
	plan := drive(t, NewOnline(model, c, nil), arr, model, c)
	if err := in.Validate(plan); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineResetClearsState(t *testing.T) {
	model := mkModel(t)
	pol := NewOnline(model, 10, nil)
	arr := core.Arrivals{{5, 5}, {5, 5}, {0, 0}}
	first := drive(t, pol, arr, model, 10)
	second := drive(t, pol, arr, model, 10)
	for ti := range first {
		if !first[ti].Equal(second[ti]) {
			t.Fatalf("run not reproducible after Reset at t=%d: %v vs %v", ti, first[ti], second[ti])
		}
	}
}
