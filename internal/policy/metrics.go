package policy

import (
	"abivm/internal/core"
	"abivm/internal/obs"
)

// Metrics is the online-policy instrumentation bundle, labeled by policy
// name so ONLINE and ONLINE-M report side by side in one registry.
// Attach with SetMetrics; a nil bundle (the default) adds no work to
// Act. The instruments capture the paper's Section 4.3 decision loop:
// how often the state fills (Decisions), how many candidate actions each
// H(q) scoring pass weighed (Candidates), how large the chosen drains
// were (ActionMods), and how often the policy was forced into a full
// refresh (Refreshes).
type Metrics struct {
	Decisions  *obs.Counter
	Refreshes  *obs.Counter
	Candidates *obs.Counter
	ActionMods *obs.Histogram
}

// NewMetrics registers the policy instruments on r under the given
// policy label and returns the bundle (nil registry yields nil).
func NewMetrics(r *obs.Registry, policy string) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		Decisions:  r.Counter("policy_decisions_total", "policy", policy),
		Refreshes:  r.Counter("policy_refreshes_total", "policy", policy),
		Candidates: r.Counter("policy_candidates_total", "policy", policy),
		ActionMods: r.Histogram("policy_action_mods",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256}, "policy", policy),
	}
}

// observeDecision records one full-state H(q) decision.
func (ms *Metrics) observeDecision(candidates int, act core.Vector) {
	if ms == nil {
		return
	}
	ms.Decisions.Inc()
	ms.Candidates.Add(int64(candidates))
	total := 0
	for _, k := range act {
		total += k
	}
	ms.ActionMods.Observe(float64(total))
}

// observeRefresh records one forced full refresh.
func (ms *Metrics) observeRefresh() {
	if ms == nil {
		return
	}
	ms.Refreshes.Inc()
}
