package policy

import "abivm/internal/core"

// Periodic is the classic periodic-maintenance baseline (Colby et al.,
// SIGMOD 97, discussed in the paper's related work): every Period steps
// it drains every delta queue, regardless of the constraint. Because a
// fixed period cannot adapt to arrival bursts, it would violate the
// response-time constraint on its own; a lazy safety net drains
// everything whenever the state is full, which makes the policy valid
// and turns it into "NAIVE with extra scheduled flushes" — a useful
// lower baseline for the benches.
type Periodic struct {
	model  *core.CostModel
	c      float64
	period int
}

// NewPeriodic returns a periodic policy flushing every period steps.
func NewPeriodic(model *core.CostModel, c float64, period int) *Periodic {
	if period < 1 {
		panic("policy: period must be >= 1")
	}
	return &Periodic{model: model, c: c, period: period}
}

// Name implements Policy.
func (p *Periodic) Name() string { return "PERIODIC" }

// Reset implements Policy.
func (p *Periodic) Reset(int) {}

// Act implements Policy.
func (p *Periodic) Act(t int, d, pre core.Vector, refresh bool) core.Vector {
	if refresh || (t+1)%p.period == 0 || p.model.Full(pre, p.c) {
		return pre.Clone()
	}
	return core.NewVector(len(pre))
}
