package policy

import "abivm/internal/core"

// ttfHorizon caps TimeToFull predictions: when estimated arrival rates are
// (near) zero the state may never fill, and the paper's H ratio then
// reduces to picking the cheapest action. 1<<20 steps is far beyond any
// experiment horizon.
const ttfHorizon = 1 << 20

// RateEstimator predicts per-table arrival rates from observed arrivals.
// The Online policy queries it to compute TimeToFull.
type RateEstimator interface {
	// Reset prepares the estimator for n tables.
	Reset(n int)
	// Observe feeds the arrival vector of one time step.
	Observe(d core.Vector)
	// Rates returns the current per-table arrival-rate estimate
	// (modifications per step). The caller must not mutate the result.
	Rates() []float64
}

// EWMA is an exponentially weighted moving-average rate estimator with
// smoothing factor Alpha in (0, 1]; larger Alpha adapts faster to rate
// changes but is noisier on unstable streams.
type EWMA struct {
	Alpha float64
	rates []float64
	seen  bool
}

// NewEWMA returns an EWMA estimator with the given smoothing factor.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("policy: EWMA alpha must be in (0,1]")
	}
	return &EWMA{Alpha: alpha}
}

// Reset implements RateEstimator.
func (e *EWMA) Reset(n int) {
	e.rates = make([]float64, n)
	e.seen = false
}

// Observe implements RateEstimator.
func (e *EWMA) Observe(d core.Vector) {
	if !e.seen {
		for i, x := range d {
			e.rates[i] = float64(x)
		}
		e.seen = true
		return
	}
	for i, x := range d {
		e.rates[i] += e.Alpha * (float64(x) - e.rates[i])
	}
}

// Rates implements RateEstimator.
func (e *EWMA) Rates() []float64 { return e.rates }

// FixedRates is an oracle rate estimator that always reports the given
// per-table rates; the ONLINE TimeToFull ablation uses it to isolate the
// error introduced by rate estimation.
type FixedRates []float64

// Reset implements RateEstimator.
func (FixedRates) Reset(int) {}

// Observe implements RateEstimator.
func (FixedRates) Observe(core.Vector) {}

// Rates implements RateEstimator.
func (f FixedRates) Rates() []float64 { return f }

// Online is the heuristic policy of Section 4.3. It requires no knowledge
// of the arrival sequence or the refresh time. When the pre-action state
// is full at time t it picks, among all greedy minimal valid actions q,
// the one minimizing the amortized cost
//
//	H(q) = (F_t + f(q)) / (t + TimeToFull(s_t - q))
//
// where F_t is the maintenance cost already incurred and TimeToFull
// predicts how many further steps the post-action state can absorb before
// becoming full again, given the estimated arrival rates.
type Online struct {
	model *core.CostModel
	c     float64
	est   RateEstimator
	obs   *Metrics

	costSoFar float64
	steps     int // steps observed since Reset; used as t in H when t=0
}

// NewOnline returns the ONLINE policy. If est is nil an EWMA estimator
// with alpha 0.2 is used.
func NewOnline(model *core.CostModel, c float64, est RateEstimator) *Online {
	if est == nil {
		est = NewEWMA(0.2)
	}
	return &Online{model: model, c: c, est: est}
}

// Name implements Policy.
func (p *Online) Name() string { return "ONLINE" }

// SetMetrics attaches an instrumentation bundle (see NewMetrics); nil
// (the default) detaches.
func (p *Online) SetMetrics(ms *Metrics) { p.obs = ms }

// Reset implements Policy.
func (p *Online) Reset(n int) {
	p.est.Reset(n)
	p.costSoFar = 0
	p.steps = 0
}

// Act implements Policy.
func (p *Online) Act(t int, d, pre core.Vector, refresh bool) core.Vector {
	p.est.Observe(d)
	p.steps++
	if refresh {
		act := pre.Clone()
		p.costSoFar += p.model.Total(act)
		p.obs.observeRefresh()
		return act
	}
	if !p.model.Full(pre, p.c) {
		return core.NewVector(len(pre))
	}
	candidates := core.GreedyActionSet(pre, p.model, p.c, true)
	var best core.Vector
	bestH := 0.0
	for _, q := range candidates {
		h := p.scoreH(t, pre, q)
		if best == nil || h < bestH || (core.ApproxEq(h, bestH) && q.Key() < best.Key()) {
			best, bestH = q, h
		}
	}
	p.costSoFar += p.model.Total(best)
	p.obs.observeDecision(len(candidates), best)
	return best
}

// scoreH evaluates H(q) at time t for pre-action state pre.
func (p *Online) scoreH(t int, pre, q core.Vector) float64 {
	post := pre.Sub(q)
	ttf := p.timeToFull(post)
	return (p.costSoFar + p.model.Total(q)) / float64(t+ttf)
}

// timeToFull predicts the number of steps until the state becomes full
// again, starting from state s, under the estimated arrival rates.
// Fullness is monotone in the number of steps, so a binary search over
// [1, ttfHorizon] applies.
func (p *Online) timeToFull(s core.Vector) int {
	rates := p.est.Rates()
	fullAfter := func(k int) bool {
		total := 0.0
		for i, base := range s {
			expect := base + int(rates[i]*float64(k)+0.5)
			total += p.model.TableCost(i, expect)
		}
		return !core.ApproxLE(total, p.c)
	}
	if !fullAfter(ttfHorizon) {
		return ttfHorizon
	}
	lo, hi := 1, ttfHorizon
	for lo < hi {
		mid := lo + (hi-lo)/2
		if fullAfter(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
