package policy

import (
	"math/rand"
	"testing"

	"abivm/internal/core"
	"abivm/internal/costfn"
)

func mkModel(t *testing.T) *core.CostModel {
	t.Helper()
	f0, err := costfn.NewLinear(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := costfn.NewLinear(0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	return core.NewCostModel(f0, f1)
}

// drive runs a policy over an arrival sequence by hand and returns the
// produced plan; it fails the test on any invalid action.
func drive(t *testing.T, pol Policy, arr core.Arrivals, model *core.CostModel, c float64) core.Plan {
	t.Helper()
	n := arr.N()
	pol.Reset(n)
	plan := make(core.Plan, len(arr))
	state := core.NewVector(n)
	for ti, d := range arr {
		state.AddInPlace(d)
		act := pol.Act(ti, d.Clone(), state.Clone(), ti == len(arr)-1)
		if !act.NonNegative() || !act.DominatedBy(state) {
			t.Fatalf("%s: out-of-range action %v at t=%d (state %v)", pol.Name(), act, ti, state)
		}
		state.SubInPlace(act)
		plan[ti] = act
	}
	return plan
}

func TestNaiveFlushesOnlyWhenFull(t *testing.T) {
	model := mkModel(t)
	c := 10.0
	pol := NewNaive(model, c)
	if pol.Name() != "NAIVE" {
		t.Fatalf("Name = %q", pol.Name())
	}
	arr := core.Arrivals{{1, 1}, {1, 1}, {5, 5}, {0, 0}}
	plan := drive(t, pol, arr, model, c)
	// t=0: state {1,1} costs 3+4.5=7.5, not full -> no action.
	if !plan[0].IsZero() {
		t.Errorf("action at t=0: %v", plan[0])
	}
	// t=1: state {2,2} costs 4+5=9, not full.
	if !plan[1].IsZero() {
		t.Errorf("action at t=1: %v", plan[1])
	}
	// t=2: state {7,7} costs 9+7.5=16.5 > 10 -> flush all.
	if !plan[2].Equal(core.Vector{7, 7}) {
		t.Errorf("action at t=2: %v, want full flush", plan[2])
	}
	// t=3 is the refresh with empty state.
	if !plan[3].IsZero() {
		t.Errorf("action at t=3: %v", plan[3])
	}
}

func TestNaiveMatchesCoreNaivePlan(t *testing.T) {
	model := mkModel(t)
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 30; trial++ {
		arr := make(core.Arrivals, 2+rng.Intn(30))
		for ti := range arr {
			arr[ti] = core.Vector{rng.Intn(4), rng.Intn(4)}
		}
		c := float64(8 + rng.Intn(10))
		in, err := core.NewInstance(arr, model, c)
		if err != nil {
			t.Fatal(err)
		}
		got := drive(t, NewNaive(model, c), arr, model, c)
		want := in.NaivePlan()
		for ti := range want {
			if !got[ti].Equal(want[ti]) {
				t.Fatalf("trial %d: NAIVE policy diverges from core.NaivePlan at t=%d: %v vs %v",
					trial, ti, got[ti], want[ti])
			}
		}
	}
}

func TestOracleReplaysPlan(t *testing.T) {
	model := mkModel(t)
	c := 10.0
	arr := core.Arrivals{{2, 0}, {0, 3}, {1, 1}}
	in, err := core.NewInstance(arr, model, c)
	if err != nil {
		t.Fatal(err)
	}
	ref := in.NaivePlan()
	pol := NewOracle(model, c, ref, "OPT-LGM")
	if pol.Name() != "OPT-LGM" {
		t.Fatalf("Name = %q", pol.Name())
	}
	got := drive(t, pol, arr, model, c)
	for ti := range ref {
		if !got[ti].Equal(ref[ti]) {
			t.Fatalf("replay diverges at t=%d: %v vs %v", ti, got[ti], ref[ti])
		}
	}
}

func TestOracleClampsAndRepairs(t *testing.T) {
	model := mkModel(t)
	c := 5.0
	// Plan asks for more than available and then nothing, against arrivals
	// that fill the state: the oracle must clamp and stay valid.
	plan := core.Plan{{100, 100}, nil, nil}
	arr := core.Arrivals{{1, 1}, {4, 4}, {0, 0}}
	in, err := core.NewInstance(arr, model, c)
	if err != nil {
		t.Fatal(err)
	}
	pol := NewOracle(model, c, plan, "X")
	got := drive(t, pol, arr, model, c)
	if err := in.Validate(got); err != nil {
		t.Fatalf("oracle produced invalid plan: %v", err)
	}
	// At t=0 the plan's 100s clamp to the available {1,1}.
	if !got[0].Equal(core.Vector{1, 1}) {
		t.Fatalf("clamped action = %v, want [1 1]", got[0])
	}
}

func TestEWMAEstimator(t *testing.T) {
	e := NewEWMA(0.5)
	e.Reset(2)
	e.Observe(core.Vector{4, 0})
	r := e.Rates()
	if r[0] != 4 || r[1] != 0 {
		t.Fatalf("first observation not adopted: %v", r)
	}
	e.Observe(core.Vector{0, 2})
	r = e.Rates()
	if r[0] != 2 || r[1] != 1 {
		t.Fatalf("EWMA update wrong: %v", r)
	}
}

func TestEWMAValidation(t *testing.T) {
	for _, alpha := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha %g accepted", alpha)
				}
			}()
			NewEWMA(alpha)
		}()
	}
}

func TestFixedRates(t *testing.T) {
	f := FixedRates{1.5, 2}
	f.Reset(2)
	f.Observe(core.Vector{100, 100})
	if r := f.Rates(); r[0] != 1.5 || r[1] != 2 {
		t.Fatalf("FixedRates mutated: %v", r)
	}
}
