package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func testMux(healthy bool) *http.ServeMux {
	r := NewRegistry()
	r.Counter("pubsub_steps_total").Add(7)
	r.Gauge("pubsub_sub_steps_behind", "sub", "east").Set(2)
	tr := NewTracer(8)
	s := tr.Start("step")
	s.Child("drain").End()
	s.End()
	return NewMux(Options{
		Registry: r,
		Tracer:   tr,
		Health:   func() (any, bool) { return map[string]int{"subs": 2}, healthy },
	})
}

func get(t *testing.T, mux *http.ServeMux, url string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	body, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	return rec.Code, string(body)
}

func TestMetricsEndpointText(t *testing.T) {
	code, body := get(t, testMux(true), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{"pubsub_steps_total 7", `pubsub_sub_steps_behind{sub="east"} 2`} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics text missing %q:\n%s", want, body)
		}
	}
}

func TestMetricsEndpointJSON(t *testing.T) {
	code, body := get(t, testMux(true), "/metrics?format=json")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var payload struct {
		Metrics []MetricSnapshot `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if len(payload.Metrics) != 2 {
		t.Fatalf("JSON metrics = %d, want 2", len(payload.Metrics))
	}
}

func TestHealthzStatusCodes(t *testing.T) {
	if code, body := get(t, testMux(true), "/healthz"); code != http.StatusOK || !strings.Contains(body, `"healthy": true`) {
		t.Fatalf("healthy: status %d body %s", code, body)
	}
	if code, body := get(t, testMux(false), "/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, `"healthy": false`) {
		t.Fatalf("unhealthy: status %d body %s", code, body)
	}
}

func TestTracesEndpoint(t *testing.T) {
	mux := testMux(true)
	code, body := get(t, mux, "/traces?n=1")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var payload struct {
		Spans []SpanRecord `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(payload.Spans) != 1 || payload.Spans[0].Name != "step" {
		t.Fatalf("spans = %+v, want the newest (step)", payload.Spans)
	}
	if code, _ := get(t, mux, "/traces?n=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad n: status %d, want 400", code)
	}
}

func TestPprofGating(t *testing.T) {
	off := NewMux(Options{})
	if code, _ := get(t, off, "/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("pprof off: status %d, want 404", code)
	}
	on := NewMux(Options{Pprof: true})
	if code, _ := get(t, on, "/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("pprof on: status %d, want 200", code)
	}
}

func TestEmptyOptionsEndpointsStillRespond(t *testing.T) {
	mux := NewMux(Options{})
	if code, _ := get(t, mux, "/metrics"); code != http.StatusOK {
		t.Fatalf("/metrics with no registry: %d", code)
	}
	if code, body := get(t, mux, "/healthz"); code != http.StatusOK || !strings.Contains(body, `"healthy": true`) {
		t.Fatalf("/healthz with no probe: %d %s", code, body)
	}
	if code, _ := get(t, mux, "/traces"); code != http.StatusOK {
		t.Fatalf("/traces with no tracer: %d", code)
	}
}
