package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// The live ops endpoint: a plain http.ServeMux over the registry,
// tracer, and a caller-supplied health probe. The mux is transport-only
// — it owns no goroutines and no state, so `abivm serve` (and any
// embedder) decides address, lifetime, and shutdown.
//
//	/metrics   text exposition (Prometheus-shaped); ?format=json for JSON
//	/healthz   JSON health report; HTTP 503 when unhealthy
//	/traces    recent finished spans, newest first; ?n= limits the count
//	/debug/pprof/...  net/http/pprof, only when Options.Pprof is set

// HealthFunc reports the runtime's health: an arbitrary JSON-renderable
// detail value and whether the runtime considers itself healthy.
type HealthFunc func() (detail any, healthy bool)

// Options configures NewMux. Nil fields disable the matching endpoint's
// content (the route still responds, with empty data).
type Options struct {
	Registry *Registry
	Tracer   *Tracer
	Health   HealthFunc
	// Pprof mounts net/http/pprof under /debug/pprof/. Off by default:
	// profiling endpoints expose goroutine dumps and should be opted
	// into per deployment.
	Pprof bool
}

// NewMux builds the ops endpoint routes.
func NewMux(o Options) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" || req.Header.Get("Accept") == "application/json" {
			writeJSON(w, http.StatusOK, map[string]any{"metrics": o.Registry.Snapshot()})
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteMetricsText(w, o.Registry)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		detail, healthy := any(nil), true
		if o.Health != nil {
			detail, healthy = o.Health()
		}
		status := http.StatusOK
		if !healthy {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, map[string]any{"healthy": healthy, "detail": detail})
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, req *http.Request) {
		n := 0
		if q := req.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, "traces: n must be a non-negative integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		spans := o.Tracer.Recent(n)
		writeJSON(w, http.StatusOK, map[string]any{"spans": spans, "dropped": o.Tracer.Dropped()})
	})
	if o.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// writeJSON renders v with the given status. Encode errors past the
// header write can only be client disconnects; they are ignored on
// purpose.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return
	}
}

// WriteMetricsText renders the registry in the Prometheus text format
// (counters and gauges as single samples, histograms as cumulative
// _bucket/_sum/_count series). A nil registry renders nothing.
func WriteMetricsText(w io.Writer, r *Registry) {
	lastName := ""
	for _, s := range r.Snapshot() {
		if s.Name != lastName {
			fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Type)
			lastName = s.Name
		}
		switch s.Type {
		case "histogram":
			for _, b := range s.Buckets {
				le := "+Inf"
				if !math.IsInf(b.UpperBound, 1) {
					le = strconv.FormatFloat(b.UpperBound, 'g', -1, 64)
				}
				fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name, labelText(s.Labels, Label{Key: "le", Value: le}), b.Count)
			}
			fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, labelText(s.Labels), formatValue(s.Sum))
			fmt.Fprintf(w, "%s_count%s %d\n", s.Name, labelText(s.Labels), s.Count)
		default:
			fmt.Fprintf(w, "%s%s %s\n", s.Name, labelText(s.Labels), formatValue(s.Value))
		}
	}
}

// labelText renders {k="v",...} or "" for no labels.
func labelText(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	return id("", all)
}

// formatValue renders a float sample without trailing noise.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
