package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("depth")
	g.Set(2.5)
	g.Add(0.5)
	if got := g.Value(); got != 3.0 {
		t.Fatalf("gauge = %g, want 3", got)
	}
	g.SetMax(1.0) // below current: no-op
	if got := g.Value(); got != 3.0 {
		t.Fatalf("gauge after SetMax(1) = %g, want 3", got)
	}
	g.SetMax(7.0)
	if got := g.Value(); got != 7.0 {
		t.Fatalf("gauge after SetMax(7) = %g, want 7", got)
	}
}

func TestRegistryIdempotentAndLabeled(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits_total", "sub", "east")
	b := r.Counter("hits_total", "sub", "east")
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	other := r.Counter("hits_total", "sub", "west")
	if a == other {
		t.Fatal("different label values must return different counters")
	}
	a.Inc()
	snaps := r.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("snapshot has %d metrics, want 2", len(snaps))
	}
	// Sorted by canonical key: east before west.
	if snaps[0].Key() != `hits_total{sub="east"}` || snaps[0].Value != 1 {
		t.Fatalf("first snapshot = %s value %g", snaps[0].Key(), snaps[0].Value)
	}
}

func TestRegistryPanicsAreAttachTime(t *testing.T) {
	r := NewRegistry()
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("invalid name", func() { r.Counter("Bad-Name") })
	mustPanic("odd labels", func() { r.Counter("ok_name", "k") })
	r.Counter("taken")
	mustPanic("kind conflict", func() { r.Gauge("taken") })
	mustPanic("empty bounds", func() { r.Histogram("hist", nil) })
	mustPanic("unsorted bounds", func() { r.Histogram("hist2", []float64{2, 1}) })
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 10, 99, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if got := h.Sum(); got != 1115.5 {
		t.Fatalf("sum = %g, want 1115.5", got)
	}
	snap := r.Snapshot()[0]
	wantCum := []int64{2, 4, 5, 6} // le=1:{0.5,1}, le=10:+{5,10}, le=100:+{99}, +Inf:+{1000}
	if len(snap.Buckets) != len(wantCum) {
		t.Fatalf("buckets = %d, want %d", len(snap.Buckets), len(wantCum))
	}
	for i, b := range snap.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket %d cumulative = %d, want %d", i, b.Count, wantCum[i])
		}
	}
	if !math.IsInf(snap.Buckets[3].UpperBound, 1) {
		t.Fatalf("last bucket bound = %g, want +Inf", snap.Buckets[3].UpperBound)
	}
	// Re-registration returns the same histogram, keeping the first bounds.
	if r.Histogram("lat", []float64{5}) != h {
		t.Fatal("re-registration must return the existing histogram")
	}
}

func TestNilSinksNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", []float64{1})
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	g.SetMax(9)
	h.Observe(4)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil-registry instruments must read as zero")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
}

// TestConcurrentUpdates hammers one registry from many goroutines; run
// under -race this is the package's race-cleanliness proof.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("ops_total")
			g := r.Gauge("level")
			h := r.Histogram("obs_hist", []float64{0.5, 1})
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				g.SetMax(float64(i))
				h.Observe(float64(i%2) + 0.25)
				if i%500 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("ops_total").Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Gauge("level").Value(); got != workers*per {
		t.Fatalf("gauge sum = %g, want %d", got, workers*per)
	}
	if got := r.Histogram("obs_hist", []float64{0.5, 1}).Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
}

func TestWriteMetricsText(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "sub", "east").Add(3)
	r.Gauge("level").Set(1.5)
	r.Histogram("lat_seconds", []float64{0.1, 1}).Observe(0.05)
	var b strings.Builder
	WriteMetricsText(&b, r)
	out := b.String()
	for _, want := range []string{
		"# TYPE reqs_total counter",
		`reqs_total{sub="east"} 3`,
		"# TYPE level gauge",
		"level 1.5",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="+Inf"} 1`,
		"lat_seconds_sum 0.05",
		"lat_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("text exposition missing %q in:\n%s", want, out)
		}
	}
}
