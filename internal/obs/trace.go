package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Tracing: lightweight spans with parent/child links and per-span
// attributes, recorded into a bounded ring buffer when they finish. The
// design target is a long-lived maintenance runtime, not a distributed
// tracer: spans are cheap enough to wrap every broker step, the ring
// keeps only the recent past (the /traces endpoint's working set), and
// everything degrades to a no-op when no tracer is attached — a nil
// *Tracer starts nil *Spans whose methods all no-op, so instrumented
// code carries no sink-attached conditionals.

// Attr is one span attribute.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanRecord is a finished span as stored in the ring and returned by
// Recent.
type SpanRecord struct {
	ID     uint64    `json:"id"`
	Parent uint64    `json:"parent,omitempty"` // 0 for root spans
	Name   string    `json:"name"`
	Start  time.Time `json:"start"`
	// Duration is End - Start.
	Duration time.Duration `json:"duration_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
}

// Span is one in-flight operation. Create with Tracer.Start or
// Span.Child; call End exactly once to record it. A Span's setters are
// safe for concurrent use, though typical spans live on one goroutine.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// Tracer records finished spans into a fixed-capacity ring buffer,
// overwriting the oldest. It is safe for concurrent use.
type Tracer struct {
	nextID atomic.Uint64

	mu      sync.Mutex
	buf     []SpanRecord
	pos     int // next write slot
	n       int // live records (<= cap)
	dropped uint64
}

// DefaultTraceCapacity is the ring size NewTracer uses for cap <= 0.
const DefaultTraceCapacity = 1024

// NewTracer returns a tracer retaining the most recent cap spans
// (DefaultTraceCapacity when cap <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{buf: make([]SpanRecord, capacity)}
}

// Start opens a root span. On a nil tracer it returns nil, and every
// method of a nil *Span no-ops, so call sites never check for a sink.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{tr: t, id: t.nextID.Add(1), name: name, start: time.Now()}
}

// Child opens a span parented to s (nil-safe: a nil parent yields nil).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	//lint:ignore mutexheld tr is set at construction and never reassigned
	c := s.tr.Start(name)
	//lint:ignore mutexheld id is set at construction and never reassigned
	c.parent = s.id
	return c
}

// Attr attaches a key/value attribute.
func (s *Span) Attr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// End finishes the span and records it; second and later calls no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	s.tr.record(SpanRecord{
		ID:       s.id,
		Parent:   s.parent,
		Name:     s.name,
		Start:    s.start,
		Duration: time.Since(s.start),
		Attrs:    attrs,
	})
}

// record appends into the ring, overwriting the oldest when full.
func (t *Tracer) record(rec SpanRecord) {
	t.mu.Lock()
	if t.n == len(t.buf) {
		t.dropped++
	} else {
		t.n++
	}
	t.buf[t.pos] = rec
	t.pos = (t.pos + 1) % len(t.buf)
	t.mu.Unlock()
}

// Recent returns up to n finished spans, newest first (all retained
// spans when n <= 0). The result is caller-owned. A nil tracer returns
// nil.
func (t *Tracer) Recent(n int) []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > t.n {
		n = t.n
	}
	out := make([]SpanRecord, n)
	for i := 0; i < n; i++ {
		idx := (t.pos - 1 - i + len(t.buf)) % len(t.buf)
		out[i] = t.buf[idx]
	}
	return out
}

// Dropped returns the number of spans overwritten before they could be
// read — the ring's loss counter (0 on a nil tracer).
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}
