package obs

import (
	"sync"
	"testing"
)

func TestSpanParentChildAndAttrs(t *testing.T) {
	tr := NewTracer(16)
	root := tr.Start("step")
	root.Attr("step", "3")
	child := root.Child("drain")
	child.Attr("alias", "PS")
	child.End()
	root.End()

	recs := tr.Recent(0)
	if len(recs) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(recs))
	}
	// Newest first: root ended last.
	if recs[0].Name != "step" || recs[1].Name != "drain" {
		t.Fatalf("order = %s, %s; want step, drain", recs[0].Name, recs[1].Name)
	}
	if recs[1].Parent != recs[0].ID {
		t.Fatalf("child parent = %d, want root id %d", recs[1].Parent, recs[0].ID)
	}
	if recs[0].Parent != 0 {
		t.Fatalf("root parent = %d, want 0", recs[0].Parent)
	}
	if len(recs[1].Attrs) != 1 || recs[1].Attrs[0] != (Attr{Key: "alias", Value: "PS"}) {
		t.Fatalf("child attrs = %v", recs[1].Attrs)
	}
	if recs[0].Duration < 0 {
		t.Fatalf("negative duration %v", recs[0].Duration)
	}
}

func TestRingBoundedAndNewestFirst(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		s := tr.Start("s")
		s.Attr("i", string(rune('0'+i)))
		s.End()
	}
	recs := tr.Recent(0)
	if len(recs) != 4 {
		t.Fatalf("retained %d spans, want 4 (ring capacity)", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].ID >= recs[i-1].ID {
			t.Fatalf("spans not newest-first: id %d before %d", recs[i-1].ID, recs[i].ID)
		}
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	if got := tr.Recent(2); len(got) != 2 {
		t.Fatalf("Recent(2) returned %d spans", len(got))
	}
}

func TestDoubleEndRecordsOnce(t *testing.T) {
	tr := NewTracer(8)
	s := tr.Start("once")
	s.End()
	s.End()
	if got := len(tr.Recent(0)); got != 1 {
		t.Fatalf("recorded %d spans after double End, want 1", got)
	}
}

func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x")
	c := s.Child("y")
	s.Attr("k", "v")
	c.Attr("k", "v")
	c.End()
	s.End()
	if tr.Recent(5) != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer must report nothing")
	}
}

// TestConcurrentSpans exercises the ring under parallel writers; with
// -race this is the tracer's race-cleanliness proof.
func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s := tr.Start("op")
				s.Attr("w", "x")
				s.Child("inner").End()
				s.End()
				if i%100 == 0 {
					tr.Recent(10)
				}
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Recent(0)); got != 64 {
		t.Fatalf("ring holds %d spans, want 64", got)
	}
}
