// Package obs is the observability subsystem of the ABIVM runtime: a
// std-lib-only metrics registry (counters, gauges, fixed-bucket
// histograms), lightweight trace spans recorded into a bounded ring
// buffer, and an HTTP mux exposing both plus health and profiling
// endpoints (see serve.go). The paper's evaluation is all about measured
// per-step costs and constraint headroom (Section 5, Figs. 5-7); this
// package exports the same quantities live instead of recomputing them
// offline.
//
// Design constraints, in order:
//
//   - Zero dependencies beyond the standard library, like the rest of
//     the module.
//   - Race-clean under concurrent writers: every metric update is a
//     single atomic operation (plus a CAS loop for float accumulation),
//     so hot paths never contend on a registry lock.
//   - Near-zero cost when no sink is attached: instrumented components
//     hold nil metric structs by default and skip all measurement work
//     (including time.Now calls) behind one nil check. The Fig6
//     benchmark guards this property against the committed baseline.
//   - Snapshot-able for tests: Snapshot returns a consistent, sorted,
//     caller-owned copy of every metric.
//
// Metric names are registered with compile-time constant strings only —
// the abivmlint metricname analyzer rejects fmt.Sprintf-style dynamic
// names, which would unbounded the registry and break dashboards.
// Dynamic dimensions (subscription names, fault sites) go into labels.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. The zero value is
// usable; all methods are safe for concurrent use and nil-receivers
// no-op, so call sites need no sink-attached check of their own.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n; negative n is ignored (counters never decrease).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 value. The zero value is usable;
// all methods are safe for concurrent use and nil receivers no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add accumulates v via a CAS loop.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// SetMax raises the gauge to v if v exceeds the current value — peak
// tracking (heap high-water marks) without a lock.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed upper-bound buckets plus an
// implicit +Inf overflow bucket, and tracks the observation sum. All
// methods are safe for concurrent use and nil receivers no-op.
type Histogram struct {
	bounds  []float64 // sorted, strictly increasing upper bounds
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// newHistogram validates and copies the bounds.
func newHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("obs: histogram needs at least one bucket bound")
	}
	own := append([]float64(nil), bounds...)
	for i := 1; i < len(own); i++ {
		if own[i] <= own[i-1] {
			return nil, fmt.Errorf("obs: histogram bounds must be strictly increasing (%g after %g)", own[i], own[i-1])
		}
	}
	return &Histogram{bounds: own, counts: make([]atomic.Int64, len(own)+1)}, nil
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) = +Inf
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the observation sum (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// LatencyBuckets is the default bound set for second-denominated
// durations: 10µs to ~10s, roughly ×3 per step.
func LatencyBuckets() []float64 {
	return []float64{1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1, 3, 10}
}

// SizeBuckets is the default bound set for byte sizes and other counts:
// 64 to ~4M, ×4 per step.
func SizeBuckets() []float64 {
	return []float64{64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304}
}

// RatioBuckets is the default bound set for dimensionless ratios in
// (0, ~2], e.g. heuristic-vs-actual cost.
func RatioBuckets() []float64 {
	return []float64{0.1, 0.25, 0.5, 0.7, 0.8, 0.9, 0.95, 1.0, 1.05, 1.25, 2.0}
}

// metricKind tags registry entries.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Label is one name dimension, e.g. {Key: "sub", Value: "east"}.
type Label struct {
	Key   string
	Value string
}

// metric is one registered instrument.
type metric struct {
	name   string
	labels []Label
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds named metrics. Registration (Counter/Gauge/Histogram)
// takes a short lock and is idempotent — the same name+labels returns
// the same instrument — so instrumented components register once at
// attach time and hot paths touch only the lock-free instruments.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]*metric{}}
}

// id renders the canonical registry key: name plus labels in the given
// order (call sites use fixed label orders, so no sorting is needed).
func id(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(l.Value)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// validName enforces the metric/label-key grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// pairsToLabels converts alternating key,value strings.
func pairsToLabels(name string, kv []string) ([]Label, error) {
	if !validName(name) {
		return nil, fmt.Errorf("obs: invalid metric name %q (want [a-z_][a-z0-9_]*)", name)
	}
	if len(kv)%2 != 0 {
		return nil, fmt.Errorf("obs: metric %q: labels must be key,value pairs (got %d strings)", name, len(kv))
	}
	out := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		if !validName(kv[i]) {
			return nil, fmt.Errorf("obs: metric %q: invalid label key %q", name, kv[i])
		}
		out = append(out, Label{Key: kv[i], Value: kv[i+1]})
	}
	return out, nil
}

// lookup returns or creates the entry for name+labels, enforcing kind
// consistency.
func (r *Registry) lookup(name string, kind metricKind, kv []string) (*metric, error) {
	labels, err := pairsToLabels(name, kv)
	if err != nil {
		return nil, err
	}
	key := id(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[key]; ok {
		if m.kind != kind {
			return nil, fmt.Errorf("obs: metric %q already registered as a %s, requested as a %s", key, m.kind, kind)
		}
		return m, nil
	}
	m := &metric{name: name, labels: labels, kind: kind}
	switch kind {
	case kindCounter:
		m.c = &Counter{}
	case kindGauge:
		m.g = &Gauge{}
	}
	r.metrics[key] = m
	return m, nil
}

// Counter returns the counter registered under name and the alternating
// key,value label pairs, creating it on first use. It panics on an
// invalid name, odd label pairs, or a kind conflict with an existing
// registration — all programming errors caught at attach time, never on
// a hot path. A nil registry returns nil (a no-op counter).
func (r *Registry) Counter(name string, labelPairs ...string) *Counter {
	if r == nil {
		return nil
	}
	m, err := r.lookup(name, kindCounter, labelPairs)
	if err != nil {
		panic(err)
	}
	return m.c
}

// Gauge returns the gauge registered under name+labels, creating it on
// first use. Panics and nil behavior mirror Counter.
func (r *Registry) Gauge(name string, labelPairs ...string) *Gauge {
	if r == nil {
		return nil
	}
	m, err := r.lookup(name, kindGauge, labelPairs)
	if err != nil {
		panic(err)
	}
	return m.g
}

// Histogram returns the histogram registered under name+labels with the
// given bucket upper bounds, creating it on first use (later calls keep
// the first bounds). Panics and nil behavior mirror Counter, plus a
// panic on empty or non-increasing bounds.
func (r *Registry) Histogram(name string, bounds []float64, labelPairs ...string) *Histogram {
	if r == nil {
		return nil
	}
	m, err := r.lookup(name, kindHistogram, labelPairs)
	if err != nil {
		panic(err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.h == nil {
		h, err := newHistogram(bounds)
		if err != nil {
			panic(err)
		}
		m.h = h
	}
	return m.h
}

// Bucket is one histogram bucket in a snapshot: the cumulative count of
// observations at or below UpperBound (+Inf for the overflow bucket).
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// MetricSnapshot is one metric's state at snapshot time.
type MetricSnapshot struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Type   string  `json:"type"`
	// Value carries the counter count or gauge level.
	Value float64 `json:"value"`
	// Count, Sum, and Buckets are set for histograms only.
	Count   int64    `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Key renders the snapshot's canonical name{labels} identity.
func (s MetricSnapshot) Key() string { return id(s.Name, s.Labels) }

// Snapshot returns every metric's current state, sorted by canonical
// key. The result is caller-owned; concurrent updates during the
// snapshot may be partially visible per metric but never corrupt it.
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return id(ms[i].name, ms[i].labels) < id(ms[j].name, ms[j].labels) })
	out := make([]MetricSnapshot, 0, len(ms))
	for _, m := range ms {
		s := MetricSnapshot{
			Name:   m.name,
			Labels: append([]Label(nil), m.labels...),
			Type:   m.kind.String(),
		}
		switch m.kind {
		case kindCounter:
			s.Value = float64(m.c.Value())
		case kindGauge:
			s.Value = m.g.Value()
		case kindHistogram:
			h := m.h
			if h == nil {
				break
			}
			s.Count = h.Count()
			s.Sum = h.Sum()
			cum := int64(0)
			for i, b := range h.bounds {
				cum += h.counts[i].Load()
				s.Buckets = append(s.Buckets, Bucket{UpperBound: b, Count: cum})
			}
			cum += h.counts[len(h.bounds)].Load()
			s.Buckets = append(s.Buckets, Bucket{UpperBound: math.Inf(1), Count: cum})
		}
		out = append(out, s)
	}
	return out
}
