// Package sim drives maintenance policies over arrival sequences in
// discrete time, enforcing the response-time constraint and accounting
// costs. It is the measurement harness behind the paper's Figures 5–7:
// policies are simulated against a cost model, and the resulting plans can
// also be replayed against the real IVM engine for validation.
package sim

import (
	"fmt"

	"abivm/internal/core"
	"abivm/internal/policy"
)

// Event records one non-zero action taken during a run.
type Event struct {
	T      int
	Action core.Vector
	Cost   float64
}

// Result summarizes one simulated run.
type Result struct {
	Policy string
	// Plan is the full action sequence produced by the policy.
	Plan core.Plan
	// TotalCost is Σ_t f(p_t), the paper's objective.
	TotalCost float64
	// PerTableCost[i] is the share of TotalCost spent draining table i.
	PerTableCost []float64
	// Actions counts non-zero actions; ActionsPerTable[i] counts steps at
	// which table i was drained (the |P(i)| of Theorem 2).
	Actions         int
	ActionsPerTable []int
	// MaxRefreshCost is the largest post-action refresh cost observed
	// before T; validity requires MaxRefreshCost <= C.
	MaxRefreshCost float64
	// Events lists all non-zero actions when trace recording is enabled.
	Events []Event
}

// Options tunes a simulation run.
type Options struct {
	// RecordTrace keeps the per-action event log in the result.
	RecordTrace bool
}

// Run simulates pol over the instance and returns the accounting. The
// returned plan is always validated against Definition 1; a policy that
// produces an invalid action is a bug, reported as an error.
func Run(in *core.Instance, pol policy.Policy, opts Options) (*Result, error) {
	n := in.N()
	tEnd := in.T()
	pol.Reset(n)

	res := &Result{
		Policy:          pol.Name(),
		Plan:            make(core.Plan, tEnd+1),
		PerTableCost:    make([]float64, n),
		ActionsPerTable: make([]int, n),
	}
	state := core.NewVector(n)
	for t := 0; t <= tEnd; t++ {
		d := in.Arrivals[t]
		state.AddInPlace(d)
		act := pol.Act(t, d.Clone(), state.Clone(), t == tEnd)
		if len(act) != n {
			return nil, fmt.Errorf("sim: policy %s returned %d components at t=%d, want %d", pol.Name(), len(act), t, n)
		}
		if !act.NonNegative() || !act.DominatedBy(state) {
			return nil, fmt.Errorf("sim: policy %s returned out-of-range action %v at t=%d (state %v)", pol.Name(), act, t, state)
		}
		state.SubInPlace(act)
		res.Plan[t] = act
		if !act.IsZero() {
			cost := in.Model.Total(act)
			res.TotalCost += cost
			res.Actions++
			for i, k := range act {
				if k > 0 {
					res.PerTableCost[i] += in.Model.TableCost(i, k)
					res.ActionsPerTable[i]++
				}
			}
			if opts.RecordTrace {
				res.Events = append(res.Events, Event{T: t, Action: act.Clone(), Cost: cost})
			}
		}
		if t < tEnd {
			if refreshCost := in.Model.Total(state); refreshCost > res.MaxRefreshCost {
				res.MaxRefreshCost = refreshCost
			}
		}
	}
	if err := in.Validate(res.Plan); err != nil {
		return nil, fmt.Errorf("sim: policy %s produced an invalid plan: %w", pol.Name(), err)
	}
	return res, nil
}

// Replay evaluates a precomputed plan against the instance with the same
// accounting as Run, validating it first.
func Replay(in *core.Instance, plan core.Plan, label string, opts Options) (*Result, error) {
	if err := in.Validate(plan); err != nil {
		return nil, err
	}
	return Run(in, policy.NewOracle(in.Model, in.C, plan, label), opts)
}
